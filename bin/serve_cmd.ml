(* serve — the fault-tolerant layout service.

   Modes:
   - default: speak `impact.serve/v1` over stdio (one JSON request per
     line in, one response per line out).
   - --socket PATH: same protocol over a Unix socket, connections
     served sequentially.
   - --sample: print a deterministic request stream exercising the ok,
     error, timeout and degradation paths — the golden-vector input.
   - --replay FILE [--expect FILE]: run a request file through the full
     batched serve loop and print the responses; with --expect, compare
     byte-for-byte against the recorded responses and fail on the first
     divergence (the determinism gate: `-j 1` and `-j N` must agree
     with the recording exactly).
   - --chaos: run the seeded fault-injection campaign and fail unless
     every contract holds.
   - --soak SECONDS: drive the seeded chaos-weighted soak workload for
     the given duration with telemetry on, assert the memory ceiling,
     and emit an `impact.soak/v1` report.

   Telemetry: --trace-out FILE enables request spans and writes one
   Chrome trace for the session on exit; --slow-ms N additionally dumps
   the span tree of any request slower than N ms to stderr;
   --metrics-out FILE writes the metrics dump (with latency quantiles)
   on exit. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Daemon configuration flags                                          *)
(* ------------------------------------------------------------------ *)

let benches_arg =
  let doc = "Resident benchmarks (default: the full ten-program suite)." in
  Arg.(value & opt (some (list string)) None & info [ "b"; "benchmarks" ] ~doc)

let scale_arg =
  let doc = "Workload scale factor of the resident contexts." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Default per-request deadline in milliseconds." in
  Arg.(
    value
    & opt int Serve.Daemon.default_config.deadline_ms
    & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_bytes_arg =
  let doc = "Maximum request-line size in bytes." in
  Arg.(
    value
    & opt int Serve.Daemon.default_config.max_request_bytes
    & info [ "max-request-bytes" ] ~docv:"N" ~doc)

let cap_arg name default doc =
  Arg.(value & opt (some int) default & info [ name ] ~docv:"N" ~doc)

let profile_cap_arg =
  cap_arg "profile-cap" Serve.Daemon.default_config.profile_cap
    "LRU bound on named profiles in the store."

let memo_cap_arg =
  cap_arg "memo-cap" Serve.Daemon.default_config.memo_cap
    "Per-benchmark LRU bound on memoized simulation results."

let strategy_cap_arg =
  cap_arg "strategy-cap" Serve.Daemon.default_config.strategy_cap
    "Per-benchmark LRU bound on memoized strategy maps."

let map_cap_arg =
  let doc = "LRU bound on custom-profile address maps." in
  Arg.(
    value
    & opt int Serve.Daemon.default_config.map_cap
    & info [ "map-cap" ] ~docv:"N" ~doc)

let window_arg =
  let doc = "Live epochs per profile (older uploads are stale)." in
  Arg.(
    value
    & opt int Serve.Daemon.default_config.epoch_window
    & info [ "epoch-window" ] ~docv:"N" ~doc)

let slow_arg =
  let doc =
    "Dump the span tree of any request slower than $(docv) milliseconds to \
     stderr (implies span recording)."
  in
  Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let config_term =
  Term.(
    const (fun benches scale deadline_ms max_request_bytes profile_cap
               memo_cap strategy_cap map_cap epoch_window slow_ms ->
        {
          Serve.Daemon.default_config with
          benches;
          scale;
          deadline_ms;
          max_request_bytes;
          profile_cap;
          memo_cap;
          strategy_cap;
          map_cap;
          epoch_window;
          slow_ms;
        })
    $ benches_arg $ scale_arg $ deadline_arg $ max_bytes_arg
    $ profile_cap_arg $ memo_cap_arg $ strategy_cap_arg $ map_cap_arg
    $ window_arg $ slow_arg)

let jobs_term =
  let doc =
    "Use $(docv) domains for read-only request batches.  Responses are \
     byte-identical to $(b,-j 1)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Suppress warning chatter on stderr." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let metrics_arg =
  let doc =
    "Enable the metrics registry and write its text dump to $(docv) on \
     exit ($(b,-) writes to stderr)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let with_parallel jobs f =
  if jobs < 1 then failwith (Printf.sprintf "-j must be >= 1 (got %d)" jobs)
  else if jobs = 1 then f ()
  else begin
    let pool = Placement.Pool.create jobs in
    Placement.Pool.set_default (Some pool);
    Fun.protect
      ~finally:(fun () ->
        Placement.Pool.set_default None;
        Placement.Pool.shutdown pool)
      f
  end

let with_telemetry ~quiet ~metrics_out ~trace_out ~slow_ms f =
  Obs.Log.set_quiet quiet;
  if metrics_out <> None then Obs.Metrics.set_enabled true;
  (* The slow-request log needs the span tree, so --slow-ms implies
     recording even without a trace file. *)
  if trace_out <> None || slow_ms <> None then Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter Obs.Metrics.write metrics_out;
      Option.iter Obs.Span.write_chrome trace_out)
    f

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  In_channel.with_open_bin path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

(* A deterministic request stream exercising every response path: ok
   layouts and lints, named-profile uploads (one flow-conserving, one
   poisoning), degradation tiers, timeouts, and the malformed-input
   family.  `--sample > requests.ndjson` is how the golden vector input
   is produced. *)
let sample_lines config =
  let bench =
    match config.Serve.Daemon.benches with
    | Some (b :: _) -> b
    | _ -> List.hd Workloads.Registry.names
  in
  let daemon = Serve.Daemon.create ~config () in
  let entry = Experiments.Context.find (Serve.Daemon.context daemon) bench in
  let pipe = Experiments.Context.pipeline entry in
  let j = Obs.Json.to_string in
  let req ~id ~typ fields =
    j
      (Obs.Json.Obj
         ([
            ("schema", Obs.Json.String Serve.Protocol.schema);
            ("id", Obs.Json.Int id);
            ("type", Obs.Json.String typ);
          ]
         @ fields))
  in
  let layout ~id fields =
    req ~id ~typ:"layout-request"
      (("bench", Obs.Json.String bench) :: fields)
  in
  [
    req ~id:1 ~typ:"stats" [];
    layout ~id:2 [ ("strategy", Obs.Json.String "impact") ];
    layout ~id:3
      [
        ("strategy", Obs.Json.String "ph");
        ( "cache",
          Obs.Json.Obj
            [ ("size", Obs.Json.Int 1024); ("block", Obs.Json.Int 32) ] );
      ];
    req ~id:4 ~typ:"lint-request" [ ("bench", Obs.Json.String bench) ];
    j
      (Serve.Protocol.upload_request_of_profile ~id:(Obs.Json.Int 5)
         ~name:"golden" ~bench ~epoch:1 pipe.Placement.Pipeline.profile);
    layout ~id:6
      [
        ("strategy", Obs.Json.String "exttsp");
        ("profile", Obs.Json.String "golden");
      ];
    (* Subscribe before the poisoning upload so the vectors record one
       push staleness notification. *)
    req ~id:7 ~typ:"subscribe" [];
    (* Structurally valid but not flow-conserving: poisons "golden",
       pinning readers to the epoch-1 snapshot. *)
    req ~id:8 ~typ:"profile-upload"
      [
        ("profile", Obs.Json.String "golden");
        ("bench", Obs.Json.String bench);
        ("epoch", Obs.Json.Int 2);
        ( "entries",
          Obs.Json.List [ Obs.Json.List [ Obs.Json.Int 0; Obs.Json.Int 7 ] ]
        );
      ];
    layout ~id:9
      [
        ("strategy", Obs.Json.String "exttsp");
        ("profile", Obs.Json.String "golden");
      ];
    layout ~id:10 [ ("deadline_ms", Obs.Json.Int 0) ];
    layout ~id:11 [ ("deadline_ms", Obs.Json.Int 1) ];
    layout ~id:12 [ ("strategy", Obs.Json.String "no-such-strategy") ];
    req ~id:13 ~typ:"layout-request" [ ("bench", Obs.Json.String "no-such-bench") ];
    {|{"schema":"impact.serve/v1","id":14,"type":|};
    {|{"schema":"impact.serve/v99","id":15,"type":"stats"}|};
    req ~id:16 ~typ:"health" [];
    req ~id:17 ~typ:"stats" [];
    req ~id:18 ~typ:"shutdown" [];
  ]

let first_divergence (got : string list) (want : string list) =
  let rec go i g w =
    match (g, w) with
    | [], [] -> None
    | g :: _, [] -> Some (i, g, "<end of expected file>")
    | [], w :: _ -> Some (i, "<end of replay output>", w)
    | g :: gs, w :: ws -> if g = w then go (i + 1) gs ws else Some (i, g, w)
  in
  go 1 got want

let run_replay config jobs requests expect =
  let lines = read_lines requests in
  let daemon = Serve.Daemon.create ~config () in
  let responses =
    with_parallel jobs (fun () -> Serve.Daemon.run_lines daemon lines)
  in
  let out = List.map Obs.Json.to_string responses in
  match expect with
  | None ->
      List.iter print_endline out;
      0
  | Some path -> (
      let want = read_lines path in
      match first_divergence out want with
      | None ->
          Printf.printf "replay: ok, %d responses byte-identical to %s\n"
            (List.length out) path;
          0
      | Some (line, got, expected) ->
          Printf.eprintf
            "replay: DIVERGED at response %d\n  got:      %s\n  expected: %s\n"
            line got expected;
          1)

let run_chaos config seed n out =
  let chaos_config =
    (* Keep the campaign's small caps and raising strategy, but let the
       explicit flags (benches, limits) override. *)
    {
      (Serve.Chaos.default_config ()) with
      benches =
        (match config.Serve.Daemon.benches with
        | Some _ as b -> b
        | None -> (Serve.Chaos.default_config ()).benches);
      scale = config.Serve.Daemon.scale;
    }
  in
  let report = Serve.Chaos.run ~seed ~n ~config:chaos_config () in
  print_endline (Serve.Chaos.summary report);
  Option.iter
    (fun path -> Obs.Json.to_file path (Serve.Chaos.report_json report))
    out;
  if report.Serve.Chaos.violations = [] && report.responses = report.requests
  then 0
  else begin
    List.iter
      (fun v -> Printf.eprintf "chaos violation: %s\n" v)
      report.violations;
    1
  end

let run_soak config seed duration_s interval_ms ceiling_mb out =
  let soak_config =
    let base = Serve.Soak.default_config () in
    {
      base with
      Serve.Soak.seed;
      duration_s;
      interval_s = float interval_ms /. 1000.0;
      ceiling_bytes = ceiling_mb * 1024 * 1024;
      daemon =
        {
          base.Serve.Soak.daemon with
          benches =
            (match config.Serve.Daemon.benches with
            | Some _ as b -> b
            | None -> base.Serve.Soak.daemon.benches);
          scale = config.Serve.Daemon.scale;
          slow_ms = config.Serve.Daemon.slow_ms;
        };
    }
  in
  let report = Serve.Soak.run ~config:soak_config () in
  print_endline (Serve.Soak.summary report);
  Option.iter
    (fun path -> Obs.Json.to_file path (Serve.Soak.report_json report))
    out;
  if report.Serve.Soak.violations = [] then 0
  else begin
    List.iter
      (fun v -> Printf.eprintf "soak violation: %s\n" v)
      report.violations;
    1
  end

let run_serve config jobs socket =
  let daemon = Serve.Daemon.create ~config () in
  with_parallel jobs (fun () ->
      match socket with
      | Some path -> Serve.Daemon.serve_socket daemon ~path
      | None -> Serve.Daemon.serve_channels daemon stdin stdout);
  0

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Listen on a Unix socket at $(docv) instead of stdio." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let sample_arg =
  let doc = "Print the deterministic sample request stream and exit." in
  Arg.(value & flag & info [ "sample" ] ~doc)

let replay_arg =
  let doc = "Replay a request file through the serve loop." in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let expect_arg =
  let doc =
    "With $(b,--replay): compare output byte-for-byte against $(docv) and \
     fail on the first divergence."
  in
  Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"FILE" ~doc)

let chaos_arg =
  let doc = "Run the seeded fault-injection campaign and exit." in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let chaos_n_arg =
  let doc = "Number of chaos requests." in
  Arg.(value & opt int 200 & info [ "chaos-n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Chaos campaign seed." in
  Arg.(value & opt int 0xC4A05 & info [ "seed" ] ~docv:"S" ~doc)

let chaos_out_arg =
  let doc = "Write the chaos report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "chaos-out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record request spans and write one Chrome trace for the session to \
     $(docv) on exit (load it at chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let soak_arg =
  let doc =
    "Run the seeded soak workload for $(docv) seconds and emit an \
     impact.soak/v1 report; exits 1 when any contract violation is observed."
  in
  Arg.(value & opt (some float) None & info [ "soak" ] ~docv:"SECONDS" ~doc)

let soak_interval_arg =
  let doc = "Memory sampling period for the soak, in milliseconds." in
  Arg.(value & opt int 1000 & info [ "soak-interval-ms" ] ~docv:"MS" ~doc)

let soak_ceiling_arg =
  let doc = "OCaml live-heap ceiling asserted by the soak, in MiB." in
  Arg.(value & opt int 512 & info [ "soak-ceiling-mb" ] ~docv:"MB" ~doc)

let soak_out_arg =
  let doc = "Write the impact.soak/v1 report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "soak-out" ] ~docv:"FILE" ~doc)

let run config jobs quiet metrics_out trace_out socket sample replay expect
    chaos chaos_n seed chaos_out soak soak_interval soak_ceiling soak_out =
  with_telemetry ~quiet ~metrics_out ~trace_out
    ~slow_ms:config.Serve.Daemon.slow_ms
  @@ fun () ->
  if sample then begin
    List.iter print_endline (sample_lines config);
    0
  end
  else if chaos then run_chaos config seed chaos_n chaos_out
  else
    match soak with
    | Some duration_s ->
        run_soak config seed duration_s soak_interval soak_ceiling soak_out
    | None -> (
        match replay with
        | Some requests -> run_replay config jobs requests expect
        | None -> run_serve config jobs socket)

let cmd =
  let doc = "Fault-tolerant layout service (impact.serve/v1 over stdio)" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ config_term $ jobs_term $ quiet_arg $ metrics_arg
      $ trace_arg $ socket_arg $ sample_arg $ replay_arg $ expect_arg
      $ chaos_arg $ chaos_n_arg $ seed_arg $ chaos_out_arg $ soak_arg
      $ soak_interval_arg $ soak_ceiling_arg $ soak_out_arg)

let () =
  try exit (Cmd.eval' ~catch:false cmd) with
  | Ir.Diag.Fail d ->
      Obs.Log.error_raw (Ir.Diag.to_string d);
      exit (Ir.Diag.exit_code d)
  | Workloads.Registry.Unknown_benchmark name ->
      Obs.Log.error "unknown benchmark: %s" name;
      exit 2
  | Placement.Strategy.Unknown_strategy id ->
      Obs.Log.error "unknown strategy: %s" id;
      exit 2
  | Failure msg ->
      Obs.Log.error "%s" msg;
      exit 2
