(* impact — command-line driver for the IMPACT-I instruction placement
   reproduction: run benchmarks, inspect the placement pipeline, and
   regenerate the paper's tables. *)

open Cmdliner

let bench_names_arg =
  let doc = "Restrict to these benchmarks (default: all ten)." in
  Arg.(value & opt (some (list string)) None & info [ "b"; "benchmarks" ] ~doc)

let context_of names = Experiments.Context.create ?names ()

(* --validate for table runs: cheap invariant checks by default, [full]
   adds flow conservation and the simulation cross-check, [off] skips.
   Violations go to stderr and the first error decides the exit code
   (see the handler at the bottom of this file). *)
let validate_arg =
  let doc =
    "Pipeline invariant verification: $(b,off), $(b,cheap) (default; \
     structure, selection, layouts, every strategy's address map, trace \
     layout-invariance) or $(b,full) (adds profile flow conservation \
     and the simulation access-count cross-check)."
  in
  let level =
    Arg.enum
      [
        ("off", None);
        ("cheap", Some Experiments.Validation.Cheap);
        ("full", Some Experiments.Validation.Full);
      ]
  in
  Arg.(
    value
    & opt level (Some Experiments.Validation.Cheap)
    & info [ "validate" ] ~docv:"LEVEL" ~doc)

let run_validation level ctx =
  match level with
  | None -> ()
  | Some level ->
    let diags = Experiments.Validation.check ~level ctx in
    List.iter (fun d -> prerr_endline (Ir.Diag.to_string d)) diags;
    Ir.Diag.raise_first diags

(* impact list *)
let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun b ->
        Printf.printf "  %-9s %s\n" b.Workloads.Bench.name
          b.Workloads.Bench.description)
      Workloads.Registry.all;
    print_endline "\nlayout strategies (impact simulate --layout ID):";
    List.iter
      (fun s ->
        Printf.printf "  %-9s %s\n" s.Placement.Strategy.id
          s.Placement.Strategy.title)
      Placement.Strategy.all;
    print_endline "\nexperiments (impact table ID):";
    List.iter
      (fun s ->
        let alias =
          match
            List.find_opt
              (fun (_, id) -> id = s.Experiments.Runner.id)
              Experiments.Runner.aliases
          with
          | Some (alias, _) -> Printf.sprintf "  (alias: %s)" alias
          | None -> ""
        in
        Printf.printf "  %-3s %s%s\n" s.Experiments.Runner.id
          s.Experiments.Runner.title alias)
      Experiments.Runner.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks, layout strategies and experiments")
    Term.(const run $ const ())

(* impact table N *)
let table_cmd =
  let id_arg =
    (* Derive the advertised range from the registry so it cannot rot as
       experiments are added. *)
    let ids = List.map (fun s -> s.Experiments.Runner.id) Experiments.Runner.all in
    let doc =
      Printf.sprintf "Experiment id (%s-%s) or alias; see `impact list'."
        (List.hd ids)
        (List.nth ids (List.length ids - 1))
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id names validate =
    let spec = Experiments.Runner.find id in
    let ctx = context_of names in
    print_string (Experiments.Runner.run_one ctx spec);
    run_validation validate ctx
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables")
    Term.(const run $ id_arg $ bench_names_arg $ validate_arg)

(* impact all *)
let all_cmd =
  let run names validate =
    let ctx = context_of names in
    print_string (Experiments.Runner.run_all ctx);
    run_validation validate ctx
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table")
    Term.(const run $ bench_names_arg $ validate_arg)

(* impact run BENCH *)
let run_cmd =
  let bench_arg =
    let doc = "Benchmark name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let show_output =
    let doc = "Print the program's stream-0 output." in
    Arg.(value & flag & info [ "output" ] ~doc)
  in
  let run name show =
    let b = Workloads.Registry.find name in
    let p = Workloads.Bench.program b in
    let r = Vm.Interp.run p (Workloads.Bench.trace_input b) in
    Printf.printf
      "%s: %d dynamic instructions, %d blocks, %d calls, %d branches, \
       return value %d\n"
      name r.Vm.Interp.dyn_insns r.Vm.Interp.dyn_blocks r.Vm.Interp.dyn_calls
      r.Vm.Interp.dyn_branches r.Vm.Interp.return_value;
    if show then print_string (Vm.Io.output r.Vm.Interp.io 0)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a benchmark on its trace input")
    Term.(const run $ bench_arg $ show_output)

(* impact pipeline BENCH *)
let pipeline_cmd =
  let bench_arg =
    let doc = "Benchmark name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let run name =
    let b = Workloads.Registry.find name in
    let p =
      Placement.Pipeline.run (Workloads.Bench.program b)
        ~inputs:(Workloads.Bench.profile_inputs b)
    in
    let ir = p.Placement.Pipeline.inline_report in
    Printf.printf "benchmark           %s\n" name;
    Printf.printf "functions           %d\n"
      (Array.length p.Placement.Pipeline.program.Ir.Prog.funcs);
    Printf.printf "inlined sites       %d (in %d rounds)\n"
      ir.Placement.Inline.sites_inlined ir.Placement.Inline.rounds_used;
    Printf.printf "static code         %d -> %d insns (%+.1f%%)\n"
      ir.Placement.Inline.insns_before ir.Placement.Inline.insns_after
      (100. *. Placement.Inline.code_increase ir);
    Printf.printf "total bytes         %d\n"
      p.Placement.Pipeline.optimized.Placement.Address_map.total_bytes;
    Printf.printf "effective bytes     %d\n"
      p.Placement.Pipeline.optimized.Placement.Address_map.effective_bytes;
    Printf.printf "function order      %s\n"
      (String.concat " "
         (List.map
            (fun fid ->
              p.Placement.Pipeline.program.Ir.Prog.funcs.(fid).Ir.Prog.name)
            (Array.to_list p.Placement.Pipeline.global.Placement.Global_layout.order)));
    Array.iteri
      (fun fid sel ->
        let f = p.Placement.Pipeline.program.Ir.Prog.funcs.(fid) in
        let lay = p.Placement.Pipeline.layouts.(fid) in
        Printf.printf "  %-24s %3d blocks  %3d traces  %3d active blocks\n"
          f.Ir.Prog.name (Array.length f.Ir.Prog.blocks)
          (Array.length sel.Placement.Trace_select.traces)
          lay.Placement.Func_layout.active_blocks)
      p.Placement.Pipeline.selections
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Show placement pipeline details for a benchmark")
    Term.(const run $ bench_arg)

(* impact simulate BENCH --size --block --assoc --fill --layout *)
let simulate_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
  in
  let size_arg =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"Cache size in bytes.")
  in
  let block_arg =
    Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.")
  in
  let assoc_arg =
    let doc = "Associativity: direct, N (ways), or full." in
    Arg.(value & opt string "direct" & info [ "assoc" ] ~doc)
  in
  let fill_arg =
    let doc = "Fill policy: whole, sector:N, or partial." in
    Arg.(value & opt string "whole" & info [ "fill" ] ~doc)
  in
  let prefetch_arg =
    Arg.(value & flag & info [ "prefetch" ] ~doc:"Next-line tagged prefetch.")
  in
  let layout_arg =
    let doc =
      Printf.sprintf "Layout strategy: %s (`optimized' = impact)."
        (String.concat " | " (Placement.Strategy.ids ()))
    in
    Arg.(value & opt string "impact" & info [ "layout" ] ~doc)
  in
  let run name size block assoc fill prefetch layout =
    let assoc =
      match assoc with
      | "direct" -> Icache.Config.Direct
      | "full" -> Icache.Config.Full
      | n -> Icache.Config.Ways (int_of_string n)
    in
    let fill =
      match String.split_on_char ':' fill with
      | [ "whole" ] -> Icache.Config.Whole
      | [ "partial" ] -> Icache.Config.Partial
      | [ "sector"; n ] -> Icache.Config.Sectored (int_of_string n)
      | _ -> failwith "bad --fill (whole | sector:N | partial)"
    in
    let config = Icache.Config.make ~assoc ~fill ~prefetch ~size ~block () in
    let ctx = Experiments.Context.create ~names:[ name ] () in
    let e = Experiments.Context.find ctx name in
    let strategy =
      let id = if layout = "optimized" then "impact" else layout in
      try Placement.Strategy.find id
      with Placement.Strategy.Unknown_strategy _ ->
        failwith
          (Printf.sprintf "bad --layout (%s)"
             (String.concat " | " (Placement.Strategy.ids ())))
    in
    let map = Experiments.Context.strategy_map e strategy in
    let r =
      Experiments.Context.simulate e config map (Experiments.Context.trace e)
    in
    Printf.printf "%s on %s (%s layout)\n" name
      (Icache.Config.describe config)
      strategy.Placement.Strategy.id;
    Printf.printf "  accesses        %d\n" r.Sim.Driver.accesses;
    Printf.printf "  misses          %d\n" r.Sim.Driver.misses;
    Printf.printf "  miss ratio      %s\n"
      (Report.Fmtutil.pct ~digits:3 r.Sim.Driver.miss_ratio);
    Printf.printf "  traffic ratio   %s\n"
      (Report.Fmtutil.pct ~digits:3 r.Sim.Driver.traffic_ratio);
    Printf.printf "  avg.fetch       %.1f words/miss\n" r.Sim.Driver.avg_fetch_words;
    Printf.printf "  avg.exec        %.1f insns/run\n" r.Sim.Driver.avg_exec_insns;
    Printf.printf "  eff. access     %.3f cyc (blocking) / %.3f (streaming) / %.3f (partial)\n"
      r.Sim.Driver.eat_blocking r.Sim.Driver.eat_streaming
      r.Sim.Driver.eat_streaming_partial
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one cache configuration on a benchmark")
    Term.(
      const run $ bench_arg $ size_arg $ block_arg $ assoc_arg $ fill_arg
      $ prefetch_arg $ layout_arg)

(* impact estimate BENCH *)
let estimate_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
  in
  let size_arg =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"Cache size in bytes.")
  in
  let block_arg =
    Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.")
  in
  let run name size block =
    let config = Icache.Config.make ~size ~block () in
    let ctx = Experiments.Context.create ~names:[ name ] () in
    let e = Experiments.Context.find ctx name in
    let est =
      Sim.Estimate.of_pipeline config (Experiments.Context.pipeline e)
    in
    let sim =
      Experiments.Context.simulate e config
        (Experiments.Context.optimized_map e)
        (Experiments.Context.trace e)
    in
    Printf.printf "%s at %s\n" name (Icache.Config.describe config);
    Printf.printf "  estimated (profile only)  %s  (%d compulsory + %d conflict)\n"
      (Report.Fmtutil.pct ~digits:3 est.Sim.Estimate.est_miss_ratio)
      est.Sim.Estimate.compulsory est.Sim.Estimate.conflict;
    Printf.printf "  simulated (trace driven)  %s\n"
      (Report.Fmtutil.pct ~digits:3 sim.Sim.Driver.miss_ratio)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Profile-only analytical miss estimate vs trace-driven simulation")
    Term.(const run $ bench_arg $ size_arg $ block_arg)

let main_cmd =
  let doc =
    "IMPACT-I instruction placement reproduction (Hwu & Chang, ISCA 1989)"
  in
  Cmd.group (Cmd.info "impact" ~doc)
    [
      list_cmd; table_cmd; all_cmd; run_cmd; pipeline_cmd; simulate_cmd;
      estimate_cmd;
    ]

(* Deterministic exit codes: cmdliner owns usage errors (2); structured
   diagnostics map each failure class to its own code (10..17, see
   [Ir.Diag.exit_code]); unknown names are usage errors. *)
let () =
  try exit (Cmd.eval ~catch:false main_cmd) with
  | Ir.Diag.Fail d ->
    prerr_endline (Ir.Diag.to_string d);
    exit (Ir.Diag.exit_code d)
  | Workloads.Registry.Unknown_benchmark name ->
    Printf.eprintf "unknown benchmark: %s (see `impact list')\n" name;
    exit 2
  | Experiments.Runner.Unknown_experiment id ->
    Printf.eprintf "unknown experiment: %s (see `impact list')\n" id;
    exit 2
  | Placement.Strategy.Unknown_strategy id ->
    Printf.eprintf "unknown strategy: %s (see `impact list')\n" id;
    exit 2
  | Failure msg ->
    prerr_endline msg;
    exit 2
