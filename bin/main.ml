(* impact — command-line driver for the IMPACT-I instruction placement
   reproduction: run benchmarks, inspect the placement pipeline, and
   regenerate the paper's tables. *)

open Cmdliner

let bench_names_arg =
  let doc = "Restrict to these benchmarks (default: all ten)." in
  Arg.(value & opt (some (list string)) None & info [ "b"; "benchmarks" ] ~doc)

let context_of ?(engine = Sim.Trace.Streaming) ?(scale = 1) names =
  if scale < 1 then failwith (Printf.sprintf "--scale must be >= 1 (got %d)" scale);
  Experiments.Context.create ~engine ~scale ?names ()

let engine_arg =
  let doc =
    "Trace store for recorded executions: $(b,streaming) (blocks stream \
     from the VM straight into the run-length/delta-compressed store; \
     default) or $(b,buffered) (the raw 8-byte-per-block reference \
     representation).  Results are bit-identical either way."
  in
  Arg.(
    value
    & opt
        (Arg.enum
           [
             ("streaming", Sim.Trace.Streaming);
             ("buffered", Sim.Trace.Buffered);
           ])
        Sim.Trace.Streaming
    & info [ "engine" ] ~docv:"E" ~doc)

let scale_arg =
  let doc =
    "Workload scale factor: 1 (default) runs the paper's programs as-is; \
     above 1 every benchmark is the scaled-up variant (bigger DFAs, a \
     deeper call graph, a larger library surface) with the same name, \
     inputs and outputs."
  in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* Telemetry flags (table-producing commands)                          *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  trace_out : string option;
  metrics_out : string option;
  json_out : string option;
  quiet : bool;
}

let obs_term =
  let trace_out =
    let doc =
      "Record stage spans and write them as Chrome trace-event JSON to \
       $(docv); load the file in chrome://tracing or Perfetto."
    in
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc =
      "Enable the metrics registry and write its text dump to $(docv) \
       ($(b,-) writes to stderr)."
    in
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let json_out =
    let doc =
      "Write the regenerated tables (header + rows, exactly as printed, \
       plus per-table wall times) as machine-readable JSON to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let quiet =
    let doc =
      "Suppress progress and warning chatter; stdout carries the tables \
       only (errors still reach stderr)."
    in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  Term.(
    const (fun trace_out metrics_out json_out quiet ->
        { trace_out; metrics_out; json_out; quiet })
    $ trace_out $ metrics_out $ json_out $ quiet)

(* -j N: run the command over a process-wide domain pool.  -j 1 (the
   serial path) never creates a pool, so it is byte-for-byte the
   pre-parallel behavior; a multi-lane pool fans out benchmarks within
   a table, configurations within a sweep, and strategies within a lint
   sweep, all with bit-identical output. *)
let jobs_term =
  let doc =
    "Use $(docv) domains (default: the number of cores).  Output is \
     bit-identical to $(b,-j 1)."
  in
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let with_parallel jobs f =
  if jobs < 1 then failwith (Printf.sprintf "-j must be >= 1 (got %d)" jobs)
  else if jobs = 1 then f ()
  else begin
    let pool = Placement.Pool.create jobs in
    Placement.Pool.set_default (Some pool);
    Fun.protect
      ~finally:(fun () ->
        Placement.Pool.set_default None;
        Placement.Pool.shutdown pool)
      f
  end

(* Enable the requested telemetry around [f]; the trace and metrics
   files are written even when [f] raises (a failing run is exactly when
   a profile is wanted). *)
let with_telemetry opts f =
  Obs.Log.set_quiet opts.quiet;
  if opts.trace_out <> None then Obs.Span.set_enabled true;
  if opts.metrics_out <> None then Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter Obs.Span.write_chrome opts.trace_out;
      Option.iter Obs.Metrics.write opts.metrics_out)
    f

(* Machine-readable table report: one object per regenerated table with
   the header and rows exactly as printed, so downstream tooling never
   re-parses the text rendering. *)
let outcome_json (o : Experiments.Runner.outcome) =
  let strings ss = Obs.Json.List (List.map (fun s -> Obs.Json.String s) ss) in
  Obs.Json.Obj
    [
      ("id", Obs.Json.String o.Experiments.Runner.spec.Experiments.Runner.id);
      ( "title",
        Obs.Json.String o.Experiments.Runner.spec.Experiments.Runner.title );
      ( "table_title",
        Obs.Json.String (Report.Table.title o.Experiments.Runner.table) );
      ("header", strings (Report.Table.header o.Experiments.Runner.table));
      ( "rows",
        Obs.Json.List
          (List.map
             (fun row -> strings row)
             (Report.Table.rows o.Experiments.Runner.table)) );
      ("wall_seconds", Obs.Json.Float o.Experiments.Runner.wall_seconds);
      ( "warnings",
        strings
          (List.map Ir.Diag.to_string o.Experiments.Runner.fresh_warnings) );
    ]

let write_json_report path ~names outcomes =
  Obs.Json.to_file path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String "impact.table-run/v1");
         ( "benchmarks",
           match names with
           | None -> Obs.Json.Null
           | Some ns ->
             Obs.Json.List (List.map (fun n -> Obs.Json.String n) ns) );
         ("tables", Obs.Json.List (List.map outcome_json outcomes));
       ])

(* --validate for table runs: cheap invariant checks by default, [full]
   adds flow conservation and the simulation cross-check, [off] skips.
   Violations go to stderr and the first error decides the exit code
   (see the handler at the bottom of this file). *)
let validate_arg =
  let doc =
    "Pipeline invariant verification: $(b,off), $(b,cheap) (default; \
     structure, selection, layouts, every strategy's address map, trace \
     layout-invariance) or $(b,full) (adds profile flow conservation \
     and the simulation access-count cross-check)."
  in
  let level =
    Arg.enum
      [
        ("off", None);
        ("cheap", Some Experiments.Validation.Cheap);
        ("full", Some Experiments.Validation.Full);
      ]
  in
  Arg.(
    value
    & opt level (Some Experiments.Validation.Cheap)
    & info [ "validate" ] ~docv:"LEVEL" ~doc)

let run_validation level ctx =
  match level with
  | None -> ()
  | Some level ->
    let diags = Experiments.Validation.check ~level ctx in
    List.iter
      (fun d ->
        let line = Ir.Diag.to_string d in
        if Ir.Diag.is_error d then Obs.Log.error_raw line
        else Obs.Log.warn_raw line)
      diags;
    Ir.Diag.raise_first diags

(* impact list *)
let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun b ->
        Printf.printf "  %-9s %s\n" b.Workloads.Bench.name
          b.Workloads.Bench.description)
      Workloads.Registry.all;
    print_endline "\nlayout strategies (impact simulate --layout ID):";
    List.iter
      (fun s ->
        Printf.printf "  %-9s %s\n" s.Placement.Strategy.id
          s.Placement.Strategy.title)
      Placement.Strategy.all;
    print_endline "\nexperiments (impact table ID):";
    List.iter
      (fun s ->
        let alias =
          match
            List.find_opt
              (fun (_, id) -> id = s.Experiments.Runner.id)
              Experiments.Runner.aliases
          with
          | Some (alias, _) -> Printf.sprintf "  (alias: %s)" alias
          | None -> ""
        in
        Printf.printf "  %-3s %s%s\n" s.Experiments.Runner.id
          s.Experiments.Runner.title alias)
      Experiments.Runner.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks, layout strategies and experiments")
    Term.(const run $ const ())

(* impact table N *)
let table_cmd =
  let id_arg =
    (* Derive the advertised range from the registry so it cannot rot as
       experiments are added. *)
    let ids = List.map (fun s -> s.Experiments.Runner.id) Experiments.Runner.all in
    let doc =
      Printf.sprintf "Experiment id (%s-%s) or alias; see `impact list'."
        (List.hd ids)
        (List.nth ids (List.length ids - 1))
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id names engine scale validate obs jobs =
    with_telemetry obs @@ fun () ->
    with_parallel jobs @@ fun () ->
    let spec = Experiments.Runner.find id in
    let ctx = context_of ~engine ~scale names in
    let o = Experiments.Runner.run_spec ctx spec in
    print_string (Report.Table.render o.Experiments.Runner.table);
    Option.iter (fun p -> write_json_report p ~names [ o ]) obs.json_out;
    run_validation validate ctx
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables")
    Term.(
      const run $ id_arg $ bench_names_arg $ engine_arg $ scale_arg
      $ validate_arg $ obs_term $ jobs_term)

(* impact all *)
let all_cmd =
  let run names engine scale validate obs jobs =
    with_telemetry obs @@ fun () ->
    with_parallel jobs @@ fun () ->
    let ctx = context_of ~engine ~scale names in
    let outcomes =
      List.map
        (fun spec ->
          let o = Experiments.Runner.run_spec ctx spec in
          print_string (Report.Table.render o.Experiments.Runner.table);
          print_newline ();
          o)
        Experiments.Runner.all
    in
    Option.iter (fun p -> write_json_report p ~names outcomes) obs.json_out;
    run_validation validate ctx
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table")
    Term.(
      const run $ bench_names_arg $ engine_arg $ scale_arg $ validate_arg
      $ obs_term $ jobs_term)

(* impact run BENCH *)
let run_cmd =
  let bench_arg =
    let doc = "Benchmark name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let show_output =
    let doc = "Print the program's stream-0 output." in
    Arg.(value & flag & info [ "output" ] ~doc)
  in
  let run name show =
    let b = Workloads.Registry.find name in
    let p = Workloads.Bench.program b in
    let r = Vm.Interp.run p (Workloads.Bench.trace_input b) in
    Printf.printf
      "%s: %d dynamic instructions, %d blocks, %d calls, %d branches, \
       return value %d\n"
      name r.Vm.Interp.dyn_insns r.Vm.Interp.dyn_blocks r.Vm.Interp.dyn_calls
      r.Vm.Interp.dyn_branches r.Vm.Interp.return_value;
    if show then print_string (Vm.Io.output r.Vm.Interp.io 0)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a benchmark on its trace input")
    Term.(const run $ bench_arg $ show_output)

(* impact pipeline BENCH *)
let pipeline_cmd =
  let bench_arg =
    let doc = "Benchmark name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let run name =
    let b = Workloads.Registry.find name in
    let p =
      Placement.Pipeline.run (Workloads.Bench.program b)
        ~inputs:(Workloads.Bench.profile_inputs b)
    in
    let ir = p.Placement.Pipeline.inline_report in
    Printf.printf "benchmark           %s\n" name;
    Printf.printf "functions           %d\n"
      (Array.length p.Placement.Pipeline.program.Ir.Prog.funcs);
    Printf.printf "inlined sites       %d (in %d rounds)\n"
      ir.Placement.Inline.sites_inlined ir.Placement.Inline.rounds_used;
    Printf.printf "static code         %d -> %d insns (%+.1f%%)\n"
      ir.Placement.Inline.insns_before ir.Placement.Inline.insns_after
      (100. *. Placement.Inline.code_increase ir);
    Printf.printf "total bytes         %d\n"
      p.Placement.Pipeline.optimized.Placement.Address_map.total_bytes;
    Printf.printf "effective bytes     %d\n"
      p.Placement.Pipeline.optimized.Placement.Address_map.effective_bytes;
    Printf.printf "function order      %s\n"
      (String.concat " "
         (List.map
            (fun fid ->
              p.Placement.Pipeline.program.Ir.Prog.funcs.(fid).Ir.Prog.name)
            (Array.to_list p.Placement.Pipeline.global.Placement.Global_layout.order)));
    Array.iteri
      (fun fid sel ->
        let f = p.Placement.Pipeline.program.Ir.Prog.funcs.(fid) in
        let lay = p.Placement.Pipeline.layouts.(fid) in
        Printf.printf "  %-24s %3d blocks  %3d traces  %3d active blocks\n"
          f.Ir.Prog.name (Array.length f.Ir.Prog.blocks)
          (Array.length sel.Placement.Trace_select.traces)
          lay.Placement.Func_layout.active_blocks)
      p.Placement.Pipeline.selections
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Show placement pipeline details for a benchmark")
    Term.(const run $ bench_arg)

(* impact simulate BENCH --size --block --assoc --fill --layout *)
let simulate_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
  in
  let size_arg =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"Cache size in bytes.")
  in
  let block_arg =
    Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.")
  in
  let assoc_arg =
    let doc = "Associativity: direct, N (ways), or full." in
    Arg.(value & opt string "direct" & info [ "assoc" ] ~doc)
  in
  let fill_arg =
    let doc = "Fill policy: whole, sector:N, or partial." in
    Arg.(value & opt string "whole" & info [ "fill" ] ~doc)
  in
  let prefetch_arg =
    Arg.(value & flag & info [ "prefetch" ] ~doc:"Next-line tagged prefetch.")
  in
  let layout_arg =
    let doc =
      Printf.sprintf "Layout strategy: %s (`optimized' = impact)."
        (String.concat " | " (Placement.Strategy.ids ()))
    in
    Arg.(value & opt string "impact" & info [ "layout" ] ~doc)
  in
  let run name size block assoc fill prefetch layout =
    let assoc =
      match assoc with
      | "direct" -> Icache.Config.Direct
      | "full" -> Icache.Config.Full
      | n -> Icache.Config.Ways (int_of_string n)
    in
    let fill =
      match String.split_on_char ':' fill with
      | [ "whole" ] -> Icache.Config.Whole
      | [ "partial" ] -> Icache.Config.Partial
      | [ "sector"; n ] -> Icache.Config.Sectored (int_of_string n)
      | _ -> failwith "bad --fill (whole | sector:N | partial)"
    in
    let config = Icache.Config.make ~assoc ~fill ~prefetch ~size ~block () in
    let ctx = Experiments.Context.create ~names:[ name ] () in
    let e = Experiments.Context.find ctx name in
    let strategy =
      let id = if layout = "optimized" then "impact" else layout in
      try Placement.Strategy.find id
      with Placement.Strategy.Unknown_strategy _ ->
        failwith
          (Printf.sprintf "bad --layout (%s)"
             (String.concat " | " (Placement.Strategy.ids ())))
    in
    let map = Experiments.Context.strategy_map e strategy in
    let r =
      Experiments.Context.simulate e config map (Experiments.Context.trace e)
    in
    Printf.printf "%s on %s (%s layout)\n" name
      (Icache.Config.describe config)
      strategy.Placement.Strategy.id;
    Printf.printf "  accesses        %d\n" r.Sim.Driver.accesses;
    Printf.printf "  misses          %d\n" r.Sim.Driver.misses;
    Printf.printf "  miss ratio      %s\n"
      (Report.Fmtutil.pct ~digits:3 r.Sim.Driver.miss_ratio);
    Printf.printf "  traffic ratio   %s\n"
      (Report.Fmtutil.pct ~digits:3 r.Sim.Driver.traffic_ratio);
    Printf.printf "  avg.fetch       %.1f words/miss\n" r.Sim.Driver.avg_fetch_words;
    Printf.printf "  avg.exec        %.1f insns/run\n" r.Sim.Driver.avg_exec_insns;
    Printf.printf "  eff. access     %.3f cyc (blocking) / %.3f (streaming) / %.3f (partial)\n"
      r.Sim.Driver.eat_blocking r.Sim.Driver.eat_streaming
      r.Sim.Driver.eat_streaming_partial
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one cache configuration on a benchmark")
    Term.(
      const run $ bench_arg $ size_arg $ block_arg $ assoc_arg $ fill_arg
      $ prefetch_arg $ layout_arg)

(* impact estimate BENCH *)
let estimate_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
  in
  let size_arg =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"Cache size in bytes.")
  in
  let block_arg =
    Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.")
  in
  let run name size block =
    let config = Icache.Config.make ~size ~block () in
    let ctx = Experiments.Context.create ~names:[ name ] () in
    let e = Experiments.Context.find ctx name in
    let est =
      Sim.Estimate.of_pipeline config (Experiments.Context.pipeline e)
    in
    let sim =
      Experiments.Context.simulate e config
        (Experiments.Context.optimized_map e)
        (Experiments.Context.trace e)
    in
    Printf.printf "%s at %s\n" name (Icache.Config.describe config);
    Printf.printf "  estimated (profile only)  %s  (%d compulsory + %d conflict)\n"
      (Report.Fmtutil.pct ~digits:3 est.Sim.Estimate.est_miss_ratio)
      est.Sim.Estimate.compulsory est.Sim.Estimate.conflict;
    Printf.printf "  simulated (trace driven)  %s\n"
      (Report.Fmtutil.pct ~digits:3 sim.Sim.Driver.miss_ratio)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Profile-only analytical miss estimate vs trace-driven simulation")
    Term.(const run $ bench_arg $ size_arg $ block_arg)

(* impact lint [-b BENCH] [--strategy S|all] [--format text|json]
   [--fail-on warn|error] — the static layout linter: no trace, no
   simulation, just the CFG, the profile weights, the address map and
   the cache geometry.  `--strategy all' sweeps the registry and ranks
   strategies by static conflict score. *)
let lint_cmd =
  let strategy_arg =
    let doc =
      Printf.sprintf
        "Layout strategy to lint: %s, or $(b,all) to sweep the registry \
         and rank strategies by static score."
        (String.concat " | " (Placement.Strategy.ids ()))
    in
    Arg.(value & opt string "impact" & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,text) (default) or $(b,json)." in
    Arg.(
      value
      & opt (Arg.enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let fail_on_arg =
    let doc =
      "Severity that fails the run (exit 18): $(b,error) (default) or \
       $(b,warn) (any finding)."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("error", `Error); ("warn", `Warn) ]) `Error
      & info [ "fail-on" ] ~docv:"SEV" ~doc)
  in
  let max_findings_arg =
    let doc =
      "Cap the findings printed per benchmark/strategy in text format \
       (0 = unlimited); the summary always counts all of them."
    in
    Arg.(value & opt int 25 & info [ "max-findings" ] ~docv:"N" ~doc)
  in
  let min_prob_arg =
    let doc =
      "Hot-arc threshold: an arc is hot when it carries at least this \
       fraction of both endpoint weights (default: the trace-selection \
       MIN_PROB)."
    in
    Arg.(
      value
      & opt float Placement.Trace_select.default_min_prob
      & info [ "min-prob" ] ~docv:"P" ~doc)
  in
  let run names strategy format fail_on max_findings min_prob obs jobs =
    with_telemetry obs @@ fun () ->
    with_parallel jobs @@ fun () ->
    let ctx = context_of names in
    let results =
      List.concat
        (Experiments.Context.map_entries
           (fun e ->
             if strategy = "all" then Experiments.Lint_exp.sweep ~min_prob e
             else
               [
                 Experiments.Lint_exp.lint_entry ~min_prob e
                   (Placement.Strategy.find strategy);
               ])
           ctx)
    in
    (match format with
    | `Json -> print_endline
        (Obs.Json.to_string (Experiments.Lint_exp.report_json ~results))
    | `Text ->
      List.iter
        (fun (r : Experiments.Lint_exp.result) ->
          print_endline (Experiments.Lint_exp.summary r);
          let findings = r.Experiments.Lint_exp.report.Analysis.Lint.findings in
          let shown =
            if max_findings <= 0 then findings
            else List.filteri (fun i _ -> i < max_findings) findings
          in
          List.iter
            (fun (f : Analysis.Lint.finding) ->
              Printf.printf "  [%s] %s\n" f.Analysis.Lint.pass
                (Ir.Diag.to_string f.Analysis.Lint.diag))
            shown;
          let hidden = List.length findings - List.length shown in
          if hidden > 0 then
            Printf.printf "  ... %d more finding(s) (raise --max-findings)\n"
              hidden)
        results;
      if strategy = "all" then
        List.iter
          (fun e ->
            let bench = Experiments.Context.name e in
            let mine =
              List.filter
                (fun (r : Experiments.Lint_exp.result) ->
                  r.Experiments.Lint_exp.bench = bench)
                results
            in
            print_newline ();
            print_string
              (Report.Table.render
                 (Experiments.Lint_exp.ranking_table bench mine)))
          (Experiments.Context.entries ctx));
    Option.iter
      (fun p ->
        Obs.Json.to_file p (Experiments.Lint_exp.report_json ~results))
      obs.json_out;
    (* Deterministic exit: the first threshold-crossing finding decides
       (stage Lint -> exit 18); a clean run exits 0. *)
    let failing =
      List.concat_map
        (fun (r : Experiments.Lint_exp.result) ->
          match fail_on with
          | `Error -> Analysis.Lint.errors r.Experiments.Lint_exp.report
          | `Warn ->
            List.map
              (fun (f : Analysis.Lint.finding) -> f.Analysis.Lint.diag)
              r.Experiments.Lint_exp.report.Analysis.Lint.findings)
        results
    in
    match failing with [] -> () | d :: _ -> raise (Ir.Diag.Fail d)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically lint layouts (no simulation): dead blocks, broken \
          hot arcs, split loops, cache-set conflicts, profile flow")
    Term.(
      const run $ bench_names_arg $ strategy_arg $ format_arg $ fail_on_arg
      $ max_findings_arg $ min_prob_arg $ obs_term $ jobs_term)

(* impact absint [-b BENCH] [--strategy S|all] [--size --block --assoc]
   [--max-iters N] [--format text|json] — abstract interpretation of
   cache states: per-block always-hit / always-miss / first-miss
   classification and a certified miss-count interval under the profile
   weights.  Like lint, this path never records a trace and never
   simulates. *)
let absint_cmd =
  let strategy_arg =
    let doc =
      Printf.sprintf
        "Layout strategy to analyze: %s, or $(b,all) (default) for every \
         registered strategy."
        (String.concat " | " (Placement.Strategy.ids ()))
    in
    Arg.(value & opt string "all" & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let size_arg =
    Arg.(value & opt int 2048 & info [ "size" ] ~doc:"Cache size in bytes.")
  in
  let block_arg =
    Arg.(value & opt int 64 & info [ "block" ] ~doc:"Block size in bytes.")
  in
  let assoc_arg =
    let doc = "Associativity: direct, N (ways), or full." in
    Arg.(value & opt string "direct" & info [ "assoc" ] ~doc)
  in
  let max_iters_arg =
    let doc =
      "Cap the fixpoint solver at $(docv) worklist pops per domain \
       (0 = the size-derived default); a capped run degrades to an \
       unclassified — still sound — result with a warning."
    in
    Arg.(value & opt int 0 & info [ "max-iters" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,text) (default) or $(b,json)." in
    Arg.(
      value
      & opt (Arg.enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run names strategy size block assoc max_iters format obs jobs =
    with_telemetry obs @@ fun () ->
    with_parallel jobs @@ fun () ->
    let assoc =
      match assoc with
      | "direct" -> Icache.Config.Direct
      | "full" -> Icache.Config.Full
      | n -> Icache.Config.Ways (int_of_string n)
    in
    let config = Icache.Config.make ~assoc ~size ~block () in
    let max_iters = if max_iters > 0 then Some max_iters else None in
    let strategies =
      if strategy = "all" then None
      else Some [ Placement.Strategy.find strategy ]
    in
    let ctx = context_of names in
    let results =
      Experiments.Absint_exp.sweep ?max_iters ~config ?strategies ctx
    in
    (match format with
    | `Json ->
      print_endline
        (Obs.Json.to_string (Experiments.Absint_exp.report_json ~results))
    | `Text ->
      List.iter
        (fun r -> print_endline (Experiments.Absint_exp.summary r))
        results);
    Option.iter
      (fun p ->
        Obs.Json.to_file p (Experiments.Absint_exp.report_json ~results))
      obs.json_out
  in
  Cmd.v
    (Cmd.info "absint"
       ~doc:
         "Certified cache-miss bounds by abstract interpretation (no \
          simulation): must/may/persistence domains over the CFG and \
          address map")
    Term.(
      const run $ bench_names_arg $ strategy_arg $ size_arg $ block_arg
      $ assoc_arg $ max_iters_arg $ format_arg $ obs_term $ jobs_term)

let main_cmd =
  let doc =
    "IMPACT-I instruction placement reproduction (Hwu & Chang, ISCA 1989)"
  in
  Cmd.group (Cmd.info "impact" ~doc)
    [
      list_cmd; table_cmd; all_cmd; run_cmd; pipeline_cmd; simulate_cmd;
      estimate_cmd; lint_cmd; absint_cmd;
    ]

(* Deterministic exit codes: cmdliner owns usage errors (2); structured
   diagnostics map each failure class to its own code (10..17 for the
   pipeline stages, 18 for the static linter — see [Ir.Diag.exit_code]);
   unknown names are usage errors. *)
let () =
  try exit (Cmd.eval ~catch:false main_cmd) with
  | Ir.Diag.Fail d ->
    (* Already carries its "[error <stage>]" prefix. *)
    Obs.Log.error_raw (Ir.Diag.to_string d);
    exit (Ir.Diag.exit_code d)
  | Workloads.Registry.Unknown_benchmark name ->
    Obs.Log.error "unknown benchmark: %s (see `impact list')" name;
    exit 2
  | Experiments.Runner.Unknown_experiment id ->
    Obs.Log.error "unknown experiment: %s (see `impact list')" id;
    exit 2
  | Placement.Strategy.Unknown_strategy id ->
    Obs.Log.error "unknown strategy: %s (see `impact list')" id;
    exit 2
  | Failure msg ->
    Obs.Log.error "%s" msg;
    exit 2
