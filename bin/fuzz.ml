(* fuzz — differential layout fuzzer for the placement pipeline.

   Generates N seeded random programs, pushes each through lowering,
   the full placement pipeline, every registered layout strategy and a
   cache simulation, and checks all pipeline invariants plus
   cross-strategy layout invariance.  Failing cases are shrunk to a
   minimal reproducer and reported with the generating seed; the exit
   code identifies the first failure's stage. *)

open Cmdliner

let count_arg =
  Arg.(
    value & opt int 200
    & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of seeded programs.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"First seed; programs use consecutive seeds from here.")

let size_arg =
  Arg.(
    value & opt int 120
    & info [ "size" ] ~docv:"FUEL"
        ~doc:"Generator fuel per program (scales program size).")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:"Suppress progress; print only failures and the summary.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Enable the metrics registry (seeds checked, failures, shrink \
           steps) and write its dump to $(docv) ($(b,-) = stderr).")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Check seeds on $(docv) domains (default: the number of \
           cores).  Failures are identical to $(b,-j 1)'s: detection \
           fans out, shrinking stays serial in seed order.")

let run count first_seed size quiet metrics_out jobs =
  if jobs < 1 then (
    Printf.eprintf "fuzz: -j must be >= 1 (got %d)\n" jobs;
    exit 2);
  Obs.Log.set_quiet quiet;
  if metrics_out <> None then Obs.Metrics.set_enabled true;
  Printf.printf
    "fuzzing %d program(s) from seed %d (size %d) over strategies: %s\n%!"
    count first_seed size
    (String.concat " " (Placement.Strategy.ids ()));
  let log msg = if not quiet then Printf.printf "%s\n%!" msg in
  let pool = if jobs > 1 then Some (Placement.Pool.create jobs) else None in
  let failures =
    Fun.protect
      ~finally:(fun () ->
        Option.iter Placement.Pool.shutdown pool;
        Option.iter Obs.Metrics.write metrics_out)
      (fun () -> Experiments.Fuzz.run ~size ~log ?pool ~first_seed ~count ())
  in
  match failures with
  | [] ->
    Printf.printf "ok: %d program(s) x %d strategies, no violations\n"
      count
      (List.length Placement.Strategy.all)
  | (f : Experiments.Fuzz.failure) :: _ as fs ->
    (* [log] already printed each failure unless --quiet. *)
    if quiet then
      List.iter
        (fun f -> print_string (Fmt.str "%a" Experiments.Fuzz.report_failure f))
        fs;
    Printf.eprintf "%d of %d seed(s) failed\n" (List.length fs) count;
    let code =
      match Ir.Diag.errors f.Experiments.Fuzz.diags with
      | d :: _ -> Ir.Diag.exit_code d
      | [] -> 1
    in
    exit code

let cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzer for the placement pipeline and layout \
             strategies")
    Term.(
      const run $ count_arg $ seed_arg $ size_arg $ quiet_arg
      $ metrics_out_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
