(* checkjson — CI helper: verify that each FILE argument parses as JSON
   with the in-tree parser ([Obs.Json]) and, when a document carries a
   top-level "schema" field, that the schema is one this repository
   emits.  `--ndjson` treats each file as newline-delimited JSON and
   checks every non-blank line (the layout service's wire format).

   Exit codes: 0 when every file passes; 1 on the first malformed
   document; 2 on usage errors; 3 when every document parses but one
   declares an unknown schema — a distinct code so CI can tell "broken
   JSON" from "valid JSON of a version this tree does not speak". *)

let known_schemas =
  [
    "impact.table-run/v1";
    "impact.bench/v1";
    "impact.lint/v1";
    "impact.absint/v1";
    "impact.serve/v1";
    "impact.serve-chaos/v1";
    "impact.soak/v1";
    "impact.metrics/v1";
  ]

(* Known documents with a fixed shape also get a required-field check:
   a soak report missing its contract sections is as useless to CI as
   unparsable JSON, so it fails with the same exit code. *)
let required_fields =
  [
    ( "impact.soak/v1",
      [ "seed"; "requests"; "responses"; "latency"; "memory"; "violations" ] );
    ("impact.metrics/v1", [ "metrics" ]);
    ("impact.absint/v1", [ "results" ]);
  ]

type verdict = { mutable parse_failed : bool; mutable bad_schema : bool }

(* Per-element required fields inside a top-level list — the absint
   report is only useful if every result row carries its certified
   interval and classification counts. *)
let element_fields =
  [
    ( "impact.absint/v1",
      ( "results",
        [ "bench"; "strategy"; "config"; "certified"; "classes"; "gated" ] )
    );
  ]

let check_fields v ~where schema json =
  (match List.assoc_opt schema required_fields with
  | None -> ()
  | Some fields ->
      List.iter
        (fun f ->
          if Obs.Json.member f json = None then begin
            Printf.eprintf "checkjson: %s: %s document missing %S\n" where
              schema f;
            v.parse_failed <- true
          end)
        fields);
  match List.assoc_opt schema element_fields with
  | None -> ()
  | Some (list_field, fields) -> (
      match Obs.Json.member list_field json with
      | Some (Obs.Json.List elems) ->
          List.iteri
            (fun i elem ->
              List.iter
                (fun f ->
                  if Obs.Json.member f elem = None then begin
                    Printf.eprintf
                      "checkjson: %s: %s element %d of %S missing %S\n" where
                      schema i list_field f;
                    v.parse_failed <- true
                  end)
                fields)
            elems
      | _ -> ())

let check_schema v ~where json =
  match json with
  | Obs.Json.Obj _ -> (
      match Obs.Json.member "schema" json with
      | None -> ()  (* schema-less documents (e.g. Chrome traces) are fine *)
      | Some (Obs.Json.String s) when List.mem s known_schemas ->
          check_fields v ~where s json
      | Some (Obs.Json.String s) ->
          Printf.eprintf "checkjson: %s: unknown schema %S\n" where s;
          v.bad_schema <- true
      | Some _ ->
          Printf.eprintf "checkjson: %s: schema must be a string\n" where;
          v.bad_schema <- true)
  | _ -> ()

let check_ndjson v path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let ok = ref true in
        let line_no = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr line_no;
             if String.trim line <> "" then
               let where = Printf.sprintf "%s:%d" path !line_no in
               match Obs.Json.parse line with
               | Ok json ->
                   let before = (v.bad_schema, v.parse_failed) in
                   check_schema v ~where json;
                   if (v.bad_schema, v.parse_failed) <> before then ok := false
               | Error msg ->
                   Printf.eprintf "checkjson: %s: %s\n" where msg;
                   v.parse_failed <- true;
                   ok := false
           done
         with End_of_file -> ());
        if !ok then Printf.printf "checkjson: ok %s (%d lines)\n" path !line_no)

let check_file v ~ndjson path =
  try
    if ndjson then check_ndjson v path
    else
      match Obs.Json.of_file path with
      | Ok json ->
          let before = (v.bad_schema, v.parse_failed) in
          check_schema v ~where:path json;
          if (v.bad_schema, v.parse_failed) = before then
            Printf.printf "checkjson: ok %s\n" path
      | Error msg ->
          Printf.eprintf "checkjson: %s: %s\n" path msg;
          v.parse_failed <- true
  with Sys_error msg ->
    (* an unreadable file is a failed check, not a crash *)
    Printf.eprintf "checkjson: %s\n" msg;
    v.parse_failed <- true

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ndjson = List.mem "--ndjson" args in
  let files = List.filter (fun a -> a <> "--ndjson") args in
  if files = [] then (
    prerr_endline "usage: checkjson [--ndjson] FILE...";
    exit 2);
  let v = { parse_failed = false; bad_schema = false } in
  List.iter (check_file v ~ndjson) files;
  if v.parse_failed then exit 1 else if v.bad_schema then exit 3 else exit 0
