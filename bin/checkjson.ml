(* checkjson — CI helper: verify that each FILE argument parses as JSON
   with the in-tree parser ([Obs.Json]).  Exit 0 when every file parses,
   1 on the first malformed file, 2 on usage errors.  Used by the
   `obs-smoke' make target to validate `--trace-out' / `--json' output
   without external tooling. *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then (
    prerr_endline "usage: checkjson FILE...";
    exit 2);
  let ok =
    List.fold_left
      (fun ok path ->
        match Obs.Json.of_file path with
        | Ok _ ->
          Printf.printf "checkjson: ok %s\n" path;
          ok
        | Error msg ->
          Printf.eprintf "checkjson: %s: %s\n" path msg;
          false)
      true files
  in
  exit (if ok then 0 else 1)
