# Convenience targets; CI runs `make ci` on every PR.

.PHONY: all build test bench bench-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: every table, figures, engine speedup, micro-benchmarks.
bench:
	dune exec bench/main.exe

# Fast end-to-end exercise of the block-granular simulation engine:
# one table, one benchmark, plus the reference-vs-fast engine comparison.
bench-smoke:
	dune exec bench/main.exe -- --only t6 --benchmarks wc

ci: build test bench-smoke

clean:
	dune clean
