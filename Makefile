# Convenience targets; CI runs `make ci` on every PR.

.PHONY: all build test bench bench-smoke strategy-smoke fuzz-smoke validate-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: every table, figures, engine speedup, micro-benchmarks.
bench:
	dune exec bench/main.exe

# Fast end-to-end exercise of the block-granular simulation engine:
# one table, one benchmark, plus the reference-vs-fast engine comparison.
bench-smoke:
	dune exec bench/main.exe -- --only t6 --benchmarks wc

# Smoke the layout-strategy registry: the listing must enumerate it and
# the comparison experiment must run every registered strategy end to end.
strategy-smoke:
	dune exec bin/main.exe -- list
	dune exec bin/main.exe -- table strategy-comparison -b cmp

# Differential layout fuzzer: 200 seeded random programs through the
# whole pipeline and every registered strategy, violation-free.  Seeds
# are printed so a failure is reproducible with `fuzz --seed N`.
fuzz-smoke:
	dune exec bin/fuzz.exe -- --seed 1 --count 200

# One table under exhaustive invariant verification (flow conservation
# and the simulation cross-check included); nonzero exit on violation.
validate-smoke:
	dune exec bin/main.exe -- table strategy-comparison -b cmp --validate=full

ci: build test bench-smoke strategy-smoke fuzz-smoke validate-smoke

clean:
	dune clean
