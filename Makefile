# Convenience targets; CI runs `make ci` on every PR.

.PHONY: all build test bench bench-smoke strategy-smoke fuzz-smoke validate-smoke obs-smoke lint-smoke absint-smoke par-smoke stream-smoke serve-smoke trace-smoke soak-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: every table, figures, engine speedup, micro-benchmarks.
bench:
	dune exec bench/main.exe

# Fast end-to-end exercise of the block-granular simulation engine:
# one table, one benchmark, plus the reference-vs-fast engine comparison.
# `--out ""` keeps the smoke run from clobbering the committed full-run
# report (BENCH_pr7.json).
bench-smoke:
	dune exec bench/main.exe -- --only t6 --benchmarks wc --out ""

# Smoke the layout-strategy registry: the listing must enumerate it and
# the comparison experiment must run every registered strategy end to end.
strategy-smoke:
	dune exec bin/main.exe -- list
	dune exec bin/main.exe -- table strategy-comparison -b cmp

# Differential layout fuzzer: 200 seeded random programs through the
# whole pipeline and every registered strategy, violation-free.  Seeds
# are printed so a failure is reproducible with `fuzz --seed N`.
fuzz-smoke:
	dune exec bin/fuzz.exe -- --seed 1 --count 200

# One table under exhaustive invariant verification (flow conservation
# and the simulation cross-check included); nonzero exit on violation.
validate-smoke:
	dune exec bin/main.exe -- table strategy-comparison -b cmp --validate=full

# Telemetry end to end: one table run emitting all three machine-readable
# outputs (Chrome trace, metrics dump, row JSON), each of which must
# exist and parse.
obs-smoke:
	rm -rf _obs && mkdir -p _obs
	dune exec bin/main.exe -- table comparison -b cmp \
	  --trace-out=_obs/trace.json --metrics-out=_obs/metrics.txt \
	  --json=_obs/rows.json
	test -s _obs/metrics.txt
	dune exec bin/checkjson.exe -- _obs/trace.json _obs/rows.json

# Static layout linter end to end: two benchmarks across every
# registered strategy, JSON report written and re-parsed, lint metrics
# dumped.  No simulation happens anywhere in this target.
lint-smoke:
	rm -rf _obs && mkdir -p _obs
	dune exec bin/main.exe -- lint -b cmp,wc --strategy all --format json \
	  --metrics-out=_obs/lint-metrics.txt > _obs/lint.json
	test -s _obs/lint-metrics.txt
	dune exec bin/checkjson.exe -- _obs/lint.json

# Abstract-interpretation cache bounds end to end: certify two
# benchmarks across every registered strategy (no simulation), re-parse
# the impact.absint/v1 report, then fuzz 200 seeded programs with the
# differential soundness oracle live (always-hit accesses never miss,
# first-miss lines miss at most once per loop entry, simulated misses
# inside every certified interval).
absint-smoke:
	rm -rf _obs && mkdir -p _obs
	dune exec bin/main.exe -- absint -b cmp,yacc --strategy all \
	  --format json > _obs/absint.json
	dune exec bin/checkjson.exe -- _obs/absint.json
	dune exec bin/fuzz.exe -- --seed 1 --count 200

# Parallel bit-identity: the same table and the same quiet fuzz
# campaign at -j 1 and -j 2 must produce byte-identical output (rows,
# failures, everything on stdout).
par-smoke:
	rm -rf _par && mkdir -p _par
	dune exec bin/main.exe -- table strategy-comparison -b cmp,wc -j 1 \
	  > _par/table-j1.txt
	dune exec bin/main.exe -- table strategy-comparison -b cmp,wc -j 2 \
	  > _par/table-j2.txt
	cmp _par/table-j1.txt _par/table-j2.txt
	dune exec bin/fuzz.exe -- --seed 1 --count 200 --quiet -j 1 \
	  > _par/fuzz-j1.txt
	dune exec bin/fuzz.exe -- --seed 1 --count 200 --quiet -j 2 \
	  > _par/fuzz-j2.txt
	cmp _par/fuzz-j1.txt _par/fuzz-j2.txt

# Streaming/compressed trace store end to end: the same table must be
# byte-identical between the streaming (default) and buffered engines,
# and — under streaming — between -j 1 and -j 2; the committed scaled
# bench report must parse.
stream-smoke:
	rm -rf _stream && mkdir -p _stream
	dune exec bin/main.exe -- table 6 -b cmp,wc --engine streaming \
	  > _stream/t6-streaming.txt
	dune exec bin/main.exe -- table 6 -b cmp,wc --engine buffered \
	  > _stream/t6-buffered.txt
	cmp _stream/t6-streaming.txt _stream/t6-buffered.txt
	dune exec bin/main.exe -- table 6 -b cmp,wc --scale 2 -j 1 \
	  > _stream/t6-scale-j1.txt
	dune exec bin/main.exe -- table 6 -b cmp,wc --scale 2 -j 2 \
	  > _stream/t6-scale-j2.txt
	cmp _stream/t6-scale-j1.txt _stream/t6-scale-j2.txt
	dune exec bin/checkjson.exe -- BENCH_pr7.json

# Layout service end to end: the committed golden request stream must
# replay byte-identically to the committed responses (serially and with
# a 2-lane pool), a 200-request seeded chaos campaign must finish with
# zero crashes and one well-formed response per request, and the chaos
# report plus the replayed responses must re-parse with checkjson.
serve-smoke:
	rm -rf _serve && mkdir -p _serve
	dune exec bin/serve.exe -- --replay test/vectors/serve/requests.ndjson \
	  --expect test/vectors/serve/responses.ndjson -b cmp -q -j 1
	dune exec bin/serve.exe -- --replay test/vectors/serve/requests.ndjson \
	  -b cmp -q -j 2 > _serve/replay-j2.ndjson
	cmp _serve/replay-j2.ndjson test/vectors/serve/responses.ndjson
	dune exec bin/serve.exe -- --chaos --chaos-n 200 \
	  --chaos-out _serve/chaos.json -q
	dune exec bin/checkjson.exe -- _serve/chaos.json
	dune exec bin/checkjson.exe -- --ndjson _serve/replay-j2.ndjson \
	  test/vectors/serve/responses.ndjson

# Request tracing end to end: replaying the golden stream with span
# recording on must stay byte-identical to the committed responses
# (instrumentation never changes results), and the emitted Chrome trace
# and metrics dump must exist and parse back.
trace-smoke:
	rm -rf _trace && mkdir -p _trace
	dune exec bin/serve.exe -- --replay test/vectors/serve/requests.ndjson \
	  --expect test/vectors/serve/responses.ndjson -b cmp -q \
	  --trace-out _trace/serve-trace.json
	test -s _trace/serve-trace.json
	dune exec bin/checkjson.exe -- _trace/serve-trace.json
	dune exec bin/serve.exe -- --replay test/vectors/serve/requests.ndjson \
	  -b cmp -q --metrics-out _trace/serve-metrics.txt > /dev/null
	grep -q "serve.latency.all.seconds" _trace/serve-metrics.txt

# Sustained-load soak: 30 seconds of the seeded chaos-weighted workload
# with telemetry live.  The harness itself asserts the contract — zero
# crashes, one response per request, exactly-once staleness
# notifications, nonzero latency quantiles, live heap under the ceiling
# — and exits 1 on any violation; the impact.soak/v1 report must
# re-parse with its required fields present.
soak-smoke:
	rm -rf _soak && mkdir -p _soak
	dune exec bin/serve.exe -- --soak 30 --soak-ceiling-mb 512 \
	  --soak-out _soak/soak.json -q
	dune exec bin/checkjson.exe -- _soak/soak.json

ci: build test bench-smoke strategy-smoke fuzz-smoke validate-smoke obs-smoke lint-smoke absint-smoke par-smoke stream-smoke serve-smoke trace-smoke soak-smoke

clean:
	dune clean
