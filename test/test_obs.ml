(* Telemetry library tests: span nesting and exception safety, Chrome
   trace-event export parsed back with the in-tree JSON parser, metric
   registry math and uniqueness, the log sink with --quiet semantics,
   the immediate surfacing of strategy-fallback warnings, and an on/off
   differential proving instrumentation never changes results. *)

(* Every test leaves the global telemetry state as it found it
   (disabled, default sink, not quiet): these are process-wide toggles
   shared with every other suite in this binary. *)
let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_clean_telemetry f =
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ();
      Obs.Metrics.set_enabled false;
      Obs.Log.reset_sink ();
      Obs.Log.set_quiet false)
    f

(* ---------------- JSON emitter / parser ---------------- *)

let json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\ttab");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 0.125);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ( "l",
          Obs.Json.List
            [ Obs.Json.Int 1; Obs.Json.String "x"; Obs.Json.Obj [] ] );
      ]
  in
  let reparsed = Obs.Json.parse_exn (Obs.Json.to_string v) in
  Alcotest.(check bool) "roundtrip" true (v = reparsed);
  (* Non-finite floats must serialize as null, not break the file. *)
  let nan_doc = Obs.Json.to_string (Obs.Json.Float Float.nan) in
  Alcotest.(check string) "nan is null" "null" nan_doc;
  let inf_doc = Obs.Json.to_string (Obs.Json.Float Float.infinity) in
  Alcotest.(check string) "inf is null" "null" inf_doc;
  match Obs.Json.parse "{broken" with
  | Ok _ -> Alcotest.fail "malformed JSON parsed"
  | Error _ -> ()

(* Adversarial input must come back as a parse error — never a stack
   overflow (depth bomb), never unbounded work (size bomb), never a
   crash on truncation. *)
let json_adversarial () =
  let expect_error name input =
    match Obs.Json.parse input with
    | Ok _ -> Alcotest.fail (name ^ ": malformed input parsed")
    | Error _ -> ()
  in
  (* Truncated documents, every shape. *)
  List.iter
    (fun s -> expect_error "truncated" s)
    [ "{\"a\":"; "[1,2,"; "\"unterminated"; "{\"a\":\"b\\"; "tru"; "-" ];
  (* Depth bomb: 100k nested arrays would overflow the parser's stack
     without the depth limit. *)
  let bomb = String.make 100_000 '[' in
  expect_error "depth bomb" bomb;
  let bomb_obj =
    String.concat "" (List.init 5_000 (fun _ -> "{\"k\":")) ^ "1"
  in
  expect_error "object depth bomb" bomb_obj;
  (* Nesting at the limit still parses; one past it does not. *)
  let nested d = String.make d '[' ^ "1" ^ String.make d ']' in
  (match Obs.Json.parse ~max_depth:16 (nested 16) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("depth at limit rejected: " ^ e));
  (match Obs.Json.parse ~max_depth:16 (nested 17) with
  | Ok _ -> Alcotest.fail "depth past limit parsed"
  | Error _ -> ());
  (* Size bomb: with a byte bound, an oversized payload is rejected
     before any parsing work. *)
  let big = "\"" ^ String.make 4096 'x' ^ "\"" in
  (match Obs.Json.parse ~max_bytes:1024 big with
  | Ok _ -> Alcotest.fail "oversized payload parsed"
  | Error e ->
    Alcotest.(check bool) "size error names the limit" true
      (contains ~needle:"too large" e));
  match Obs.Json.parse ~max_bytes:8192 big with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("payload under the bound rejected: " ^ e)

(* ---------------- spans ---------------- *)

let span_nesting () =
  with_clean_telemetry @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  let r =
    Obs.Span.with_ ~stage:"outer" (fun () ->
        1 + Obs.Span.with_ ~stage:"inner" ~attrs:[ ("k", "v") ] (fun () -> 41))
  in
  Alcotest.(check int) "thunk result" 42 r;
  match Obs.Span.events () with
  | [ inner; outer ] ->
    (* Completion order: the inner span finishes first. *)
    Alcotest.(check string) "inner first" "inner" inner.Obs.Span.name;
    Alcotest.(check string) "outer second" "outer" outer.Obs.Span.name;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
    Alcotest.(check bool) "seq ordering" true
      (inner.Obs.Span.seq < outer.Obs.Span.seq);
    Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ]
      inner.Obs.Span.attrs;
    Alcotest.(check bool) "inner starts inside outer" true
      (inner.Obs.Span.start_us >= outer.Obs.Span.start_us);
    Alcotest.(check bool) "inner no longer than outer" true
      (inner.Obs.Span.dur_us <= outer.Obs.Span.dur_us)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let span_disabled_and_exceptions () =
  with_clean_telemetry @@ fun () ->
  (* Disabled: pure pass-through, nothing recorded. *)
  Obs.Span.set_enabled false;
  Obs.Span.reset ();
  Alcotest.(check int) "pass-through" 7
    (Obs.Span.with_ ~stage:"ghost" (fun () -> 7));
  Alcotest.(check int) "no events while disabled" 0
    (List.length (Obs.Span.events ()));
  (* Enabled: a raising thunk still completes its span. *)
  Obs.Span.set_enabled true;
  (try
     Obs.Span.with_ ~stage:"boom" (fun () -> failwith "expected") |> ignore
   with Failure _ -> ());
  match Obs.Span.events () with
  | [ e ] -> Alcotest.(check string) "span survives raise" "boom" e.Obs.Span.name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let chrome_export_parses_back () =
  with_clean_telemetry @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Obs.Span.with_ ~stage:"alpha" (fun () ->
      Obs.Span.with_ ~stage:"beta" ~attrs:[ ("x", "1") ] (fun () -> ()));
  let path = Filename.temp_file "impact_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Span.write_chrome path;
  let doc =
    match Obs.Json.of_file path with
    | Ok v -> v
    | Error msg -> Alcotest.failf "trace does not parse: %s" msg
  in
  let events =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      List.iter
        (fun key ->
          if Obs.Json.member key ev = None then
            Alcotest.failf "event lacks %S" key)
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
      Alcotest.(check bool) "complete event" true
        (Obs.Json.member "ph" ev = Some (Obs.Json.String "X")))
    events;
  (* Chrome events are sorted by start time: "alpha" opens first. *)
  match Obs.Json.member "name" (List.hd events) with
  | Some (Obs.Json.String n) -> Alcotest.(check string) "sorted by ts" "alpha" n
  | _ -> Alcotest.fail "first event has no name"

(* ---------------- metrics ---------------- *)

let metrics_math () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let c = Obs.Metrics.counter "test.obs.counter" in
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  let h = Obs.Metrics.histogram "test.obs.hist" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.value c);
  Obs.Metrics.set g 2.5;
  Obs.Metrics.set g 1.25;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 1.25
    (Obs.Metrics.gauge_value g);
  List.iter (Obs.Metrics.observe h) [ 2.0; 4.0; 6.0 ];
  Alcotest.(check int) "hist count" 3 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "hist sum" 12.0 (Obs.Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "hist min" 2.0 (Obs.Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "hist max" 6.0 (Obs.Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "hist mean" 4.0 (Obs.Metrics.hist_mean h);
  (* reset zeroes values but keeps registrations visible in the dump. *)
  Obs.Metrics.reset ();
  Alcotest.(check int) "counter reset" 0 (Obs.Metrics.value c);
  Alcotest.(check int) "hist reset" 0 (Obs.Metrics.hist_count h);
  Alcotest.(check bool) "dump still lists the counter" true
    (contains ~needle:"test.obs.counter" (Obs.Metrics.dump ()));
  (* Disabled registry: mutations are no-ops. *)
  Obs.Metrics.set_enabled false;
  Obs.Metrics.incr ~by:100 c;
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "disabled incr ignored" 0 (Obs.Metrics.value c);
  Alcotest.(check int) "disabled observe ignored" 0 (Obs.Metrics.hist_count h)

let metrics_uniqueness () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let a = Obs.Metrics.counter "test.obs.unique" in
  let b = Obs.Metrics.counter "test.obs.unique" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  (* Same (name, kind) yields the same underlying instance. *)
  Alcotest.(check int) "shared instance" 2 (Obs.Metrics.value a);
  (* A cross-kind collision is a programming error. *)
  match Obs.Metrics.gauge "test.obs.unique" with
  | _ -> Alcotest.fail "cross-kind registration succeeded"
  | exception Invalid_argument _ -> ()

(* ---------------- log sink ---------------- *)

let log_sink_and_quiet () =
  with_clean_telemetry @@ fun () ->
  let got = ref [] in
  Obs.Log.set_sink (fun level msg -> got := (level, msg) :: !got);
  Obs.Log.set_quiet false;
  Obs.Log.info "hello %d" 1;
  Obs.Log.warn "weird %s" "thing";
  Obs.Log.error "broke";
  Obs.Log.warn_raw "[warning strategy ph] preformatted";
  (match List.rev !got with
  | [
   (Obs.Log.Info, "hello 1");
   (Obs.Log.Warn, "[warning] weird thing");
   (Obs.Log.Error, "[error] broke");
   (Obs.Log.Warn, "[warning strategy ph] preformatted");
  ] ->
    ()
  | msgs -> Alcotest.failf "unexpected log stream (%d messages)" (List.length msgs));
  (* Quiet drops Info and Warn; Error always reaches the sink. *)
  got := [];
  Obs.Log.set_quiet true;
  Obs.Log.info "dropped";
  Obs.Log.warn "dropped";
  Obs.Log.warn_raw "dropped";
  Obs.Log.error "kept";
  Alcotest.(check int) "only the error passed" 1 (List.length !got);
  match !got with
  | [ (Obs.Log.Error, "[error] kept") ] -> ()
  | _ -> Alcotest.fail "quiet mangled the error path"

(* ---------------- immediate fallback warnings (regression) ---------- *)

let raising_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "explosive-obs";
    title = "always raises (deliberately broken)";
    layout = (fun _ _ -> failwith "boom");
  }

(* The bug this pins down: degradation warnings used to be appended to
   the *next* rendered table, so `impact all` surfaced them minutes
   late (or never, on a crash).  They must hit the log sink during
   [strategy_map] itself, before any table is rendered. *)
let fallback_warning_is_immediate () =
  with_clean_telemetry @@ fun () ->
  let got = ref [] in
  Obs.Log.set_sink (fun level msg -> got := (level, msg) :: !got);
  Obs.Metrics.set_enabled true;
  let fallbacks_before =
    Obs.Metrics.value Experiments.Context.strategy_fallbacks
  in
  let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
  let e = Experiments.Context.find ctx "cmp" in
  let map = Experiments.Context.strategy_map e raising_strategy in
  Alcotest.(check bool) "natural map substituted" true
    (map == Experiments.Context.natural_map e);
  (match !got with
  | [ (Obs.Log.Warn, msg) ] ->
    Alcotest.(check bool) "names the strategy" true
      (contains ~needle:"explosive-obs" msg)
  | msgs ->
    Alcotest.failf "expected exactly 1 immediate warning, got %d"
      (List.length msgs));
  Alcotest.(check int) "fallback counter bumped" (fallbacks_before + 1)
    (Obs.Metrics.value Experiments.Context.strategy_fallbacks);
  (* Memoized retry: no duplicate warning. *)
  ignore (Experiments.Context.strategy_map e raising_strategy);
  Alcotest.(check int) "no duplicate on memoized call" 1 (List.length !got)

(* ---------------- on/off differential ---------------- *)

(* Telemetry must be observation only: the full strategy sweep and a
   simulation produce bit-identical results with instrumentation off
   and on. *)
let on_off_differential () =
  with_clean_telemetry @@ fun () ->
  let config = Icache.Config.make ~size:512 ~block:16 () in
  let run () =
    let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
    let e = Experiments.Context.find ctx "cmp" in
    let rows = Experiments.Strategy_exp.compute ctx in
    let r =
      Experiments.Context.simulate e config
        (Experiments.Context.optimized_map e)
        (Experiments.Context.trace e)
    in
    (rows, r)
  in
  Obs.Span.set_enabled false;
  Obs.Metrics.set_enabled false;
  let rows_off, r_off = run () in
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Obs.Metrics.set_enabled true;
  let rows_on, r_on = run () in
  Alcotest.(check bool) "spans were actually recorded" true
    (Obs.Span.events () <> []);
  Alcotest.(check bool) "strategy rows identical" true (rows_off = rows_on);
  Alcotest.(check bool) "simulation results identical" true (r_off = r_on)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "json adversarial input" `Quick json_adversarial;
    Alcotest.test_case "span nesting and ordering" `Quick span_nesting;
    Alcotest.test_case "span disabled / exception safety" `Quick
      span_disabled_and_exceptions;
    Alcotest.test_case "chrome export parses back" `Quick
      chrome_export_parses_back;
    Alcotest.test_case "metrics math and reset" `Quick metrics_math;
    Alcotest.test_case "metric registry uniqueness" `Quick metrics_uniqueness;
    Alcotest.test_case "log sink and quiet" `Quick log_sink_and_quiet;
    Alcotest.test_case "fallback warning is immediate" `Quick
      fallback_warning_is_immediate;
    Alcotest.test_case "telemetry on/off differential" `Quick
      on_off_differential;
  ]
