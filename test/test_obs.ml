(* Telemetry library tests: span nesting and exception safety, Chrome
   trace-event export parsed back with the in-tree JSON parser, metric
   registry math and uniqueness, the log sink with --quiet semantics,
   the immediate surfacing of strategy-fallback warnings, and an on/off
   differential proving instrumentation never changes results. *)

(* Every test leaves the global telemetry state as it found it
   (disabled, default sink, not quiet): these are process-wide toggles
   shared with every other suite in this binary. *)
let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_clean_telemetry f =
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ();
      Obs.Metrics.set_enabled false;
      Obs.Log.reset_sink ();
      Obs.Log.set_quiet false)
    f

(* ---------------- JSON emitter / parser ---------------- *)

let json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\ttab");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 0.125);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ( "l",
          Obs.Json.List
            [ Obs.Json.Int 1; Obs.Json.String "x"; Obs.Json.Obj [] ] );
      ]
  in
  let reparsed = Obs.Json.parse_exn (Obs.Json.to_string v) in
  Alcotest.(check bool) "roundtrip" true (v = reparsed);
  (* Non-finite floats must serialize as null, not break the file. *)
  let nan_doc = Obs.Json.to_string (Obs.Json.Float Float.nan) in
  Alcotest.(check string) "nan is null" "null" nan_doc;
  let inf_doc = Obs.Json.to_string (Obs.Json.Float Float.infinity) in
  Alcotest.(check string) "inf is null" "null" inf_doc;
  match Obs.Json.parse "{broken" with
  | Ok _ -> Alcotest.fail "malformed JSON parsed"
  | Error _ -> ()

(* Adversarial input must come back as a parse error — never a stack
   overflow (depth bomb), never unbounded work (size bomb), never a
   crash on truncation. *)
let json_adversarial () =
  let expect_error name input =
    match Obs.Json.parse input with
    | Ok _ -> Alcotest.fail (name ^ ": malformed input parsed")
    | Error _ -> ()
  in
  (* Truncated documents, every shape. *)
  List.iter
    (fun s -> expect_error "truncated" s)
    [ "{\"a\":"; "[1,2,"; "\"unterminated"; "{\"a\":\"b\\"; "tru"; "-" ];
  (* Depth bomb: 100k nested arrays would overflow the parser's stack
     without the depth limit. *)
  let bomb = String.make 100_000 '[' in
  expect_error "depth bomb" bomb;
  let bomb_obj =
    String.concat "" (List.init 5_000 (fun _ -> "{\"k\":")) ^ "1"
  in
  expect_error "object depth bomb" bomb_obj;
  (* Nesting at the limit still parses; one past it does not. *)
  let nested d = String.make d '[' ^ "1" ^ String.make d ']' in
  (match Obs.Json.parse ~max_depth:16 (nested 16) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("depth at limit rejected: " ^ e));
  (match Obs.Json.parse ~max_depth:16 (nested 17) with
  | Ok _ -> Alcotest.fail "depth past limit parsed"
  | Error _ -> ());
  (* Size bomb: with a byte bound, an oversized payload is rejected
     before any parsing work. *)
  let big = "\"" ^ String.make 4096 'x' ^ "\"" in
  (match Obs.Json.parse ~max_bytes:1024 big with
  | Ok _ -> Alcotest.fail "oversized payload parsed"
  | Error e ->
    Alcotest.(check bool) "size error names the limit" true
      (contains ~needle:"too large" e));
  match Obs.Json.parse ~max_bytes:8192 big with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("payload under the bound rejected: " ^ e)

(* ---------------- spans ---------------- *)

let span_nesting () =
  with_clean_telemetry @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  let r =
    Obs.Span.with_ ~stage:"outer" (fun () ->
        1 + Obs.Span.with_ ~stage:"inner" ~attrs:[ ("k", "v") ] (fun () -> 41))
  in
  Alcotest.(check int) "thunk result" 42 r;
  match Obs.Span.events () with
  | [ inner; outer ] ->
    (* Completion order: the inner span finishes first. *)
    Alcotest.(check string) "inner first" "inner" inner.Obs.Span.name;
    Alcotest.(check string) "outer second" "outer" outer.Obs.Span.name;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
    Alcotest.(check bool) "seq ordering" true
      (inner.Obs.Span.seq < outer.Obs.Span.seq);
    Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ]
      inner.Obs.Span.attrs;
    Alcotest.(check bool) "inner starts inside outer" true
      (inner.Obs.Span.start_us >= outer.Obs.Span.start_us);
    Alcotest.(check bool) "inner no longer than outer" true
      (inner.Obs.Span.dur_us <= outer.Obs.Span.dur_us)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let span_disabled_and_exceptions () =
  with_clean_telemetry @@ fun () ->
  (* Disabled: pure pass-through, nothing recorded. *)
  Obs.Span.set_enabled false;
  Obs.Span.reset ();
  Alcotest.(check int) "pass-through" 7
    (Obs.Span.with_ ~stage:"ghost" (fun () -> 7));
  Alcotest.(check int) "no events while disabled" 0
    (List.length (Obs.Span.events ()));
  (* Enabled: a raising thunk still completes its span. *)
  Obs.Span.set_enabled true;
  (try
     Obs.Span.with_ ~stage:"boom" (fun () -> failwith "expected") |> ignore
   with Failure _ -> ());
  match Obs.Span.events () with
  | [ e ] -> Alcotest.(check string) "span survives raise" "boom" e.Obs.Span.name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let chrome_export_parses_back () =
  with_clean_telemetry @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Obs.Span.with_ ~stage:"alpha" (fun () ->
      Obs.Span.with_ ~stage:"beta" ~attrs:[ ("x", "1") ] (fun () -> ()));
  let path = Filename.temp_file "impact_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Span.write_chrome path;
  let doc =
    match Obs.Json.of_file path with
    | Ok v -> v
    | Error msg -> Alcotest.failf "trace does not parse: %s" msg
  in
  let events =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      List.iter
        (fun key ->
          if Obs.Json.member key ev = None then
            Alcotest.failf "event lacks %S" key)
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
      Alcotest.(check bool) "complete event" true
        (Obs.Json.member "ph" ev = Some (Obs.Json.String "X")))
    events;
  (* Chrome events are sorted by start time: "alpha" opens first. *)
  match Obs.Json.member "name" (List.hd events) with
  | Some (Obs.Json.String n) -> Alcotest.(check string) "sorted by ts" "alpha" n
  | _ -> Alcotest.fail "first event has no name"

(* ---------------- span collect / add_attr / cap ---------------- *)

let span_collect_and_attrs () =
  with_clean_telemetry @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  (* A span outside the collect window must not leak into it. *)
  Obs.Span.with_ ~stage:"before" (fun () -> ());
  let result, spans =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ ~stage:"outer" ~attrs:[ ("k", "v") ] (fun () ->
            Obs.Span.add_attr "tier" "full";
            Obs.Span.with_ ~stage:"inner" (fun () -> ());
            17))
  in
  Alcotest.(check int) "collect passes the result through" 17 result;
  Alcotest.(check (list string)) "collected spans, oldest first"
    [ "inner"; "outer" ]
    (List.map (fun (e : Obs.Span.event) -> e.name) spans);
  let outer = List.nth spans 1 in
  Alcotest.(check (list (pair string string)))
    "add_attr lands after the with_ attrs"
    [ ("k", "v"); ("tier", "full") ]
    outer.attrs;
  (* add_attr with no open span is a no-op, not a crash. *)
  Obs.Span.add_attr "orphan" "x";
  (* Disabled collect still runs the thunk. *)
  Obs.Span.set_enabled false;
  let r, evs = Obs.Span.collect (fun () -> 3) in
  Alcotest.(check int) "disabled collect result" 3 r;
  Alcotest.(check int) "disabled collect events" 0 (List.length evs)

let span_cap () =
  with_clean_telemetry @@ fun () ->
  Fun.protect ~finally:(fun () -> Obs.Span.set_cap None) @@ fun () ->
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Obs.Span.set_cap (Some 10);
  for i = 1 to 100 do
    Obs.Span.with_ ~stage:(Printf.sprintf "s%03d" i) (fun () -> ())
  done;
  let evs = Obs.Span.events () in
  let n = List.length evs in
  Alcotest.(check bool)
    (Printf.sprintf "cap bounds retention (%d spans kept)" n)
    true
    (n >= 10 && n <= 20);
  (* The survivors are the newest spans. *)
  match List.rev evs with
  | last :: _ -> Alcotest.(check string) "newest span kept" "s100" last.name
  | [] -> Alcotest.fail "no spans retained"

(* ---------------- metrics ---------------- *)

let metrics_math () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let c = Obs.Metrics.counter "test.obs.counter" in
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  let h = Obs.Metrics.histogram "test.obs.hist" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.value c);
  Obs.Metrics.set g 2.5;
  Obs.Metrics.set g 1.25;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 1.25
    (Obs.Metrics.gauge_value g);
  List.iter (Obs.Metrics.observe h) [ 2.0; 4.0; 6.0 ];
  Alcotest.(check int) "hist count" 3 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "hist sum" 12.0 (Obs.Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "hist min" 2.0 (Obs.Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "hist max" 6.0 (Obs.Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "hist mean" 4.0 (Obs.Metrics.hist_mean h);
  (* reset zeroes values but keeps registrations visible in the dump. *)
  Obs.Metrics.reset ();
  Alcotest.(check int) "counter reset" 0 (Obs.Metrics.value c);
  Alcotest.(check int) "hist reset" 0 (Obs.Metrics.hist_count h);
  Alcotest.(check bool) "dump still lists the counter" true
    (contains ~needle:"test.obs.counter" (Obs.Metrics.dump ()));
  (* Disabled registry: mutations are no-ops. *)
  Obs.Metrics.set_enabled false;
  Obs.Metrics.incr ~by:100 c;
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "disabled incr ignored" 0 (Obs.Metrics.value c);
  Alcotest.(check int) "disabled observe ignored" 0 (Obs.Metrics.hist_count h)

(* Quantile estimates land on log-scale bucket upper bounds, so each
   estimate overshoots its sample by at most one bucket width (2^0.25 ≈
   19%) and is clamped into [min, max]. *)
let metrics_quantiles () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.obs.quant" in
  Obs.Metrics.reset ();
  for i = 1 to 100 do
    Obs.Metrics.observe h (float i /. 1000.0)
  done;
  let check_near name want got =
    if got < want || got > want *. 1.19 then
      Alcotest.failf "%s: %g not within one bucket above %g" name got want
  in
  check_near "p50" 0.050 (Obs.Metrics.hist_quantile h 0.50);
  check_near "p90" 0.090 (Obs.Metrics.hist_quantile h 0.90);
  check_near "p99" 0.099 (Obs.Metrics.hist_quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p100 is max" 0.1
    (Obs.Metrics.hist_quantile h 1.0);
  (* Quantiles are monotone in p. *)
  let prev = ref 0.0 in
  List.iter
    (fun p ->
      let q = Obs.Metrics.hist_quantile h p in
      if q < !prev then Alcotest.failf "quantiles not monotone at p=%g" p;
      prev := q)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  (* A single sample answers every quantile with itself. *)
  let h1 = Obs.Metrics.histogram "test.obs.quant1" in
  Obs.Metrics.observe h1 42.0;
  Alcotest.(check (float 1e-9)) "singleton p50" 42.0
    (Obs.Metrics.hist_quantile h1 0.5)

(* The empty-histogram contract: every statistic is 0., never inf or
   NaN, in the accessors, the text dump, and the JSON export. *)
let metrics_empty_histogram () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.obs.empty" in
  Obs.Metrics.reset ();
  List.iter
    (fun (name, v) ->
      Alcotest.(check (float 1e-9)) name 0.0 v;
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v))
    [
      ("empty min", Obs.Metrics.hist_min h);
      ("empty max", Obs.Metrics.hist_max h);
      ("empty mean", Obs.Metrics.hist_mean h);
      ("empty sum", Obs.Metrics.hist_sum h);
      ("empty p50", Obs.Metrics.hist_quantile h 0.5);
      ("empty p99", Obs.Metrics.hist_quantile h 0.99);
    ];
  let dump = Obs.Metrics.dump () in
  Alcotest.(check bool) "dump lists the empty histogram" true
    (contains ~needle:"test.obs.empty" dump);
  Alcotest.(check bool) "dump has no inf/nan" false
    (contains ~needle:"inf" dump || contains ~needle:"nan" dump);
  (* JSON export: the histogram row is present, all-zero, and the
     document roundtrips through the in-tree parser. *)
  let doc = Obs.Metrics.to_json () in
  (match Obs.Json.member "schema" doc with
  | Some (Obs.Json.String "impact.metrics/v1") -> ()
  | _ -> Alcotest.fail "metrics export lacks impact.metrics/v1 schema");
  let reparsed = Obs.Json.parse_exn (Obs.Json.to_string doc) in
  let rows =
    match Obs.Json.member "metrics" reparsed with
    | Some (Obs.Json.List rows) -> rows
    | _ -> Alcotest.fail "metrics export lacks a metrics list"
  in
  let row =
    List.find_opt
      (fun r ->
        Obs.Json.member "name" r = Some (Obs.Json.String "test.obs.empty"))
      rows
  in
  match row with
  | None -> Alcotest.fail "empty histogram missing from JSON export"
  | Some r ->
      List.iter
        (fun k ->
          match Obs.Json.member k r with
          | Some (Obs.Json.Float 0.0) | Some (Obs.Json.Int 0) -> ()
          | Some j ->
              Alcotest.failf "empty histogram %s = %s, want 0" k
                (Obs.Json.to_string j)
          | None -> Alcotest.failf "empty histogram row lacks %S" k)
        [ "n"; "sum"; "min"; "mean"; "max"; "p50"; "p90"; "p99" ]

(* The dump prints the same quantiles the accessors answer. *)
let metrics_dump_quantiles () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.obs.dumpq" in
  Obs.Metrics.reset ();
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let expect =
    Printf.sprintf "p50=%.6f" (Obs.Metrics.hist_quantile h 0.5)
  in
  Alcotest.(check bool) "dump carries p50" true
    (contains ~needle:expect (Obs.Metrics.dump ()))

let metrics_uniqueness () =
  with_clean_telemetry @@ fun () ->
  Obs.Metrics.set_enabled true;
  let a = Obs.Metrics.counter "test.obs.unique" in
  let b = Obs.Metrics.counter "test.obs.unique" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  (* Same (name, kind) yields the same underlying instance. *)
  Alcotest.(check int) "shared instance" 2 (Obs.Metrics.value a);
  (* A cross-kind collision is a programming error. *)
  match Obs.Metrics.gauge "test.obs.unique" with
  | _ -> Alcotest.fail "cross-kind registration succeeded"
  | exception Invalid_argument _ -> ()

(* ---------------- log sink ---------------- *)

let log_sink_and_quiet () =
  with_clean_telemetry @@ fun () ->
  let got = ref [] in
  Obs.Log.set_sink (fun level msg -> got := (level, msg) :: !got);
  Obs.Log.set_quiet false;
  Obs.Log.info "hello %d" 1;
  Obs.Log.warn "weird %s" "thing";
  Obs.Log.error "broke";
  Obs.Log.warn_raw "[warning strategy ph] preformatted";
  (match List.rev !got with
  | [
   (Obs.Log.Info, "hello 1");
   (Obs.Log.Warn, "[warning] weird thing");
   (Obs.Log.Error, "[error] broke");
   (Obs.Log.Warn, "[warning strategy ph] preformatted");
  ] ->
    ()
  | msgs -> Alcotest.failf "unexpected log stream (%d messages)" (List.length msgs));
  (* Quiet drops Info and Warn; Error always reaches the sink. *)
  got := [];
  Obs.Log.set_quiet true;
  Obs.Log.info "dropped";
  Obs.Log.warn "dropped";
  Obs.Log.warn_raw "dropped";
  Obs.Log.error "kept";
  Alcotest.(check int) "only the error passed" 1 (List.length !got);
  match !got with
  | [ (Obs.Log.Error, "[error] kept") ] -> ()
  | _ -> Alcotest.fail "quiet mangled the error path"

(* ---------------- immediate fallback warnings (regression) ---------- *)

let raising_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "explosive-obs";
    title = "always raises (deliberately broken)";
    layout = (fun _ _ -> failwith "boom");
  }

(* The bug this pins down: degradation warnings used to be appended to
   the *next* rendered table, so `impact all` surfaced them minutes
   late (or never, on a crash).  They must hit the log sink during
   [strategy_map] itself, before any table is rendered. *)
let fallback_warning_is_immediate () =
  with_clean_telemetry @@ fun () ->
  let got = ref [] in
  Obs.Log.set_sink (fun level msg -> got := (level, msg) :: !got);
  Obs.Metrics.set_enabled true;
  let fallbacks_before =
    Obs.Metrics.value Experiments.Context.strategy_fallbacks
  in
  let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
  let e = Experiments.Context.find ctx "cmp" in
  let map = Experiments.Context.strategy_map e raising_strategy in
  Alcotest.(check bool) "natural map substituted" true
    (map == Experiments.Context.natural_map e);
  (match !got with
  | [ (Obs.Log.Warn, msg) ] ->
    Alcotest.(check bool) "names the strategy" true
      (contains ~needle:"explosive-obs" msg)
  | msgs ->
    Alcotest.failf "expected exactly 1 immediate warning, got %d"
      (List.length msgs));
  Alcotest.(check int) "fallback counter bumped" (fallbacks_before + 1)
    (Obs.Metrics.value Experiments.Context.strategy_fallbacks);
  (* Memoized retry: no duplicate warning. *)
  ignore (Experiments.Context.strategy_map e raising_strategy);
  Alcotest.(check int) "no duplicate on memoized call" 1 (List.length !got)

(* ---------------- on/off differential ---------------- *)

(* Telemetry must be observation only: the full strategy sweep and a
   simulation produce bit-identical results with instrumentation off
   and on. *)
let on_off_differential () =
  with_clean_telemetry @@ fun () ->
  let config = Icache.Config.make ~size:512 ~block:16 () in
  let run () =
    let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
    let e = Experiments.Context.find ctx "cmp" in
    let rows = Experiments.Strategy_exp.compute ctx in
    let r =
      Experiments.Context.simulate e config
        (Experiments.Context.optimized_map e)
        (Experiments.Context.trace e)
    in
    (rows, r)
  in
  Obs.Span.set_enabled false;
  Obs.Metrics.set_enabled false;
  let rows_off, r_off = run () in
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Obs.Metrics.set_enabled true;
  let rows_on, r_on = run () in
  Alcotest.(check bool) "spans were actually recorded" true
    (Obs.Span.events () <> []);
  Alcotest.(check bool) "strategy rows identical" true (rows_off = rows_on);
  Alcotest.(check bool) "simulation results identical" true (r_off = r_on)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "json adversarial input" `Quick json_adversarial;
    Alcotest.test_case "span nesting and ordering" `Quick span_nesting;
    Alcotest.test_case "span disabled / exception safety" `Quick
      span_disabled_and_exceptions;
    Alcotest.test_case "chrome export parses back" `Quick
      chrome_export_parses_back;
    Alcotest.test_case "metrics math and reset" `Quick metrics_math;
    Alcotest.test_case "histogram quantiles" `Quick metrics_quantiles;
    Alcotest.test_case "empty histogram is all zeros" `Quick
      metrics_empty_histogram;
    Alcotest.test_case "dump carries quantiles" `Quick metrics_dump_quantiles;
    Alcotest.test_case "span collect and add_attr" `Quick
      span_collect_and_attrs;
    Alcotest.test_case "span retention cap" `Quick span_cap;
    Alcotest.test_case "metric registry uniqueness" `Quick metrics_uniqueness;
    Alcotest.test_case "log sink and quiet" `Quick log_sink_and_quiet;
    Alcotest.test_case "fallback warning is immediate" `Quick
      fallback_warning_is_immediate;
    Alcotest.test_case "telemetry on/off differential" `Quick
      on_off_differential;
  ]
