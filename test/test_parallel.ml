(* Parallel execution: the domain pool's ordering/exception contract,
   and serial-vs-parallel bit-identity of every consumer grain — table
   rows, partitioned config sweeps, fuzz campaigns — plus the
   exactly-once guarantee for strategy-fallback accounting and the
   domain safety of the Obs layer. *)

let with_pool n f =
  let pool = Placement.Pool.create n in
  Fun.protect
    ~finally:(fun () -> Placement.Pool.shutdown pool)
    (fun () -> f pool)

let with_default_pool n f =
  with_pool n (fun pool ->
      Placement.Pool.set_default (Some pool);
      Fun.protect
        ~finally:(fun () -> Placement.Pool.set_default None)
        (fun () -> f pool))

(* ---------------- pool contract ---------------- *)

let prop_map_order =
  QCheck.Test.make ~name:"Pool.map = List.map (order preserved)" ~count:25
    QCheck.(list_of_size Gen.(int_range 0 60) small_nat)
    (fun xs ->
      with_pool 3 (fun pool ->
          let f x = (x * 2) + 1 in
          Placement.Pool.map pool f xs = List.map f xs))

(* Tasks raise [Ir.Diag.Fail] carrying their index; whatever subset
   fails and whichever domain ran it, the caller sees the lowest-index
   task's exception with its original payload. *)
let prop_map_exception =
  QCheck.Test.make
    ~name:"Pool.map re-raises the lowest-index failure, payload intact"
    ~count:50
    QCheck.(make ~print:string_of_int Gen.(int_bound 1023))
    (fun mask ->
      with_pool 3 (fun pool ->
          let n = 10 in
          let fails i = mask land (1 lsl i) <> 0 in
          let f i =
            if fails i then
              raise
                (Ir.Diag.Fail
                   (Ir.Diag.make ~stage:Ir.Diag.Strategy
                      ~func:(string_of_int i) "task %d failed" i))
            else i
          in
          let expect_first =
            List.find_opt fails (List.init n (fun i -> i))
          in
          match
            (expect_first, Placement.Pool.map pool f (List.init n (fun i -> i)))
          with
          | None, ys -> ys = List.init n (fun i -> i)
          | Some _, _ -> false (* should have raised *)
          | exception Ir.Diag.Fail d -> (
            match expect_first with
            | Some i -> d.Ir.Diag.func = Some (string_of_int i)
            | None -> false)))

(* A pool task that submits its own job to the same pool must complete
   (the submitter helps run its job), whatever the lane count. *)
let nested_map () =
  with_pool 2 (fun pool ->
      let inner i =
        Placement.Pool.map pool (fun j -> (i * 10) + j) [ 0; 1; 2; 3 ]
      in
      let rows = Placement.Pool.map pool inner [ 0; 1; 2; 3 ] in
      Alcotest.(check (list (list int)))
        "nested results"
        (List.map (fun i -> List.map (fun j -> (i * 10) + j) [ 0; 1; 2; 3 ])
           [ 0; 1; 2; 3 ])
        rows)

(* ---------------- serial vs parallel bit-identity ---------------- *)

let render_tables ids names =
  let ctx = Experiments.Context.create ~names () in
  List.map
    (fun id ->
      let spec = Experiments.Runner.find id in
      Report.Table.render
        (Experiments.Runner.run_spec ctx spec).Experiments.Runner.table)
    ids

(* The same tables rendered on the serial path and under a 4-lane
   default pool must be byte-identical strings. *)
let tables_bit_identical () =
  let ids = [ "6"; "17" ] and names = [ "cmp"; "wc" ] in
  let serial = render_tables ids names in
  let parallel = with_default_pool 4 (fun _ -> render_tables ids names) in
  List.iter2
    (fun s p -> Alcotest.(check string) "rendered table" s p)
    serial parallel

(* simulate_many's contiguous config partition concatenates back to the
   serial sweep's exact results. *)
let driver_partition_identical () =
  let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
  let e = Experiments.Context.find ctx "cmp" in
  let map = Experiments.Context.optimized_map e in
  let trace = Experiments.Context.trace e in
  let configs = Experiments.Table6.configs in
  let serial = Sim.Driver.simulate_many_serial configs map trace in
  let parallel =
    with_default_pool 4 (fun _ -> Sim.Driver.simulate_many configs map trace)
  in
  Alcotest.(check bool) "results identical" true (serial = parallel)

(* A strategy that raises only on a syntactic property of the generated
   program, so a fuzz campaign finds a deterministic subset of seeds. *)
let selective_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "selective";
    title = "raises on programs whose entry has a multiple-of-3 blocks";
    layout =
      (fun f w ->
        if Array.length f.Ir.Prog.blocks mod 3 = 0 then
          failwith "selective boom"
        else Placement.Strategy.natural.Placement.Strategy.layout f w);
  }

let fuzz_parallel_identical () =
  let strategies = [ selective_strategy ] in
  let run pool =
    Experiments.Fuzz.run ~size:60 ~strategies ?pool ~first_seed:1 ~count:12
      ()
  in
  let serial = run None in
  let parallel = with_pool 3 (fun pool -> run (Some pool)) in
  Alcotest.(check (list int))
    "same failing seeds"
    (List.map (fun f -> f.Experiments.Fuzz.seed) serial)
    (List.map (fun f -> f.Experiments.Fuzz.seed) parallel);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical failure report"
        (Fmt.str "%a" Experiments.Fuzz.report_failure a)
        (Fmt.str "%a" Experiments.Fuzz.report_failure b))
    serial parallel

(* ---------------- exactly-once fallback accounting ---------------- *)

let raising_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "explosive-par";
    title = "always raises (deliberately broken)";
    layout = (fun _ _ -> failwith "boom");
  }

(* Four concurrent callers race [strategy_map] on one entry with a
   raising strategy: all must get the same fallback map, and the
   warning and the fallback counter must record exactly once. *)
let concurrent_fallback_once () =
  let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
  let e = Experiments.Context.find ctx "cmp" in
  let metrics0 = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let before = Obs.Metrics.value Experiments.Context.strategy_fallbacks in
  let maps =
    Fun.protect
      ~finally:(fun () -> Obs.Metrics.set_enabled metrics0)
      (fun () ->
        with_pool 2 (fun pool ->
            Placement.Pool.map pool
              (fun _ -> Experiments.Context.strategy_map e raising_strategy)
              [ 0; 1; 2; 3 ]))
  in
  let natural = Experiments.Context.natural_map e in
  List.iter
    (fun m ->
      Alcotest.(check bool) "natural map substituted" true (m == natural))
    maps;
  Alcotest.(check bool) "fell back" true
    (Experiments.Context.fell_back e "explosive-par");
  Alcotest.(check int) "exactly one warning" 1
    (List.length (Experiments.Context.warnings e));
  Alcotest.(check int) "fallback counter bumped once" (before + 1)
    (Obs.Metrics.value Experiments.Context.strategy_fallbacks)

(* ---------------- Obs layer domain safety ---------------- *)

let spans_across_domains () =
  let spans0 = Obs.Span.enabled () in
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_enabled spans0)
    (fun () ->
      let names =
        with_pool 2 (fun pool ->
            Placement.Pool.map pool
              (fun i ->
                Obs.Span.with_ ~stage:(Printf.sprintf "par-span-%d" i)
                  (fun () -> i))
              [ 0; 1; 2; 3 ])
      in
      Alcotest.(check (list int)) "results" [ 0; 1; 2; 3 ] names;
      let evs =
        List.filter
          (fun (e : Obs.Span.event) ->
            String.length e.Obs.Span.name >= 8
            && String.sub e.Obs.Span.name 0 8 = "par-span")
          (Obs.Span.events ())
      in
      Alcotest.(check int) "all 4 spans visible" 4 (List.length evs);
      let seqs = List.map (fun (e : Obs.Span.event) -> e.Obs.Span.seq) evs in
      Alcotest.(check int) "sequence numbers distinct" 4
        (List.length (List.sort_uniq compare seqs)))

let counters_across_domains () =
  let c = Obs.Metrics.counter "test.parallel.bumps" in
  let metrics0 = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let before = Obs.Metrics.value c in
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled metrics0)
    (fun () ->
      with_pool 3 (fun pool ->
          ignore
            (Placement.Pool.map pool
               (fun _ -> Obs.Metrics.incr c)
               (List.init 200 (fun i -> i)))));
  Alcotest.(check int) "no lost increments" (before + 200)
    (Obs.Metrics.value c)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_order;
    QCheck_alcotest.to_alcotest prop_map_exception;
    Alcotest.test_case "nested Pool.map completes" `Quick nested_map;
    Alcotest.test_case "tables bit-identical at -j 1 vs -j 4" `Slow
      tables_bit_identical;
    Alcotest.test_case "driver config partition identical" `Quick
      driver_partition_identical;
    Alcotest.test_case "fuzz campaign identical at -j 1 vs -j 3" `Slow
      fuzz_parallel_identical;
    Alcotest.test_case "concurrent strategy fallback records once" `Quick
      concurrent_fallback_once;
    Alcotest.test_case "spans from worker domains stitched" `Quick
      spans_across_domains;
    Alcotest.test_case "counter increments commute across domains" `Quick
      counters_across_domains;
  ]
