(* Differential tests for the block-granular fast simulation engine:
   [Icache.Cache.access_run] and [Sim.Driver.simulate_many] must be
   exactly equivalent — counters, miss events, and every derived metric —
   to the word-granular reference ([access] / [simulate]), across all
   fill policies, associativities, and prefetch settings. *)

let config_pool =
  [
    Icache.Config.make ~size:512 ~block:32 ();
    Icache.Config.make ~size:512 ~block:32 ~prefetch:true ();
    Icache.Config.make ~size:512 ~block:32 ~assoc:(Icache.Config.Ways 2) ();
    Icache.Config.make ~size:512 ~block:64 ~assoc:Icache.Config.Full ();
    Icache.Config.make ~size:512 ~block:64 ~fill:(Icache.Config.Sectored 8) ();
    Icache.Config.make ~size:512 ~block:64 ~fill:(Icache.Config.Sectored 16)
      ~assoc:(Icache.Config.Ways 2) ();
    Icache.Config.make ~size:512 ~block:64 ~fill:Icache.Config.Partial ();
    Icache.Config.make ~size:256 ~block:64 ~fill:Icache.Config.Partial
      ~assoc:Icache.Config.Full ();
    Icache.Config.make ~size:2048 ~block:64 ~prefetch:true
      ~assoc:(Icache.Config.Ways 4) ();
    Icache.Config.make ~size:128 ~block:32 ~fill:(Icache.Config.Sectored 8)
      ~assoc:Icache.Config.Full ();
  ]

(* --- access_run vs access on random sequential runs --- *)

type event = {
  chunk : int;
  at : int;
  word_in_block : int;
  fetched_words : int;
}

(* Replay [chunks] (a list of (addr, words) sequential runs) word by word
   through the reference engine, collecting the miss events. *)
let replay_words config chunks =
  let cache = Icache.Cache.create config in
  let events = ref [] in
  List.iteri
    (fun chunk (addr, words) ->
      for k = 0 to words - 1 do
        let o = Icache.Cache.access cache (addr + (k * 4)) in
        if o.Icache.Cache.miss then
          events :=
            {
              chunk;
              at = k;
              word_in_block = o.Icache.Cache.word_in_block;
              fetched_words = o.Icache.Cache.fetched_words;
            }
            :: !events
      done)
    chunks;
  (cache, List.rev !events)

let replay_runs config chunks =
  let cache = Icache.Cache.create config in
  let events = ref [] in
  List.iteri
    (fun chunk (addr, words) ->
      Icache.Cache.access_run cache ~addr ~words
        ~on_miss:(fun ~at ~word_in_block ~fetched_words ->
          events := { chunk; at; word_in_block; fetched_words } :: !events))
    chunks;
  (cache, List.rev !events)

let chunks_gen =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, w) -> Printf.sprintf "(%d,%d)" a w) l))
    QCheck.Gen.(
      list_size (int_range 20 120)
        (pair (map (fun a -> a * 4) (int_bound 1023)) (int_range 1 24)))

let prop_access_run_equals_access =
  QCheck.Test.make ~name:"access_run = per-word access (all configs)"
    ~count:60 chunks_gen (fun chunks ->
      List.for_all
        (fun config ->
          let ref_cache, ref_events = replay_words config chunks in
          let fast_cache, fast_events = replay_runs config chunks in
          ref_events = fast_events
          && Icache.Cache.accesses ref_cache = Icache.Cache.accesses fast_cache
          && Icache.Cache.misses ref_cache = Icache.Cache.misses fast_cache
          && Icache.Cache.words_fetched ref_cache
             = Icache.Cache.words_fetched fast_cache
          && Icache.Cache.prefetches ref_cache
             = Icache.Cache.prefetches fast_cache
          && Icache.Cache.invariant fast_cache)
        config_pool)

(* --- simulate_many vs simulate on random programs --- *)

let results_equal (a : Sim.Driver.result) (b : Sim.Driver.result) =
  a.Sim.Driver.accesses = b.Sim.Driver.accesses
  && a.Sim.Driver.misses = b.Sim.Driver.misses
  && a.Sim.Driver.words_fetched = b.Sim.Driver.words_fetched
  && a.Sim.Driver.miss_ratio = b.Sim.Driver.miss_ratio
  && a.Sim.Driver.traffic_ratio = b.Sim.Driver.traffic_ratio
  && a.Sim.Driver.avg_fetch_words = b.Sim.Driver.avg_fetch_words
  && a.Sim.Driver.avg_exec_insns = b.Sim.Driver.avg_exec_insns
  && a.Sim.Driver.eat_blocking = b.Sim.Driver.eat_blocking
  && a.Sim.Driver.eat_streaming = b.Sim.Driver.eat_streaming
  && a.Sim.Driver.eat_streaming_partial = b.Sim.Driver.eat_streaming_partial

let seed_gen =
  QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let prop_simulate_many_equals_simulate =
  QCheck.Test.make
    ~name:"simulate_many = per-config simulate (random programs)" ~count:20
    seed_gen (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let pl = Placement.Pipeline.run p ~inputs:[ Vm.Io.input [] ] in
      let trace =
        Sim.Trace.of_gen
          (Sim.Trace_gen.record pl.Placement.Pipeline.program
             (Vm.Io.input []))
      in
      List.for_all
        (fun map ->
          let fast = Sim.Driver.simulate_many config_pool map trace in
          let ref_ = List.map (fun c -> Sim.Driver.simulate c map trace) config_pool in
          List.for_all2 results_equal ref_ fast)
        [ pl.Placement.Pipeline.optimized; pl.Placement.Pipeline.natural ])

(* --- hand-checked behavior of the bulk API --- *)

let partial_run_events () =
  (* 64B blocks, partial loading.  A run over bytes 32..127 spans two
     cache blocks: a miss at word 8 fills words 8..15 of block 0, then a
     miss at word 0 of block 1 fills the whole of block 1. *)
  let c =
    Icache.Cache.create
      (Icache.Config.make ~size:2048 ~block:64 ~fill:Icache.Config.Partial ())
  in
  let events = ref [] in
  Icache.Cache.access_run c ~addr:32 ~words:24
    ~on_miss:(fun ~at ~word_in_block ~fetched_words ->
      events := (at, word_in_block, fetched_words) :: !events);
  Alcotest.(check (list (triple int int int)))
    "two misses: run start and next block"
    [ (0, 8, 8); (8, 0, 16) ]
    (List.rev !events);
  Alcotest.(check int) "24 accesses" 24 (Icache.Cache.accesses c);
  Alcotest.(check int) "2 misses" 2 (Icache.Cache.misses c);
  (* The front of block 0 is still invalid: a later run over it misses
     and fills up to the valid tail. *)
  let events2 = ref [] in
  Icache.Cache.access_run c ~addr:0 ~words:8
    ~on_miss:(fun ~at ~word_in_block ~fetched_words ->
      events2 := (at, word_in_block, fetched_words) :: !events2);
  Alcotest.(check (list (triple int int int)))
    "front fill stops at the valid tail"
    [ (0, 0, 8) ]
    (List.rev !events2)

let sectored_run_events () =
  (* 64B block, 8B sectors: one run touching three sectors misses once
     per sector, two words each. *)
  let c =
    Icache.Cache.create
      (Icache.Config.make ~size:2048 ~block:64
         ~fill:(Icache.Config.Sectored 8) ())
  in
  let events = ref [] in
  Icache.Cache.access_run c ~addr:4 ~words:5
    ~on_miss:(fun ~at ~word_in_block ~fetched_words ->
      events := (at, word_in_block, fetched_words) :: !events);
  Alcotest.(check (list (triple int int int)))
    "a miss per touched sector"
    [ (0, 1, 2); (1, 2, 2); (3, 4, 2) ]
    (List.rev !events);
  Alcotest.(check int) "traffic = 3 sectors" 6 (Icache.Cache.words_fetched c)

let prefetch_run () =
  (* Whole-block prefetch: a run crossing into the prefetched successor
     block only misses once. *)
  let c =
    Icache.Cache.create
      (Icache.Config.make ~size:2048 ~block:64 ~prefetch:true ())
  in
  let misses = ref 0 in
  Icache.Cache.access_run c ~addr:0 ~words:32
    ~on_miss:(fun ~at:_ ~word_in_block:_ ~fetched_words:_ -> incr misses);
  Alcotest.(check int) "one miss over two blocks" 1 !misses;
  Alcotest.(check int) "one prefetch" 1 (Icache.Cache.prefetches c);
  Alcotest.(check int) "traffic = 2 blocks" 32 (Icache.Cache.words_fetched c)

let suite =
  [
    Alcotest.test_case "partial access_run events" `Quick partial_run_events;
    Alcotest.test_case "sectored access_run events" `Quick sectored_run_events;
    Alcotest.test_case "prefetch access_run" `Quick prefetch_run;
    QCheck_alcotest.to_alcotest prop_access_run_equals_access;
    QCheck_alcotest.to_alcotest prop_simulate_many_equals_simulate;
  ]
