let () =
  Alcotest.run "impact"
    [
      ("insn", Test_insn.suite);
      ("lower", Test_lower.suite);
      ("libc", Test_libc.suite);
      ("simplify", Test_simplify.suite);
      ("interp", Test_interp.suite);
      ("profile", Test_profile.suite);
      ("trace_select", Test_trace_select.suite);
      ("layout", Test_layout.suite);
      ("strategy", Test_strategy.suite);
      ("inline", Test_inline.suite);
      ("cache", Test_cache.suite);
      ("workloads", Test_workloads.suite);
      ("sim", Test_sim.suite);
      ("paging", Test_paging.suite);
      ("pipeline", Test_pipeline.suite);
      ("experiments", Test_experiments.suite);
      ("validate", Test_validate.suite);
      ("differential", Test_differential.suite);
      ("fast_sim", Test_fast_sim.suite);
      ("stream", Test_stream.suite);
      ("shapes", Test_shapes.suite);
      ("obs", Test_obs.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
    ]
