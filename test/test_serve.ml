(* Layout-service tests: protocol parsing and the error taxonomy,
   per-request isolation, weighted profile-merge properties, the
   degradation tiers (natural fallback, cheapest strategy, last-good
   epoch), deadline/timeout semantics, the LRU bounds on the profile
   store and context memo tables, golden-vector replay, and a seeded
   chaos campaign through the full batched serve loop. *)

let bench = "cmp"

let small_config =
  { Serve.Daemon.default_config with benches = Some [ bench ] }

(* One resident daemon shared by the read-only tests; tests that mutate
   profile or counter state build their own. *)
let shared = lazy (Serve.Daemon.create ~config:small_config ())

let line_of = Obs.Json.to_string

let request ?(schema = Serve.Protocol.schema) ~id ~typ fields =
  line_of
    (Obs.Json.Obj
       ([
          ("schema", Obs.Json.String schema);
          ("id", Obs.Json.Int id);
          ("type", Obs.Json.String typ);
        ]
       @ fields))

let layout_line ?(bench = bench) ~id fields =
  request ~id ~typ:"layout-request" (("bench", Obs.Json.String bench) :: fields)

let status_of resp =
  match Obs.Json.member "status" resp with
  | Some (Obs.Json.String s) -> s
  | _ -> "<none>"

let str_field key resp =
  match Obs.Json.member key resp with
  | Some (Obs.Json.String s) -> s
  | _ -> "<none>"

let error_code resp =
  match Obs.Json.member "error" resp with
  | Some err -> (
      match Obs.Json.member "code" err with
      | Some (Obs.Json.Int c) -> c
      | _ -> -1)
  | None -> -1

let pipeline_profile () =
  let d = Lazy.force shared in
  let entry = Experiments.Context.find (Serve.Daemon.context d) bench in
  (Experiments.Context.pipeline entry).Placement.Pipeline.profile

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let protocol_roundtrip () =
  (match
     Serve.Protocol.parse_request
       (layout_line ~id:7
          [
            ("strategy", Obs.Json.String "ph");
            ( "cache",
              Obs.Json.Obj
                [ ("size", Obs.Json.Int 1024); ("block", Obs.Json.Int 32) ] );
            ("deadline_ms", Obs.Json.Int 50);
          ])
   with
  | Ok { id = Obs.Json.Int 7; req = Serve.Protocol.Layout_request r } ->
      Alcotest.(check string) "bench" bench r.bench;
      Alcotest.(check string) "strategy" "ph" r.strategy;
      Alcotest.(check int) "cache size" 1024 r.config.Icache.Config.size;
      Alcotest.(check (option int)) "deadline" (Some 50) r.deadline_ms;
      Alcotest.(check (option string)) "no profile" None r.profile
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error (_, e) -> Alcotest.failf "parse failed: %s" e.message);
  (* Defaults: strategy impact, the paper's 2K/64B cache. *)
  (match Serve.Protocol.parse_request (layout_line ~id:1 []) with
  | Ok { req = Serve.Protocol.Layout_request r; _ } ->
      Alcotest.(check string) "default strategy" "impact" r.strategy;
      Alcotest.(check int) "default size" 2048 r.config.Icache.Config.size
  | _ -> Alcotest.fail "default parse failed");
  let expect_usage what line =
    match Serve.Protocol.parse_request line with
    | Error (_, e) -> Alcotest.(check int) (what ^ " code") 2 e.code
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
  in
  expect_usage "unknown type" (request ~id:1 ~typ:"frobnicate" []);
  expect_usage "unknown schema"
    (request ~schema:"impact.serve/v99" ~id:1 ~typ:"stats" []);
  expect_usage "missing schema" {|{"id":1,"type":"stats"}|};
  expect_usage "composite id"
    {|{"schema":"impact.serve/v1","id":[1,2],"type":"stats"}|};
  expect_usage "negative deadline"
    (layout_line ~id:1 [ ("deadline_ms", Obs.Json.Int (-1)) ]);
  expect_usage "bad cache geometry"
    (layout_line ~id:1
       [
         ( "cache",
           Obs.Json.Obj [ ("size", Obs.Json.Int 7); ("block", Obs.Json.Int 3) ]
         );
       ]);
  expect_usage "truncated" {|{"schema":"impact.serve/v1","ty|}

let error_taxonomy () =
  let open Serve.Protocol in
  Alcotest.(check int) "unknown bench is usage" 2
    (error_of_exn (Workloads.Registry.Unknown_benchmark "x")).code;
  Alcotest.(check int) "unknown strategy is usage" 2
    (error_of_exn (Placement.Strategy.Unknown_strategy "x")).code;
  Alcotest.(check string) "unexpected exn is internal" "internal"
    (error_of_exn Not_found).stage;
  Alcotest.(check int) "internal code" 1 (error_of_exn Not_found).code;
  let d = Ir.Diag.make ~stage:Ir.Diag.Strategy "boom" in
  Alcotest.(check int) "diag keeps its taxonomy code"
    (Ir.Diag.exit_code d) (error_of_diag d).code

(* ------------------------------------------------------------------ *)
(* Isolation: every abuse is one error response, never a crash         *)
(* ------------------------------------------------------------------ *)

let request_isolation () =
  let d = Lazy.force shared in
  let abuses =
    [
      "not json at all";
      String.concat "" (List.init 2000 (fun _ -> "["));
      {|{"schema":"impact.serve/v1","id":1,"type":"layout-request","bench":"no-such"}|};
      layout_line ~id:2
        [
          ( "cache",
            Obs.Json.Obj
              [ ("size", Obs.Json.Int 0); ("block", Obs.Json.Int 64) ] );
        ];
      request ~id:3 ~typ:"profile-upload"
        [
          ("profile", Obs.Json.String "p");
          ("bench", Obs.Json.String bench);
          ( "blocks",
            Obs.Json.List
              [
                Obs.Json.List
                  [ Obs.Json.Int 999; Obs.Json.Int 0; Obs.Json.Int 1 ];
              ] );
        ];
    ]
  in
  List.iter
    (fun abuse ->
      let resp, stop = Serve.Daemon.handle_line d abuse in
      Alcotest.(check bool) "abuse does not stop the daemon" false stop;
      Alcotest.(check string) "abuse answered with error" "error"
        (status_of resp);
      (* The daemon still serves ordinary traffic afterwards. *)
      let ok, _ = Serve.Daemon.handle_line d (request ~id:9 ~typ:"stats" []) in
      Alcotest.(check string) "still serving" "ok" (status_of ok))
    abuses

let oversize_bounded () =
  let config = { small_config with max_request_bytes = 4096 } in
  let d = Serve.Daemon.create ~config () in
  let resp, stop = Serve.Daemon.handle_line d (String.make 5000 'x') in
  Alcotest.(check bool) "not fatal" false stop;
  Alcotest.(check string) "oversize is an error" "error" (status_of resp);
  Alcotest.(check int) "usage code" 2 (error_code resp)

(* ------------------------------------------------------------------ *)
(* Profile merging                                                     *)
(* ------------------------------------------------------------------ *)

let upload_of ~name ?epoch ?weight prof =
  match
    Serve.Protocol.parse_request
      (line_of
         (Serve.Protocol.upload_request_of_profile ~name ~bench ?epoch ?weight
            prof))
  with
  | Ok { req = Serve.Protocol.Profile_upload u; _ } -> u
  | _ -> Alcotest.fail "upload round-trip failed"

let prog_of_shared () =
  let d = Lazy.force shared in
  let entry = Experiments.Context.find (Serve.Daemon.context d) bench in
  (Experiments.Context.pipeline entry).Placement.Pipeline.program

(* Canonical serialization of the materialized profile: equality on all
   four count tables at once. *)
let snapshot store name =
  match Serve.Store.view store name with
  | Serve.Store.Fresh { profile; _ } | Serve.Store.Last_good { profile; _ } ->
      line_of
        (Serve.Protocol.upload_request_of_profile ~name:"snap" ~bench profile)
  | Serve.Store.Empty -> "<empty>"
  | Serve.Store.Unknown -> "<unknown>"

let must_upload store ~prog u =
  match Serve.Store.upload store ~prog u with
  | Ok o -> o
  | Error e -> Alcotest.failf "upload rejected: %s" e.message

let merge_self_doubles () =
  let prof = pipeline_profile () in
  let prog = prog_of_shared () in
  let store = Serve.Store.create () in
  let u1 = upload_of ~name:"twice" prof in
  ignore (must_upload store ~prog u1);
  ignore (must_upload store ~prog u1);
  let u2 = upload_of ~name:"double" ~weight:2.0 prof in
  ignore (must_upload store ~prog u2);
  Alcotest.(check string) "merging a profile with itself doubles weights"
    (snapshot store "double") (snapshot store "twice");
  (* Doubling an integer-conserving profile conserves flow. *)
  (match Serve.Store.view store "twice" with
  | Serve.Store.Fresh { profile; _ } ->
      Alcotest.(check int) "flow conservation after self-merge" 0
        (List.length (Placement.Validate.flow profile))
  | _ -> Alcotest.fail "expected a fresh view")

let merge_commutative =
  QCheck.Test.make ~name:"weighted merge is order-independent" ~count:12
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (w1, w2) ->
      let prof = pipeline_profile () in
      let prog = prog_of_shared () in
      let ua = upload_of ~name:"m" ~weight:(float_of_int w1) prof in
      let ub = upload_of ~name:"m" ~weight:(float_of_int w2) prof in
      let merged order =
        let store = Serve.Store.create () in
        List.iter (fun u -> ignore (must_upload store ~prog u)) order;
        snapshot store "m"
      in
      let ab = merged [ ua; ub ] and ba = merged [ ub; ua ] in
      if ab <> ba then QCheck.Test.fail_report "merge order changed the result";
      (* Integer-weighted merges of a flow-conserving profile conserve
         flow by linearity. *)
      String.length ab > 0 && ab <> "<empty>")

let poisoned_pins_last_good () =
  let store = Serve.Store.create () in
  let prog = prog_of_shared () in
  let prof = pipeline_profile () in
  ignore (must_upload store ~prog (upload_of ~name:"p" ~epoch:1 prof));
  let good = snapshot store "p" in
  (* Structurally valid, but entry counts without matching block weights
     break flow conservation: the upload is accepted and poisons. *)
  let o =
    must_upload store ~prog
      {
        Serve.Protocol.profile = "p";
        bench;
        epoch = Some 2;
        weight = 1.0;
        blocks = [];
        arcs = [];
        entries = [ (0, 7.0) ];
        calls = [];
      }
  in
  Alcotest.(check bool) "poisoning upload accepted" true o.accepted;
  Alcotest.(check bool) "marked poisoned" true o.poisoned;
  Alcotest.(check bool) "violations reported" true (o.flow_violations > 0);
  (match Serve.Store.view store "p" with
  | Serve.Store.Last_good { epoch; _ } ->
      Alcotest.(check int) "pinned to the last good epoch" 1 epoch
  | _ -> Alcotest.fail "expected the last-good view");
  Alcotest.(check string) "last-good snapshot unchanged" good
    (snapshot store "p")

let stale_epoch_rejected () =
  let store = Serve.Store.create ~window:4 () in
  let prog = prog_of_shared () in
  let prof = pipeline_profile () in
  ignore (must_upload store ~prog (upload_of ~name:"s" ~epoch:5 prof));
  let o = must_upload store ~prog (upload_of ~name:"s" ~epoch:0 prof) in
  Alcotest.(check bool) "stale upload not merged" false o.accepted;
  Alcotest.(check (option string)) "typed reason" (Some "stale-epoch") o.reason;
  Alcotest.(check int) "window floor" 2 o.min_live

let store_cap_evicts () =
  let store = Serve.Store.create ~cap:2 () in
  let prog = prog_of_shared () in
  let prof = pipeline_profile () in
  List.iter
    (fun name -> ignore (must_upload store ~prog (upload_of ~name prof)))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "store stays at its cap" 2 (Serve.Store.size store);
  (* The most recent uploads survive. *)
  Alcotest.(check bool) "latest profile resident" true
    (Serve.Store.view store "d" <> Serve.Store.Unknown);
  Alcotest.(check bool) "oldest profile evicted" true
    (Serve.Store.view store "a" = Serve.Store.Unknown)

(* ------------------------------------------------------------------ *)
(* Degradation tiers and deadlines                                     *)
(* ------------------------------------------------------------------ *)

let deadline_semantics () =
  let d = Lazy.force shared in
  let resp, _ =
    Serve.Daemon.handle_line d
      (layout_line ~id:1 [ ("deadline_ms", Obs.Json.Int 0) ])
  in
  Alcotest.(check string) "zero deadline times out" "timeout" (status_of resp);
  (match Obs.Json.member "retry_after_ms" resp with
  | Some (Obs.Json.Int r) ->
      Alcotest.(check bool) "retry hint bounded" true (r >= 1 && r <= 10_000)
  | _ -> Alcotest.fail "timeout must carry retry_after_ms");
  let resp, _ =
    Serve.Daemon.handle_line d
      (layout_line ~id:2 [ ("deadline_ms", Obs.Json.Int 1) ])
  in
  Alcotest.(check string) "tight deadline served" "ok" (status_of resp);
  Alcotest.(check string) "tier is cheapest-strategy" "cheapest-strategy"
    (str_field "tier" resp);
  Alcotest.(check string) "served the natural layout" "natural"
    (str_field "strategy" resp);
  Alcotest.(check string) "requested strategy reported" "impact"
    (str_field "requested_strategy" resp);
  (* The cheap tier answers with a certified miss interval from the
     abstract interpretation — no trace replay — instead of a simulated
     prediction. *)
  Alcotest.(check bool) "cheap tier does not simulate" true
    (Obs.Json.member "predicted" resp = None);
  (match Obs.Json.member "certified" resp with
  | Some c -> (
      match (Obs.Json.member "misses_lo" c, Obs.Json.member "misses_hi" c) with
      | Some (Obs.Json.Int lo), Some (Obs.Json.Int hi) ->
          Alcotest.(check bool) "certified interval ordered" true
            (0 <= lo && lo <= hi)
      | _ -> Alcotest.fail "certified must carry misses_lo/misses_hi")
  | None -> Alcotest.fail "cheap tier must carry a certified bound");
  (* A roomy deadline still gets the simulated prediction. *)
  let resp, _ =
    Serve.Daemon.handle_line d
      (layout_line ~id:3 [ ("deadline_ms", Obs.Json.Int 30_000) ])
  in
  Alcotest.(check bool) "roomy deadline simulates" true
    (Obs.Json.member "predicted" resp <> None)

let raising_strategy_degrades () =
  let config =
    {
      small_config with
      extra_strategies = [ Serve.Chaos.chaos_strategy ];
    }
  in
  let d = Serve.Daemon.create ~config () in
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let resp, _ =
    Serve.Daemon.handle_line d
      (layout_line ~id:1 [ ("strategy", Obs.Json.String "chaos-raise") ])
  in
  Alcotest.(check string) "raising strategy still serves" "ok"
    (status_of resp);
  Alcotest.(check string) "tier is natural-fallback" "natural-fallback"
    (str_field "tier" resp);
  Alcotest.(check string) "natural layout substituted" "natural"
    (str_field "strategy" resp)

let poisoned_profile_tier () =
  let d = Serve.Daemon.create ~config:small_config () in
  let prof = pipeline_profile () in
  let upload =
    line_of
      (Serve.Protocol.upload_request_of_profile ~name:"g" ~bench ~epoch:1 prof)
  in
  let poison =
    request ~id:2 ~typ:"profile-upload"
      [
        ("profile", Obs.Json.String "g");
        ("bench", Obs.Json.String bench);
        ("epoch", Obs.Json.Int 2);
        ( "entries",
          Obs.Json.List [ Obs.Json.List [ Obs.Json.Int 0; Obs.Json.Int 3 ] ] );
      ]
  in
  let ask ~id =
    layout_line ~id [ ("profile", Obs.Json.String "g") ]
  in
  match Serve.Daemon.run_lines d [ upload; ask ~id:10; poison; ask ~id:11 ] with
  | [ up; fresh; poisoned; pinned ] ->
      Alcotest.(check string) "upload ok" "ok" (status_of up);
      Alcotest.(check string) "fresh tier" "none" (str_field "tier" fresh);
      Alcotest.(check string) "poisoning accepted" "ok" (status_of poisoned);
      Alcotest.(check string) "pinned tier" "last-good-epoch"
        (str_field "tier" pinned)
  | other -> Alcotest.failf "expected 4 responses, got %d" (List.length other)

let unknown_profile_errors () =
  let d = Lazy.force shared in
  let resp, _ =
    Serve.Daemon.handle_line d
      (layout_line ~id:1 [ ("profile", Obs.Json.String "never-uploaded") ])
  in
  Alcotest.(check string) "unknown profile is an error" "error"
    (status_of resp);
  Alcotest.(check int) "usage code" 2 (error_code resp)

(* ------------------------------------------------------------------ *)
(* Context memo bounds                                                 *)
(* ------------------------------------------------------------------ *)

let context_memo_cap () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let before = Obs.Metrics.value Experiments.Context.memo_evictions in
  let ctx = Experiments.Context.create ~memo_cap:2 ~names:[ bench ] () in
  let entry = Experiments.Context.find ctx bench in
  let map = Experiments.Context.optimized_map entry in
  let trace = Experiments.Context.trace entry in
  let configs =
    List.map
      (fun size -> Icache.Config.make ~size ~block:64 ())
      [ 512; 1024; 2048; 4096 ]
  in
  let results =
    List.map (fun c -> Experiments.Context.simulate entry c map trace) configs
  in
  Alcotest.(check int) "all four configs simulated" 4 (List.length results);
  Alcotest.(check bool) "memo stays at its cap" true
    (Hashtbl.length entry.Experiments.Context.sim_cache <= 2);
  Alcotest.(check bool) "evictions counted" true
    (Obs.Metrics.value Experiments.Context.memo_evictions > before);
  (* Evicted points are recomputed with identical results. *)
  let again = Experiments.Context.simulate entry (List.hd configs) map trace in
  Alcotest.(check (float 0.0)) "recomputed result identical"
    (List.hd results).Sim.Driver.miss_ratio again.Sim.Driver.miss_ratio

let strategy_map_cap () =
  let ctx = Experiments.Context.create ~strategy_cap:2 ~names:[ bench ] () in
  let entry = Experiments.Context.find ctx bench in
  List.iter
    (fun s -> ignore (Experiments.Context.strategy_map entry s))
    Placement.Strategy.all;
  Alcotest.(check bool) "strategy maps bounded" true
    (List.length entry.Experiments.Context.strategy_maps <= 2)

(* ------------------------------------------------------------------ *)
(* Golden vectors and batching determinism                             *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  In_channel.with_open_bin path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  go []

(* `dune runtest` runs with the test directory as cwd; `dune exec
   test/test_impact.exe` runs from the project root. *)
let vector_path p = if Sys.file_exists p then p else Filename.concat "test" p

let golden_replay () =
  let requests = read_lines (vector_path "vectors/serve/requests.ndjson") in
  let expected = read_lines (vector_path "vectors/serve/responses.ndjson") in
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let d = Serve.Daemon.create ~config:small_config () in
  let got = List.map line_of (Serve.Daemon.run_lines d requests) in
  Alcotest.(check int) "one response per recorded request"
    (List.length expected) (List.length got);
  List.iteri
    (fun i (g, e) ->
      Alcotest.(check string) (Printf.sprintf "response %d byte-identical" i) e
        g)
    (List.combine got expected)

let batching_deterministic () =
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let lines =
    request ~id:0 ~typ:"stats" []
    :: List.concat_map
         (fun strategy ->
           [
             layout_line ~id:1 [ ("strategy", Obs.Json.String strategy) ];
             "garbage in the middle";
           ])
         [ "impact"; "natural"; "ph" ]
    @ [ request ~id:99 ~typ:"stats" []; request ~id:100 ~typ:"shutdown" [] ]
  in
  let run () =
    let d = Serve.Daemon.create ~config:small_config () in
    List.map line_of (Serve.Daemon.run_lines d lines)
  in
  let serial = run () in
  let saved = Placement.Pool.default () in
  let pool = Placement.Pool.create 2 in
  Placement.Pool.set_default (Some pool);
  let parallel =
    Fun.protect
      ~finally:(fun () ->
        Placement.Pool.set_default saved;
        Placement.Pool.shutdown pool)
      run
  in
  Alcotest.(check (list string)) "responses byte-identical under -j 2" serial
    parallel

let chaos_campaign () =
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let report = Serve.Chaos.run ~seed:1234 ~n:60 () in
  Alcotest.(check int) "one response per request" report.Serve.Chaos.requests
    report.responses;
  Alcotest.(check (list string)) "no contract violations" []
    report.violations;
  Alcotest.(check bool) "every abuse family exercised" true
    (List.length report.by_category >= 8)

(* ------------------------------------------------------------------ *)
(* Observability: stats v2, health, subscriptions, soak                *)
(* ------------------------------------------------------------------ *)

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let int_field key resp =
  match Obs.Json.member key resp with
  | Some (Obs.Json.Int i) -> i
  | _ -> Alcotest.failf "field %S missing or not an int" key

let run_stream ?config lines =
  let config = Option.value config ~default:small_config in
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let d = Serve.Daemon.create ~config () in
  Serve.Daemon.run_lines d lines

let is_notification resp =
  Obs.Json.member "type" resp = Some (Obs.Json.String "notification")

(* The raw poisoning upload from the golden stream: structurally valid,
   not flow-conserving, so it is accepted and marks the profile. *)
let poison_line ~id ~profile ~epoch =
  request ~id ~typ:"profile-upload"
    [
      ("profile", Obs.Json.String profile);
      ("bench", Obs.Json.String bench);
      ("epoch", Obs.Json.Int epoch);
      ( "entries",
        Obs.Json.List [ Obs.Json.List [ Obs.Json.Int 0; Obs.Json.Int 7 ] ] );
    ]

let upload_line ~id ~name ~epoch =
  line_of
    (Serve.Protocol.upload_request_of_profile ~id:(Obs.Json.Int id) ~name
       ~bench ~epoch (pipeline_profile ()))

let stats_v2_fields () =
  let out =
    run_stream
      [
        layout_line ~id:1 [ ("strategy", Obs.Json.String "impact") ];
        request ~id:2 ~typ:"subscribe" [];
        request ~id:3 ~typ:"stats" [];
      ]
  in
  let stats = List.nth out 2 in
  Alcotest.(check int) "stats_version" 2 (int_field "stats_version" stats);
  (* Metrics are off in tests, so every wall-clock field is exactly
     zero — the determinism contract for the replay path. *)
  Alcotest.(check bool) "uptime is zero with metrics off" true
    (Obs.Json.member "uptime_seconds" stats = Some (Obs.Json.Float 0.0));
  Alcotest.(check int) "served" 2 (int_field "served" stats);
  Alcotest.(check int) "subscriptions" 1 (int_field "subscriptions" stats);
  Alcotest.(check int) "notifications" 0 (int_field "notifications" stats);
  (match Obs.Json.member "evictions" stats with
  | Some ev ->
      List.iter
        (fun k -> ignore (int_field k ev))
        [ "profiles"; "maps"; "memo" ]
  | None -> Alcotest.fail "stats lacks evictions");
  match Obs.Json.member "latency" stats with
  | Some lat -> (
      match Obs.Json.member "all" lat with
      | Some row ->
          Alcotest.(check int) "latency.all.count zero with metrics off" 0
            (int_field "count" row)
      | None -> Alcotest.fail "latency lacks the all row")
  | None -> Alcotest.fail "stats lacks latency"

let health_verdicts () =
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let d = Serve.Daemon.create ~config:small_config () in
  let health id =
    match Serve.Daemon.run_lines d [ request ~id ~typ:"health" [] ] with
    | [ resp ] -> resp
    | _ -> Alcotest.fail "health did not answer exactly once"
  in
  let h1 = health 1 in
  Alcotest.(check string) "fresh daemon is ready" "ready"
    (str_field "verdict" h1);
  Alcotest.(check bool) "ready flag" true
    (Obs.Json.member "ready" h1 = Some (Obs.Json.Bool true));
  ignore
    (Serve.Daemon.run_lines d
       [ upload_line ~id:2 ~name:"sick" ~epoch:1;
         poison_line ~id:3 ~profile:"sick" ~epoch:2 ]);
  let h2 = health 4 in
  Alcotest.(check string) "poisoned profile degrades" "degraded"
    (str_field "verdict" h2);
  (match Obs.Json.member "checks" h2 with
  | Some checks ->
      Alcotest.(check int) "poisoned count surfaced" 1
        (int_field "poisoned_profiles" checks)
  | None -> Alcotest.fail "health lacks checks");
  Alcotest.(check bool) "not ready when degraded" true
    (Obs.Json.member "ready" h2 = Some (Obs.Json.Bool false))

(* The exactly-once contract: one notification per (cached layout,
   epoch).  A same-epoch merge bumps the revision but must not
   re-notify; a below-window (stale-epoch) upload must not notify; the
   next epoch notifies again for a map that is still stale. *)
let subscribe_exactly_once () =
  let out =
    run_stream
      [
        upload_line ~id:1 ~name:"live" ~epoch:5;
        layout_line ~id:2
          [
            ("strategy", Obs.Json.String "exttsp");
            ("profile", Obs.Json.String "live");
          ];
        request ~id:3 ~typ:"subscribe"
          [ ("profiles", Obs.Json.List [ Obs.Json.String "live" ]) ];
        upload_line ~id:4 ~name:"live" ~epoch:6;
        upload_line ~id:5 ~name:"live" ~epoch:6;
        request ~id:6 ~typ:"stats" [];
        upload_line ~id:7 ~name:"live" ~epoch:1;
        upload_line ~id:8 ~name:"live" ~epoch:7;
      ]
  in
  let notes, resps = List.partition is_notification out in
  Alcotest.(check int) "one response per request" 8 (List.length resps);
  Alcotest.(check int) "epochs 6 and 7 notify exactly once each" 2
    (List.length notes);
  let epochs = List.map (int_field "epoch") notes in
  Alcotest.(check (list int)) "notification epochs in order" [ 6; 7 ] epochs;
  List.iter
    (fun n ->
      Alcotest.(check string) "notification event" "layouts-stale"
        (str_field "event" n);
      Alcotest.(check string) "notification profile" "live"
        (str_field "profile" n);
      match Obs.Json.member "stale" n with
      | Some (Obs.Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "notification has no stale layouts")
    notes;
  (* The repeated epoch-2 upload was rejected as stale, not notified. *)
  let rejected =
    List.filter
      (fun r ->
        Obs.Json.member "accepted" r = Some (Obs.Json.Bool false))
      resps
  in
  Alcotest.(check int) "stale-epoch upload rejected" 1 (List.length rejected)

(* An unsubscribed stream and a mismatched filter never notify. *)
let subscribe_filters () =
  let base subscribe =
    (if subscribe then
       [ request ~id:9 ~typ:"subscribe"
           [ ("profiles", Obs.Json.List [ Obs.Json.String "other" ]) ] ]
     else [])
    @ [
        upload_line ~id:1 ~name:"live" ~epoch:1;
        layout_line ~id:2
          [
            ("strategy", Obs.Json.String "exttsp");
            ("profile", Obs.Json.String "live");
          ];
        upload_line ~id:3 ~name:"live" ~epoch:2;
      ]
  in
  List.iter
    (fun subscribe ->
      let notes = List.filter is_notification (run_stream (base subscribe)) in
      Alcotest.(check int)
        (if subscribe then "filtered subscription silent"
         else "no subscribers, no notifications")
        0 (List.length notes))
    [ false; true ]

(* Concurrent subscribe/upload/layout interleavings: the batched loop
   with a 2-domain pool must emit byte-identical output — responses
   and notifications in the same positions. *)
let notifications_deterministic () =
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let lines =
    [
      upload_line ~id:1 ~name:"live" ~epoch:1;
      layout_line ~id:2
        [
          ("strategy", Obs.Json.String "exttsp");
          ("profile", Obs.Json.String "live");
        ];
      request ~id:3 ~typ:"subscribe" [];
      layout_line ~id:4 [ ("strategy", Obs.Json.String "impact") ];
      layout_line ~id:5 [ ("strategy", Obs.Json.String "natural") ];
      upload_line ~id:6 ~name:"live" ~epoch:2;
      layout_line ~id:7
        [
          ("strategy", Obs.Json.String "exttsp");
          ("profile", Obs.Json.String "live");
        ];
      request ~id:8 ~typ:"health" [];
      upload_line ~id:9 ~name:"live" ~epoch:3;
      request ~id:10 ~typ:"stats" [];
    ]
  in
  let run () =
    let d = Serve.Daemon.create ~config:small_config () in
    List.map line_of (Serve.Daemon.run_lines d lines)
  in
  let serial = run () in
  Alcotest.(check bool) "stream produced notifications" true
    (List.exists (fun l -> contains_sub l "layouts-stale") serial);
  let saved = Placement.Pool.default () in
  let pool = Placement.Pool.create 2 in
  Placement.Pool.set_default (Some pool);
  let parallel =
    Fun.protect
      ~finally:(fun () ->
        Placement.Pool.set_default saved;
        Placement.Pool.shutdown pool)
      run
  in
  Alcotest.(check (list string))
    "responses and notifications byte-identical under -j 2" serial parallel

let mini_soak () =
  Obs.Log.set_quiet true;
  Fun.protect ~finally:(fun () -> Obs.Log.set_quiet false) @@ fun () ->
  let config =
    {
      (Serve.Soak.default_config ()) with
      Serve.Soak.duration_s = 1.0;
      interval_s = 0.2;
      round_requests = 8;
    }
  in
  let report = Serve.Soak.run ~config () in
  Alcotest.(check (list string)) "no soak violations" []
    report.Serve.Soak.violations;
  Alcotest.(check int) "one response per request" report.requests
    report.responses;
  Alcotest.(check bool) "staleness notifications flowed" true
    (report.notifications >= 1);
  Alcotest.(check bool) "memory was sampled" true (report.memory_samples >= 2);
  Alcotest.(check bool) "latency quantiles are live" true
    (Obs.Metrics.hist_quantile report.latency_all 0.5 > 0.0);
  (* The report document passes its own schema contract. *)
  let doc = Serve.Soak.report_json report in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Ok reparsed ->
      Alcotest.(check bool) "soak report roundtrips" true
        (Obs.Json.member "schema" reparsed
        = Some (Obs.Json.String "impact.soak/v1"))
  | Error e -> Alcotest.failf "soak report does not reparse: %s" e

let suite =
  [
    Alcotest.test_case "protocol roundtrip" `Quick protocol_roundtrip;
    Alcotest.test_case "error taxonomy" `Quick error_taxonomy;
    Alcotest.test_case "request isolation" `Quick request_isolation;
    Alcotest.test_case "oversize bounded" `Quick oversize_bounded;
    Alcotest.test_case "self-merge doubles weights" `Quick merge_self_doubles;
    QCheck_alcotest.to_alcotest merge_commutative;
    Alcotest.test_case "poisoned pins last good" `Quick poisoned_pins_last_good;
    Alcotest.test_case "stale epoch rejected" `Quick stale_epoch_rejected;
    Alcotest.test_case "store cap evicts LRU" `Quick store_cap_evicts;
    Alcotest.test_case "deadline semantics" `Quick deadline_semantics;
    Alcotest.test_case "raising strategy degrades" `Quick
      raising_strategy_degrades;
    Alcotest.test_case "poisoned profile tier" `Quick poisoned_profile_tier;
    Alcotest.test_case "unknown profile errors" `Quick unknown_profile_errors;
    Alcotest.test_case "context memo cap" `Quick context_memo_cap;
    Alcotest.test_case "strategy map cap" `Quick strategy_map_cap;
    Alcotest.test_case "golden vector replay" `Quick golden_replay;
    Alcotest.test_case "batching deterministic" `Quick batching_deterministic;
    Alcotest.test_case "stats v2 fields" `Quick stats_v2_fields;
    Alcotest.test_case "health verdicts" `Quick health_verdicts;
    Alcotest.test_case "subscribe notifies exactly once" `Quick
      subscribe_exactly_once;
    Alcotest.test_case "subscription filters" `Quick subscribe_filters;
    Alcotest.test_case "notifications deterministic" `Quick
      notifications_deterministic;
    Alcotest.test_case "mini soak" `Slow mini_soak;
    Alcotest.test_case "chaos campaign" `Slow chaos_campaign;
  ]
