(* End-to-end pipeline tests on real workloads with small inputs. *)

let small_inputs = function
  | "wc" -> [ Vm.Io.input [ "lorem ipsum dolor\nsit amet\n" ] ]
  | "grep" ->
    [ Vm.Io.input [ "alpha beta\ngamma\nbeta again\n"; "beta\n" ] ]
  | "yacc" -> [ Vm.Io.input [ "1+2;3*4;(5-2)*7;" ] ]
  | "compress" -> [ Vm.Io.input [ "abababababcdcdcdcdab" ] ]
  | name -> Alcotest.failf "no small input for %s" name

let run_pipeline name =
  let b = Workloads.Registry.find name in
  Placement.Pipeline.run (Workloads.Bench.program b)
    ~inputs:(small_inputs name)

let structural_invariants () =
  List.iter
    (fun name ->
      let p = run_pipeline name in
      Ir.Check.program p.Placement.Pipeline.program;
      Alcotest.(check bool) (name ^ ": optimized map disjoint") true
        (Placement.Address_map.is_disjoint p.Placement.Pipeline.optimized);
      Alcotest.(check bool) (name ^ ": global order is a permutation") true
        (Placement.Global_layout.is_permutation p.Placement.Pipeline.global
           (Array.length p.Placement.Pipeline.program.Ir.Prog.funcs));
      Array.iteri
        (fun fid sel ->
          let f = p.Placement.Pipeline.program.Ir.Prog.funcs.(fid) in
          let n = Array.length f.Ir.Prog.blocks in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s traces partition" name f.Ir.Prog.name)
            true
            (Placement.Trace_select.is_partition sel n);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s layout permutes" name f.Ir.Prog.name)
            true
            (Placement.Func_layout.is_permutation
               p.Placement.Pipeline.layouts.(fid)
               n))
        p.Placement.Pipeline.selections)
    [ "wc"; "grep"; "yacc"; "compress" ]

let semantics_preserved () =
  List.iter
    (fun name ->
      let b = Workloads.Registry.find name in
      let original = Workloads.Bench.program b in
      let p = run_pipeline name in
      List.iter
        (fun input ->
          let before = Vm.Interp.run original input in
          let after = Vm.Interp.run p.Placement.Pipeline.program input in
          Alcotest.(check int) (name ^ ": return") before.Vm.Interp.return_value
            after.Vm.Interp.return_value;
          Alcotest.(check string) (name ^ ": output")
            (Vm.Io.output before.Vm.Interp.io 0)
            (Vm.Io.output after.Vm.Interp.io 0))
        (small_inputs name))
    [ "wc"; "grep"; "yacc"; "compress" ]

let effective_region_is_executed () =
  (* Every block executed on a profiling input must fall inside the
     effective region; equivalently, no executed block may be placed past
     effective_bytes. *)
  let p = run_pipeline "grep" in
  let map = p.Placement.Pipeline.optimized in
  let trace =
    Sim.Trace_gen.record p.Placement.Pipeline.program
      (List.hd (small_inputs "grep"))
  in
  Sim.Trace_gen.iter_blocks
    (fun fid label ->
      let addr = map.Placement.Address_map.block_addr.(fid).(label) in
      if addr >= map.Placement.Address_map.effective_bytes then
        Alcotest.failf "executed block %d/%d at %d beyond effective %d" fid
          label addr map.Placement.Address_map.effective_bytes)
    trace

let optimized_not_worse () =
  (* On the profiling input itself, the optimized layout should not miss
     more than the natural layout of the same program (2KB/64B direct). *)
  List.iter
    (fun name ->
      let p = run_pipeline name in
      let trace =
        Sim.Trace.of_gen
          (Sim.Trace_gen.record p.Placement.Pipeline.program
             (List.hd (small_inputs name)))
      in
      let config = Icache.Config.make ~size:2048 ~block:64 () in
      let opt =
        Sim.Driver.simulate config p.Placement.Pipeline.optimized trace
      in
      let nat =
        Sim.Driver.simulate config p.Placement.Pipeline.natural trace
      in
      Alcotest.(check bool)
        (name ^ ": optimized misses <= natural misses") true
        (opt.Sim.Driver.misses <= nat.Sim.Driver.misses))
    [ "wc"; "grep"; "compress" ]

let ablation_no_inline () =
  let b = Workloads.Registry.find "wc" in
  let config =
    { Placement.Pipeline.default_config with do_inline = false }
  in
  let p =
    Placement.Pipeline.run ~config (Workloads.Bench.program b)
      ~inputs:(small_inputs "wc")
  in
  Alcotest.(check int) "no sites inlined" 0
    p.Placement.Pipeline.inline_report.Placement.Inline.sites_inlined;
  Alcotest.(check bool) "program unchanged" true
    (p.Placement.Pipeline.program == p.Placement.Pipeline.original)

let suite =
  [
    Alcotest.test_case "structural invariants" `Quick structural_invariants;
    Alcotest.test_case "semantics preserved" `Quick semantics_preserved;
    Alcotest.test_case "effective region is executed" `Quick
      effective_region_is_executed;
    Alcotest.test_case "optimized not worse than natural" `Quick
      optimized_not_worse;
    Alcotest.test_case "ablation: inlining off" `Quick ablation_no_inline;
  ]
