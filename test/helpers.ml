(* Shared fixtures for the test suite: small DSL programs and convenience
   runners. *)

open Ir.Ast.Dsl

let run ?(streams = []) ?(args = []) prog =
  Vm.Interp.run (Ir.Lower.program prog) (Vm.Io.input ~args streams)

let ret_of ?streams ?args prog = (run ?streams ?args prog).Vm.Interp.return_value

let out_of ?streams ?args prog =
  Vm.Io.output (run ?streams ?args prog).Vm.Interp.io 0

(* A program with a single main. *)
let main_prog ?(globals = []) ?(funcs = []) body =
  { Ir.Ast.globals; funcs = funcs @ [ func "main" [] body ]; entry = "main" }

(* gcd via repeated remainder: exercises calls and loops. *)
let gcd_func =
  func "gcd" [ "a"; "b" ]
    [
      while_ (v "b" <>% i 0)
        [ decl "t" (v "b"); set "b" (v "a" %% v "b"); set "a" (v "t") ];
      ret (v "a");
    ]

(* A loop fixture used by placement tests.  The CFG itself is the plain
   loop 0 -> 1 <-> {2 -> 4} with exit 1 -> 5; block 3 has no incoming
   CFG edge.  The diamond shape lives entirely in [diamond_weights],
   whose hand-built arcs route a cold path 1 -> 3 -> 4 alongside the hot
   1 -> 2 -> 4 — the placement algorithms consume only those weights, so
   the tests exercise a hot/cold arm split without the CFG having one.
   (For a CFG-level diamond see test_analysis.ml.) *)
let diamond_loop_func : Ir.Prog.func =
  let b insns term = Ir.Cfg.mk_block (Array.of_list insns) term in
  {
    Ir.Prog.name = "diamond";
    nparams = 1;
    nregs = 4;
    blocks =
      [|
        b [ Ir.Insn.Mov (1, Imm 0) ] (Jump 1);
        b [ Ir.Insn.Bin (Lt, 2, Reg 1, Reg 0) ] (Br (Reg 2, 2, 5));
        b
          [ Ir.Insn.Bin (Add, 3, Reg 3, Reg 1) ]
          (Jump 4);
        b [ Ir.Insn.Bin (Sub, 3, Reg 3, Reg 1) ] (Jump 4);
        b [ Ir.Insn.Bin (Add, 1, Reg 1, Imm 1) ] (Jump 1);
        b [] (Ret (Some (Reg 3)));
      |];
  }

(* Hand weights for [diamond_loop_func] where arm 2 dominates: the loop
   ran 100 times, 90 through block 2 and 10 through block 3. *)
let diamond_weights ?(hot = 90) ?(cold = 10) () =
  let n = hot + cold in
  Placement.Weight.cfg_of_lists ~func_weight:1
    ~blocks:[ (0, 1); (1, n + 1); (2, hot); (3, cold); (4, n); (5, 1) ]
    ~arcs:
      [
        (0, 1, 1);
        (1, 2, hot);
        (1, 3, cold);
        (1, 5, 1);
        (2, 4, hot);
        (3, 4, cold);
        (4, 1, n);
      ]

(* Tiny two-function program for call-related tests. *)
let caller_prog =
  {
    Ir.Ast.globals = [];
    funcs =
      [
        func "twice" [ "x" ] [ ret (v "x" *% i 2) ];
        func "main" []
          [
            decl "acc" (i 0);
            for_
              [ decl "k" (i 0) ]
              (v "k" <% i 10)
              [ incr_ "k" ]
              [ set "acc" (v "acc" +% call "twice" [ v "k" ]) ];
            ret (v "acc");
          ];
      ];
    entry = "main";
  }

(* Deterministic pseudo-random fetch-address generator for cache tests. *)
let random_addresses ~seed ~count ~max_addr =
  let rng = Workloads.Rng.create seed in
  Array.init count (fun _ -> Workloads.Rng.int rng max_addr / 4 * 4)
