(* Abstract cache-state analysis: hand fixtures with known
   classifications (straight-line cold misses, a direct-mapped conflict
   pair, a first-miss loop body), the irreducible and iteration-cap
   degradations, QCheck properties (domain consistency over generated
   programs, lattice monotonicity over random age vectors), -j
   stability, and the acceptance check that the certified ranking on
   yacc at 8KB agrees with the simulated impact-vs-natural ordering. *)

open Ir

let b ?size insns term =
  Cfg.mk_block ?size_override:size (Array.of_list insns) term

let cls_str = function
  | Analysis.Absint.Hit -> "hit"
  | Analysis.Absint.Miss -> "miss"
  | Analysis.Absint.First_miss si -> Printf.sprintf "first-miss@%d" si
  | Analysis.Absint.Unknown -> "unknown"

let check_cls what expected a fid label =
  let g = Analysis.Absint.gid a fid label in
  match a.Analysis.Absint.cls.(g) with
  | [| c |] ->
      Alcotest.(check string) what expected (cls_str c)
  | cs ->
      Alcotest.failf "%s: expected a single access, got %d" what
        (Array.length cs)

let record_trace prog =
  Sim.Trace.of_gen (Sim.Trace_gen.record prog (Vm.Io.input []))

let oracle_clean what ?configs prog map =
  let trace = record_trace prog in
  match
    Experiments.Absint_exp.check_oracle ?configs ~strategy:"natural" prog map
      trace
  with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s: oracle violation: %s" what (Diag.to_string d)

(* --- straight-line program that fits in cache ------------------------ *)

(* Three 16-byte blocks at 0/16/32: every line is touched exactly once,
   so each access is a guaranteed cold miss and the interval is exact. *)
let straight_prog =
  Prog.make ~entry:"main"
    [
      {
        Prog.name = "main";
        nparams = 0;
        nregs = 2;
        blocks =
          [|
            b ~size:4 [ Insn.Mov (0, Imm 1) ] (Jump 1);
            b ~size:4 [ Insn.Bin (Add, 0, Reg 0, Imm 1) ] (Jump 2);
            b ~size:4 [] (Ret (Some (Insn.Reg 0)));
          |];
      };
    ]

let straight_line_exact () =
  let map = Placement.Address_map.natural straight_prog in
  let config = Icache.Config.make ~size:128 ~block:16 () in
  let a = Analysis.Absint.analyze config map straight_prog in
  Alcotest.(check (option string)) "not gated" None a.Analysis.Absint.gated;
  check_cls "b0 cold" "miss" a 0 0;
  check_cls "b1 cold" "miss" a 0 1;
  check_cls "b2 cold" "miss" a 0 2;
  let tot = Analysis.Absint.totals a in
  Alcotest.(check int) "nothing unclassified" 0
    tot.Analysis.Absint.t_unknown;
  let iv = Analysis.Absint.interval a ~counts:(fun _ _ -> 1) in
  Alcotest.(check int) "exact lower bound" 3 iv.Analysis.Absint.lo;
  Alcotest.(check int) "exact upper bound" 3 iv.Analysis.Absint.hi;
  oracle_clean "straight line" ~configs:[ config ] straight_prog map

(* --- conflict pair and first-miss loop body -------------------------- *)

(* main: ten trips through b1 -> b2 -> b3.  All blocks are one 16-byte
   line; under the natural map b1 (addr 16) and b3 (addr 48) co-map in a
   32-byte direct-mapped cache and evict each other every iteration,
   while b2 (addr 32) owns its set for the whole loop. *)
let conflict_prog =
  Prog.make ~entry:"main"
    [
      {
        Prog.name = "main";
        nparams = 0;
        nregs = 3;
        blocks =
          [|
            b ~size:4 [ Insn.Mov (0, Imm 0) ] (Jump 1);
            b ~size:4 [ Insn.Bin (Lt, 1, Reg 0, Imm 10) ] (Br (Insn.Reg 1, 2, 4));
            b ~size:4 [ Insn.Bin (Add, 2, Reg 2, Imm 1) ] (Jump 3);
            b ~size:4 [ Insn.Bin (Add, 0, Reg 0, Imm 1) ] (Jump 1);
            b ~size:4 [] (Ret (Some (Insn.Reg 2)));
          |];
      };
    ]

let conflict_pair_always_miss () =
  let map = Placement.Address_map.natural conflict_prog in
  let config = Icache.Config.make ~size:32 ~block:16 () in
  let a = Analysis.Absint.analyze config map conflict_prog in
  Alcotest.(check (option string)) "not gated" None a.Analysis.Absint.gated;
  (* The header and the latch thrash one set; the middle block owns the
     other and is a first-miss once the loop is entered. *)
  check_cls "header thrashes" "miss" a 0 1;
  check_cls "latch thrashes" "miss" a 0 3;
  (match
     a.Analysis.Absint.cls.(Analysis.Absint.gid a 0 2)
   with
  | [| Analysis.Absint.First_miss si |] ->
      let s = a.Analysis.Absint.scopes.(si) in
      Alcotest.(check int) "scope headed at the loop header" 1
        s.Analysis.Absint.s_header
  | [| c |] -> Alcotest.failf "body block should be first-miss, got %s" (cls_str c)
  | _ -> Alcotest.fail "body block should have one access");
  (* Executed counts: header 11 (ten true + one false trip), body and
     latch 10, entry/exit once.  The true miss count is 24: cold b0 and
     b4, all 11 header and all 10 latch thrashes, one first miss of b2.
     Both certified bounds must bracket it. *)
  let counts fid l =
    if fid <> 0 then 0 else match l with 0 | 4 -> 1 | 1 -> 11 | _ -> 10
  in
  let iv = Analysis.Absint.interval ~entries:(fun _ -> 1) a ~counts in
  Alcotest.(check bool) "lo sound" true (iv.Analysis.Absint.lo <= 24);
  Alcotest.(check bool) "hi sound" true (24 <= iv.Analysis.Absint.hi);
  oracle_clean "conflict pair" ~configs:[ config ] conflict_prog map

let loop_first_miss_body () =
  let map = Placement.Address_map.natural conflict_prog in
  (* Same program, conflict-free geometry: the whole loop fits, so every
     loop block is at worst a first miss and the certified interval
     under one loop entry collapses to the five cold misses. *)
  let config = Icache.Config.make ~size:128 ~block:16 () in
  let a = Analysis.Absint.analyze config map conflict_prog in
  Array.iter
    (fun label ->
      match a.Analysis.Absint.cls.(Analysis.Absint.gid a 0 label) with
      | [| Analysis.Absint.First_miss _ |] | [| Analysis.Absint.Hit |] -> ()
      | [| c |] ->
          Alcotest.failf "loop block %d should be first-miss or hit, got %s"
            label (cls_str c)
      | _ -> Alcotest.fail "one access per block expected")
    [| 1; 2; 3 |];
  let counts fid l =
    if fid <> 0 then 0
    else match l with 0 | 4 -> 1 | 1 -> 11 | _ -> 10
  in
  let iv = Analysis.Absint.interval ~entries:(fun _ -> 1) a ~counts in
  Alcotest.(check int) "five cold misses, certified exactly" 5
    iv.Analysis.Absint.hi;
  oracle_clean "first-miss loop" ~configs:[ config ] conflict_prog map

(* --- degradations ---------------------------------------------------- *)

(* Loop {1,2} has two distinct entries from block 0: irreducible. *)
let irreducible_prog =
  Prog.make ~entry:"main"
    [
      {
        Prog.name = "main";
        nparams = 0;
        nregs = 2;
        blocks =
          [|
            b
              [ Insn.Mov (0, Imm 1) ]
              (Call { callee = "knot"; args = []; dst = Some 1; ret_to = 1 });
            b [] (Ret (Some (Insn.Reg 1)));
          |];
      };
      {
        Prog.name = "knot";
        nparams = 0;
        nregs = 2;
        blocks =
          [|
            b [] (Br (Insn.Reg 0, 1, 2));
            b [ Insn.Bin (Sub, 0, Reg 0, Imm 1) ] (Jump 2);
            b [] (Br (Insn.Reg 0, 1, 3));
            b [] (Ret (Some (Insn.Imm 7)));
          |];
      };
    ]

let irreducible_degrades () =
  let map = Placement.Address_map.natural irreducible_prog in
  let config = Icache.Config.make ~size:128 ~block:16 () in
  let a = Analysis.Absint.analyze config map irreducible_prog in
  (* Not a whole-analysis gate: only the irreducible function loses its
     classifications, with a warning naming it. *)
  Alcotest.(check (option string)) "not gated" None a.Analysis.Absint.gated;
  let knot = Prog.func_index irreducible_prog "knot" in
  Array.iter
    (fun label ->
      Array.iter
        (fun c ->
          Alcotest.(check string)
            (Printf.sprintf "knot.b%d unclassified" label)
            "unknown" (cls_str c))
        a.Analysis.Absint.cls.(Analysis.Absint.gid a knot label))
    [| 0; 1; 2; 3 |];
  check_cls "main entry still classified" "miss" a 0 0;
  match
    List.filter
      (fun d ->
        d.Diag.func = Some "knot"
        && d.Diag.severity = Diag.Warning)
      a.Analysis.Absint.warnings
  with
  | [ d ] ->
      let contains msg needle =
        let n = String.length needle in
        let rec find i =
          i + n <= String.length msg
          && (String.sub msg i n = needle || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) "warning names irreducibility" true
        (contains d.Diag.message "irreducible")
  | ds ->
      Alcotest.failf "expected one irreducibility warning, got %d"
        (List.length ds)

let solver_cap_degrades () =
  let map = Placement.Address_map.natural conflict_prog in
  let config = Icache.Config.make ~size:32 ~block:16 () in
  let a = Analysis.Absint.analyze ~max_iters:1 config map conflict_prog in
  Alcotest.(check bool) "capped" true a.Analysis.Absint.capped;
  (match a.Analysis.Absint.gated with
  | Some reason ->
      Alcotest.(check bool) "gate names the cap" true
        (String.length reason > 0)
  | None -> Alcotest.fail "a capped solve must gate the analysis");
  let tot = Analysis.Absint.totals a in
  Alcotest.(check int) "everything unclassified" tot.Analysis.Absint.t_accesses
    tot.Analysis.Absint.t_unknown;
  (* Gated is still sound: the interval spans zero to every access. *)
  let iv = Analysis.Absint.interval a ~counts:(fun _ _ -> 1) in
  Alcotest.(check int) "lo collapses" 0 iv.Analysis.Absint.lo;
  Alcotest.(check int) "hi covers everything" iv.Analysis.Absint.accesses
    iv.Analysis.Absint.hi;
  Alcotest.(check bool) "cap warning surfaced" true
    (a.Analysis.Absint.warnings <> [])

(* --- QCheck properties ----------------------------------------------- *)

let prop_domains_consistent =
  QCheck.Test.make ~name:"must and may domains never contradict" ~count:25
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let prog = Lower.program (Gen.generate ~size:40 seed) in
      let map = Placement.Address_map.natural prog in
      List.for_all
        (fun config ->
          let a = Analysis.Absint.analyze config map prog in
          a.Analysis.Absint.consistent)
        Experiments.Absint_exp.oracle_configs)

(* Random age vectors over a fixed line universe: the joins must be
   upper/lower bounds and the transfers monotone in the domain order
   (higher age = less knowledge for Must, more for May). *)
let prop_lattice_monotone =
  QCheck.Test.make ~name:"cachedom joins bound, transfers monotone"
    ~count:200
    QCheck.(make ~print:string_of_int Gen.(int_bound 1_000_000))
    (fun seed ->
      let config = Icache.Config.make ~assoc:(Icache.Config.Ways 2) ~size:64 ~block:16 () in
      let u = Analysis.Cachedom.universe config [ 0; 1; 2; 3; 5; 9; 13 ] in
      let rng = Workloads.Rng.create seed in
      let random_state () =
        let s = Analysis.Cachedom.top u in
        for i = 0 to u.Analysis.Cachedom.nlines - 1 do
          Bytes.set s i (Char.chr (Workloads.Rng.int rng (u.Analysis.Cachedom.ways + 1)))
        done;
        s
      in
      let age = Analysis.Cachedom.age in
      let le a b =
        (* pointwise age order *)
        let ok = ref true in
        for i = 0 to u.Analysis.Cachedom.nlines - 1 do
          if age a i > age b i then ok := false
        done;
        !ok
      in
      let a = random_state () and c = random_state () in
      let line = Workloads.Rng.int rng u.Analysis.Cachedom.nlines in
      let must = Analysis.Cachedom.must_lattice u in
      let may = Analysis.Cachedom.may_lattice u in
      let join (l : _ Analysis.Dataflow.lattice) x y =
        let d = Analysis.Cachedom.copy x in
        l.Analysis.Dataflow.join_into ~dst:d y;
        d
      in
      let jm = join must a c and jy = join may a c in
      (* Must join is a pointwise upper bound, May join a lower bound. *)
      le a jm && le c jm && le jy a && le jy c
      &&
      (* Transfers preserve the pointwise order in both domains; the
         comparable pair is (may-join, must-join): jy <= a <= jm. *)
      let lo = jy and hi = jm in
      let tlo_m = Analysis.Cachedom.copy lo
      and thi_m = Analysis.Cachedom.copy hi in
      Analysis.Cachedom.access_must u tlo_m line;
      Analysis.Cachedom.access_must u thi_m line;
      let tlo_y = Analysis.Cachedom.copy lo
      and thi_y = Analysis.Cachedom.copy hi in
      Analysis.Cachedom.access_may u tlo_y line;
      Analysis.Cachedom.access_may u thi_y line;
      le tlo_m thi_m && le tlo_y thi_y)

(* --- -j stability and the yacc acceptance ranking -------------------- *)

let stability_across_pools () =
  let summaries () =
    let ctx = Experiments.Context.create ~names:[ "cmp"; "wc" ] () in
    List.map Experiments.Absint_exp.summary (Experiments.Absint_exp.sweep ctx)
  in
  let serial = summaries () in
  let pool = Placement.Pool.create 4 in
  Placement.Pool.set_default (Some pool);
  let parallel =
    Fun.protect
      ~finally:(fun () ->
        Placement.Pool.set_default None;
        Placement.Pool.shutdown pool)
      summaries
  in
  Alcotest.(check (list string)) "classification identical at -j 1 and -j 4"
    serial parallel

let yacc_8kb_ranking () =
  let ctx = Experiments.Context.create ~names:[ "yacc" ] () in
  let e = List.hd (Experiments.Context.entries ctx) in
  let config = Icache.Config.make ~size:8192 ~block:64 () in
  let certified s =
    (Experiments.Absint_exp.analyze_entry ~config e
       (Placement.Strategy.find s))
      .Experiments.Absint_exp.certified
      .Analysis.Absint.hi
  in
  let simulated s =
    (Experiments.Context.simulate e config
       (Experiments.Context.strategy_map e (Placement.Strategy.find s))
       (Experiments.Context.trace e))
      .Sim.Driver.misses
  in
  let ci = certified "impact" and cn = certified "natural" in
  let si = simulated "impact" and sn = simulated "natural" in
  Alcotest.(check bool)
    (Printf.sprintf
       "certified hi %d < %d agrees with simulated %d < %d" ci cn si sn)
    true
    (ci < cn && si < sn)

let suite =
  [
    Alcotest.test_case "straight line: exact cold interval" `Quick
      straight_line_exact;
    Alcotest.test_case "direct-mapped conflict pair always misses" `Quick
      conflict_pair_always_miss;
    Alcotest.test_case "fitting loop body is first-miss" `Quick
      loop_first_miss_body;
    Alcotest.test_case "irreducible function degrades, rest classified"
      `Quick irreducible_degrades;
    Alcotest.test_case "iteration cap gates soundly" `Quick
      solver_cap_degrades;
    QCheck_alcotest.to_alcotest prop_domains_consistent;
    QCheck_alcotest.to_alcotest prop_lattice_monotone;
    Alcotest.test_case "sweep identical across pool sizes" `Quick
      stability_across_pools;
    Alcotest.test_case "yacc at 8KB: certified ranking matches simulation"
      `Quick yacc_8kb_ranking;
  ]
