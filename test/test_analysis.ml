(* Static-analysis layer: dominators/post-dominators on hand-built CFGs
   (including an irreducible one), natural-loop nesting, register
   liveness, the reachability unification, a dominator/reachability
   consistency property over generated programs, and the layout linter
   (hand-built error input, golden output on the cmp benchmark, static
   ranking, and the no-simulation guarantee). *)

open Ir

let b insns term = Cfg.mk_block (Array.of_list insns) term

(* A genuine diamond inside a loop (unlike [Helpers.diamond_loop_func],
   whose cold arm exists only in its hand-built weights):

       0
       |
       1 <----+        (loop header; 1 -> 6 exits)
       |      |
       2      |        (diamond head)
      / \     |
     3   4    |
      \ /     |
       5 -----+        (join + latch)
       |
       6 (exit)                                                  *)
let diamond : Prog.func =
  {
    Prog.name = "diamond";
    nparams = 1;
    nregs = 4;
    blocks =
      [|
        b [ Insn.Mov (1, Imm 0) ] (Jump 1);
        b [ Insn.Bin (Lt, 2, Reg 1, Reg 0) ] (Br (Insn.Reg 2, 2, 6));
        b [ Insn.Bin (Lt, 2, Reg 3, Reg 1) ] (Br (Insn.Reg 2, 3, 4));
        b [ Insn.Bin (Add, 3, Reg 3, Reg 1) ] (Jump 5);
        b [ Insn.Bin (Sub, 3, Reg 3, Reg 1) ] (Jump 5);
        b [ Insn.Bin (Add, 1, Reg 1, Imm 1) ] (Jump 1);
        b [] (Ret (Some (Insn.Reg 3)));
      |];
  }

(* Entry jumps straight to the exit; block 1 is statically dead. *)
let dead_block_func : Prog.func =
  {
    Prog.name = "deadblock";
    nparams = 0;
    nregs = 1;
    blocks = [| b [] (Jump 2); b [] (Jump 2); b [] (Ret None) |];
  }

(* The classic irreducible shape: a two-entry cycle {1,2}.

       0 -> 1 -> 2 -> {1, 3}
       0 -> 2                                                    *)
let irreducible_func : Prog.func =
  {
    Prog.name = "irreducible";
    nparams = 1;
    nregs = 1;
    blocks =
      [|
        b [] (Br (Insn.Reg 0, 1, 2));
        b [] (Jump 2);
        b [] (Br (Insn.Reg 0, 1, 3));
        b [] (Ret None);
      |];
  }

(* Two properly nested natural loops: outer header 1 (latch 4), inner
   header 2 (latch 3). *)
let nested_loops_func : Prog.func =
  {
    Prog.name = "nested";
    nparams = 0;
    nregs = 1;
    blocks =
      [|
        b [ Insn.Mov (0, Imm 0) ] (Jump 1);
        b [] (Br (Insn.Reg 0, 2, 5));
        b [] (Br (Insn.Reg 0, 3, 4));
        b [] (Jump 2);
        b [] (Jump 1);
        b [] (Ret None);
      |];
  }

let labels n = List.init n Fun.id

(* --- dominators ------------------------------------------------------ *)

let dominators_diamond () =
  let dom = Analysis.Dom.dominators diamond in
  Alcotest.(check (list int))
    "idom per block" [ 0; 0; 1; 2; 2; 2; 1 ]
    (Array.to_list dom.Analysis.Dom.idom);
  Alcotest.(check bool) "loop head dominates latch" true
    (Analysis.Dom.dominates dom 1 5);
  Alcotest.(check bool) "arm does not dominate join" false
    (Analysis.Dom.dominates dom 3 5);
  Alcotest.(check bool) "reflexive" true (Analysis.Dom.dominates dom 3 3);
  Alcotest.(check (list int))
    "dom_set walks to the root" [ 5; 2; 1; 0 ] (Analysis.Dom.dom_set dom 5);
  Alcotest.(check int) "depth of join" 3 (Analysis.Dom.depth dom 5);
  Alcotest.(check int) "depth of entry" 0 (Analysis.Dom.depth dom 0);
  Alcotest.(check (option int))
    "no virtual exit on a dominator tree" None (Analysis.Dom.virtual_exit dom)

let post_dominators_diamond () =
  let pdom = Analysis.Dom.post_dominators diamond in
  let exit = Array.length diamond.Prog.blocks in
  Alcotest.(check (option int))
    "virtual exit" (Some exit)
    (Analysis.Dom.virtual_exit pdom);
  (* Both arms rejoin at 5; the loop can only leave through the header,
     so the header's immediate post-dominator is the real exit block. *)
  Alcotest.(check (list int))
    "ipdom per block (virtual exit last)" [ 1; 6; 5; 5; 5; 1; exit; exit ]
    (Array.to_list pdom.Analysis.Dom.idom);
  Alcotest.(check bool) "exit block post-dominates loop head" true
    (Analysis.Dom.dominates pdom 6 1);
  Alcotest.(check bool) "hot arm does not post-dominate diamond head" false
    (Analysis.Dom.dominates pdom 3 2)

let dominators_dead_blocks () =
  let dom = Analysis.Dom.dominators dead_block_func in
  Alcotest.(check int) "dead block disconnected" (-1)
    dom.Analysis.Dom.idom.(1);
  Alcotest.(check bool) "nothing dominates a dead block" false
    (Analysis.Dom.dominates dom 0 1);
  Alcotest.(check (list int)) "empty dom_set" [] (Analysis.Dom.dom_set dom 1);
  Alcotest.(check int) "depth is -1" (-1) (Analysis.Dom.depth dom 1)

(* --- loops ----------------------------------------------------------- *)

let loop_nesting () =
  let t = Analysis.Loops.of_func nested_loops_func in
  Alcotest.(check bool) "reducible" true t.Analysis.Loops.reducible;
  Alcotest.(check int) "two loops" 2 (Array.length t.Analysis.Loops.loops);
  let outer = t.Analysis.Loops.loops.(0)
  and inner = t.Analysis.Loops.loops.(1) in
  Alcotest.(check int) "outer header" 1 outer.Analysis.Loops.header;
  Alcotest.(check (list int))
    "outer body" [ 1; 2; 3; 4 ] outer.Analysis.Loops.body;
  Alcotest.(check (list int)) "outer latch" [ 4 ] outer.Analysis.Loops.latches;
  Alcotest.(check int) "outer depth" 1 outer.Analysis.Loops.depth;
  Alcotest.(check (option int))
    "outer has no parent" None outer.Analysis.Loops.parent;
  Alcotest.(check int) "inner header" 2 inner.Analysis.Loops.header;
  Alcotest.(check (list int)) "inner body" [ 2; 3 ] inner.Analysis.Loops.body;
  Alcotest.(check int) "inner depth" 2 inner.Analysis.Loops.depth;
  Alcotest.(check (option int))
    "inner nests in outer" (Some 0) inner.Analysis.Loops.parent;
  Alcotest.(check (list int))
    "depth_of per block" [ 0; 1; 2; 2; 1; 0 ]
    (Array.to_list t.Analysis.Loops.depth_of);
  Alcotest.(check (list int))
    "loop_of per block" [ -1; 0; 1; 1; 0; -1 ]
    (Array.to_list t.Analysis.Loops.loop_of);
  (* The diamond has exactly one loop: header 1, body everything but the
     entry and the exit, latch 5. *)
  let d = Analysis.Loops.of_func diamond in
  Alcotest.(check int) "diamond has one loop" 1
    (Array.length d.Analysis.Loops.loops);
  Alcotest.(check (list int))
    "diamond loop body" [ 1; 2; 3; 4; 5 ] (Analysis.Loops.blocks_of d 0);
  Alcotest.(check (list int))
    "diamond latch" [ 5 ]
    d.Analysis.Loops.loops.(0).Analysis.Loops.latches

let irreducible_detected () =
  let t = Analysis.Loops.of_func irreducible_func in
  Alcotest.(check bool) "not reducible" false t.Analysis.Loops.reducible;
  Alcotest.(check int) "no natural loops" 0
    (Array.length t.Analysis.Loops.loops);
  Alcotest.(check (list (pair int int)))
    "witness edge closes the two-entry cycle" [ (2, 1) ]
    t.Analysis.Loops.irreducible_edges;
  (* The reducible fixtures report no witnesses. *)
  Alcotest.(check (list (pair int int)))
    "diamond reducible" []
    (Analysis.Loops.of_func diamond).Analysis.Loops.irreducible_edges

(* --- liveness -------------------------------------------------------- *)

let elems s = Analysis.Bitset.elements s

let liveness_diamond () =
  let t = Analysis.Live.of_func diamond in
  (* r0 (the parameter bound) and r3 (the accumulator, read before any
     write on the loop path) are live into the entry; r1 is defined
     there first. *)
  Alcotest.(check (list int))
    "live into entry" [ 0; 3 ]
    (elems t.Analysis.Live.live_in.(0));
  Alcotest.(check (list int))
    "live out of loop head" [ 0; 1; 3 ]
    (elems t.Analysis.Live.live_out.(1));
  Alcotest.(check (list int))
    "only the result lives into the exit" [ 3 ]
    (elems t.Analysis.Live.live_in.(6));
  Alcotest.(check (list int))
    "exit is the boundary" []
    (elems t.Analysis.Live.live_out.(6));
  (* Block-local use/def of the diamond head: reads r3 and r1, defines
     the comparison result r2 (read only by its own terminator, after
     the def). *)
  Alcotest.(check (list int))
    "use of diamond head" [ 1; 3 ]
    (elems t.Analysis.Live.use.(2));
  Alcotest.(check (list int))
    "def of diamond head" [ 2 ]
    (elems t.Analysis.Live.def.(2))

let dead_stores () =
  let f : Prog.func =
    {
      Prog.name = "deadstore";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          b
            [ Insn.Mov (0, Imm 1); Insn.Mov (0, Imm 2) ]
            (Ret (Some (Insn.Reg 0)));
        |];
    }
  in
  let t = Analysis.Live.of_func f in
  Alcotest.(check (list (pair int int)))
    "the overwritten store is dead" [ (0, 0) ]
    (Analysis.Live.dead_stores f t);
  Alcotest.(check (list (pair int int)))
    "no dead stores in the diamond" []
    (Analysis.Live.dead_stores diamond (Analysis.Live.of_func diamond))

(* --- reachability unification ---------------------------------------- *)

let reach_unified () =
  Alcotest.(check (list int))
    "dead block found" [ 1 ]
    (Analysis.Reach.unreachable dead_block_func);
  (* One definition of "dead block": the pass is the canonical
     [Ir.Cfg.reachable] that the simplifier sweeps with. *)
  List.iter
    (fun (f : Prog.func) ->
      Alcotest.(check (list bool))
        ("agrees with Cfg.reachable on " ^ f.Prog.name)
        (Array.to_list (Cfg.reachable f.Prog.blocks))
        (Array.to_list (Analysis.Reach.func f)))
    [ diamond; dead_block_func; irreducible_func; nested_loops_func ];
  (* ... and the dataflow phrasing of the same fact agrees with the
     DFS. *)
  List.iter
    (fun (f : Prog.func) ->
      let reach = Analysis.Reach.func f in
      let df = Analysis.Reach.as_dataflow f in
      List.iter
        (fun l ->
          Alcotest.(check bool)
            (Printf.sprintf "dataflow reach of %s.b%d" f.Prog.name l)
            reach.(l)
            (not (Analysis.Bitset.is_empty df.Analysis.Dataflow.out.(l))))
        (labels (Array.length f.Prog.blocks)))
    [ diamond; dead_block_func; irreducible_func ]

(* --- property: dominators are consistent with reachability ----------- *)

let prop_dom_reach =
  QCheck.Test.make ~name:"dominators consistent with reachability" ~count:40
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let prog = Lower.program (Gen.generate ~size:30 seed) in
      Array.for_all
        (fun (f : Prog.func) ->
          let reach = Analysis.Reach.func f in
          let dom = Analysis.Dom.dominators f in
          let df = Analysis.Reach.as_dataflow f in
          List.for_all
            (fun l ->
              (* Entry dominates exactly the reachable blocks; every
                 dominator of a reachable block is itself reachable; the
                 dataflow instance agrees with the DFS. *)
              Analysis.Dom.dominates dom 0 l = reach.(l)
              && (reach.(l) = (dom.Analysis.Dom.idom.(l) >= 0))
              && List.for_all
                   (fun d -> reach.(d))
                   (Analysis.Dom.dom_set dom l)
              && reach.(l)
                 = not
                     (Analysis.Bitset.is_empty df.Analysis.Dataflow.out.(l)))
            (labels (Array.length f.Prog.blocks)))
        prog.Prog.funcs)

(* --- linter: hand-built error input ---------------------------------- *)

let no_calls =
  {
    Placement.Weight.pair = (fun _ _ -> 0);
    callees = (fun _ -> []);
    entries = (fun fid -> if fid = 0 then 5 else 0);
    size = (fun _ -> 0);
  }

let lint_dead_weight () =
  let program = Prog.make ~entry:"deadblock" [ dead_block_func ] in
  let weights _ =
    Placement.Weight.cfg_of_lists ~func_weight:5
      ~blocks:[ (0, 5); (1, 3); (2, 5) ]
      ~arcs:[ (0, 2, 5); (1, 2, 3) ]
  in
  let input =
    Analysis.Lint.make_input ~program ~weights ~calls:no_calls
      ~map:(Placement.Address_map.natural program)
      ~config:Experiments.Lint_exp.default_config ()
  in
  let report = Analysis.Lint.run input in
  (match Analysis.Lint.errors report with
  | [ d ] ->
    Alcotest.(check string)
      "weight on a dead block is a lint error"
      "[error lint] deadblock.b1: statically unreachable block carries \
       profile weight 3"
      (Diag.to_string d);
    Alcotest.(check int) "the linter owns exit code 18" 18 (Diag.exit_code d)
  | ds -> Alcotest.failf "expected exactly one error, got %d" (List.length ds));
  (* Under the natural map the hot entry->exit arc jumps over the dead
     block, so the hot-arc pass fires too (as a warning). *)
  Alcotest.(check int) "hot arc broken weight" 5
    report.Analysis.Lint.hot_arc_broken;
  (match report.Analysis.Lint.findings with
  | first :: _ ->
    Alcotest.(check string)
      "errors sort before warnings" "unreachable" first.Analysis.Lint.pass
  | [] -> Alcotest.fail "no findings");
  Alcotest.(check (list (pair string int)))
    "per-pass census"
    [
      ("flow", 0); ("unreachable", 1); ("hot-arc", 1); ("loop-split", 0);
      ("set-conflict", 0); ("absint", 1);
    ]
    report.Analysis.Lint.by_pass;
  (* The sixth pass certified a nonzero cold-start bound: the interval
     is ordered and the guaranteed misses are weighted into [lo]. *)
  let c = report.Analysis.Lint.certified in
  Alcotest.(check bool) "certified interval ordered" true
    (0 < c.Analysis.Absint.lo && c.Analysis.Absint.lo <= c.Analysis.Absint.hi)

(* --- linter on a real benchmark -------------------------------------- *)

(* One shared context: the cmp pipeline and its strategy maps are memoized
   across the lint test cases. *)
let ctx = lazy (Experiments.Context.create ~names:[ "cmp" ] ())
let cmp_entry () = List.hd (Experiments.Context.entries (Lazy.force ctx))

let golden_lint_cmp () =
  let e = cmp_entry () in
  let r =
    Experiments.Lint_exp.lint_entry e (Placement.Strategy.find "impact")
  in
  Alcotest.(check string) "summary line"
    "cmp/impact: 2 finding(s) [flow=0  unreachable=0  hot-arc=0  \
     loop-split=0  set-conflict=1  absint=1]  certified misses [24, 680]  \
     conflict score 5.875  hot arcs broken 0/488774 (0.00%)"
    (Experiments.Lint_exp.summary r);
  (match r.Experiments.Lint_exp.report.Analysis.Lint.findings with
  | [ a; f ] ->
    (* Findings sort by score: the certified cold-start conflict (24
       weighted guaranteed misses) outranks the heuristic set-conflict
       warning. *)
    Alcotest.(check string) "pass" "absint" a.Analysis.Lint.pass;
    Alcotest.(check string) "certified finding"
      "[warning lint] main.b0 <impact>: certified conflict: 2 of 2 line \
       fetches always miss (weight 12)"
      (Diag.to_string a.Analysis.Lint.diag);
    Alcotest.(check string) "pass" "set-conflict" f.Analysis.Lint.pass;
    Alcotest.(check string) "finding"
      "[warning lint] put_octal3 <impact>: hot lines of put_octal3 and \
       main co-map to 1 of 32 cache sets (188 dynamic calls between them)"
      (Diag.to_string f.Analysis.Lint.diag)
  | fs -> Alcotest.failf "expected two findings, got %d" (List.length fs));
  (* The JSON report round-trips through the strict parser. *)
  let json =
    Obs.Json.parse_exn
      (Obs.Json.to_string (Experiments.Lint_exp.report_json ~results:[ r ]))
  in
  (match Obs.Json.member "schema" json with
  | Some (Obs.Json.String s) ->
    Alcotest.(check string) "schema" "impact.lint/v1" s
  | _ -> Alcotest.fail "schema missing");
  match Option.bind (Obs.Json.member "results" json) Obs.Json.to_list with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "results should hold exactly the one linted strategy"

let lint_ranking_no_simulation () =
  let e = cmp_entry () in
  (* Force the memoized pipeline and maps first, so the spans recorded
     below belong to the lint run alone. *)
  List.iter
    (fun s -> ignore (Experiments.Context.strategy_map e s))
    Placement.Strategy.all;
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  let results = Experiments.Lint_exp.sweep e in
  let events = Obs.Span.events () in
  Obs.Span.set_enabled false;
  Obs.Span.reset ();
  (* Zero simulation on the lint path: no trace replay, no cache model. *)
  List.iter
    (fun (ev : Obs.Span.event) ->
      if
        List.exists
          (fun banned ->
            String.length ev.Obs.Span.name >= String.length banned
            && String.sub ev.Obs.Span.name 0 (String.length banned) = banned)
          [ "simulate"; "trace-record"; "pipeline" ]
      then Alcotest.failf "lint ran a dynamic stage: %s" ev.Obs.Span.name)
    events;
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (Printf.sprintf "span for lint.%s recorded" pass)
        true
        (List.exists
           (fun (ev : Obs.Span.event) -> ev.Obs.Span.name = "lint." ^ pass)
           events))
    Analysis.Lint.pass_names;
  (* Static ranking: the profile-guided placement must statically beat
     the natural order, matching the simulated miss-ratio ordering. *)
  let ids =
    List.map
      (fun (r : Experiments.Lint_exp.result) ->
        r.Experiments.Lint_exp.strategy.Placement.Strategy.id)
      (Experiments.Lint_exp.rank results)
  in
  let pos id =
    match List.find_index (String.equal id) ids with
    | Some i -> i
    | None -> Alcotest.failf "strategy %s missing from ranking" id
  in
  Alcotest.(check int) "all five strategies ranked" 5 (List.length ids);
  Alcotest.(check bool) "impact statically beats natural" true
    (pos "impact" < pos "natural")

let suite =
  [
    Alcotest.test_case "dominators: diamond" `Quick dominators_diamond;
    Alcotest.test_case "post-dominators: diamond" `Quick
      post_dominators_diamond;
    Alcotest.test_case "dominators: dead blocks" `Quick
      dominators_dead_blocks;
    Alcotest.test_case "loop nesting" `Quick loop_nesting;
    Alcotest.test_case "irreducible graph" `Quick irreducible_detected;
    Alcotest.test_case "liveness: diamond" `Quick liveness_diamond;
    Alcotest.test_case "dead stores" `Quick dead_stores;
    Alcotest.test_case "reachability unified" `Quick reach_unified;
    QCheck_alcotest.to_alcotest prop_dom_reach;
    Alcotest.test_case "lint: dead weight is an error" `Quick
      lint_dead_weight;
    Alcotest.test_case "lint: golden cmp/impact" `Quick golden_lint_cmp;
    Alcotest.test_case "lint: ranking, zero simulation" `Quick
      lint_ranking_no_simulation;
  ]
