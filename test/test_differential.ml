(* Differential testing over randomly generated programs: every
   transformation in the stack must preserve observable behavior, and
   every placement artifact must satisfy its structural invariants, on
   arbitrary control flow — not just the hand-written fixtures. *)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves behavior" ~count:120 seed_gen
    (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let s = Ir.Simplify.program p in
      Ir.Check.program s;
      Gen_prog.observe_lowered p = Gen_prog.observe_lowered s)

let prop_inline_preserves =
  QCheck.Test.make ~name:"inline expansion preserves behavior" ~count:60
    seed_gen (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let config =
        {
          Placement.Inline.default_config with
          min_call_count = 1;
          min_call_fraction = 0.;
          max_program_growth = 5.;
        }
      in
      let inlined, _ =
        Placement.Inline.expand ~config p ~inputs:[ Vm.Io.input [] ]
      in
      Ir.Check.program inlined;
      Gen_prog.observe_lowered p = Gen_prog.observe_lowered inlined)

let prop_scaling_preserves =
  QCheck.Test.make ~name:"code scaling preserves behavior" ~count:60 seed_gen
    (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let scaled = Ir.Prog.scale_code 0.6 p in
      Gen_prog.observe_lowered p = Gen_prog.observe_lowered scaled)

let prop_pipeline_invariants =
  QCheck.Test.make ~name:"pipeline invariants on random programs" ~count:40
    seed_gen (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let pl = Placement.Pipeline.run p ~inputs:[ Vm.Io.input [] ] in
      let program = pl.Placement.Pipeline.program in
      Ir.Check.program program;
      Placement.Address_map.is_disjoint pl.Placement.Pipeline.optimized
      && Placement.Global_layout.is_permutation pl.Placement.Pipeline.global
           (Array.length program.Ir.Prog.funcs)
      && Array.for_all
           (fun (sel : Placement.Trace_select.t) ->
             Array.for_all (fun id -> id >= 0) sel.Placement.Trace_select.trace_of)
           pl.Placement.Pipeline.selections
      && Array.length
           (Array.of_list
              (Array.to_list pl.Placement.Pipeline.layouts
              |> List.filteri (fun fid lay ->
                     not
                       (Placement.Func_layout.is_permutation lay
                          (Array.length program.Ir.Prog.funcs.(fid).Ir.Prog.blocks)))))
         = 0
      (* behavior preserved end to end *)
      && Gen_prog.observe_lowered pl.Placement.Pipeline.original
         = Gen_prog.observe_lowered program)

let prop_layouts_agree_on_accesses =
  (* Natural, IMPACT and P-H layouts of the same program replay the same
     number of fetches; all ratios bounded. *)
  QCheck.Test.make ~name:"layouts replay identical access counts" ~count:25
    seed_gen (fun seed ->
      let ast = Gen_prog.generate seed in
      let p = Ir.Lower.program ast in
      let pl = Placement.Pipeline.run p ~inputs:[ Vm.Io.input [] ] in
      let trace =
        Sim.Trace.of_gen
          (Sim.Trace_gen.record pl.Placement.Pipeline.program
             (Vm.Io.input []))
      in
      let config = Icache.Config.make ~size:512 ~block:32 () in
      let program = pl.Placement.Pipeline.program in
      let profile = pl.Placement.Pipeline.profile in
      let ph_layouts =
        Array.mapi
          (fun fid f ->
            Placement.Ph_layout.layout f
              (Placement.Weight.cfg_of_profile profile fid))
          program.Ir.Prog.funcs
      in
      let ph_map =
        Placement.Address_map.build program ~layouts:ph_layouts
          ~order:pl.Placement.Pipeline.global
      in
      let runs =
        List.map
          (fun map -> Sim.Driver.simulate config map trace)
          [ pl.Placement.Pipeline.natural; pl.Placement.Pipeline.optimized; ph_map ]
      in
      match runs with
      | [ a; b; c ] ->
        a.Sim.Driver.accesses = b.Sim.Driver.accesses
        && b.Sim.Driver.accesses = c.Sim.Driver.accesses
        && List.for_all
             (fun (r : Sim.Driver.result) ->
               r.Sim.Driver.miss_ratio >= 0. && r.Sim.Driver.miss_ratio <= 1.)
             runs
      | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_simplify_preserves;
    QCheck_alcotest.to_alcotest prop_inline_preserves;
    QCheck_alcotest.to_alcotest prop_scaling_preserves;
    QCheck_alcotest.to_alcotest prop_pipeline_invariants;
    QCheck_alcotest.to_alcotest prop_layouts_agree_on_accesses;
  ]
