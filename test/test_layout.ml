(* Function layout, global layout and address map tests. *)

open Helpers

let func_layout_basics () =
  let w = diamond_weights () in
  let sel = Placement.Trace_select.select diamond_loop_func w in
  let lay = Placement.Func_layout.layout diamond_loop_func w sel in
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6);
  Alcotest.(check int) "entry placed first" 0 lay.Placement.Func_layout.order.(0);
  (* Every block here executed, so the whole function is active. *)
  Alcotest.(check int) "all active" 6 lay.Placement.Func_layout.active_blocks;
  (* The hot trace 1-2-4 is contiguous in the layout. *)
  let pos = Array.make 6 0 in
  Array.iteri (fun idx l -> pos.(l) <- idx) lay.Placement.Func_layout.order;
  Alcotest.(check int) "2 follows 1" (pos.(1) + 1) pos.(2);
  Alcotest.(check int) "4 follows 2" (pos.(2) + 1) pos.(4)

let zero_blocks_sink () =
  (* Blocks 3 and 5 never execute: they must sink below the active split. *)
  let w =
    Placement.Weight.cfg_of_lists ~func_weight:1
      ~blocks:[ (0, 1); (1, 101); (2, 100); (4, 100) ]
      ~arcs:[ (0, 1, 1); (1, 2, 100); (2, 4, 100); (4, 1, 100) ]
  in
  let sel = Placement.Trace_select.select diamond_loop_func w in
  let lay = Placement.Func_layout.layout diamond_loop_func w sel in
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6);
  Alcotest.(check int) "four active blocks" 4
    lay.Placement.Func_layout.active_blocks;
  let pos = Array.make 6 0 in
  Array.iteri (fun idx l -> pos.(l) <- idx) lay.Placement.Func_layout.order;
  Alcotest.(check bool) "block 3 in the cold tail" true (pos.(3) >= 4);
  Alcotest.(check bool) "block 5 in the cold tail" true (pos.(5) >= 4);
  Alcotest.(check bool) "active bytes < total" true
    (lay.Placement.Func_layout.active_bytes
    < lay.Placement.Func_layout.total_bytes)

let unexecuted_function () =
  let lay = Placement.Func_layout.layout_unexecuted diamond_loop_func in
  Alcotest.(check int) "no active blocks" 0 lay.Placement.Func_layout.active_blocks;
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6)

let global_dfs_order () =
  (* Call graph: main -> a (90), main -> b (10), a -> c (50).
     DFS from main visiting heaviest first: main, a, c, b. *)
  let w =
    {
      Placement.Weight.pair =
        (fun caller callee ->
          match (caller, callee) with
          | 0, 1 -> 90
          | 0, 2 -> 10
          | 1, 3 -> 50
          | _ -> 0);
      callees =
        (function 0 -> [ 2; 1 ] | 1 -> [ 3 ] | _ -> []);
      entries = (fun _ -> 1);
      size = (fun _ -> 16);
    }
  in
  let g = Placement.Global_layout.layout 5 ~entry:0 w in
  Alcotest.(check (list int)) "weighted dfs + orphan sweep" [ 0; 1; 3; 2; 4 ]
    (Array.to_list g.Placement.Global_layout.order);
  Alcotest.(check bool) "permutation" true
    (Placement.Global_layout.is_permutation g 5)

let address_map_properties () =
  let b = Workloads.Registry.find "wc" in
  let p =
    Placement.Pipeline.run (Workloads.Bench.program b)
      ~inputs:[ Vm.Io.input [ "one two three\nfour\n" ] ]
  in
  let opt = p.Placement.Pipeline.optimized in
  let nat = p.Placement.Pipeline.natural in
  Alcotest.(check bool) "optimized disjoint" true
    (Placement.Address_map.is_disjoint opt);
  Alcotest.(check bool) "natural disjoint" true
    (Placement.Address_map.is_disjoint nat);
  Alcotest.(check int) "same total bytes" nat.Placement.Address_map.total_bytes
    opt.Placement.Address_map.total_bytes;
  Alcotest.(check bool) "effective <= total" true
    (opt.Placement.Address_map.effective_bytes
    <= opt.Placement.Address_map.total_bytes);
  Alcotest.(check bool) "natural effective = total" true
    (nat.Placement.Address_map.effective_bytes
    = nat.Placement.Address_map.total_bytes);
  (* Total equals the program's byte size. *)
  Alcotest.(check int) "total = program size"
    (Ir.Prog.total_byte_size p.Placement.Pipeline.program)
    opt.Placement.Address_map.total_bytes

let ph_intra () =
  let w = diamond_weights () in
  let lay = Placement.Ph_layout.layout diamond_loop_func w in
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6);
  Alcotest.(check int) "entry first" 0 lay.Placement.Func_layout.order.(0);
  (* P-H merges the heaviest arc first — here the loop backedge 4->1 — so
     the hot loop body {1,2,4} forms one chain (rotated), i.e. the three
     blocks occupy three consecutive layout slots. *)
  let pos = Array.make 6 0 in
  Array.iteri (fun idx l -> pos.(l) <- idx) lay.Placement.Func_layout.order;
  let hot = List.sort compare [ pos.(1); pos.(2); pos.(4) ] in
  (match hot with
  | [ a; b; c ] ->
    Alcotest.(check int) "hot loop contiguous (span)" 2 (c - a);
    Alcotest.(check int) "hot loop contiguous (middle)" (a + 1) b
  | _ -> assert false);
  Alcotest.(check int) "1 and 2 adjacent" (pos.(1) + 1) pos.(2);
  (* Zero-weight function: empty active region. *)
  let z =
    Placement.Ph_layout.layout diamond_loop_func
      (Placement.Weight.cfg_of_lists ~func_weight:0 ~blocks:[] ~arcs:[])
  in
  Alcotest.(check int) "unexecuted inactive" 0 z.Placement.Func_layout.active_blocks

let ph_global () =
  (* main(0) calls a(1) 90x and b(2) 10x; a calls c(3) 50x; d(4) unused.
     Heaviest edges merge first: (0,1,90), (1,3,50), (0,2,10) — one group
     containing everything reachable, entry group first, orphan last. *)
  let w =
    {
      Placement.Weight.pair =
        (fun caller callee ->
          match (caller, callee) with
          | 0, 1 -> 90
          | 0, 2 -> 10
          | 1, 3 -> 50
          | _ -> 0);
      callees = (function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | _ -> []);
      entries = (fun fid -> if fid = 4 then 0 else 1);
      size = (fun _ -> 16);
    }
  in
  let g = Placement.Ph_layout.global 5 ~entry:0 w in
  Alcotest.(check bool) "permutation" true
    (Placement.Global_layout.is_permutation g 5);
  Alcotest.(check int) "entry group first" 0 g.Placement.Global_layout.order.(0);
  Alcotest.(check int) "orphan last" 4 g.Placement.Global_layout.order.(4)

let ph_end_to_end () =
  (* P-H maps are valid address maps and preserve program size. *)
  let ctx = Experiments.Context.create ~names:[ "tee" ] () in
  let e = List.hd (Experiments.Context.entries ctx) in
  let map = Experiments.Context.strategy_map e Placement.Strategy.ph in
  Alcotest.(check bool) "disjoint" true (Placement.Address_map.is_disjoint map);
  Alcotest.(check int) "same total bytes"
    (Experiments.Context.optimized_map e).Placement.Address_map.total_bytes
    map.Placement.Address_map.total_bytes

(* qcheck: address maps stay disjoint under random code scaling. *)
let prop_scaled_disjoint =
  QCheck.Test.make ~name:"scaled address maps disjoint" ~count:20
    (QCheck.make
       ~print:string_of_float
       QCheck.Gen.(map (fun x -> 0.3 +. (x *. 1.4)) (float_bound_exclusive 1.)))
    (fun factor ->
      let p = Ir.Lower.program caller_prog in
      let scaled = Ir.Prog.scale_code factor p in
      let map = Placement.Address_map.natural scaled in
      Placement.Address_map.is_disjoint map
      && map.Placement.Address_map.total_bytes
         = Ir.Prog.total_byte_size scaled)

let suite =
  [
    Alcotest.test_case "function layout basics" `Quick func_layout_basics;
    Alcotest.test_case "zero-weight blocks sink" `Quick zero_blocks_sink;
    Alcotest.test_case "unexecuted function" `Quick unexecuted_function;
    Alcotest.test_case "global DFS order" `Quick global_dfs_order;
    Alcotest.test_case "address map properties" `Quick address_map_properties;
    Alcotest.test_case "pettis-hansen intra" `Quick ph_intra;
    Alcotest.test_case "pettis-hansen global" `Quick ph_global;
    Alcotest.test_case "pettis-hansen end to end" `Quick ph_end_to_end;
    QCheck_alcotest.to_alcotest prop_scaled_disjoint;
  ]
