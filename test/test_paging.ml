(* Paging simulator tests. *)

let mk ?(page_bytes = 512) ?(frames = 4) ?(theta = 100) ?(sample_every = 10)
    () =
  Paging.Page_sim.create
    { Paging.Page_sim.page_bytes; frames; theta; sample_every }

let feed sim addrs = List.iter (Paging.Page_sim.access sim) addrs

let distinct_pages () =
  let sim = mk () in
  feed sim [ 0; 4; 8; 511; 512; 1024; 0; 512 ];
  Alcotest.(check int) "three pages" 3 (Paging.Page_sim.distinct_pages sim);
  Alcotest.(check int) "accesses" 8 (Paging.Page_sim.accesses sim)

let lru_replacement () =
  (* 2 frames: pages 0,1 resident; touching 2 evicts 0 (LRU). *)
  let sim = mk ~frames:2 () in
  let page p = p * 512 in
  feed sim [ page 0; page 1; page 0; page 2 ];
  (* faults so far: 0,1,2 *)
  Alcotest.(check int) "three faults" 3 (Paging.Page_sim.lru_faults sim);
  (* 1 was evicted? no: LRU of {0(t3),1(t2)} at insert of 2 is page 1 *)
  feed sim [ page 0 ];
  Alcotest.(check int) "page 0 still resident" 3 (Paging.Page_sim.lru_faults sim);
  feed sim [ page 1 ];
  Alcotest.(check int) "page 1 was the victim" 4 (Paging.Page_sim.lru_faults sim)

let working_set () =
  (* One page touched continuously: working set stabilizes at 1. *)
  let sim = mk ~theta:50 ~sample_every:10 () in
  for _ = 1 to 100 do
    Paging.Page_sim.access sim 0
  done;
  Alcotest.(check (float 0.01)) "ws = 1" 1.0 (Paging.Page_sim.mean_working_set sim);
  Alcotest.(check int) "max ws" 1 (Paging.Page_sim.max_working_set sim);
  (* Two pages alternating stay within the window: ws = 2. *)
  let sim2 = mk ~theta:50 ~sample_every:10 () in
  for k = 1 to 100 do
    Paging.Page_sim.access sim2 (if k mod 2 = 0 then 0 else 512)
  done;
  Alcotest.(check int) "max ws 2" 2 (Paging.Page_sim.max_working_set sim2)

let validation () =
  match mk ~frames:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "frames=0 accepted"

let fault_rate_bounds () =
  let sim = mk () in
  feed sim (List.init 100 (fun k -> k * 4));
  let r = Paging.Page_sim.fault_rate sim in
  Alcotest.(check bool) "rate in [0,1]" true (r >= 0. && r <= 1.)

(* Differential: [access_run] must be bit-identical to per-word [access]
   on every observable, including working-set samples that land in the
   middle of a run.  Small pages/windows make runs span pages and put
   sample ticks inside spans. *)
let paging_chunks_gen =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, w) -> Printf.sprintf "(%d,%d)" a w) l))
    QCheck.Gen.(
      list_size (int_range 20 120)
        (pair (map (fun a -> a * 4) (int_bound 1023)) (int_range 1 40)))

let prop_access_run_equals_access =
  QCheck.Test.make ~name:"paging access_run = per-word access" ~count:80
    paging_chunks_gen (fun chunks ->
      let pairs =
        List.map
          (fun fresh -> (fresh (), fresh ()))
          [
            (fun () -> mk ~page_bytes:64 ~frames:3 ~theta:37 ~sample_every:5 ());
            (fun () ->
              mk ~page_bytes:128 ~frames:2 ~theta:100 ~sample_every:13 ());
            (fun () ->
              mk ~page_bytes:512 ~frames:16 ~theta:10_000 ~sample_every:1_000 ());
          ]
      in
      List.for_all
        (fun ((ref_sim : Paging.Page_sim.t), (fast : Paging.Page_sim.t)) ->
          List.iter
            (fun (addr, words) ->
              for k = 0 to words - 1 do
                Paging.Page_sim.access ref_sim (addr + (k * 4))
              done;
              Paging.Page_sim.access_run fast ~addr ~words)
            chunks;
          Paging.Page_sim.accesses ref_sim = Paging.Page_sim.accesses fast
          && Paging.Page_sim.distinct_pages ref_sim
             = Paging.Page_sim.distinct_pages fast
          && Paging.Page_sim.lru_faults ref_sim
             = Paging.Page_sim.lru_faults fast
          && Paging.Page_sim.fault_rate ref_sim
             = Paging.Page_sim.fault_rate fast
          && Paging.Page_sim.mean_working_set ref_sim
             = Paging.Page_sim.mean_working_set fast
          && Paging.Page_sim.max_working_set ref_sim
             = Paging.Page_sim.max_working_set fast)
        pairs)

let suite =
  [
    Alcotest.test_case "distinct pages" `Quick distinct_pages;
    Alcotest.test_case "LRU replacement" `Quick lru_replacement;
    Alcotest.test_case "working set" `Quick working_set;
    Alcotest.test_case "validation" `Quick validation;
    Alcotest.test_case "fault rate bounds" `Quick fault_rate_bounds;
    QCheck_alcotest.to_alcotest prop_access_run_equals_access;
  ]
