(* The streaming/compressed trace store (PR 7):

   - Ctrace round-trip: the run-length/delta coder reproduces the exact
     pushed code sequence (QCheck over adversarial run shapes).
   - Engine differentials on every benchmark: buffered and streaming
     recordings, compressed replay, and the fused VM→cache engine all
     produce bit-identical simulation results against the word-granular
     reference.
   - Rendered-table bit-identity between engines.
   - Scaled workloads keep the original semantics (same return value and
     output, strictly more fetches and functions).
   - The trace.* gauges account raw vs stored bytes. *)

let results_equal (a : Sim.Driver.result) (b : Sim.Driver.result) =
  a.Sim.Driver.accesses = b.Sim.Driver.accesses
  && a.Sim.Driver.misses = b.Sim.Driver.misses
  && a.Sim.Driver.words_fetched = b.Sim.Driver.words_fetched
  && a.Sim.Driver.miss_ratio = b.Sim.Driver.miss_ratio
  && a.Sim.Driver.traffic_ratio = b.Sim.Driver.traffic_ratio
  && a.Sim.Driver.avg_fetch_words = b.Sim.Driver.avg_fetch_words
  && a.Sim.Driver.avg_exec_insns = b.Sim.Driver.avg_exec_insns
  && a.Sim.Driver.eat_blocking = b.Sim.Driver.eat_blocking
  && a.Sim.Driver.eat_streaming = b.Sim.Driver.eat_streaming
  && a.Sim.Driver.eat_streaming_partial = b.Sim.Driver.eat_streaming_partial

(* Interpreter results are compared field-wise: [io] holds Buffers whose
   unwritten slack bytes make polymorphic equality unreliable. *)
let interp_results_equal (a : Vm.Interp.result) (b : Vm.Interp.result) =
  a.Vm.Interp.return_value = b.Vm.Interp.return_value
  && a.Vm.Interp.dyn_insns = b.Vm.Interp.dyn_insns
  && a.Vm.Interp.dyn_blocks = b.Vm.Interp.dyn_blocks
  && a.Vm.Interp.dyn_calls = b.Vm.Interp.dyn_calls
  && a.Vm.Interp.dyn_branches = b.Vm.Interp.dyn_branches
  && Vm.Io.output a.Vm.Interp.io 0 = Vm.Io.output b.Vm.Interp.io 0
  && Vm.Io.output a.Vm.Interp.io 1 = Vm.Io.output b.Vm.Interp.io 1

(* A real interpreter result for Ctrace.finish in the synthetic
   round-trip tests (its content is irrelevant there). *)
let dummy_result =
  lazy
    (let b = Workloads.Registry.find "cmp" in
     Vm.Interp.run (Workloads.Bench.program b) (Workloads.Bench.trace_input b))

(* --- Ctrace round-trip on synthetic code sequences --- *)

(* Expand a run spec into the explicit packed-code list: [(base, len)]
   means codes base, base+1, ..., base+len-1.  Bases are arbitrary (runs
   can restart backwards, repeat, or jump far ahead), which exercises
   every sign and width of the zigzag delta. *)
let expand_runs spec =
  List.concat_map (fun (base, len) -> List.init len (fun k -> base + k)) spec

let codes_of_ctrace ct =
  let out = ref [] in
  Sim.Ctrace.iter_runs (fun ~code ~len ->
      for k = 0 to len - 1 do
        out := (code + k) :: !out
      done)
    ct;
  List.rev !out

let runs_gen =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (b, n) -> Printf.sprintf "(%d,%d)" b n) l))
    QCheck.Gen.(
      list_size (int_range 0 200)
        (pair
           (* Packed codes are (fid << 20) | label: cover small labels,
              label boundaries and large fids. *)
           (oneof
              [
                int_bound 40;
                map (fun l -> (1 lsl 20) - 1 - l) (int_bound 3);
                map2
                  (fun fid l -> (fid lsl 20) lor l)
                  (int_bound 4000) (int_bound 100);
              ])
           (int_range 1 30)))

let prop_ctrace_roundtrip =
  QCheck.Test.make ~name:"Ctrace push/replay identity (arbitrary runs)"
    ~count:200 runs_gen (fun spec ->
      let codes = expand_runs spec in
      let b = Sim.Ctrace.builder () in
      List.iter (Sim.Ctrace.push b) codes;
      let ct = Sim.Ctrace.finish b (Lazy.force dummy_result) in
      codes_of_ctrace ct = codes
      && Sim.Ctrace.dyn_blocks ct = List.length codes
      && Sim.Ctrace.raw_bytes ct = 8 * List.length codes)

(* Run coalescing: consecutive codes must land in one run, so the run
   count equals the number of breaks in the sequence. *)
let ctrace_coalesces () =
  let b = Sim.Ctrace.builder () in
  List.iter (Sim.Ctrace.push b) [ 5; 6; 7; 42; 43; 9; 5; 6 ];
  let ct = Sim.Ctrace.finish b (Lazy.force dummy_result) in
  Alcotest.(check int) "4 runs" 4 (Sim.Ctrace.runs ct);
  Alcotest.(check int) "8 blocks" 8 (Sim.Ctrace.dyn_blocks ct);
  Alcotest.(check bool)
    "compressed below raw" true
    (Sim.Ctrace.compressed_bytes ct < Sim.Ctrace.raw_bytes ct)

(* --- engine differentials on every benchmark --- *)

(* Two configurations exercising the engine's hairiest paths (sector
   fills within set-associative lookup; partial fills); the cheap shapes
   are already covered by the fast_sim/differential suites. *)
let diff_configs =
  [
    Icache.Config.make ~size:512 ~block:64 ~fill:(Icache.Config.Sectored 8)
      ~assoc:(Icache.Config.Ways 2) ();
    Icache.Config.make ~size:256 ~block:64 ~fill:Icache.Config.Partial ();
  ]

(* For one benchmark (natural layout, no pipeline: this pins the trace
   store, not the placement), every representation and engine must agree
   with the buffered word-granular reference. *)
let check_benchmark name =
  let b = Workloads.Registry.find name in
  let program = Workloads.Bench.program b in
  let input = Workloads.Bench.trace_input b in
  let map = Placement.Address_map.natural program in
  let tg = Sim.Trace_gen.record program input in
  let raw = Sim.Trace.of_gen tg in
  let packed = Sim.Trace.of_ctrace (Sim.Ctrace.of_trace_gen tg) in
  let streamed = Sim.Trace.record ~engine:Sim.Trace.Streaming program input in
  (* Identical executions and block streams. *)
  Alcotest.(check int)
    (name ^ ": packed blocks") (Sim.Trace.dyn_blocks raw)
    (Sim.Trace.dyn_blocks packed);
  Alcotest.(check int)
    (name ^ ": streamed blocks") (Sim.Trace.dyn_blocks raw)
    (Sim.Trace.dyn_blocks streamed);
  Alcotest.(check int)
    (name ^ ": dyn_insns") (Sim.Trace.dyn_insns map raw)
    (Sim.Trace.dyn_insns map streamed);
  Alcotest.(check bool)
    (name ^ ": results agree") true
    (interp_results_equal (Sim.Trace.result streamed) (Sim.Trace.result raw));
  (* Block-granular sweep per representation plus the fused VM→cache
     engine: all bit-identical.  (Word-vs-block equivalence itself is
     covered by the fast_sim/differential suites; here the subject is
     the representation and the fusion.) *)
  let baseline = Sim.Driver.simulate_many diff_configs map raw in
  let agree label rs =
    Alcotest.(check bool) (name ^ ": " ^ label) true
      (List.for_all2 results_equal baseline rs)
  in
  agree "simulate_many on packed"
    (Sim.Driver.simulate_many diff_configs map packed);
  (* The fused recording must produce the byte-identical encoding to
     compressing a buffered recording — which pins its replay to the
     packed sweep above without another walk. *)
  (match (streamed, packed) with
  | Sim.Trace.Packed sct, Sim.Trace.Packed pct ->
    Alcotest.(check bool)
      (name ^ ": fused recording encodes identically") true
      (Bytes.equal sct.Sim.Ctrace.data pct.Sim.Ctrace.data
      && Sim.Ctrace.runs sct = Sim.Ctrace.runs pct)
  | _ -> Alcotest.fail (name ^ ": expected compressed representations"));
  let fused, vm_result = Sim.Driver.simulate_stream diff_configs map program input in
  agree "fused simulate_stream" fused;
  (* One word-granular reference point on the compressed representation
     per benchmark whose trace keeps the word-by-word walk viable (the
     equivalence itself is config-independent and covered on random
     programs by the differential suites). *)
  if Sim.Trace.dyn_blocks raw < 500_000 then begin
    let c0 = List.hd diff_configs in
    Alcotest.(check bool)
      (name ^ ": word-granular reference on packed") true
      (results_equal (List.hd baseline) (Sim.Driver.simulate c0 map packed))
  end;
  Alcotest.(check bool)
    (name ^ ": fused VM result") true
    (interp_results_equal vm_result (Sim.Trace.result raw));
  (* The compressed representation really is smaller. *)
  let s = Sim.Trace.stats packed in
  Alcotest.(check bool)
    (name ^ ": compression wins") true
    (s.Sim.Trace.st_stored_bytes < s.Sim.Trace.st_raw_bytes)

let engines_agree_all_benchmarks () =
  List.iter check_benchmark Workloads.Registry.names

(* --- rendered tables identical across engines --- *)

let tables_identical_across_engines () =
  let render engine =
    let ctx =
      Experiments.Context.create ~engine ~names:[ "cmp"; "tee" ] ()
    in
    let o = Experiments.Runner.run_spec ctx (Experiments.Runner.find "6") in
    Report.Table.render o.Experiments.Runner.table
  in
  Alcotest.(check string)
    "table 6 identical under buffered and streaming"
    (render Sim.Trace.Buffered)
    (render Sim.Trace.Streaming)

(* --- scaled workloads preserve semantics --- *)

let scale_preserves_semantics () =
  let base = Workloads.Registry.find "cmp" in
  let scaled = Workloads.Registry.find ~scale:2 "cmp" in
  let input = Workloads.Bench.trace_input base in
  let r0 = Vm.Interp.run (Workloads.Bench.program base) input in
  let r2 =
    Vm.Interp.run (Workloads.Bench.program scaled)
      (Workloads.Bench.trace_input scaled)
  in
  Alcotest.(check int)
    "same return value" r0.Vm.Interp.return_value r2.Vm.Interp.return_value;
  Alcotest.(check string)
    "same output" (Vm.Io.output r0.Vm.Interp.io 1)
    (Vm.Io.output r2.Vm.Interp.io 1);
  Alcotest.(check bool) "strictly more fetches" true
    (r2.Vm.Interp.dyn_insns > r0.Vm.Interp.dyn_insns);
  let nfuncs b =
    Array.length (Workloads.Bench.program b).Ir.Prog.funcs
  in
  Alcotest.(check bool) "strictly more functions" true
    (nfuncs scaled > nfuncs base)

let scale_monotone () =
  (* More scale, more code and more trace. *)
  let insns scale =
    let b = Workloads.Registry.find ~scale "tee" in
    (Vm.Interp.run (Workloads.Bench.program b) (Workloads.Bench.trace_input b))
      .Vm.Interp.dyn_insns
  in
  let i1 = insns 1 and i2 = insns 2 and i4 = insns 4 in
  Alcotest.(check bool) "x2 > x1" true (i2 > i1);
  Alcotest.(check bool) "x4 > x2" true (i4 > i2)

(* --- trace.* gauges --- *)

let gauges_account_recordings () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let g n = Obs.Metrics.gauge_value (Obs.Metrics.gauge n) in
  let raw0 = g "trace.raw_bytes"
  and stored0 = g "trace.compressed_bytes"
  and peak0 = g "trace.peak_resident_bytes"
  and runs0 = g "trace.runs" in
  let b = Workloads.Registry.find "cmp" in
  let t =
    Sim.Trace.record ~engine:Sim.Trace.Streaming (Workloads.Bench.program b)
      (Workloads.Bench.trace_input b)
  in
  Obs.Metrics.set_enabled was;
  let s = Sim.Trace.stats t in
  let df g0 g1 = int_of_float (g1 -. g0) in
  Alcotest.(check int) "raw_bytes bump" s.Sim.Trace.st_raw_bytes
    (df raw0 (g "trace.raw_bytes"));
  Alcotest.(check int) "stored bump" s.Sim.Trace.st_stored_bytes
    (df stored0 (g "trace.compressed_bytes"));
  Alcotest.(check int) "peak bump" s.Sim.Trace.st_stored_bytes
    (df peak0 (g "trace.peak_resident_bytes"));
  Alcotest.(check int) "runs bump" s.Sim.Trace.st_runs
    (df runs0 (g "trace.runs"));
  Alcotest.(check bool) "stored < raw" true
    (s.Sim.Trace.st_stored_bytes < s.Sim.Trace.st_raw_bytes)

(* Raw and packed stats describe the same trace identically except for
   the stored size. *)
let stats_consistent () =
  let b = Workloads.Registry.find "wc" in
  let tg =
    Sim.Trace_gen.record (Workloads.Bench.program b)
      (Workloads.Bench.trace_input b)
  in
  let sr = Sim.Trace.stats (Sim.Trace.of_gen tg) in
  let sp = Sim.Trace.stats (Sim.Trace.of_ctrace (Sim.Ctrace.of_trace_gen tg)) in
  Alcotest.(check int) "same runs" sr.Sim.Trace.st_runs sp.Sim.Trace.st_runs;
  Alcotest.(check int) "same blocks" sr.Sim.Trace.st_blocks sp.Sim.Trace.st_blocks;
  Alcotest.(check int) "same raw bytes" sr.Sim.Trace.st_raw_bytes
    sp.Sim.Trace.st_raw_bytes;
  Alcotest.(check bool) "raw stores raw" true
    (sr.Sim.Trace.st_stored_bytes = sr.Sim.Trace.st_raw_bytes);
  Alcotest.(check bool) "packed stores less" true
    (sp.Sim.Trace.st_stored_bytes < sp.Sim.Trace.st_raw_bytes)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ctrace_roundtrip;
    Alcotest.test_case "Ctrace coalesces consecutive codes" `Quick
      ctrace_coalesces;
    Alcotest.test_case "engines agree on every benchmark" `Slow
      engines_agree_all_benchmarks;
    Alcotest.test_case "tables identical across engines" `Slow
      tables_identical_across_engines;
    Alcotest.test_case "scale preserves semantics" `Quick
      scale_preserves_semantics;
    Alcotest.test_case "scale grows the trace monotonically" `Slow
      scale_monotone;
    Alcotest.test_case "trace gauges account recordings" `Quick
      gauges_account_recordings;
    Alcotest.test_case "raw/packed stats consistent" `Quick stats_consistent;
  ]
