(* Test-side wrapper around the shared program generator [Ir.Gen]
   (promoted out of this file so the layout fuzzer can use it too),
   plus the observation helpers the differential tests need — these run
   the VM, which [ir] cannot depend on. *)

let generate = Ir.Gen.generate

(* Observable behavior of a program on the empty input. *)
let observe prog =
  let p = Ir.Lower.program prog in
  Ir.Check.program p;
  let r = Vm.Interp.run ~fuel:50_000_000 p (Vm.Io.input []) in
  (r.Vm.Interp.return_value, Vm.Io.output r.Vm.Interp.io 0)

let observe_lowered p =
  let r = Vm.Interp.run ~fuel:50_000_000 p (Vm.Io.input []) in
  (r.Vm.Interp.return_value, Vm.Io.output r.Vm.Interp.io 0)
