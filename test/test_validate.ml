(* Negative-path tests for the validation subsystem: malformed inputs
   must yield structured diagnostics (never crashes), corrupted layouts
   and profiles must be caught by the invariant verifier, a deliberately
   broken strategy must be caught and shrunk by the fuzzer, and a
   raising strategy must degrade to the natural layout instead of
   aborting an experiment sweep. *)

open Ir.Ast.Dsl

let has_error ds = Ir.Diag.errors ds <> []

let check_stage name expected (d : Ir.Diag.t) =
  Alcotest.(check string) name expected (Ir.Diag.stage_name d.Ir.Diag.stage)

(* ---------------- malformed programs ---------------- *)

let duplicate_function_names () =
  let p =
    {
      Ir.Ast.globals = [];
      funcs =
        [
          func "dup" [] [ ret (i 1) ];
          func "dup" [] [ ret (i 2) ];
          func "main" [] [ ret (i 0) ];
        ];
      entry = "main";
    }
  in
  match Ir.Lower.program p with
  | _ -> Alcotest.fail "duplicate function names lowered without a diagnostic"
  | exception Ir.Diag.Fail d ->
    check_stage "stage" "structure" d;
    Alcotest.(check (option string)) "function" (Some "dup") d.Ir.Diag.func

let dangling_branch_target () =
  let p = Ir.Lower.program Helpers.caller_prog in
  let fid = p.Ir.Prog.entry in
  let f = p.Ir.Prog.funcs.(fid) in
  let blocks = Array.copy f.Ir.Prog.blocks in
  blocks.(0) <- Ir.Cfg.mk_block blocks.(0).Ir.Cfg.insns (Ir.Cfg.Jump 99);
  let funcs = Array.copy p.Ir.Prog.funcs in
  funcs.(fid) <- { f with Ir.Prog.blocks };
  let bad = Ir.Prog.with_funcs p funcs in
  let ds = Ir.Check.diags bad in
  Alcotest.(check bool) "caught" true (has_error ds);
  let d = List.hd (Ir.Diag.errors ds) in
  check_stage "stage" "structure" d;
  Alcotest.(check (option int)) "block context" (Some 0) d.Ir.Diag.block;
  (* The predicate form reports false rather than raising. *)
  Alcotest.(check bool) "is_valid is false" false (Ir.Check.is_valid bad)

let entry_out_of_range () =
  let p = Ir.Lower.program Helpers.caller_prog in
  let bad = { p with Ir.Prog.entry = 99 } in
  let ds = Ir.Check.diags bad in
  Alcotest.(check bool) "caught" true (has_error ds);
  check_stage "stage" "structure" (List.hd (Ir.Diag.errors ds))

(* ---------------- corrupted profile (flow conservation) ------------- *)

let zero_weight_entry_block () =
  let p = Ir.Lower.program Helpers.caller_prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input [] ] in
  Alcotest.(check bool) "real profile conserves flow" false
    (has_error (Placement.Validate.flow prof));
  (* Zero out the entry block's weight: inflow (one program entry) no
     longer matches, and neither does its outflow. *)
  prof.Vm.Profile.funcs.(p.Ir.Prog.entry).Vm.Profile.block_counts.(0) <- 0;
  let ds = Placement.Validate.flow prof in
  Alcotest.(check bool) "caught" true (has_error ds);
  let d = List.hd (Ir.Diag.errors ds) in
  check_stage "stage" "profile" d;
  Alcotest.(check (option int)) "block context" (Some 0) d.Ir.Diag.block

(* ---------------- corrupted address map ---------------- *)

let corrupted_address_map () =
  let pipe =
    Placement.Pipeline.run
      (Ir.Lower.program Helpers.caller_prog)
      ~inputs:[ Vm.Io.input [] ]
  in
  let program = pipe.Placement.Pipeline.program in
  let weights fid =
    Placement.Weight.cfg_of_profile pipe.Placement.Pipeline.profile fid
  in
  let m = pipe.Placement.Pipeline.optimized in
  Alcotest.(check bool) "genuine map is clean" false
    (has_error
       (Placement.Validate.map ~strategy:Placement.Strategy.impact ~program
          ~weights m));
  let copy2 a = Array.map Array.copy a in
  (* Overlap: move one block onto another block's address. *)
  let block_addr = copy2 m.Placement.Address_map.block_addr in
  let fid = program.Ir.Prog.entry in
  block_addr.(fid).(1) <- block_addr.(fid).(0);
  let overlapping = { m with Placement.Address_map.block_addr } in
  let ds =
    Placement.Validate.map ~program ~weights overlapping
  in
  Alcotest.(check bool) "overlap caught" true (has_error ds);
  check_stage "stage" "address-map" (List.hd (Ir.Diag.errors ds));
  (* Size corruption: the map lies about a block's instruction count. *)
  let block_words = copy2 m.Placement.Address_map.block_words in
  block_words.(fid).(0) <- block_words.(fid).(0) + 1;
  let resized = { m with Placement.Address_map.block_words } in
  Alcotest.(check bool) "size lie caught" true
    (has_error (Placement.Validate.map ~program ~weights resized));
  (* Claim violation: strategy says entry-first but the entry moved. *)
  let block_addr = copy2 m.Placement.Address_map.block_addr in
  let entry_addr = block_addr.(fid).(0) in
  let swap_fid, swap_l =
    (* find some other block to swap the entry with *)
    let found = ref None in
    Array.iteri
      (fun g addrs ->
        Array.iteri
          (fun l a ->
            if !found = None && a <> entry_addr then found := Some (g, l))
          addrs)
      block_addr;
    Option.get !found
  in
  block_addr.(fid).(0) <- block_addr.(swap_fid).(swap_l);
  block_addr.(swap_fid).(swap_l) <- entry_addr;
  let moved = { m with Placement.Address_map.block_addr } in
  let ds =
    Placement.Validate.map ~strategy:Placement.Strategy.impact ~program
      ~weights moved
  in
  Alcotest.(check bool) "entry-first claim checked" true (has_error ds)

(* ---------------- descriptive Ivec bounds errors ---------------- *)

let ivec_bounds () =
  let v = Sim.Ivec.create () in
  Sim.Ivec.push v 7;
  Alcotest.check_raises "get"
    (Invalid_argument "Ivec.get: index 3 outside [0,1)") (fun () ->
      ignore (Sim.Ivec.get v 3));
  Alcotest.check_raises "blit"
    (Invalid_argument
       "Ivec.blit: source range [0,5) outside source length 1") (fun () ->
      Sim.Ivec.blit ~src:v ~src_pos:0 ~dst:(Sim.Ivec.create ()) ~dst_pos:0
        ~len:5)

(* ---------------- fuzzer catches an injected bad permutation -------- *)

(* A deliberately broken strategy: the layout repeats the first block
   and drops the last, so it is not a permutation and its address map
   cannot be a bijection of the code bytes. *)
let bad_permutation_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "bad-perm";
    title = "duplicates the entry block (deliberately broken)";
    layout =
      (fun f _ ->
        let nat = Placement.Func_layout.natural f in
        let order = Array.copy nat.Placement.Func_layout.order in
        let n = Array.length order in
        if n > 1 then order.(n - 1) <- order.(0);
        { nat with Placement.Func_layout.order });
  }

let fuzz_catches_bad_permutation () =
  let strategies = [ Placement.Strategy.natural; bad_permutation_strategy ] in
  match Experiments.Fuzz.run_seed ~size:60 ~strategies 42 with
  | None -> Alcotest.fail "broken strategy not caught by the fuzzer"
  | Some f ->
    Alcotest.(check int) "failure carries the seed" 42
      f.Experiments.Fuzz.seed;
    Alcotest.(check bool) "violations recorded" true
      (has_error f.Experiments.Fuzz.diags);
    Alcotest.(check bool) "shrunk reproducer still fails" true
      (has_error f.Experiments.Fuzz.shrunk_diags);
    Alcotest.(check bool) "shrunk is no larger" true
      (List.length f.Experiments.Fuzz.shrunk.Ir.Ast.funcs
      <= List.length (Ir.Gen.generate ~size:60 42).Ir.Ast.funcs);
    let report = Fmt.str "%a" Experiments.Fuzz.report_failure f in
    let contains s sub =
      let len = String.length s and l = String.length sub in
      let rec go i = i + l <= len && (String.sub s i l = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "report names the seed" true
      (contains report "seed 42")

let fuzz_smoke () =
  Alcotest.(check int) "10 seeds, all strategies, no violations" 0
    (List.length (Experiments.Fuzz.run ~size:60 ~first_seed:1 ~count:10 ()))

(* ---------------- graceful strategy degradation ---------------- *)

let raising_strategy =
  {
    Placement.Strategy.natural with
    Placement.Strategy.id = "explosive";
    title = "always raises (deliberately broken)";
    layout = (fun _ _ -> failwith "boom");
  }

let degradation () =
  let ctx = Experiments.Context.create ~names:[ "cmp" ] () in
  let e = Experiments.Context.find ctx "cmp" in
  let map = Experiments.Context.strategy_map e raising_strategy in
  Alcotest.(check bool) "fell back" true
    (Experiments.Context.fell_back e "explosive");
  Alcotest.(check bool) "natural map substituted" true
    (map == Experiments.Context.natural_map e);
  Alcotest.(check int) "one warning recorded" 1
    (List.length (Experiments.Context.warnings e));
  let d = List.hd (Experiments.Context.warnings e) in
  Alcotest.(check string) "warning severity" "warning"
    (Ir.Diag.severity_name d.Ir.Diag.severity);
  check_stage "warning stage" "strategy" d;
  (* The sweep completes with the substitution marked in the table row
     (memoization means no duplicate warning). *)
  match Experiments.Strategy_exp.compute ~strategies:[ raising_strategy ] ctx with
  | [ row ] ->
    Alcotest.(check string) "row marks the fallback"
      "explosive (fallback: natural)" row.Experiments.Strategy_exp.strategy;
    Alcotest.(check int) "still one warning" 1
      (List.length (Experiments.Context.warnings e))
  | rows ->
    Alcotest.failf "expected 1 row, got %d" (List.length rows)

let suite =
  [
    Alcotest.test_case "duplicate function names" `Quick
      duplicate_function_names;
    Alcotest.test_case "dangling branch target" `Quick dangling_branch_target;
    Alcotest.test_case "entry out of range" `Quick entry_out_of_range;
    Alcotest.test_case "zero-weight entry block" `Quick
      zero_weight_entry_block;
    Alcotest.test_case "corrupted address map" `Quick corrupted_address_map;
    Alcotest.test_case "descriptive Ivec bounds" `Quick ivec_bounds;
    Alcotest.test_case "fuzzer catches bad permutation" `Slow
      fuzz_catches_bad_permutation;
    Alcotest.test_case "fuzz smoke" `Slow fuzz_smoke;
    Alcotest.test_case "strategy degradation" `Slow degradation;
  ]
