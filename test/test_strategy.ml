(* Layout-strategy layer tests: registry sanity, the ext-TSP and C3
   algorithms on hand-built weights, validity of every registered
   strategy's address map on every benchmark, and golden assertions that
   the refactored impact/natural/ph paths reproduce the pre-refactor
   maps byte for byte. *)

open Helpers

let registry_sane () =
  let ids = Placement.Strategy.ids () in
  Alcotest.(check int) "five strategies" 5 (List.length ids);
  Alcotest.(check bool) "ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  List.iter
    (fun s ->
      Alcotest.(check string)
        ("find roundtrips " ^ s.Placement.Strategy.id)
        s.Placement.Strategy.id
        (Placement.Strategy.find s.Placement.Strategy.id).Placement.Strategy.id)
    Placement.Strategy.all;
  Alcotest.check_raises "unknown strategy"
    (Placement.Strategy.Unknown_strategy "bogus") (fun () ->
      ignore (Placement.Strategy.find "bogus"));
  (* The experiment registry accepts the strategy-comparison alias. *)
  Alcotest.(check string) "runner alias" "17"
    (Experiments.Runner.find "strategy-comparison").Experiments.Runner.id

let exttsp_intra () =
  let w = diamond_weights () in
  let lay = Placement.Exttsp.layout diamond_loop_func w in
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6);
  Alcotest.(check int) "entry first" 0 lay.Placement.Func_layout.order.(0);
  Alcotest.(check int) "all active" 6 lay.Placement.Func_layout.active_blocks;
  (* The heaviest arc (4->1, weight 100) must be realized as a
     fall-through, and the hot loop body {1,2,4} must stay contiguous. *)
  let pos = Array.make 6 0 in
  Array.iteri (fun idx l -> pos.(l) <- idx) lay.Placement.Func_layout.order;
  Alcotest.(check int) "4 falls through to 1" (pos.(4) + 1) pos.(1);
  let hot = List.sort compare [ pos.(1); pos.(2); pos.(4) ] in
  (match hot with
  | [ a; b; c ] ->
    Alcotest.(check int) "hot loop contiguous (span)" 2 (c - a);
    Alcotest.(check int) "hot loop contiguous (middle)" (a + 1) b
  | _ -> assert false)

let exttsp_dead_blocks_sink () =
  (* Blocks 3 and 5 never execute: they sink below the active split. *)
  let w =
    Placement.Weight.cfg_of_lists ~func_weight:1
      ~blocks:[ (0, 1); (1, 101); (2, 100); (4, 100) ]
      ~arcs:[ (0, 1, 1); (1, 2, 100); (2, 4, 100); (4, 1, 100) ]
  in
  let lay = Placement.Exttsp.layout diamond_loop_func w in
  Alcotest.(check bool) "permutation" true
    (Placement.Func_layout.is_permutation lay 6);
  Alcotest.(check int) "four active blocks" 4
    lay.Placement.Func_layout.active_blocks;
  let pos = Array.make 6 0 in
  Array.iteri (fun idx l -> pos.(l) <- idx) lay.Placement.Func_layout.order;
  Alcotest.(check bool) "block 3 in the cold tail" true (pos.(3) >= 4);
  Alcotest.(check bool) "block 5 in the cold tail" true (pos.(5) >= 4);
  (* Zero-weight function: empty active region. *)
  let z =
    Placement.Exttsp.layout diamond_loop_func
      (Placement.Weight.cfg_of_lists ~func_weight:0 ~blocks:[] ~arcs:[])
  in
  Alcotest.(check int) "unexecuted inactive" 0
    z.Placement.Func_layout.active_blocks

let c3_weights ~size ~entries =
  (* main(0) calls a(1) 90x and b(2) 10x; a calls c(3) 50x; d(4) cold. *)
  {
    Placement.Weight.pair =
      (fun caller callee ->
        match (caller, callee) with
        | 0, 1 -> 90
        | 0, 2 -> 10
        | 1, 3 -> 50
        | _ -> 0);
    callees = (function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | _ -> []);
    entries;
    size = (fun _ -> size);
  }

let c3_global () =
  let w = c3_weights ~size:16 ~entries:(fun fid -> if fid = 4 then 0 else 1) in
  let g = Placement.C3_layout.global 5 ~entry:0 w in
  Alcotest.(check bool) "permutation" true
    (Placement.Global_layout.is_permutation g 5);
  (* Greedy by proximity gain: (0,1) w90 first, then (1,3) w50 joins the
     entry cluster, then (0,2) w10; cold d(4) sinks last. *)
  Alcotest.(check (list int)) "call-chain order" [ 0; 1; 3; 2; 4 ]
    (Array.to_list g.Placement.Global_layout.order)

let c3_cluster_cap () =
  (* Functions bigger than the cluster cap never merge: the layout
     degenerates to entry first, then density order, cold last. *)
  let entries = function 0 -> 1 | 1 -> 5 | 2 -> 10 | 3 -> 50 | _ -> 0 in
  let w = c3_weights ~size:10_000 ~entries in
  let g = Placement.C3_layout.global 5 ~entry:0 w in
  Alcotest.(check bool) "permutation" true
    (Placement.Global_layout.is_permutation g 5);
  Alcotest.(check (list int)) "density order under cap" [ 0; 3; 2; 1; 4 ]
    (Array.to_list g.Placement.Global_layout.order)

(* ------------------------------------------------------------------ *)
(* Whole-benchmark validity and golden equivalence                     *)
(* ------------------------------------------------------------------ *)

let check_same_map label (a : Placement.Address_map.t)
    (b : Placement.Address_map.t) =
  Alcotest.(check int)
    (label ^ ": total bytes")
    a.Placement.Address_map.total_bytes b.Placement.Address_map.total_bytes;
  Alcotest.(check int)
    (label ^ ": effective bytes")
    a.Placement.Address_map.effective_bytes
    b.Placement.Address_map.effective_bytes;
  Alcotest.(check bool)
    (label ^ ": block addresses byte-identical")
    true
    (a.Placement.Address_map.block_addr = b.Placement.Address_map.block_addr)

(* Build a strategy's map through the generic path (per-function layout
   + global order + Address_map.build), bypassing Pipeline.map_for's
   reuse of the pipeline's stored impact/natural maps. *)
let generic_map (p : Placement.Pipeline.t) (s : Placement.Strategy.t) =
  let program = p.Placement.Pipeline.program in
  let profile = p.Placement.Pipeline.profile in
  let layouts =
    Array.mapi
      (fun fid f ->
        s.Placement.Strategy.layout f
          (Placement.Weight.cfg_of_profile profile fid))
      program.Ir.Prog.funcs
  in
  let order =
    s.Placement.Strategy.global
      (Array.length program.Ir.Prog.funcs)
      ~entry:program.Ir.Prog.entry
      (Placement.Weight.call_of_profile profile)
  in
  Placement.Address_map.build program ~layouts ~order

(* Pre-refactor Pettis-Hansen map construction, exactly as the old
   Experiments.Context.ph_map built it. *)
let pre_refactor_ph_map (p : Placement.Pipeline.t) =
  let program = p.Placement.Pipeline.program in
  let layouts =
    Array.mapi
      (fun fid f ->
        Placement.Ph_layout.layout f
          (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid))
      program.Ir.Prog.funcs
  in
  let order =
    Placement.Ph_layout.global
      (Array.length program.Ir.Prog.funcs)
      ~entry:program.Ir.Prog.entry
      (Placement.Weight.call_of_profile p.Placement.Pipeline.profile)
  in
  Placement.Address_map.build program ~layouts ~order

let check_benchmark name =
  let b = Workloads.Registry.find name in
  let p =
    Placement.Pipeline.run (Workloads.Bench.program b)
      ~inputs:(Workloads.Bench.profile_inputs b)
  in
  let program = p.Placement.Pipeline.program in
  let entry_fid = program.Ir.Prog.entry in
  List.iter
    (fun s ->
      let label = name ^ "/" ^ s.Placement.Strategy.id in
      let map = Placement.Pipeline.map_for p s in
      (* Each block mapped exactly once onto disjoint ranges covering
         the whole program. *)
      Alcotest.(check bool) (label ^ ": disjoint") true
        (Placement.Address_map.is_disjoint map);
      Alcotest.(check int)
        (label ^ ": covers program")
        (Ir.Prog.total_byte_size program)
        map.Placement.Address_map.total_bytes;
      (* Entry function leads the layout where the strategy claims it. *)
      if s.Placement.Strategy.entry_first then
        Alcotest.(check int)
          (label ^ ": entry block placed first")
          Placement.Address_map.code_base
          map.Placement.Address_map.block_addr.(entry_fid).(0);
      (* Never-executed blocks land after the packed effective region
         where the strategy claims the split. *)
      if s.Placement.Strategy.splits_dead_code then begin
        let boundary =
          Placement.Address_map.code_base
          + map.Placement.Address_map.effective_bytes
        in
        Array.iteri
          (fun fid f ->
            let w =
              Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid
            in
            Array.iteri
              (fun l _ ->
                if w.Placement.Weight.func_weight = 0 || w.Placement.Weight.block l = 0
                then
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: dead block %d.%d after effective region"
                       label fid l)
                    true
                    (map.Placement.Address_map.block_addr.(fid).(l) >= boundary))
              f.Ir.Prog.blocks)
          program.Ir.Prog.funcs
      end)
    Placement.Strategy.all;
  (* Goldens: the registry strategies reproduce the pre-refactor maps
     byte for byte. *)
  check_same_map (name ^ "/impact golden")
    (generic_map p Placement.Strategy.impact)
    p.Placement.Pipeline.optimized;
  check_same_map (name ^ "/natural golden")
    (generic_map p Placement.Strategy.natural)
    (Placement.Address_map.natural program);
  check_same_map (name ^ "/ph golden")
    (Placement.Pipeline.map_for p Placement.Strategy.ph)
    (pre_refactor_ph_map p)

let all_benchmarks_valid () =
  List.iter
    (fun b -> check_benchmark b.Workloads.Bench.name)
    Workloads.Registry.all

let strategy_rows_complete () =
  (* The comparison experiment yields one row per benchmark x strategy. *)
  let names = [ "tee"; "cmp" ] in
  let ctx = Experiments.Context.create ~names () in
  let rows = Experiments.Strategy_exp.compute ctx in
  Alcotest.(check int) "rows = benches x strategies"
    (List.length names * List.length Placement.Strategy.all)
    (List.length rows);
  (* The natural strategy can never beat every optimizer everywhere;
     sanity-check the rows carry real, distinct data. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "miss ratio in range" true
        (r.Experiments.Strategy_exp.miss >= 0.
        && r.Experiments.Strategy_exp.miss <= 1.))
    rows

let context_memoizes_strategies () =
  let ctx = Experiments.Context.create ~names:[ "tee" ] () in
  let e = List.hd (Experiments.Context.entries ctx) in
  let m1 = Experiments.Context.strategy_map e Placement.Strategy.exttsp in
  let m2 = Experiments.Context.strategy_map e Placement.Strategy.exttsp in
  Alcotest.(check bool) "strategy map built once" true (m1 == m2);
  Alcotest.(check bool) "impact map is the pipeline's" true
    (Experiments.Context.strategy_map e Placement.Strategy.impact
    == Experiments.Context.optimized_map e);
  (* Simulation results come out of the hashtable cache on re-query. *)
  let config = Icache.Config.make ~size:2048 ~block:64 () in
  let t = Experiments.Context.trace e in
  let r1 = Experiments.Context.simulate e config m1 t in
  let r2 = Experiments.Context.simulate e config m1 t in
  Alcotest.(check bool) "simulation cached" true (r1 == r2)

let suite =
  [
    Alcotest.test_case "registry sane" `Quick registry_sane;
    Alcotest.test_case "exttsp intra" `Quick exttsp_intra;
    Alcotest.test_case "exttsp dead blocks sink" `Quick exttsp_dead_blocks_sink;
    Alcotest.test_case "c3 global" `Quick c3_global;
    Alcotest.test_case "c3 cluster cap" `Quick c3_cluster_cap;
    Alcotest.test_case "context memoizes strategies" `Quick
      context_memoizes_strategies;
    Alcotest.test_case "strategy rows complete" `Quick strategy_rows_complete;
    Alcotest.test_case "all strategies valid on all benchmarks" `Slow
      all_benchmarks_valid;
  ]
