(* Lowering tests: every control construct is compiled to a CFG whose
   execution matches C semantics, and the structural invariants hold. *)

open Ir.Ast.Dsl
open Helpers

let check_ret name expected body =
  Alcotest.(check int) name expected (ret_of (main_prog body))

let arithmetic () =
  check_ret "arith" 17 [ ret ((i 3 *% i 5) +% (i 10 /% i 5)) ];
  check_ret "precedence is explicit" 16 [ ret ((i 3 +% i 5) *% i 2) ];
  check_ret "neg" (-7) [ ret (neg (i 7)) ];
  check_ret "not0" 1 [ ret (not_ (i 0)) ];
  check_ret "not5" 0 [ ret (not_ (i 5)) ]

let if_else () =
  check_ret "then" 1 [ if_ (i 3 <% i 5) [ ret (i 1) ] [ ret (i 2) ] ];
  check_ret "else" 2 [ if_ (i 5 <% i 3) [ ret (i 1) ] [ ret (i 2) ] ];
  check_ret "no else, fallthrough" 9
    [ decl "x" (i 9); when_ (i 0) [ set "x" (i 1) ]; ret (v "x") ];
  check_ret "nested" 4
    [
      decl "x" (i 2);
      if_ (v "x" ==% i 2)
        [ if_ (v "x" >% i 1) [ ret (i 4) ] [ ret (i 3) ] ]
        [ ret (i 5) ];
    ]

let loops () =
  check_ret "while sum" 45
    [
      decl "s" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% i 10) [ set "s" (v "s" +% v "k"); incr_ "k" ];
      ret (v "s");
    ];
  check_ret "while never entered" 0
    [ decl "s" (i 0); while_ (i 0) [ set "s" (i 99) ]; ret (v "s") ];
  check_ret "do_while runs once" 99
    [ decl "s" (i 0); do_while [ set "s" (i 99) ] (i 0); ret (v "s") ];
  check_ret "for" 285
    [
      decl "s" (i 0);
      for_
        [ decl "k" (i 0) ]
        (v "k" <% i 10)
        [ incr_ "k" ]
        [ set "s" (v "s" +% (v "k" *% v "k")) ];
      ret (v "s");
    ];
  check_ret "break" 5
    [
      decl "k" (i 0);
      while_ (i 1) [ when_ (v "k" ==% i 5) [ break_ ]; incr_ "k" ];
      ret (v "k");
    ];
  check_ret "continue skips evens" 25
    [
      decl "s" (i 0);
      for_
        [ decl "k" (i 0) ]
        (v "k" <% i 10)
        [ incr_ "k" ]
        [ when_ ((v "k" %% i 2) ==% i 0) [ continue_ ]; set "s" (v "s" +% v "k") ];
      ret (v "s");
    ];
  check_ret "nested break hits inner loop" 30
    [
      decl "s" (i 0);
      for_
        [ decl "a" (i 0) ]
        (v "a" <% i 3)
        [ incr_ "a" ]
        [
          for_
            [ decl "b" (i 0) ]
            (i 1)
            [ incr_ "b" ]
            [ when_ (v "b" ==% i 5) [ break_ ]; set "s" (v "s" +% v "b") ];
        ];
      ret (v "s");
    ]

let short_circuit () =
  (* The right operand must not be evaluated: make it a trap. *)
  let trap = ld8 (i 0) in (* null deref *)
  check_ret "and shortcut" 0 [ ret ((i 0) &&% trap) ];
  check_ret "or shortcut" 1 [ ret ((i 1) ||% trap) ];
  check_ret "and both" 1 [ ret ((i 2) &&% (i 3)) ];
  check_ret "and normalizes" 1 [ ret ((i 7) &&% (i 9)) ];
  check_ret "or second" 1 [ ret ((i 0) ||% (i 4)) ];
  check_ret "or both zero" 0 [ ret ((i 0) ||% (i 0)) ];
  check_ret "ternary true" 10 [ ret (Ir.Ast.Cond (i 1, i 10, i 20)) ];
  check_ret "ternary false" 20 [ ret (Ir.Ast.Cond (i 0, i 10, i 20)) ]

let switch_semantics () =
  let prog value =
    main_prog
      [
        decl "r" (i 0);
        switch (i value)
          [
            ([ 1 ], [ set "r" (i 100); break_ ]);
            ([ 2; 3 ], [ set "r" (i 200); break_ ]);
            ([ 4 ], [ set "r" (v "r" +% i 1) ]); (* falls through to default *)
          ]
          [ set "r" (v "r" +% i 1000) ];
        ret (v "r");
      ]
  in
  Alcotest.(check int) "case 1" 100 (ret_of (prog 1));
  Alcotest.(check int) "case 2" 200 (ret_of (prog 2));
  Alcotest.(check int) "case 3 shares arm" 200 (ret_of (prog 3));
  Alcotest.(check int) "case 4 falls through" 1001 (ret_of (prog 4));
  Alcotest.(check int) "default" 1000 (ret_of (prog 77))

let calls_and_recursion () =
  Alcotest.(check int) "loop of calls" 90 (ret_of caller_prog);
  let fib =
    {
      Ir.Ast.globals = [];
      funcs =
        [
          func "fib" [ "n" ]
            [
              when_ (v "n" <% i 2) [ ret (v "n") ];
              ret (call "fib" [ v "n" -% i 1 ] +% call "fib" [ v "n" -% i 2 ]);
            ];
          func "main" [] [ ret (call "fib" [ i 15 ]) ];
        ];
      entry = "main";
    }
  in
  Alcotest.(check int) "fib 15" 610 (ret_of fib);
  let g =
    { Ir.Ast.globals = []; funcs = [ gcd_func; func "main" []
        [ ret (call "gcd" [ i 1071; i 462 ]) ] ]; entry = "main" }
  in
  Alcotest.(check int) "gcd" 21 (ret_of g)

let globals_and_memory () =
  let prog =
    {
      Ir.Ast.globals =
        [
          ("word_tbl", Ir.Ast.Gwords [| 11; 22; 33 |]);
          ("msg", Ir.Ast.Gstring "hi");
          ("buf", Ir.Ast.Gzero 16);
        ];
      funcs =
        [
          func "main" []
            [
              st32 (g "buf") (ld32 (g "word_tbl" +% i 4));
              st8 (g "buf" +% i 4) (ld8 (g "msg" +% i 1));
              ret (ld32 (g "buf") +% ld8 (g "buf" +% i 4));
            ];
        ];
      entry = "main";
    }
  in
  Alcotest.(check int) "global round trip" (22 + Char.code 'i') (ret_of prog)

let scoping () =
  check_ret "shadowing in branches" 5
    [
      decl "x" (i 5);
      when_ (i 1) [ decl "x" (i 9); set "x" (v "x" +% i 1) ];
      ret (v "x");
    ];
  (* Unbound variables are a structured lowering diagnostic carrying the
     function and block of the offending expression. *)
  match Ir.Lower.program (main_prog [ ret (v "y") ]) with
  | _ -> Alcotest.fail "unbound variable lowered without a diagnostic"
  | exception Ir.Diag.Fail d ->
    Alcotest.(check string) "stage" "lower" (Ir.Diag.stage_name d.Ir.Diag.stage);
    Alcotest.(check (option string)) "function" (Some "main") d.Ir.Diag.func;
    Alcotest.(check bool) "has block context" true (d.Ir.Diag.block <> None);
    Alcotest.(check string) "message" "unbound variable y" d.Ir.Diag.message

let structure () =
  let p = Ir.Lower.program caller_prog in
  Ir.Check.program p;
  (* Dead code after return becomes real unreachable blocks. *)
  let dead =
    Ir.Lower.program
      (main_prog [ ret (i 1); decl "x" (i 2); set "x" (v "x"); ret (v "x") ])
  in
  Ir.Check.program dead;
  let f = dead.Ir.Prog.funcs.(dead.Ir.Prog.entry) in
  Alcotest.(check bool) "has unreachable blocks"
    true
    (Array.length f.Ir.Prog.blocks > 1)

let prologue_size_model () =
  let p = Ir.Lower.program caller_prog in
  let f = Ir.Prog.func_by_name p "twice" in
  let entry = f.Ir.Prog.blocks.(0) in
  let base = Array.length entry.Ir.Cfg.insns + 1 in
  Alcotest.(check bool) "entry block carries prologue+epilogue padding" true
    (Ir.Cfg.instr_count entry > base)

let code_scaling () =
  let p = Ir.Lower.program caller_prog in
  let half = Ir.Prog.scale_code 0.5 p in
  let double = Ir.Prog.scale_code 2.0 p in
  Alcotest.(check bool) "scaling shrinks" true
    (Ir.Prog.total_byte_size half < Ir.Prog.total_byte_size p);
  Alcotest.(check int) "scaling by 2 doubles sizes (block granularity)"
    (2 * Ir.Prog.total_instr_count p)
    (Ir.Prog.total_instr_count double);
  (* Semantics unchanged. *)
  let r = Vm.Interp.run half (Vm.Io.input []) in
  Alcotest.(check int) "half-scaled still computes" 90 r.Vm.Interp.return_value;
  (* Every block retains at least one instruction slot. *)
  Ir.Prog.iter_blocks
    (fun _ _ _ b ->
      Alcotest.(check bool) "block size >= 1" true (Ir.Cfg.instr_count b >= 1))
    (Ir.Prog.scale_code 0.01 p)

(* Every lowering failure must be a structured [Diag.Fail] with stage
   [lower] and the function context, never a bare exception. *)
let lowering_diagnostics () =
  let expect_lower name body =
    match Ir.Lower.program (main_prog body) with
    | _ -> Alcotest.failf "%s: lowered without a diagnostic" name
    | exception Ir.Diag.Fail d ->
      Alcotest.(check string) (name ^ " stage") "lower"
        (Ir.Diag.stage_name d.Ir.Diag.stage);
      Alcotest.(check (option string))
        (name ^ " function") (Some "main") d.Ir.Diag.func
  in
  expect_lower "break outside loop" [ break_; ret (i 0) ];
  expect_lower "continue outside loop" [ continue_; ret (i 0) ];
  expect_lower "unknown global" [ ret (ld32 (g "nope")) ];
  (* Duplicate globals are caught before any function body lowers. *)
  match
    Ir.Lower.program
      {
        Ir.Ast.globals = [ ("twice", Ir.Ast.Gzero 4); ("twice", Ir.Ast.Gzero 4) ];
        funcs = [ func "main" [] [ ret (i 0) ] ];
        entry = "main";
      }
  with
  | _ -> Alcotest.fail "duplicate global lowered without a diagnostic"
  | exception Ir.Diag.Fail d ->
    Alcotest.(check string) "duplicate global stage" "lower"
      (Ir.Diag.stage_name d.Ir.Diag.stage)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick arithmetic;
    Alcotest.test_case "if/else" `Quick if_else;
    Alcotest.test_case "loops, break, continue" `Quick loops;
    Alcotest.test_case "short-circuit and ternary" `Quick short_circuit;
    Alcotest.test_case "switch with fall-through" `Quick switch_semantics;
    Alcotest.test_case "calls and recursion" `Quick calls_and_recursion;
    Alcotest.test_case "globals and memory" `Quick globals_and_memory;
    Alcotest.test_case "scoping" `Quick scoping;
    Alcotest.test_case "lowering diagnostics" `Quick lowering_diagnostics;
    Alcotest.test_case "structure and dead code" `Quick structure;
    Alcotest.test_case "prologue size model" `Quick prologue_size_model;
    Alcotest.test_case "code scaling" `Quick code_scaling;
  ]
