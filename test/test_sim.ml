(* Simulation-layer tests: trace capture/replay, the driver's metrics, and
   Table 4 classification. *)

open Helpers

let pack_unpack () =
  let code = Sim.Trace_gen.pack 7 123456 in
  Alcotest.(check int) "fid" 7 (Sim.Trace_gen.unpack_fid code);
  Alcotest.(check int) "label" 123456 (Sim.Trace_gen.unpack_label code)

let record_consistency () =
  let p = Ir.Lower.program caller_prog in
  let trace = Sim.Trace_gen.record p (Vm.Io.input []) in
  Alcotest.(check int) "blocks recorded = blocks executed"
    trace.Sim.Trace_gen.result.Vm.Interp.dyn_blocks
    (Sim.Trace_gen.dyn_blocks trace);
  (* Fetch expansion under the natural map equals the interpreter's count. *)
  let map = Placement.Address_map.natural p in
  Alcotest.(check int) "dyn_insns match"
    trace.Sim.Trace_gen.result.Vm.Interp.dyn_insns
    (Sim.Trace_gen.dyn_insns map trace);
  let count = ref 0 in
  Sim.Trace_gen.iter_fetches map trace ~fetch:(fun _ -> incr count);
  Alcotest.(check int) "iter_fetches count" (Sim.Trace_gen.dyn_insns map trace)
    !count;
  (* All fetches land inside the program image. *)
  Sim.Trace_gen.iter_fetches map trace ~fetch:(fun a ->
      if a < 0 || a >= map.Placement.Address_map.total_bytes then
        Alcotest.failf "fetch address %d out of range" a)

let driver_metrics () =
  let p = Ir.Lower.program caller_prog in
  let trace = Sim.Trace_gen.record p (Vm.Io.input []) in
  let map = Placement.Address_map.natural p in
  (* A cache big enough for everything: only compulsory misses. *)
  let big = Icache.Config.make ~size:65536 ~block:64 () in
  let r = Sim.Driver.simulate big map (Sim.Trace.of_gen trace) in
  Alcotest.(check int) "accesses = dyn insns"
    (Sim.Trace_gen.dyn_insns map trace)
    r.Sim.Driver.accesses;
  let blocks_touched =
    (map.Placement.Address_map.total_bytes + 63) / 64
  in
  Alcotest.(check bool) "compulsory misses only" true
    (r.Sim.Driver.misses <= blocks_touched);
  Alcotest.(check bool) "traffic = 16 words per miss" true
    (r.Sim.Driver.words_fetched = 16 * r.Sim.Driver.misses);
  Alcotest.(check bool) "avg exec positive" true (r.Sim.Driver.avg_exec_insns > 0.);
  (* Effective access time ordering: blocking >= streaming >= 1. *)
  Alcotest.(check bool) "blocking slowest" true
    (r.Sim.Driver.eat_blocking >= r.Sim.Driver.eat_streaming);
  Alcotest.(check bool) "eat >= hit time" true (r.Sim.Driver.eat_streaming >= 1.)

let classification () =
  (* Force one trace per block (min_prob > 1 forbids all growth): then no
     transfer is ever "desirable", and every arc goes tail->head, i.e.
     everything is neutral. *)
  let b = Workloads.Registry.find "wc" in
  let p = Workloads.Bench.program b in
  let input = Vm.Io.input [ "a b\nc\n" ] in
  let prof = Vm.Profile.profile p [ input ] in
  let singleton_sel =
    Array.mapi
      (fun fid f ->
        Placement.Trace_select.select ~min_prob:1.5 f
          (Placement.Weight.cfg_of_profile prof fid))
      p.Ir.Prog.funcs
  in
  let counts = Sim.Classify.run p singleton_sel input in
  Alcotest.(check int) "no desirable with singleton traces" 0
    counts.Sim.Classify.desirable;
  Alcotest.(check int) "no undesirable with singleton traces" 0
    counts.Sim.Classify.undesirable;
  Alcotest.(check bool) "all neutral" true (counts.Sim.Classify.neutral > 0);
  (* With real trace selection most transfers should be desirable. *)
  let sel =
    Array.mapi
      (fun fid f ->
        Placement.Trace_select.select f
          (Placement.Weight.cfg_of_profile prof fid))
      p.Ir.Prog.funcs
  in
  let c2 = Sim.Classify.run p sel input in
  Alcotest.(check bool) "desirable dominates undesirable" true
    (c2.Sim.Classify.desirable > c2.Sim.Classify.undesirable);
  Alcotest.(check int) "same total transfers"
    (Sim.Classify.total counts) (Sim.Classify.total c2)

let timing_model () =
  let model = { Icache.Timing.hit_cycles = 1; mem_latency = 10 } in
  (* Blocking: always latency + whole block. *)
  Alcotest.(check int) "blocking" 26
    (Icache.Timing.miss_stall model Icache.Timing.Blocking ~words_per_block:16
       ~word_in_block:3 ~run_words:5 ~fetched_words:16);
  (* Streaming: wait for words before the miss; leaving early pays the
     remaining fill. *)
  let s =
    Icache.Timing.miss_stall model Icache.Timing.Streaming ~words_per_block:16
      ~word_in_block:0 ~run_words:16 ~fetched_words:16
  in
  Alcotest.(check int) "streaming straight-line run" 10 s;
  let s2 =
    Icache.Timing.miss_stall model Icache.Timing.Streaming ~words_per_block:16
      ~word_in_block:8 ~run_words:0 ~fetched_words:16
  in
  (* miss at word 8, immediate branch: initial 18, tail = 26-18 = ... *)
  Alcotest.(check bool) "early branch pays the tail" true (s2 > 18 - 1);
  (* Partial: fill starts at the miss, minimal initial wait. *)
  let p =
    Icache.Timing.miss_stall model Icache.Timing.Streaming_partial
      ~words_per_block:16 ~word_in_block:8 ~run_words:8 ~fetched_words:8
  in
  Alcotest.(check int) "partial straight-line" 10 p

let estimator () =
  (* A program that fits in the cache has zero estimated conflicts, and
     its compulsory count equals its executed memory blocks. *)
  let p = Ir.Lower.program caller_prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input [] ] in
  let map = Placement.Address_map.natural p in
  let big = Icache.Config.make ~size:65536 ~block:64 () in
  let est =
    Sim.Estimate.estimate big map
      ~block_weight:(Vm.Profile.block_weight prof)
      ~func_entries:(Vm.Profile.func_weight prof)
  in
  Alcotest.(check int) "no conflicts in a big cache" 0 est.Sim.Estimate.conflict;
  Alcotest.(check bool) "compulsory positive" true
    (est.Sim.Estimate.compulsory > 0);
  Alcotest.(check bool) "ratio sane" true
    (est.Sim.Estimate.est_miss_ratio >= 0.
    && est.Sim.Estimate.est_miss_ratio <= 1.);
  (* profile_fetches equals the profile's dynamic instruction count *)
  Alcotest.(check int) "fetches match profile" prof.Vm.Profile.dyn_insns
    est.Sim.Estimate.profile_fetches;
  (* A pathologically small cache must estimate conflicts for a two-hot-
     region program. *)
  let tiny = Icache.Config.make ~size:64 ~block:64 () in
  let est2 =
    Sim.Estimate.estimate tiny map
      ~block_weight:(Vm.Profile.block_weight prof)
      ~func_entries:(Vm.Profile.func_weight prof)
  in
  Alcotest.(check bool) "conflicts in a tiny cache" true
    (est2.Sim.Estimate.conflict > 0)

let suite =
  [
    Alcotest.test_case "pack/unpack" `Quick pack_unpack;
    Alcotest.test_case "analytical estimator" `Quick estimator;
    Alcotest.test_case "record consistency" `Quick record_consistency;
    Alcotest.test_case "driver metrics" `Quick driver_metrics;
    Alcotest.test_case "classification" `Quick classification;
    Alcotest.test_case "timing model" `Quick timing_model;
  ]
