examples/layout_comparison.ml: Array Icache Ir List Placement Printf Report Sim Sys Vm Workloads
