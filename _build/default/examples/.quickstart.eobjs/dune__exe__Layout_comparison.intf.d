examples/layout_comparison.mli:
