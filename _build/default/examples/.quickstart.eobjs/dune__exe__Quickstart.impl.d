examples/quickstart.ml: Array Icache Ir Placement Printf Report Sim Vm Workloads
