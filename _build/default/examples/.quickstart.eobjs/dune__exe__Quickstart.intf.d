examples/quickstart.mli:
