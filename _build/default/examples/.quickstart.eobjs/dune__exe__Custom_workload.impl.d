examples/custom_workload.ml: Icache Ir List Placement Printf Report Sim String Vm Workloads
