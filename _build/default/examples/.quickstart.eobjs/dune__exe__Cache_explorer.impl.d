examples/cache_explorer.ml: Array Icache List Placement Printf Report Sim Sys Vm Workloads
