lib/ir/cfg.mli: Insn
