lib/ir/ast.ml: Array Char Insn List String
