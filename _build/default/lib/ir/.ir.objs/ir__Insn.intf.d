lib/ir/insn.mli:
