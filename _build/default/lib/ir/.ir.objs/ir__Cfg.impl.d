lib/ir/cfg.ml: Array Hashtbl Insn List Option
