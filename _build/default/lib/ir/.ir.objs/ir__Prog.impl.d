lib/ir/prog.ml: Array Bytes Cfg Float Hashtbl Insn
