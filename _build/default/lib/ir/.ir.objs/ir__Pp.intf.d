lib/ir/pp.mli: Cfg Fmt Insn Prog
