lib/ir/insn.ml: List Option
