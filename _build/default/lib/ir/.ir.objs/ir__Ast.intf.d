lib/ir/ast.mli: Insn
