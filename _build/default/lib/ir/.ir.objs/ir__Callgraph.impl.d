lib/ir/callgraph.ml: Array Cfg List Prog
