lib/ir/lower.ml: Array Ast Bytes Cfg Fmt Hashtbl Insn Int32 List Prog
