lib/ir/pp.ml: Array Cfg Fmt Insn Prog
