lib/ir/prog.mli: Bytes Cfg Hashtbl
