lib/ir/simplify.ml: Array Cfg Insn List Prog
