lib/ir/check.ml: Array Bytes Cfg Fmt Hashtbl List Prog
