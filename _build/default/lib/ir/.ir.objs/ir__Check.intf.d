lib/ir/check.mli: Prog
