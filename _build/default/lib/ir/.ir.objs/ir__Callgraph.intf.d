lib/ir/callgraph.mli: Cfg Prog
