lib/ir/lower.mli: Ast Hashtbl Prog
