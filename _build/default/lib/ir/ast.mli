(** Mini-C abstract syntax and the workload-authoring DSL.

    This is the stand-in for the IMPACT-I C front end: workloads are
    written as mini-C functions over a flat byte-addressable memory, then
    lowered by {!Lower} into the CFG form that the placement algorithm and
    the profiler consume. *)

type binop = Insn.binop

type expr =
  | Int of int
  | Var of string
  | Global of string  (** address of a global data object *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr  (** logical negation: 1 when the operand is 0 *)
  | Load8 of expr
  | Load32 of expr
  | Call of string * expr list
  | Intrin of Insn.intrinsic * expr list
  | And of expr * expr  (** short-circuit *)
  | Or of expr * expr  (** short-circuit *)
  | Cond of expr * expr * expr  (** ternary *)

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | Store8 of expr * expr  (** address, value *)
  | Store32 of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt list * expr * stmt list * stmt list
  | Switch of expr * (int list * stmt list) list * stmt list
      (** C-style switch with fall-through between cases; the final list is
          the default arm. *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

type ginit =
  | Gbytes of string  (** raw byte image (no implicit terminator) *)
  | Gstring of string  (** NUL-terminated string *)
  | Gwords of int array  (** little-endian 32-bit words *)
  | Gzero of int  (** [n] zeroed bytes *)

type func = { name : string; params : string list; body : stmt list }

type program = {
  globals : (string * ginit) list;
  funcs : func list;
  entry : string;
}

val ginit_size : ginit -> int

val stmt_lines : stmt -> int
val func_lines : func -> int

val program_lines : program -> int
(** Approximate "C lines" of the program — the Table 2 [C lines] column. *)

(** Combinators for writing workloads.  Arithmetic/comparison operators
    carry a [%] suffix ([+%], [<%], …) to avoid clashing with stdlib
    integer operators. *)
module Dsl : sig
  val i : int -> expr
  val chr : char -> expr
  val v : string -> expr
  val g : string -> expr
  val ( +% ) : expr -> expr -> expr
  val ( -% ) : expr -> expr -> expr
  val ( *% ) : expr -> expr -> expr
  val ( /% ) : expr -> expr -> expr
  val ( %% ) : expr -> expr -> expr
  val ( &% ) : expr -> expr -> expr
  val ( |% ) : expr -> expr -> expr
  val ( ^% ) : expr -> expr -> expr
  val ( <<% ) : expr -> expr -> expr
  val ( >>% ) : expr -> expr -> expr
  val ( <% ) : expr -> expr -> expr
  val ( <=% ) : expr -> expr -> expr
  val ( >% ) : expr -> expr -> expr
  val ( >=% ) : expr -> expr -> expr
  val ( ==% ) : expr -> expr -> expr
  val ( <>% ) : expr -> expr -> expr
  val ( &&% ) : expr -> expr -> expr
  val ( ||% ) : expr -> expr -> expr
  val not_ : expr -> expr
  val neg : expr -> expr
  val ld8 : expr -> expr
  val ld32 : expr -> expr
  val call : string -> expr list -> expr
  val getc : expr -> expr
  val putc : expr -> expr -> stmt
  val stream_len : expr -> expr
  val arg : int -> expr
  val alloc : expr -> expr
  val abort_ : stmt
  val decl : string -> expr -> stmt
  val set : string -> expr -> stmt
  val st8 : expr -> expr -> stmt
  val st32 : expr -> expr -> stmt
  val if_ : expr -> stmt list -> stmt list -> stmt
  val when_ : expr -> stmt list -> stmt
  val while_ : expr -> stmt list -> stmt
  val do_while : stmt list -> expr -> stmt
  val for_ : stmt list -> expr -> stmt list -> stmt list -> stmt
  val switch : expr -> (int list * stmt list) list -> stmt list -> stmt
  val break_ : stmt
  val continue_ : stmt
  val ret : expr -> stmt
  val ret0 : stmt
  val expr : expr -> stmt
  val incr_ : string -> stmt
  val decr_ : string -> stmt
  val func : string -> string list -> stmt list -> func
end
