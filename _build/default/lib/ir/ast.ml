(* Mini-C abstract syntax.  Workloads are written in this language through
   the [Dsl] combinators; [Lower] turns it into the RISC-like CFG form.

   The language is deliberately C-shaped: function-scoped integer
   variables, byte/word loads and stores against a flat data memory,
   C-style switch with fall-through, break/continue, short-circuit
   logicals.  This is the stand-in for the IMPACT-I C front end. *)

type binop = Insn.binop

type expr =
  | Int of int
  | Var of string
  | Global of string (* address of a global data object *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr (* logical negation: 1 when operand is 0 *)
  | Load8 of expr
  | Load32 of expr
  | Call of string * expr list
  | Intrin of Insn.intrinsic * expr list
  | And of expr * expr (* short-circuit *)
  | Or of expr * expr (* short-circuit *)
  | Cond of expr * expr * expr (* ternary *)

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | Store8 of expr * expr (* address, value *)
  | Store32 of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt list * expr * stmt list * stmt list (* init; cond; step *)
  | Switch of expr * (int list * stmt list) list * stmt list
      (* cases carry C fall-through semantics; last list is default *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

type ginit =
  | Gbytes of string (* raw byte image, e.g. a string (no implicit NUL) *)
  | Gstring of string (* NUL-terminated string *)
  | Gwords of int array (* little-endian 32-bit words *)
  | Gzero of int (* n zeroed bytes *)

type func = { name : string; params : string list; body : stmt list }

type program = {
  globals : (string * ginit) list;
  funcs : func list;
  entry : string;
}

let ginit_size = function
  | Gbytes s -> String.length s
  | Gstring s -> String.length s + 1
  | Gwords w -> 4 * Array.length w
  | Gzero n -> n

(* Approximate "C lines" of a program, for the Table 2 column: one line per
   statement plus brace/header lines for compound statements and function
   definitions, plus one line per global. *)
let rec stmt_lines = function
  | Decl _ | Assign _ | Store8 _ | Store32 _ | Break | Continue | Return _
  | Expr _ ->
    1
  | If (_, t, []) -> 2 + body_lines t
  | If (_, t, e) -> 4 + body_lines t + body_lines e
  | While (_, b) | Do_while (b, _) -> 2 + body_lines b
  | For (i, _, s, b) -> 2 + body_lines i + body_lines s + body_lines b
  | Switch (_, cases, default) ->
    2
    + List.fold_left (fun acc (_, b) -> acc + 1 + body_lines b) 0 cases
    + (match default with [] -> 0 | b -> 1 + body_lines b)

and body_lines stmts = List.fold_left (fun acc s -> acc + stmt_lines s) 0 stmts

let func_lines f = 2 + body_lines f.body

let program_lines p =
  List.length p.globals
  + List.fold_left (fun acc f -> acc + func_lines f) 0 p.funcs

module Dsl = struct
  (* Combinators for writing workloads.  Operators carry a [%] suffix to
     avoid clashing with stdlib arithmetic. *)

  let i n = Int n
  let chr c = Int (Char.code c)
  let v name = Var name
  let g name = Global name
  let ( +% ) a b = Bin (Insn.Add, a, b)
  let ( -% ) a b = Bin (Insn.Sub, a, b)
  let ( *% ) a b = Bin (Insn.Mul, a, b)
  let ( /% ) a b = Bin (Insn.Div, a, b)
  let ( %% ) a b = Bin (Insn.Rem, a, b)
  let ( &% ) a b = Bin (Insn.And, a, b)
  let ( |% ) a b = Bin (Insn.Or, a, b)
  let ( ^% ) a b = Bin (Insn.Xor, a, b)
  let ( <<% ) a b = Bin (Insn.Shl, a, b)
  let ( >>% ) a b = Bin (Insn.Shr, a, b)
  let ( <% ) a b = Bin (Insn.Lt, a, b)
  let ( <=% ) a b = Bin (Insn.Le, a, b)
  let ( >% ) a b = Bin (Insn.Gt, a, b)
  let ( >=% ) a b = Bin (Insn.Ge, a, b)
  let ( ==% ) a b = Bin (Insn.Eq, a, b)
  let ( <>% ) a b = Bin (Insn.Ne, a, b)
  let ( &&% ) a b = And (a, b)
  let ( ||% ) a b = Or (a, b)
  let not_ e = Not e
  let neg e = Neg e
  let ld8 a = Load8 a
  let ld32 a = Load32 a
  let call f args = Call (f, args)
  let getc s = Intrin (Insn.Getc, [ s ])
  let putc s b = Expr (Intrin (Insn.Putc, [ s; b ]))
  let stream_len s = Intrin (Insn.Stream_len, [ s ])
  let arg n = Intrin (Insn.Arg, [ Int n ])
  let alloc n = Intrin (Insn.Alloc, [ n ])
  let abort_ = Expr (Intrin (Insn.Abort, []))
  let decl name e = Decl (name, e)
  let set name e = Assign (name, e)
  let st8 addr value = Store8 (addr, value)
  let st32 addr value = Store32 (addr, value)
  let if_ c t e = If (c, t, e)
  let when_ c t = If (c, t, [])
  let while_ c b = While (c, b)
  let do_while b c = Do_while (b, c)
  let for_ init cond step body = For (init, cond, step, body)
  let switch e cases default = Switch (e, cases, default)
  let break_ = Break
  let continue_ = Continue
  let ret e = Return (Some e)
  let ret0 = Return None
  let expr e = Expr e
  let incr_ name = Assign (name, Bin (Insn.Add, Var name, Int 1))
  let decr_ name = Assign (name, Bin (Insn.Sub, Var name, Int 1))
  let func name params body = { name; params; body }
end
