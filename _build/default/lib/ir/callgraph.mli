(** Static call graph over a lowered program. *)

type site = { caller : int; block : Cfg.label; callee : int }
(** One call site: caller function index, block label of the call, callee
    function index. *)

type t = {
  sites : site list;
  callees : int list array;  (** deduplicated, indexed by caller *)
  callers : int list array;  (** deduplicated, indexed by callee *)
}

val build : Prog.program -> t

val reachable : t -> int -> bool array
(** Functions reachable through calls from the given root, inclusive. *)

val in_cycle_with : t -> src:int -> dst:int -> bool
(** [true] when a call chain from [dst] leads back to [src]; inlining
    [dst] into [src] would then risk unbounded expansion. *)

val is_recursive : t -> int -> bool
(** [true] when the function can reach itself through calls. *)
