(** Abstract RISC-like instruction set.

    The reproduction models the paper's target machine: a fixed-format
    32-bit instruction encoding where each instruction occupies
    {!bytes_per_insn} bytes of instruction memory.  Only the {e size} of
    instructions matters to the placement algorithm and cache simulation;
    the operational semantics matter to the profiler/interpreter that
    generates dynamic traces. *)

type reg = int
(** Virtual register index.  Registers are function-local; parameters
    occupy registers [0 .. nparams-1]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type operand =
  | Reg of reg
  | Imm of int

(** VM intrinsics stand in for system calls: a single trap instruction in
    the fetch stream, internals never traced (the paper excludes kernel
    code from its dynamic traces). *)
type intrinsic =
  | Getc  (** [stream] -> next byte of input stream, or -1 at end *)
  | Putc  (** [stream; byte] -> 0; appends to an output stream *)
  | Stream_len  (** [stream] -> stream length in bytes *)
  | Arg  (** [i] -> i-th program argument, 0 when absent *)
  | Alloc  (** [n] -> address of [n] fresh zeroed bytes *)
  | Abort  (** raises a VM fault *)

type t =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Load8 of reg * operand * operand  (** [dst <- byte mem[base+off]] *)
  | Load32 of reg * operand * operand  (** [dst <- word mem[base+off]] *)
  | Store8 of operand * operand * operand
      (** [mem[base+off] <- low byte of v] *)
  | Store32 of operand * operand * operand  (** [mem[base+off] <- v] *)
  | Intrin of intrinsic * reg option * operand list

val bytes_per_insn : int
(** Fixed instruction width in bytes (4). *)

val binop_name : binop -> string
val intrinsic_name : intrinsic -> string

val is_comparison : binop -> bool
(** [true] for operators that produce a 0/1 result. *)

val eval_binop : binop -> int -> int -> int
(** Integer semantics.  [Div]/[Rem] by zero raise [Division_by_zero]. *)

val map_operand_regs : (reg -> reg) -> operand -> operand

val map_regs : (reg -> reg) -> t -> t
(** Rewrite every register (read or written) through the function; used
    when splicing a callee body into a caller during inline expansion. *)

val max_reg : t -> int
(** Highest register index mentioned by the instruction, [-1] if none. *)
