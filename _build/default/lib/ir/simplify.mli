(** Classic CFG cleanups: constant folding, branch/switch simplification
    on immediate conditions, jump threading through empty forwarding
    blocks, unreachable-block elimination with label compaction.

    Semantics-preserving.  Reachable-but-never-executed code is untouched
    (that dead code is what the layout algorithm pushes out of the
    effective region); blocks carrying size overrides are never threaded
    away. *)

val func : Prog.func -> Prog.func
val program : Prog.program -> Prog.program
