(** Pretty printers for the lowered IR. *)

val operand : Insn.operand Fmt.t
val insn : Insn.t Fmt.t
val term : Cfg.term Fmt.t
val block : (Cfg.label * Cfg.block) Fmt.t
val func : Prog.func Fmt.t
val program : Prog.program Fmt.t
