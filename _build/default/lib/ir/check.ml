(* Structural validation of lowered programs.  Run after lowering and
   after every program transformation (inlining, scaling) in tests. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let check_func (p : Prog.program) (f : Prog.func) =
  let n = Array.length f.blocks in
  if n = 0 then fail "%s: no blocks" f.name;
  if f.nparams > f.nregs then
    fail "%s: %d params but only %d regs" f.name f.nparams f.nregs;
  Array.iteri
    (fun l b ->
      let check_label where l' =
        if l' < 0 || l' >= n then
          fail "%s: block %d %s references label %d outside [0,%d)" f.name l
            where l' n
      in
      List.iter (check_label "terminator") (Cfg.successors b);
      (match b.Cfg.term with
      | Call { callee; ret_to; _ } ->
        check_label "call continuation" ret_to;
        if not (Hashtbl.mem p.by_name callee) then
          fail "%s: block %d calls unknown function %s" f.name l callee
      | Jump _ | Br _ | Switch _ | Ret _ -> ());
      let max_reg = Cfg.max_reg_of_block b in
      if max_reg >= f.nregs then
        fail "%s: block %d uses register %d >= nregs %d" f.name l max_reg
          f.nregs;
      if Cfg.instr_count b < 1 then fail "%s: block %d has size < 1" f.name l)
    f.blocks

let check_data (p : Prog.program) =
  List.iter
    (fun (addr, image) ->
      if addr < 0 then fail "data image at negative address %d" addr;
      if addr + Bytes.length image > p.heap_base then
        fail "data image at %d overruns heap base %d" addr p.heap_base)
    p.data

let program (p : Prog.program) =
  if Array.length p.funcs = 0 then fail "program has no functions";
  if p.entry < 0 || p.entry >= Array.length p.funcs then
    fail "entry index %d out of range" p.entry;
  Array.iter (check_func p) p.funcs;
  check_data p

let is_valid p =
  match program p with () -> true | exception Invalid _ -> false
