(** Structural validation of lowered programs: label ranges, callee
    resolution, register bounds, data-segment extents. *)

exception Invalid of string

val program : Prog.program -> unit
(** Raises {!Invalid} describing the first violation found. *)

val is_valid : Prog.program -> bool
