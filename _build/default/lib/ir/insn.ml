(* Abstract RISC-like instruction set. Every instruction occupies
   [bytes_per_insn] bytes of instruction memory, matching the paper's
   fixed-format 32-bit encoding ("4 machine instructions (4 bytes each)"
   per average basic block). *)

type reg = int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type operand =
  | Reg of reg
  | Imm of int

(* VM intrinsics stand in for system calls: they execute in "kernel space"
   and contribute a single trap instruction to the fetch stream, but their
   internals are never traced -- matching the paper's exclusion of kernel
   code from the dynamic traces. *)
type intrinsic =
  | Getc (* [stream] -> byte or -1 at end of stream *)
  | Putc (* [stream; byte] -> 0 *)
  | Stream_len (* [stream] -> length in bytes *)
  | Arg (* [i] -> i-th program argument (0 when absent) *)
  | Alloc (* [n] -> address of n fresh zeroed bytes *)
  | Abort (* [] -> raises a VM fault *)

type t =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Load8 of reg * operand * operand (* dst <- byte [base + off] *)
  | Load32 of reg * operand * operand (* dst <- word [base + off] *)
  | Store8 of operand * operand * operand (* [base + off] <- low byte of v *)
  | Store32 of operand * operand * operand (* [base + off] <- v *)
  | Intrin of intrinsic * reg option * operand list

let bytes_per_insn = 4

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let intrinsic_name = function
  | Getc -> "getc"
  | Putc -> "putc"
  | Stream_len -> "stream_len"
  | Arg -> "arg"
  | Alloc -> "alloc"
  | Abort -> "abort"

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> false

(* Integer semantics of a binary operator; division and remainder by zero
   are the caller's responsibility to fence. *)
let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 31)
  | Shr -> a asr (b land 31)
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0

let map_operand_regs f = function
  | Reg r -> Reg (f r)
  | Imm _ as o -> o

(* Rewrite every register (read or written) through [f]; used when splicing
   a callee body into a caller during inline expansion. *)
let map_regs f insn =
  let m = map_operand_regs f in
  match insn with
  | Mov (d, o) -> Mov (f d, m o)
  | Bin (op, d, a, b) -> Bin (op, f d, m a, m b)
  | Load8 (d, a, b) -> Load8 (f d, m a, m b)
  | Load32 (d, a, b) -> Load32 (f d, m a, m b)
  | Store8 (a, b, v) -> Store8 (m a, m b, m v)
  | Store32 (a, b, v) -> Store32 (m a, m b, m v)
  | Intrin (intr, d, args) ->
    Intrin (intr, Option.map f d, List.map m args)

let max_reg_of_operand = function
  | Reg r -> r
  | Imm _ -> -1

let max_reg insn =
  let m = max_reg_of_operand in
  match insn with
  | Mov (d, o) -> max d (m o)
  | Bin (_, d, a, b) -> max d (max (m a) (m b))
  | Load8 (d, a, b) | Load32 (d, a, b) -> max d (max (m a) (m b))
  | Store8 (a, b, v) | Store32 (a, b, v) -> max (m a) (max (m b) (m v))
  | Intrin (_, d, args) ->
    let d = match d with Some r -> r | None -> -1 in
    List.fold_left (fun acc o -> max acc (m o)) d args
