(* Pretty printing of the lowered IR, for debugging and examples. *)

let operand ppf = function
  | Insn.Reg r -> Fmt.pf ppf "r%d" r
  | Insn.Imm n -> Fmt.pf ppf "%d" n

let insn ppf = function
  | Insn.Mov (d, o) -> Fmt.pf ppf "mov r%d, %a" d operand o
  | Insn.Bin (op, d, a, b) ->
    Fmt.pf ppf "%s r%d, %a, %a" (Insn.binop_name op) d operand a operand b
  | Insn.Load8 (d, b, o) ->
    Fmt.pf ppf "ld8 r%d, [%a + %a]" d operand b operand o
  | Insn.Load32 (d, b, o) ->
    Fmt.pf ppf "ld32 r%d, [%a + %a]" d operand b operand o
  | Insn.Store8 (b, o, value) ->
    Fmt.pf ppf "st8 [%a + %a], %a" operand b operand o operand value
  | Insn.Store32 (b, o, value) ->
    Fmt.pf ppf "st32 [%a + %a], %a" operand b operand o operand value
  | Insn.Intrin (intr, dst, args) ->
    let pp_dst ppf = function
      | Some r -> Fmt.pf ppf "r%d <- " r
      | None -> ()
    in
    Fmt.pf ppf "%a%s(%a)" pp_dst dst
      (Insn.intrinsic_name intr)
      Fmt.(list ~sep:(any ", ") operand)
      args

let term ppf = function
  | Cfg.Jump l -> Fmt.pf ppf "jump L%d" l
  | Cfg.Br (o, t, f) -> Fmt.pf ppf "br %a ? L%d : L%d" operand o t f
  | Cfg.Switch (o, cases, d) ->
    Fmt.pf ppf "switch %a [%a] default L%d" operand o
      Fmt.(
        array ~sep:(any "; ") (fun ppf (value, l) ->
            Fmt.pf ppf "%d->L%d" value l))
      cases d
  | Cfg.Ret None -> Fmt.pf ppf "ret"
  | Cfg.Ret (Some o) -> Fmt.pf ppf "ret %a" operand o
  | Cfg.Call { callee; args; dst; ret_to } ->
    let pp_dst ppf = function
      | Some r -> Fmt.pf ppf "r%d <- " r
      | None -> ()
    in
    Fmt.pf ppf "%acall %s(%a) then L%d" pp_dst dst callee
      Fmt.(list ~sep:(any ", ") operand)
      args ret_to

let block ppf (l, b) =
  Fmt.pf ppf "@[<v 2>L%d:  (%d insns)@,%a%a@]" l (Cfg.instr_count b)
    Fmt.(array ~sep:nop (fun ppf it -> Fmt.pf ppf "%a@," insn it))
    b.Cfg.insns term b.Cfg.term

let func ppf (f : Prog.func) =
  Fmt.pf ppf "@[<v 2>func %s (%d params, %d regs, %d blocks, %d insns)@,%a@]"
    f.name f.nparams f.nregs (Array.length f.blocks)
    (Prog.func_instr_count f)
    Fmt.(array ~sep:cut block)
    (Array.mapi (fun l b -> (l, b)) f.blocks)

let program ppf (p : Prog.program) =
  Fmt.pf ppf "@[<v>program (entry %s, %d functions, %d bytes)@,%a@]"
    p.funcs.(p.entry).name (Array.length p.funcs) (Prog.total_byte_size p)
    Fmt.(array ~sep:cut func)
    p.funcs
