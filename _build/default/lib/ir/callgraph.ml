(* Static call graph over a lowered program.  Nodes are function indices;
   a call site is (caller function, block label, callee function). *)

type site = { caller : int; block : Cfg.label; callee : int }

type t = {
  sites : site list;
  callees : int list array; (* deduplicated, per caller *)
  callers : int list array; (* deduplicated, per callee *)
}

let build (p : Prog.program) =
  let n = Array.length p.funcs in
  let sites = ref [] in
  let callees = Array.make n [] in
  let callers = Array.make n [] in
  Prog.iter_blocks
    (fun fid _ l b ->
      match Cfg.callee b with
      | None -> ()
      | Some name ->
        let callee = Prog.func_index p name in
        sites := { caller = fid; block = l; callee } :: !sites;
        if not (List.mem callee callees.(fid)) then
          callees.(fid) <- callee :: callees.(fid);
        if not (List.mem fid callers.(callee)) then
          callers.(callee) <- fid :: callers.(callee))
    p;
  { sites = List.rev !sites; callees; callers }

(* Functions reachable through calls from [root] (inclusive). *)
let reachable t root =
  let n = Array.length t.callees in
  let seen = Array.make n false in
  let rec go f =
    if not seen.(f) then begin
      seen.(f) <- true;
      List.iter go t.callees.(f)
    end
  in
  go root;
  seen

(* [true] when a call chain leads from [src] back to [src] through [dst]
   (i.e. inlining [dst] into [src] could require unbounded expansion). *)
let in_cycle_with t ~src ~dst =
  let n = Array.length t.callees in
  let seen = Array.make n false in
  let rec go f =
    f = src
    ||
    if seen.(f) then false
    else begin
      seen.(f) <- true;
      List.exists go t.callees.(f)
    end
  in
  go dst

let is_recursive t f =
  List.exists (fun callee -> in_cycle_with t ~src:f ~dst:callee) t.callees.(f)
