(* Program I/O: input streams (consumed by the Getc intrinsic), output
   streams (filled by Putc), and integer program arguments.  These model
   the operating-system boundary: the paper's traces exclude kernel code,
   and correspondingly the intrinsics cost a single trap instruction. *)

type input = {
  label : string; (* human-readable description of the input *)
  streams : string list; (* input stream contents, index 0 first *)
  args : int list; (* integer program arguments *)
}

let input ?(label = "") ?(args = []) streams = { label; streams; args }

type stream = { data : string; mutable pos : int }

type t = {
  inputs : stream array;
  outputs : Buffer.t array;
  args : int array;
}

let max_streams = 8

let of_input (spec : input) =
  let inputs =
    Array.init max_streams (fun idx ->
        let data = try List.nth spec.streams idx with _ -> "" in
        { data; pos = 0 })
  in
  {
    inputs;
    outputs = Array.init max_streams (fun _ -> Buffer.create 64);
    args = Array.of_list spec.args;
  }

let getc t stream =
  if stream < 0 || stream >= max_streams then -1
  else begin
    let s = t.inputs.(stream) in
    if s.pos >= String.length s.data then -1
    else begin
      let c = Char.code s.data.[s.pos] in
      s.pos <- s.pos + 1;
      c
    end
  end

let putc t stream byte =
  if stream >= 0 && stream < max_streams then
    Buffer.add_char t.outputs.(stream) (Char.chr (byte land 0xff))

let stream_len t stream =
  if stream < 0 || stream >= max_streams then 0
  else String.length t.inputs.(stream).data

let arg t idx = if idx >= 0 && idx < Array.length t.args then t.args.(idx) else 0

let output t stream =
  if stream < 0 || stream >= max_streams then ""
  else Buffer.contents t.outputs.(stream)
