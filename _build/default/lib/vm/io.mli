(** Program I/O: input streams, output streams, and integer arguments —
    the operating-system boundary of the VM. *)

type input = {
  label : string;  (** human-readable description of the input *)
  streams : string list;  (** input stream contents, stream 0 first *)
  args : int list;  (** integer program arguments *)
}

val input : ?label:string -> ?args:int list -> string list -> input

type t

val max_streams : int

val of_input : input -> t
val getc : t -> int -> int
(** Next byte of the stream, or [-1] at end / invalid stream. *)

val putc : t -> int -> int -> unit
val stream_len : t -> int -> int
val arg : t -> int -> int
val output : t -> int -> string
(** Everything written to the output stream so far. *)
