(** Flat byte-addressable data memory with growth on demand.

    Addresses below {!Ir.Lower.globals_base} are unmapped; touching them
    raises {!Fault} (null-pointer-style protection). *)

exception Fault of string

type t

val default_limit : int

val create : ?limit:int -> int -> t
(** [create n] makes a memory of at least [n] bytes that can grow up to
    [limit] (default 64 MiB). *)

val of_program : Ir.Prog.program -> t
(** Memory pre-loaded with the program's static data segment. *)

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit
val blit_string : t -> string -> int -> unit
val read_string : t -> int -> int -> string
