(* Execution profiling (paper step 1).

   Accumulates, across any number of runs:
   - the weighted control graph of every function (block and arc counts),
   - the weighted call graph (per-call-site counts and function entry
     counts),
   - whole-program dynamic totals for Table 2 / Table 3. *)

open Ir

type func_profile = {
  block_counts : int array;
  (* arc_counts.(src) maps dst -> count, for intra-function arcs *)
  arc_counts : (int, int) Hashtbl.t array;
}

type t = {
  prog : Prog.program;
  funcs : func_profile array;
  site_counts : (int * Cfg.label * int, int) Hashtbl.t;
      (* (caller fid, block, callee fid) -> dynamic calls *)
  entry_counts : int array; (* per function: number of invocations *)
  mutable runs : int;
  mutable dyn_insns : int;
  mutable dyn_blocks : int;
  mutable dyn_calls : int;
  mutable dyn_branches : int;
}

let create (prog : Prog.program) =
  let funcs =
    Array.map
      (fun (f : Prog.func) ->
        let n = Array.length f.blocks in
        {
          block_counts = Array.make n 0;
          arc_counts = Array.init n (fun _ -> Hashtbl.create 4);
        })
      prog.funcs
  in
  {
    prog;
    funcs;
    site_counts = Hashtbl.create 64;
    entry_counts = Array.make (Array.length prog.funcs) 0;
    runs = 0;
    dyn_insns = 0;
    dyn_blocks = 0;
    dyn_calls = 0;
    dyn_branches = 0;
  }

let bump tbl key =
  let cur = match Hashtbl.find_opt tbl key with Some c -> c | None -> 0 in
  Hashtbl.replace tbl key (cur + 1)

let observer t =
  {
    Interp.on_block =
      (fun fid l ->
        let fp = t.funcs.(fid) in
        fp.block_counts.(l) <- fp.block_counts.(l) + 1);
    on_arc =
      (fun fid src dst ->
        let fp = t.funcs.(fid) in
        bump fp.arc_counts.(src) dst);
    on_call =
      (fun caller block callee ->
        bump t.site_counts (caller, block, callee);
        t.entry_counts.(callee) <- t.entry_counts.(callee) + 1);
  }

let run t input =
  t.entry_counts.(t.prog.entry) <- t.entry_counts.(t.prog.entry) + 1;
  let r = Interp.run ~observer:(observer t) t.prog input in
  t.runs <- t.runs + 1;
  t.dyn_insns <- t.dyn_insns + r.dyn_insns;
  t.dyn_blocks <- t.dyn_blocks + r.dyn_blocks;
  t.dyn_calls <- t.dyn_calls + r.dyn_calls;
  t.dyn_branches <- t.dyn_branches + r.dyn_branches;
  r

let profile prog inputs =
  let t = create prog in
  List.iter (fun input -> ignore (run t input)) inputs;
  t

let block_weight t fid l = t.funcs.(fid).block_counts.(l)

let arc_weight t fid src dst =
  match Hashtbl.find_opt t.funcs.(fid).arc_counts.(src) dst with
  | Some c -> c
  | None -> 0

let func_weight t fid = t.entry_counts.(fid)

let site_weight t ~caller ~block ~callee =
  match Hashtbl.find_opt t.site_counts (caller, block, callee) with
  | Some c -> c
  | None -> 0

let out_arcs t fid src =
  Hashtbl.fold
    (fun dst count acc -> (dst, count) :: acc)
    t.funcs.(fid).arc_counts.(src) []

(* Incoming intra-function arc counts for every block of a function. *)
let in_arcs t fid =
  let fp = t.funcs.(fid) in
  let n = Array.length fp.block_counts in
  let incoming = Array.make n [] in
  Array.iteri
    (fun src tbl ->
      Hashtbl.iter
        (fun dst count -> incoming.(dst) <- (src, count) :: incoming.(dst))
        tbl)
    fp.arc_counts;
  incoming

(* Total dynamic calls made from each call site of a function, by block. *)
let call_sites_of t fid =
  Hashtbl.fold
    (fun (caller, block, callee) count acc ->
      if caller = fid then (block, callee, count) :: acc else acc)
    t.site_counts []
