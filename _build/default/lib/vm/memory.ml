(* Flat byte-addressable data memory with growth on demand.

   Addresses below [Ir.Lower.globals_base] are unmapped: accessing them is
   a null-pointer-style fault, which catches workload bugs early. *)

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

type t = { mutable data : Bytes.t; limit : int }

let default_limit = 64 * 1024 * 1024

let create ?(limit = default_limit) initial_size =
  { data = Bytes.make (max initial_size 4096) '\000'; limit }

let ensure t addr len =
  if addr < Ir.Lower.globals_base then
    fault "access to unmapped low address %d" addr;
  let needed = addr + len in
  if needed > t.limit then fault "address %d beyond memory limit %d" addr t.limit;
  let cur = Bytes.length t.data in
  if needed > cur then begin
    let size = ref cur in
    while !size < needed do
      size := !size * 2
    done;
    let bigger = Bytes.make (min !size t.limit) '\000' in
    Bytes.blit t.data 0 bigger 0 cur;
    t.data <- bigger
  end

let load_image t (addr, image) =
  ensure t addr (Bytes.length image);
  Bytes.blit image 0 t.data addr (Bytes.length image)

let of_program (p : Ir.Prog.program) =
  let t = create (p.heap_base + 65536) in
  List.iter (load_image t) p.data;
  t

let read8 t addr =
  ensure t addr 1;
  Char.code (Bytes.get t.data addr)

let write8 t addr value =
  ensure t addr 1;
  Bytes.set t.data addr (Char.chr (value land 0xff))

let read32 t addr =
  ensure t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr)

let write32 t addr value =
  ensure t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int value)

let blit_string t s addr =
  ensure t addr (String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s)

let read_string t addr len =
  ensure t addr len;
  Bytes.sub_string t.data addr len
