lib/vm/memory.mli: Ir
