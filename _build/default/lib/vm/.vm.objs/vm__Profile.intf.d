lib/vm/profile.mli: Cfg Hashtbl Interp Io Ir Prog
