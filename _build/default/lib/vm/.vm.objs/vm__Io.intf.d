lib/vm/io.mli:
