lib/vm/memory.ml: Bytes Char Fmt Int32 Ir List String
