lib/vm/interp.mli: Cfg Io Ir Prog
