lib/vm/io.ml: Array Buffer Char List String
