lib/vm/profile.ml: Array Cfg Hashtbl Interp Ir List Prog
