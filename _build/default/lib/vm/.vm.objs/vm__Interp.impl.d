lib/vm/interp.ml: Array Cfg Fmt Insn Io Ir List Memory Prog
