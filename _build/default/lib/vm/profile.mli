(** Execution profiling (paper step 1): weighted control graphs and the
    weighted call graph, accumulated over any number of runs. *)

open Ir

type func_profile = {
  block_counts : int array;
  arc_counts : (int, int) Hashtbl.t array;
      (** [arc_counts.(src)] maps [dst -> count] for intra-function arcs *)
}

type t = {
  prog : Prog.program;
  funcs : func_profile array;
  site_counts : (int * Cfg.label * int, int) Hashtbl.t;
      (** [(caller fid, block, callee fid) -> dynamic call count] *)
  entry_counts : int array;  (** per function: number of invocations *)
  mutable runs : int;
  mutable dyn_insns : int;
  mutable dyn_blocks : int;
  mutable dyn_calls : int;
  mutable dyn_branches : int;
}

val create : Prog.program -> t
val observer : t -> Interp.observer

val run : t -> Io.input -> Interp.result
(** Execute one profiling run, accumulating counters. *)

val profile : Prog.program -> Io.input list -> t
(** Profile the program over all inputs. *)

val block_weight : t -> int -> Cfg.label -> int
val arc_weight : t -> int -> Cfg.label -> Cfg.label -> int
val func_weight : t -> int -> int
val site_weight : t -> caller:int -> block:Cfg.label -> callee:int -> int

val out_arcs : t -> int -> Cfg.label -> (Cfg.label * int) list
(** Outgoing intra-function arcs of a block with their counts. *)

val in_arcs : t -> int -> (Cfg.label * int) list array
(** Incoming intra-function arcs for every block of the function. *)

val call_sites_of : t -> int -> (Cfg.label * int * int) list
(** All call sites in the function: [(block, callee fid, count)]. *)
