(** Shared experiment context: per benchmark, the placement pipeline, the
    recorded traces and derived address maps — computed lazily and at most
    once, since every table draws on the same artifacts. *)

type entry = {
  bench : Workloads.Bench.t;
  pipeline : Placement.Pipeline.t Lazy.t;
  pipeline_noinline : Placement.Pipeline.t Lazy.t;
  trace : Sim.Trace_gen.t Lazy.t;
  original_trace : Sim.Trace_gen.t Lazy.t;
}

type t = entry list

val create : ?names:string list -> unit -> t
(** Default: the full ten-benchmark suite. *)

val entries : t -> entry list

val find : t -> string -> entry
(** Raises [Workloads.Registry.Unknown_benchmark]. *)

val name : entry -> string
val pipeline : entry -> Placement.Pipeline.t
val pipeline_noinline : entry -> Placement.Pipeline.t
val trace : entry -> Sim.Trace_gen.t
val original_trace : entry -> Sim.Trace_gen.t
val optimized_map : entry -> Placement.Address_map.t
val natural_map : entry -> Placement.Address_map.t

val original_map : entry -> Placement.Address_map.t
(** Natural layout of the pre-inlining program: the fully unoptimized
    baseline. *)

val ph_map : entry -> Placement.Address_map.t
(** Pettis-Hansen layout of the inlined program, for the layout-algorithm
    comparison. *)

val scaled_map : entry -> float -> Placement.Address_map.t
(** Address map for the code-scaling experiment (Table 9): the inlined
    program scaled by the factor and re-laid-out with the same trace
    selection and orderings. *)
