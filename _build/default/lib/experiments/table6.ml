(* E6 / Table 6: the effect of varying cache size — direct-mapped caches
   with 64-byte blocks, whole-block fill, sizes 8K down to 0.5K. *)

let sizes = Paper.table6_sizes

let configs =
  List.map (fun size -> Icache.Config.make ~size ~block:64 ()) sizes

let compute ctx =
  Sweep.compute ctx configs ~map_of:(fun e _ -> Context.optimized_map e)

let table ctx =
  Sweep.render
    ~title:
      "Table 6: effect of cache size (direct-mapped, 64B blocks); cells \
       are measured (paper)"
    ~point_names:(List.map (fun s -> Printf.sprintf "%dK" (s / 1024)) sizes
                  |> List.map (function "0K" -> "0.5K" | s -> s))
    ~paper:Paper.table6 (compute ctx)
