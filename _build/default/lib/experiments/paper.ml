(* Published numbers from the paper, for side-by-side comparison with our
   measurements (EXPERIMENTS.md records both).

   Transcription note: the available copy of the paper has OCR artifacts
   in some table cells (rotated percent cells such as "%66" for "99%",
   digit swaps 6<->9).  Cells we could not read with confidence are
   [None].  All values are from Hwu & Chang, ISCA 1989. *)

let benchmarks =
  [ "cccp"; "cmp"; "compress"; "grep"; "lex"; "make"; "tee"; "tar"; "wc"; "yacc" ]

(* Table 1: Smith's design-target miss ratios for fully associative
   instruction caches, by cache size and block size (percent). *)
let table1_cache_sizes = [ 512; 1024; 2048; 4096 ]
let table1_block_sizes = [ 16; 32; 64; 128 ]

let table1 =
  [
    (512, [ 23.0; 15.9; 11.9; 10.8 ]);
    (1024, [ 20.0; 13.4; 9.8; 8.4 ]);
    (2048, [ 15.0; 9.8; 6.8; 5.7 ]);
    (4096, [ 10.0; 6.3; 4.3; 3.2 ]);
  ]

let smith_miss_ratio ~cache_size ~block_size =
  match List.assoc_opt cache_size table1 with
  | None -> None
  | Some row ->
    let rec nth bs row =
      match (bs, row) with
      | b :: _, m :: _ when b = block_size -> Some (m /. 100.)
      | _ :: bs, _ :: row -> nth bs row
      | _, _ -> None
    in
    nth table1_block_sizes row

(* Table 2: benchmark characteristics.  (name, C lines, runs,
   dynamic instructions, control transfers, input description) *)
type table2_row = {
  t2_name : string;
  t2_c_lines : int;
  t2_runs : int;
  t2_instructions : float; (* millions *)
  t2_control : float; (* millions *)
  t2_inputs : string;
}

let table2 =
  [
    { t2_name = "cccp"; t2_c_lines = 4660; t2_runs = 8; t2_instructions = 11.7; t2_control = 2.2; t2_inputs = "C programs (100-3000 lines)" };
    { t2_name = "cmp"; t2_c_lines = 371; t2_runs = 16; t2_instructions = 2.2; t2_control = 0.5; t2_inputs = "similar/dissimilar text files" };
    { t2_name = "compress"; t2_c_lines = 1941; t2_runs = 8; t2_instructions = 19.6; t2_control = 3.1; t2_inputs = "same as cccp" };
    { t2_name = "grep"; t2_c_lines = 1302; t2_runs = 8; t2_instructions = 47.1; t2_control = 17.1; t2_inputs = "exercised various options" };
    { t2_name = "lex"; t2_c_lines = 3251; t2_runs = 4; t2_instructions = 3052.6; t2_control = 1125.9; t2_inputs = "lexers for C, Lisp, awk, and pic" };
    { t2_name = "make"; t2_c_lines = 7043; t2_runs = 20; t2_instructions = 152.6; t2_control = 32.4; t2_inputs = "makefiles for cccp, compress, etc." };
    { t2_name = "tee"; t2_c_lines = 1063; t2_runs = 28; t2_instructions = 0.43; t2_control = 0.17; t2_inputs = "text files (100-3000 lines)" };
    { t2_name = "tar"; t2_c_lines = 3186; t2_runs = 14; t2_instructions = 11.0; t2_control = 1.5; t2_inputs = "save/extract files" };
    { t2_name = "wc"; t2_c_lines = 345; t2_runs = 8; t2_instructions = 7.8; t2_control = 2.2; t2_inputs = "same as cccp" };
    { t2_name = "yacc"; t2_c_lines = 3333; t2_runs = 8; t2_instructions = 313.4; t2_control = 78.7; t2_inputs = "grammar for a C compiler, etc." };
  ]

(* Table 3: inline expansion.  (code increase %, dynamic calls eliminated
   %, dynamic instructions per call, control transfers per call) *)
type table3_row = {
  t3_name : string;
  t3_code_inc : float option;
  t3_call_dec : float option;
  t3_di_per_call : int option;
  t3_ct_per_call : int option;
}

let t3 name code_inc call_dec di ct =
  { t3_name = name; t3_code_inc = code_inc; t3_call_dec = call_dec;
    t3_di_per_call = di; t3_ct_per_call = ct }

let table3 =
  [
    t3 "cccp" (Some 17.) (Some 25.) (Some 206) (Some 95);
    t3 "cmp" (Some 3.) (Some 46.) (Some 265) (Some 58);
    t3 "compress" (Some 4.) (Some 91.) (Some 2324) (Some 368);
    t3 "grep" (Some 31.) (Some 99.) (Some 11214) (Some 4071);
    t3 "lex" (Some 23.) (Some 77.) (Some 7807) (Some 2880);
    t3 "make" (Some 34.) (Some 89.) (Some 388) (Some 82);
    t3 "tee" (Some 0.) (Some 0.) (Some 15) (Some 9);
    t3 "tar" (Some 16.) (Some 43.) (Some 983) (Some 127);
    t3 "wc" (Some 0.) (Some 0.) (Some 18310) (Some 5146);
    t3 "yacc" (Some 24.) (Some 80.) (Some 1205) (Some 303);
  ]

(* Table 4: trace selection.  (neutral %, undesirable %, desirable %,
   mean basic blocks per trace) *)
type table4_row = {
  t4_name : string;
  t4_neutral : float;
  t4_undesirable : float;
  t4_desirable : float;
  t4_trace_length : float;
}

let t4 name neutral undesirable desirable len =
  { t4_name = name; t4_neutral = neutral; t4_undesirable = undesirable;
    t4_desirable = desirable; t4_trace_length = len }

let table4 =
  [
    t4 "cccp" 55.23 3.74 41.05 1.8;
    t4 "cmp" 12.74 4.23 83.03 6.9;
    t4 "compress" 35.04 3.15 61.85 2.8;
    t4 "grep" 20.96 1.80 77.24 4.7;
    t4 "lex" 35.02 1.79 63.19 2.8;
    t4 "make" 23.93 2.08 43.99 1.8;
    t4 "tar" 86.85 0.38 12.77 1.2;
    t4 "tee" 24.17 0.24 75.00 4.0;
    t4 "wc" 15.09 9.02 75.88 5.5;
    t4 "yacc" 49.13 4.62 46.25 2.0;
  ]

(* Table 5: the paper reports total static program sizes of 2.8K-55K bytes
   and effective static sizes of 2K-34K bytes; the row-to-benchmark
   mapping is not recoverable from our copy (scrambled table), so we keep
   only the ranges. *)
let table5_total_range = (2_800, 55_000)
let table5_effective_range = (2_000, 34_000)

(* Tables 6/7/9 entries: (miss %, traffic %). *)
type mt = float * float

(* Table 6: direct-mapped, 64-byte blocks; cache size sweep.
   Columns: 8K, 4K, 2K, 1K, 0.5K. *)
let table6_sizes = [ 8192; 4096; 2048; 1024; 512 ]

let table6 : (string * mt list) list =
  [
    ("cccp", [ (0.86, 13.79); (1.53, 24.40); (2.70, 43.13); (3.52, 56.32); (4.24, 61.81) ]);
    ("cmp", [ (0.01, 0.15); (0.01, 0.15); (0.01, 0.15); (0.01, 0.15); (0.01, 0.17) ]);
    ("compress", [ (0.00, 0.07); (0.00, 0.08); (0.01, 0.08); (0.01, 0.09); (3.54, 56.63) ]);
    ("grep", [ (0.06, 0.88); (0.06, 0.91); (0.06, 0.87); (0.07, 1.11); (0.60, 9.62) ]);
    ("lex", [ (0.01, 0.09); (0.01, 0.21); (0.03, 0.48); (0.06, 0.93); (0.31, 4.96) ]);
    ("make", [ (0.32, 5.06); (0.69, 11.10); (1.35, 21.59); (2.03, 32.46); (2.44, 39.02) ]);
    ("tar", [ (0.09, 1.51); (0.24, 3.88); (0.27, 4.27); (0.42, 6.76); (0.61, 9.79) ]);
    ("tee", [ (0.06, 0.92); (0.06, 0.92); (0.08, 1.20); (0.08, 1.28); (0.08, 1.33) ]);
    ("wc", [ (0.00, 0.06); (0.00, 0.06); (0.00, 0.06); (0.00, 0.06); (0.00, 0.06) ]);
    ("yacc", [ (0.02, 0.28); (0.23, 3.64); (0.49, 7.86); (1.17, 18.73); (1.99, 31.89) ]);
  ]

(* Table 7: direct-mapped, 2048-byte cache; block size sweep.
   Columns: 16B, 32B, 64B, 128B. *)
let table7_blocks = [ 16; 32; 64; 128 ]

let table7 : (string * mt list) list =
  [
    ("cccp", [ (7.53, 30.10); (4.32, 34.58); (2.70, 43.13); (2.10, 67.33) ]);
    ("cmp", [ (0.04, 0.15); (0.02, 0.15); (0.01, 0.15); (0.01, 0.16) ]);
    ("compress", [ (0.02, 0.07); (0.01, 0.08); (0.01, 0.08); (0.00, 0.09) ]);
    ("grep", [ (0.19, 0.76); (0.10, 0.82); (0.06, 0.91); (0.03, 1.01) ]);
    ("lex", [ (0.08, 0.33); (0.05, 0.38); (0.03, 0.48); (0.02, 0.69) ]);
    ("make", [ (4.24, 16.95); (2.40, 19.19); (1.35, 21.59); (0.95, 30.39) ]);
    ("tar", [ (0.72, 2.90); (0.42, 3.32); (0.27, 4.27); (0.20, 6.37) ]);
    ("tee", [ (0.25, 0.98); (0.13, 1.06); (0.08, 1.20); (0.04, 1.41) ]);
    ("wc", [ (0.01, 0.06); (0.01, 0.06); (0.00, 0.06); (0.00, 0.06) ]);
    ("yacc", [ (1.13, 4.53); (0.66, 5.25); (0.49, 7.86); (0.52, 16.78) ]);
  ]

(* Table 8: 2048-byte cache, 64-byte blocks.  Sectored (8-byte sectors):
   miss %, traffic %.  Partial loading: miss %, traffic %, avg.fetch
   (4-byte entities per miss), avg.exec (consecutive instructions from a
   miss to a taken branch or the next miss). *)
type table8_row = {
  t8_name : string;
  t8_sector : mt;
  t8_partial : mt;
  t8_avg_fetch : float option;
  t8_avg_exec : float option;
}

let t8 name sector partial avg_fetch avg_exec =
  { t8_name = name; t8_sector = sector; t8_partial = partial;
    t8_avg_fetch = avg_fetch; t8_avg_exec = avg_exec }

let table8 =
  [
    t8 "cccp" (13.88, 27.76) (2.86, 33.78) (Some 11.8) (Some 8.2);
    t8 "cmp" (0.33, 0.65) (0.05, 0.66) (Some 14.2) (Some 12.3);
    t8 "compress" (0.47, 0.94) (0.07, 0.99) (Some 13.9) (Some 12.0);
    t8 "grep" (0.11, 0.21) (0.02, 0.24) (Some 12.6) (Some 9.9);
    t8 "lex" (0.18, 0.35) (0.04, 0.41) (Some 11.1) (Some 7.8);
    t8 "make" (8.82, 17.64) (1.52, 19.77) None (Some 10.1);
    t8 "tar" (1.62, 3.25) (0.28, 3.55) (Some 12.8) (Some 12.2);
    t8 "tee" (1.31, 2.62) (0.21, 3.00) (Some 14.0) (Some 9.9);
    t8 "wc" (0.16, 0.33) (0.02, 0.33) (Some 14.9) (Some 12.7);
    t8 "yacc" (2.79, 5.57) (0.55, 7.13) (Some 13.1) (Some 9.0);
  ]

(* Table 9: 2048-byte cache, 64-byte blocks, partial loading, after code
   scaling.  Columns: x0.5, x0.7, x1.0, x1.1. *)
let table9_factors = [ 0.5; 0.7; 1.0; 1.1 ]

let table9 : (string * mt list) list =
  [
    ("cccp", [ (2.60, 25.88); (3.02, 31.02); (2.86, 33.78); (3.21, 36.73) ]);
    ("cmp", [ (0.06, 0.77); (0.05, 0.75); (0.05, 0.66); (0.05, 0.70) ]);
    ("compress", [ (0.08, 1.05); (0.07, 1.00); (0.07, 0.99); (0.07, 1.02) ]);
    ("grep", [ (0.03, 0.31); (0.02, 0.27); (0.02, 0.24); (0.02, 0.25) ]);
    ("lex", [ (0.02, 0.21); (0.03, 0.32); (0.04, 0.41); (0.04, 0.41) ]);
    ("make", [ (1.26, 13.75); (1.57, 18.22); (1.52, 19.77); (1.78, 23.10) ]);
    ("tar", [ (0.32, 4.30); (0.27, 3.16); (0.28, 3.55); (0.32, 4.09) ]);
    ("tee", [ (0.24, 2.97); (0.24, 2.99); (0.21, 3.00); (0.23, 2.95) ]);
    ("wc", [ (0.02, 0.37); (0.02, 0.36); (0.02, 0.34); (0.02, 0.36) ]);
    ("yacc", [ (0.65, 5.81); (0.64, 6.75); (0.55, 7.13); (0.42, 4.68) ]);
  ]

let lookup_mt table name = List.assoc_opt name table
