(* Shared experiment context: per benchmark, the placement pipeline, the
   recorded block traces, and derived address maps — all computed lazily
   and at most once, since every table draws on the same artifacts. *)

type entry = {
  bench : Workloads.Bench.t;
  pipeline : Placement.Pipeline.t Lazy.t;
  pipeline_noinline : Placement.Pipeline.t Lazy.t; (* inlining ablated *)
  trace : Sim.Trace_gen.t Lazy.t; (* inlined program, trace input *)
  original_trace : Sim.Trace_gen.t Lazy.t; (* pre-inlining program *)
}

type t = entry list

let make_entry bench =
  let pipeline =
    lazy
      (Placement.Pipeline.run
         (Workloads.Bench.program bench)
         ~inputs:(Workloads.Bench.profile_inputs bench))
  in
  let pipeline_noinline =
    lazy
      (Placement.Pipeline.run
         ~config:{ Placement.Pipeline.default_config with do_inline = false }
         (Workloads.Bench.program bench)
         ~inputs:(Workloads.Bench.profile_inputs bench))
  in
  let trace =
    lazy
      (Sim.Trace_gen.record
         (Lazy.force pipeline).Placement.Pipeline.program
         (Workloads.Bench.trace_input bench))
  in
  let original_trace =
    (* The pre-inlining program as the pipeline shipped it (i.e. after
       the cleanup pass), so it matches original_map's labels. *)
    lazy
      (Sim.Trace_gen.record
         (Lazy.force pipeline).Placement.Pipeline.original
         (Workloads.Bench.trace_input bench))
  in
  { bench; pipeline; pipeline_noinline; trace; original_trace }

let create ?names () =
  let benches =
    match names with
    | None -> Workloads.Registry.all
    | Some names -> List.map Workloads.Registry.find names
  in
  List.map make_entry benches

let entries t = t

let find t name =
  match
    List.find_opt (fun e -> e.bench.Workloads.Bench.name = name) t
  with
  | Some e -> e
  | None -> raise (Workloads.Registry.Unknown_benchmark name)

let name e = e.bench.Workloads.Bench.name
let pipeline e = Lazy.force e.pipeline
let pipeline_noinline e = Lazy.force e.pipeline_noinline
let trace e = Lazy.force e.trace
let original_trace e = Lazy.force e.original_trace
let optimized_map e = (pipeline e).Placement.Pipeline.optimized
let natural_map e = (pipeline e).Placement.Pipeline.natural

(* Natural layout of the original (pre-inlining) program: the fully
   unoptimized baseline. *)
let original_map e =
  Placement.Address_map.natural (pipeline e).Placement.Pipeline.original

(* Pettis-Hansen layout of the inlined program, for the layout-algorithm
   comparison experiment. *)
let ph_map e =
  let p = pipeline e in
  let program = p.Placement.Pipeline.program in
  let layouts =
    Array.mapi
      (fun fid f ->
        Placement.Ph_layout.layout f
          (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid))
      program.Ir.Prog.funcs
  in
  let order =
    Placement.Ph_layout.global
      (Array.length program.Ir.Prog.funcs)
      ~entry:program.Ir.Prog.entry
      (Placement.Weight.call_of_profile p.Placement.Pipeline.profile)
  in
  Placement.Address_map.build program ~layouts ~order

(* Address map for the code-scaling experiment (Table 9): the inlined
   program with every block size scaled, laid out with the same trace
   selection and orderings (weights are size-independent).  The recorded
   block trace replays unchanged; only addresses and fetch counts move. *)
let scaled_map e factor =
  let p = pipeline e in
  if factor = 1.0 then p.Placement.Pipeline.optimized
  else begin
    let scaled = Ir.Prog.scale_code factor p.Placement.Pipeline.program in
    let layouts =
      Array.mapi
        (fun fid f ->
          Placement.Func_layout.layout f
            (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid)
            p.Placement.Pipeline.selections.(fid))
        scaled.Ir.Prog.funcs
    in
    Placement.Address_map.build scaled ~layouts
      ~order:p.Placement.Pipeline.global
  end
