(* E1 / Table 1: Smith's design-target miss ratios for fully associative
   instruction caches — the baseline the paper (and we) compare against.
   These are published constants; our measured fully-associative baseline
   appears in the Comparison experiment. *)

let table () =
  let rows =
    List.map
      (fun (size, misses) ->
        string_of_int size :: List.map (fun m -> Printf.sprintf "%.1f%%" m) misses)
      Paper.table1
  in
  Report.Table.make
    ~title:
      "Table 1: design-target miss ratios (Smith, fully associative), by \
       cache size (rows, bytes) and block size (columns)"
    ~header:[ "cache"; "16B"; "32B"; "64B"; "128B" ]
    rows
