(* E7 / Table 7: the effect of varying block size — 2048-byte
   direct-mapped cache, whole-block fill, blocks of 16 to 128 bytes. *)

let blocks = Paper.table7_blocks

let configs =
  List.map (fun block -> Icache.Config.make ~size:2048 ~block ()) blocks

let compute ctx =
  Sweep.compute ctx configs ~map_of:(fun e _ -> Context.optimized_map e)

let table ctx =
  Sweep.render
    ~title:
      "Table 7: effect of block size (2KB direct-mapped); cells are \
       measured (paper)"
    ~point_names:(List.map (fun b -> Printf.sprintf "%dB" b) blocks)
    ~paper:Paper.table7 (compute ctx)
