lib/experiments/comparison.ml: Context Icache List Paper Report Sim
