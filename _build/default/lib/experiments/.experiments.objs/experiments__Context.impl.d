lib/experiments/context.ml: Array Ir Lazy List Placement Sim Workloads
