lib/experiments/prefetch_exp.ml: Context Icache List Report Sim
