lib/experiments/ablation.ml: Context Icache List Placement Report Sim
