lib/experiments/table9.ml: Context Icache List Paper Printf Sim Sweep
