lib/experiments/paging_exp.ml: Context List Paging Printf Report Sim
