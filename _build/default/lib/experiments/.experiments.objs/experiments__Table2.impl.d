lib/experiments/table2.ml: Context List Paper Placement Printf Report Vm Workloads
