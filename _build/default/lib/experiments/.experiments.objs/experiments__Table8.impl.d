lib/experiments/table8.ml: Context Icache List Paper Printf Report Sim
