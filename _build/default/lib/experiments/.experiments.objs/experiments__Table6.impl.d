lib/experiments/table6.ml: Context Icache List Paper Printf Sweep
