lib/experiments/ph_exp.ml: Context Icache List Report Sim
