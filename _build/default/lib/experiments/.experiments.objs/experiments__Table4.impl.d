lib/experiments/table4.ml: Array Context List Paper Placement Printf Report Sim Workloads
