lib/experiments/table1.ml: List Paper Printf Report
