lib/experiments/table3.ml: Context List Paper Placement Printf Report Vm
