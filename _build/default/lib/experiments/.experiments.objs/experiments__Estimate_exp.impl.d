lib/experiments/estimate_exp.ml: Context Icache List Report Sim
