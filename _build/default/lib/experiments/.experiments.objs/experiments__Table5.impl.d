lib/experiments/table5.ml: Context List Placement Report Sim
