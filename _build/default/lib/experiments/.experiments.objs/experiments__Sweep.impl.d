lib/experiments/sweep.ml: Context List Option Paper Printf Report Sim
