lib/experiments/table7.ml: Context Icache List Paper Printf Sweep
