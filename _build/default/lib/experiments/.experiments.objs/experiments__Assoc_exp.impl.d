lib/experiments/assoc_exp.ml: Context Icache List Report Sim
