lib/experiments/timing_exp.ml: Context Icache List Report Sim
