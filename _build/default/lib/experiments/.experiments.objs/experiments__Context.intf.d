lib/experiments/context.mli: Lazy Placement Sim Workloads
