lib/experiments/runner.mli: Context Report
