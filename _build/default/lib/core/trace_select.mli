(** Trace selection — the paper's appendix [Algorithm TraceSelection]
    with [MIN_PROB = 0.7].

    Traces are the units of instruction placement: blocks that tend to
    execute in sequence, grown from the heaviest unselected block forward
    through best successors and backward through best predecessors.  An
    arc qualifies only when its weight is at least [min_prob] of the
    weight of both endpoint blocks and the candidate block is unselected;
    the function entry never becomes a trace interior. *)

open Ir

val default_min_prob : float
(** 0.7, the paper's MIN_PROB. *)

type t = {
  trace_of : int array;  (** block label -> trace id *)
  traces : Cfg.label array array;
      (** trace id -> member blocks in control order (head first) *)
}

val select : ?min_prob:float -> Prog.func -> Weight.cfg_weights -> t
(** For a zero-weight function every block forms its own trace, as in the
    paper. *)

val head : Cfg.label array -> Cfg.label
val tail : Cfg.label array -> Cfg.label
val trace_weight : Weight.cfg_weights -> Cfg.label array -> int

val is_partition : t -> int -> bool
(** Sanity: the traces partition the function's [nblocks] blocks. *)

val mean_length : ?w:Weight.cfg_weights -> t -> float
(** Mean basic blocks per trace (Table 4 [trace length]); when weights are
    given, only nonzero-weight traces are counted. *)
