(** Function inline expansion (paper step 2): call sites with high dynamic
    execution count are replaced with the callee body, turning important
    inter-function control transfers into intra-function ones. *)

open Ir

type config = {
  min_call_count : int;  (** a site must execute at least this often… *)
  min_call_fraction : float;  (** …or carry this share of all calls *)
  max_callee_insns : int;  (** never inline callees larger than this *)
  max_program_growth : float;  (** cap on total static code growth *)
  rounds : int;  (** re-profile and repeat, enabling nested inlining *)
}

val default_config : config

type report = {
  sites_inlined : int;
  insns_before : int;
  insns_after : int;
  rounds_used : int;
}

val code_increase : report -> float
(** Fractional static code-size increase — the Table 3 [code inc] column. *)

val splice : Prog.func -> Cfg.label -> Prog.func -> Prog.func
(** [splice caller site callee] inlines one call site.  Raises
    [Invalid_argument] if the block does not end in a call to [callee]. *)

val expand_once :
  config -> budget:int -> Prog.program -> Vm.Profile.t -> Prog.program * int
(** One pass in decreasing dynamic-count order; returns the number of
    sites inlined.  [budget] bounds total program instructions. *)

val expand :
  ?config:config ->
  Prog.program ->
  inputs:Vm.Io.input list ->
  Prog.program * report
(** Profile-inline-repeat until quiescence or the round limit. *)
