(** Global layout — the paper's appendix [Algorithm GlobalLayout]:
    weighted depth-first ordering of the call graph, callees visited from
    the most to the least important call pair. *)

type t = { order : int array }  (** function ids in placement order *)

val layout : int -> entry:int -> Weight.call_weights -> t
(** [layout nfuncs ~entry w] starts the DFS at [entry] and then sweeps any
    unvisited functions in index order. *)

val natural : int -> t
(** Unoptimized baseline: definition order. *)

val is_permutation : t -> int -> bool
