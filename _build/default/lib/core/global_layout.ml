(* Global layout — the paper's appendix [Algorithm GlobalLayout].

   Functions are ordered by a depth-first traversal of the weighted call
   graph that visits callees from the most to the least important call
   pair.  The effective regions of all functions are laid out in DFS
   order, followed by the non-active regions in the same order, so that
   functions executed close together in time share pages and avoid cache
   contention. *)

type t = { order : int array } (* function ids in placement order *)

let layout nfuncs ~entry (w : Weight.call_weights) : t =
  let visited = Array.make nfuncs false in
  let order = ref [] in
  let rec visit fid =
    if not visited.(fid) then begin
      visited.(fid) <- true;
      order := fid :: !order;
      let callees = w.callees fid in
      let sorted =
        List.sort
          (fun a b ->
            match compare (w.pair fid b) (w.pair fid a) with
            | 0 -> compare a b
            | c -> c)
          callees
      in
      List.iter visit sorted
    end
  in
  (* Start from the top of the call-graph hierarchy (e.g. "main"), then
     sweep any functions unreachable from it. *)
  visit entry;
  for fid = 0 to nfuncs - 1 do
    visit fid
  done;
  { order = Array.of_list (List.rev !order) }

let natural nfuncs : t = { order = Array.init nfuncs (fun i -> i) }

let is_permutation t nfuncs =
  Array.length t.order = nfuncs
  && begin
       let seen = Array.make nfuncs false in
       Array.iter (fun f -> seen.(f) <- true) t.order;
       Array.for_all (fun b -> b) seen
     end
