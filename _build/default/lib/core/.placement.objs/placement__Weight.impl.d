lib/core/weight.ml: Array Callgraph Cfg Hashtbl Ir List Option Vm
