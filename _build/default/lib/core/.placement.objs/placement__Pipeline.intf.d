lib/core/pipeline.mli: Address_map Func_layout Global_layout Inline Ir Prog Trace_select Vm
