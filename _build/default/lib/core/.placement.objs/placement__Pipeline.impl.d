lib/core/pipeline.ml: Address_map Array Func_layout Global_layout Inline Ir Prog Simplify Trace_select Vm Weight
