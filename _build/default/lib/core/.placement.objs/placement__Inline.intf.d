lib/core/inline.mli: Cfg Ir Prog Vm
