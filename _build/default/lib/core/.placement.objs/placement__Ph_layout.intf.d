lib/core/ph_layout.mli: Func_layout Global_layout Ir Prog Weight
