lib/core/trace_select.mli: Cfg Ir Prog Weight
