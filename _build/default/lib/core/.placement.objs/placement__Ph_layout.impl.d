lib/core/ph_layout.ml: Array Cfg Func_layout Global_layout Hashtbl Ir List Prog Weight
