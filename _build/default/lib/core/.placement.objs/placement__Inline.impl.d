lib/core/inline.ml: Array Callgraph Cfg Hashtbl Insn Ir List Option Prog Vm
