lib/core/func_layout.ml: Array Cfg Ir List Prog Trace_select Weight
