lib/core/weight.mli: Cfg Ir Vm
