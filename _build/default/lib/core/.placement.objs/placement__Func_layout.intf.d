lib/core/func_layout.mli: Cfg Ir Prog Trace_select Weight
