lib/core/trace_select.ml: Array Cfg Ir List Prog Weight
