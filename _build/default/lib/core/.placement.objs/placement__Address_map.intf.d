lib/core/address_map.mli: Func_layout Global_layout Ir Prog
