lib/core/address_map.ml: Array Cfg Func_layout Global_layout Insn Ir List Prog
