lib/core/global_layout.mli: Weight
