lib/core/global_layout.ml: Array List Weight
