(** Address assignment: block orders + function order -> concrete
    instruction-memory addresses, as consulted by the trace generator. *)

open Ir

type t = {
  block_addr : int array array;  (** [fid].(label) -> byte address *)
  block_words : int array array;  (** [fid].(label) -> instruction count *)
  total_bytes : int;
  effective_bytes : int;
      (** size of the packed effective (executed) region — the Table 5
          "effective static bytes" *)
}

val code_base : int

val build :
  Prog.program -> layouts:Func_layout.t array -> order:Global_layout.t -> t
(** Optimized placement: effective regions of all functions in global
    order first, then non-executed regions in the same order. *)

val natural : Prog.program -> t
(** Unoptimized baseline: definition order, original block order. *)

val is_disjoint : t -> bool
(** Sanity: blocks occupy disjoint contiguous address ranges. *)
