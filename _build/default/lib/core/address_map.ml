(* Address assignment: turns the per-function block orders and the global
   function order into concrete instruction-memory addresses.  This map is
   what the trace generator consults to expand executed blocks into
   instruction-fetch addresses. *)

open Ir

type t = {
  block_addr : int array array; (* [fid].(label) -> byte address *)
  block_words : int array array; (* [fid].(label) -> instruction count *)
  total_bytes : int;
  effective_bytes : int;
}

let code_base = 0

let words_of (p : Prog.program) =
  Array.map
    (fun (f : Prog.func) -> Array.map Cfg.instr_count f.blocks)
    p.funcs

(* Optimized placement: the effective regions of all functions in global
   order first, then the non-executed regions in the same order (paper
   step 5: only the effective part needs to fit in cache/main memory). *)
let build (p : Prog.program) ~(layouts : Func_layout.t array)
    ~(order : Global_layout.t) : t =
  let block_words = words_of p in
  let block_addr =
    Array.map (fun (f : Prog.func) -> Array.make (Array.length f.blocks) 0) p.funcs
  in
  let cursor = ref code_base in
  let place fid labels =
    Array.iter
      (fun l ->
        block_addr.(fid).(l) <- !cursor;
        cursor := !cursor + (block_words.(fid).(l) * Insn.bytes_per_insn))
      labels
  in
  Array.iter
    (fun fid ->
      let lay = layouts.(fid) in
      place fid (Array.sub lay.Func_layout.order 0 lay.Func_layout.active_blocks))
    order.Global_layout.order;
  let effective_bytes = !cursor - code_base in
  Array.iter
    (fun fid ->
      let lay = layouts.(fid) in
      let rest =
        Array.sub lay.Func_layout.order lay.Func_layout.active_blocks
          (Array.length lay.Func_layout.order - lay.Func_layout.active_blocks)
      in
      place fid rest)
    order.Global_layout.order;
  {
    block_addr;
    block_words;
    total_bytes = !cursor - code_base;
    effective_bytes;
  }

(* Unoptimized baseline: functions in definition order, blocks in original
   label order.  [effective_bytes] is reported as the full size since the
   natural layout does not separate executed from dead code. *)
let natural (p : Prog.program) : t =
  let block_words = words_of p in
  let block_addr =
    Array.map (fun (f : Prog.func) -> Array.make (Array.length f.blocks) 0) p.funcs
  in
  let cursor = ref code_base in
  Array.iteri
    (fun fid (f : Prog.func) ->
      Array.iteri
        (fun l _ ->
          block_addr.(fid).(l) <- !cursor;
          cursor := !cursor + (block_words.(fid).(l) * Insn.bytes_per_insn))
        f.blocks)
    p.funcs;
  {
    block_addr;
    block_words;
    total_bytes = !cursor - code_base;
    effective_bytes = !cursor - code_base;
  }

(* Every block occupies a disjoint, contiguous address range. *)
let is_disjoint t =
  let ranges = ref [] in
  Array.iteri
    (fun fid addrs ->
      Array.iteri
        (fun l addr ->
          ranges :=
            (addr, addr + (t.block_words.(fid).(l) * Insn.bytes_per_insn))
            :: !ranges)
        addrs)
    t.block_addr;
  let sorted = List.sort compare !ranges in
  let rec check = function
    | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && check rest
    | [ _ ] | [] -> true
  in
  check sorted
