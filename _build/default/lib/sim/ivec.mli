(** Growable int vector for multi-million-entry block traces. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val unsafe_get : t -> int -> int
val iter : (int -> unit) -> t -> unit
val to_array : t -> int array
