(* Growable int vector, used to store multi-million-entry block traces
   compactly. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 1024) () = { data = Array.make (max capacity 16) 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t idx =
  if idx < 0 || idx >= t.len then invalid_arg "Ivec.get";
  t.data.(idx)

let unsafe_get t idx = Array.unsafe_get t.data idx

let iter f t =
  for idx = 0 to t.len - 1 do
    f (Array.unsafe_get t.data idx)
  done

let to_array t = Array.sub t.data 0 t.len
