(* Control-transfer classification against a trace selection (Table 4).

   Every dynamic intra-function control transfer src -> dst is one of:
   - desirable:   dst is src's immediate successor within the same trace
                  (sequential locality fully preserved);
   - neutral:     src terminates its trace and dst starts another trace
                  (a linear ordering of traces can still capture it);
   - undesirable: the transfer enters and/or exits a trace at a
                  nonterminal basic block. *)

open Ir

type counts = {
  mutable desirable : int;
  mutable undesirable : int;
  mutable neutral : int;
}

let total c = c.desirable + c.undesirable + c.neutral

let fraction part c =
  let t = total c in
  if t = 0 then 0. else float_of_int part /. float_of_int t

type prepared = {
  trace_of : int array;
  pos_in_trace : int array; (* index of the block within its trace *)
  trace_len : int array; (* length of the block's trace *)
}

let prepare (sel : Placement.Trace_select.t) nblocks =
  let pos = Array.make nblocks 0 in
  let len = Array.make nblocks 0 in
  Array.iter
    (fun trace ->
      Array.iteri
        (fun idx l ->
          pos.(l) <- idx;
          len.(l) <- Array.length trace)
        trace)
    sel.Placement.Trace_select.traces;
  { trace_of = sel.Placement.Trace_select.trace_of; pos_in_trace = pos; trace_len = len }

let classify_arc p src dst =
  let same_trace = p.trace_of.(src) = p.trace_of.(dst) in
  if same_trace && p.pos_in_trace.(dst) = p.pos_in_trace.(src) + 1 then
    `Desirable
  else begin
    let src_is_tail = p.pos_in_trace.(src) = p.trace_len.(src) - 1 in
    let dst_is_head = p.pos_in_trace.(dst) = 0 in
    if src_is_tail && dst_is_head then `Neutral else `Undesirable
  end

(* Classify all dynamic intra-function transfers of one run. *)
let run (prog : Prog.program)
    (selections : Placement.Trace_select.t array) (input : Vm.Io.input) :
    counts =
  let prepared =
    Array.mapi
      (fun fid (f : Prog.func) ->
        prepare selections.(fid) (Array.length f.blocks))
      prog.funcs
  in
  let counts = { desirable = 0; undesirable = 0; neutral = 0 } in
  let observer =
    {
      Vm.Interp.null_observer with
      on_arc =
        (fun fid src dst ->
          match classify_arc prepared.(fid) src dst with
          | `Desirable -> counts.desirable <- counts.desirable + 1
          | `Neutral -> counts.neutral <- counts.neutral + 1
          | `Undesirable -> counts.undesirable <- counts.undesirable + 1);
    }
  in
  ignore (Vm.Interp.run ~observer prog input);
  counts
