lib/sim/driver.mli: Icache Placement Trace_gen
