lib/sim/classify.ml: Array Ir Placement Prog Vm
