lib/sim/ivec.ml: Array
