lib/sim/ivec.mli:
