lib/sim/trace_gen.mli: Cfg Ir Ivec Placement Prog Vm
