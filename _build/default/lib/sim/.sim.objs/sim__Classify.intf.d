lib/sim/classify.mli: Ir Placement Prog Vm
