lib/sim/driver.ml: Icache List Placement Trace_gen
