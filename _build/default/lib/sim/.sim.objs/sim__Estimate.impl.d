lib/sim/estimate.ml: Array Hashtbl Icache List Placement Vm
