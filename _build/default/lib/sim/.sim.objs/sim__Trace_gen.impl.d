lib/sim/trace_gen.ml: Array Insn Ir Ivec Placement Prog Vm
