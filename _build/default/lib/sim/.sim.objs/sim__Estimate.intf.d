lib/sim/estimate.mli: Icache Placement
