(* Analytical miss-ratio estimation from profile weights — the paper's
   third "continuing research" direction (section 5): "With few mapping
   conflicts, performance measurements based on weighted call graphs
   could closely approximate the trace driven simulation."

   The estimator sees only the address map, the weighted control graphs
   and the function entry counts — no dynamic trace.  Model, for a
   direct-mapped cache of memory blocks:

   - every executed (nonzero-weight) memory block costs one compulsory
     miss;
   - a memory block [m] belonging (dominantly) to function [f] and
     sharing a cache set with other executed blocks can be evicted and
     re-fetched.  Each competitor [j] can force at most one re-fetch of
     [m] per alternation, and alternation frequency is bounded by the
     competitor's activity: its own execution count when it lives in the
     same function (loop-carried thrash), or its function's entry count
     when it lives in another function (the weighted-call-graph bound —
     inter-function interleavings happen at most once per activation).
     Re-fetches of [m] are also bounded by m's own execution count.

   The estimate is conservative in both directions by design — it knows
   nothing about orderings — but with few mapping conflicts (the very
   goal of the placement algorithm) the compulsory term dominates and
   the approximation is tight, exactly the paper's observation. *)

type result = {
  compulsory : int;
  conflict : int;
  est_misses : int;
  profile_fetches : int;
  est_miss_ratio : float;
}

(* A memory block's aggregated statistics. *)
type mem_block = {
  mutable weight : int; (* executions of code in this block *)
  mutable dom_func : int; (* function contributing the most weight *)
  mutable dom_weight : int;
  mutable entries : int; (* entry count of the dominant function *)
}

let estimate (config : Icache.Config.t) (map : Placement.Address_map.t)
    ~(block_weight : int -> int -> int) ~(func_entries : int -> int) :
    result =
  let block_bytes = config.Icache.Config.block in
  let nsets = Icache.Config.nsets config in
  let blocks : (int, mem_block) Hashtbl.t = Hashtbl.create 1024 in
  let profile_fetches = ref 0 in
  Array.iteri
    (fun fid addrs ->
      Array.iteri
        (fun label addr ->
          let w = block_weight fid label in
          if w > 0 then begin
            let words = map.Placement.Address_map.block_words.(fid).(label) in
            profile_fetches := !profile_fetches + (w * words);
            let bytes = words * 4 in
            let first = addr / block_bytes in
            let last = (addr + bytes - 1) / block_bytes in
            for m = first to last do
              let mb =
                match Hashtbl.find_opt blocks m with
                | Some mb -> mb
                | None ->
                  let mb =
                    { weight = 0; dom_func = fid; dom_weight = 0; entries = 0 }
                  in
                  Hashtbl.add blocks m mb;
                  mb
              in
              mb.weight <- mb.weight + w;
              if w > mb.dom_weight then begin
                mb.dom_weight <- w;
                mb.dom_func <- fid;
                mb.entries <- func_entries fid
              end
            done
          end)
        addrs)
    map.Placement.Address_map.block_addr;
  (* Group by cache set. *)
  let sets = Array.make nsets [] in
  Hashtbl.iter
    (fun m mb -> sets.(m mod nsets) <- (m, mb) :: sets.(m mod nsets))
    blocks;
  let compulsory = Hashtbl.length blocks in
  let conflict = ref 0 in
  Array.iter
    (fun frags ->
      match frags with
      | [] | [ _ ] -> ()
      | frags ->
        List.iter
          (fun (_, mb) ->
            (* competitor pressure on this fragment *)
            let pressure =
              List.fold_left
                (fun acc (_, other) ->
                  if other == mb then acc
                  else if other.dom_func = mb.dom_func then
                    acc + other.weight
                  else acc + other.entries)
                0 frags
            in
            conflict := !conflict + min mb.weight pressure)
          frags)
    sets;
  let est_misses = compulsory + !conflict in
  {
    compulsory;
    conflict = !conflict;
    est_misses;
    profile_fetches = !profile_fetches;
    est_miss_ratio =
      (if !profile_fetches = 0 then 0.
       else float_of_int est_misses /. float_of_int !profile_fetches);
  }

(* Convenience: estimate from a pipeline's own profile. *)
let of_pipeline config (pl : Placement.Pipeline.t) =
  let profile = pl.Placement.Pipeline.profile in
  estimate config pl.Placement.Pipeline.optimized
    ~block_weight:(Vm.Profile.block_weight profile)
    ~func_entries:(Vm.Profile.func_weight profile)
