(** Control-transfer classification against a trace selection — the
    Table 4 [neutral]/[undesirable]/[desirable] columns. *)

open Ir

type counts = {
  mutable desirable : int;
      (** transfers to the block's successor within its trace *)
  mutable undesirable : int;
      (** transfers entering and/or exiting a trace mid-body *)
  mutable neutral : int;
      (** transfers from the end of a trace to the start of a trace *)
}

val total : counts -> int
val fraction : int -> counts -> float

val run :
  Prog.program ->
  Placement.Trace_select.t array ->
  Vm.Io.input ->
  counts
(** Execute the program on the input, classifying every dynamic
    intra-function control transfer. *)
