(* Trace-driven simulation driver.

   Replays a recorded block trace, expanded through an address map, into
   one cache configuration, tracking the paper's metrics:

   - miss ratio and memory-traffic ratio (from the cache simulator);
   - avg.exec: mean consecutive instructions used from a cache miss to a
     taken branch or the next miss (Table 8);
   - avg.fetch: mean 4-byte entities transferred per miss (Table 8);
   - effective access time under the three refill timing policies. *)

type result = {
  config : Icache.Config.t;
  accesses : int;
  misses : int;
  words_fetched : int;
  miss_ratio : float;
  traffic_ratio : float;
  avg_fetch_words : float;
  avg_exec_insns : float;
  eat_blocking : float; (* effective access time, cycles per fetch *)
  eat_streaming : float;
  eat_streaming_partial : float;
}

let simulate ?(timing_model = Icache.Timing.default_model)
    (config : Icache.Config.t) (map : Placement.Address_map.t)
    (trace : Trace_gen.t) : result =
  let cache = Icache.Cache.create config in
  let words_per_block = Icache.Config.words_per_block config in
  let timers =
    List.map
      (fun policy -> Icache.Timing.create ~model:timing_model policy)
      [
        Icache.Timing.Blocking;
        Icache.Timing.Streaming;
        Icache.Timing.Streaming_partial;
      ]
  in
  (* Run bookkeeping: a "run" starts at a miss and extends over the
     consecutive sequential fetches that follow it. *)
  let prev_addr = ref min_int in
  let run_open = ref false in
  let run_len = ref 0 in
  let run_word = ref 0 in
  let run_fetched = ref 0 in
  let runs_sum = ref 0 in
  let runs_count = ref 0 in
  let close_run () =
    if !run_open then begin
      runs_sum := !runs_sum + !run_len;
      incr runs_count;
      List.iter
        (fun t ->
          Icache.Timing.on_miss t ~words_per_block ~word_in_block:!run_word
            ~run_words:(!run_len - 1) ~fetched_words:!run_fetched)
        timers;
      run_open := false
    end
  in
  let fetch addr =
    let outcome = Icache.Cache.access cache addr in
    let sequential = addr = !prev_addr + Icache.Config.word_bytes in
    prev_addr := addr;
    if outcome.Icache.Cache.miss then begin
      close_run ();
      run_open := true;
      run_len := 1;
      run_word := outcome.Icache.Cache.word_in_block;
      run_fetched := outcome.Icache.Cache.fetched_words
    end
    else begin
      List.iter Icache.Timing.on_hit timers;
      if !run_open then begin
        if sequential then incr run_len else close_run ()
      end
    end
  in
  Trace_gen.iter_fetches map trace ~fetch;
  close_run ();
  let eat = function
    | [ b; s; p ] ->
      ( Icache.Timing.effective_access_time b,
        Icache.Timing.effective_access_time s,
        Icache.Timing.effective_access_time p )
    | _ -> assert false
  in
  let eat_blocking, eat_streaming, eat_streaming_partial = eat timers in
  {
    config;
    accesses = Icache.Cache.accesses cache;
    misses = Icache.Cache.misses cache;
    words_fetched = Icache.Cache.words_fetched cache;
    miss_ratio = Icache.Cache.miss_ratio cache;
    traffic_ratio = Icache.Cache.traffic_ratio cache;
    avg_fetch_words = Icache.Cache.avg_fetch_words cache;
    avg_exec_insns =
      (if !runs_count = 0 then 0.
       else float_of_int !runs_sum /. float_of_int !runs_count);
    eat_blocking;
    eat_streaming;
    eat_streaming_partial;
  }

let simulate_all ?timing_model configs map trace =
  List.map (fun config -> simulate ?timing_model config map trace) configs
