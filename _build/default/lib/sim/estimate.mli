(** Analytical miss-ratio estimation from profile weights alone (no
    dynamic trace) — the paper's §5 proposal that weighted-call-graph
    measurements can approximate trace-driven simulation when mapping
    conflicts are few.

    Model: one compulsory miss per executed memory block, plus a conflict
    term bounding re-fetches by competitor activity (same-function
    competitors by their execution counts, other functions by their entry
    counts — the weighted-call-graph bound). *)

type result = {
  compulsory : int;  (** executed memory blocks *)
  conflict : int;  (** estimated re-fetches from set contention *)
  est_misses : int;
  profile_fetches : int;  (** instruction fetches implied by the weights *)
  est_miss_ratio : float;
}

val estimate :
  Icache.Config.t ->
  Placement.Address_map.t ->
  block_weight:(int -> int -> int) ->
  func_entries:(int -> int) ->
  result
(** Direct-mapped geometry is assumed (ways are ignored). *)

val of_pipeline : Icache.Config.t -> Placement.Pipeline.t -> result
(** Estimate for the pipeline's optimized layout from its own profile. *)
