lib/paging/page_sim.ml: Hashtbl
