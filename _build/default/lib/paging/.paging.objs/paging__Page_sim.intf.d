lib/paging/page_sim.mli:
