(* compress: LZW with 12-bit codes, like UNIX compress/uncompress.

   Mode is selected by argument 0: 0 compresses stream 0 onto the output
   (hash table mapping (prefix code, next byte) -> dictionary code,
   emitting 16-bit big-endian codes); 1 decompresses a code stream back
   to bytes (prefix/last-char arrays plus the classic string-reversal
   stack, including the KwKwK corner case).  Having both directions in
   one binary gives the benchmark a large never-executed region when only
   one direction is traced, as with the real uncompress-linked binary. *)

open Ir.Ast.Dsl

let table_size = 8192 (* compressor hash slots, power of two *)
let max_code = 4096 (* 12-bit dictionary *)

(* Linear-probing lookup: returns the slot holding [key] or the first
   empty slot.  Keys are stored biased by +1 so 0 means empty. *)
let ht_lookup =
  func "ht_lookup" [ "keys"; "key" ]
    [
      decl "h" ((v "key" *% i 2654435761) &% i 0x7fffffff);
      decl "slot" (v "h" &% i (table_size - 1));
      decl "stored" (ld32 (v "keys" +% (v "slot" *% i 4)));
      while_ ((v "stored" <>% i 0) &&% (v "stored" <>% (v "key" +% i 1)))
        [
          set "slot" ((v "slot" +% i 1) &% i (table_size - 1));
          set "stored" (ld32 (v "keys" +% (v "slot" *% i 4)));
        ];
      ret (v "slot");
    ]

(* Emit one dictionary code as two bytes, big-endian. *)
let emit_code =
  func "emit_code" [ "code" ]
    [
      putc (i 0) (v "code" >>% i 8);
      putc (i 0) (v "code" &% i 255);
      ret0;
    ]

let do_compress =
  func "do_compress" []
    [
      decl "keys" (alloc (i (table_size * 4)));
      decl "codes" (alloc (i (table_size * 4)));
      decl "next_code" (i 256);
      decl "emitted" (i 0);
      decl "prefix" (getc (i 0));
      when_ (v "prefix" <% i 0) [ ret (i 0) ];
      decl "c" (getc (i 0));
      while_ (v "c" >=% i 0)
        [
          decl "key" ((v "prefix" *% i 256) +% v "c");
          decl "slot" (call "ht_lookup" [ v "keys"; v "key" ]);
          decl "addr" (v "keys" +% (v "slot" *% i 4));
          if_
            (ld32 (v "addr") <>% i 0)
            [ set "prefix" (ld32 (v "codes" +% (v "slot" *% i 4))) ]
            [
              expr (call "emit_code" [ v "prefix" ]);
              incr_ "emitted";
              when_ (v "next_code" <% i max_code)
                [
                  st32 (v "addr") (v "key" +% i 1);
                  st32 (v "codes" +% (v "slot" *% i 4)) (v "next_code");
                  incr_ "next_code";
                ];
              set "prefix" (v "c");
            ];
          set "c" (getc (i 0));
        ];
      expr (call "emit_code" [ v "prefix" ]);
      incr_ "emitted";
      ret (v "emitted");
    ]

(* ---------- decompression ---------- *)

(* Read the next 16-bit code, -1 at end of input. *)
let read_code =
  func "read_code" []
    [
      decl "hi" (getc (i 0));
      when_ (v "hi" <% i 0) [ ret (i 0 -% i 1) ];
      decl "lo" (getc (i 0));
      when_ (v "lo" <% i 0) [ ret (i 0 -% i 1) ];
      ret ((v "hi" *% i 256) +% v "lo");
    ]

(* Emit the string for [code] using the prefix chain and the reversal
   stack; returns the string's first byte. *)
let emit_entry =
  func "emit_entry" [ "code"; "prefix_tbl"; "last_tbl"; "stack" ]
    [
      decl "k" (i 0);
      while_ (v "code" >=% i 256)
        [
          st8 (v "stack" +% v "k") (ld8 (v "last_tbl" +% v "code"));
          incr_ "k";
          set "code" (ld32 (v "prefix_tbl" +% (v "code" *% i 4)));
        ];
      putc (i 0) (v "code");
      while_ (v "k" >% i 0)
        [ decr_ "k"; putc (i 0) (ld8 (v "stack" +% v "k")) ];
      ret (v "code");
    ]

let do_decompress =
  func "do_decompress" []
    [
      decl "prefix_tbl" (alloc (i (max_code * 4)));
      decl "last_tbl" (alloc (i max_code));
      decl "stack" (alloc (i max_code));
      decl "next_code" (i 256);
      decl "prev" (call "read_code" []);
      when_ (v "prev" <% i 0) [ ret (i 0) ];
      when_ (v "prev" >=% i 256) [ ret (i 0 -% i 1) ]; (* corrupt stream *)
      putc (i 0) (v "prev");
      decl "ndecoded" (i 1);
      decl "code" (call "read_code" []);
      while_ (v "code" >=% i 0)
        [
          decl "first" (i 0);
          if_ (v "code" <% v "next_code")
            [
              set "first"
                (call "emit_entry"
                   [ v "code"; v "prefix_tbl"; v "last_tbl"; v "stack" ]);
            ]
            [
              (* KwKwK: the code being defined right now *)
              set "first"
                (call "emit_entry"
                   [ v "prev"; v "prefix_tbl"; v "last_tbl"; v "stack" ]);
              putc (i 0) (v "first");
            ];
          when_ (v "next_code" <% i max_code)
            [
              st32 (v "prefix_tbl" +% (v "next_code" *% i 4)) (v "prev");
              st8 (v "last_tbl" +% v "next_code") (v "first");
              incr_ "next_code";
            ];
          set "prev" (v "code");
          incr_ "ndecoded";
          set "code" (call "read_code" []);
        ];
      ret (v "ndecoded");
    ]

let main =
  func "main" []
    [
      if_ (arg 0 ==% i 1)
        [ ret (call "do_decompress" []) ]
        [ ret (call "do_compress" []) ];
    ]

let benchmark =
  Bench.make ~name:"compress"
    ~description:"LZW compression/decompression of sources and text"
    ~ast:(fun () ->
      Libc.link ~entry:"main"
        [ ht_lookup; emit_code; do_compress; read_code; emit_entry;
          do_decompress; main ])
    ~profile_inputs:(fun () ->
      [
        Vm.Io.input ~label:"c source" [ Inputs.c_source ~seed:11 ~lines:600 ];
        Vm.Io.input ~label:"c source" [ Inputs.c_source ~seed:12 ~lines:900 ];
        Vm.Io.input ~label:"repetitive text"
          [ Inputs.compressible ~seed:13 ~bytes:25_000 ];
        Vm.Io.input ~label:"decompress codes" ~args:[ 1 ]
          [ Inputs.lzw_compress (Inputs.compressible ~seed:14 ~bytes:30_000) ];
        Vm.Io.input ~label:"prose text" [ Inputs.text ~seed:15 ~bytes:20_000 ];
        Vm.Io.input ~label:"c source" [ Inputs.c_source ~seed:16 ~lines:400 ];
        Vm.Io.input ~label:"decompress codes" ~args:[ 1 ]
          [ Inputs.lzw_compress (Inputs.text ~seed:17 ~bytes:18_000) ];
        Vm.Io.input ~label:"prose text" [ Inputs.text ~seed:18 ~bytes:30_000 ];
      ])
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"repetitive 120KB"
        [ Inputs.compressible ~seed:200 ~bytes:120_000 ])
