(* Synthetic input generators.

   These stand in for the paper's real inputs (C sources, text files,
   makefiles, grammars): each generator produces byte streams with the
   statistical structure the corresponding workload's control flow feeds
   on — lines and words for text tools, identifiers/keywords/comments for
   the C-source consumers, rules for make.  All generators are seeded and
   deterministic. *)

let buf_add = Buffer.add_string

(* Plain prose-like text: lines of lowercase words. *)
let text ~seed ~bytes =
  let rng = Rng.create seed in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    let words = Rng.range rng 3 12 in
    for w = 0 to words - 1 do
      if w > 0 then Buffer.add_char buf ' ';
      buf_add buf (Rng.word rng 2 9)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.sub buf 0 bytes

(* A copy of [base] with each byte independently corrupted with probability
   [noise] per mille — for cmp's similar/dissimilar file pairs. *)
let mutate ~seed ~noise_per_mille base =
  let rng = Rng.create seed in
  String.map
    (fun c ->
      if Rng.int rng 1000 < noise_per_mille then Rng.lowercase_letter rng
      else c)
    base

let c_keywords =
  [| "if"; "else"; "while"; "for"; "return"; "int"; "char"; "break";
     "continue"; "static"; "struct"; "switch"; "case"; "default"; "do" |]

(* C-like source text: declarations, control statements, expressions,
   comments, and occasional preprocessor lines.  Feeds cccp, lex, wc and
   compress. *)
let c_source ~seed ~lines =
  let rng = Rng.create seed in
  let buf = Buffer.create (lines * 32) in
  let ident () =
    let base = Rng.word rng 3 8 in
    if Rng.int rng 4 = 0 then base ^ string_of_int (Rng.int rng 100) else base
  in
  let expression () =
    let ops = [| " + "; " - "; " * "; " / "; " < "; " == " |] in
    let atom () =
      if Rng.bool rng then ident () else string_of_int (Rng.int rng 1000)
    in
    let n = Rng.range rng 1 3 in
    let b = Buffer.create 32 in
    buf_add b (atom ());
    for _ = 1 to n do
      buf_add b (Rng.pick rng ops);
      buf_add b (atom ())
    done;
    Buffer.contents b
  in
  for _ = 1 to lines do
    (match Rng.int rng 12 with
    | 0 -> buf_add buf (Printf.sprintf "#define %s %d" (String.uppercase_ascii (ident ())) (Rng.int rng 256))
    | 1 -> buf_add buf (Printf.sprintf "/* %s %s */" (ident ()) (ident ()))
    | 2 -> buf_add buf (Printf.sprintf "int %s = %s;" (ident ()) (expression ()))
    | 3 | 4 ->
      buf_add buf
        (Printf.sprintf "  %s (%s) {" (Rng.pick rng c_keywords) (expression ()))
    | 5 -> buf_add buf "  }"
    | 6 -> buf_add buf (Printf.sprintf "  return %s;" (expression ()))
    | 7 -> buf_add buf (Printf.sprintf "char %s[%d];" (ident ()) (Rng.int rng 128))
    | _ -> buf_add buf (Printf.sprintf "  %s = %s;" (ident ()) (expression ())));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* C source with heavier preprocessor usage: #define/#undef directives,
   #ifdef/#ifndef/#else/#endif blocks, and macro references in the
   ordinary lines — the diet of the cccp workload. *)
let cpp_source ~seed ~lines =
  let rng = Rng.create seed in
  let buf = Buffer.create (lines * 32) in
  let macros = ref [] in
  let nmacros = ref 0 in
  let fresh_macro () =
    let m = Printf.sprintf "M%s%d" (String.uppercase_ascii (Rng.word rng 2 5)) !nmacros in
    incr nmacros;
    macros := m :: !macros;
    if List.length !macros > 24 then
      macros := List.filteri (fun idx _ -> idx < 24) !macros;
    m
  in
  let some_macro () =
    match !macros with [] -> fresh_macro () | l -> Rng.pick_list rng l
  in
  let depth = ref 0 in
  for _ = 1 to lines do
    (match Rng.int rng 14 with
    | 0 | 1 ->
      buf_add buf (Printf.sprintf "#define %s %d" (fresh_macro ()) (Rng.int rng 4096))
    | 2 -> buf_add buf (Printf.sprintf "#undef %s" (some_macro ()))
    | 3 when !depth < 3 ->
      incr depth;
      buf_add buf
        (Printf.sprintf "#%s %s"
           (if Rng.bool rng then "ifdef" else "ifndef")
           (some_macro ()))
    | 4 when !depth > 0 -> buf_add buf "#else"
    | 5 when !depth > 0 ->
      decr depth;
      buf_add buf "#endif"
    | _ ->
      let n = Rng.range rng 2 6 in
      buf_add buf "  x =";
      for _ = 1 to n do
        Buffer.add_char buf ' ';
        if Rng.int rng 3 = 0 then buf_add buf (some_macro ())
        else buf_add buf (Rng.word rng 2 7);
        buf_add buf " +"
      done;
      buf_add buf " 1;");
    Buffer.add_char buf '\n'
  done;
  for _ = 1 to !depth do
    buf_add buf "#endif\n"
  done;
  Buffer.contents buf

(* Full cccp diet: a source heavy in directives plus an include library
   (stream 1) of "%% name"-delimited sections.  Exercises #include,
   #if/#elif expressions over macros and defined(), comments spanning
   lines, string literals, and backslash splicing. *)
let cpp_source_with_includes ~seed ~lines =
  let rng = Rng.create seed in
  let include_names = [| "config"; "types"; "limits"; "proto"; "util" |] in
  (* The include library: each section defines a few macros and carries
     some substitutable text; later sections may include earlier ones. *)
  let library = Buffer.create 2048 in
  Array.iteri
    (fun idx name ->
      buf_add library (Printf.sprintf "%%%% %s\n" name);
      buf_add library
        (Printf.sprintf "#ifndef GUARD_%s\n#define GUARD_%s 1\n"
           (String.uppercase_ascii name)
           (String.uppercase_ascii name));
      if idx > 0 && Rng.bool rng then
        buf_add library
          (Printf.sprintf "#include \"%s\"\n" include_names.(Rng.int rng idx));
      for k = 0 to 2 + Rng.int rng 4 do
        buf_add library
          (Printf.sprintf "#define %s_%s%d %d\n"
             (String.uppercase_ascii name)
             (String.uppercase_ascii (Rng.word rng 2 4))
             k
             (Rng.int rng 4096))
      done;
      buf_add library
        (Printf.sprintf "extern int %s_init; /* from %s */\n" name name);
      buf_add library "#endif\n")
    include_names;
  let includes = Buffer.contents library in
  (* Macro names defined so far in the source, for #if/#undef/use. *)
  let macros = ref [ "__STDC__"; "__IMPACT__" ] in
  let nmacros = ref 0 in
  let fresh_macro () =
    let m =
      Printf.sprintf "M%s%d" (String.uppercase_ascii (Rng.word rng 2 5)) !nmacros
    in
    incr nmacros;
    macros := m :: !macros;
    if List.length !macros > 32 then
      macros := List.filteri (fun idx _ -> idx < 32) !macros;
    m
  in
  let some_macro () =
    match !macros with [] -> fresh_macro () | l -> Rng.pick_list rng l
  in
  let condition () =
    match Rng.int rng 5 with
    | 0 -> Printf.sprintf "defined(%s)" (some_macro ())
    | 1 -> Printf.sprintf "!defined %s" (some_macro ())
    | 2 -> Printf.sprintf "%s > %d" (some_macro ()) (Rng.int rng 2048)
    | 3 ->
      Printf.sprintf "defined(%s) && %s + %d < %d" (some_macro ())
        (some_macro ()) (Rng.int rng 100) (Rng.int rng 4096)
    | _ ->
      Printf.sprintf "(%s * 2 + 1) %% %d != %d" (some_macro ())
        (1 + Rng.int rng 7) (Rng.int rng 7)
  in
  let buf = Buffer.create (lines * 36) in
  let depth = ref 0 in
  let arm_open = ref [] in (* per level: may this level still take #elif? *)
  for _ = 1 to lines do
    (match Rng.int rng 20 with
    | 0 | 1 ->
      buf_add buf
        (Printf.sprintf "#define %s %d" (fresh_macro ()) (Rng.int rng 4096))
    | 2 ->
      buf_add buf
        (Printf.sprintf "#define %s (%s + %d)" (fresh_macro ()) (some_macro ())
           (Rng.int rng 64))
    | 3 -> buf_add buf (Printf.sprintf "#undef %s" (some_macro ()))
    | 4 when !depth < 4 ->
      incr depth;
      arm_open := true :: !arm_open;
      buf_add buf (Printf.sprintf "#if %s" (condition ()))
    | 5 when !depth < 4 ->
      incr depth;
      arm_open := true :: !arm_open;
      buf_add buf
        (Printf.sprintf "#%s %s"
           (if Rng.bool rng then "ifdef" else "ifndef")
           (some_macro ()))
    | 6 when !depth > 0 && List.hd !arm_open ->
      if Rng.bool rng then
        buf_add buf (Printf.sprintf "#elif %s" (condition ()))
      else begin
        arm_open := false :: List.tl !arm_open;
        buf_add buf "#else"
      end
    | 7 when !depth > 0 ->
      decr depth;
      arm_open := List.tl !arm_open;
      buf_add buf "#endif"
    | 8 ->
      buf_add buf
        (Printf.sprintf "#include \"%s\"" (Rng.pick rng include_names))
    | 9 ->
      buf_add buf
        (Printf.sprintf "/* %s %s" (Rng.word rng 3 7) (Rng.word rng 3 7));
      if Rng.bool rng then begin
        (* comment spanning two lines *)
        Buffer.add_char buf '\n';
        buf_add buf (Printf.sprintf "   %s */" (Rng.word rng 3 7))
      end
      else buf_add buf " */"
    | 10 ->
      buf_add buf
        (Printf.sprintf "  str = \"%s %s\"; /* literal */" (some_macro ())
           (Rng.word rng 2 6))
    | 11 ->
      (* backslash continuation *)
      buf_add buf
        (Printf.sprintf "  total = %s + \\\n      %s;" (some_macro ())
           (Rng.word rng 2 6))
    | _ ->
      let n = Rng.range rng 2 6 in
      buf_add buf "  x =";
      for _ = 1 to n do
        Buffer.add_char buf ' ';
        if Rng.int rng 3 = 0 then buf_add buf (some_macro ())
        else buf_add buf (Rng.word rng 2 7);
        buf_add buf " +"
      done;
      buf_add buf " 1;");
    Buffer.add_char buf '\n'
  done;
  for _ = 1 to !depth do
    buf_add buf "#endif\n"
  done;
  (Buffer.contents buf, includes)

(* Makefile-like rule set: variable definitions, targets, dependency
   lists, command lines using $(VAR), $@ and $<.  Dependencies only point
   at later-declared targets (or leaf "files"), keeping the graph acyclic
   the way real makefiles are. *)
let makefile ~seed ~targets =
  let rng = Rng.create seed in
  let buf = Buffer.create (targets * 56) in
  buf_add buf "CC = cc\n";
  buf_add buf "LD = $(CC) -link\n";
  buf_add buf (Printf.sprintf "CFLAGS = -O%d -w\n" (Rng.int rng 3));
  buf_add buf "ALLFLAGS = $(CFLAGS) -q\n";
  let names =
    Array.init targets (fun idx -> Printf.sprintf "t%d_%s" idx (Rng.word rng 3 6))
  in
  for idx = 0 to targets - 1 do
    buf_add buf names.(idx);
    Buffer.add_char buf ':';
    let ndeps = Rng.int rng (min 4 (targets - idx)) in
    for _ = 1 to ndeps do
      Buffer.add_char buf ' ';
      let dep = Rng.range rng (idx + 1) (targets - 1 + 4) in
      if dep < targets then buf_add buf names.(dep)
      else buf_add buf (Printf.sprintf "leaf%d.c" (dep - targets))
    done;
    Buffer.add_char buf '\n';
    let ncmds = Rng.range rng 1 2 in
    for k = 1 to ncmds do
      Buffer.add_char buf '\t';
      (match Rng.int rng 3 with
      | 0 -> buf_add buf "$(CC) $(ALLFLAGS) -c $< -o $@"
      | 1 when k = ncmds -> buf_add buf "$(LD) $@ -first $<"
      | _ ->
        buf_add buf
          (Printf.sprintf "$(CC) $(CFLAGS) -c %s.c -o %s.o" (Rng.word rng 3 6)
             (Rng.word rng 3 6)));
      Buffer.add_char buf '\n'
    done
  done;
  Buffer.contents buf

(* Arithmetic expression statements for the yacc workload's grammar:
   expr ';' sequences with nesting. *)
let expressions ~seed ~count =
  let rng = Rng.create seed in
  let buf = Buffer.create (count * 24) in
  let rec expr depth =
    if depth = 0 || Rng.int rng 3 = 0 then
      buf_add buf (string_of_int (Rng.range rng 1 999))
    else begin
      let parens = Rng.int rng 3 = 0 in
      if parens then Buffer.add_char buf '(';
      expr (depth - 1);
      buf_add buf (Rng.pick rng [| "+"; "-"; "*"; "/" |]);
      expr (depth - 1);
      if parens then Buffer.add_char buf ')'
    end
  in
  for _ = 1 to count do
    expr (Rng.range rng 1 4);
    buf_add buf ";\n"
  done;
  Buffer.contents buf

(* Statements for the yacc workload's richer grammar: a mix of assignments
   and expression statements over variables, numbers, parentheses and
   unary minus.  Variables are used only after they have been assigned. *)
let statements ~seed ~count =
  let rng = Rng.create seed in
  let buf = Buffer.create (count * 24) in
  let vars = ref [] in
  let binops =
    [| "+"; "+"; "-"; "-"; "*"; "*"; "/"; "%"; "<<"; ">>"; "&"; "|"; "^";
       "=="; "!="; "<"; "<="; ">"; ">="; "&&"; "||" |]
  in
  let rec expr depth =
    if depth = 0 || Rng.int rng 3 = 0 then begin
      match !vars with
      | v :: _ when Rng.int rng 3 = 0 ->
        let v = if Rng.bool rng then v else Rng.pick_list rng !vars in
        buf_add buf v
      | _ -> buf_add buf (string_of_int (Rng.range rng 1 999))
    end
    else begin
      (match Rng.int rng 8 with
      | 0 ->
        buf_add buf (Rng.pick rng [| "-"; "!"; "~" |]);
        Buffer.add_char buf '(';
        expr (depth - 1);
        Buffer.add_char buf ')'
      | 1 | 2 ->
        Buffer.add_char buf '(';
        expr (depth - 1);
        buf_add buf (Rng.pick rng binops);
        expr (depth - 1);
        Buffer.add_char buf ')'
      | _ ->
        expr (depth - 1);
        buf_add buf (Rng.pick rng binops);
        expr (depth - 1))
    end
  in
  (* A bounded name pool keeps the workload's symbol table from
     saturating no matter how many statements are generated. *)
  let pool =
    Array.init 96 (fun k -> Printf.sprintf "%s%d" (Rng.word rng 1 3) k)
  in
  for _ = 0 to count - 1 do
    if Rng.int rng 5 < 2 then begin
      (* assignment *)
      let name =
        if !vars <> [] && Rng.bool rng then Rng.pick_list rng !vars
        else begin
          let n = Rng.pick rng pool in
          if not (List.mem n !vars) then vars := n :: !vars;
          n
        end
      in
      buf_add buf name;
      Buffer.add_char buf '=';
      expr (Rng.range rng 1 3)
    end
    else expr (Rng.range rng 1 4);
    buf_add buf ";\n"
  done;
  Buffer.contents buf

(* Newline-separated member names for the tar workload. *)
let name_list ~seed ~count =
  let rng = Rng.create seed in
  let buf = Buffer.create (count * 12) in
  for idx = 0 to count - 1 do
    buf_add buf (Printf.sprintf "%s%d.txt\n" (Rng.word rng 3 8) idx)
  done;
  Buffer.contents buf

(* tar archive description: a manifest of "name size" lines plus the
   concatenated member contents of exactly the promised sizes. *)
let tar_manifest ~seed ~members =
  let rng = Rng.create seed in
  let manifest = Buffer.create (members * 20) in
  let content = Buffer.create (members * 800) in
  for idx = 0 to members - 1 do
    let size = Rng.range rng 120 2200 in
    buf_add manifest (Printf.sprintf "%s%d.txt %d\n" (Rng.word rng 3 8) idx size);
    let chunk = text ~seed:(seed + (idx * 31) + 1) ~bytes:size in
    buf_add content chunk
  done;
  (Buffer.contents manifest, Buffer.contents content)

(* The DSL library's string hash (djb2 with a 31-bit mask), needed to
   mirror tar's pseudo mtimes. *)
let dsl_hash_string s m =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x7fffffff) s;
  !h mod m

(* OCaml-side USTAR-style archive builder mirroring the tar workload's
   create mode byte for byte; generates inputs for its list/extract
   modes.  Returns the archive and the member specs. *)
let tar_archive ~seed ~members =
  let manifest, content = tar_manifest ~seed ~members in
  let specs =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ name; size ] -> Some (name, int_of_string size)
        | _ -> None)
      (String.split_on_char '\n' manifest)
  in
  let out = Buffer.create (members * 1024) in
  let content_pos = ref 0 in
  List.iter
    (fun (name, size) ->
      let hdr = Bytes.make 512 '\000' in
      let put_string off s = Bytes.blit_string s 0 hdr off (String.length s) in
      let put_octal off width value =
        let v = ref value in
        for k = width - 1 downto 0 do
          Bytes.set hdr (off + k) (Char.chr ((!v mod 8) + Char.code '0'));
          v := !v / 8
        done
      in
      put_string 0 name;
      put_string 100 "0000644";
      put_octal 124 11 size;
      put_octal 136 11 (dsl_hash_string name 100000);
      Bytes.set hdr 156 '0';
      put_string 257 "ustar";
      Bytes.fill hdr 148 8 ' ';
      let sum = ref 0 in
      Bytes.iter (fun c -> sum := !sum + Char.code c) hdr;
      put_octal 148 6 !sum;
      Bytes.set hdr 154 '\000';
      Bytes.set hdr 155 ' ';
      Buffer.add_bytes out hdr;
      Buffer.add_string out (String.sub content !content_pos size);
      content_pos := !content_pos + size;
      let pad = (512 - (size mod 512)) mod 512 in
      Buffer.add_string out (String.make pad '\000'))
    specs;
  Buffer.add_string out (String.make 1024 '\000');
  (Buffer.contents out, specs)

(* OCaml-side LZW compressor mirroring the compress workload's encoding:
   12-bit dictionary, 16-bit big-endian codes.  Used to generate inputs
   for the workload's decompression mode. *)
let lzw_compress input =
  let dict = Hashtbl.create 4096 in
  let next = ref 256 in
  let out = Buffer.create (String.length input) in
  let emit code =
    Buffer.add_char out (Char.chr (code lsr 8));
    Buffer.add_char out (Char.chr (code land 0xff))
  in
  if String.length input > 0 then begin
    let prefix = ref (Char.code input.[0]) in
    for k = 1 to String.length input - 1 do
      let c = Char.code input.[k] in
      let key = (!prefix * 256) + c in
      match Hashtbl.find_opt dict key with
      | Some code -> prefix := code
      | None ->
        emit !prefix;
        if !next < 4096 then begin
          Hashtbl.add dict key !next;
          incr next
        end;
        prefix := c
    done;
    emit !prefix
  end;
  Buffer.contents out

(* Binary-ish payload with repetition, so compress finds structure. *)
let compressible ~seed ~bytes =
  let rng = Rng.create seed in
  let vocab = Array.init 32 (fun _ -> Rng.word rng 2 6) in
  let buf = Buffer.create bytes in
  while Buffer.length buf < bytes do
    buf_add buf (Rng.pick rng vocab);
    if Rng.int rng 5 = 0 then Buffer.add_char buf '\n' else Buffer.add_char buf ' '
  done;
  Buffer.sub buf 0 bytes
