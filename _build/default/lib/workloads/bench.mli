(** Common shape of a benchmark: DSL program + profiling inputs + one
    held-out trace input. *)

type t = {
  name : string;
  description : string;  (** Table 2 "input description" *)
  ast : Ir.Ast.program Lazy.t;
  program : Ir.Prog.program Lazy.t;
  profile_inputs : Vm.Io.input list Lazy.t;
  trace_input : Vm.Io.input Lazy.t;
}

val make :
  name:string ->
  description:string ->
  ast:(unit -> Ir.Ast.program) ->
  profile_inputs:(unit -> Vm.Io.input list) ->
  trace_input:(unit -> Vm.Io.input) ->
  t

val ast : t -> Ir.Ast.program
val program : t -> Ir.Prog.program
val profile_inputs : t -> Vm.Io.input list
val trace_input : t -> Vm.Io.input
val source_lines : t -> int
val runs : t -> int
