(* tee: copy the input stream to two output streams, like UNIX tee.
   Pure system-call loop with no library calls — the paper's special case
   where inline expansion finds nothing to do (Table 3: 0% / 0%). *)

open Ir.Ast.Dsl

let main =
  func "main" []
    [
      decl "bytes" (i 0);
      decl "c" (getc (i 0));
      while_ (v "c" >=% i 0)
        [
          putc (i 1) (v "c");
          putc (i 2) (v "c");
          incr_ "bytes";
          set "c" (getc (i 0));
        ];
      ret (v "bytes");
    ]

let benchmark =
  Bench.make ~name:"tee"
    ~description:"prose-like text files (5-60 KB)"
    ~ast:(fun () -> Libc.link ~entry:"main" [ main ])
    ~profile_inputs:(fun () ->
      List.map
        (fun seed ->
          Vm.Io.input ~label:"text"
            [ Inputs.text ~seed:(seed * 3) ~bytes:(5_000 + (seed * 1500)) ])
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"text 60KB" [ Inputs.text ~seed:123 ~bytes:60_000 ])
