(* cmp: byte-by-byte comparison of two input streams, like UNIX cmp.
   Default mode reports the first difference (offset and line) and the
   total number of differing bytes; with argument 0 = 1 (like cmp -l) it
   prints every differing position with both byte values (in octal, as
   cmp does), up to a reporting cap. *)

open Ir.Ast.Dsl

let verbose_cap = 256

(* Print a byte as three octal digits. *)
let put_octal3 =
  func "put_octal3" [ "b" ]
    [
      putc (i 0) ((v "b" >>% i 6) +% chr '0');
      putc (i 0) (((v "b" >>% i 3) &% i 7) +% chr '0');
      putc (i 0) ((v "b" &% i 7) +% chr '0');
      ret0;
    ]

let main =
  func "main" []
    [
      decl "verbose" (arg 0);
      decl "pos" (i 0);
      decl "line" (i 1);
      decl "diffs" (i 0);
      decl "first" (i 0 -% i 1);
      decl "a" (getc (i 0));
      decl "b" (getc (i 1));
      while_ ((v "a" >=% i 0) &&% (v "b" >=% i 0))
        [
          when_ (v "a" <>% v "b")
            [
              incr_ "diffs";
              when_ (v "first" <% i 0) [ set "first" (v "pos") ];
              when_
                ((v "verbose" <>% i 0) &&% (v "diffs" <=% i verbose_cap))
                [
                  expr (call "print_num" [ i 0; v "pos" +% i 1 ]);
                  putc (i 0) (chr ' ');
                  expr (call "put_octal3" [ v "a" ]);
                  putc (i 0) (chr ' ');
                  expr (call "put_octal3" [ v "b" ]);
                  putc (i 0) (chr '\n');
                ];
            ];
          when_ (v "a" ==% chr '\n') [ incr_ "line" ];
          incr_ "pos";
          set "a" (getc (i 0));
          set "b" (getc (i 1));
        ];
      (* Length mismatch counts as a difference at the current offset. *)
      when_
        ((v "a" >=% i 0) ||% (v "b" >=% i 0))
        [
          incr_ "diffs";
          when_ (v "first" <% i 0) [ set "first" (v "pos") ];
        ];
      when_ ((v "diffs" >% i 0) &&% (v "verbose" ==% i 0))
        [
          expr (call "print_string" [ i 0; g "msg_differ" ]);
          expr (call "print_num" [ i 0; v "first" ]);
          putc (i 0) (chr ' ');
          expr (call "print_num" [ i 0; v "line" ]);
          putc (i 0) (chr '\n');
        ];
      expr (call "print_num" [ i 0; v "diffs" ]);
      putc (i 0) (chr '\n');
      ret (v "diffs");
    ]

let globals = [ ("msg_differ", Ir.Ast.Gstring "differ: ") ]

let pair seed noise bytes =
  let base = Inputs.text ~seed ~bytes in
  [ base; Inputs.mutate ~seed:(seed * 7 + 1) ~noise_per_mille:noise base ]

let benchmark =
  Bench.make ~name:"cmp"
    ~description:"similar/dissimilar text file pairs"
    ~ast:(fun () -> Libc.link ~globals ~entry:"main" [ put_octal3; main ])
    ~profile_inputs:(fun () ->
      List.concat_map
        (fun seed ->
          [
            Vm.Io.input ~label:"similar pair" (pair seed 2 (8_000 + (seed * 900)));
            Vm.Io.input ~label:"dissimilar pair" (pair (seed + 50) 400 (6_000 + (seed * 700)));
            Vm.Io.input ~label:"similar pair, -l" ~args:[ 1 ]
              (pair (seed + 100) 5 (4_000 + (seed * 500)));
          ])
        [ 1; 2; 3; 4 ])
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"similar 100KB pair" (pair 77 1 100_000))
