(* tar: build a USTAR-style archive, like UNIX tar cf.  Stream 0 carries a
   manifest of "name size" lines; stream 1 carries the concatenated member
   contents.  For each member the program emits a 512-byte header (name,
   octal size and mtime, checksum) followed by the content padded to a
   512-byte boundary, and finishes with two zero blocks. *)

open Ir.Ast.Dsl

let block = 512

(* Write [value] at [buf+off] as a zero-padded octal field of [width]
   digits (no terminator). *)
let to_octal =
  func "to_octal" [ "buf"; "off"; "value"; "width" ]
    [
      decl "k" (v "width" -% i 1);
      while_ (v "k" >=% i 0)
        [
          st8 (v "buf" +% v "off" +% v "k") ((v "value" %% i 8) +% chr '0');
          set "value" (v "value" /% i 8);
          decr_ "k";
        ];
      ret0;
    ]

(* Emit [n] bytes of [buf] on stream 0. *)
let emit_bytes =
  func "emit_bytes" [ "buf"; "n" ]
    [
      decl "k" (i 0);
      while_ (v "k" <% v "n")
        [ putc (i 0) (ld8 (v "buf" +% v "k")); incr_ "k" ];
      ret0;
    ]

(* Build and emit one member header. *)
let emit_header =
  func "emit_header" [ "hdr"; "name"; "size" ]
    [
      expr (call "memset" [ v "hdr"; i 0; i block ]);
      expr (call "strcpy" [ v "hdr"; v "name" ]);
      expr (call "strcpy" [ v "hdr" +% i 100; g "tar_mode" ]);
      expr (call "to_octal" [ v "hdr"; i 124; v "size"; i 11 ]);
      expr
        (call "to_octal"
           [ v "hdr"; i 136; call "hash_string" [ v "name"; i 100000 ]; i 11 ]);
      st8 (v "hdr" +% i 156) (chr '0'); (* typeflag: regular file *)
      expr (call "strcpy" [ v "hdr" +% i 257; g "tar_magic" ]);
      (* Checksum: header bytes summed with the checksum field read as
         spaces. *)
      expr (call "memset" [ v "hdr" +% i 148; chr ' '; i 8 ]);
      decl "sum" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% i block)
        [ set "sum" (v "sum" +% ld8 (v "hdr" +% v "k")); incr_ "k" ];
      expr (call "to_octal" [ v "hdr"; i 148; v "sum"; i 6 ]);
      st8 (v "hdr" +% i 154) (i 0);
      st8 (v "hdr" +% i 155) (chr ' ');
      expr (call "emit_bytes" [ v "hdr"; i block ]);
      ret0;
    ]

let globals =
  [
    ("tar_mode", Ir.Ast.Gstring "0000644");
    ("tar_magic", Ir.Ast.Gstring "ustar");
    ("tar_ok", Ir.Ast.Gstring " OK");
    ("tar_bad", Ir.Ast.Gstring " BAD");
  ]

(* Parse a zero-padded octal field. *)
let parse_octal =
  func "parse_octal" [ "buf"; "off"; "width" ]
    [
      decl "acc" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% v "width")
        [
          decl "c" (ld8 (v "buf" +% v "off" +% v "k"));
          when_ ((v "c" <% chr '0') ||% (v "c" >% chr '7')) [ ret (v "acc") ];
          set "acc" ((v "acc" *% i 8) +% (v "c" -% chr '0'));
          incr_ "k";
        ];
      ret (v "acc");
    ]

(* Read one 512-byte block from stream 1 into [buf]; 1 on success. *)
let read_block =
  func "read_block" [ "buf" ]
    [
      decl "k" (i 0);
      while_ (v "k" <% i block)
        [
          decl "c" (getc (i 1));
          when_ (v "c" <% i 0) [ ret (i 0) ];
          st8 (v "buf" +% v "k") (v "c");
          incr_ "k";
        ];
      ret (i 1);
    ]

(* Header checksum: bytes summed with the checksum field as spaces. *)
let header_sum =
  func "header_sum" [ "hdr" ]
    [
      decl "sum" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% i block)
        [
          if_ ((v "k" >=% i 148) &&% (v "k" <% i 156))
            [ set "sum" (v "sum" +% chr ' ') ]
            [ set "sum" (v "sum" +% ld8 (v "hdr" +% v "k")) ];
          incr_ "k";
        ];
      ret (v "sum");
    ]

(* List (mode 1) or extract (mode 2) an archive arriving on stream 1. *)
let read_archive =
  func "read_archive" [ "extract" ]
    [
      decl "hdr" (alloc (i block));
      decl "members" (i 0);
      while_ (call "read_block" [ v "hdr" ])
        [
          (* end-of-archive: a zero block (empty name) *)
          when_ (ld8 (v "hdr") ==% i 0) [ break_ ];
          decl "size" (call "parse_octal" [ v "hdr"; i 124; i 11 ]);
          if_ (v "extract")
            [
              decl "k" (i 0);
              while_ (v "k" <% v "size")
                [ putc (i 0) (getc (i 1)); incr_ "k" ];
            ]
            [
              expr (call "print_string" [ i 0; v "hdr" ]);
              putc (i 0) (chr ' ');
              expr (call "print_num" [ i 0; v "size" ]);
              decl "stored" (call "parse_octal" [ v "hdr"; i 148; i 6 ]);
              if_ (call "header_sum" [ v "hdr" ] ==% v "stored")
                [ expr (call "print_string" [ i 0; g "tar_ok" ]) ]
                [ expr (call "print_string" [ i 0; g "tar_bad" ]) ];
              putc (i 0) (chr '\n');
              decl "k" (i 0);
              while_ (v "k" <% v "size")
                [ expr (getc (i 1)); incr_ "k" ];
            ];
          (* skip padding to the block boundary *)
          decl "pad" ((i block -% (v "size" %% i block)) %% i block);
          while_ (v "pad" >% i 0) [ expr (getc (i 1)); decr_ "pad" ];
          incr_ "members";
        ];
      ret (v "members");
    ]

let create_archive =
  func "create_archive" []
    [
      decl "line" (alloc (i 256));
      decl "name" (alloc (i 128));
      decl "hdr" (alloc (i block));
      decl "pos_cell" (alloc (i 4));
      decl "members" (i 0);
      decl "bytes" (i 0);
      decl "len" (call "read_line" [ i 0; v "line"; i 256 ]);
      while_ (v "len" >% i 0)
        [
          (* Parse "name size". *)
          st32 (v "pos_cell") (i 0);
          decl "p" (i 0);
          decl "n" (i 0);
          while_
            ((ld8 (v "line" +% v "p") <>% i 0)
            &&% not_ (call "is_space" [ ld8 (v "line" +% v "p") ]))
            [
              st8 (v "name" +% v "n") (ld8 (v "line" +% v "p"));
              incr_ "n";
              incr_ "p";
            ];
          st8 (v "name" +% v "n") (i 0);
          decl "size" (call "atoi" [ v "line" +% v "p" ]);
          expr (call "emit_header" [ v "hdr"; v "name"; v "size" ]);
          (* Copy the member contents from stream 1, padded to a block. *)
          decl "k" (i 0);
          while_ (v "k" <% v "size")
            [
              decl "c" (getc (i 1));
              putc (i 0) (Ir.Ast.Cond (v "c" >=% i 0, v "c", i 0));
              incr_ "k";
            ];
          decl "pad" ((i block -% (v "size" %% i block)) %% i block);
          while_ (v "pad" >% i 0) [ putc (i 0) (i 0); decr_ "pad" ];
          incr_ "members";
          set "bytes" (v "bytes" +% v "size");
          set "len" (call "read_line" [ i 0; v "line"; i 256 ]);
        ];
      (* End-of-archive: two zero blocks. *)
      expr (call "memset" [ v "hdr"; i 0; i block ]);
      expr (call "emit_bytes" [ v "hdr"; i block ]);
      expr (call "emit_bytes" [ v "hdr"; i block ]);
      expr (call "print_num" [ i 0; v "members" ]);
      putc (i 0) (chr '\n');
      ret (v "members");
    ]

(* Mode: 0 create (manifest on stream 0, contents on stream 1), 1 list
   (archive on stream 1), 2 extract (archive on stream 1). *)
let main =
  func "main" []
    [
      decl "mode" (arg 0);
      when_ (v "mode" ==% i 1) [ ret (call "read_archive" [ i 0 ]) ];
      when_ (v "mode" ==% i 2) [ ret (call "read_archive" [ i 1 ]) ];
      ret (call "create_archive" []);
    ]

let benchmark =
  Bench.make ~name:"tar"
    ~description:"archive create/list/extract over generated member sets"
    ~ast:(fun () ->
      Libc.link ~globals ~entry:"main"
        [
          to_octal; emit_bytes; emit_header; parse_octal; read_block;
          header_sum; read_archive; create_archive; main;
        ])
    ~profile_inputs:(fun () ->
      let create (seed, members) =
        let manifest, content = Inputs.tar_manifest ~seed ~members in
        Vm.Io.input
          ~label:(Printf.sprintf "create %d members" members)
          [ manifest; content ]
      in
      let reread mode (seed, members) =
        let archive, _ = Inputs.tar_archive ~seed ~members in
        Vm.Io.input
          ~label:
            (Printf.sprintf "%s %d members"
               (if mode = 1 then "list" else "extract")
               members)
          ~args:[ mode ] [ ""; archive ]
      in
      List.map create [ (51, 8); (52, 16); (53, 24); (54, 32) ]
      @ [ reread 1 (55, 40); reread 2 (56, 30); create (57, 12) ])
    ~trace_input:(fun () ->
      let manifest, content = Inputs.tar_manifest ~seed:800 ~members:90 in
      Vm.Io.input ~label:"archive of 90 members" [ manifest; content ])
