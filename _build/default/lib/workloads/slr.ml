(* SLR(1) parser-table generation — the role UNIX yacc plays for the yacc
   workload.  Given a context-free grammar, computes the LR(0) canonical
   collection, FIRST/FOLLOW sets, and the ACTION/GOTO tables that the
   DSL's table-driven parser interprets.

   The construction is the textbook one (dragon book 4.7): items are
   (rule, dot) pairs; states are closed item sets; ACTION conflicts make
   the grammar unacceptable and raise [Conflict]. *)

type symbol =
  | T of int (* terminal id *)
  | N of int (* nonterminal id *)

type grammar = {
  nterminals : int; (* terminal ids 0 .. nterminals-1 *)
  nnonterminals : int;
  start : int; (* start nonterminal *)
  eof : int; (* terminal that ends the input *)
  rules : (int * symbol list) array; (* lhs nonterminal, rhs *)
}

type action =
  | Error
  | Shift of int
  | Reduce of int
  | Accept

type tables = {
  nstates : int;
  action : action array array; (* [state].(terminal) *)
  goto : int array array; (* [state].(nonterminal), -1 = none *)
  rule_len : int array;
  rule_lhs : int array;
}

exception Conflict of string

(* Augmented grammar: rule 0 is S' -> start, reductions by rule 0 become
   Accept. *)
let augment g =
  { g with rules = Array.append [| (g.nnonterminals, [ N g.start ]) |] g.rules;
           nnonterminals = g.nnonterminals + 1 }
(* note: the augmented start symbol is the ORIGINAL g.nnonterminals id *)

module ItemSet = Set.Make (struct
  type t = int * int (* rule index, dot position *)

  let compare = compare
end)

let closure g items =
  let changed = ref true in
  let set = ref items in
  while !changed do
    changed := false;
    ItemSet.iter
      (fun (rule, dot) ->
        let _, rhs = g.rules.(rule) in
        match List.nth_opt rhs dot with
        | Some (N nt) ->
          Array.iteri
            (fun ridx (lhs, _) ->
              if lhs = nt && not (ItemSet.mem (ridx, 0) !set) then begin
                set := ItemSet.add (ridx, 0) !set;
                changed := true
              end)
            g.rules
        | Some (T _) | None -> ())
      !set
  done;
  !set

let goto_set g items sym =
  let moved =
    ItemSet.fold
      (fun (rule, dot) acc ->
        let _, rhs = g.rules.(rule) in
        match List.nth_opt rhs dot with
        | Some s when s = sym -> ItemSet.add (rule, dot + 1) acc
        | Some _ | None -> acc)
      items ItemSet.empty
  in
  if ItemSet.is_empty moved then None else Some (closure g moved)

(* Nullable / FIRST / FOLLOW over the augmented grammar. *)
let analyze g =
  let nullable = Array.make g.nnonterminals false in
  let first = Array.make g.nnonterminals [] in
  let follow = Array.make g.nnonterminals [] in
  let add set nt t =
    if not (List.mem t set.(nt)) then begin
      set.(nt) <- t :: set.(nt);
      true
    end
    else false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (lhs, rhs) ->
        (* nullable *)
        let all_nullable =
          List.for_all (function N n -> nullable.(n) | T _ -> false) rhs
        in
        if all_nullable && not nullable.(lhs) then begin
          nullable.(lhs) <- true;
          changed := true
        end;
        (* FIRST *)
        let rec first_of = function
          | [] -> ()
          | T t :: _ -> if add first lhs t then changed := true
          | N n :: rest ->
            List.iter (fun t -> if add first lhs t then changed := true) first.(n);
            if nullable.(n) then first_of rest
        in
        first_of rhs)
      g.rules
  done;
  (* FOLLOW: eof follows the augmented start's rhs trivially via rule 0;
     seed the original start symbol. *)
  ignore (add follow g.start g.eof);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (lhs, rhs) ->
        let rec walk = function
          | [] -> ()
          | T _ :: rest -> walk rest
          | N n :: rest ->
            (* FIRST of what follows n *)
            let rec first_of_rest tail =
              match tail with
              | [] ->
                (* everything after n is nullable: FOLLOW(lhs) flows in *)
                List.iter
                  (fun t -> if add follow n t then changed := true)
                  follow.(lhs)
              | T t :: _ -> if add follow n t then changed := true
              | N m :: more ->
                List.iter
                  (fun t -> if add follow n t then changed := true)
                  first.(m);
                if nullable.(m) then first_of_rest more
            in
            first_of_rest rest;
            walk rest
        in
        walk rhs)
      g.rules
  done;
  (nullable, first, follow)

let build (g0 : grammar) : tables =
  let g = augment g0 in
  let _, _, follow = analyze g in
  (* Canonical collection. *)
  let start_state = closure g (ItemSet.singleton (0, 0)) in
  let states = ref [ start_state ] in
  let index_of set =
    let rec go idx = function
      | [] -> None
      | s :: rest -> if ItemSet.equal s set then Some idx else go (idx + 1) rest
    in
    go 0 !states
  in
  let transitions = Hashtbl.create 64 in
  let work = Queue.create () in
  Queue.add 0 work;
  let symbols =
    List.init g.nterminals (fun t -> T t)
    @ List.init g.nnonterminals (fun n -> N n)
  in
  while not (Queue.is_empty work) do
    let sidx = Queue.pop work in
    let set = List.nth !states sidx in
    List.iter
      (fun sym ->
        match goto_set g set sym with
        | None -> ()
        | Some next ->
          let nidx =
            match index_of next with
            | Some idx -> idx
            | None ->
              states := !states @ [ next ];
              let idx = List.length !states - 1 in
              Queue.add idx work;
              idx
          in
          Hashtbl.replace transitions (sidx, sym) nidx)
      symbols
  done;
  let nstates = List.length !states in
  let action = Array.init nstates (fun _ -> Array.make g.nterminals Error) in
  let goto = Array.init nstates (fun _ -> Array.make g0.nnonterminals (-1)) in
  let set_action state t a =
    match (action.(state).(t), a) with
    | Error, _ -> action.(state).(t) <- a
    | cur, a when cur = a -> ()
    | Shift _, Reduce _ | Reduce _, Shift _ ->
      raise
        (Conflict (Printf.sprintf "shift/reduce in state %d on terminal %d" state t))
    | _ ->
      raise
        (Conflict (Printf.sprintf "conflict in state %d on terminal %d" state t))
  in
  List.iteri
    (fun sidx set ->
      (* shifts and gotos *)
      List.iter
        (fun sym ->
          match Hashtbl.find_opt transitions (sidx, sym) with
          | None -> ()
          | Some next -> (
            match sym with
            | T t -> set_action sidx t (Shift next)
            | N n -> if n < g0.nnonterminals then goto.(sidx).(n) <- next))
        symbols;
      (* reductions *)
      ItemSet.iter
        (fun (rule, dot) ->
          let lhs, rhs = g.rules.(rule) in
          if dot = List.length rhs then
            if rule = 0 then set_action sidx g.eof Accept
            else
              List.iter
                (fun t -> set_action sidx t (Reduce rule))
                follow.(lhs))
        set)
    !states;
  {
    nstates;
    action;
    goto;
    (* rule metadata for the augmented numbering (rule 0 = accept) *)
    rule_len = Array.map (fun (_, rhs) -> List.length rhs) g.rules;
    rule_lhs = Array.map fst g.rules;
  }

(* Encode the tables as flat word arrays for the DSL program:
   action entry: 0 error, 1000+state shift, 2000+rule reduce, 3000 accept;
   goto entry: state+1, 0 for none. *)
let encode_action t g =
  Array.init
    (t.nstates * g.nterminals)
    (fun idx ->
      let state = idx / g.nterminals and term = idx mod g.nterminals in
      match t.action.(state).(term) with
      | Error -> 0
      | Shift s -> 1000 + s
      | Reduce r -> 2000 + r
      | Accept -> 3000)

let encode_goto t g =
  Array.init
    (t.nstates * g.nnonterminals)
    (fun idx ->
      let state = idx / g.nnonterminals and nt = idx mod g.nnonterminals in
      t.goto.(state).(nt) + 1)
