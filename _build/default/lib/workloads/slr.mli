(** SLR(1) parser-table generation — the role UNIX yacc plays for the
    yacc workload.  Textbook construction (LR(0) canonical collection +
    FOLLOW sets); grammars with conflicts raise {!Conflict}. *)

type symbol =
  | T of int  (** terminal id *)
  | N of int  (** nonterminal id *)

type grammar = {
  nterminals : int;
  nnonterminals : int;
  start : int;
  eof : int;  (** terminal that ends the input (also the accept column) *)
  rules : (int * symbol list) array;
}

type action =
  | Error
  | Shift of int
  | Reduce of int
  | Accept

type tables = {
  nstates : int;
  action : action array array;  (** [state].(terminal) *)
  goto : int array array;  (** [state].(nonterminal), [-1] = none *)
  rule_len : int array;  (** indexed by augmented rule number; 0 = accept *)
  rule_lhs : int array;
}

exception Conflict of string

val build : grammar -> tables

val encode_action : tables -> grammar -> int array
(** Flat [state * nterminals] array: 0 error, 1000+s shift, 2000+r reduce,
    3000 accept. *)

val encode_goto : tables -> grammar -> int array
(** Flat [state * nnonterminals] array storing target state + 1; 0 = none. *)
