(* grep: print input lines matching a pattern, like UNIX grep with the
   classic K&R regular-expression subset extended with character classes:

     c      literal            .      any character
     e*     zero or more e     ^ / $  line anchors
     [abc]  class              [^abc] negated class
     [a-z]  ranges inside classes

   Options arrive as an argument bitmask (argv style): 1 = -v invert,
   2 = -c count only, 4 = -i ignore case, 8 = -n number lines.  Multiple
   patterns may be supplied (one per line on stream 1); a line matches if
   any pattern does, as with grep -e.  The matcher is recursive, which
   exercises the inliner's recursion guard. *)

open Ir.Ast.Dsl

let opt_invert = 1
let opt_count = 2
let opt_icase = 4
let opt_number = 8

(* Length in bytes of the pattern element starting at [re] (a literal,
   '.', or a [...] class). *)
let elem_len =
  func "elem_len" [ "re" ]
    [
      when_ (ld8 (v "re") <>% chr '[') [ ret (i 1) ];
      decl "n" (i 1);
      when_ (ld8 (v "re" +% i 1) ==% chr '^') [ incr_ "n" ];
      (* a ']' directly after '[' (or '[^') is a literal member *)
      when_ (ld8 (v "re" +% v "n") ==% chr ']') [ incr_ "n" ];
      while_
        ((ld8 (v "re" +% v "n") <>% i 0) &&% (ld8 (v "re" +% v "n") <>% chr ']'))
        [ incr_ "n" ];
      when_ (ld8 (v "re" +% v "n") ==% chr ']') [ incr_ "n" ];
      ret (v "n");
    ]

(* Does the single pattern element at [re] match character [c]? *)
let match_one =
  func "match_one" [ "re"; "c" ]
    [
      when_ (v "c" ==% i 0) [ ret (i 0) ];
      decl "r0" (ld8 (v "re"));
      when_ (v "r0" ==% chr '.') [ ret (i 1) ];
      when_ (v "r0" <>% chr '[') [ ret (v "r0" ==% v "c") ];
      (* character class *)
      decl "p" (i 1);
      decl "negate" (i 0);
      when_ (ld8 (v "re" +% i 1) ==% chr '^')
        [ set "negate" (i 1); incr_ "p" ];
      decl "hit" (i 0);
      decl "first" (i 1);
      decl "rc" (ld8 (v "re" +% v "p"));
      while_
        ((v "rc" <>% i 0) &&% ((v "rc" <>% chr ']') ||% (v "first" ==% i 1)))
        [
          set "first" (i 0);
          if_
            ((ld8 (v "re" +% v "p" +% i 1) ==% chr '-')
            &&% (ld8 (v "re" +% v "p" +% i 2) <>% chr ']')
            &&% (ld8 (v "re" +% v "p" +% i 2) <>% i 0))
            [
              (* range a-b *)
              when_
                ((v "c" >=% v "rc") &&% (v "c" <=% ld8 (v "re" +% v "p" +% i 2)))
                [ set "hit" (i 1) ];
              set "p" (v "p" +% i 3);
            ]
            [
              when_ (v "rc" ==% v "c") [ set "hit" (i 1) ];
              incr_ "p";
            ];
          set "rc" (ld8 (v "re" +% v "p"));
        ];
      if_ (v "negate") [ ret (not_ (v "hit")) ] [ ret (v "hit") ];
    ]

(* match_here(re, text) -> 1 when the pattern matches at the start of
   text. *)
let match_here =
  func "match_here" [ "re"; "text" ]
    [
      decl "r0" (ld8 (v "re"));
      when_ (v "r0" ==% i 0) [ ret (i 1) ];
      decl "el" (call "elem_len" [ v "re" ]);
      when_ (ld8 (v "re" +% v "el") ==% chr '*')
        [
          ret
            (call "match_star"
               [ v "re"; v "re" +% v "el" +% i 1; v "text" ]);
        ];
      when_ ((v "r0" ==% chr '$') &&% (ld8 (v "re" +% i 1) ==% i 0))
        [ ret (ld8 (v "text") ==% i 0) ];
      when_ (call "match_one" [ v "re"; ld8 (v "text") ])
        [ ret (call "match_here" [ v "re" +% v "el"; v "text" +% i 1 ]) ];
      ret (i 0);
    ]

(* match_star(elem, rest, text): match elem* followed by rest. *)
let match_star =
  func "match_star" [ "elem"; "rest"; "text" ]
    [
      decl "idx" (i 0);
      while_ (i 1)
        [
          when_ (call "match_here" [ v "rest"; v "text" +% v "idx" ])
            [ ret (i 1) ];
          when_ (not_ (call "match_one" [ v "elem"; ld8 (v "text" +% v "idx") ]))
            [ ret (i 0) ];
          incr_ "idx";
        ];
      ret (i 0);
    ]

let match_pattern =
  func "match_pattern" [ "re"; "text" ]
    [
      when_ (ld8 (v "re") ==% chr '^')
        [ ret (call "match_here" [ v "re" +% i 1; v "text" ]) ];
      decl "idx" (i 0);
      do_while
        [
          when_ (call "match_here" [ v "re"; v "text" +% v "idx" ])
            [ ret (i 1) ];
          incr_ "idx";
        ]
        (ld8 (v "text" +% (v "idx" -% i 1)) <>% i 0);
      ret (i 0);
    ]

(* Lowercase a line in place (for -i). *)
let lower_line =
  func "lower_line" [ "s" ]
    [
      decl "p" (i 0);
      decl "c" (ld8 (v "s"));
      while_ (v "c" <>% i 0)
        [
          st8 (v "s" +% v "p") (call "to_lower" [ v "c" ]);
          incr_ "p";
          set "c" (ld8 (v "s" +% v "p"));
        ];
      ret0;
    ]

(* Patterns on stream 1, one per line; text on stream 0; options in
   arg 0. *)
let max_patterns = 16

let main =
  func "main" []
    [
      decl "opts" (arg 0);
      decl "patterns" (alloc (i (128 * max_patterns)));
      decl "npat" (i 0);
      decl "plen"
        (call "read_line" [ i 1; v "patterns"; i 128 ]);
      while_ ((v "plen" >=% i 0) &&% (v "npat" <% i max_patterns))
        [
          when_ (v "plen" >% i 0)
            [
              when_ ((v "opts" &% i opt_icase) <>% i 0)
                [ expr (call "lower_line" [ v "patterns" +% (v "npat" *% i 128) ]) ];
              incr_ "npat";
            ];
          set "plen"
            (call "read_line"
               [ i 1; v "patterns" +% (v "npat" *% i 128); i 128 ]);
        ];
      when_ (v "npat" ==% i 0) [ ret (i 0 -% i 2) ];
      decl "line" (alloc (i 512));
      decl "shadow" (alloc (i 512));
      decl "matches" (i 0);
      decl "lineno" (i 0);
      decl "len" (call "read_line" [ i 0; v "line"; i 512 ]);
      while_ (v "len" >=% i 0)
        [
          incr_ "lineno";
          (* match against the case-folded shadow when -i *)
          decl "subject" (v "line");
          when_ ((v "opts" &% i opt_icase) <>% i 0)
            [
              expr (call "strcpy" [ v "shadow"; v "line" ]);
              expr (call "lower_line" [ v "shadow" ]);
              set "subject" (v "shadow");
            ];
          decl "hit" (i 0);
          decl "k" (i 0);
          while_ ((v "k" <% v "npat") &&% (v "hit" ==% i 0))
            [
              when_
                (call "match_pattern"
                   [ v "patterns" +% (v "k" *% i 128); v "subject" ])
                [ set "hit" (i 1) ];
              incr_ "k";
            ];
          when_ ((v "opts" &% i opt_invert) <>% i 0)
            [ set "hit" (not_ (v "hit")) ];
          when_ (v "hit")
            [
              incr_ "matches";
              when_ ((v "opts" &% i opt_count) ==% i 0)
                [
                  when_ ((v "opts" &% i opt_number) <>% i 0)
                    [
                      expr (call "print_num" [ i 0; v "lineno" ]);
                      putc (i 0) (chr ':');
                    ];
                  expr (call "print_string" [ i 0; v "line" ]);
                  putc (i 0) (chr '\n');
                ];
            ];
          set "len" (call "read_line" [ i 0; v "line"; i 512 ]);
        ];
      when_ ((v "opts" &% i opt_count) <>% i 0)
        [
          expr (call "print_num" [ i 0; v "matches" ]);
          putc (i 0) (chr '\n');
        ];
      ret (v "matches");
    ]

let patterns = [| "the"; "ab.c*d"; "^qu"; "ing$"; "a.c"; "zq*a"; "[aeiou][mnr]"; "[^a-m]x*[yz]" |]

let benchmark =
  Bench.make ~name:"grep"
    ~description:"patterns with ., *, ^, $, [] over text; -v/-c/-i/-n options"
    ~ast:(fun () ->
      Libc.link ~entry:"main"
        [
          elem_len; match_one; match_here; match_star; match_pattern;
          lower_line; main;
        ])
    ~profile_inputs:(fun () ->
      List.mapi
        (fun idx pattern ->
          let opts = [| 0; 0; opt_icase; opt_number; 0; opt_count; 0; opt_invert |] in
          Vm.Io.input
            ~label:("pattern " ^ pattern)
            ~args:[ opts.(idx mod Array.length opts) ]
            [
              Inputs.text ~seed:(idx + 10) ~bytes:(12_000 + (idx * 2500));
              pattern ^ "\n";
            ])
        (Array.to_list patterns))
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"two patterns over 80KB"
        [ Inputs.text ~seed:321 ~bytes:80_000; "a.c\n[aeiou]q*[a-f]\n" ])
