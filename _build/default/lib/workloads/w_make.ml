(* make: parse makefile-like rules and evaluate the dependency graph, like
   UNIX make.

   Supported:
   - rules "target: dep dep ..." with tab-indented command lines;
   - variable definitions "NAME = value" and recursive $(NAME) expansion
     in dependency lists and commands;
   - automatic variables $@ (target) and $< (first dependency) in
     commands;
   - pseudo modification times derived from name hashes; a target is
     rebuilt (its commands "executed", i.e. expanded and printed) when any
     dependency is newer; evaluation is a recursive depth-first walk with
     memoization;
   - dependency resolution by linear name search, as in the historical
     implementation. *)

open Ir.Ast.Dsl

let max_targets = 512
let max_deps = 4096
let max_cmds = 2048
let var_slots = 256
let max_expand_depth = 8

let globals =
  [
    ("mk_names", Ir.Ast.Gzero 98304);
    ("mk_names_next", Ir.Ast.Gzero 4);
    ("mk_cmds", Ir.Ast.Gzero 65536);
    ("mk_cmds_next", Ir.Ast.Gzero 4);
    (* per-target fields, one word each *)
    ("mk_name_off", Ir.Ast.Gzero (max_targets * 4));
    ("mk_ndeps", Ir.Ast.Gzero (max_targets * 4));
    ("mk_dep0", Ir.Ast.Gzero (max_targets * 4));
    ("mk_ncmds", Ir.Ast.Gzero (max_targets * 4));
    ("mk_cmd0", Ir.Ast.Gzero (max_targets * 4));
    ("mk_time", Ir.Ast.Gzero (max_targets * 4));
    ("mk_built", Ir.Ast.Gzero (max_targets * 4));
    ("mk_deps", Ir.Ast.Gzero (max_deps * 4)); (* dep name offsets *)
    ("mk_cmd_idx", Ir.Ast.Gzero (max_cmds * 4)); (* command offsets *)
    ("mk_counts", Ir.Ast.Gzero 16); (* 0 ntargets, 1 ndeps, 2 ncmds, 3 rebuilt *)
    (* variables: open-addressing hash, names and values in one arena *)
    ("mkv_name", Ir.Ast.Gzero (var_slots * 4)); (* arena offset + 1; 0 empty *)
    ("mkv_value", Ir.Ast.Gzero (var_slots * 4));
    ("mkv_arena", Ir.Ast.Gzero 16384);
    ("mkv_next", Ir.Ast.Gzero 4);
    (* automatic-variable context while running commands *)
    ("mk_at", Ir.Ast.Gzero 4); (* address of current target name *)
    ("mk_lt", Ir.Ast.Gzero 4); (* address of first dependency name *)
  ]

let count slot = ld32 (g "mk_counts" +% i (slot * 4))
let set_count slot e = st32 (g "mk_counts" +% i (slot * 4)) e
let field name idx = ld32 (g name +% (idx *% i 4))
let set_field name idx e = st32 (g name +% (idx *% i 4)) e

(* ---------- variables ---------- *)

let mkv_add_arena =
  func "mkv_add_arena" [ "s" ]
    [
      decl "off" (ld32 (g "mkv_next"));
      expr (call "strcpy" [ g "mkv_arena" +% v "off"; v "s" ]);
      st32 (g "mkv_next") (v "off" +% call "strlen" [ v "s" ] +% i 1);
      ret (v "off");
    ]

let mkv_find =
  func "mkv_find" [ "name" ]
    [
      decl "h" (call "hash_string" [ v "name"; i var_slots ]);
      decl "probes" (i 0);
      while_ (v "probes" <% i var_slots)
        [
          decl "e" (ld32 (g "mkv_name" +% (v "h" *% i 4)));
          when_ (v "e" ==% i 0) [ ret (v "h") ];
          when_
            (call "strcmp" [ v "name"; g "mkv_arena" +% (v "e" -% i 1) ] ==% i 0)
            [ ret (v "h") ];
          set "h" ((v "h" +% i 1) &% i (var_slots - 1));
          incr_ "probes";
        ];
      ret (i 0);
    ]

let mkv_define =
  func "mkv_define" [ "name"; "value" ]
    [
      decl "slot" (call "mkv_find" [ v "name" ]);
      when_ (ld32 (g "mkv_name" +% (v "slot" *% i 4)) ==% i 0)
        [
          st32 (g "mkv_name" +% (v "slot" *% i 4))
            (call "mkv_add_arena" [ v "name" ] +% i 1);
        ];
      st32 (g "mkv_value" +% (v "slot" *% i 4))
        (call "mkv_add_arena" [ v "value" ]);
      ret0;
    ]

(* Expand $(NAME), $@ and $< of [src] into [dst] (size [max]); returns the
   expanded length.  Nested variable values expand recursively up to a
   depth limit. *)
let expand_into =
  func "expand_into" [ "src"; "dst"; "max"; "depth" ]
    [
      decl "p" (i 0);
      decl "n" (i 0);
      decl "c" (ld8 (v "src"));
      while_ ((v "c" <>% i 0) &&% (v "n" <% (v "max" -% i 1)))
        [
          if_ (v "c" ==% chr '$')
            [
              decl "c2" (ld8 (v "src" +% v "p" +% i 1));
              if_ (v "c2" ==% chr '(')
                [
                  (* $(NAME) *)
                  decl "name" (alloc (i 64));
                  decl "k" (i 0);
                  set "p" (v "p" +% i 2);
                  set "c" (ld8 (v "src" +% v "p"));
                  while_
                    ((v "c" <>% i 0) &&% (v "c" <>% chr ')') &&% (v "k" <% i 63))
                    [
                      st8 (v "name" +% v "k") (v "c");
                      incr_ "k";
                      incr_ "p";
                      set "c" (ld8 (v "src" +% v "p"));
                    ];
                  st8 (v "name" +% v "k") (i 0);
                  when_ (v "c" ==% chr ')') [ incr_ "p" ];
                  decl "slot" (call "mkv_find" [ v "name" ]);
                  when_
                    ((ld32 (g "mkv_name" +% (v "slot" *% i 4)) <>% i 0)
                    &&% (v "depth" <% i max_expand_depth))
                    [
                      decl "sub" (alloc (i 256));
                      expr
                        (call "expand_into"
                           [
                             g "mkv_arena"
                             +% ld32 (g "mkv_value" +% (v "slot" *% i 4));
                             v "sub"; i 256; v "depth" +% i 1;
                           ]);
                      decl "q" (i 0);
                      decl "sc" (ld8 (v "sub"));
                      while_ ((v "sc" <>% i 0) &&% (v "n" <% (v "max" -% i 1)))
                        [
                          st8 (v "dst" +% v "n") (v "sc");
                          incr_ "n";
                          incr_ "q";
                          set "sc" (ld8 (v "sub" +% v "q"));
                        ];
                    ];
                  set "c" (ld8 (v "src" +% v "p"));
                ]
                [
                  if_ ((v "c2" ==% chr '@') ||% (v "c2" ==% chr '<'))
                    [
                      decl "auto"
                        (Ir.Ast.Cond
                           (v "c2" ==% chr '@', ld32 (g "mk_at"), ld32 (g "mk_lt")));
                      when_ (v "auto" <>% i 0)
                        [
                          decl "q" (i 0);
                          decl "ac" (ld8 (v "auto"));
                          while_
                            ((v "ac" <>% i 0) &&% (v "n" <% (v "max" -% i 1)))
                            [
                              st8 (v "dst" +% v "n") (v "ac");
                              incr_ "n";
                              incr_ "q";
                              set "ac" (ld8 (v "auto" +% v "q"));
                            ];
                        ];
                      set "p" (v "p" +% i 2);
                      set "c" (ld8 (v "src" +% v "p"));
                    ]
                    [
                      (* literal $ *)
                      st8 (v "dst" +% v "n") (v "c");
                      incr_ "n";
                      incr_ "p";
                      set "c" (ld8 (v "src" +% v "p"));
                    ];
                ];
            ]
            [
              st8 (v "dst" +% v "n") (v "c");
              incr_ "n";
              incr_ "p";
              set "c" (ld8 (v "src" +% v "p"));
            ];
        ];
      st8 (v "dst" +% v "n") (i 0);
      ret (v "n");
    ]

(* ---------- target table ---------- *)

let find_target =
  func "find_target" [ "name" ]
    [
      decl "t" (i 0);
      decl "n" (count 0);
      while_ (v "t" <% v "n")
        [
          when_
            (call "strcmp" [ v "name"; g "mk_names" +% field "mk_name_off" (v "t") ]
            ==% i 0)
            [ ret (v "t") ];
          incr_ "t";
        ];
      ret (i 0 -% i 1);
    ]

let names_add =
  func "names_add" [ "s" ]
    [
      decl "off" (ld32 (g "mk_names_next"));
      expr (call "strcpy" [ g "mk_names" +% v "off"; v "s" ]);
      st32 (g "mk_names_next") (v "off" +% call "strlen" [ v "s" ] +% i 1);
      ret (v "off");
    ]

(* Recursive dependency evaluation; returns the target's up-to-date
   modification time. *)
let build =
  func "build" [ "t" ]
    [
      when_ (field "mk_built" (v "t") <>% i 0) [ ret (field "mk_time" (v "t")) ];
      set_field "mk_built" (v "t") (i 1);
      decl "own"
        (call "hash_string"
           [ g "mk_names" +% field "mk_name_off" (v "t"); i 997 ]
        +% i 200);
      decl "newest" (i 0);
      decl "first_dep" (i 0);
      decl "d" (i 0);
      decl "nd" (field "mk_ndeps" (v "t"));
      while_ (v "d" <% v "nd")
        [
          decl "dep_name"
            (g "mk_names"
            +% ld32 (g "mk_deps" +% ((field "mk_dep0" (v "t") +% v "d") *% i 4)));
          when_ (v "d" ==% i 0) [ set "first_dep" (v "dep_name") ];
          decl "idx" (call "find_target" [ v "dep_name" ]);
          decl "dt" (i 0);
          if_ (v "idx" >=% i 0)
            [ set "dt" (call "build" [ v "idx" ]) ]
            [ set "dt" (call "hash_string" [ v "dep_name"; i 1200 ]) ];
          when_ (v "dt" >% v "newest") [ set "newest" (v "dt") ];
          incr_ "d";
        ];
      if_ (v "newest" >% v "own")
        [
          (* Out of date: expand and run the commands. *)
          st32 (g "mk_at") (g "mk_names" +% field "mk_name_off" (v "t"));
          st32 (g "mk_lt") (v "first_dep");
          decl "expanded" (alloc (i 512));
          decl "k" (i 0);
          decl "nc" (field "mk_ncmds" (v "t"));
          while_ (v "k" <% v "nc")
            [
              expr
                (call "expand_into"
                   [
                     g "mk_cmds"
                     +% ld32
                          (g "mk_cmd_idx"
                          +% ((field "mk_cmd0" (v "t") +% v "k") *% i 4));
                     v "expanded"; i 512; i 0;
                   ]);
              expr (call "print_string" [ i 0; v "expanded" ]);
              putc (i 0) (chr '\n');
              incr_ "k";
            ];
          set_field "mk_time" (v "t") (v "newest" +% i 1);
          set_count 3 (count 3 +% i 1);
        ]
        [ set_field "mk_time" (v "t") (v "own") ];
      ret (field "mk_time" (v "t"));
    ]

let scan_word =
  func "scan_word" [ "line"; "pos_cell"; "out"; "out_max" ]
    [
      decl "p" (ld32 (v "pos_cell"));
      while_
        ((ld8 (v "line" +% v "p") <>% i 0)
        &&% call "is_space" [ ld8 (v "line" +% v "p") ])
        [ incr_ "p" ];
      decl "n" (i 0);
      decl "c" (ld8 (v "line" +% v "p"));
      while_
        ((v "c" <>% i 0)
        &&% not_ (call "is_space" [ v "c" ])
        &&% (v "n" <% (v "out_max" -% i 1)))
        [
          st8 (v "out" +% v "n") (v "c");
          incr_ "n";
          incr_ "p";
          set "c" (ld8 (v "line" +% v "p"));
        ];
      st8 (v "out" +% v "n") (i 0);
      st32 (v "pos_cell") (v "p");
      ret (v "n");
    ]

(* "NAME = value" detection: an identifier followed by optional blanks and
   '='.  Returns the position of '=' or -1. *)
let var_def_pos =
  func "var_def_pos" [ "line" ]
    [
      decl "p" (i 0);
      decl "c" (ld8 (v "line"));
      when_ (not_ (call "is_alpha" [ v "c" ])) [ ret (i 0 -% i 1) ];
      while_ (call "is_alnum" [ v "c" ] ||% (v "c" ==% chr '_'))
        [ incr_ "p"; set "c" (ld8 (v "line" +% v "p")) ];
      while_ ((v "c" ==% chr ' ') ||% (v "c" ==% chr '\t'))
        [ incr_ "p"; set "c" (ld8 (v "line" +% v "p")) ];
      when_ (v "c" ==% chr '=') [ ret (v "p") ];
      ret (i 0 -% i 1);
    ]

let main =
  func "main" []
    [
      decl "line" (alloc (i 512));
      decl "expanded" (alloc (i 512));
      decl "word" (alloc (i 128));
      decl "len" (call "read_line" [ i 0; v "line"; i 512 ]);
      decl "cur" (i 0 -% i 1);
      while_ (v "len" >=% i 0)
        [
          if_
            ((ld8 (v "line") ==% chr '\t') &&% (v "cur" >=% i 0))
            [
              (* Command line for the current target: stored unexpanded,
                 expanded at execution time (when $@/$< are known). *)
              decl "coff" (ld32 (g "mk_cmds_next"));
              expr (call "strcpy" [ g "mk_cmds" +% v "coff"; v "line" +% i 1 ]);
              st32 (g "mk_cmds_next")
                (v "coff" +% call "strlen" [ v "line" +% i 1 ] +% i 1);
              st32 (g "mk_cmd_idx" +% (count 2 *% i 4)) (v "coff");
              when_ (field "mk_ncmds" (v "cur") ==% i 0)
                [ set_field "mk_cmd0" (v "cur") (count 2) ];
              set_field "mk_ncmds" (v "cur") (field "mk_ncmds" (v "cur") +% i 1);
              set_count 2 (count 2 +% i 1);
            ]
            [
              decl "eqp" (call "var_def_pos" [ v "line" ]);
              if_ (v "eqp" >=% i 0)
                [
                  (* NAME = value *)
                  decl "name" (alloc (i 64));
                  decl "k" (i 0);
                  while_
                    ((v "k" <% v "eqp")
                    &&% not_ (call "is_space" [ ld8 (v "line" +% v "k") ])
                    &&% (v "k" <% i 63))
                    [
                      st8 (v "name" +% v "k") (ld8 (v "line" +% v "k"));
                      incr_ "k";
                    ];
                  st8 (v "name" +% v "k") (i 0);
                  decl "vp" (v "eqp" +% i 1);
                  while_ (call "is_space" [ ld8 (v "line" +% v "vp") ])
                    [ incr_ "vp" ];
                  expr (call "mkv_define" [ v "name"; v "line" +% v "vp" ]);
                ]
                [
                  decl "colon" (call "strchr" [ v "line"; chr ':' ]);
                  when_ ((v "colon" <>% i 0) &&% (v "len" >% i 0))
                    [
                      (* New rule: expand variables in the whole line
                         first, then parse target and dependencies. *)
                      st8 (v "colon") (i 0);
                      set "cur" (count 0);
                      set_count 0 (count 0 +% i 1);
                      set_field "mk_name_off" (v "cur")
                        (call "names_add" [ v "line" ]);
                      set_field "mk_ndeps" (v "cur") (i 0);
                      set_field "mk_ncmds" (v "cur") (i 0);
                      set_field "mk_dep0" (v "cur") (count 1);
                      expr
                        (call "expand_into"
                           [ v "colon" +% i 1; v "expanded"; i 512; i 0 ]);
                      decl "pos_cell" (alloc (i 4));
                      st32 (v "pos_cell") (i 0);
                      decl "wl"
                        (call "scan_word"
                           [ v "expanded"; v "pos_cell"; v "word"; i 128 ]);
                      while_ (v "wl" >% i 0)
                        [
                          st32 (g "mk_deps" +% (count 1 *% i 4))
                            (call "names_add" [ v "word" ]);
                          set_count 1 (count 1 +% i 1);
                          set_field "mk_ndeps" (v "cur")
                            (field "mk_ndeps" (v "cur") +% i 1);
                          set "wl"
                            (call "scan_word"
                               [ v "expanded"; v "pos_cell"; v "word"; i 128 ]);
                        ];
                    ];
                ];
            ];
          set "len" (call "read_line" [ i 0; v "line"; i 512 ]);
        ];
      (* Evaluate every target. *)
      decl "t" (i 0);
      while_ (v "t" <% count 0)
        [ expr (call "build" [ v "t" ]); incr_ "t" ];
      expr (call "print_num" [ i 0; count 3 ]);
      putc (i 0) (chr '\n');
      ret (count 3);
    ]

let benchmark =
  Bench.make ~name:"make"
    ~description:"generated makefiles with variables (60-500 targets)"
    ~ast:(fun () ->
      Libc.link ~globals ~entry:"main"
        [
          mkv_add_arena; mkv_find; mkv_define; expand_into; find_target;
          names_add; build; scan_word; var_def_pos; main;
        ])
    ~profile_inputs:(fun () ->
      List.map
        (fun (seed, targets) ->
          Vm.Io.input
            ~label:(Printf.sprintf "makefile %d targets" targets)
            [ Inputs.makefile ~seed ~targets ])
        [ (41, 60); (42, 120); (43, 180); (44, 240); (45, 300); (46, 360) ])
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"makefile 500 targets"
        [ Inputs.makefile ~seed:700 ~targets:500 ])
