(* The benchmark suite: the ten UNIX-like programs of the paper's Table 2,
   in the paper's order. *)

let all : Bench.t list =
  [
    W_cccp.benchmark;
    W_cmp.benchmark;
    W_compress.benchmark;
    W_grep.benchmark;
    W_lex.benchmark;
    W_make.benchmark;
    W_tee.benchmark;
    W_tar.benchmark;
    W_wc.benchmark;
    W_yacc.benchmark;
  ]

let names = List.map (fun b -> b.Bench.name) all

exception Unknown_benchmark of string

let find name =
  match List.find_opt (fun b -> b.Bench.name = name) all with
  | Some b -> b
  | None -> raise (Unknown_benchmark name)
