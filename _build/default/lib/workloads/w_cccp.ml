(* cccp: a miniature C preprocessor, like GNU cccp.

   Supported:
   - object-like macros: #define NAME value, #undef, redefinition;
     recursive macro expansion with a depth limit, string-literal and
     character-literal protection;
   - conditionals: #ifdef/#ifndef, #if with a full constant-expression
     evaluator (defined(X), ! ~ -, * / %, + -, << >>, relational,
     equality, & ^ |, && ||), #elif, #else, #endif, arbitrarily nested;
   - #include "name" against an include library supplied on stream 1
     ("%% name" section delimiters), nested up to 8 deep;
   - comment stripping (/ * ... * /, possibly spanning lines) and
     backslash-newline splicing, both literal-aware.

   The macro table is a tombstone-style open-addressing hash over global
   storage; names and replacement texts live in bump arenas.  Slot
   encoding in the name table: 0 = empty, 1 = tombstone, otherwise the
   arena offset of the stored name plus 2. *)

open Ir.Ast.Dsl

let tbl_slots = 1024
let max_cond_depth = 32
let max_include_depth = 8
let max_expand_depth = 8

let globals =
  [
    ("cpp_tbl_name", Ir.Ast.Gzero (tbl_slots * 4));
    ("cpp_tbl_val", Ir.Ast.Gzero (tbl_slots * 4));
    ("cpp_names", Ir.Ast.Gzero 65536);
    ("cpp_vals", Ir.Ast.Gzero 65536);
    ("cpp_next", Ir.Ast.Gzero 8); (* [0] names cursor, [4] vals cursor *)
    (* conditional-inclusion stack *)
    ("cond_active", Ir.Ast.Gzero max_cond_depth);
    ("cond_taken", Ir.Ast.Gzero max_cond_depth);
    ("cond_state", Ir.Ast.Gzero 12); (* [0] depth, [4] inactive, [8] errors *)
    (* include machinery: library buffer and source stack *)
    ("inc_buf_ptr", Ir.Ast.Gzero 4); (* address of the loaded library *)
    ("inc_len", Ir.Ast.Gzero 4);
    ("src_pos", Ir.Ast.Gzero (max_include_depth * 4));
    ("src_end", Ir.Ast.Gzero (max_include_depth * 4));
    ("src_depth", Ir.Ast.Gzero 4);
    (* reader state: 1 while inside a block comment *)
    ("rl_comment", Ir.Ast.Gzero 4);
    ("if_pos", Ir.Ast.Gzero 4); (* cursor of the #if expression parser *)
    ("kw_define", Ir.Ast.Gstring "define");
    ("kw_undef", Ir.Ast.Gstring "undef");
    ("kw_ifdef", Ir.Ast.Gstring "ifdef");
    ("kw_ifndef", Ir.Ast.Gstring "ifndef");
    ("kw_if", Ir.Ast.Gstring "if");
    ("kw_elif", Ir.Ast.Gstring "elif");
    ("kw_else", Ir.Ast.Gstring "else");
    ("kw_endif", Ir.Ast.Gstring "endif");
    ("kw_include", Ir.Ast.Gstring "include");
    ("kw_defined", Ir.Ast.Gstring "defined");
    ("builtin_std", Ir.Ast.Gstring "__STDC__");
    ("builtin_std_val", Ir.Ast.Gstring "1");
    ("builtin_impact", Ir.Ast.Gstring "__IMPACT__");
    ("builtin_impact_val", Ir.Ast.Gstring "1989");
  ]

(* ---------- symbol table ---------- *)

(* Append a string to a bump arena; [cursor] addresses the next-offset
   word.  Returns the offset of the copy. *)
let arena_add =
  func "arena_add" [ "arena"; "cursor"; "s" ]
    [
      decl "off" (ld32 (v "cursor"));
      expr (call "strcpy" [ v "arena" +% v "off"; v "s" ]);
      st32 (v "cursor") (v "off" +% call "strlen" [ v "s" ] +% i 1);
      ret (v "off");
    ]

(* Probe for [name]; returns the slot holding it, or the insertion slot
   (first tombstone on the chain, else the terminating empty slot). *)
let sym_find =
  func "sym_find" [ "name" ]
    [
      decl "h" (call "hash_string" [ v "name"; i tbl_slots ]);
      decl "first_free" (i 0 -% i 1);
      while_ (i 1)
        [
          decl "e" (ld32 (g "cpp_tbl_name" +% (v "h" *% i 4)));
          when_ (v "e" ==% i 0)
            [
              if_ (v "first_free" >=% i 0)
                [ ret (v "first_free") ]
                [ ret (v "h") ];
            ];
          if_ (v "e" ==% i 1)
            [ when_ (v "first_free" <% i 0) [ set "first_free" (v "h") ] ]
            [
              when_
                (call "strcmp" [ v "name"; g "cpp_names" +% (v "e" -% i 2) ]
                ==% i 0)
                [ ret (v "h") ];
            ];
          set "h" ((v "h" +% i 1) &% i (tbl_slots - 1));
        ];
      ret (i 0);
    ]

let slot_live =
  func "slot_live" [ "slot" ]
    [ ret (ld32 (g "cpp_tbl_name" +% (v "slot" *% i 4)) >=% i 2) ]

let sym_define =
  func "sym_define" [ "name"; "value" ]
    [
      decl "slot" (call "sym_find" [ v "name" ]);
      decl "voff"
        (call "arena_add" [ g "cpp_vals"; g "cpp_next" +% i 4; v "value" ]);
      st32 (g "cpp_tbl_val" +% (v "slot" *% i 4)) (v "voff");
      when_ (not_ (call "slot_live" [ v "slot" ]))
        [
          decl "noff"
            (call "arena_add" [ g "cpp_names"; g "cpp_next"; v "name" ]);
          st32 (g "cpp_tbl_name" +% (v "slot" *% i 4)) (v "noff" +% i 2);
        ];
      ret0;
    ]

let sym_undef =
  func "sym_undef" [ "name" ]
    [
      decl "slot" (call "sym_find" [ v "name" ]);
      when_ (call "slot_live" [ v "slot" ])
        [ st32 (g "cpp_tbl_name" +% (v "slot" *% i 4)) (i 1) ];
      ret0;
    ]

let sym_value =
  func "sym_value" [ "slot" ]
    [ ret (g "cpp_vals" +% ld32 (g "cpp_tbl_val" +% (v "slot" *% i 4))) ]

(* ---------- include library and character source ---------- *)

(* Load all of stream 1 into memory once. *)
let inc_load =
  func "inc_load" []
    [
      decl "len" (stream_len (i 1));
      decl "buf" (alloc (v "len" +% i 1));
      decl "k" (i 0);
      while_ (v "k" <% v "len")
        [ st8 (v "buf" +% v "k") (getc (i 1)); incr_ "k" ];
      st8 (v "buf" +% v "len") (i 0);
      st32 (g "inc_buf_ptr") (v "buf");
      st32 (g "inc_len") (v "len");
      ret0;
    ]

(* Find the section "%% name" in the include library; on success pushes a
   source-stack entry covering the section body and returns 1. *)
let inc_push =
  func "inc_push" [ "name" ]
    [
      when_ (ld32 (g "src_depth") >=% i (max_include_depth - 1)) [ ret (i 0) ];
      decl "buf" (ld32 (g "inc_buf_ptr"));
      decl "len" (ld32 (g "inc_len"));
      decl "k" (i 0);
      decl "nlen" (call "strlen" [ v "name" ]);
      while_ (v "k" <% v "len")
        [
          (* at a line start, check for the "%% " marker *)
          when_
            ((ld8 (v "buf" +% v "k") ==% chr '%')
            &&% (ld8 (v "buf" +% v "k" +% i 1) ==% chr '%')
            &&% (ld8 (v "buf" +% v "k" +% i 2) ==% chr ' '))
            [
              decl "p" (v "k" +% i 3);
              when_
                ((call "strncmp" [ v "buf" +% v "p"; v "name"; v "nlen" ]
                 ==% i 0)
                &&% (ld8 (v "buf" +% v "p" +% v "nlen") ==% chr '\n'))
                [
                  (* body runs to the next "%%" marker or end *)
                  decl "start" (v "p" +% v "nlen" +% i 1);
                  decl "e" (v "start");
                  while_
                    ((v "e" <% v "len")
                    &&% not_
                          ((ld8 (v "buf" +% v "e") ==% chr '%')
                          &&% (ld8 (v "buf" +% v "e" +% i 1) ==% chr '%')
                          &&% (ld8 (v "buf" +% v "e" +% i 2) ==% chr ' ')))
                    [ incr_ "e" ];
                  decl "d" (ld32 (g "src_depth") +% i 1);
                  st32 (g "src_depth") (v "d");
                  st32 (g "src_pos" +% (v "d" *% i 4)) (v "buf" +% v "start");
                  st32 (g "src_end" +% (v "d" *% i 4)) (v "buf" +% v "e");
                  ret (i 1);
                ];
            ];
          (* advance to the next line *)
          while_
            ((v "k" <% v "len") &&% (ld8 (v "buf" +% v "k") <>% chr '\n'))
            [ incr_ "k" ];
          incr_ "k";
        ];
      ret (i 0);
    ]

(* Next raw character, honoring the include stack. *)
let cpp_getc =
  func "cpp_getc" []
    [
      while_ (i 1)
        [
          decl "d" (ld32 (g "src_depth"));
          when_ (v "d" ==% i 0) [ ret (getc (i 0)) ];
          decl "p" (ld32 (g "src_pos" +% (v "d" *% i 4)));
          if_ (v "p" <% ld32 (g "src_end" +% (v "d" *% i 4)))
            [
              st32 (g "src_pos" +% (v "d" *% i 4)) (v "p" +% i 1);
              ret (ld8 (v "p"));
            ]
            [ st32 (g "src_depth") (v "d" -% i 1) ];
        ];
      ret (i 0 -% i 1);
    ]

(* Read one logical line: splices backslash-newline, strips block
   comments (replaced by one space; they may span lines), leaves string
   and character literals intact.  Returns length or -1 at end of
   input. *)
let cpp_read_line =
  func "cpp_read_line" [ "buf"; "max" ]
    [
      decl "n" (i 0);
      decl "got" (i 0);
      decl "in_str" (i 0); (* 0 none, '"' or '\'' when inside a literal *)
      decl "c" (call "cpp_getc" []);
      while_ (v "c" >=% i 0)
        [
          set "got" (i 1);
          if_ (ld32 (g "rl_comment") <>% i 0)
            [
              (* inside a comment: look for the terminating star-slash *)
              when_ (v "c" ==% chr '*')
                [
                  decl "c2" (call "cpp_getc" []);
                  if_ (v "c2" ==% chr '/')
                    [
                      st32 (g "rl_comment") (i 0);
                      when_ (v "n" <% (v "max" -% i 1))
                        [ st8 (v "buf" +% v "n") (chr ' '); incr_ "n" ];
                    ]
                    [ when_ (v "c2" <% i 0) [ break_ ] ];
                ];
            ]
            [
              when_ ((v "c" ==% chr '\n') &&% (v "in_str" ==% i 0)) [ break_ ];
              if_
                ((v "in_str" ==% i 0)
                &&% (v "c" ==% chr '/')
                &&% (ld32 (g "rl_comment") ==% i 0))
                [
                  decl "c2" (call "cpp_getc" []);
                  if_ (v "c2" ==% chr '*')
                    [ st32 (g "rl_comment") (i 1) ]
                    [
                      when_ (v "n" <% (v "max" -% i 2))
                        [
                          st8 (v "buf" +% v "n") (v "c");
                          incr_ "n";
                          when_ ((v "c2" >=% i 0) &&% (v "c2" <>% chr '\n'))
                            [ st8 (v "buf" +% v "n") (v "c2"); incr_ "n" ];
                        ];
                      when_ ((v "c2" ==% chr '\n') &&% (v "in_str" ==% i 0))
                        [ break_ ];
                    ];
                ]
                [
                  if_ ((v "c" ==% chr '\\') &&% (v "in_str" ==% i 0))
                    [
                      decl "c2" (call "cpp_getc" []);
                      if_ (v "c2" ==% chr '\n')
                        [ expr (i 0) ] (* splice: swallow both *)
                        [
                          when_ (v "n" <% (v "max" -% i 2))
                            [
                              st8 (v "buf" +% v "n") (v "c");
                              incr_ "n";
                              when_ (v "c2" >=% i 0)
                                [ st8 (v "buf" +% v "n") (v "c2"); incr_ "n" ];
                            ];
                        ];
                    ]
                    [
                      (* literal tracking *)
                      when_
                        ((v "c" ==% chr '"') ||% (v "c" ==% chr '\''))
                        [
                          if_ (v "in_str" ==% i 0)
                            [ set "in_str" (v "c") ]
                            [
                              when_ (v "in_str" ==% v "c")
                                [ set "in_str" (i 0) ];
                            ];
                        ];
                      when_ (v "n" <% (v "max" -% i 1))
                        [ st8 (v "buf" +% v "n") (v "c"); incr_ "n" ];
                    ];
                ];
            ];
          set "c" (call "cpp_getc" []);
        ];
      st8 (v "buf" +% v "n") (i 0);
      when_ ((v "c" <% i 0) &&% not_ (v "got")) [ ret (i 0 -% i 1) ];
      ret (v "n");
    ]

(* ---------- scanning helpers ---------- *)

let scan_word =
  func "scan_word" [ "line"; "pos_cell"; "out"; "out_max" ]
    [
      decl "p" (ld32 (v "pos_cell"));
      while_
        ((ld8 (v "line" +% v "p") <>% i 0)
        &&% call "is_space" [ ld8 (v "line" +% v "p") ])
        [ incr_ "p" ];
      decl "n" (i 0);
      decl "c" (ld8 (v "line" +% v "p"));
      while_
        ((v "c" <>% i 0)
        &&% not_ (call "is_space" [ v "c" ])
        &&% (v "n" <% (v "out_max" -% i 1)))
        [
          st8 (v "out" +% v "n") (v "c");
          incr_ "n";
          incr_ "p";
          set "c" (ld8 (v "line" +% v "p"));
        ];
      st8 (v "out" +% v "n") (i 0);
      st32 (v "pos_cell") (v "p");
      ret (v "n");
    ]

let scan_rest =
  func "scan_rest" [ "line"; "pos_cell"; "out"; "out_max" ]
    [
      decl "p" (ld32 (v "pos_cell"));
      while_
        ((ld8 (v "line" +% v "p") <>% i 0)
        &&% call "is_space" [ ld8 (v "line" +% v "p") ])
        [ incr_ "p" ];
      decl "n" (i 0);
      decl "c" (ld8 (v "line" +% v "p"));
      while_ ((v "c" <>% i 0) &&% (v "n" <% (v "out_max" -% i 1)))
        [
          st8 (v "out" +% v "n") (v "c");
          incr_ "n";
          incr_ "p";
          set "c" (ld8 (v "line" +% v "p"));
        ];
      (* trim trailing blanks *)
      while_
        ((v "n" >% i 0)
        &&% call "is_space" [ ld8 (v "out" +% (v "n" -% i 1)) ])
        [ decr_ "n" ];
      st8 (v "out" +% v "n") (i 0);
      st32 (v "pos_cell") (v "p");
      ret (v "n");
    ]

let ident_start =
  func "ident_start" [ "c" ]
    [ ret (call "is_alpha" [ v "c" ] ||% (v "c" ==% chr '_')) ]

let ident_char =
  func "ident_char" [ "c" ]
    [ ret (call "is_alnum" [ v "c" ] ||% (v "c" ==% chr '_')) ]

(* ---------- macro expansion ---------- *)

(* Emit [text] with macros expanded recursively (depth-limited), leaving
   string/char literals untouched.  [tmp] is a scratch identifier
   buffer. *)
let emit_expanded =
  func "emit_expanded" [ "text"; "depth" ]
    [
      decl "tmp" (alloc (i 128));
      decl "p" (i 0);
      decl "in_str" (i 0);
      decl "c" (ld8 (v "text"));
      while_ (v "c" <>% i 0)
        [
          if_
            ((v "in_str" ==% i 0) &&% call "ident_start" [ v "c" ])
            [
              decl "n" (i 0);
              while_ (call "ident_char" [ v "c" ])
                [
                  when_ (v "n" <% i 127)
                    [ st8 (v "tmp" +% v "n") (v "c"); incr_ "n" ];
                  incr_ "p";
                  set "c" (ld8 (v "text" +% v "p"));
                ];
              st8 (v "tmp" +% v "n") (i 0);
              decl "slot" (call "sym_find" [ v "tmp" ]);
              if_
                (call "slot_live" [ v "slot" ]
                &&% (v "depth" <% i max_expand_depth))
                [
                  expr
                    (call "emit_expanded"
                       [ call "sym_value" [ v "slot" ]; v "depth" +% i 1 ]);
                ]
                [ expr (call "print_string" [ i 0; v "tmp" ]) ];
            ]
            [
              when_
                ((v "c" ==% chr '"') ||% (v "c" ==% chr '\''))
                [
                  if_ (v "in_str" ==% i 0)
                    [ set "in_str" (v "c") ]
                    [
                      when_ (v "in_str" ==% v "c") [ set "in_str" (i 0) ];
                    ];
                ];
              putc (i 0) (v "c");
              incr_ "p";
              set "c" (ld8 (v "text" +% v "p"));
            ];
        ];
      ret0;
    ]

let process_line =
  func "process_line" [ "line" ]
    [
      expr (call "emit_expanded" [ v "line"; i 0 ]);
      putc (i 0) (chr '\n');
      ret0;
    ]

(* ---------- #if constant-expression evaluator ----------

   Recursive descent over the directive line; the cursor lives in the
   if_pos global.  Grammar (lowest to highest precedence):
     or:   and ('||' and)*
     and:  bor ('&&' bor)*
     bor:  bxor ('|' bxor)*        bxor: band ('^' band)*
     band: eq ('&' eq)*            eq:   rel (('=='|'!=') rel)*
     rel:  shift (('<'|'>'|'<='|'>=') shift)*
     shift: add (('<<'|'>>') add)*  add: mul (('+'|'-') mul)*
     mul:  unary (('*'|'/'|'%') unary)*
     unary: ('!'|'-'|'~') unary | primary
     primary: number | defined(X) | defined X | ident (expands, else 0)
            | '(' or ')' *)

let if_skip_ws =
  func "if_skip_ws" [ "line" ]
    [
      decl "p" (ld32 (g "if_pos"));
      while_ (call "is_space" [ ld8 (v "line" +% v "p") ]) [ incr_ "p" ];
      st32 (g "if_pos") (v "p");
      ret (ld8 (v "line" +% v "p"));
    ]

(* Parse an identifier at the cursor into [out]; returns its length. *)
let if_ident =
  func "if_ident" [ "line"; "out" ]
    [
      decl "p" (ld32 (g "if_pos"));
      decl "n" (i 0);
      decl "c" (ld8 (v "line" +% v "p"));
      while_ (call "ident_char" [ v "c" ])
        [
          when_ (v "n" <% i 127) [ st8 (v "out" +% v "n") (v "c"); incr_ "n" ];
          incr_ "p";
          set "c" (ld8 (v "line" +% v "p"));
        ];
      st8 (v "out" +% v "n") (i 0);
      st32 (g "if_pos") (v "p");
      ret (v "n");
    ]

let if_primary =
  func "if_primary" [ "line"; "depth" ]
    [
      decl "c" (call "if_skip_ws" [ v "line" ]);
      decl "p" (ld32 (g "if_pos"));
      when_ (v "c" ==% chr '(')
        [
          st32 (g "if_pos") (v "p" +% i 1);
          decl "inner" (call "if_or" [ v "line"; v "depth" ]);
          when_ (call "if_skip_ws" [ v "line" ] ==% chr ')')
            [ st32 (g "if_pos") (ld32 (g "if_pos") +% i 1) ];
          ret (v "inner");
        ];
      when_ (call "is_digit" [ v "c" ])
        [
          decl "acc" (i 0);
          while_ (call "is_digit" [ v "c" ])
            [
              set "acc" ((v "acc" *% i 10) +% (v "c" -% chr '0'));
              set "p" (v "p" +% i 1);
              set "c" (ld8 (v "line" +% v "p"));
            ];
          (* swallow integer suffixes like 1L / 2U *)
          while_ (call "is_alpha" [ v "c" ])
            [ set "p" (v "p" +% i 1); set "c" (ld8 (v "line" +% v "p")) ];
          st32 (g "if_pos") (v "p");
          ret (v "acc");
        ];
      when_ (call "ident_start" [ v "c" ])
        [
          decl "name" (alloc (i 128));
          expr (call "if_ident" [ v "line"; v "name" ]);
          if_ (call "strcmp" [ v "name"; g "kw_defined" ] ==% i 0)
            [
              (* defined(X) or defined X *)
              decl "c2" (call "if_skip_ws" [ v "line" ]);
              decl "paren" (i 0);
              when_ (v "c2" ==% chr '(')
                [
                  set "paren" (i 1);
                  st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
                  expr (call "if_skip_ws" [ v "line" ]);
                ];
              expr (call "if_ident" [ v "line"; v "name" ]);
              when_
                ((v "paren" <>% i 0)
                &&% (call "if_skip_ws" [ v "line" ] ==% chr ')'))
                [ st32 (g "if_pos") (ld32 (g "if_pos") +% i 1) ];
              ret (call "slot_live" [ call "sym_find" [ v "name" ] ]);
            ]
            [
              (* a macro name evaluates to its (numeric) value when
                 defined and expansion depth remains; otherwise 0 *)
              decl "slot" (call "sym_find" [ v "name" ]);
              when_
                (call "slot_live" [ v "slot" ]
                &&% (v "depth" <% i max_expand_depth))
                [
                  decl "saved" (ld32 (g "if_pos"));
                  st32 (g "if_pos") (i 0);
                  decl "value"
                    (call "if_or"
                       [ call "sym_value" [ v "slot" ]; v "depth" +% i 1 ]);
                  st32 (g "if_pos") (v "saved");
                  ret (v "value");
                ];
              ret (i 0);
            ];
        ];
      (* unknown character: consume to avoid loops, value 0 *)
      when_ (v "c" <>% i 0) [ st32 (g "if_pos") (v "p" +% i 1) ];
      ret (i 0);
    ]

let if_unary =
  func "if_unary" [ "line"; "depth" ]
    [
      decl "c" (call "if_skip_ws" [ v "line" ]);
      when_ (v "c" ==% chr '!')
        [
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          ret (not_ (call "if_unary" [ v "line"; v "depth" ]));
        ];
      when_ (v "c" ==% chr '-')
        [
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          ret (neg (call "if_unary" [ v "line"; v "depth" ]));
        ];
      when_ (v "c" ==% chr '~')
        [
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          ret (call "if_unary" [ v "line"; v "depth" ] ^% (i 0 -% i 1));
        ];
      ret (call "if_primary" [ v "line"; v "depth" ]);
    ]

let if_mul =
  func "if_mul" [ "line"; "depth" ]
    [
      decl "acc" (call "if_unary" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          when_
            (not_
               ((v "c" ==% chr '*') ||% (v "c" ==% chr '/')
               ||% (v "c" ==% chr '%')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          decl "rhs" (call "if_unary" [ v "line"; v "depth" ]);
          if_ (v "c" ==% chr '*')
            [ set "acc" (v "acc" *% v "rhs") ]
            [
              if_ (v "rhs" ==% i 0)
                [ set "acc" (i 0) ]
                [
                  if_ (v "c" ==% chr '/')
                    [ set "acc" (v "acc" /% v "rhs") ]
                    [ set "acc" (v "acc" %% v "rhs") ];
                ];
            ];
        ];
      ret (v "acc");
    ]

let if_add =
  func "if_add" [ "line"; "depth" ]
    [
      decl "acc" (call "if_mul" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          when_ (not_ ((v "c" ==% chr '+') ||% (v "c" ==% chr '-')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          decl "rhs" (call "if_mul" [ v "line"; v "depth" ]);
          if_ (v "c" ==% chr '+')
            [ set "acc" (v "acc" +% v "rhs") ]
            [ set "acc" (v "acc" -% v "rhs") ];
        ];
      ret (v "acc");
    ]

let if_shift =
  func "if_shift" [ "line"; "depth" ]
    [
      decl "acc" (call "if_add" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "p" (ld32 (g "if_pos"));
          decl "c2" (ld8 (v "line" +% v "p" +% i 1));
          when_
            (not_
               (((v "c" ==% chr '<') &&% (v "c2" ==% chr '<'))
               ||% ((v "c" ==% chr '>') &&% (v "c2" ==% chr '>'))))
            [ ret (v "acc") ];
          st32 (g "if_pos") (v "p" +% i 2);
          decl "rhs" (call "if_add" [ v "line"; v "depth" ]);
          if_ (v "c" ==% chr '<')
            [ set "acc" (v "acc" <<% (v "rhs" &% i 31)) ]
            [ set "acc" (v "acc" >>% (v "rhs" &% i 31)) ];
        ];
      ret (v "acc");
    ]

let if_rel =
  func "if_rel" [ "line"; "depth" ]
    [
      decl "acc" (call "if_shift" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "p" (ld32 (g "if_pos"));
          decl "c2" (ld8 (v "line" +% v "p" +% i 1));
          (* exclude << >> (handled below us) and == != (above us);
             accept < > <= >= *)
          when_
            (not_
               (((v "c" ==% chr '<') &&% (v "c2" <>% chr '<'))
               ||% ((v "c" ==% chr '>') &&% (v "c2" <>% chr '>'))))
            [ ret (v "acc") ];
          decl "eq" (v "c2" ==% chr '=');
          st32 (g "if_pos") (v "p" +% i 1 +% v "eq");
          decl "rhs" (call "if_shift" [ v "line"; v "depth" ]);
          if_ (v "c" ==% chr '<')
            [
              if_ (v "eq")
                [ set "acc" (v "acc" <=% v "rhs") ]
                [ set "acc" (v "acc" <% v "rhs") ];
            ]
            [
              if_ (v "eq")
                [ set "acc" (v "acc" >=% v "rhs") ]
                [ set "acc" (v "acc" >% v "rhs") ];
            ];
        ];
      ret (v "acc");
    ]

let if_eq =
  func "if_eq" [ "line"; "depth" ]
    [
      decl "acc" (call "if_rel" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "p" (ld32 (g "if_pos"));
          decl "c2" (ld8 (v "line" +% v "p" +% i 1));
          when_
            (not_
               (((v "c" ==% chr '=') &&% (v "c2" ==% chr '='))
               ||% ((v "c" ==% chr '!') &&% (v "c2" ==% chr '='))))
            [ ret (v "acc") ];
          st32 (g "if_pos") (v "p" +% i 2);
          decl "rhs" (call "if_rel" [ v "line"; v "depth" ]);
          if_ (v "c" ==% chr '=')
            [ set "acc" (v "acc" ==% v "rhs") ]
            [ set "acc" (v "acc" <>% v "rhs") ];
        ];
      ret (v "acc");
    ]

let if_band =
  func "if_band" [ "line"; "depth" ]
    [
      decl "acc" (call "if_eq" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "c2" (ld8 (v "line" +% ld32 (g "if_pos") +% i 1));
          when_ (not_ ((v "c" ==% chr '&') &&% (v "c2" <>% chr '&')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          set "acc" (v "acc" &% call "if_eq" [ v "line"; v "depth" ]);
        ];
      ret (v "acc");
    ]

let if_bxor =
  func "if_bxor" [ "line"; "depth" ]
    [
      decl "acc" (call "if_band" [ v "line"; v "depth" ]);
      while_ (call "if_skip_ws" [ v "line" ] ==% chr '^')
        [
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          set "acc" (v "acc" ^% call "if_band" [ v "line"; v "depth" ]);
        ];
      ret (v "acc");
    ]

let if_bor =
  func "if_bor" [ "line"; "depth" ]
    [
      decl "acc" (call "if_bxor" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "c2" (ld8 (v "line" +% ld32 (g "if_pos") +% i 1));
          when_ (not_ ((v "c" ==% chr '|') &&% (v "c2" <>% chr '|')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 1);
          set "acc" (v "acc" |% call "if_bxor" [ v "line"; v "depth" ]);
        ];
      ret (v "acc");
    ]

(* The logical levels keep raw values and normalize to 0/1 only when an
   operator actually applies, so "#if A" with A=3 sees 3, not 1. *)
let if_and =
  func "if_and" [ "line"; "depth" ]
    [
      decl "acc" (call "if_bor" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "c2" (ld8 (v "line" +% ld32 (g "if_pos") +% i 1));
          when_ (not_ ((v "c" ==% chr '&') &&% (v "c2" ==% chr '&')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 2);
          decl "rhs" (call "if_bor" [ v "line"; v "depth" ]);
          set "acc" ((v "acc" <>% i 0) &% (v "rhs" <>% i 0));
        ];
      ret (v "acc");
    ]

let if_or =
  func "if_or" [ "line"; "depth" ]
    [
      decl "acc" (call "if_and" [ v "line"; v "depth" ]);
      while_ (i 1)
        [
          decl "c" (call "if_skip_ws" [ v "line" ]);
          decl "c2" (ld8 (v "line" +% ld32 (g "if_pos") +% i 1));
          when_ (not_ ((v "c" ==% chr '|') &&% (v "c2" ==% chr '|')))
            [ ret (v "acc") ];
          st32 (g "if_pos") (ld32 (g "if_pos") +% i 2);
          decl "rhs" (call "if_and" [ v "line"; v "depth" ]);
          set "acc" ((v "acc" <>% i 0) |% (v "rhs" <>% i 0));
        ];
      ret (v "acc");
    ]

(* Evaluate the #if expression in [line] starting at offset [start]. *)
let if_eval =
  func "if_eval" [ "line"; "start" ]
    [
      st32 (g "if_pos") (v "start");
      ret (call "if_or" [ v "line"; i 0 ] <>% i 0);
    ]

(* ---------- conditional stack ---------- *)

let cond_depth = ld32 (g "cond_state")
let cond_inactive = ld32 (g "cond_state" +% i 4)
let set_cond_depth e = st32 (g "cond_state") e
let set_cond_inactive e = st32 (g "cond_state" +% i 4) e

(* Push a new conditional level with branch condition [cond]. *)
let cond_push =
  func "cond_push" [ "cond" ]
    [
      decl "d" (cond_depth +% i 1);
      when_ (v "d" >=% i max_cond_depth) [ ret0 ];
      set_cond_depth (v "d");
      decl "parent" (cond_inactive ==% i 0);
      decl "a" (v "parent" &% (v "cond" <>% i 0));
      st8 (g "cond_active" +% v "d") (v "a");
      (* "taken" suppresses later branches: set when this branch is taken
         or when the parent is inactive (no branch may ever fire) *)
      st8 (g "cond_taken" +% v "d") (v "a" |% not_ (v "parent"));
      when_ (not_ (v "a")) [ set_cond_inactive (cond_inactive +% i 1) ];
      ret0;
    ]

(* #elif with condition, #else is elif(1). *)
let cond_else =
  func "cond_else" [ "cond" ]
    [
      decl "d" (cond_depth);
      when_ (v "d" ==% i 0) [ ret0 ];
      if_ (ld8 (g "cond_active" +% v "d") <>% i 0)
        [
          (* leaving a taken branch *)
          st8 (g "cond_active" +% v "d") (i 0);
          set_cond_inactive (cond_inactive +% i 1);
        ]
        [
          (* parent is active iff this level is the only inactive one *)
          when_
            ((ld8 (g "cond_taken" +% v "d") ==% i 0)
            &&% (cond_inactive ==% i 1)
            &&% (v "cond" <>% i 0))
            [
              st8 (g "cond_active" +% v "d") (i 1);
              st8 (g "cond_taken" +% v "d") (i 1);
              set_cond_inactive (cond_inactive -% i 1);
            ];
        ];
      ret0;
    ]

let cond_pop =
  func "cond_pop" []
    [
      decl "d" (cond_depth);
      when_ (v "d" ==% i 0) [ ret0 ];
      when_ (ld8 (g "cond_active" +% v "d") ==% i 0)
        [ set_cond_inactive (cond_inactive -% i 1) ];
      set_cond_depth (v "d" -% i 1);
      ret0;
    ]

let emitting = cond_inactive ==% i 0

(* ---------- directive handling and main loop ---------- *)

let handle_directive =
  func "handle_directive" [ "line"; "word"; "marg"; "value" ]
    [
      decl "pos_cell" (alloc (i 4));
      st32 (v "pos_cell") (i 1);
      expr (call "scan_word" [ v "line"; v "pos_cell"; v "word"; i 128 ]);
      (* #define NAME value *)
      when_ (call "strcmp" [ v "word"; g "kw_define" ] ==% i 0)
        [
          when_ emitting
            [
              expr (call "scan_word" [ v "line"; v "pos_cell"; v "marg"; i 128 ]);
              expr (call "scan_rest" [ v "line"; v "pos_cell"; v "value"; i 512 ]);
              expr (call "sym_define" [ v "marg"; v "value" ]);
            ];
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_undef" ] ==% i 0)
        [
          when_ emitting
            [
              expr (call "scan_word" [ v "line"; v "pos_cell"; v "marg"; i 128 ]);
              expr (call "sym_undef" [ v "marg" ]);
            ];
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_ifdef" ] ==% i 0)
        [
          expr (call "scan_word" [ v "line"; v "pos_cell"; v "marg"; i 128 ]);
          expr
            (call "cond_push"
               [ call "slot_live" [ call "sym_find" [ v "marg" ] ] ]);
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_ifndef" ] ==% i 0)
        [
          expr (call "scan_word" [ v "line"; v "pos_cell"; v "marg"; i 128 ]);
          expr
            (call "cond_push"
               [ not_ (call "slot_live" [ call "sym_find" [ v "marg" ] ]) ]);
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_if" ] ==% i 0)
        [
          expr
            (call "cond_push"
               [ call "if_eval" [ v "line"; ld32 (v "pos_cell") ] ]);
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_elif" ] ==% i 0)
        [
          (* evaluate lazily: only when the branch could fire *)
          if_
            ((cond_depth >% i 0)
            &&% (ld8 (g "cond_active" +% cond_depth) ==% i 0)
            &&% (ld8 (g "cond_taken" +% cond_depth) ==% i 0)
            &&% (cond_inactive ==% i 1))
            [
              expr
                (call "cond_else"
                   [ call "if_eval" [ v "line"; ld32 (v "pos_cell") ] ]);
            ]
            [ expr (call "cond_else" [ i 0 ]) ];
          ret0;
        ];
      when_ (call "strcmp" [ v "word"; g "kw_else" ] ==% i 0)
        [ expr (call "cond_else" [ i 1 ]); ret0 ];
      when_ (call "strcmp" [ v "word"; g "kw_endif" ] ==% i 0)
        [ expr (call "cond_pop" []); ret0 ];
      when_ (call "strcmp" [ v "word"; g "kw_include" ] ==% i 0)
        [
          when_ emitting
            [
              (* parse the "name" between quotes *)
              decl "p" (ld32 (v "pos_cell"));
              while_
                ((ld8 (v "line" +% v "p") <>% i 0)
                &&% (ld8 (v "line" +% v "p") <>% chr '"'))
                [ incr_ "p" ];
              when_ (ld8 (v "line" +% v "p") ==% chr '"')
                [
                  incr_ "p";
                  decl "n" (i 0);
                  while_
                    ((ld8 (v "line" +% v "p") <>% i 0)
                    &&% (ld8 (v "line" +% v "p") <>% chr '"')
                    &&% (v "n" <% i 127))
                    [
                      st8 (v "marg" +% v "n") (ld8 (v "line" +% v "p"));
                      incr_ "n";
                      incr_ "p";
                    ];
                  st8 (v "marg" +% v "n") (i 0);
                  expr (call "inc_push" [ v "marg" ]);
                ];
            ];
          ret0;
        ];
      (* unknown directives: count and drop *)
      st32 (g "cond_state" +% i 8) (ld32 (g "cond_state" +% i 8) +% i 1);
      ret0;
    ]

let main =
  func "main" []
    [
      decl "line" (alloc (i 1024));
      decl "word" (alloc (i 128));
      decl "marg" (alloc (i 128));
      decl "value" (alloc (i 512));
      decl "nlines" (i 0);
      expr (call "inc_load" []);
      (* built-in macros *)
      expr (call "sym_define" [ g "builtin_std"; g "builtin_std_val" ]);
      expr (call "sym_define" [ g "builtin_impact"; g "builtin_impact_val" ]);
      decl "len" (call "cpp_read_line" [ v "line"; i 1024 ]);
      while_ (v "len" >=% i 0)
        [
          incr_ "nlines";
          if_
            (ld8 (v "line") ==% chr '#')
            [
              expr
                (call "handle_directive" [ v "line"; v "word"; v "marg"; v "value" ]);
            ]
            [
              when_ emitting [ expr (call "process_line" [ v "line" ]) ];
            ];
          set "len" (call "cpp_read_line" [ v "line"; i 1024 ]);
        ];
      ret (v "nlines");
    ]

let funcs =
  [
    arena_add; sym_find; slot_live; sym_define; sym_undef; sym_value;
    inc_load; inc_push; cpp_getc; cpp_read_line; scan_word; scan_rest;
    ident_start; ident_char; emit_expanded; process_line; if_skip_ws;
    if_ident; if_primary; if_unary; if_mul; if_add; if_shift; if_rel;
    if_eq; if_band; if_bxor; if_bor; if_and; if_or; if_eval; cond_push;
    cond_else; cond_pop; handle_directive; main;
  ]

let benchmark =
  Bench.make ~name:"cccp"
    ~description:"C sources with macros, conditionals and includes (100-2600 lines)"
    ~ast:(fun () -> Libc.link ~globals ~entry:"main" funcs)
    ~profile_inputs:(fun () ->
      List.map
        (fun (seed, lines) ->
          let source, includes = Inputs.cpp_source_with_includes ~seed ~lines in
          Vm.Io.input
            ~label:(Printf.sprintf "cpp source %d lines" lines)
            [ source; includes ])
        [ (21, 100); (22, 250); (23, 400); (24, 550); (25, 700);
          (26, 850); (27, 1000); (28, 1400) ])
    ~trace_input:(fun () ->
      let source, includes =
        Inputs.cpp_source_with_includes ~seed:500 ~lines:2600
      in
      Vm.Io.input ~label:"cpp source 2600 lines" [ source; includes ])
