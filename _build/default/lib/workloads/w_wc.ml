(* wc: count lines, words and characters of the input, like UNIX wc.
   The inner loop calls the library's is_space on every byte — a prime
   inline-expansion candidate, as in the paper.

   Argument 0 is an output-selection bitmask (1 lines, 2 words, 4 chars,
   8 longest-line length; 0 means the classic "lines words chars"). *)

open Ir.Ast.Dsl

let main =
  func "main" []
    [
      decl "opts" (arg 0);
      when_ (v "opts" ==% i 0) [ set "opts" (i 7) ];
      decl "lines" (i 0);
      decl "words" (i 0);
      decl "chars" (i 0);
      decl "in_word" (i 0);
      decl "linelen" (i 0);
      decl "maxline" (i 0);
      decl "c" (getc (i 0));
      while_ (v "c" >=% i 0)
        [
          incr_ "chars";
          if_ (v "c" ==% chr '\n')
            [
              incr_ "lines";
              when_ (v "linelen" >% v "maxline")
                [ set "maxline" (v "linelen") ];
              set "linelen" (i 0);
            ]
            [ incr_ "linelen" ];
          if_
            (call "is_space" [ v "c" ])
            [ set "in_word" (i 0) ]
            [
              when_ (not_ (v "in_word"))
                [ set "in_word" (i 1); incr_ "words" ];
            ];
          set "c" (getc (i 0));
        ];
      when_ (v "linelen" >% v "maxline") [ set "maxline" (v "linelen") ];
      decl "printed" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% i 4)
        [
          decl "bit" (i 1 <<% v "k");
          when_ ((v "opts" &% v "bit") <>% i 0)
            [
              when_ (v "printed" <>% i 0) [ putc (i 0) (chr ' ') ];
              switch (v "k")
                [
                  ([ 0 ], [ expr (call "print_num" [ i 0; v "lines" ]); break_ ]);
                  ([ 1 ], [ expr (call "print_num" [ i 0; v "words" ]); break_ ]);
                  ([ 2 ], [ expr (call "print_num" [ i 0; v "chars" ]); break_ ]);
                  ([ 3 ], [ expr (call "print_num" [ i 0; v "maxline" ]); break_ ]);
                ]
                [];
              set "printed" (i 1);
            ];
          incr_ "k";
        ];
      putc (i 0) (chr '\n');
      ret (v "lines");
    ]

let benchmark =
  Bench.make ~name:"wc"
    ~description:"prose-like text files (20-120 KB)"
    ~ast:(fun () -> Libc.link ~entry:"main" [ main ])
    ~profile_inputs:(fun () ->
      List.map
        (fun seed ->
          Vm.Io.input
            ~label:(Printf.sprintf "text seed %d" seed)
            [ Inputs.text ~seed ~bytes:(20_000 + (seed * 4000)) ])
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ~trace_input:(fun () ->
      Vm.Io.input ~label:"text 120KB" [ Inputs.text ~seed:99 ~bytes:120_000 ])
