(** Deterministic pseudo-random generator (splitmix64) for reproducible
    synthetic inputs. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform in [0, bound); raises on non-positive bound. *)

val bool : t -> bool
val range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val lowercase_letter : t -> char
val word : t -> int -> int -> string
