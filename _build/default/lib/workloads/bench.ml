(* Common shape of a benchmark: a DSL program plus its profiling inputs
   (several, as in the paper's Table 2 "runs" column) and one held-out
   trace input used for the cache simulations. *)

type t = {
  name : string;
  description : string; (* Table 2 "input description" *)
  ast : Ir.Ast.program Lazy.t;
  program : Ir.Prog.program Lazy.t; (* memoized lowering *)
  profile_inputs : Vm.Io.input list Lazy.t;
  trace_input : Vm.Io.input Lazy.t;
}

let make ~name ~description ~ast ~profile_inputs ~trace_input =
  let ast = lazy (ast ()) in
  {
    name;
    description;
    ast;
    program = lazy (Ir.Lower.program (Lazy.force ast));
    profile_inputs = lazy (profile_inputs ());
    trace_input = lazy (trace_input ());
  }

let ast t = Lazy.force t.ast
let program t = Lazy.force t.program
let profile_inputs t = Lazy.force t.profile_inputs
let trace_input t = Lazy.force t.trace_input
let source_lines t = Ir.Ast.program_lines (ast t)
let runs t = List.length (profile_inputs t)
