(** The ten-benchmark suite, in the paper's Table 2 order:
    cccp, cmp, compress, grep, lex, make, tee, tar, wc, yacc. *)

exception Unknown_benchmark of string

val all : Bench.t list
val names : string list

val find : string -> Bench.t
(** Raises {!Unknown_benchmark}. *)
