lib/workloads/libc.mli: Ir
