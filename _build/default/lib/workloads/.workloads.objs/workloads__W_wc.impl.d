lib/workloads/w_wc.ml: Bench Inputs Ir Libc List Printf Vm
