lib/workloads/inputs.mli:
