lib/workloads/w_cmp.ml: Bench Inputs Ir Libc List Vm
