lib/workloads/slr.mli:
