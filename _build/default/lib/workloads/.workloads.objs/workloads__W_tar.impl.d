lib/workloads/w_tar.ml: Bench Inputs Ir Libc List Printf Vm
