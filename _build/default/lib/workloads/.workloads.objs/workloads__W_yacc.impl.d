lib/workloads/w_yacc.ml: Array Bench Char Inputs Ir Lazy Libc List Printf Slr String Vm
