lib/workloads/w_cccp.ml: Bench Inputs Ir Libc List Printf Vm
