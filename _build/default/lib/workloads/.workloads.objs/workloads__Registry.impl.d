lib/workloads/registry.ml: Bench List W_cccp W_cmp W_compress W_grep W_lex W_make W_tar W_tee W_wc W_yacc
