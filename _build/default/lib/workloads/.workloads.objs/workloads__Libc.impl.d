lib/workloads/libc.ml: Char Ir String
