lib/workloads/w_lex.ml: Array Bench Char Inputs Ir Libc List Printf String Vm
