lib/workloads/inputs.ml: Array Buffer Bytes Char Hashtbl List Printf Rng String
