lib/workloads/w_tee.ml: Bench Inputs Ir Libc List Vm
