lib/workloads/w_compress.ml: Bench Inputs Ir Libc Vm
