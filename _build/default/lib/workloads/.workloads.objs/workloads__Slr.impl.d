lib/workloads/slr.ml: Array Hashtbl List Printf Queue Set
