lib/workloads/rng.mli:
