lib/workloads/bench.mli: Ir Lazy Vm
