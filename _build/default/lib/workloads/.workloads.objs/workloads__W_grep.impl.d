lib/workloads/w_grep.ml: Array Bench Inputs Ir Libc List Vm
