lib/workloads/w_make.ml: Bench Inputs Ir Libc List Printf Vm
