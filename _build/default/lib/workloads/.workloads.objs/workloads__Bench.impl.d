lib/workloads/bench.ml: Ir Lazy List Vm
