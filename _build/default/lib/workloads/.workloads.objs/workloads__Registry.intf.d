lib/workloads/registry.mli: Bench
