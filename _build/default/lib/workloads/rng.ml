(* Deterministic pseudo-random generator (splitmix64) used by the input
   generators, so every profiling and trace input is reproducible without
   touching the global Random state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

(* Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l = List.nth l (int t (List.length l))

let lowercase_letter t = Char.chr (Char.code 'a' + int t 26)

let word t min_len max_len =
  let len = range t min_len max_len in
  String.init len (fun _ -> lowercase_letter t)
