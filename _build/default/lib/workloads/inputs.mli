(** Seeded synthetic input generators — stand-ins for the paper's real
    program inputs (text files, C sources, makefiles, grammars). *)

val text : seed:int -> bytes:int -> string
(** Prose-like lines of lowercase words, exactly [bytes] long. *)

val mutate : seed:int -> noise_per_mille:int -> string -> string
(** Copy with per-byte corruption probability, for cmp's file pairs. *)

val c_source : seed:int -> lines:int -> string
(** C-like source with declarations, control statements, comments and
    [#define] lines. *)

val cpp_source : seed:int -> lines:int -> string
(** C source with heavy [#define]/[#ifdef] usage for cccp. *)

val cpp_source_with_includes : seed:int -> lines:int -> string * string
(** (source, include library for stream 1): the full cccp diet —
    [#include], [#if]/[#elif] expressions, comments, literals, splices. *)

val makefile : seed:int -> targets:int -> string
(** Acyclic makefile-like rules with commands. *)

val expressions : seed:int -> count:int -> string
(** Arithmetic [expr ;] statements for the yacc grammar. *)

val statements : seed:int -> count:int -> string
(** Assignment and expression statements over variables for the yacc
    workload's full grammar; variables are used only after definition. *)

val name_list : seed:int -> count:int -> string
(** Newline-separated member names for tar. *)

val tar_manifest : seed:int -> members:int -> string * string
(** (manifest of "name size" lines, concatenated member contents). *)

val tar_archive : seed:int -> members:int -> string * (string * int) list
(** (USTAR archive bytes matching the tar workload's create mode, member
    specs); input for its list/extract modes. *)

val dsl_hash_string : string -> int -> int
(** The DSL library's djb2 hash, for mirroring hash-derived values. *)

val compressible : seed:int -> bytes:int -> string
(** Repetitive payload so compress finds structure. *)

val lzw_compress : string -> string
(** OCaml-side LZW compressor matching the compress workload's encoding;
    generates inputs for its decompression mode (and test oracles). *)

val c_keywords : string array
