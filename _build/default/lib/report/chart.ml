(* ASCII charts for trend visualization in experiment output. *)

(* Horizontal bar chart.  Values are scaled to the widest bar; each row
   shows its label, bar and formatted value. *)
let bars ?(width = 48) ?(format = fun v -> Printf.sprintf "%.3f" v) ~title
    rows =
  let buf = Buffer.create 512 in
  if title <> "" then begin
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  end;
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. rows in
  List.iter
    (fun (label, v) ->
      let n =
        if peak <= 0. then 0
        else int_of_float (Float.round (float_of_int width *. v /. peak))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s%s %s\n" label_width label
           (String.concat "" (List.init n (fun _ -> "#")))
           (String.make (width - n) ' ')
           (format v)))
    rows;
  Buffer.contents buf

(* Multi-series sparkline table: one line per series over shared x
   labels, rendered with a small glyph ramp. *)
let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let sparklines ?(format = fun v -> Printf.sprintf "%.3f" v) ~title ~points
    series =
  let buf = Buffer.create 512 in
  if title <> "" then begin
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  end;
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0
      series
  in
  let peak =
    List.fold_left
      (fun acc (_, values) -> List.fold_left Float.max acc values)
      0. series
  in
  List.iter
    (fun (label, values) ->
      let glyphs =
        String.concat ""
          (List.map
             (fun v ->
               let idx =
                 if peak <= 0. then 0
                 else
                   int_of_float
                     (Float.round (v /. peak *. float_of_int (Array.length ramp - 1)))
               in
               String.make 1 ramp.(max 0 (min (Array.length ramp - 1) idx)))
             values)
      in
      let last = List.nth values (List.length values - 1) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s [%s] last %s\n" label_width label glyphs
           (format last)))
    series;
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  points: %s\n" label_width ""
       (String.concat " " points));
  Buffer.contents buf
