(* Numeric formatting shared by the experiment tables. *)

(* Percentages in the paper's style: "2.70%". *)
let pct ?(digits = 2) x = Printf.sprintf "%.*f%%" digits (100. *. x)

(* Raw ratio as percent value already scaled (e.g. code increase 0.17 ->
   "17%"). *)
let pct0 x = Printf.sprintf "%.0f%%" (100. *. x)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

(* Instruction/byte counts in the paper's style: "11.7M", "2.2K". *)
let human n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.1fG" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1fM" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fK" (f /. 1e3)
  else string_of_int n

let opt_string = function Some s -> s | None -> "-"
