(** ASCII charts for trend visualization in experiment output. *)

val bars :
  ?width:int ->
  ?format:(float -> string) ->
  title:string ->
  (string * float) list ->
  string
(** Horizontal bar chart scaled to the largest value. *)

val sparklines :
  ?format:(float -> string) ->
  title:string ->
  points:string list ->
  (string * float list) list ->
  string
(** One glyph-ramp line per series over shared x points (the point labels
    are listed in a legend line). *)
