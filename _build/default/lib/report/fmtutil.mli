(** Numeric formatting shared by the experiment tables. *)

val pct : ?digits:int -> float -> string
(** [pct 0.027] is ["2.70%"]. *)

val pct0 : float -> string
(** [pct0 0.17] is ["17%"]. *)

val f1 : float -> string
val f2 : float -> string

val human : int -> string
(** ["11.7M"], ["2.2K"], … *)

val opt_string : string option -> string
