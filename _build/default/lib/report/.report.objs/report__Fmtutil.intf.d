lib/report/fmtutil.mli:
