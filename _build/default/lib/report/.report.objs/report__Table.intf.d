lib/report/table.mli:
