lib/report/fmtutil.ml: Printf
