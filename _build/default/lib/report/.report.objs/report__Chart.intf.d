lib/report/chart.mli:
