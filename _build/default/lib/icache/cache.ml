(* Unified instruction-cache simulator.

   One engine covers the paper's whole design space: direct-mapped, N-way
   and fully associative (LRU replacement), with whole-block fill, block
   sectoring, or partial loading.  Validity is tracked per granule: the
   whole block (Whole), a sector (Sectored), or a word (Partial).

   Metrics follow the paper's definitions:
   - miss ratio    = misses / instruction fetches;
   - traffic ratio = 4-byte bus words transferred / instruction fetches
     (each instruction fetch is itself one 4-byte access, so a full 64-byte
     fill is 16 bus accesses — reproducing e.g. cccp's 2.70% miss / 43.13%
     traffic arithmetic). *)

type outcome = {
  miss : bool;
  fetched_words : int; (* bus words transferred for this access *)
  word_in_block : int; (* word offset of the access within its block *)
}

type t = {
  cfg : Config.t;
  nsets : int;
  ways : int;
  granules : int; (* granules per block *)
  words_per_granule : int;
  tags : int array; (* frame -> tag, -1 when empty *)
  valid : Bytes.t; (* frame * granules + granule -> 0/1 *)
  lru : int array; (* frame -> last-touch clock *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable words_fetched : int;
  mutable prefetches : int; (* next-line prefetch fills issued *)
}

let create cfg =
  Config.validate cfg;
  let nsets = Config.nsets cfg in
  let ways = Config.ways_of cfg in
  let granules = Config.granules_per_block cfg in
  let frames = nsets * ways in
  {
    cfg;
    nsets;
    ways;
    granules;
    words_per_granule = Config.granule_bytes cfg / Config.word_bytes;
    tags = Array.make frames (-1);
    valid = Bytes.make (frames * granules) '\000';
    lru = Array.make frames 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    words_fetched = 0;
    prefetches = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Bytes.fill t.valid 0 (Bytes.length t.valid) '\000';
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.words_fetched <- 0;
  t.prefetches <- 0

let granule_valid t frame granule =
  Bytes.unsafe_get t.valid ((frame * t.granules) + granule) <> '\000'

let set_granule t frame granule =
  Bytes.unsafe_set t.valid ((frame * t.granules) + granule) '\001'

let clear_granules t frame =
  Bytes.fill t.valid (frame * t.granules) t.granules '\000'

(* Fetch policy on a miss in [frame] at [granule]: how many granules to
   bring in, starting where. *)
let fill t frame granule =
  match t.cfg.Config.fill with
  | Config.Whole ->
    (* granules = 1 for whole-block fill *)
    set_granule t frame 0;
    Config.words_per_block t.cfg
  | Config.Sectored _ ->
    set_granule t frame granule;
    t.words_per_granule
  | Config.Partial ->
    (* Load from the accessed word to the end of the block or up to a
       valid entry previously loaded in (paper §4.2.2). *)
    let g = ref granule in
    let fetched = ref 0 in
    let stop = ref false in
    while (not !stop) && !g < t.granules do
      if granule_valid t frame !g then stop := true
      else begin
        set_granule t frame !g;
        incr fetched;
        incr g
      end
    done;
    !fetched * t.words_per_granule

(* Next-line tagged prefetch: on a miss to block n, also fill block n+1
   if it is absent.  The fill transfers a whole block (counted as traffic
   but not as a miss) and inserts at MRU. *)
let prefetch_next t block_no =
  let nb = block_no + 1 in
  let set = nb mod t.nsets in
  let tag = nb / t.nsets in
  let base = set * t.ways in
  let present = ref false in
  for i = 0 to t.ways - 1 do
    if t.tags.(base + i) = tag then present := true
  done;
  if not !present then begin
    let victim = ref (base + 0) in
    (try
       for i = 0 to t.ways - 1 do
         if t.tags.(base + i) = -1 then begin
           victim := base + i;
           raise Exit
         end;
         if t.lru.(base + i) < t.lru.(!victim) then victim := base + i
       done
     with Exit -> ());
    let frame = !victim in
    t.tags.(frame) <- tag;
    clear_granules t frame;
    set_granule t frame 0;
    t.lru.(frame) <- t.clock;
    t.words_fetched <- t.words_fetched + Config.words_per_block t.cfg;
    t.prefetches <- t.prefetches + 1
  end

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let block_no = addr / t.cfg.Config.block in
  let set = block_no mod t.nsets in
  let tag = block_no / t.nsets in
  let offset = addr mod t.cfg.Config.block in
  let granule = offset / Config.granule_bytes t.cfg in
  let word_in_block = offset / Config.word_bytes in
  let base = set * t.ways in
  (* Search the set for a tag match. *)
  let way = ref (-1) in
  (try
     for i = 0 to t.ways - 1 do
       if t.tags.(base + i) = tag then begin
         way := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !way >= 0 then begin
    let frame = base + !way in
    t.lru.(frame) <- t.clock;
    if granule_valid t frame granule then
      { miss = false; fetched_words = 0; word_in_block }
    else begin
      (* Tag present but granule absent: sector/partial miss. *)
      t.misses <- t.misses + 1;
      let w = fill t frame granule in
      t.words_fetched <- t.words_fetched + w;
      { miss = true; fetched_words = w; word_in_block }
    end
  end
  else begin
    (* Full miss: victimize an empty frame or the LRU one. *)
    t.misses <- t.misses + 1;
    let victim = ref (base + 0) in
    (try
       for i = 0 to t.ways - 1 do
         if t.tags.(base + i) = -1 then begin
           victim := base + i;
           raise Exit
         end;
         if t.lru.(base + i) < t.lru.(!victim) then victim := base + i
       done
     with Exit -> ());
    let frame = !victim in
    t.tags.(frame) <- tag;
    clear_granules t frame;
    t.lru.(frame) <- t.clock;
    let w = fill t frame granule in
    t.words_fetched <- t.words_fetched + w;
    if t.cfg.Config.prefetch then prefetch_next t block_no;
    { miss = true; fetched_words = w; word_in_block }
  end

let miss_ratio t =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

let traffic_ratio t =
  if t.accesses = 0 then 0.
  else float_of_int t.words_fetched /. float_of_int t.accesses

let avg_fetch_words t =
  if t.misses = 0 then 0.
  else float_of_int t.words_fetched /. float_of_int t.misses

(* Tag storage overhead in bytes, assuming 4 bytes of tag space per block
   as in the paper's 3%-of-data-store estimate. *)
let tag_bytes t = t.nsets * t.ways * 4

let accesses t = t.accesses
let misses t = t.misses
let words_fetched t = t.words_fetched
let prefetches t = t.prefetches

(* Internal consistency (used by property tests): a frame with an invalid
   tag has no valid granules. *)
let invariant t =
  let ok = ref true in
  Array.iteri
    (fun frame tag ->
      if tag = -1 then
        for granule = 0 to t.granules - 1 do
          if granule_valid t frame granule then ok := false
        done)
    t.tags;
  !ok
