(* Instruction cache geometry and fill policy. *)

type assoc =
  | Direct
  | Ways of int
  | Full

type fill =
  | Whole (* fetch the entire missing block *)
  | Sectored of int (* valid bit per sector; fetch only the sector *)
  | Partial (* valid bit per word; fetch from the miss to end/valid *)

type t = {
  size : int;
  block : int;
  assoc : assoc;
  fill : fill;
  prefetch : bool; (* next-line tagged prefetch on miss (Whole fill only) *)
}

let word_bytes = 4

let ways_of t =
  match t.assoc with
  | Direct -> 1
  | Ways n -> n
  | Full -> t.size / t.block

let nsets t = t.size / (t.block * ways_of t)

let granule_bytes t =
  match t.fill with
  | Whole -> t.block
  | Sectored s -> s
  | Partial -> word_bytes

let granules_per_block t = t.block / granule_bytes t
let words_per_block t = t.block / word_bytes

exception Invalid of string

let validate t =
  let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt in
  if t.size <= 0 || t.block <= 0 then fail "non-positive size or block";
  if t.block mod word_bytes <> 0 then fail "block not a multiple of %d" word_bytes;
  if t.size mod t.block <> 0 then fail "size %d not a multiple of block %d" t.size t.block;
  (match t.assoc with
  | Ways n when n <= 0 -> fail "non-positive associativity"
  | Ways n when t.size mod (t.block * n) <> 0 ->
    fail "size not divisible by block*ways"
  | Direct | Ways _ | Full -> ());
  (match t.fill with
  | Sectored s when s <= 0 || s mod word_bytes <> 0 || t.block mod s <> 0 ->
    fail "invalid sector size %d" s
  | Whole | Sectored _ | Partial -> ());
  (match (t.prefetch, t.fill) with
  | true, (Sectored _ | Partial) -> fail "prefetch requires whole-block fill"
  | (true | false), _ -> ());
  if nsets t < 1 then fail "fewer than one set"

let make ?(assoc = Direct) ?(fill = Whole) ?(prefetch = false) ~size ~block
    () =
  let t = { size; block; assoc; fill; prefetch } in
  validate t;
  t

let assoc_name = function
  | Direct -> "direct"
  | Ways n -> string_of_int n ^ "-way"
  | Full -> "full"

let fill_name = function
  | Whole -> "whole"
  | Sectored s -> Printf.sprintf "sectored(%dB)" s
  | Partial -> "partial"

let describe t =
  Printf.sprintf "%dB/%dB %s %s%s" t.size t.block (assoc_name t.assoc)
    (fill_name t.fill)
    (if t.prefetch then " +prefetch" else "")
