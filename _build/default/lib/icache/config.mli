(** Instruction cache geometry and fill policy. *)

type assoc =
  | Direct
  | Ways of int
  | Full

type fill =
  | Whole  (** fetch the entire missing block *)
  | Sectored of int  (** valid bit per sector; fetch only the sector *)
  | Partial
      (** valid bit per word; fetch from the missed word to the end of the
          block or the first already-valid word (paper §4.2.2) *)

type t = {
  size : int;
  block : int;
  assoc : assoc;
  fill : fill;
  prefetch : bool;
      (** next-line tagged prefetch on miss; requires whole-block fill *)
}

exception Invalid of string

val word_bytes : int
(** Memory bus width and instruction width: 4 bytes. *)

val make :
  ?assoc:assoc ->
  ?fill:fill ->
  ?prefetch:bool ->
  size:int ->
  block:int ->
  unit ->
  t
(** Validated constructor; raises {!Invalid}. *)

val validate : t -> unit
val ways_of : t -> int
val nsets : t -> int
val granule_bytes : t -> int
val granules_per_block : t -> int
val words_per_block : t -> int
val describe : t -> string
