(** Unified instruction-cache simulator: direct-mapped, N-way and fully
    associative (LRU), with whole-block fill, block sectoring, or partial
    loading.

    Metric definitions follow the paper: miss ratio = misses / fetches;
    traffic ratio = 4-byte bus words transferred / fetches. *)

type outcome = {
  miss : bool;
  fetched_words : int;  (** bus words transferred by this access *)
  word_in_block : int;  (** word offset of the access within its block *)
}

type t

val create : Config.t -> t
(** Raises {!Config.Invalid} on a bad configuration. *)

val reset : t -> unit

val access : t -> int -> outcome
(** Simulate one instruction fetch at a byte address. *)

val miss_ratio : t -> float
val traffic_ratio : t -> float
val avg_fetch_words : t -> float
(** Mean bus words per miss — Table 8's [avg.fetch] column. *)

val tag_bytes : t -> int
(** Tag storage, at 4 bytes per block frame (paper's overhead estimate). *)

val invariant : t -> bool
(** Internal consistency, for property tests. *)

val accesses : t -> int
val misses : t -> int
val words_fetched : t -> int

val prefetches : t -> int
(** Next-line prefetch fills issued (when the config enables prefetch). *)
