lib/icache/timing.ml:
