lib/icache/cache.mli: Config
