lib/icache/timing.mli:
