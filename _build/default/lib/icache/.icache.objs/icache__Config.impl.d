lib/icache/config.ml: Fmt Printf
