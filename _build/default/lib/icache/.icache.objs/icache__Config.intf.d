lib/icache/config.mli:
