lib/icache/cache.ml: Array Bytes Config
