(* Inline expansion tests: semantic preservation, recursion guards, size
   accounting. *)

open Ir.Ast.Dsl
open Helpers

let behavior_preserved ?config prog inputs =
  let p = Ir.Lower.program prog in
  let inlined, _report = Placement.Inline.expand ?config p ~inputs in
  Ir.Check.program inlined;
  List.iter
    (fun input ->
      let before = Vm.Interp.run p input in
      let after = Vm.Interp.run inlined input in
      Alcotest.(check int) "return value preserved"
        before.Vm.Interp.return_value after.Vm.Interp.return_value;
      Alcotest.(check string) "output preserved"
        (Vm.Io.output before.Vm.Interp.io 0)
        (Vm.Io.output after.Vm.Interp.io 0))
    inputs;
  (p, inlined)

let aggressive =
  {
    Placement.Inline.default_config with
    min_call_count = 1;
    min_call_fraction = 0.;
    max_program_growth = 10.;
  }

let simple_splice () =
  let p = Ir.Lower.program caller_prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input [] ] in
  let p', n =
    Placement.Inline.expand_once aggressive ~budget:100000 p prof
  in
  Alcotest.(check int) "one site inlined" 1 n;
  Ir.Check.program p';
  let r = Vm.Interp.run p' (Vm.Io.input []) in
  Alcotest.(check int) "behavior preserved" 90 r.Vm.Interp.return_value;
  Alcotest.(check int) "no dynamic calls remain" 0 r.Vm.Interp.dyn_calls;
  Alcotest.(check bool) "code grew" true
    (Ir.Prog.total_instr_count p' > Ir.Prog.total_instr_count p)

let splice_with_return_value () =
  (* Callee with multiple returns: every Ret must be rewritten. *)
  let prog =
    {
      Ir.Ast.globals = [];
      funcs =
        [
          func "classify" [ "x" ]
            [
              when_ (v "x" <% i 0) [ ret (i 0 -% i 1) ];
              when_ (v "x" ==% i 0) [ ret (i 0) ];
              ret (i 1);
            ];
          func "main" []
            [
              ret
                (call "classify" [ i 5 ]
                +% (call "classify" [ i 0 ] *% i 10)
                +% (call "classify" [ neg (i 3) ] *% i 100));
            ];
        ];
      entry = "main";
    }
  in
  let p, inlined = behavior_preserved ~config:aggressive prog [ Vm.Io.input [] ] in
  ignore p;
  let r = Vm.Interp.run inlined (Vm.Io.input []) in
  Alcotest.(check int) "all three sites inlined away" 0 r.Vm.Interp.dyn_calls

let recursion_not_inlined () =
  let prog =
    {
      Ir.Ast.globals = [];
      funcs =
        [
          func "fact" [ "n" ]
            [
              when_ (v "n" <=% i 1) [ ret (i 1) ];
              ret (v "n" *% call "fact" [ v "n" -% i 1 ]);
            ];
          func "main" [] [ ret (call "fact" [ i 10 ]) ];
        ];
      entry = "main";
    }
  in
  let p = Ir.Lower.program prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input [] ] in
  (* fact -> fact is recursive; main -> fact is fine (fact cannot reach
     main). *)
  let p', _ = Placement.Inline.expand_once aggressive ~budget:100000 p prof in
  Ir.Check.program p';
  let fact = Ir.Prog.func_by_name p' "fact" in
  let still_recursive =
    Array.exists
      (fun b -> Ir.Cfg.callee b = Some "fact")
      fact.Ir.Prog.blocks
  in
  Alcotest.(check bool) "fact still calls itself" true still_recursive;
  Alcotest.(check int) "value preserved" 3628800
    (Vm.Interp.run p' (Vm.Io.input [])).Vm.Interp.return_value

let mutual_recursion_guard () =
  let prog =
    {
      Ir.Ast.globals = [];
      funcs =
        [
          func "is_even" [ "n" ]
            [
              when_ (v "n" ==% i 0) [ ret (i 1) ];
              ret (call "is_odd" [ v "n" -% i 1 ]);
            ];
          func "is_odd" [ "n" ]
            [
              when_ (v "n" ==% i 0) [ ret (i 0) ];
              ret (call "is_even" [ v "n" -% i 1 ]);
            ];
          func "main" [] [ ret (call "is_even" [ i 40 ]) ];
        ];
      entry = "main";
    }
  in
  let _, inlined = behavior_preserved prog [ Vm.Io.input [] ] in
  Alcotest.(check int) "still computes" 1
    (Vm.Interp.run inlined (Vm.Io.input [])).Vm.Interp.return_value

let growth_budget_respected () =
  let p = Ir.Lower.program caller_prog in
  let before = Ir.Prog.total_instr_count p in
  let config =
    { aggressive with Placement.Inline.max_program_growth = 1.0 }
  in
  let p', report = Placement.Inline.expand ~config p ~inputs:[ Vm.Io.input [] ] in
  (* With zero growth allowance nothing can be inlined. *)
  Alcotest.(check int) "no sites under zero budget" 0
    report.Placement.Inline.sites_inlined;
  Alcotest.(check int) "size unchanged" before (Ir.Prog.total_instr_count p')

let workload_semantics_preserved () =
  (* End to end: a real workload behaves identically after expansion. *)
  List.iter
    (fun (name, input) ->
      let b = Workloads.Registry.find name in
      ignore
        (behavior_preserved (Workloads.Bench.ast b) [ input ]))
    [
      ("wc", Vm.Io.input [ "a few words\nand lines\n" ]);
      ("yacc", Vm.Io.input [ "1+2*3;(4-1)*10;9/2;" ]);
      ("cccp", Vm.Io.input [ "#define A 1\nx A y\n#undef A\nx A y\n" ]);
    ]

let suite =
  [
    Alcotest.test_case "simple splice" `Quick simple_splice;
    Alcotest.test_case "multiple returns" `Quick splice_with_return_value;
    Alcotest.test_case "recursion not inlined" `Quick recursion_not_inlined;
    Alcotest.test_case "mutual recursion guard" `Quick mutual_recursion_guard;
    Alcotest.test_case "growth budget respected" `Quick growth_budget_respected;
    Alcotest.test_case "workload semantics preserved" `Quick
      workload_semantics_preserved;
  ]
