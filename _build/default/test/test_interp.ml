(* Interpreter tests: intrinsics, faults, dynamic counters, observer
   callbacks. *)

open Ir.Ast.Dsl
open Helpers

let intrinsics () =
  (* getc/putc round trip with EOF. *)
  let echo =
    main_prog
      [
        decl "n" (i 0);
        decl "c" (getc (i 0));
        while_ (v "c" >=% i 0)
          [ putc (i 0) (v "c" +% i 1); incr_ "n"; set "c" (getc (i 0)) ];
        ret (v "n");
      ]
  in
  let r = run ~streams:[ "abc" ] echo in
  Alcotest.(check int) "bytes read" 3 r.Vm.Interp.return_value;
  Alcotest.(check string) "shifted output" "bcd" (Vm.Io.output r.Vm.Interp.io 0);
  (* stream_len and args *)
  Alcotest.(check int) "stream_len" 5
    (ret_of ~streams:[ "12345" ] (main_prog [ ret (stream_len (i 0)) ]));
  Alcotest.(check int) "arg" 42
    (ret_of ~args:[ 7; 42 ] (main_prog [ ret (arg 1) ]));
  Alcotest.(check int) "missing arg is 0" 0
    (ret_of (main_prog [ ret (arg 3) ]));
  (* alloc returns fresh zeroed, 4-aligned regions *)
  Alcotest.(check int) "alloc zeroed and disjoint" 0
    (ret_of
       (main_prog
          [
            decl "a" (alloc (i 10));
            decl "b" (alloc (i 10));
            st8 (v "a") (i 7);
            when_ (v "a" ==% v "b") [ ret (i 111) ];
            when_ ((v "a" %% i 4) <>% i 0) [ ret (i 222) ];
            ret (ld8 (v "b"));
          ]))

let faults () =
  let expect_fault name body =
    match run (main_prog body) with
    | exception Vm.Interp.Fault _ -> ()
    | exception Vm.Memory.Fault _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected a fault")
  in
  expect_fault "div by zero" [ decl "z" (i 0); ret (i 1 /% v "z") ];
  expect_fault "rem by zero" [ decl "z" (i 0); ret (i 1 %% v "z") ];
  expect_fault "null load" [ ret (ld8 (i 0)) ];
  expect_fault "null store" [ st32 (i 12) (i 1); ret0 ];
  expect_fault "abort" [ abort_; ret0 ];
  (* fuel exhaustion *)
  (match
     Vm.Interp.run ~fuel:1000
       (Ir.Lower.program (main_prog [ while_ (i 1) []; ret0 ]))
       (Vm.Io.input [])
   with
  | exception Vm.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected fuel fault")

let counters () =
  let r = run caller_prog in
  (* 10 calls to twice *)
  Alcotest.(check int) "calls" 10 r.Vm.Interp.dyn_calls;
  Alcotest.(check bool) "insns counted" true (r.Vm.Interp.dyn_insns > 0);
  Alcotest.(check bool) "branches exclude calls/returns" true
    (r.Vm.Interp.dyn_branches > 0);
  (* dyn_insns equals the sum of instr_count over executed blocks *)
  let p = Ir.Lower.program caller_prog in
  let total = ref 0 in
  let observer =
    {
      Vm.Interp.null_observer with
      on_block =
        (fun fid l ->
          total := !total + Ir.Cfg.instr_count p.Ir.Prog.funcs.(fid).Ir.Prog.blocks.(l));
    }
  in
  let r2 = Vm.Interp.run ~observer p (Vm.Io.input []) in
  Alcotest.(check int) "dyn_insns = sum of block sizes" r2.Vm.Interp.dyn_insns
    !total

let observer_arcs () =
  (* Each observed arc must be a structural successor of its source block,
     and each call arc a real call site. *)
  let p = Ir.Lower.program caller_prog in
  let bad = ref 0 in
  let arcs = ref 0 in
  let calls = ref 0 in
  let observer =
    {
      Vm.Interp.null_observer with
      on_arc =
        (fun fid src dst ->
          incr arcs;
          let b = p.Ir.Prog.funcs.(fid).Ir.Prog.blocks.(src) in
          if not (List.mem dst (Ir.Cfg.successors b)) then incr bad);
      on_call =
        (fun fid src callee ->
          incr calls;
          let b = p.Ir.Prog.funcs.(fid).Ir.Prog.blocks.(src) in
          match Ir.Cfg.callee b with
          | Some name ->
            if Ir.Prog.func_index p name <> callee then incr bad
          | None -> incr bad);
    }
  in
  ignore (Vm.Interp.run ~observer p (Vm.Io.input []));
  Alcotest.(check int) "all arcs structural" 0 !bad;
  Alcotest.(check int) "ten call arcs" 10 !calls;
  Alcotest.(check bool) "arcs observed" true (!arcs > 0)

let memory_roundtrip () =
  let m = Vm.Memory.create 4096 in
  Vm.Memory.write32 m 8192 0x12345678;
  Alcotest.(check int) "read32" 0x12345678 (Vm.Memory.read32 m 8192);
  Vm.Memory.write8 m 8192 0xff;
  Alcotest.(check int) "write8 modifies low byte" 0x123456ff
    (Vm.Memory.read32 m 8192);
  Vm.Memory.blit_string m "hello" 9000;
  Alcotest.(check string) "blit/read_string" "hello"
    (Vm.Memory.read_string m 9000 5);
  Alcotest.(check int) "uninitialized reads as zero" 0 (Vm.Memory.read32 m 20000);
  Alcotest.check_raises "low address faults"
    (Vm.Memory.Fault "access to unmapped low address 0") (fun () ->
      ignore (Vm.Memory.read8 m 0))

let io_streams () =
  let io = Vm.Io.of_input (Vm.Io.input ~args:[ 5 ] [ "ab"; "xyz" ]) in
  Alcotest.(check int) "stream0 first" (Char.code 'a') (Vm.Io.getc io 0);
  Alcotest.(check int) "stream1 independent" (Char.code 'x') (Vm.Io.getc io 1);
  Alcotest.(check int) "stream0 second" (Char.code 'b') (Vm.Io.getc io 0);
  Alcotest.(check int) "eof" (-1) (Vm.Io.getc io 0);
  Alcotest.(check int) "eof stable" (-1) (Vm.Io.getc io 0);
  Alcotest.(check int) "bad stream" (-1) (Vm.Io.getc io 99);
  Vm.Io.putc io 2 65;
  Vm.Io.putc io 2 66;
  Alcotest.(check string) "output buffered" "AB" (Vm.Io.output io 2);
  Alcotest.(check int) "arg" 5 (Vm.Io.arg io 0)

let suite =
  [
    Alcotest.test_case "intrinsics" `Quick intrinsics;
    Alcotest.test_case "faults" `Quick faults;
    Alcotest.test_case "dynamic counters" `Quick counters;
    Alcotest.test_case "observer arcs are structural" `Quick observer_arcs;
    Alcotest.test_case "memory round trips" `Quick memory_roundtrip;
    Alcotest.test_case "io streams" `Quick io_streams;
  ]
