(* Workload correctness: each benchmark's output is checked against an
   independent OCaml oracle on shared inputs. *)

let run_bench ?(args = []) name streams =
  let b = Workloads.Registry.find name in
  let p = Workloads.Bench.program b in
  Ir.Check.program p;
  Vm.Interp.run p (Vm.Io.input ~args streams)

let out r = Vm.Io.output r.Vm.Interp.io 0

let wc_oracle s =
  let lines = ref 0 and words = ref 0 and chars = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
      incr chars;
      if c = '\n' then incr lines;
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr words
      end)
    s;
  (!lines, !words, !chars)

let wc () =
  let input = Workloads.Inputs.text ~seed:5 ~bytes:5000 in
  let lines, words, chars = wc_oracle input in
  let r = run_bench "wc" [ input ] in
  Alcotest.(check string) "wc output"
    (Printf.sprintf "%d %d %d\n" lines words chars)
    (out r);
  Alcotest.(check int) "returns lines" lines r.Vm.Interp.return_value;
  (* option mask selects outputs; 8 adds the longest line length *)
  let lines2 = [ "short"; "a much longer line here"; "mid line" ] in
  let text = String.concat "\n" lines2 ^ "\n" in
  let maxline =
    List.fold_left (fun acc l -> max acc (String.length l)) 0 lines2
  in
  let r2 = run_bench "wc" ~args:[ 9 ] [ text ] in
  Alcotest.(check string) "lines + longest"
    (Printf.sprintf "3 %d\n" maxline)
    (out r2);
  let r3 = run_bench "wc" ~args:[ 2 ] [ text ] in
  Alcotest.(check string) "words only" "8\n" (out r3)

let cmp () =
  let base = Workloads.Inputs.text ~seed:9 ~bytes:3000 in
  let copy = Workloads.Inputs.mutate ~seed:10 ~noise_per_mille:30 base in
  let diffs = ref 0 and first = ref (-1) in
  String.iteri
    (fun idx c ->
      if c <> copy.[idx] then begin
        incr diffs;
        if !first < 0 then first := idx
      end)
    base;
  let r = run_bench "cmp" [ base; copy ] in
  Alcotest.(check int) "diff count" !diffs r.Vm.Interp.return_value;
  if !diffs > 0 then
    Alcotest.(check bool) "first offset reported" true
      (let prefix = Printf.sprintf "differ: %d " !first in
       String.length (out r) >= String.length prefix
       && String.sub (out r) 0 (String.length prefix) = prefix);
  (* Identical inputs: no differences. *)
  let r2 = run_bench "cmp" [ base; base ] in
  Alcotest.(check int) "identical files" 0 r2.Vm.Interp.return_value;
  Alcotest.(check string) "just the count" "0\n" (out r2);
  (* -l mode: every differing byte as "pos octal-a octal-b" (1-based). *)
  let a = "abcdef" and b = "abXdeY" in
  let r3 = run_bench "cmp" ~args:[ 1 ] [ a; b ] in
  Alcotest.(check string) "-l output"
    (Printf.sprintf "3 %03o %03o\n6 %03o %03o\n2\n" (Char.code 'c')
       (Char.code 'X') (Char.code 'f') (Char.code 'Y'))
    (out r3)

let tee () =
  let input = Workloads.Inputs.text ~seed:11 ~bytes:2000 in
  let r = run_bench "tee" [ input ] in
  Alcotest.(check int) "byte count" (String.length input)
    r.Vm.Interp.return_value;
  Alcotest.(check string) "stream 1 copy" input (Vm.Io.output r.Vm.Interp.io 1);
  Alcotest.(check string) "stream 2 copy" input (Vm.Io.output r.Vm.Interp.io 2)

(* Oracle for the K&R matcher (with character classes) used by grep,
   mirrored over string indexes. *)
let elem_len re k =
  if re.[k] <> '[' then 1
  else begin
    let n = ref 1 in
    if k + !n < String.length re && re.[k + !n] = '^' then incr n;
    if k + !n < String.length re && re.[k + !n] = ']' then incr n;
    while k + !n < String.length re && re.[k + !n] <> ']' do
      incr n
    done;
    if k + !n < String.length re && re.[k + !n] = ']' then incr n;
    !n
  end

let match_one re k c =
  match c with
  | None -> false
  | Some c ->
    if re.[k] = '.' then true
    else if re.[k] <> '[' then re.[k] = c
    else begin
      let p = ref (k + 1) in
      let negate = re.[!p] = '^' in
      if negate then incr p;
      let hit = ref false in
      let first = ref true in
      while
        !p < String.length re && re.[!p] <> '\000'
        && (re.[!p] <> ']' || !first)
      do
        first := false;
        if
          !p + 2 < String.length re
          && re.[!p + 1] = '-'
          && re.[!p + 2] <> ']'
        then begin
          if c >= re.[!p] && c <= re.[!p + 2] then hit := true;
          p := !p + 3
        end
        else begin
          if re.[!p] = c then hit := true;
          incr p
        end
      done;
      if negate then not !hit else !hit
    end

let char_at s k = if k < String.length s then Some s.[k] else None

let rec match_here re k text t =
  if k >= String.length re then true
  else begin
    let el = elem_len re k in
    if k + el < String.length re && re.[k + el] = '*' then
      match_star re k (k + el + 1) text t
    else if re.[k] = '$' && k + 1 = String.length re then
      t = String.length text
    else if match_one re k (char_at text t) then
      match_here re (k + el) text (t + 1)
    else false
  end

and match_star re elem rest text t =
  let rec go t =
    if match_here re rest text t then true
    else if match_one re elem (char_at text t) then go (t + 1)
    else false
  in
  go t

let match_pattern re text =
  if re <> "" && re.[0] = '^' then match_here re 1 text 0
  else begin
    let rec go t =
      match_here re 0 text t || if t < String.length text then go (t + 1) else false
    in
    go 0
  end

let grep () =
  List.iter
    (fun pattern ->
      let text = Workloads.Inputs.text ~seed:12 ~bytes:4000 in
      let lines = String.split_on_char '\n' text in
      let expected = List.filter (fun l -> l <> "" && match_pattern pattern l) lines in
      let r = run_bench "grep" [ text; pattern ^ "\n" ] in
      Alcotest.(check int)
        ("match count for " ^ pattern)
        (List.length expected) r.Vm.Interp.return_value;
      Alcotest.(check string)
        ("matched lines for " ^ pattern)
        (String.concat "" (List.map (fun l -> l ^ "\n") expected))
        (out r))
    [ "the"; "a.c"; "^qu"; "ing$"; "xy*z"; "zzz"; "[aeiou][mnr]";
      "[^a-m]x*[yz]"; "[a-c]*d"; "q[^u]" ]

let grep_options () =
  let text = "Apple pie\nbanana split\nCherry cake\napple strudel\n" in
  (* -i: case-insensitive *)
  let r = run_bench "grep" ~args:[ 4 ] [ text; "apple\n" ] in
  Alcotest.(check int) "-i finds both" 2 r.Vm.Interp.return_value;
  Alcotest.(check string) "-i prints originals" "Apple pie\napple strudel\n"
    (out r);
  (* -v: invert ("Apple pie" is the only line without a lowercase 'a') *)
  let r2 = run_bench "grep" ~args:[ 1 ] [ text; "a\n" ] in
  Alcotest.(check string) "-v" "Apple pie\n" (out r2);
  (* -c: count only *)
  let r3 = run_bench "grep" ~args:[ 2 ] [ text; "an\n" ] in
  Alcotest.(check string) "-c output" "1\n" (out r3);
  (* -n: line numbers *)
  let r4 = run_bench "grep" ~args:[ 8 ] [ text; "^a\n" ] in
  Alcotest.(check string) "-n output" "4:apple strudel\n" (out r4);
  (* multiple patterns = alternation *)
  let r5 = run_bench "grep" [ text; "pie\ncake\n" ] in
  Alcotest.(check string) "multi-pattern" "Apple pie\nCherry cake\n" (out r5)

(* LZW decoder oracle: rebuild the dictionary from the emitted 12-bit
   codes (2 bytes each, big-endian) and compare with the input. *)
let lzw_decode codes =
  let dict = Hashtbl.create 4096 in
  for c = 0 to 255 do
    Hashtbl.add dict c (String.make 1 (Char.chr c))
  done;
  let next = ref 256 in
  let buf = Buffer.create 1024 in
  let prev = ref None in
  List.iter
    (fun code ->
      let entry =
        match Hashtbl.find_opt dict code with
        | Some s -> s
        | None -> (
          (* The classic KwKwK case. *)
          match !prev with
          | Some p -> p ^ String.make 1 p.[0]
          | None -> Alcotest.fail "bad first code")
      in
      Buffer.add_string buf entry;
      (match !prev with
      | Some p when !next < 4096 ->
        Hashtbl.add dict !next (p ^ String.make 1 entry.[0]);
        incr next
      | _ -> ());
      prev := Some entry)
    codes;
  Buffer.contents buf

let compress () =
  let input = Workloads.Inputs.compressible ~seed:13 ~bytes:6000 in
  let r = run_bench "compress" [ input ] in
  let emitted = out r in
  Alcotest.(check int) "two bytes per code"
    0
    (String.length emitted mod 2);
  let codes =
    List.init
      (String.length emitted / 2)
      (fun k ->
        (Char.code emitted.[2 * k] lsl 8) lor Char.code emitted.[(2 * k) + 1])
  in
  Alcotest.(check int) "code count returned" (List.length codes)
    r.Vm.Interp.return_value;
  Alcotest.(check bool) "actually compresses" true
    (2 * List.length codes < String.length input);
  Alcotest.(check string) "round trip" input (lzw_decode codes);
  (* The OCaml mirror compressor produces the identical code stream. *)
  Alcotest.(check string) "mirror compressor agrees"
    (Workloads.Inputs.lzw_compress input)
    emitted

let decompress () =
  (* The workload's decompression mode inverts the OCaml compressor,
     including inputs that trigger the KwKwK case. *)
  List.iter
    (fun original ->
      let compressed = Workloads.Inputs.lzw_compress original in
      let r = run_bench "compress" ~args:[ 1 ] [ compressed ] in
      Alcotest.(check string) "decompressed" original (out r);
      Alcotest.(check int) "codes consumed"
        (String.length compressed / 2)
        r.Vm.Interp.return_value)
    [
      Workloads.Inputs.compressible ~seed:21 ~bytes:5000;
      "aaaaaaaaaaaa"; (* KwKwK *)
      "ababababababab";
      Workloads.Inputs.text ~seed:22 ~bytes:3000;
    ]

let cccp () =
  let input =
    String.concat "\n"
      [
        "#define PI 314";
        "#define E 271";
        "x = PI + E;";
        "#undef E";
        "y = PI + E;";
        "#ifdef PI";
        "z = PI;";
        "#else";
        "z = 0;";
        "#endif";
        "#ifndef PI";
        "w = 1;";
        "#endif";
        "#define PI 999";
        "q = PI;";
        "";
      ]
  in
  let r = run_bench "cccp" [ input; "" ] in
  Alcotest.(check string) "macro substitution"
    "x = 314 + 271;\ny = 314 + E;\nz = 314;\nq = 999;\n" (out r)

let cccp_advanced () =
  let check name source includes expected =
    let r = run_bench "cccp" [ source; includes ] in
    Alcotest.(check string) name expected (out r)
  in
  (* #if expression evaluator: precedence, defined(), elif chains. *)
  check "if expressions"
    "#define A 6\n#if A * 2 == 12 && defined(A)\nok1\n#endif\n\
     #if A < 3 || A % 4 == 2\nok2\n#endif\n\
     #if !defined(B) && (A | 1) == 7\nok3\n#endif\n\
     #if A >> 1 == 3 && A - 7 == -1\nok4\n#endif\n" ""
    "ok1\nok2\nok3\nok4\n";
  check "elif chain picks one branch"
    "#define V 2\n#if V == 1\na\n#elif V == 2\nb\n#elif V == 2\nc\n#else\nd\n#endif\n"
    "" "b\n";
  check "nested conditionals"
    "#if 1\n#if 0\nx\n#else\ny\n#endif\n#else\n#if 1\nz\n#endif\n#endif\n" ""
    "y\n";
  (* includes, include guards, nesting *)
  check "include with guard"
    "#include \"cfg\"\n#include \"cfg\"\nuse LIM\n"
    "%% cfg\n#ifndef GUARD\n#define GUARD 1\n#define LIM 42\nfrom cfg\n#endif\n"
    "from cfg\nuse 42\n";
  check "nested include"
    "#include \"outer\"\nEND INNER_X\n"
    "%% inner\n#define INNER_X 7\n%% outer\n#include \"inner\"\nouter sees INNER_X\n"
    "outer sees 7\nEND 7\n";
  (* recursive macro expansion with depth limit *)
  check "recursive expansion"
    "#define ONE 1\n#define TWO (ONE + ONE)\n#define FOUR (TWO * TWO)\nFOUR\n"
    "" "((1 + 1) * (1 + 1))\n";
  check "self-referential macro stops at depth limit"
    "#define LOOP LOOP\nLOOP stop\n" "" "LOOP stop\n";
  (* comments, literals, splices *)
  check "comment spanning lines swallowed"
    "a /* one\n two */ b\n" "" "a   b\n";
  check "string literal untouched"
    "#define A 1\ns = \"A /* x */\"; A\n" "" "s = \"A /* x */\"; 1\n";
  check "backslash splice" "ab\\\ncd\n" "" "abcd\n";
  (* builtins *)
  check "builtin macros defined"
    "#ifdef __STDC__\nstd __IMPACT__\n#endif\n" "" "std 1989\n"

let lex () =
  let input = "int x = 42; /* a comment */ if (x >= 10) { y = \"str\"; } 7abc" in
  let r = run_bench "lex" [ input ] in
  (* tokens: int(kw) x = 42 ; comment if(kw) ( x >= 10 ) { y = "str" ; }
     7abc — 3 idents, 2 keywords, 3 numbers (7abc scans as a number), 1
     string, 1 comment, 9 operators, 19 tokens, 0 newlines; no char
     literals / hex / octal / floats.  Then the top identifiers. *)
  Alcotest.(check string) "token counts" "0 3 2 3 1 1 9 19 0 0 0 0 \nx 2\ny 1\n"
    (out r)

let lex_extended () =
  (* hex/octal/float classification, char literals, escapes, // comments *)
  let input =
    "c = 'x'; e = '\\n'; h = 0xFF; o = 017; f = 3.25; // line\ns = \"a\\\"b\";\n"
  in
  let r = run_bench "lex" [ input ] in
  (* tokens: c = 'x' ; e = '\n' ; h = 0xFF ; o = 017 ; f = 3.25 ; comment
     s = "a\"b" ; -> idents c,e,h,o,f,s = 6; numbers 3 (hex, octal,
     float); strings 1; comments 1; chars 2; ops: = and ; pairs = 12;
     total 25; lines 2 *)
  Alcotest.(check string) "extended counts"
    "2 6 0 3 1 1 12 25 2 1 1 1 \nc 1\ne 1\nf 1\nh 1\no 1\n" (out r)

let make_bench () =
  let input =
    String.concat "\n"
      [
        "app: lib.o util.o";
        "\tcc -o app lib.o util.o";
        "lib.o: lib.c";
        "\tcc -c lib.c";
        "util.o: util.c";
        "\tcc -c util.c";
        "";
      ]
  in
  let r = run_bench "make" [ input ] in
  (* Deterministic given the hash function; just require sane structure:
     rebuilt count is between 0 and 3 and every printed line is one of the
     commands. *)
  Alcotest.(check bool) "rebuilt count in range" true
    (r.Vm.Interp.return_value >= 0 && r.Vm.Interp.return_value <= 3);
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (out r))
  in
  let commands =
    [ "cc -o app lib.o util.o"; "cc -c lib.c"; "cc -c util.c";
      string_of_int r.Vm.Interp.return_value ]
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) ("line is a command: " ^ l) true
        (List.mem l commands))
    lines

let make_variables () =
  (* Force a rebuild deterministically: a dependency on an unknown leaf
     whose hash time exceeds the target's is not guaranteed, so instead
     give the target a dependency chain and check expansion only if the
     command ran; to make it deterministic we rely on expansion in the
     dependency list, which always happens at parse time. *)
  let input =
    String.concat "\n"
      [
        "CC = mycc";
        "OPT = -O2";
        "FLAGS = $(OPT) -g";
        "top: $(CC).o";
        "\t$(CC) $(FLAGS) $< -o $@";
        "";
      ]
  in
  let r = run_bench "make" [ input ] in
  let output = out r in
  (* The dependency list "$(CC).o" must have expanded to "mycc.o": if the
     target rebuilt, the command line shows full expansion including
     automatic variables. *)
  if r.Vm.Interp.return_value = 1 then
    Alcotest.(check string) "expanded command"
      "mycc -O2 -g mycc.o -o top\n1\n" output
  else Alcotest.(check string) "no rebuild" "0\n" output

let tar () =
  let manifest, content = Workloads.Inputs.tar_manifest ~seed:14 ~members:5 in
  let r = run_bench "tar" [ manifest; content ] in
  Alcotest.(check int) "member count" 5 r.Vm.Interp.return_value;
  let archive = out r in
  (* Strip the trailing report line the program prints after the
     archive. *)
  let archive = String.sub archive 0 (String.length archive - 2) in
  Alcotest.(check int) "archive is whole blocks" 0 (String.length archive mod 512);
  (* Parse and verify headers against the manifest. *)
  let specs =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ name; size ] -> Some (name, int_of_string size)
        | _ -> None)
      (String.split_on_char '\n' manifest)
  in
  let pos = ref 0 in
  let content_pos = ref 0 in
  List.iter
    (fun (name, size) ->
      let hdr = String.sub archive !pos 512 in
      let upto_nul s =
        match String.index_opt s '\000' with
        | Some k -> String.sub s 0 k
        | None -> s
      in
      Alcotest.(check string) "member name" name (upto_nul (String.sub hdr 0 100));
      let octal = String.sub hdr 124 11 in
      Alcotest.(check int) "size field" size (int_of_string ("0o" ^ octal));
      Alcotest.(check string) "magic" "ustar" (upto_nul (String.sub hdr 257 6));
      (* Checksum: bytes of the header with the checksum field as spaces. *)
      let sum = ref 0 in
      String.iteri
        (fun idx c ->
          let c = if idx >= 148 && idx < 156 then ' ' else c in
          sum := !sum + Char.code c)
        hdr;
      Alcotest.(check int) "checksum" !sum
        (int_of_string ("0o" ^ String.sub hdr 148 6));
      (* Content. *)
      let data = String.sub archive (!pos + 512) size in
      Alcotest.(check string) "member content"
        (String.sub content !content_pos size)
        data;
      content_pos := !content_pos + size;
      pos := !pos + 512 + ((size + 511) / 512 * 512))
    specs;
  (* Two zero blocks close the archive. *)
  Alcotest.(check int) "end-of-archive blocks" (!pos + 1024)
    (String.length archive);
  String.iter
    (fun c -> if c <> '\000' then Alcotest.fail "non-zero trailer")
    (String.sub archive !pos 1024)

(* Oracle mirroring the yacc workload's semantics: C-truncating division,
   division by zero yields 0, and 32-bit wraparound (the parser's value
   stack lives in 32-bit memory words, like a C int). *)
let wrap32 x = Int32.to_int (Int32.of_int x)

let yacc () =
  let input = Workloads.Inputs.expressions ~seed:15 ~count:120 in
  (* Evaluate each statement with a tiny recursive-descent parser. *)
  let eval_stmt s =
    let pos = ref 0 in
    let peek () = if !pos < String.length s then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec factor () =
      match peek () with
      | Some '(' ->
        advance ();
        let v = expr () in
        advance () (* ')' *);
        v
      | Some c when c >= '0' && c <= '9' ->
        let n = ref 0 in
        let rec digits () =
          match peek () with
          | Some c when c >= '0' && c <= '9' ->
            n := (!n * 10) + (Char.code c - 48);
            advance ();
            digits ()
          | _ -> ()
        in
        digits ();
        !n
      | _ -> Alcotest.fail ("bad factor in " ^ s)
    and term () =
      let rec go acc =
        match peek () with
        | Some '*' ->
          advance ();
          go (wrap32 (acc * factor ()))
        | Some '/' ->
          advance ();
          let d = factor () in
          go (wrap32 (if d = 0 then 0 else acc / d))
        | _ -> acc
      in
      go (factor ())
    and expr () =
      let rec go acc =
        match peek () with
        | Some '+' ->
          advance ();
          go (wrap32 (acc + term ()))
        | Some '-' ->
          advance ();
          go (wrap32 (acc - term ()))
        | _ -> acc
      in
      go (term ())
    in
    expr ()
  in
  let stmts =
    List.filter (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ';' (String.concat ""
        (String.split_on_char '\n' input))))
  in
  let expected =
    String.concat ""
      (List.map (fun s -> string_of_int (eval_stmt s) ^ "\n") stmts)
    ^ Printf.sprintf "%d 0\n" (List.length stmts)
  in
  let r = run_bench "yacc" [ input ] in
  Alcotest.(check string) "values" expected (out r);
  Alcotest.(check int) "all accepted" (List.length stmts)
    r.Vm.Interp.return_value

let tar_list_extract () =
  let archive, specs = Workloads.Inputs.tar_archive ~seed:31 ~members:6 in
  (* list mode: every member with a verified checksum *)
  let r = run_bench "tar" ~args:[ 1 ] [ ""; archive ] in
  Alcotest.(check int) "member count" 6 r.Vm.Interp.return_value;
  let expected =
    String.concat ""
      (List.map (fun (name, size) -> Printf.sprintf "%s %d OK\n" name size) specs)
  in
  Alcotest.(check string) "listing" expected (out r);
  (* a corrupted byte flips the checksum verdict *)
  let corrupt = Bytes.of_string archive in
  Bytes.set corrupt 3 'X';
  let r2 = run_bench "tar" ~args:[ 1 ] [ ""; Bytes.to_string corrupt ] in
  Alcotest.(check bool) "corruption detected" true
    (let output = out r2 in
     String.length output >= 4
     &&
     match String.index_opt output '\n' with
     | Some nl -> String.sub output (nl - 4) 4 = " BAD"
     | None -> false);
  (* extract mode: contents round-trip *)
  let _, content = Workloads.Inputs.tar_manifest ~seed:31 ~members:6 in
  let r3 = run_bench "tar" ~args:[ 2 ] [ ""; archive ] in
  Alcotest.(check string) "extracted contents" content (out r3)

let yacc_variables () =
  (* Assignments, variable reads, unary minus, division-by-zero guard. *)
  let r = run_bench "yacc" [ "a=5;a*3;b=a+2;b-a;-(2+3);7/(1-1);c;" ] in
  Alcotest.(check string) "statement values" "5\n15\n7\n2\n-5\n0\n0\n7 0\n"
    (out r);
  (* Syntax errors are counted and recovery resumes at the next ';'. *)
  let r2 = run_bench "yacc" [ "1+;2*3;" ] in
  Alcotest.(check string) "error recovery" "6\n1 1\n" (out r2)

let yacc_operator_ladder () =
  (* Precedence and associativity of the full C operator set. *)
  let checks =
    [
      ("1+2*3;", 7);
      ("8>>1+1;", 2); (* shift binds looser than + *)
      ("1<<2<3;", 0); (* relational looser than shift: 4<3 *)
      ("5&3==3;", 1); (* & looser than ==: 5 & (3==3) = 5&1 *)
      ("6^3&1;", 7); (* ^ looser than &: 6 ^ (3&1) *)
      ("4|2^2;", 4); (* | loosest bitwise: 4 | (2^2) *)
      ("1&&0||1;", 1);
      ("2&&3;", 1); (* logical ops normalize *)
      ("!5;", 0);
      ("!0;", 1);
      ("~0;", -1);
      ("-(2+3)*4;", -20);
      ("10%4;", 2);
      ("7/2;", 3);
      ("9/(3-3);", 0); (* guarded division *)
      ("8%(2-2);", 0); (* guarded modulo *)
      ("x=10;x>=10&&x<11;", 1);
      ("100>>33;", 50); (* shift counts mask to 5 bits, C-style *)
    ]
  in
  List.iter
    (fun (src, expected) ->
      let r = run_bench "yacc" [ src ] in
      let output = out r in
      let last_value =
        match List.rev (String.split_on_char '\n' (String.trim output)) with
        | _summary :: value :: _ -> int_of_string value
        | _ -> Alcotest.failf "unexpected output %S for %s" output src
      in
      Alcotest.(check int) src expected last_value)
    checks

let slr_generator () =
  (* The generated tables drive a correct parse; conflicts are detected. *)
  let t = Workloads.Slr.build Workloads.W_yacc.grammar in
  Alcotest.(check bool) "has states" true (t.Workloads.Slr.nstates > 10);
  (* An ambiguous grammar must be rejected: S -> S S | x. *)
  let ambiguous =
    {
      Workloads.Slr.nterminals = 2;
      nnonterminals = 1;
      start = 0;
      eof = 1;
      rules = [| (0, [ Workloads.Slr.N 0; Workloads.Slr.N 0 ]); (0, [ Workloads.Slr.T 0 ]) |];
    }
  in
  match Workloads.Slr.build ambiguous with
  | exception Workloads.Slr.Conflict _ -> ()
  | _ -> Alcotest.fail "ambiguous grammar accepted"

let all_benchmarks_valid () =
  List.iter
    (fun b ->
      Ir.Check.program (Workloads.Bench.program b);
      Alcotest.(check bool)
        (b.Workloads.Bench.name ^ " has profile inputs")
        true
        (Workloads.Bench.runs b > 0))
    Workloads.Registry.all

let suite =
  [
    Alcotest.test_case "wc vs oracle" `Quick wc;
    Alcotest.test_case "cmp vs oracle" `Quick cmp;
    Alcotest.test_case "tee duplicates" `Quick tee;
    Alcotest.test_case "grep vs oracle" `Quick grep;
    Alcotest.test_case "grep options" `Quick grep_options;
    Alcotest.test_case "compress round-trips" `Quick compress;
    Alcotest.test_case "decompress inverts" `Quick decompress;
    Alcotest.test_case "cccp substitutes macros" `Quick cccp;
    Alcotest.test_case "cccp advanced features" `Quick cccp_advanced;
    Alcotest.test_case "lex token counts" `Quick lex;
    Alcotest.test_case "lex extended tokens" `Quick lex_extended;
    Alcotest.test_case "make dependency evaluation" `Quick make_bench;
    Alcotest.test_case "make variables and automatics" `Quick make_variables;
    Alcotest.test_case "tar archive verified" `Quick tar;
    Alcotest.test_case "tar list and extract" `Quick tar_list_extract;
    Alcotest.test_case "yacc vs oracle" `Quick yacc;
    Alcotest.test_case "yacc variables and recovery" `Quick yacc_variables;
    Alcotest.test_case "yacc operator ladder" `Quick yacc_operator_ladder;
    Alcotest.test_case "slr generator" `Quick slr_generator;
    Alcotest.test_case "all benchmarks valid" `Quick all_benchmarks_valid;
  ]
