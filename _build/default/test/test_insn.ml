(* Unit tests for the instruction set: operator semantics, register
   accounting, register renaming. *)

open Ir

let check_binop () =
  let cases =
    [
      (Insn.Add, 3, 4, 7);
      (Insn.Sub, 3, 4, -1);
      (Insn.Mul, 3, 4, 12);
      (Insn.Div, 17, 5, 3);
      (Insn.Div, -17, 5, -3); (* C-style truncation toward zero *)
      (Insn.Rem, 17, 5, 2);
      (Insn.Rem, -17, 5, -2);
      (Insn.And, 0b1100, 0b1010, 0b1000);
      (Insn.Or, 0b1100, 0b1010, 0b1110);
      (Insn.Xor, 0b1100, 0b1010, 0b0110);
      (Insn.Shl, 3, 4, 48);
      (Insn.Shr, 48, 4, 3);
      (Insn.Shr, -16, 2, -4); (* arithmetic shift *)
      (Insn.Lt, 3, 4, 1);
      (Insn.Lt, 4, 3, 0);
      (Insn.Le, 4, 4, 1);
      (Insn.Gt, 4, 3, 1);
      (Insn.Ge, 3, 4, 0);
      (Insn.Eq, 5, 5, 1);
      (Insn.Ne, 5, 5, 0);
    ]
  in
  List.iter
    (fun (op, a, b, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s %d %d" (Insn.binop_name op) a b)
        expected
        (Insn.eval_binop op a b))
    cases

let check_comparison_classification () =
  List.iter
    (fun (op, expected) ->
      Alcotest.(check bool) (Insn.binop_name op) expected (Insn.is_comparison op))
    [
      (Insn.Lt, true); (Insn.Eq, true); (Insn.Ne, true);
      (Insn.Add, false); (Insn.Shl, false);
    ]

let check_max_reg () =
  Alcotest.(check int) "mov" 5 (Insn.max_reg (Mov (5, Imm 3)));
  Alcotest.(check int) "bin" 9 (Insn.max_reg (Bin (Add, 2, Reg 9, Reg 1)));
  Alcotest.(check int) "store imm" (-1)
    (Insn.max_reg (Store8 (Imm 0, Imm 1, Imm 2)));
  Alcotest.(check int) "intrin none" (-1) (Insn.max_reg (Intrin (Abort, None, [])));
  Alcotest.(check int) "intrin" 7
    (Insn.max_reg (Intrin (Getc, Some 4, [ Reg 7 ])))

let check_map_regs () =
  let shift r = r + 10 in
  (match Insn.map_regs shift (Bin (Add, 1, Reg 2, Imm 3)) with
  | Bin (Add, 11, Reg 12, Imm 3) -> ()
  | _ -> Alcotest.fail "bin rename");
  (match Insn.map_regs shift (Intrin (Putc, Some 0, [ Imm 1; Reg 5 ])) with
  | Intrin (Putc, Some 10, [ Imm 1; Reg 15 ]) -> ()
  | _ -> Alcotest.fail "intrin rename");
  match Insn.map_regs shift (Store32 (Reg 0, Imm 4, Reg 1)) with
  | Store32 (Reg 10, Imm 4, Reg 11) -> ()
  | _ -> Alcotest.fail "store rename"

let div_by_zero () =
  Alcotest.check_raises "div" Division_by_zero (fun () ->
      ignore (Insn.eval_binop Div 1 0));
  Alcotest.check_raises "rem" Division_by_zero (fun () ->
      ignore (Insn.eval_binop Rem 1 0))

let suite =
  [
    Alcotest.test_case "binop semantics" `Quick check_binop;
    Alcotest.test_case "comparison classification" `Quick
      check_comparison_classification;
    Alcotest.test_case "max_reg" `Quick check_max_reg;
    Alcotest.test_case "map_regs" `Quick check_map_regs;
    Alcotest.test_case "division by zero raises" `Quick div_by_zero;
  ]
