test/test_cache.ml: Alcotest Icache List QCheck QCheck_alcotest String
