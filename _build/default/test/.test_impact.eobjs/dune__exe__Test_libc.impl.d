test/test_libc.ml: Alcotest Char Ir Vm Workloads
