test/test_sim.ml: Alcotest Array Helpers Icache Ir Placement Sim Vm Workloads
