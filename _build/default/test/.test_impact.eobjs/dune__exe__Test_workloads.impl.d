test/test_workloads.ml: Alcotest Buffer Bytes Char Hashtbl Int32 Ir List Printf String Vm Workloads
