test/test_shapes.ml: Alcotest Experiments Icache Lazy List Sim
