test/gen_prog.ml: Ir List Printf Vm Workloads
