test/test_experiments.ml: Alcotest Experiments List Placement Report String
