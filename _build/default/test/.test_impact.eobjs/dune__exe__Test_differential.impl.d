test/test_differential.ml: Array Gen_prog Icache Ir List Placement QCheck QCheck_alcotest Sim Vm
