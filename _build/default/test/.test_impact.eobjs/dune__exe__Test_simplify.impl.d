test/test_simplify.ml: Alcotest Array Helpers Ir List Placement Vm Workloads
