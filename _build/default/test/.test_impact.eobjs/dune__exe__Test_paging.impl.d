test/test_paging.ml: Alcotest List Paging
