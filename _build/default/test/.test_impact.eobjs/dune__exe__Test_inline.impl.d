test/test_inline.ml: Alcotest Array Helpers Ir List Placement Vm Workloads
