test/test_insn.ml: Alcotest Insn Ir List Printf
