test/test_pipeline.ml: Alcotest Array Icache Ir List Placement Printf Sim Vm Workloads
