test/test_layout.ml: Alcotest Array Experiments Helpers Ir List Placement QCheck QCheck_alcotest Vm Workloads
