test/test_profile.ml: Alcotest Array Helpers Ir List Printf Vm Workloads
