test/test_interp.ml: Alcotest Array Char Helpers Ir List Vm
