test/test_trace_select.ml: Alcotest Array Helpers List Placement QCheck QCheck_alcotest String
