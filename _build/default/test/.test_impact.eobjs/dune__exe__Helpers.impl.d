test/helpers.ml: Array Ir Placement Vm Workloads
