test/test_impact.mli:
