test/test_lower.ml: Alcotest Array Char Helpers Ir Vm
