(* Random mini-C program generator for differential testing.

   Programs terminate by construction: the only loops are counted for
   loops with small immediate bounds, and helper functions may call only
   lower-numbered helpers (no recursion).  All memory accesses are masked
   into a scratch buffer, so generated programs never fault.  Every
   program writes observable output (putc of expression values), making
   semantic divergence after a transformation visible. *)

open Ir.Ast.Dsl

type ctx = {
  rng : Workloads.Rng.t;
  mutable fuel : int; (* bounds the generated program size *)
  nhelpers : int;
  helper_idx : int; (* helpers may call only helpers below this index *)
  in_loop : bool;
}

let vars = [| "a"; "b"; "c"; "d" |]

let take ctx = ctx.fuel <- ctx.fuel - 1

let rec gen_expr ctx depth =
  take ctx;
  if depth = 0 || ctx.fuel <= 0 then
    if Workloads.Rng.bool ctx.rng then i (Workloads.Rng.range ctx.rng (-20) 20)
    else v (Workloads.Rng.pick ctx.rng vars)
  else begin
    match Workloads.Rng.int ctx.rng 14 with
    | 0 | 1 | 2 ->
      let op =
        Workloads.Rng.pick ctx.rng [| ( +% ); ( -% ); ( *% ); ( &% ); ( |% ); ( ^% ) |]
      in
      op (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 3 ->
      (* division by a guaranteed nonzero quantity *)
      gen_expr ctx (depth - 1)
      /% ((gen_expr ctx (depth - 1) &% i 15) +% i 1)
    | 4 ->
      gen_expr ctx (depth - 1)
      %% ((gen_expr ctx (depth - 1) &% i 15) +% i 1)
    | 5 ->
      let cmp =
        Workloads.Rng.pick ctx.rng
          [| ( <% ); ( <=% ); ( >% ); ( >=% ); ( ==% ); ( <>% ) |]
      in
      cmp (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 6 -> gen_expr ctx (depth - 1) &&% gen_expr ctx (depth - 1)
    | 7 -> gen_expr ctx (depth - 1) ||% gen_expr ctx (depth - 1)
    | 8 ->
      Ir.Ast.Cond
        (gen_expr ctx (depth - 1), gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 9 -> not_ (gen_expr ctx (depth - 1))
    | 10 -> neg (gen_expr ctx (depth - 1))
    | 11 ->
      (* masked scratch-buffer load: always in range *)
      ld8 (g "scratch" +% (gen_expr ctx (depth - 1) &% i 63))
    | 12 when ctx.helper_idx > 0 ->
      let callee = Workloads.Rng.int ctx.rng ctx.helper_idx in
      call
        (Printf.sprintf "helper%d" callee)
        [ gen_expr ctx (depth - 1); gen_expr ctx (depth - 1) ]
    | _ ->
      (gen_expr ctx (depth - 1) <<% i (Workloads.Rng.int ctx.rng 4))
      >>% i (Workloads.Rng.int ctx.rng 4)
  end

let rec gen_stmt ctx depth =
  take ctx;
  if depth = 0 || ctx.fuel <= 0 then
    set (Workloads.Rng.pick ctx.rng vars) (gen_expr ctx 1)
  else begin
    match Workloads.Rng.int ctx.rng 12 with
    | 0 | 1 | 2 ->
      set (Workloads.Rng.pick ctx.rng vars) (gen_expr ctx 2)
    | 3 ->
      if_ (gen_expr ctx 2)
        (gen_body ctx (depth - 1))
        (gen_body ctx (depth - 1))
    | 4 -> when_ (gen_expr ctx 2) (gen_body ctx (depth - 1))
    | 5 ->
      (* bounded counted loop; the index variable is loop-local *)
      let n = Workloads.Rng.range ctx.rng 1 6 in
      let idx = Printf.sprintf "k%d" (Workloads.Rng.int ctx.rng 1000) in
      for_
        [ decl idx (i 0) ]
        (v idx <% i n)
        [ incr_ idx ]
        (gen_body { ctx with in_loop = true } (depth - 1))
    | 6 when ctx.in_loop && Workloads.Rng.bool ctx.rng ->
      when_ (gen_expr ctx 1) [ break_ ]
    | 7 when ctx.in_loop && Workloads.Rng.bool ctx.rng ->
      when_ (gen_expr ctx 1) [ continue_ ]
    | 8 ->
      switch (gen_expr ctx 2 &% i 3)
        [
          ([ 0 ], gen_body ctx (depth - 1) @ [ break_ ]);
          ([ 1; 2 ], gen_body ctx (depth - 1)); (* falls through *)
        ]
        (gen_body ctx (depth - 1))
    | 9 ->
      st8
        (g "scratch" +% (gen_expr ctx 1 &% i 63))
        (gen_expr ctx 2)
    | 10 -> putc (i 0) (gen_expr ctx 2 &% i 255)
    | _ ->
      set (Workloads.Rng.pick ctx.rng vars)
        (gen_expr ctx 2)
  end

and gen_body ctx depth =
  let n = Workloads.Rng.range ctx.rng 1 4 in
  List.init n (fun _ -> gen_stmt ctx depth)

let gen_helper ctx idx =
  let body =
    [ decl "a" (v "p0" +% i 1); decl "b" (v "p1"); decl "c" (i 0); decl "d" (i 3) ]
    @ gen_body { ctx with helper_idx = idx } 2
    @ [ ret ((v "a" ^% v "b") +% (v "c" -% v "d")) ]
  in
  func (Printf.sprintf "helper%d" idx) [ "p0"; "p1" ] body

(* Generate a whole program from a seed.  [size] scales the fuel. *)
let generate ?(size = 120) seed : Ir.Ast.program =
  let rng = Workloads.Rng.create seed in
  let nhelpers = Workloads.Rng.int rng 4 in
  let ctx = { rng; fuel = size; nhelpers; helper_idx = 0; in_loop = false } in
  let helpers = List.init nhelpers (fun idx -> gen_helper ctx idx) in
  let main_body =
    [ decl "a" (i 1); decl "b" (i 2); decl "c" (i 3); decl "d" (i 4) ]
    @ gen_body { ctx with fuel = size; helper_idx = nhelpers } 3
    @ [
        (* make all variable state observable *)
        putc (i 0) (v "a" &% i 255);
        putc (i 0) (v "b" &% i 255);
        putc (i 0) (v "c" &% i 255);
        putc (i 0) (v "d" &% i 255);
        ret ((v "a" +% v "b") ^% (v "c" *% v "d"));
      ]
  in
  {
    Ir.Ast.globals = [ ("scratch", Ir.Ast.Gzero 64) ];
    funcs = helpers @ [ func "main" [] main_body ];
    entry = "main";
  }

(* Observable behavior of a program on the empty input. *)
let observe prog =
  let p = Ir.Lower.program prog in
  Ir.Check.program p;
  let r = Vm.Interp.run ~fuel:50_000_000 p (Vm.Io.input []) in
  (r.Vm.Interp.return_value, Vm.Io.output r.Vm.Interp.io 0)

let observe_lowered p =
  let r = Vm.Interp.run ~fuel:50_000_000 p (Vm.Io.input []) in
  (r.Vm.Interp.return_value, Vm.Io.output r.Vm.Interp.io 0)
