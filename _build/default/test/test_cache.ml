(* Cache simulator tests: exact behavior on hand traces for every fill
   policy and associativity, plus qcheck invariants. *)

let mk ?(assoc = Icache.Config.Direct) ?(fill = Icache.Config.Whole) ~size
    ~block () =
  Icache.Cache.create (Icache.Config.make ~assoc ~fill ~size ~block ())

let feed cache addrs =
  List.map (fun a -> (Icache.Cache.access cache a).Icache.Cache.miss) addrs

let direct_mapped_conflicts () =
  (* 128B cache, 32B blocks -> 4 frames.  Addresses 0 and 128 conflict. *)
  let c = mk ~size:128 ~block:32 () in
  let misses = feed c [ 0; 4; 0; 128; 0; 128 ] in
  Alcotest.(check (list bool)) "conflict thrash"
    [ true; false; false; true; true; true ]
    misses;
  Alcotest.(check int) "traffic: 4 fills of 8 words" 32
    (Icache.Cache.words_fetched c)

let two_way_avoids_conflict () =
  let c = mk ~assoc:(Icache.Config.Ways 2) ~size:128 ~block:32 () in
  let misses = feed c [ 0; 128; 0; 128; 0 ] in
  Alcotest.(check (list bool)) "both lines resident"
    [ true; true; false; false; false ]
    misses

let lru_replacement () =
  (* Fully associative 96B cache of 32B blocks = 3 frames; touch 4 blocks
     and confirm the least recent goes. *)
  let c = mk ~assoc:Icache.Config.Full ~size:96 ~block:32 () in
  let addr_of_block b = b * 32 in
  ignore (feed c (List.map addr_of_block [ 0; 1; 2 ]));
  (* Touch 0 to refresh it, add block 3: victim must be block 1. *)
  ignore (feed c [ addr_of_block 0; addr_of_block 3 ]);
  let m = feed c [ addr_of_block 0; addr_of_block 2; addr_of_block 3; addr_of_block 1 ] in
  Alcotest.(check (list bool)) "1 was evicted, others resident"
    [ false; false; false; true ]
    m

let sectored_fill () =
  (* 64B blocks with 8B sectors: a miss fetches 2 words only, and a hit in
     a different sector of the same block is still a miss. *)
  let c = mk ~fill:(Icache.Config.Sectored 8) ~size:2048 ~block:64 () in
  let o1 = Icache.Cache.access c 0 in
  Alcotest.(check bool) "first miss" true o1.Icache.Cache.miss;
  Alcotest.(check int) "sector fetch = 2 words" 2 o1.Icache.Cache.fetched_words;
  let o2 = Icache.Cache.access c 4 in
  Alcotest.(check bool) "same sector hit" false o2.Icache.Cache.miss;
  let o3 = Icache.Cache.access c 8 in
  Alcotest.(check bool) "next sector misses" true o3.Icache.Cache.miss;
  Alcotest.(check int) "again 2 words" 2 o3.Icache.Cache.fetched_words

let partial_loading () =
  let c = mk ~fill:Icache.Config.Partial ~size:2048 ~block:64 () in
  (* Miss in the middle of a block: loads from word 8 (byte 32) to the end
     = 8 words. *)
  let o1 = Icache.Cache.access c 32 in
  Alcotest.(check int) "fetch to end of block" 8 o1.Icache.Cache.fetched_words;
  Alcotest.(check int) "word offset recorded" 8 o1.Icache.Cache.word_in_block;
  (* Later words of the block now hit... *)
  Alcotest.(check bool) "later word hits" false
    (Icache.Cache.access c 60).Icache.Cache.miss;
  (* ...but the front of the block is still absent: loads up to the first
     valid word only (4+8=32 -> words 0..7 invalid, fetch stops at 8). *)
  let o2 = Icache.Cache.access c 0 in
  Alcotest.(check bool) "front still missing" true o2.Icache.Cache.miss;
  Alcotest.(check int) "fetch stops at valid entry" 8 o2.Icache.Cache.fetched_words;
  (* Now the whole block is valid. *)
  Alcotest.(check bool) "front hits now" false
    (Icache.Cache.access c 16).Icache.Cache.miss;
  (* A conflicting block invalidates everything first. *)
  let o3 = Icache.Cache.access c (2048 + 16) in
  Alcotest.(check bool) "conflict miss" true o3.Icache.Cache.miss;
  Alcotest.(check int) "fetch from word 4 to end" 12 o3.Icache.Cache.fetched_words;
  let o4 = Icache.Cache.access c 0 in
  Alcotest.(check bool) "old block gone" true o4.Icache.Cache.miss

let next_line_prefetch () =
  let c = mk ~size:2048 ~block:64 () in
  let p =
    Icache.Cache.create
      (Icache.Config.make ~prefetch:true ~size:2048 ~block:64 ())
  in
  (* A miss at block 0 prefetches block 1: the sequential successor then
     hits in the prefetching cache but misses in the plain one. *)
  Alcotest.(check bool) "both miss block 0" true
    ((Icache.Cache.access c 0).Icache.Cache.miss
    && (Icache.Cache.access p 0).Icache.Cache.miss);
  Alcotest.(check int) "one prefetch issued" 1 (Icache.Cache.prefetches p);
  Alcotest.(check bool) "plain cache misses block 1" true
    (Icache.Cache.access c 64).Icache.Cache.miss;
  Alcotest.(check bool) "prefetching cache hits block 1" false
    (Icache.Cache.access p 64).Icache.Cache.miss;
  (* Prefetch traffic is counted. *)
  Alcotest.(check int) "traffic includes the prefetch" 32
    (Icache.Cache.words_fetched p);
  Alcotest.(check int) "but only one miss" 1 (Icache.Cache.misses p);
  (* Prefetch with a non-whole fill is rejected. *)
  match
    Icache.Config.make ~prefetch:true ~fill:Icache.Config.Partial ~size:2048
      ~block:64 ()
  with
  | exception Icache.Config.Invalid _ -> ()
  | _ -> Alcotest.fail "prefetch+partial accepted"

let tag_overhead () =
  let c = mk ~size:2048 ~block:64 () in
  (* 32 frames x 4 bytes of tag space. *)
  Alcotest.(check int) "tag bytes" 128 (Icache.Cache.tag_bytes c)

let config_validation () =
  let invalid f =
    match f () with
    | exception Icache.Config.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Config.Invalid"
  in
  invalid (fun () -> Icache.Config.make ~size:100 ~block:64 ());
  invalid (fun () -> Icache.Config.make ~size:0 ~block:64 ());
  invalid (fun () -> Icache.Config.make ~size:2048 ~block:6 ());
  invalid (fun () ->
      Icache.Config.make ~fill:(Icache.Config.Sectored 24) ~size:2048 ~block:64 ());
  invalid (fun () ->
      Icache.Config.make ~assoc:(Icache.Config.Ways 3) ~size:2048 ~block:64 ())

let reset_behavior () =
  let c = mk ~size:256 ~block:32 () in
  ignore (feed c [ 0; 32; 64 ]);
  Icache.Cache.reset c;
  Alcotest.(check int) "counters cleared" 0 (Icache.Cache.accesses c);
  Alcotest.(check bool) "cold after reset" true
    (Icache.Cache.access c 0).Icache.Cache.miss

(* --- qcheck properties over random address traces --- *)

let trace_gen =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 50 400) (map (fun a -> a * 4) (int_bound 4095)))

let replay config addrs =
  let c = Icache.Cache.create config in
  List.iter (fun a -> ignore (Icache.Cache.access c a)) addrs;
  c

let prop_ratios_bounded =
  QCheck.Test.make ~name:"ratios bounded and consistent" ~count:100 trace_gen
    (fun addrs ->
      let c =
        replay (Icache.Config.make ~size:512 ~block:32 ()) addrs
      in
      let miss = Icache.Cache.miss_ratio c in
      let traffic = Icache.Cache.traffic_ratio c in
      miss >= 0. && miss <= 1. && traffic >= 0.
      && Icache.Cache.invariant c
      && Icache.Cache.accesses c = List.length addrs)

let prop_direct_equals_one_way =
  QCheck.Test.make ~name:"direct = 1-way set associative" ~count:100 trace_gen
    (fun addrs ->
      let a = replay (Icache.Config.make ~size:512 ~block:32 ()) addrs in
      let b =
        replay
          (Icache.Config.make ~assoc:(Icache.Config.Ways 1) ~size:512 ~block:32 ())
          addrs
      in
      Icache.Cache.misses a = Icache.Cache.misses b
      && Icache.Cache.words_fetched a = Icache.Cache.words_fetched b)

let prop_lru_inclusion =
  (* LRU's inclusion property: a larger fully associative LRU cache never
     misses more. *)
  QCheck.Test.make ~name:"fully associative LRU inclusion" ~count:100
    trace_gen (fun addrs ->
      let small =
        replay
          (Icache.Config.make ~assoc:Icache.Config.Full ~size:512 ~block:32 ())
          addrs
      in
      let large =
        replay
          (Icache.Config.make ~assoc:Icache.Config.Full ~size:1024 ~block:32 ())
          addrs
      in
      Icache.Cache.misses large <= Icache.Cache.misses small)

let prop_sector_block_equals_whole =
  QCheck.Test.make ~name:"sector=block behaves like whole fill" ~count:100
    trace_gen (fun addrs ->
      let w = replay (Icache.Config.make ~size:512 ~block:32 ()) addrs in
      let s =
        replay
          (Icache.Config.make ~fill:(Icache.Config.Sectored 32) ~size:512
             ~block:32 ())
          addrs
      in
      Icache.Cache.misses w = Icache.Cache.misses s
      && Icache.Cache.words_fetched w = Icache.Cache.words_fetched s)

let prop_partial_traffic_bounded =
  (* Partial loading never transfers more words than whole-block fill. *)
  QCheck.Test.make ~name:"partial traffic <= whole traffic" ~count:100
    trace_gen (fun addrs ->
      let w = replay (Icache.Config.make ~size:512 ~block:64 ()) addrs in
      let p =
        replay
          (Icache.Config.make ~fill:Icache.Config.Partial ~size:512 ~block:64 ())
          addrs
      in
      Icache.Cache.words_fetched p <= Icache.Cache.words_fetched w)

let prop_sectored_traffic_formula =
  (* Sectored fill transfers exactly sector_size/4 words per miss. *)
  QCheck.Test.make ~name:"sectored traffic = misses * sector words"
    ~count:100 trace_gen (fun addrs ->
      let s =
        replay
          (Icache.Config.make ~fill:(Icache.Config.Sectored 8) ~size:512
             ~block:64 ())
          addrs
      in
      Icache.Cache.words_fetched s = 2 * Icache.Cache.misses s)

let suite =
  [
    Alcotest.test_case "direct-mapped conflicts" `Quick direct_mapped_conflicts;
    Alcotest.test_case "two-way avoids conflict" `Quick two_way_avoids_conflict;
    Alcotest.test_case "LRU replacement" `Quick lru_replacement;
    Alcotest.test_case "sectored fill" `Quick sectored_fill;
    Alcotest.test_case "partial loading" `Quick partial_loading;
    Alcotest.test_case "next-line prefetch" `Quick next_line_prefetch;
    Alcotest.test_case "tag overhead" `Quick tag_overhead;
    Alcotest.test_case "config validation" `Quick config_validation;
    Alcotest.test_case "reset" `Quick reset_behavior;
    QCheck_alcotest.to_alcotest prop_ratios_bounded;
    QCheck_alcotest.to_alcotest prop_direct_equals_one_way;
    QCheck_alcotest.to_alcotest prop_lru_inclusion;
    QCheck_alcotest.to_alcotest prop_sector_block_equals_whole;
    QCheck_alcotest.to_alcotest prop_partial_traffic_bounded;
    QCheck_alcotest.to_alcotest prop_sectored_traffic_formula;
  ]
