(* DSL libc correctness: each routine exercised through a tiny program
   against the obvious OCaml expectation. *)

open Ir.Ast.Dsl

let run_main ?(streams = []) ?(globals = []) body =
  let prog = Workloads.Libc.link ~globals ~entry:"main" [ func "main" [] body ] in
  Vm.Interp.run (Ir.Lower.program prog) (Vm.Io.input streams)

let ret_main ?streams ?globals body = (run_main ?streams ?globals body).Vm.Interp.return_value

let out_main ?streams ?globals body =
  Vm.Io.output (run_main ?streams ?globals body).Vm.Interp.io 0

let strings () =
  let globals =
    [
      ("s_hello", Ir.Ast.Gstring "hello world");
      ("s_hell", Ir.Ast.Gstring "hell");
      ("s_world", Ir.Ast.Gstring "world");
      ("s_empty", Ir.Ast.Gstring "");
      ("s_abc", Ir.Ast.Gstring "abc");
      ("s_abd", Ir.Ast.Gstring "abd");
    ]
  in
  Alcotest.(check int) "strlen" 11
    (ret_main ~globals [ ret (call "strlen" [ g "s_hello" ]) ]);
  Alcotest.(check int) "strlen empty" 0
    (ret_main ~globals [ ret (call "strlen" [ g "s_empty" ]) ]);
  Alcotest.(check bool) "strcmp lt" true
    (ret_main ~globals [ ret (call "strcmp" [ g "s_abc"; g "s_abd" ]) ] < 0);
  Alcotest.(check int) "strcmp eq" 0
    (ret_main ~globals [ ret (call "strcmp" [ g "s_abc"; g "s_abc" ]) ]);
  Alcotest.(check int) "strncmp prefix" 0
    (ret_main ~globals [ ret (call "strncmp" [ g "s_hello"; g "s_hell"; i 4 ]) ]);
  Alcotest.(check int) "strchr found" (Char.code 'w')
    (ret_main ~globals
       [ ret (ld8 (call "strchr" [ g "s_hello"; chr 'w' ])) ]);
  Alcotest.(check int) "strchr absent" 0
    (ret_main ~globals [ ret (call "strchr" [ g "s_hello"; chr 'z' ]) ]);
  Alcotest.(check int) "strrchr finds last" 9
    (ret_main ~globals
       [ ret (call "strrchr" [ g "s_hello"; chr 'l' ] -% g "s_hello") ]);
  Alcotest.(check int) "strstr offset" 6
    (ret_main ~globals
       [ ret (call "strstr" [ g "s_hello"; g "s_world" ] -% g "s_hello") ]);
  Alcotest.(check int) "strstr absent" 0
    (ret_main ~globals [ ret (call "strstr" [ g "s_abc"; g "s_world" ]) ]);
  Alcotest.(check int) "strspn" 4
    (ret_main ~globals [ ret (call "strspn" [ g "s_hello"; g "s_hell" ]) ]);
  Alcotest.(check string) "strcpy/strcat" "hello world!"
    (out_main ~globals
       [
         decl "buf" (alloc (i 64));
         expr (call "strcpy" [ v "buf"; g "s_hello" ]);
         st8 (v "buf" +% i 11) (chr '!');
         st8 (v "buf" +% i 12) (i 0);
         expr (call "print_string" [ i 0; v "buf" ]);
         ret0;
       ]);
  Alcotest.(check string) "strncpy pads" "he\000\000"
    (out_main ~globals
       [
         decl "buf" (alloc (i 8));
         st8 (v "buf" +% i 4) (i 0);
         expr (call "strncpy" [ v "buf"; g "s_hello"; i 2 ]);
         expr (call "strncpy" [ v "buf" +% i 2; g "s_empty"; i 2 ]);
         decl "k" (i 0);
         while_ (v "k" <% i 4) [ putc (i 0) (ld8 (v "buf" +% v "k")); incr_ "k" ];
         ret0;
       ])

let memory_funcs () =
  Alcotest.(check int) "memcmp equal" 0
    (ret_main
       [
         decl "a" (alloc (i 8));
         decl "b" (alloc (i 8));
         expr (call "memset" [ v "a"; i 7; i 8 ]);
         expr (call "memset" [ v "b"; i 7; i 8 ]);
         ret (call "memcmp" [ v "a"; v "b"; i 8 ]);
       ]);
  Alcotest.(check int) "memcpy then differ" 5
    (ret_main
       [
         decl "a" (alloc (i 8));
         decl "b" (alloc (i 8));
         expr (call "memset" [ v "a"; i 9; i 8 ]);
         expr (call "memcpy" [ v "b"; v "a"; i 8 ]);
         st8 (v "b" +% i 3) (i 4);
         ret (call "memcmp" [ v "a"; v "b"; i 8 ]);
       ])

let conversions () =
  let globals =
    [
      ("n_plain", Ir.Ast.Gstring "1234");
      ("n_neg", Ir.Ast.Gstring "  -56x");
      ("n_plus", Ir.Ast.Gstring "+7");
      ("n_none", Ir.Ast.Gstring "abc");
    ]
  in
  Alcotest.(check int) "atoi" 1234
    (ret_main ~globals [ ret (call "atoi" [ g "n_plain" ]) ]);
  Alcotest.(check int) "atoi signed with spaces" (-56)
    (ret_main ~globals [ ret (call "atoi" [ g "n_neg" ]) ]);
  Alcotest.(check int) "atoi plus" 7
    (ret_main ~globals [ ret (call "atoi" [ g "n_plus" ]) ]);
  Alcotest.(check int) "atoi none" 0
    (ret_main ~globals [ ret (call "atoi" [ g "n_none" ]) ]);
  Alcotest.(check string) "print_num" "-1080 0 42"
    (out_main
       [
         expr (call "print_num" [ i 0; i 0 -% i 1080 ]);
         putc (i 0) (chr ' ');
         expr (call "print_num" [ i 0; i 0 ]);
         putc (i 0) (chr ' ');
         expr (call "print_num" [ i 0; i 42 ]);
         ret0;
       ]);
  Alcotest.(check string) "print_hex" "ff 0 -1a2b"
    (out_main
       [
         expr (call "print_hex" [ i 0; i 255 ]);
         putc (i 0) (chr ' ');
         expr (call "print_hex" [ i 0; i 0 ]);
         putc (i 0) (chr ' ');
         expr (call "print_hex" [ i 0; i 0 -% i 0x1a2b ]);
         ret0;
       ])

let ctype () =
  let classify name c =
    ret_main [ ret (call name [ chr c ]) ] <> 0
  in
  Alcotest.(check bool) "space" true (classify "is_space" ' ');
  Alcotest.(check bool) "tab" true (classify "is_space" '\t');
  Alcotest.(check bool) "x not space" false (classify "is_space" 'x');
  Alcotest.(check bool) "digit" true (classify "is_digit" '7');
  Alcotest.(check bool) "alpha upper" true (classify "is_alpha" 'Q');
  Alcotest.(check bool) "alnum" true (classify "is_alnum" '0');
  Alcotest.(check bool) "punct" true (classify "is_punct" ';');
  Alcotest.(check bool) "xdigit a" true (classify "is_xdigit" 'a');
  Alcotest.(check bool) "xdigit G" false (classify "is_xdigit" 'G');
  Alcotest.(check bool) "eof safe" false
    (ret_main [ ret (call "is_space" [ i 0 -% i 1 ]) ] <> 0);
  Alcotest.(check int) "to_upper" (Char.code 'A')
    (ret_main [ ret (call "to_upper" [ chr 'a' ]) ]);
  Alcotest.(check int) "to_upper noop" (Char.code '!')
    (ret_main [ ret (call "to_upper" [ chr '!' ]) ]);
  Alcotest.(check int) "to_lower" (Char.code 'z')
    (ret_main [ ret (call "to_lower" [ chr 'Z' ]) ])

let sort_and_search () =
  (* qsort a pseudo-random word array, verify sortedness and bsearch. *)
  let n = 64 in
  let r =
    run_main
      [
        decl "a" (alloc (i (n * 4)));
        decl "k" (i 0);
        decl "seed" (i 12345);
        while_ (v "k" <% i n)
          [
            set "seed" (((v "seed" *% i 1103515245) +% i 12345) &% i 0x3fffffff);
            st32 (v "a" +% (v "k" *% i 4)) (v "seed" %% i 1000);
            incr_ "k";
          ];
        expr (call "qsort_words" [ v "a"; i 0; i (n - 1) ]);
        (* verify ascending *)
        set "k" (i 1);
        while_ (v "k" <% i n)
          [
            when_
              (ld32 (v "a" +% ((v "k" -% i 1) *% i 4))
              >% ld32 (v "a" +% (v "k" *% i 4)))
              [ ret (i 0 -% i 1) ];
            incr_ "k";
          ];
        (* every element is found by binary search *)
        set "k" (i 0);
        while_ (v "k" <% i n)
          [
            decl "idx"
              (call "bsearch_words"
                 [ v "a"; i n; ld32 (v "a" +% (v "k" *% i 4)) ]);
            when_ (v "idx" <% i 0) [ ret (i 0 -% i 2) ];
            incr_ "k";
          ];
        (* absent key *)
        ret (call "bsearch_words" [ v "a"; i n; i 10_000 ]);
      ]
  in
  Alcotest.(check int) "sorted, searchable, absent = -1" (-1)
    r.Vm.Interp.return_value

let line_reader () =
  Alcotest.(check string) "read_line strips newlines" "ab|cd|"
    (out_main ~streams:[ "ab\ncd" ]
       [
         decl "buf" (alloc (i 32));
         decl "len" (call "read_line" [ i 0; v "buf"; i 32 ]);
         while_ (v "len" >=% i 0)
           [
             expr (call "print_string" [ i 0; v "buf" ]);
             putc (i 0) (chr '|');
             set "len" (call "read_line" [ i 0; v "buf"; i 32 ]);
           ];
         ret0;
       ]);
  (* truncation at the buffer limit *)
  Alcotest.(check string) "truncates long lines" "abc"
    (out_main ~streams:[ "abcdefgh\n" ]
       [
         decl "buf" (alloc (i 4));
         expr (call "read_line" [ i 0; v "buf"; i 4 ]);
         expr (call "print_string" [ i 0; v "buf" ]);
         ret0;
       ])

let hashes () =
  let globals = [ ("h_s", Ir.Ast.Gstring "hello") ] in
  Alcotest.(check int) "hash_string matches mirror"
    (Workloads.Inputs.dsl_hash_string "hello" 997)
    (ret_main ~globals [ ret (call "hash_string" [ g "h_s"; i 997 ]) ]);
  Alcotest.(check bool) "hash bounded" true
    (let h = ret_main ~globals [ ret (call "hash_string" [ g "h_s"; i 64 ]) ] in
     h >= 0 && h < 64)

let minmax () =
  Alcotest.(check int) "min" 3 (ret_main [ ret (call "min_i" [ i 3; i 9 ]) ]);
  Alcotest.(check int) "max" 9 (ret_main [ ret (call "max_i" [ i 3; i 9 ]) ]);
  Alcotest.(check int) "abs" 4 (ret_main [ ret (call "abs_i" [ neg (i 4) ]) ])

let suite =
  [
    Alcotest.test_case "string functions" `Quick strings;
    Alcotest.test_case "memory functions" `Quick memory_funcs;
    Alcotest.test_case "conversions" `Quick conversions;
    Alcotest.test_case "ctype" `Quick ctype;
    Alcotest.test_case "qsort and bsearch" `Quick sort_and_search;
    Alcotest.test_case "read_line" `Quick line_reader;
    Alcotest.test_case "hashes" `Quick hashes;
    Alcotest.test_case "min/max/abs" `Quick minmax;
  ]
