(* Scientific regression tests: the paper's qualitative results must hold
   on our substrate.  These run the real pipeline on the benchmark with
   the most cache pressure (cccp) against its real inputs, so they are registered as slow cases. *)

let ctx = lazy (Experiments.Context.create ~names:[ "cccp" ] ())

let entry name = Experiments.Context.find (Lazy.force ctx) name

let miss config map trace =
  (Sim.Driver.simulate config map trace).Sim.Driver.miss_ratio

let result config map trace = Sim.Driver.simulate config map trace

let direct ?fill size = Icache.Config.make ?fill ~size ~block:64 ()

(* Placement never hurts: optimized <= natural at every size (paper
   Tables 6/7 premise; section 2.2 design target). *)
let placement_helps () =
  List.iter
    (fun name ->
      let e = entry name in
      let trace = Experiments.Context.trace e in
      List.iter
        (fun size ->
          let opt = miss (direct size) (Experiments.Context.optimized_map e) trace in
          let nat = miss (direct size) (Experiments.Context.natural_map e) trace in
          if opt > nat +. 1e-9 then
            Alcotest.failf "%s at %dB: optimized %.4f%% > natural %.4f%%"
              name size (100. *. opt) (100. *. nat))
        [ 512; 1024; 2048; 4096; 8192 ])
    [ "cccp" ]

(* Miss ratio degrades monotonically (within tolerance) as the cache
   shrinks — Table 6's shape. *)
let smaller_cache_worse () =
  List.iter
    (fun name ->
      let e = entry name in
      let trace = Experiments.Context.trace e in
      let misses =
        List.map
          (fun size ->
            miss (direct size) (Experiments.Context.optimized_map e) trace)
          [ 8192; 4096; 2048; 1024; 512 ]
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
          if b < a -. 1e-9 then
            Alcotest.failf "%s: smaller cache misses less (%.4f%% -> %.4f%%)"
              name (100. *. a) (100. *. b);
          check rest
        | [ _ ] | [] -> ()
      in
      check misses)
    [ "cccp" ]

(* Table 7's shape: with a fixed 2KB cache, larger blocks lower the miss
   ratio and raise the traffic ratio for the pressure benchmarks. *)
let block_size_tradeoff () =
  let e = entry "cccp" in
  let trace = Experiments.Context.trace e in
  let map = Experiments.Context.optimized_map e in
  let at block =
    Sim.Driver.simulate (Icache.Config.make ~size:2048 ~block ()) map trace
  in
  let r16 = at 16 and r128 = at 128 in
  Alcotest.(check bool) "bigger blocks, fewer misses" true
    (r128.Sim.Driver.miss_ratio < r16.Sim.Driver.miss_ratio);
  Alcotest.(check bool) "bigger blocks, more traffic" true
    (r128.Sim.Driver.traffic_ratio > r16.Sim.Driver.traffic_ratio)

(* Table 8's shape: sectoring reduces traffic at a large miss cost;
   partial loading reduces traffic at a small miss cost. *)
let traffic_reduction_schemes () =
  let e = entry "cccp" in
  let trace = Experiments.Context.trace e in
  let map = Experiments.Context.optimized_map e in
  let whole = result (direct 2048) map trace in
  let sector =
    result (direct ~fill:(Icache.Config.Sectored 8) 2048) map trace
  in
  let partial = result (direct ~fill:Icache.Config.Partial 2048) map trace in
  Alcotest.(check bool) "sectoring cuts traffic" true
    (sector.Sim.Driver.traffic_ratio < whole.Sim.Driver.traffic_ratio);
  Alcotest.(check bool) "sectoring multiplies misses" true
    (sector.Sim.Driver.miss_ratio > 2. *. whole.Sim.Driver.miss_ratio);
  Alcotest.(check bool) "partial cuts traffic" true
    (partial.Sim.Driver.traffic_ratio < whole.Sim.Driver.traffic_ratio);
  Alcotest.(check bool) "partial misses stay close" true
    (partial.Sim.Driver.miss_ratio < 2. *. whole.Sim.Driver.miss_ratio);
  (* paper: avg.fetch well below the 16-word block, avg.exec in the
     high single digits to low teens *)
  Alcotest.(check bool) "avg.fetch below block size" true
    (partial.Sim.Driver.avg_fetch_words < 16.);
  Alcotest.(check bool) "avg.exec plausible" true
    (partial.Sim.Driver.avg_exec_insns > 4.
    && partial.Sim.Driver.avg_exec_insns < 20.)

(* Section 4.2.4: direct-mapped with placement beats the measured
   fully-associative LRU cache without placement, and sits far below
   Smith's design target. *)
let beats_full_associativity () =
  List.iter
    (fun name ->
      let e = entry name in
      let opt =
        miss (direct 2048)
          (Experiments.Context.optimized_map e)
          (Experiments.Context.trace e)
      in
      let full_unopt =
        miss
          (Icache.Config.make ~assoc:Icache.Config.Full ~size:2048 ~block:64 ())
          (Experiments.Context.original_map e)
          (Experiments.Context.original_trace e)
      in
      Alcotest.(check bool)
        (name ^ ": direct+placement <= full-LRU unoptimized")
        true
        (opt <= full_unopt +. 1e-9);
      match Experiments.Paper.smith_miss_ratio ~cache_size:2048 ~block_size:64 with
      | Some target ->
        Alcotest.(check bool) (name ^ ": far below Smith target") true
          (opt < target /. 2.)
      | None -> Alcotest.fail "missing Smith target")
    [ "cccp" ]

(* Table 9's shape: cache performance is stable under code scaling. *)
let code_scaling_stable () =
  let e = entry "cccp" in
  let trace = Experiments.Context.trace e in
  let config = direct ~fill:Icache.Config.Partial 2048 in
  let at factor = miss config (Experiments.Context.scaled_map e factor) trace in
  let base = at 1.0 in
  List.iter
    (fun factor ->
      let m = at factor in
      (* within a factor of ~3 of the unscaled ratio, as in the paper *)
      if m > (3. *. base) +. 0.01 || ((m *. 3.) +. 0.01 < base && base > 0.001)
      then
        Alcotest.failf "scaling %.1f unstable: %.4f%% vs base %.4f%%" factor
          (100. *. m) (100. *. base))
    [ 0.5; 0.7; 1.1 ]

(* Timing model ordering: blocking >= streaming >= 1 cycle; partial
   loading's effective access time does not exceed blocking whole-block
   refill. *)
let timing_ordering () =
  let e = entry "cccp" in
  let trace = Experiments.Context.trace e in
  let map = Experiments.Context.optimized_map e in
  let whole = result (direct 2048) map trace in
  let partial = result (direct ~fill:Icache.Config.Partial 2048) map trace in
  Alcotest.(check bool) "blocking slowest" true
    (whole.Sim.Driver.eat_blocking >= whole.Sim.Driver.eat_streaming);
  Alcotest.(check bool) "streaming above hit time" true
    (whole.Sim.Driver.eat_streaming >= 1.);
  Alcotest.(check bool) "partial+streaming <= whole+blocking" true
    (partial.Sim.Driver.eat_streaming_partial <= whole.Sim.Driver.eat_blocking)

let suite =
  [
    Alcotest.test_case "placement helps at every size" `Slow placement_helps;
    Alcotest.test_case "smaller caches miss more" `Slow smaller_cache_worse;
    Alcotest.test_case "block size tradeoff" `Slow block_size_tradeoff;
    Alcotest.test_case "sectoring vs partial loading" `Slow
      traffic_reduction_schemes;
    Alcotest.test_case "beats full associativity" `Slow
      beats_full_associativity;
    Alcotest.test_case "stable under code scaling" `Slow code_scaling_stable;
    Alcotest.test_case "timing model ordering" `Slow timing_ordering;
  ]
