(* CFG cleanup tests: semantics preservation and the individual
   simplifications. *)

open Ir.Ast.Dsl
open Helpers

let behavior_preserved name prog inputs =
  let p = Ir.Lower.program prog in
  let s = Ir.Simplify.program p in
  Ir.Check.program s;
  List.iter
    (fun input ->
      let before = Vm.Interp.run p input in
      let after = Vm.Interp.run s input in
      Alcotest.(check int) (name ^ ": return") before.Vm.Interp.return_value
        after.Vm.Interp.return_value;
      Alcotest.(check string) (name ^ ": output")
        (Vm.Io.output before.Vm.Interp.io 0)
        (Vm.Io.output after.Vm.Interp.io 0))
    inputs;
  (p, s)

let shrinks_code () =
  (* A while(1) loop with immediate conditions plus constant arithmetic:
     folding + threading must shrink the code without changing results. *)
  let prog =
    main_prog
      [
        decl "acc" (i 0);
        decl "k" (i 0);
        while_ (i 1)
          [
            when_ (v "k" ==% i 10) [ break_ ];
            set "acc" (v "acc" +% ((i 3 *% i 4) -% i 2));
            incr_ "k";
          ];
        ret (v "acc");
      ]
  in
  let p, s = behavior_preserved "const loop" prog [ Vm.Io.input [] ] in
  Alcotest.(check bool) "code shrank" true
    (Ir.Prog.total_instr_count s < Ir.Prog.total_instr_count p);
  Alcotest.(check int) "value" 100
    (Vm.Interp.run s (Vm.Io.input [])).Vm.Interp.return_value

let folds_constants () =
  let f =
    {
      Ir.Prog.name = "f";
      nparams = 0;
      nregs = 2;
      blocks =
        [|
          Ir.Cfg.mk_block
            [| Ir.Insn.Bin (Add, 0, Imm 2, Imm 3); Ir.Insn.Bin (Div, 1, Imm 7, Imm 0) |]
            (Ir.Cfg.Ret (Some (Reg 0)));
        |];
    }
  in
  let s = Ir.Simplify.func f in
  (match s.Ir.Prog.blocks.(0).Ir.Cfg.insns.(0) with
  | Ir.Insn.Mov (0, Imm 5) -> ()
  | _ -> Alcotest.fail "2+3 not folded");
  (* Division by a zero immediate must NOT fold (it faults at runtime). *)
  match s.Ir.Prog.blocks.(0).Ir.Cfg.insns.(1) with
  | Ir.Insn.Bin (Div, 1, Imm 7, Imm 0) -> ()
  | _ -> Alcotest.fail "7/0 was folded away"

let threads_jumps () =
  (* entry -> forward -> forward -> ret: both forwarders vanish. *)
  let f =
    {
      Ir.Prog.name = "f";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 1);
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 2);
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 3);
          Ir.Cfg.mk_block [||] (Ir.Cfg.Ret None);
        |];
    }
  in
  let s = Ir.Simplify.func f in
  Alcotest.(check int) "two blocks remain" 2 (Array.length s.Ir.Prog.blocks)

let jump_cycle_safe () =
  (* A cycle of empty forwarders must not hang the threader. *)
  let f =
    {
      Ir.Prog.name = "f";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 1);
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 2);
          Ir.Cfg.mk_block [||] (Ir.Cfg.Jump 1);
        |];
    }
  in
  let s = Ir.Simplify.func f in
  Ir.Check.program
    (Ir.Prog.make ~entry:"f" [ s ])

let sweeps_unreachable () =
  (* Dead statements after return become unreachable blocks; the sweep
     removes them while reachable-but-unexecuted code stays. *)
  let prog =
    main_prog
      [
        decl "x" (i 1);
        when_ (v "x" ==% i 99) [ ret (i 7) ]; (* reachable, never runs *)
        ret (v "x");
        set "x" (i 5); (* dead code after return *)
        ret (v "x");
      ]
  in
  let p = Ir.Lower.program prog in
  let s = Ir.Simplify.program p in
  let f = s.Ir.Prog.funcs.(s.Ir.Prog.entry) in
  let fp = p.Ir.Prog.funcs.(p.Ir.Prog.entry) in
  Alcotest.(check bool) "blocks removed" true
    (Array.length f.Ir.Prog.blocks < Array.length fp.Ir.Prog.blocks);
  (* the cold return path survives *)
  let has_ret7 =
    Array.exists
      (fun b ->
        Array.exists
          (function Ir.Insn.Mov (_, Imm 7) -> true | _ -> false)
          b.Ir.Cfg.insns
        || match b.Ir.Cfg.term with Ir.Cfg.Ret (Some (Imm 7)) -> true | _ -> false)
      f.Ir.Prog.blocks
  in
  Alcotest.(check bool) "cold path survives" true has_ret7;
  Alcotest.(check int) "semantics" 1
    (Vm.Interp.run s (Vm.Io.input [])).Vm.Interp.return_value

let workloads_preserved () =
  List.iter
    (fun (name, input) ->
      let b = Workloads.Registry.find name in
      ignore (behavior_preserved name (Workloads.Bench.ast b) [ input ]))
    [
      ("wc", Vm.Io.input [ "several short words\nhere\n" ]);
      ("yacc", Vm.Io.input [ "a=3;a*a+1;" ]);
      ("lex", Vm.Io.input [ "int n = 0x1f; // done\n" ]);
      ("cccp", Vm.Io.input [ "#define X 4\n#if X > 1\nX ok\n#endif\n"; "" ]);
    ]

let pipeline_integration () =
  (* The pipeline's simplify flag shrinks code without changing layout
     validity. *)
  let b = Workloads.Registry.find "wc" in
  let inputs = [ Vm.Io.input [ "one two\n" ] ] in
  let on = Placement.Pipeline.run (Workloads.Bench.program b) ~inputs in
  let off =
    Placement.Pipeline.run
      ~config:{ Placement.Pipeline.default_config with do_simplify = false }
      (Workloads.Bench.program b) ~inputs
  in
  Alcotest.(check bool) "simplified is smaller" true
    (Ir.Prog.total_instr_count on.Placement.Pipeline.program
    < Ir.Prog.total_instr_count off.Placement.Pipeline.program);
  Alcotest.(check bool) "maps disjoint" true
    (Placement.Address_map.is_disjoint on.Placement.Pipeline.optimized)

let suite =
  [
    Alcotest.test_case "shrinks code, keeps semantics" `Quick shrinks_code;
    Alcotest.test_case "folds constants, keeps faults" `Quick folds_constants;
    Alcotest.test_case "threads jumps" `Quick threads_jumps;
    Alcotest.test_case "jump cycles safe" `Quick jump_cycle_safe;
    Alcotest.test_case "sweeps unreachable only" `Quick sweeps_unreachable;
    Alcotest.test_case "workload semantics preserved" `Quick workloads_preserved;
    Alcotest.test_case "pipeline integration" `Quick pipeline_integration;
  ]
