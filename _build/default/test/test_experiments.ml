(* Experiment-layer tests: paper constants, table generation on a small
   benchmark subset, report rendering. *)

let smith_lookup () =
  Alcotest.(check (option (float 1e-9))) "2K/64B" (Some 0.068)
    (Experiments.Paper.smith_miss_ratio ~cache_size:2048 ~block_size:64);
  Alcotest.(check (option (float 1e-9))) "512/16B" (Some 0.23)
    (Experiments.Paper.smith_miss_ratio ~cache_size:512 ~block_size:16);
  Alcotest.(check (option (float 1e-9))) "absent point" None
    (Experiments.Paper.smith_miss_ratio ~cache_size:3000 ~block_size:64)

let paper_tables_complete () =
  let names = Experiments.Paper.benchmarks in
  Alcotest.(check int) "ten benchmarks" 10 (List.length names);
  List.iter
    (fun (table, label, width) ->
      List.iter
        (fun name ->
          match Experiments.Paper.lookup_mt table name with
          | Some cells ->
            Alcotest.(check int) (label ^ " width for " ^ name) width
              (List.length cells)
          | None -> Alcotest.failf "%s missing %s" label name)
        names)
    [
      (Experiments.Paper.table6, "table6", 5);
      (Experiments.Paper.table7, "table7", 4);
      (Experiments.Paper.table9, "table9", 4);
    ]

let table_rendering () =
  let t =
    Report.Table.make ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Report.Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && s.[0] = 'T');
  (* All lines padded to equal cell widths; row 333 defines column a. *)
  Alcotest.(check bool) "contains padded row" true
    (String.length s > 10);
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Table.make: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Report.Table.make ~title:"" ~header:[ "a"; "b" ] [ [ "x" ] ]))

let charts () =
  let bar =
    Report.Chart.bars ~width:10 ~title:"T"
      [ ("a", 1.0); ("bb", 0.5); ("c", 0.0) ]
  in
  let lines = String.split_on_char '\n' bar in
  Alcotest.(check string) "title" "T" (List.hd lines);
  Alcotest.(check bool) "peak bar full width" true
    (String.length bar > 0
    &&
    let row_a = List.nth lines 1 in
    String.length (String.concat "" (String.split_on_char '#' row_a))
    = String.length row_a - 10);
  Alcotest.(check bool) "zero bar empty" true
    (not (String.contains (List.nth lines 3) '#'));
  let spark =
    Report.Chart.sparklines ~title:"S" ~points:[ "x"; "y" ]
      [ ("s1", [ 0.0; 1.0 ]) ]
  in
  Alcotest.(check bool) "sparkline renders ramp ends" true
    (let line = List.nth (String.split_on_char '\n' spark) 1 in
     String.length line > 0
     && String.contains line '['
     && String.contains line '@')

let fmt_helpers () =
  Alcotest.(check string) "pct" "2.70%" (Report.Fmtutil.pct 0.027);
  Alcotest.(check string) "pct0" "17%" (Report.Fmtutil.pct0 0.17);
  Alcotest.(check string) "human M" "11.7M" (Report.Fmtutil.human 11_700_000);
  Alcotest.(check string) "human K" "2.2K" (Report.Fmtutil.human 2_200);
  Alcotest.(check string) "human small" "42" (Report.Fmtutil.human 42)

(* Slow-ish: builds a real context over two small benchmarks and renders
   every experiment table. *)
let all_tables_render () =
  let ctx = Experiments.Context.create ~names:[ "wc"; "tee" ] () in
  List.iter
    (fun spec ->
      let s = Experiments.Runner.run_one ctx spec in
      Alcotest.(check bool)
        ("table " ^ spec.Experiments.Runner.id ^ " non-empty")
        true
        (String.length s > 40))
    Experiments.Runner.all

let context_caching () =
  let ctx = Experiments.Context.create ~names:[ "tee" ] () in
  let e = List.hd (Experiments.Context.entries ctx) in
  let p1 = Experiments.Context.pipeline e in
  let p2 = Experiments.Context.pipeline e in
  Alcotest.(check bool) "pipeline computed once" true (p1 == p2);
  let t1 = Experiments.Context.trace e in
  let t2 = Experiments.Context.trace e in
  Alcotest.(check bool) "trace computed once" true (t1 == t2)

let scaled_map_properties () =
  let ctx = Experiments.Context.create ~names:[ "tee" ] () in
  let e = List.hd (Experiments.Context.entries ctx) in
  let base = Experiments.Context.optimized_map e in
  let half = Experiments.Context.scaled_map e 0.5 in
  Alcotest.(check bool) "scaled map smaller" true
    (half.Placement.Address_map.total_bytes
    < base.Placement.Address_map.total_bytes);
  Alcotest.(check bool) "scaled map disjoint" true
    (Placement.Address_map.is_disjoint half);
  Alcotest.(check bool) "factor 1.0 is the base map" true
    (Experiments.Context.scaled_map e 1.0 == base)

let suite =
  [
    Alcotest.test_case "smith lookup" `Quick smith_lookup;
    Alcotest.test_case "paper tables complete" `Quick paper_tables_complete;
    Alcotest.test_case "table rendering" `Quick table_rendering;
    Alcotest.test_case "format helpers" `Quick fmt_helpers;
    Alcotest.test_case "charts" `Quick charts;
    Alcotest.test_case "context caching" `Quick context_caching;
    Alcotest.test_case "scaled map properties" `Quick scaled_map_properties;
    Alcotest.test_case "all tables render" `Slow all_tables_render;
  ]
