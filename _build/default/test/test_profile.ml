(* Profiling tests: block/arc/call-site weights and flow-conservation
   invariants of the weighted control graph. *)

open Helpers

let accumulation () =
  let p = Ir.Lower.program caller_prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input []; Vm.Io.input [] ] in
  Alcotest.(check int) "runs" 2 prof.Vm.Profile.runs;
  Alcotest.(check int) "calls accumulate" 20 prof.Vm.Profile.dyn_calls;
  let main_fid = p.Ir.Prog.entry in
  Alcotest.(check int) "entry executed twice" 2
    (Vm.Profile.block_weight prof main_fid 0);
  let twice_fid = Ir.Prog.func_index p "twice" in
  Alcotest.(check int) "callee entered 20 times" 20
    (Vm.Profile.func_weight prof twice_fid);
  Alcotest.(check int) "site weight" 20
    (let sites = Vm.Profile.call_sites_of prof main_fid in
     List.fold_left (fun acc (_, _, c) -> acc + c) 0 sites)

(* Flow conservation: for every executed block with outgoing arcs, the sum
   of outgoing arc weights equals the number of times control left the
   block, i.e. its execution count (returns/exits excepted). *)
let flow_conservation () =
  let b = Workloads.Registry.find "wc" in
  let p = Workloads.Bench.program b in
  let prof =
    Vm.Profile.profile p [ Vm.Io.input [ "hello world\nthe end\n" ] ]
  in
  Array.iteri
    (fun fid (f : Ir.Prog.func) ->
      Array.iteri
        (fun l block ->
          let weight = Vm.Profile.block_weight prof fid l in
          let out =
            List.fold_left
              (fun acc (_, c) -> acc + c)
              0
              (Vm.Profile.out_arcs prof fid l)
          in
          match block.Ir.Cfg.term with
          | Ir.Cfg.Ret _ -> Alcotest.(check int) "ret has no out arcs" 0 out
          | Ir.Cfg.Jump _ | Ir.Cfg.Br _ | Ir.Cfg.Switch _ | Ir.Cfg.Call _ ->
            (* For calls the continuation arc fires on return, so out =
               weight as long as every call returned (it did). *)
            if out <> weight then
              Alcotest.failf "block %d/%d: weight %d but out arcs %d" fid l
                weight out)
        f.Ir.Prog.blocks)
    p.Ir.Prog.funcs

(* in_arcs must be the transpose of out_arcs. *)
let transpose () =
  let b = Workloads.Registry.find "grep" in
  let p = Workloads.Bench.program b in
  let prof =
    Vm.Profile.profile p
      [ Vm.Io.input [ "abc def\nthe quick fox\n"; "e f\n" ] ]
  in
  Array.iteri
    (fun fid (f : Ir.Prog.func) ->
      let incoming = Vm.Profile.in_arcs prof fid in
      let n = Array.length f.Ir.Prog.blocks in
      let from_out = Array.make n 0 in
      Array.iteri
        (fun src _ ->
          List.iter
            (fun (dst, c) -> from_out.(dst) <- from_out.(dst) + c)
            (Vm.Profile.out_arcs prof fid src))
        f.Ir.Prog.blocks;
      Array.iteri
        (fun dst arcs ->
          let total = List.fold_left (fun acc (_, c) -> acc + c) 0 arcs in
          Alcotest.(check int)
            (Printf.sprintf "in/out transpose %d/%d" fid dst)
            from_out.(dst) total)
        incoming)
    p.Ir.Prog.funcs

(* Block weight = sum of incoming arcs (+1 run for the entry of the entry
   function; + entries for callee entry blocks). *)
let entry_weights () =
  let p = Ir.Lower.program caller_prog in
  let prof = Vm.Profile.profile p [ Vm.Io.input [] ] in
  Array.iteri
    (fun fid (f : Ir.Prog.func) ->
      let incoming = Vm.Profile.in_arcs prof fid in
      Array.iteri
        (fun l _ ->
          let w = Vm.Profile.block_weight prof fid l in
          let inc = List.fold_left (fun acc (_, c) -> acc + c) 0 incoming.(l) in
          let expected =
            if l = 0 then inc + Vm.Profile.func_weight prof fid else inc
          in
          Alcotest.(check int)
            (Printf.sprintf "weight matches arcs %d/%d" fid l)
            expected w)
        f.Ir.Prog.blocks)
    p.Ir.Prog.funcs

let suite =
  [
    Alcotest.test_case "accumulation across runs" `Quick accumulation;
    Alcotest.test_case "flow conservation" `Quick flow_conservation;
    Alcotest.test_case "in_arcs transposes out_arcs" `Quick transpose;
    Alcotest.test_case "block weight = incoming + entries" `Quick entry_weights;
  ]
