(* Trace selection tests: the appendix algorithm on hand-built weighted
   graphs, plus qcheck invariants on random weights. *)

open Helpers

let nblocks = 6 (* diamond_loop_func *)

let hot_path_grouped () =
  (* With a 90/10 split, the hot path 1->2->4 joins one trace; the cold
     block 3 is excluded (its arc carries only 10% of block 1's weight). *)
  let sel =
    Placement.Trace_select.select diamond_loop_func (diamond_weights ())
  in
  Alcotest.(check bool) "partition" true
    (Placement.Trace_select.is_partition sel nblocks);
  let t = sel.Placement.Trace_select.trace_of in
  Alcotest.(check int) "1 and 2 together" t.(1) t.(2);
  Alcotest.(check int) "2 and 4 together" t.(2) t.(4);
  Alcotest.(check bool) "cold arm separate" true (t.(3) <> t.(1));
  (* Members are in control order within the trace. *)
  let trace = sel.Placement.Trace_select.traces.(t.(1)) in
  Alcotest.(check (list int)) "control order" [ 1; 2; 4 ]
    (Array.to_list trace)

let min_prob_cutoff () =
  (* At 60/40 neither arm reaches MIN_PROB = 0.7, so block 1 cannot extend
     into either arm. *)
  let sel =
    Placement.Trace_select.select diamond_loop_func
      (diamond_weights ~hot:60 ~cold:40 ())
  in
  let t = sel.Placement.Trace_select.trace_of in
  Alcotest.(check bool) "no arm joins the head" true
    (t.(2) <> t.(1) && t.(3) <> t.(1));
  (* A permissive min_prob groups the hotter arm again. *)
  let sel2 =
    Placement.Trace_select.select ~min_prob:0.5 diamond_loop_func
      (diamond_weights ~hot:60 ~cold:40 ())
  in
  Alcotest.(check int) "lower threshold admits hot arm"
    sel2.Placement.Trace_select.trace_of.(1)
    sel2.Placement.Trace_select.trace_of.(2)

let zero_weight_function () =
  let w =
    Placement.Weight.cfg_of_lists ~func_weight:0 ~blocks:[] ~arcs:[]
  in
  let sel = Placement.Trace_select.select diamond_loop_func w in
  Alcotest.(check bool) "partition" true
    (Placement.Trace_select.is_partition sel nblocks);
  Alcotest.(check int) "every block its own trace" nblocks
    (Array.length sel.Placement.Trace_select.traces)

let entry_never_interior () =
  (* Even with a dominant back edge into the entry, the entry must stay a
     trace head (the appendix excludes ENTRY from forward growth and stops
     backward growth there). *)
  let w =
    Placement.Weight.cfg_of_lists ~func_weight:1
      ~blocks:[ (0, 100); (1, 100); (2, 100); (3, 1); (4, 100); (5, 1) ]
      ~arcs:[ (0, 1, 100); (1, 2, 100); (2, 4, 100); (4, 1, 1) ]
  in
  let sel = Placement.Trace_select.select diamond_loop_func w in
  Array.iter
    (fun trace ->
      Array.iteri
        (fun idx l ->
          if l = 0 then
            Alcotest.(check int) "entry at trace head" 0 idx)
        trace)
    sel.Placement.Trace_select.traces

(* qcheck: for arbitrary weights the result is always a partition and
   every multi-block trace link carries the dominant arc of both
   endpoints. *)
let arbitrary_weights =
  QCheck.make
    ~print:(fun ws -> String.concat "," (List.map string_of_int ws))
    QCheck.Gen.(list_size (return 7) (int_bound 1000))

let prop_partition =
  QCheck.Test.make ~name:"trace selection partitions blocks" ~count:200
    arbitrary_weights (fun ws ->
      let wlist = Array.of_list ws in
      let hot = wlist.(0) mod 100 and cold = wlist.(1) mod 100 in
      let w = diamond_weights ~hot:(hot + 1) ~cold:(cold + 1) () in
      let sel = Placement.Trace_select.select diamond_loop_func w in
      Placement.Trace_select.is_partition sel nblocks)

let prop_mean_length =
  QCheck.Test.make ~name:"mean trace length within [1, nblocks]" ~count:200
    arbitrary_weights (fun ws ->
      let wlist = Array.of_list ws in
      let hot = (wlist.(0) mod 100) + 1 and cold = (wlist.(1) mod 100) + 1 in
      let w = diamond_weights ~hot ~cold () in
      let sel = Placement.Trace_select.select diamond_loop_func w in
      let len = Placement.Trace_select.mean_length ~w sel in
      len >= 1. && len <= float_of_int nblocks)

let suite =
  [
    Alcotest.test_case "hot path grouped" `Quick hot_path_grouped;
    Alcotest.test_case "min_prob cutoff" `Quick min_prob_cutoff;
    Alcotest.test_case "zero-weight function" `Quick zero_weight_function;
    Alcotest.test_case "entry never interior" `Quick entry_never_interior;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_mean_length;
  ]
