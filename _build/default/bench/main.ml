(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 1-9, the section 4.2.4 comparison, and the section 4.2.1 timing
   model) over the full ten-benchmark suite, printing measured values next
   to the paper's where available.

   Part 2 runs one Bechamel micro-benchmark per table, timing the core
   computation that regenerates it (profiling, inlining, trace selection,
   layout, cache simulation variants, code scaling). *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Part 1: table regeneration                                          *)
(* ------------------------------------------------------------------ *)

let regenerate_tables () =
  say "=== IMPACT-I instruction placement reproduction: all experiments ===";
  say "(building pipelines for the ten benchmarks; this takes a minute)";
  let t0 = Unix.gettimeofday () in
  let ctx = Experiments.Context.create () in
  List.iter
    (fun spec ->
      let t = Unix.gettimeofday () in
      let rendered = Experiments.Runner.run_one ctx spec in
      say "";
      print_string rendered;
      say "[table %s regenerated in %.1fs]" spec.Experiments.Runner.id
        (Unix.gettimeofday () -. t))
    Experiments.Runner.all;
  say "";
  say "=== all experiments regenerated in %.1fs ==="
    (Unix.gettimeofday () -. t0);
  ctx

(* Trend figures: the Table 6 sweep as sparklines and the 2KB design
   point as a bar chart, natural vs optimized. *)
let figures ctx =
  say "";
  let rows = Experiments.Table6.compute ctx in
  let pct v = Printf.sprintf "%.2f%%" (100. *. v) in
  print_string
    (Report.Chart.sparklines ~format:pct
       ~title:
         "Figure A: miss ratio vs cache size (direct-mapped, 64B blocks, \
          optimized layout; glyph ramp ' .:-=+*#@' scaled to the worst \
          point)"
       ~points:[ "8K"; "4K"; "2K"; "1K"; "0.5K" ]
       (List.map
          (fun (r : Experiments.Sweep.row) ->
            (r.Experiments.Sweep.name,
             List.map (fun c -> c.Experiments.Sweep.miss) r.Experiments.Sweep.cells))
          rows));
  say "";
  let ablation = Experiments.Ablation.compute ctx in
  print_string
    (Report.Chart.bars ~format:pct
       ~title:
         "Figure B: 2KB/64B miss ratio, natural layout (pre-inlining \
          baseline)"
       (List.map
          (fun (r : Experiments.Ablation.row) ->
            (r.Experiments.Ablation.name, r.Experiments.Ablation.baseline))
          ablation));
  say "";
  print_string
    (Report.Chart.bars ~format:pct
       ~title:"Figure C: 2KB/64B miss ratio, full placement pipeline"
       (List.map
          (fun (r : Experiments.Ablation.row) ->
            (r.Experiments.Ablation.name, r.Experiments.Ablation.full))
          ablation))

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Small fixed artifacts reused across the micro-benchmarks so each test
   times exactly one pipeline stage. *)
module Fixture = struct
  let bench = Workloads.Registry.find "wc"
  let program = Workloads.Bench.program bench
  let input = Vm.Io.input [ Workloads.Inputs.text ~seed:1 ~bytes:4_000 ]
  let profile = Vm.Profile.profile program [ input ]
  let trace = Sim.Trace_gen.record program input
  let natural = Placement.Address_map.natural program

  let selections =
    Array.mapi
      (fun fid f ->
        Placement.Trace_select.select f
          (Placement.Weight.cfg_of_profile profile fid))
      program.Ir.Prog.funcs

  let layouts =
    Array.mapi
      (fun fid f ->
        Placement.Func_layout.layout f
          (Placement.Weight.cfg_of_profile profile fid)
          selections.(fid))
      program.Ir.Prog.funcs

  let global =
    Placement.Global_layout.layout
      (Array.length program.Ir.Prog.funcs)
      ~entry:program.Ir.Prog.entry
      (Placement.Weight.call_of_profile profile)

  let optimized = Placement.Address_map.build program ~layouts ~order:global

  let simulate config map =
    ignore (Sim.Driver.simulate config map trace)
end


let tests =
  [
    (* Table 1: baseline lookup. *)
    Test.make ~name:"t1_smith_lookup"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Paper.smith_miss_ratio ~cache_size:2048
                ~block_size:64)));
    (* Table 2: execution profiling. *)
    Test.make ~name:"t2_profile_run"
      (Staged.stage (fun () ->
           ignore (Vm.Profile.profile Fixture.program [ Fixture.input ])));
    (* Table 3: inline expansion. *)
    Test.make ~name:"t3_inline_expand"
      (Staged.stage (fun () ->
           ignore
             (Placement.Inline.expand_once Placement.Inline.default_config
                ~budget:max_int Fixture.program Fixture.profile)));
    (* Table 4: trace selection over every function. *)
    Test.make ~name:"t4_trace_selection"
      (Staged.stage (fun () ->
           Array.iteri
             (fun fid f ->
               ignore
                 (Placement.Trace_select.select f
                    (Placement.Weight.cfg_of_profile Fixture.profile fid)))
             Fixture.program.Ir.Prog.funcs));
    (* Table 5: function + global layout and address assignment. *)
    Test.make ~name:"t5_layout_and_map"
      (Staged.stage (fun () ->
           let layouts =
             Array.mapi
               (fun fid f ->
                 Placement.Func_layout.layout f
                   (Placement.Weight.cfg_of_profile Fixture.profile fid)
                   Fixture.selections.(fid))
               Fixture.program.Ir.Prog.funcs
           in
           ignore
             (Placement.Address_map.build Fixture.program ~layouts
                ~order:Fixture.global)));
    (* Table 6: whole-block direct-mapped simulation. *)
    Test.make ~name:"t6_sim_direct_2k_64"
      (Staged.stage (fun () ->
           Fixture.simulate (Icache.Config.make ~size:2048 ~block:64 ())
             Fixture.optimized));
    (* Table 7: small-block simulation. *)
    Test.make ~name:"t7_sim_direct_2k_16"
      (Staged.stage (fun () ->
           Fixture.simulate (Icache.Config.make ~size:2048 ~block:16 ())
             Fixture.optimized));
    (* Table 8: sectored and partial fills. *)
    Test.make ~name:"t8_sim_sectored"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:(Icache.Config.Sectored 8) ())
             Fixture.optimized));
    Test.make ~name:"t8_sim_partial"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:Icache.Config.Partial ())
             Fixture.optimized));
    (* Table 9: code scaling + re-layout. *)
    Test.make ~name:"t9_scale_and_map"
      (Staged.stage (fun () ->
           let scaled = Ir.Prog.scale_code 0.7 Fixture.program in
           let layouts =
             Array.mapi
               (fun fid f ->
                 Placement.Func_layout.layout f
                   (Placement.Weight.cfg_of_profile Fixture.profile fid)
                   Fixture.selections.(fid))
               scaled.Ir.Prog.funcs
           in
           ignore
             (Placement.Address_map.build scaled ~layouts
                ~order:Fixture.global)));
    (* Comparison: fully associative LRU baseline. *)
    Test.make ~name:"t10_sim_full_assoc"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~assoc:Icache.Config.Full ())
             Fixture.natural));
    (* Timing ablation: simulation including the three timing models. *)
    Test.make ~name:"t11_sim_with_timing"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:Icache.Config.Partial ())
             Fixture.optimized));
  ]

let run_microbenchmarks () =
  say "";
  say "=== bechamel micro-benchmarks (one per table) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time ] ->
            let label =
              if time > 1e9 then Printf.sprintf "%8.2f s " (time /. 1e9)
              else if time > 1e6 then Printf.sprintf "%8.2f ms" (time /. 1e6)
              else if time > 1e3 then Printf.sprintf "%8.2f us" (time /. 1e3)
              else Printf.sprintf "%8.2f ns" time
            in
            say "  %-24s %s/run" name label
          | Some _ | None -> say "  %-24s (no estimate)" name)
        results)
    tests

let () =
  let ctx = regenerate_tables () in
  figures ctx;
  run_microbenchmarks ();
  say "";
  say "done."
