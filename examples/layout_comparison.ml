(* Layout comparison: inspect what the placement pipeline actually does
   to one of the paper's benchmarks — the global function order, the
   per-function trace structure, the effective/dead split — and how the
   layouts behave across cache sizes.

     dune exec examples/layout_comparison.exe -- [benchmark]     *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "yacc" in
  let bench = Workloads.Registry.find name in
  Printf.printf "benchmark: %s (%s)\n\n" name bench.Workloads.Bench.description;
  let pl =
    Placement.Pipeline.run
      (Workloads.Bench.program bench)
      ~inputs:(Workloads.Bench.profile_inputs bench)
  in
  let program = pl.Placement.Pipeline.program in

  (* Global layout: weighted call-graph DFS order. *)
  print_endline "function placement order (effective regions first):";
  Array.iteri
    (fun rank fid ->
      let f = program.Ir.Prog.funcs.(fid) in
      let lay = pl.Placement.Pipeline.layouts.(fid) in
      let sel = pl.Placement.Pipeline.selections.(fid) in
      Printf.printf "  %2d. %-18s %4d B (%4d B effective), %2d traces\n" rank
        f.Ir.Prog.name lay.Placement.Func_layout.total_bytes
        lay.Placement.Func_layout.active_bytes
        (Array.length sel.Placement.Trace_select.traces))
    pl.Placement.Pipeline.global.Placement.Global_layout.order;

  (* Cache behavior across sizes, one column per registered layout
     strategy.  Adding a strategy to [Placement.Strategy.all] grows the
     table automatically. *)
  let trace =
    Sim.Trace.record program (Workloads.Bench.trace_input bench)
  in
  Printf.printf "\ntrace: %d dynamic instructions\n\n"
    (Sim.Trace.result trace).Vm.Interp.dyn_insns;
  let strategies = Placement.Strategy.all in
  let maps =
    List.map (fun s -> Placement.Pipeline.map_for pl s) strategies
  in
  Printf.printf "miss ratio by strategy:\n cache";
  List.iter
    (fun s -> Printf.printf "  %10s" s.Placement.Strategy.id)
    strategies;
  print_newline ();
  List.iter
    (fun size ->
      let config = Icache.Config.make ~size ~block:64 () in
      Printf.printf "%5dB" size;
      List.iter
        (fun map ->
          let r = Sim.Driver.simulate config map trace in
          Printf.printf "  %10s" (Report.Fmtutil.pct r.Sim.Driver.miss_ratio))
        maps;
      print_newline ())
    [ 512; 1024; 2048; 4096; 8192 ]
