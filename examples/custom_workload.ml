(* Custom workload: everything a downstream user does to study their own
   program — author it in the DSL (linking the bundled libc), register it
   as a benchmark with profiling and trace inputs, and push it through
   the placement pipeline and the cache experiments.

     dune exec examples/custom_workload.exe *)

open Ir.Ast.Dsl

(* "freq": a word-frequency reporter — read words, intern them in a hash
   table, count occurrences, sort the counts, print the histogram of
   count magnitudes.  Uses the libc qsort, hashing and ctype routines. *)

let slots = 512

let globals =
  [
    ("fq_names", Ir.Ast.Gzero (slots * 4));
    ("fq_counts", Ir.Ast.Gzero (slots * 4));
    ("fq_arena", Ir.Ast.Gzero 8192);
    ("fq_next", Ir.Ast.Gzero 4);
    ("fq_fill", Ir.Ast.Gzero 4);
  ]

let intern =
  func "intern" [ "word" ]
    [
      decl "h" (call "hash_string" [ v "word"; i slots ]);
      while_ (i 1)
        [
          decl "e" (ld32 (g "fq_names" +% (v "h" *% i 4)));
          when_ (v "e" ==% i 0)
            [
              when_ (ld32 (g "fq_fill") >=% i (slots * 3 / 4))
                [ ret (i 0 -% i 1) ];
              decl "off" (ld32 (g "fq_next"));
              expr (call "strcpy" [ g "fq_arena" +% v "off"; v "word" ]);
              st32 (g "fq_next") (v "off" +% call "strlen" [ v "word" ] +% i 1);
              st32 (g "fq_names" +% (v "h" *% i 4)) (v "off" +% i 1);
              st32 (g "fq_fill") (ld32 (g "fq_fill") +% i 1);
              ret (v "h");
            ];
          when_
            (call "strcmp" [ v "word"; g "fq_arena" +% (v "e" -% i 1) ] ==% i 0)
            [ ret (v "h") ];
          set "h" ((v "h" +% i 1) &% i (slots - 1));
        ];
      ret (i 0 -% i 1);
    ]

let main =
  func "main" []
    [
      decl "word" (alloc (i 64));
      decl "n" (i 0);
      decl "c" (getc (i 0));
      while_ (v "c" >=% i 0)
        [
          if_
            (call "is_alpha" [ v "c" ])
            [
              set "n" (i 0);
              while_ (call "is_alnum" [ v "c" ])
                [
                  when_ (v "n" <% i 63)
                    [ st8 (v "word" +% v "n") (call "to_lower" [ v "c" ]); incr_ "n" ];
                  set "c" (getc (i 0));
                ];
              st8 (v "word" +% v "n") (i 0);
              decl "slot" (call "intern" [ v "word" ]);
              when_ (v "slot" >=% i 0)
                [
                  st32 (g "fq_counts" +% (v "slot" *% i 4))
                    (ld32 (g "fq_counts" +% (v "slot" *% i 4)) +% i 1);
                ];
            ]
            [ set "c" (getc (i 0)) ];
        ];
      (* Sort all nonzero counts and print the five largest. *)
      decl "packed" (alloc (i (slots * 4)));
      decl "m" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% i slots)
        [
          decl "cnt" (ld32 (g "fq_counts" +% (v "k" *% i 4)));
          when_ (v "cnt" >% i 0)
            [
              st32 (v "packed" +% (v "m" *% i 4)) (v "cnt");
              incr_ "m";
            ];
          incr_ "k";
        ];
      when_ (v "m" >% i 0)
        [ expr (call "qsort_words" [ v "packed"; i 0; v "m" -% i 1 ]) ];
      decl "show" (call "min_i" [ v "m"; i 5 ]);
      decl "j" (v "m" -% v "show");
      while_ (v "j" <% v "m")
        [
          expr (call "print_num" [ i 0; ld32 (v "packed" +% (v "j" *% i 4)) ]);
          putc (i 0) (chr ' ');
          incr_ "j";
        ];
      putc (i 0) (chr '\n');
      ret (v "m");
    ]

let benchmark =
  Workloads.Bench.make ~name:"freq"
    ~description:"word-frequency histogram over prose text"
    ~ast:(fun () -> Workloads.Libc.link ~globals ~entry:"main" [ intern; main ])
    ~profile_inputs:(fun () ->
      [
        Vm.Io.input [ Workloads.Inputs.text ~seed:3 ~bytes:15_000 ];
        Vm.Io.input [ Workloads.Inputs.text ~seed:4 ~bytes:25_000 ];
      ])
    ~trace_input:(fun () ->
      Vm.Io.input [ Workloads.Inputs.text ~seed:5 ~bytes:60_000 ])

let () =
  (* Sanity-run the program itself. *)
  let program = Workloads.Bench.program benchmark in
  Ir.Check.program program;
  let r = Vm.Interp.run program (Workloads.Bench.trace_input benchmark) in
  Printf.printf "freq: %d distinct words; top counts: %s\n"
    r.Vm.Interp.return_value
    (String.trim (Vm.Io.output r.Vm.Interp.io 0));

  (* Full placement pipeline + the paper's headline measurement. *)
  let pl =
    Placement.Pipeline.run program
      ~inputs:(Workloads.Bench.profile_inputs benchmark)
  in
  let trace =
    Sim.Trace.record pl.Placement.Pipeline.program
      (Workloads.Bench.trace_input benchmark)
  in
  List.iter
    (fun size ->
      let config = Icache.Config.make ~size ~block:64 () in
      let natural =
        Sim.Driver.simulate config pl.Placement.Pipeline.natural trace
      in
      let optimized =
        Sim.Driver.simulate config pl.Placement.Pipeline.optimized trace
      in
      Printf.printf
        "%4dB direct-mapped: natural miss %-8s optimized miss %s\n" size
        (Report.Fmtutil.pct natural.Sim.Driver.miss_ratio)
        (Report.Fmtutil.pct optimized.Sim.Driver.miss_ratio))
    [ 512; 1024; 2048 ]
