(* Cache explorer: sweep the cache design space for one benchmark under
   the optimized placement — associativity (the paper's claim: a
   direct-mapped cache with placement rivals a fully associative one),
   block size, and fill policy (whole / sectored / partial).

     dune exec examples/cache_explorer.exe -- [benchmark]     *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cccp" in
  let bench = Workloads.Registry.find name in
  let pl =
    Placement.Pipeline.run
      (Workloads.Bench.program bench)
      ~inputs:(Workloads.Bench.profile_inputs bench)
  in
  let trace =
    Sim.Trace.record pl.Placement.Pipeline.program
      (Workloads.Bench.trace_input bench)
  in
  let simulate config map = Sim.Driver.simulate config map trace in
  let pct = Report.Fmtutil.pct in

  Printf.printf "benchmark %s: %d dynamic instructions, %d code bytes\n\n"
    name (Sim.Trace.result trace).Vm.Interp.dyn_insns
    pl.Placement.Pipeline.optimized.Placement.Address_map.total_bytes;

  (* Associativity at 2KB/64B: does placement substitute for ways? *)
  print_endline "associativity (2KB, 64B blocks):";
  List.iter
    (fun (label, assoc, map) ->
      let r = simulate (Icache.Config.make ~assoc ~size:2048 ~block:64 ()) map in
      Printf.printf "  %-28s miss %-8s traffic %s\n" label
        (pct r.Sim.Driver.miss_ratio)
        (pct r.Sim.Driver.traffic_ratio))
    [
      ("direct, natural layout", Icache.Config.Direct, pl.Placement.Pipeline.natural);
      ("direct, optimized layout", Icache.Config.Direct, pl.Placement.Pipeline.optimized);
      ("2-way, optimized layout", Icache.Config.Ways 2, pl.Placement.Pipeline.optimized);
      ("fully assoc, natural layout", Icache.Config.Full, pl.Placement.Pipeline.natural);
      ("fully assoc, optimized", Icache.Config.Full, pl.Placement.Pipeline.optimized);
    ];

  (* Block size under the optimized layout. *)
  print_endline "\nblock size (2KB direct-mapped):";
  List.iter
    (fun block ->
      let r =
        simulate
          (Icache.Config.make ~size:2048 ~block ())
          pl.Placement.Pipeline.optimized
      in
      Printf.printf "  %3dB blocks: miss %-8s traffic %-8s avg.exec %.1f\n"
        block
        (pct r.Sim.Driver.miss_ratio)
        (pct r.Sim.Driver.traffic_ratio)
        r.Sim.Driver.avg_exec_insns)
    [ 16; 32; 64; 128 ];

  (* Fill policies at 2KB/64B. *)
  print_endline "\nfill policy (2KB direct-mapped, 64B blocks):";
  List.iter
    (fun (label, fill) ->
      let r =
        simulate
          (Icache.Config.make ~fill ~size:2048 ~block:64 ())
          pl.Placement.Pipeline.optimized
      in
      Printf.printf
        "  %-16s miss %-8s traffic %-8s avg.fetch %-5.1f eat %.3f cyc\n"
        label
        (pct r.Sim.Driver.miss_ratio)
        (pct r.Sim.Driver.traffic_ratio)
        r.Sim.Driver.avg_fetch_words
        (match fill with
        | Icache.Config.Partial -> r.Sim.Driver.eat_streaming_partial
        | Icache.Config.Whole | Icache.Config.Sectored _ ->
          r.Sim.Driver.eat_streaming))
    [
      ("whole block", Icache.Config.Whole);
      ("sectored (8B)", Icache.Config.Sectored 8);
      ("partial load", Icache.Config.Partial);
    ]
