(* Quickstart: the whole system on one small program.

   Write a mini-C program with the DSL, lower it, profile it, run the
   five-step placement pipeline, and compare instruction-cache behavior
   of the natural and optimized layouts.

     dune exec examples/quickstart.exe *)

open Ir.Ast.Dsl

(* A program with a hot loop, a cold error path, and a helper function:
   exactly the structure instruction placement feeds on. *)
let program_ast : Ir.Ast.program =
  {
    globals = [ ("greeting", Ir.Ast.Gstring "checksum: ") ];
    funcs =
      [
        func "rotate" [ "x"; "k" ]
          [
            ret
              (((v "x" <<% v "k") |% (v "x" >>% (i 31 -% v "k")))
              &% i 0x7fffffff);
          ];
        func "main" []
          [
            decl "sum" (i 0);
            decl "c" (getc (i 0));
            while_ (v "c" >=% i 0)
              [
                (* hot path: mix every byte into the checksum *)
                set "sum" (call "rotate" [ v "sum" ^% v "c"; i 5 ]);
                (* cold path: should be pushed out of the hot region *)
                when_ (v "c" ==% i 7)
                  [
                    expr (call "print_string" [ i 0; g "greeting" ]);
                    expr (call "print_num" [ i 0; v "sum" ]);
                    putc (i 0) (chr '\n');
                  ];
                set "c" (getc (i 0));
              ];
            expr (call "print_string" [ i 0; g "greeting" ]);
            expr (call "print_num" [ i 0; v "sum" ]);
            putc (i 0) (chr '\n');
            ret (v "sum");
          ];
      ];
    entry = "main";
  }

let () =
  (* 1. Lower the AST to the RISC-like CFG form and validate it. *)
  let program = Ir.Lower.program (Workloads.Libc.link ~globals:program_ast.globals ~entry:"main" program_ast.funcs) in
  Ir.Check.program program;
  Printf.printf "lowered: %d functions, %d bytes of code\n"
    (Array.length program.Ir.Prog.funcs)
    (Ir.Prog.total_byte_size program);

  (* 2. Profile on representative inputs (paper step 1). *)
  let inputs =
    [
      Vm.Io.input [ Workloads.Inputs.text ~seed:1 ~bytes:8_000 ];
      Vm.Io.input [ Workloads.Inputs.text ~seed:2 ~bytes:12_000 ];
    ]
  in

  (* 3-5. Inline expansion, trace selection, function and global layout. *)
  let pl = Placement.Pipeline.run program ~inputs in
  Printf.printf "inlined %d call sites (%+.1f%% code)\n"
    pl.Placement.Pipeline.inline_report.Placement.Inline.sites_inlined
    (100.
    *. Placement.Inline.code_increase pl.Placement.Pipeline.inline_report);
  Printf.printf "effective region: %d of %d bytes\n"
    pl.Placement.Pipeline.optimized.Placement.Address_map.effective_bytes
    pl.Placement.Pipeline.optimized.Placement.Address_map.total_bytes;

  (* Trace-driven cache simulation on a held-out input. *)
  let trace =
    Sim.Trace.record pl.Placement.Pipeline.program
      (Vm.Io.input [ Workloads.Inputs.text ~seed:99 ~bytes:40_000 ])
  in
  Printf.printf "trace: %d dynamic instructions\n"
    (Sim.Trace.result trace).Vm.Interp.dyn_insns;
  let config = Icache.Config.make ~size:512 ~block:64 () in
  let natural = Sim.Driver.simulate config pl.Placement.Pipeline.natural trace in
  let optimized =
    Sim.Driver.simulate config pl.Placement.Pipeline.optimized trace
  in
  Printf.printf "512B direct-mapped, 64B blocks:\n";
  Printf.printf "  natural layout:   miss %-7s traffic %s\n"
    (Report.Fmtutil.pct natural.Sim.Driver.miss_ratio)
    (Report.Fmtutil.pct natural.Sim.Driver.traffic_ratio);
  Printf.printf "  optimized layout: miss %-7s traffic %s\n"
    (Report.Fmtutil.pct optimized.Sim.Driver.miss_ratio)
    (Report.Fmtutil.pct optimized.Sim.Driver.traffic_ratio)
