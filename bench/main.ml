(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 1-9, the section 4.2.4 comparison, and the section 4.2.1 timing
   model) over the full ten-benchmark suite, printing measured values next
   to the paper's where available.  `--only t6,t8` restricts the run to a
   subset of the experiments and `--benchmarks wc,grep` to a subset of the
   suite, for CI and fast iteration.

   Part 2 (full runs only) measures the block-granular single-pass
   simulation engine against the word-granular reference on one
   benchmark, then runs one Bechamel micro-benchmark per table, timing
   the core computation that regenerates it (profiling, inlining, trace
   selection, layout, cache simulation variants, code scaling). *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let only_ids : string list option ref = ref None
let bench_names : string list option ref = ref None
let jobs = ref (Domain.recommended_domain_count ())
let compare_serial = ref false
let trace_engine = ref Sim.Trace.Streaming
let scale = ref 1

(* Machine-readable report destination; empty string disables it. *)
let out_file = ref "BENCH_pr7.json"

let split_csv s = String.split_on_char ',' s |> List.filter (( <> ) "")

(* Accept both "6" and "t6" for a table id. *)
let normalize_id id =
  if String.length id > 1 && (id.[0] = 't' || id.[0] = 'T') then
    String.sub id 1 (String.length id - 1)
  else id

let parse_cli () =
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s ->
            match List.map normalize_id (split_csv s) with
            | [] -> raise (Arg.Bad "--only needs at least one table id")
            | ids -> only_ids := Some ids),
        "IDS  Regenerate only these tables (comma-separated, e.g. t6,t8)" );
      ( "--benchmarks",
        Arg.String
          (fun s ->
            match split_csv s with
            | [] -> raise (Arg.Bad "--benchmarks needs at least one name")
            | ns -> bench_names := Some ns),
        "NAMES  Restrict to these benchmarks (comma-separated, e.g. wc,grep)"
      );
      ( "--out",
        Arg.Set_string out_file,
        "FILE  Write the machine-readable bench report to FILE (default \
         BENCH_pr7.json; empty disables)" );
      ( "--engine",
        Arg.String
          (fun s ->
            match Sim.Trace.engine_of_string s with
            | Some e -> trace_engine := e
            | None ->
              raise (Arg.Bad "--engine must be 'streaming' or 'buffered'")),
        "E  Trace store: streaming (born-compressed, default) or buffered \
         (raw 8-byte-per-block reference)" );
      ( "--scale",
        Arg.Int
          (fun n ->
            if n < 1 then raise (Arg.Bad "--scale must be >= 1");
            scale := n),
        "N  Workload scale factor (default 1 = the paper's programs; \
         above 1 welds on the generated auxiliary program)" );
      ( "-j",
        Arg.Int
          (fun n ->
            if n < 1 then raise (Arg.Bad "-j must be >= 1");
            jobs := n),
        "N  Run the table regeneration over N domains (default: the \
         number of cores; 1 = the serial path)" );
      ( "--jobs",
        Arg.Int
          (fun n ->
            if n < 1 then raise (Arg.Bad "--jobs must be >= 1");
            jobs := n),
        "N  Same as -j" );
      ( "--compare-serial",
        Arg.Set compare_serial,
        "  First regenerate every table serially (no pool), then again \
         under -j; assert the rendered tables are identical and report \
         the speedup" );
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "bench/main.exe [--only t6,t8] [--benchmarks wc,grep] [--out FILE] \
     [--engine streaming|buffered] [--scale N] [-j N] [--compare-serial]"

(* ------------------------------------------------------------------ *)
(* Part 1: table regeneration                                          *)
(* ------------------------------------------------------------------ *)

let regenerate_tables specs names =
  say "=== IMPACT-I instruction placement reproduction: %s ==="
    (match !only_ids with
    | None -> "all experiments"
    | Some ids -> "experiments " ^ String.concat "," ids);
  say "(building pipelines for %s; engine %s, scale %d)"
    (match names with
    | None -> "the ten benchmarks"
    | Some ns -> String.concat ", " ns)
    (Sim.Trace.engine_name !trace_engine)
    !scale;
  let t0 = Unix.gettimeofday () in
  let ctx =
    Experiments.Context.create ~engine:!trace_engine ~scale:!scale ?names ()
  in
  (* Force each benchmark's pipeline + trace up front so the per-table
     times below measure table computation, not lazy pipeline builds —
     and so the report can carry a per-benchmark build cost. *)
  let bench_seconds =
    Experiments.Context.map_entries
      (fun e ->
        let t = Unix.gettimeofday () in
        ignore (Experiments.Context.pipeline e);
        ignore (Experiments.Context.trace e);
        (Experiments.Context.name e, Unix.gettimeofday () -. t))
      ctx
  in
  let outcomes =
    List.map
      (fun spec ->
        let o = Experiments.Runner.run_spec ctx spec in
        say "";
        print_string (Report.Table.render o.Experiments.Runner.table);
        say "[table %s regenerated in %.1fs]" spec.Experiments.Runner.id
          o.Experiments.Runner.wall_seconds;
        o)
      specs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  say "";
  say "=== %d experiment(s) regenerated in %.1fs ===" (List.length specs)
    elapsed;
  (ctx, bench_seconds, outcomes, elapsed)

(* --compare-serial reference pass: the same tables on a fresh context
   with no pool, unrendered.  Runs before the default pool exists, so
   every consumer takes its serial path. *)
let serial_reference specs names =
  say "";
  say "=== --compare-serial: serial reference pass (no pool) ===";
  let t0 = Unix.gettimeofday () in
  let ctx =
    Experiments.Context.create ~engine:!trace_engine ~scale:!scale ?names ()
  in
  let outcomes =
    List.map (fun spec -> Experiments.Runner.run_spec ctx spec) specs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  say "=== serial reference: %d experiment(s) in %.1fs ==="
    (List.length specs) elapsed;
  (outcomes, elapsed)

(* Bit-identity assertion between the serial reference tables and the
   parallel run's: title, header and every row must match exactly. *)
let assert_identical_tables serial parallel =
  List.iter2
    (fun (s : Experiments.Runner.outcome) (p : Experiments.Runner.outcome) ->
      let st = s.Experiments.Runner.table
      and pt = p.Experiments.Runner.table in
      let same =
        Report.Table.title st = Report.Table.title pt
        && Report.Table.header st = Report.Table.header pt
        && Report.Table.rows st = Report.Table.rows pt
      in
      if not same then begin
        Printf.eprintf
          "FATAL: table %s diverged between -j 1 and -j %d\n--- serial\n\
           %s--- parallel\n%s"
          s.Experiments.Runner.spec.Experiments.Runner.id !jobs
          (Report.Table.render st) (Report.Table.render pt);
        exit 1
      end)
    serial parallel;
  say "";
  say "=== --compare-serial: all %d table(s) identical at -j 1 and -j %d ==="
    (List.length serial) !jobs

(* ------------------------------------------------------------------ *)
(* Engine comparison: the seed's per-config word-granular replay vs the
   block-granular single-pass engine, on one benchmark.                *)
(* ------------------------------------------------------------------ *)

type engine_report = {
  engine_bench : string;
  engine_configs : int;
  reference_seconds : float;
  fast_seconds : float;
  speedup : float;
  identical : bool;
}

let engine_speedup ctx =
  match Experiments.Context.entries ctx with
  | [] -> None
  | e :: _ ->
    let map = Experiments.Context.optimized_map e in
    let trace = Experiments.Context.trace e in
    let configs = Experiments.Table6.configs in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let reference, t_ref =
      time (fun () ->
          List.map (fun c -> Sim.Driver.simulate c map trace) configs)
    in
    let fast, t_fast = time (fun () -> Sim.Driver.simulate_many configs map trace) in
    let identical =
      List.for_all2
        (fun (a : Sim.Driver.result) (b : Sim.Driver.result) ->
          a.Sim.Driver.misses = b.Sim.Driver.misses
          && a.Sim.Driver.words_fetched = b.Sim.Driver.words_fetched
          && a.Sim.Driver.avg_exec_insns = b.Sim.Driver.avg_exec_insns
          && a.Sim.Driver.eat_blocking = b.Sim.Driver.eat_blocking)
        reference fast
    in
    let speedup = t_ref /. Float.max t_fast 1e-9 in
    say "";
    say
      "=== engine speedup (%s, %d configs): word-granular simulate %.2fs \
       vs single-pass simulate_many %.2fs = %.1fx%s ==="
      (Experiments.Context.name e)
      (List.length configs) t_ref t_fast speedup
      (if identical then ", results identical" else " — METRICS DIVERGE");
    Some
      {
        engine_bench = Experiments.Context.name e;
        engine_configs = List.length configs;
        reference_seconds = t_ref;
        fast_seconds = t_fast;
        speedup;
        identical;
      }

(* Differential cost of the instrumentation itself: the same
   simulate_many workload with spans + metrics off vs on.  The span and
   metric hooks inside the sim driver are one load + branch when
   disabled and a handful of hashtable bumps per call when enabled, so
   the measured overhead must stay well under the 5%% acceptance line. *)
let telemetry_overhead ctx =
  match Experiments.Context.entries ctx with
  | [] -> None
  | e :: _ ->
    let map = Experiments.Context.optimized_map e in
    let trace = Experiments.Context.trace e in
    let configs = Experiments.Table6.configs in
    (* One simulate_many run varies ±20%% on a contended machine — far
       more than the effect under measurement — so interleave off/on
       runs and compare the per-mode minima, which discards scheduler
       and GC noise instead of averaging it in. *)
    let reps = 4 in
    let time_once enabled =
      Obs.Span.set_enabled enabled;
      Obs.Metrics.set_enabled enabled;
      let t0 = Unix.gettimeofday () in
      ignore (Sim.Driver.simulate_many configs map trace);
      Unix.gettimeofday () -. t0
    in
    let spans0 = Obs.Span.enabled () in
    let metrics0 = Obs.Metrics.enabled () in
    ignore (Sim.Driver.simulate_many configs map trace);
    let t_off = ref infinity and t_on = ref infinity in
    for _ = 1 to reps do
      t_off := Float.min !t_off (time_once false);
      t_on := Float.min !t_on (time_once true)
    done;
    Obs.Span.set_enabled spans0;
    Obs.Metrics.set_enabled metrics0;
    let t_off = !t_off and t_on = !t_on in
    let overhead = (t_on -. t_off) /. Float.max t_off 1e-9 in
    say "";
    say
      "=== telemetry overhead (simulate_many, best of %d on %s): off \
       %.3fs vs on %.3fs = %+.1f%% (target < 5%%) ==="
      reps
      (Experiments.Context.name e)
      t_off t_on (100. *. overhead);
    Some (t_off, t_on, overhead)

(* ------------------------------------------------------------------ *)
(* Machine-readable bench report (impact.bench/v1)                     *)
(* ------------------------------------------------------------------ *)

let write_report path ~names ~bench_seconds ~outcomes ~total_seconds
    ~domains ~serial_seconds ~parallel_speedup ~engine ~overhead =
  let num f = Obs.Json.Float f in
  let hits = Obs.Metrics.value Experiments.Context.memo_hits in
  let misses = Obs.Metrics.value Experiments.Context.memo_misses in
  let lookups = hits + misses in
  (* Trace-store gauges (registration is idempotent, so this reads the
     same gauges Sim.Trace bumps on every recording). *)
  let tgauge n = int_of_float (Obs.Metrics.gauge_value (Obs.Metrics.gauge n)) in
  let t_runs = tgauge "trace.runs" in
  let t_raw = tgauge "trace.raw_bytes" in
  let t_stored = tgauge "trace.compressed_bytes" in
  let t_peak = tgauge "trace.peak_resident_bytes" in
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "impact.bench/v1");
        ( "benchmarks",
          match names with
          | None -> Obs.Json.Null
          | Some ns ->
            Obs.Json.List (List.map (fun n -> Obs.Json.String n) ns) );
        ( "pipeline_seconds",
          Obs.Json.Obj (List.map (fun (n, t) -> (n, num t)) bench_seconds) );
        ( "tables",
          Obs.Json.List
            (List.map
               (fun (o : Experiments.Runner.outcome) ->
                 Obs.Json.Obj
                   [
                     ( "id",
                       Obs.Json.String
                         o.Experiments.Runner.spec.Experiments.Runner.id );
                     ( "title",
                       Obs.Json.String
                         o.Experiments.Runner.spec.Experiments.Runner.title );
                     ( "wall_seconds",
                       num o.Experiments.Runner.wall_seconds );
                   ])
               outcomes) );
        ("total_seconds", num total_seconds);
        (* Additive since impact.bench/v1 gained the parallel run:
           [domains] is the -j lane count and the two optional fields
           come from --compare-serial (Null otherwise). *)
        ("domains", Obs.Json.Int domains);
        ( "serial_seconds",
          match serial_seconds with None -> Obs.Json.Null | Some s -> num s );
        ( "parallel_speedup",
          match parallel_speedup with
          | None -> Obs.Json.Null
          | Some s -> num s );
        ( "engine",
          match engine with
          | None -> Obs.Json.Null
          | Some r ->
            Obs.Json.Obj
              [
                ("bench", Obs.Json.String r.engine_bench);
                ("configs", Obs.Json.Int r.engine_configs);
                ("reference_seconds", num r.reference_seconds);
                ("fast_seconds", num r.fast_seconds);
                ("speedup", num r.speedup);
                ("identical", Obs.Json.Bool r.identical);
              ] );
        ( "memo",
          Obs.Json.Obj
            [
              ("hits", Obs.Json.Int hits);
              ("misses", Obs.Json.Int misses);
              ( "hit_rate",
                if lookups = 0 then Obs.Json.Null
                else num (float_of_int hits /. float_of_int lookups) );
            ] );
        (* Additive since the streaming/compressed trace store: the
           recording engine, the workload scale factor, and the summed
           trace-store gauges.  [trace.ratio] is the live compression
           ratio; under the streaming engine peak residency IS the
           stored size, so raw/peak is the peak-memory reduction over
           the buffered engine. *)
        ("trace_engine", Obs.Json.String (Sim.Trace.engine_name !trace_engine));
        ("scale", Obs.Json.Int !scale);
        ( "trace",
          Obs.Json.Obj
            [
              ("runs", Obs.Json.Int t_runs);
              ("raw_bytes", Obs.Json.Int t_raw);
              ("stored_bytes", Obs.Json.Int t_stored);
              ("peak_resident_bytes", Obs.Json.Int t_peak);
              ( "ratio",
                if t_stored = 0 then Obs.Json.Null
                else num (float_of_int t_raw /. float_of_int t_stored) );
            ] );
        ( "telemetry_overhead",
          match overhead with
          | None -> Obs.Json.Null
          | Some (off, on_, ratio) ->
            Obs.Json.Obj
              [
                ("off_seconds", num off);
                ("on_seconds", num on_);
                ("overhead_ratio", num ratio);
              ] );
      ]
  in
  Obs.Json.to_file path json;
  say "[bench report written to %s]" path

(* One-line trace-store summary from the Sim.Trace gauges. *)
let trace_store_summary () =
  let g n = int_of_float (Obs.Metrics.gauge_value (Obs.Metrics.gauge n)) in
  let raw = g "trace.raw_bytes" and stored = g "trace.compressed_bytes" in
  let peak = g "trace.peak_resident_bytes" and runs = g "trace.runs" in
  let kb b = float_of_int b /. 1024. in
  if stored > 0 then begin
    say "";
    say
      "=== trace store (%s engine, scale %d): %d runs, raw %.0f KB -> \
       stored %.0f KB (%.1fx), peak resident %.0f KB ==="
      (Sim.Trace.engine_name !trace_engine)
      !scale runs (kb raw) (kb stored)
      (float_of_int raw /. Float.max (float_of_int stored) 1.)
      (kb peak)
  end

(* Trend figures: the Table 6 sweep as sparklines and the 2KB design
   point as a bar chart, natural vs optimized. *)
let figures ctx =
  say "";
  let rows = Experiments.Table6.compute ctx in
  let pct v = Printf.sprintf "%.2f%%" (100. *. v) in
  print_string
    (Report.Chart.sparklines ~format:pct
       ~title:
         "Figure A: miss ratio vs cache size (direct-mapped, 64B blocks, \
          optimized layout; glyph ramp ' .:-=+*#@' scaled to the worst \
          point)"
       ~points:[ "8K"; "4K"; "2K"; "1K"; "0.5K" ]
       (List.map
          (fun (r : Experiments.Sweep.row) ->
            (r.Experiments.Sweep.name,
             List.map (fun c -> c.Experiments.Sweep.miss) r.Experiments.Sweep.cells))
          rows));
  say "";
  let ablation = Experiments.Ablation.compute ctx in
  print_string
    (Report.Chart.bars ~format:pct
       ~title:
         "Figure B: 2KB/64B miss ratio, natural layout (pre-inlining \
          baseline)"
       (List.map
          (fun (r : Experiments.Ablation.row) ->
            (r.Experiments.Ablation.name, r.Experiments.Ablation.baseline))
          ablation));
  say "";
  print_string
    (Report.Chart.bars ~format:pct
       ~title:"Figure C: 2KB/64B miss ratio, full placement pipeline"
       (List.map
          (fun (r : Experiments.Ablation.row) ->
            (r.Experiments.Ablation.name, r.Experiments.Ablation.full))
          ablation))

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Small fixed artifacts reused across the micro-benchmarks so each test
   times exactly one pipeline stage. *)
module Fixture = struct
  let bench = Workloads.Registry.find "wc"
  let program = Workloads.Bench.program bench
  let input = Vm.Io.input [ Workloads.Inputs.text ~seed:1 ~bytes:4_000 ]
  let profile = Vm.Profile.profile program [ input ]
  let trace = Sim.Trace.record program input
  let natural = Placement.Address_map.natural program

  let selections =
    Array.mapi
      (fun fid f ->
        Placement.Trace_select.select f
          (Placement.Weight.cfg_of_profile profile fid))
      program.Ir.Prog.funcs

  let layouts =
    Array.mapi
      (fun fid f ->
        Placement.Func_layout.layout f
          (Placement.Weight.cfg_of_profile profile fid)
          selections.(fid))
      program.Ir.Prog.funcs

  let global =
    Placement.Global_layout.layout
      (Array.length program.Ir.Prog.funcs)
      ~entry:program.Ir.Prog.entry
      (Placement.Weight.call_of_profile profile)

  let optimized = Placement.Address_map.build program ~layouts ~order:global

  let simulate config map =
    ignore (Sim.Driver.simulate config map trace)
end


let tests =
  [
    (* Table 1: baseline lookup. *)
    Test.make ~name:"t1_smith_lookup"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Paper.smith_miss_ratio ~cache_size:2048
                ~block_size:64)));
    (* Table 2: execution profiling. *)
    Test.make ~name:"t2_profile_run"
      (Staged.stage (fun () ->
           ignore (Vm.Profile.profile Fixture.program [ Fixture.input ])));
    (* Table 3: inline expansion. *)
    Test.make ~name:"t3_inline_expand"
      (Staged.stage (fun () ->
           ignore
             (Placement.Inline.expand_once Placement.Inline.default_config
                ~budget:max_int Fixture.program Fixture.profile)));
    (* Table 4: trace selection over every function. *)
    Test.make ~name:"t4_trace_selection"
      (Staged.stage (fun () ->
           Array.iteri
             (fun fid f ->
               ignore
                 (Placement.Trace_select.select f
                    (Placement.Weight.cfg_of_profile Fixture.profile fid)))
             Fixture.program.Ir.Prog.funcs));
    (* Table 5: function + global layout and address assignment. *)
    Test.make ~name:"t5_layout_and_map"
      (Staged.stage (fun () ->
           let layouts =
             Array.mapi
               (fun fid f ->
                 Placement.Func_layout.layout f
                   (Placement.Weight.cfg_of_profile Fixture.profile fid)
                   Fixture.selections.(fid))
               Fixture.program.Ir.Prog.funcs
           in
           ignore
             (Placement.Address_map.build Fixture.program ~layouts
                ~order:Fixture.global)));
    (* Table 6: whole-block direct-mapped simulation. *)
    Test.make ~name:"t6_sim_direct_2k_64"
      (Staged.stage (fun () ->
           Fixture.simulate (Icache.Config.make ~size:2048 ~block:64 ())
             Fixture.optimized));
    (* The same design point through the block-granular fast path. *)
    Test.make ~name:"t6_sim_many_1cfg"
      (Staged.stage (fun () ->
           ignore
             (Sim.Driver.simulate_many
                [ Icache.Config.make ~size:2048 ~block:64 () ]
                Fixture.optimized Fixture.trace)));
    (* All five Table 6 sizes in one single-pass trace walk. *)
    Test.make ~name:"t6_sim_many_5cfg"
      (Staged.stage (fun () ->
           ignore
             (Sim.Driver.simulate_many Experiments.Table6.configs
                Fixture.optimized Fixture.trace)));
    (* Table 7: small-block simulation. *)
    Test.make ~name:"t7_sim_direct_2k_16"
      (Staged.stage (fun () ->
           Fixture.simulate (Icache.Config.make ~size:2048 ~block:16 ())
             Fixture.optimized));
    (* Table 8: sectored and partial fills. *)
    Test.make ~name:"t8_sim_sectored"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:(Icache.Config.Sectored 8) ())
             Fixture.optimized));
    Test.make ~name:"t8_sim_partial"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:Icache.Config.Partial ())
             Fixture.optimized));
    (* Table 9: code scaling + re-layout. *)
    Test.make ~name:"t9_scale_and_map"
      (Staged.stage (fun () ->
           let scaled = Ir.Prog.scale_code 0.7 Fixture.program in
           let layouts =
             Array.mapi
               (fun fid f ->
                 Placement.Func_layout.layout f
                   (Placement.Weight.cfg_of_profile Fixture.profile fid)
                   Fixture.selections.(fid))
               scaled.Ir.Prog.funcs
           in
           ignore
             (Placement.Address_map.build scaled ~layouts
                ~order:Fixture.global)));
    (* Comparison: fully associative LRU baseline. *)
    Test.make ~name:"t10_sim_full_assoc"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~assoc:Icache.Config.Full ())
             Fixture.natural));
    (* Timing ablation: simulation including the three timing models. *)
    Test.make ~name:"t11_sim_with_timing"
      (Staged.stage (fun () ->
           Fixture.simulate
             (Icache.Config.make ~size:2048 ~block:64
                ~fill:Icache.Config.Partial ())
             Fixture.optimized));
  ]

let run_microbenchmarks () =
  say "";
  say "=== bechamel micro-benchmarks (one per table) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time ] ->
            let label =
              if time > 1e9 then Printf.sprintf "%8.2f s " (time /. 1e9)
              else if time > 1e6 then Printf.sprintf "%8.2f ms" (time /. 1e6)
              else if time > 1e3 then Printf.sprintf "%8.2f us" (time /. 1e3)
              else Printf.sprintf "%8.2f ns" time
            in
            say "  %-24s %s/run" name label
          | Some _ | None -> say "  %-24s (no estimate)" name)
        results)
    tests

let () =
  parse_cli ();
  (* Metrics stay on for the whole run so the report can carry the memo
     hit rate; spans stay off (the overhead probe toggles them). *)
  Obs.Metrics.set_enabled true;
  let specs =
    match !only_ids with
    | None -> Experiments.Runner.all
    | Some ids -> (
      try List.map Experiments.Runner.find ids
      with Experiments.Runner.Unknown_experiment id ->
        Printf.eprintf "error: unknown table id %S (valid: %s)\n" id
          (String.concat ","
             (List.map
                (fun s -> "t" ^ s.Experiments.Runner.id)
                Experiments.Runner.all));
        exit 2)
  in
  (match !bench_names with
  | None -> ()
  | Some ns ->
    List.iter
      (fun n ->
        if not (List.mem n Workloads.Registry.names) then begin
          Printf.eprintf "error: unknown benchmark %S (valid: %s)\n" n
            (String.concat "," Workloads.Registry.names);
          exit 2
        end)
      ns);
  (* The serial reference runs before the default pool exists; the
     normal pass then runs under -j N (a 1-lane run never builds a
     pool, keeping the serial path byte for byte). *)
  let serial =
    if !compare_serial then Some (serial_reference specs !bench_names)
    else None
  in
  let pool = if !jobs > 1 then Some (Placement.Pool.create !jobs) else None in
  Placement.Pool.set_default pool;
  Fun.protect
    ~finally:(fun () ->
      Placement.Pool.set_default None;
      Option.iter Placement.Pool.shutdown pool)
  @@ fun () ->
  say "";
  say "=== running with -j %d (%s) ===" !jobs
    (if !jobs > 1 then "domain pool" else "serial path");
  let t_run0 = Unix.gettimeofday () in
  let ctx, bench_seconds, outcomes, table_seconds =
    regenerate_tables specs !bench_names
  in
  let serial_seconds, parallel_speedup =
    match serial with
    | None -> (None, None)
    | Some (serial_outcomes, serial_secs) ->
      assert_identical_tables serial_outcomes outcomes;
      let speedup = serial_secs /. Float.max table_seconds 1e-9 in
      say "=== parallel speedup: serial %.1fs / -j %d %.1fs = %.2fx ==="
        serial_secs !jobs table_seconds speedup;
      (Some serial_secs, Some speedup)
  in
  (* Figures and micro-benchmarks belong to the full run; a filtered run
     (CI smoke, iteration) stops after its tables.  The engine-speedup
     and telemetry-overhead lines are always printed. *)
  if !only_ids = None then figures ctx;
  trace_store_summary ();
  let engine = engine_speedup ctx in
  let overhead = telemetry_overhead ctx in
  if !only_ids = None then run_microbenchmarks ();
  if !out_file <> "" then
    write_report !out_file ~names:!bench_names ~bench_seconds ~outcomes
      ~total_seconds:(Unix.gettimeofday () -. t_run0)
      ~domains:!jobs ~serial_seconds ~parallel_speedup ~engine ~overhead;
  say "";
  say "done."
