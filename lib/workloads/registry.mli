(** The ten-benchmark suite, in the paper's Table 2 order:
    cccp, cmp, compress, grep, lex, make, tee, tar, wc, yacc. *)

exception Unknown_benchmark of string

val all : Bench.t list
val names : string list

val suite : scale:int -> Bench.t list
(** The suite at a scale factor: [scale <= 1] is {!all}; above 1 every
    benchmark is the {!Scale.apply} variant (same names, bigger code and
    longer traces). *)

val find : ?scale:int -> string -> Bench.t
(** Raises {!Unknown_benchmark}. *)
