(** A small C library written in the workload DSL: ctype tests, string and
    memory routines, number/string output, line input, hashing.

    Every benchmark links the whole library, so library code appears in
    dynamic traces (as in the paper) and unused functions become the
    zero-weight code the layout pushes out of the effective region. *)

val ctype_image : string
(** 256-byte classification table backing the [is_*] functions. *)

val globals : (string * Ir.Ast.ginit) list
val funcs : Ir.Ast.func list

val link :
  ?globals:(string * Ir.Ast.ginit) list ->
  entry:string ->
  Ir.Ast.func list ->
  Ir.Ast.program
(** [link ~globals ~entry workload_funcs] assembles a complete program:
    the workload's globals and functions plus the library. *)

val surface : count:int -> Ir.Ast.func list
(** [count] generated buffer routines (digest / blend / scan shapes) for
    the scaled workload variants; not part of {!funcs} or {!link} — only
    scaled programs ({!Scale.apply}) carry them. *)
