(* Scaled-up workload variants.

   The paper's benchmarks are small enough that everything but yacc fits
   a 64KB cache trivially, so the large end of the sweep measures
   nothing.  [apply ~scale] grows a benchmark's code footprint and trace
   length by welding a generated auxiliary program onto its AST:

   - switch-based DFA evaluators ([xscale_dfa_*]) — wide dispatch over
     many states, the dominant code-size term;
   - a deep call chain ([xscale_chain_*]) that threads every DFA, so the
     call graph gains [4*scale] levels of depth;
   - a wide classifier switch ([xscale_class]) cycled through all its
     arms;
   - extra library surface ([Libc.surface]), exercised through a
     dispatch switch so every generated routine is hot.

   The auxiliary code does no I/O and the wrapper entry returns exactly
   the original entry's value, so a scaled benchmark consumes the same
   inputs and produces the same output streams as the original — only
   the instruction-fetch behavior changes.  All generated names carry
   the [xscale_]/[xlib_] prefixes, which no workload or library function
   uses. *)

open Ir.Ast.Dsl

(* Knobs, all derived from the single [scale] factor (>= 2). *)
let ndfa scale = 2 + (2 * scale)
let nstates scale idx = 16 + (4 * scale) - (2 * (idx mod 3))
let depth scale = 4 * scale
let ncases scale = 32 + (16 * scale)
let nlib scale = 2 + scale
let iters scale = 8 * scale
let dfa_steps = 12

let dfa_name idx = Printf.sprintf "xscale_dfa_%d" idx
let chain_name idx = Printf.sprintf "xscale_chain_%d" idx
let lib_name idx = Printf.sprintf "xlib_%d" idx

(* A DFA evaluator: [steps] rounds of a switch over [n] states.  Each
   arm updates the accumulator with its own constants and the next state
   mixes in the accumulator, so the visited-state sequence is chaotic
   and most arms are hot.  A negative scrutinee (accumulator arithmetic
   wraps) lands in the default arm, which resets the state. *)
let dfa_func ~n idx =
  let arm s =
    ( [ s ],
      [
        set "acc" ((v "acc" *% i (17 + (2 * (s mod 9)))) +% i (s + idx + 1));
        set "s" (i (((s * 5) + 3) mod n));
      ] )
  in
  func (dfa_name idx) [ "x"; "steps" ]
    [
      decl "s" (v "x" %% i n);
      decl "acc" (i (idx + 1));
      decl "k" (i 0);
      while_ (v "k" <% v "steps")
        [
          switch (v "s") (List.init n arm) [ set "s" (i 0) ];
          set "s" ((v "s" +% (v "acc" %% i 3)) %% i n);
          incr_ "k";
        ];
      ret (v "acc");
    ]

(* One level of the call chain: evaluate a DFA, then recurse one level
   deeper (the last level bottoms out on its argument). *)
let chain_func ~scale idx =
  let deeper =
    if idx + 1 < depth scale then call (chain_name (idx + 1)) [ v "x" +% i 1 ]
    else v "x"
  in
  func (chain_name idx) [ "x" ]
    [
      decl "a" (call (dfa_name (idx mod ndfa scale)) [ v "x" +% i idx; i dfa_steps ]);
      decl "b" deeper;
      ret ((v "a" ^% v "b") +% i idx);
    ]

(* A wide classifier: one switch with [ncases] tiny arms.  Driven with
   the loop counter so the arms are visited round-robin. *)
let class_func ~scale =
  let n = ncases scale in
  func "xscale_class" [ "c" ]
    [
      switch
        (v "c" %% i n)
        (List.init n (fun s -> ([ s ], [ ret (i (((s * 2654435761) lsr 8) land 0xffff)) ])))
        [ ret (i 0) ];
    ]

(* The auxiliary driver: fill a scratch buffer, then [iters] rounds of
   chain + classifier + library dispatch. *)
let main_func ~scale =
  let lib_dispatch =
    switch
      (v "k" %% i (nlib scale))
      (List.init (nlib scale) (fun m ->
           ( [ m ],
             [ set "acc" (v "acc" ^% call (lib_name m) [ v "buf"; i 256 ]) ] )))
      []
  in
  func "xscale_main" [ "iters" ]
    [
      decl "buf" (alloc (i 256));
      decl "j" (i 0);
      while_ (v "j" <% i 256)
        [
          st8 (v "buf" +% v "j") (((v "j" *% i 31) +% i 7) &% i 0xff);
          incr_ "j";
        ];
      decl "acc" (i 0);
      decl "k" (i 0);
      while_ (v "k" <% v "iters")
        [
          set "acc" (v "acc" ^% call (chain_name 0) [ v "k" ]);
          set "acc" (v "acc" +% call "xscale_class" [ v "k" ]);
          lib_dispatch;
          incr_ "k";
        ];
      ret (v "acc");
    ]

(* Wrapper entry: run the auxiliary program, then the original entry.
   [aux - aux] keeps the auxiliary result live through lowering while
   returning exactly the original value, so scaled and unscaled runs
   have identical outputs and return values. *)
let entry_func ~scale ~original_entry =
  func "xscale_entry" []
    [
      decl "aux" (call "xscale_main" [ i (iters scale) ]);
      decl "r" (call original_entry []);
      ret (v "r" +% (v "aux" -% v "aux"));
    ]

let transform ~scale (p : Ir.Ast.program) : Ir.Ast.program =
  let aux =
    List.init (ndfa scale) (fun idx -> dfa_func ~n:(nstates scale idx) idx)
    @ List.init (depth scale) (fun idx -> chain_func ~scale idx)
    @ [ class_func ~scale; main_func ~scale ]
    @ Libc.surface ~count:(nlib scale)
    @ [ entry_func ~scale ~original_entry:p.Ir.Ast.entry ]
  in
  { p with Ir.Ast.funcs = p.Ir.Ast.funcs @ aux; entry = "xscale_entry" }

let apply ~scale (b : Bench.t) : Bench.t =
  if scale <= 1 then b
  else
    Bench.make ~name:b.Bench.name
      ~description:
        (Printf.sprintf "%s [scaled x%d]" b.Bench.description scale)
      ~ast:(fun () -> transform ~scale (Bench.ast b))
      ~profile_inputs:(fun () -> Bench.profile_inputs b)
      ~trace_input:(fun () -> Bench.trace_input b)
