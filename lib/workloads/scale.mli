(** Scaled-up workload variants: [apply ~scale] grows a benchmark's code
    footprint and trace length by welding a generated auxiliary program
    onto its AST — switch-based DFA evaluators, a [4*scale]-deep call
    chain, a wide classifier switch and extra {!Libc.surface} routines,
    all driven from a wrapper entry that finally runs the original
    program.

    The auxiliary code does no I/O and the wrapper returns exactly the
    original entry's value, so a scaled benchmark consumes the same
    inputs and produces the same outputs as the original; only the
    instruction-fetch behavior changes. *)

val apply : scale:int -> Bench.t -> Bench.t
(** Identity for [scale <= 1].  Generated functions carry the [xscale_]
    and [xlib_] name prefixes. *)

val transform : scale:int -> Ir.Ast.program -> Ir.Ast.program
(** The underlying AST transform ([apply] on a lazy program). *)
