(* The benchmark suite: the ten UNIX-like programs of the paper's Table 2,
   in the paper's order. *)

let all : Bench.t list =
  [
    W_cccp.benchmark;
    W_cmp.benchmark;
    W_compress.benchmark;
    W_grep.benchmark;
    W_lex.benchmark;
    W_make.benchmark;
    W_tee.benchmark;
    W_tar.benchmark;
    W_wc.benchmark;
    W_yacc.benchmark;
  ]

let names = List.map (fun b -> b.Bench.name) all

(* The suite at a given scale factor: 1 is the paper's programs as-is;
   above 1 every benchmark is wrapped in the [Scale] auxiliary program.
   Scaled Bench values are cheap shells (ASTs and inputs stay lazy), so
   no memoization is needed here. *)
let suite ~scale =
  if scale <= 1 then all else List.map (Scale.apply ~scale) all

exception Unknown_benchmark of string

let find ?(scale = 1) name =
  match List.find_opt (fun b -> b.Bench.name = name) all with
  | Some b -> if scale <= 1 then b else Scale.apply ~scale b
  | None -> raise (Unknown_benchmark name)
