(* A small C library written in the workload DSL.

   Every benchmark links the whole library; the functions a benchmark
   never calls become zero-weight functions, exactly the dead code the
   layout algorithm pushes out of the effective region (Table 5's
   total-vs-effective static bytes).  Because these are real DSL
   functions, library code appears in the dynamic traces, as in the
   paper. *)

open Ir.Ast.Dsl

(* ctype classification flags *)
let f_space = 1
let f_digit = 2
let f_upper = 4
let f_lower = 8
let f_punct = 16

let ctype_image =
  String.init 256 (fun code ->
      let c = Char.chr code in
      let flags =
        (if c = ' ' || c = '\t' || c = '\n' || c = '\r' then f_space else 0)
        lor (if c >= '0' && c <= '9' then f_digit else 0)
        lor (if c >= 'A' && c <= 'Z' then f_upper else 0)
        lor (if c >= 'a' && c <= 'z' then f_lower else 0)
        lor
        if (c >= '!' && c <= '/') || (c >= ':' && c <= '@')
           || (c >= '[' && c <= '`') || (c >= '{' && c <= '~')
        then f_punct
        else 0
      in
      Char.chr flags)

let globals = [ ("__ctype", Ir.Ast.Gbytes ctype_image) ]

(* ctype tests: table lookup guarded against out-of-range codes (getc
   returns -1 at end of input). *)
let ctype_fn name mask =
  func name [ "c" ]
    [
      if_ ((v "c" <% i 0) ||% (v "c" >=% i 256)) [ ret (i 0) ] [];
      ret (ld8 (g "__ctype" +% v "c") &% i mask);
    ]

let is_space = ctype_fn "is_space" f_space
let is_digit = ctype_fn "is_digit" f_digit
let is_upper = ctype_fn "is_upper" f_upper
let is_lower = ctype_fn "is_lower" f_lower
let is_punct = ctype_fn "is_punct" f_punct
let is_alpha = ctype_fn "is_alpha" (f_upper lor f_lower)
let is_alnum = ctype_fn "is_alnum" (f_upper lor f_lower lor f_digit)

let to_upper =
  func "to_upper" [ "c" ]
    [
      if_ (call "is_lower" [ v "c" ]) [ ret (v "c" -% i 32) ] [ ret (v "c") ];
    ]

let to_lower =
  func "to_lower" [ "c" ]
    [
      if_ (call "is_upper" [ v "c" ]) [ ret (v "c" +% i 32) ] [ ret (v "c") ];
    ]

let min_i = func "min_i" [ "a"; "b" ]
    [ if_ (v "a" <% v "b") [ ret (v "a") ] [ ret (v "b") ] ]

let max_i = func "max_i" [ "a"; "b" ]
    [ if_ (v "a" >% v "b") [ ret (v "a") ] [ ret (v "b") ] ]

let abs_i = func "abs_i" [ "a" ]
    [ if_ (v "a" <% i 0) [ ret (i 0 -% v "a") ] [ ret (v "a") ] ]

let strlen =
  func "strlen" [ "s" ]
    [
      decl "n" (i 0);
      while_ (ld8 (v "s" +% v "n") <>% i 0) [ incr_ "n" ];
      ret (v "n");
    ]

let strcmp =
  func "strcmp" [ "a"; "b" ]
    [
      decl "idx" (i 0);
      while_ (i 1)
        [
          decl "ca" (ld8 (v "a" +% v "idx"));
          decl "cb" (ld8 (v "b" +% v "idx"));
          if_ (v "ca" <>% v "cb") [ ret (v "ca" -% v "cb") ] [];
          if_ (v "ca" ==% i 0) [ ret (i 0) ] [];
          incr_ "idx";
        ];
      ret (i 0);
    ]

let strncmp =
  func "strncmp" [ "a"; "b"; "n" ]
    [
      decl "idx" (i 0);
      while_ (v "idx" <% v "n")
        [
          decl "ca" (ld8 (v "a" +% v "idx"));
          decl "cb" (ld8 (v "b" +% v "idx"));
          if_ (v "ca" <>% v "cb") [ ret (v "ca" -% v "cb") ] [];
          if_ (v "ca" ==% i 0) [ ret (i 0) ] [];
          incr_ "idx";
        ];
      ret (i 0);
    ]

let strcpy =
  func "strcpy" [ "dst"; "src" ]
    [
      decl "idx" (i 0);
      decl "c" (ld8 (v "src"));
      while_ (v "c" <>% i 0)
        [
          st8 (v "dst" +% v "idx") (v "c");
          incr_ "idx";
          set "c" (ld8 (v "src" +% v "idx"));
        ];
      st8 (v "dst" +% v "idx") (i 0);
      ret (v "dst");
    ]

let strchr =
  func "strchr" [ "s"; "c" ]
    [
      decl "idx" (i 0);
      while_ (i 1)
        [
          decl "cur" (ld8 (v "s" +% v "idx"));
          if_ (v "cur" ==% v "c") [ ret (v "s" +% v "idx") ] [];
          if_ (v "cur" ==% i 0) [ ret (i 0) ] [];
          incr_ "idx";
        ];
      ret (i 0);
    ]

let memcpy =
  func "memcpy" [ "dst"; "src"; "n" ]
    [
      decl "idx" (i 0);
      while_ (v "idx" <% v "n")
        [
          st8 (v "dst" +% v "idx") (ld8 (v "src" +% v "idx"));
          incr_ "idx";
        ];
      ret (v "dst");
    ]

let memset =
  func "memset" [ "p"; "c"; "n" ]
    [
      decl "idx" (i 0);
      while_ (v "idx" <% v "n")
        [ st8 (v "p" +% v "idx") (v "c"); incr_ "idx" ];
      ret (v "p");
    ]

let memcmp =
  func "memcmp" [ "a"; "b"; "n" ]
    [
      decl "idx" (i 0);
      while_ (v "idx" <% v "n")
        [
          decl "d" (ld8 (v "a" +% v "idx") -% ld8 (v "b" +% v "idx"));
          if_ (v "d" <>% i 0) [ ret (v "d") ] [];
          incr_ "idx";
        ];
      ret (i 0);
    ]

let atoi =
  func "atoi" [ "s" ]
    [
      decl "idx" (i 0);
      while_ (call "is_space" [ ld8 (v "s" +% v "idx") ]) [ incr_ "idx" ];
      decl "sign" (i 1);
      decl "c" (ld8 (v "s" +% v "idx"));
      if_ (v "c" ==% chr '-')
        [ set "sign" (i 0 -% i 1); incr_ "idx" ]
        [ when_ (v "c" ==% chr '+') [ incr_ "idx" ] ];
      decl "acc" (i 0);
      set "c" (ld8 (v "s" +% v "idx"));
      while_ (call "is_digit" [ v "c" ])
        [
          set "acc" ((v "acc" *% i 10) +% (v "c" -% chr '0'));
          incr_ "idx";
          set "c" (ld8 (v "s" +% v "idx"));
        ];
      ret (v "acc" *% v "sign");
    ]

(* Multiplicative string hash, bounded by [m]. *)
let hash_string =
  func "hash_string" [ "s"; "m" ]
    [
      decl "h" (i 5381);
      decl "idx" (i 0);
      decl "c" (ld8 (v "s"));
      while_ (v "c" <>% i 0)
        [
          set "h" (((v "h" *% i 33) +% v "c") &% i 0x7fffffff);
          incr_ "idx";
          set "c" (ld8 (v "s" +% v "idx"));
        ];
      ret (v "h" %% v "m");
    ]

let hash_bytes =
  func "hash_bytes" [ "p"; "n"; "m" ]
    [
      decl "h" (i 5381);
      decl "idx" (i 0);
      while_ (v "idx" <% v "n")
        [
          set "h" (((v "h" *% i 33) +% ld8 (v "p" +% v "idx")) &% i 0x7fffffff);
          incr_ "idx";
        ];
      ret (v "h" %% v "m");
    ]

(* Write a NUL-terminated string to an output stream. *)
let print_string =
  func "print_string" [ "stream"; "s" ]
    [
      decl "idx" (i 0);
      decl "c" (ld8 (v "s"));
      while_ (v "c" <>% i 0)
        [
          putc (v "stream") (v "c");
          incr_ "idx";
          set "c" (ld8 (v "s" +% v "idx"));
        ];
      ret0;
    ]

(* Decimal output, handling zero and negatives. *)
let print_num =
  func "print_num" [ "stream"; "n" ]
    [
      when_ (v "n" ==% i 0) [ putc (v "stream") (chr '0'); ret0 ];
      when_ (v "n" <% i 0)
        [ putc (v "stream") (chr '-'); set "n" (i 0 -% v "n") ];
      decl "buf" (alloc (i 16));
      decl "len" (i 0);
      while_ (v "n" >% i 0)
        [
          st8 (v "buf" +% v "len") ((v "n" %% i 10) +% chr '0');
          set "n" (v "n" /% i 10);
          incr_ "len";
        ];
      while_ (v "len" >% i 0)
        [ decr_ "len"; putc (v "stream") (ld8 (v "buf" +% v "len")) ];
      ret0;
    ]

(* Read one line from a stream into [buf] (at most [max]-1 bytes), strip
   the newline, NUL-terminate.  Returns the line length, or -1 at end of
   input when nothing was read. *)
let read_line =
  func "read_line" [ "stream"; "buf"; "max" ]
    [
      decl "len" (i 0);
      decl "c" (getc (v "stream"));
      when_ (v "c" <% i 0) [ ret (i 0 -% i 1) ];
      while_ ((v "c" >=% i 0) &&% (v "c" <>% chr '\n'))
        [
          when_ (v "len" <% (v "max" -% i 1))
            [ st8 (v "buf" +% v "len") (v "c"); incr_ "len" ];
          set "c" (getc (v "stream"));
        ];
      st8 (v "buf" +% v "len") (i 0);
      ret (v "len");
    ]

let is_xdigit =
  func "is_xdigit" [ "c" ]
    [
      when_ (call "is_digit" [ v "c" ]) [ ret (i 1) ];
      when_ ((v "c" >=% chr 'a') &&% (v "c" <=% chr 'f')) [ ret (i 1) ];
      when_ ((v "c" >=% chr 'A') &&% (v "c" <=% chr 'F')) [ ret (i 1) ];
      ret (i 0);
    ]

let strrchr =
  func "strrchr" [ "s"; "c" ]
    [
      decl "found" (i 0);
      decl "idx" (i 0);
      decl "cur" (ld8 (v "s"));
      while_ (v "cur" <>% i 0)
        [
          when_ (v "cur" ==% v "c") [ set "found" (v "s" +% v "idx") ];
          incr_ "idx";
          set "cur" (ld8 (v "s" +% v "idx"));
        ];
      ret (v "found");
    ]

let strcat =
  func "strcat" [ "dst"; "src" ]
    [
      decl "off" (call "strlen" [ v "dst" ]);
      expr (call "strcpy" [ v "dst" +% v "off"; v "src" ]);
      ret (v "dst");
    ]

let strncpy =
  func "strncpy" [ "dst"; "src"; "n" ]
    [
      decl "idx" (i 0);
      decl "c" (ld8 (v "src"));
      while_ ((v "idx" <% v "n") &&% (v "c" <>% i 0))
        [
          st8 (v "dst" +% v "idx") (v "c");
          incr_ "idx";
          set "c" (ld8 (v "src" +% v "idx"));
        ];
      while_ (v "idx" <% v "n")
        [ st8 (v "dst" +% v "idx") (i 0); incr_ "idx" ];
      ret (v "dst");
    ]

(* Length of the prefix of s consisting of characters in accept. *)
let strspn =
  func "strspn" [ "s"; "accept" ]
    [
      decl "idx" (i 0);
      while_ (i 1)
        [
          decl "c" (ld8 (v "s" +% v "idx"));
          when_ (v "c" ==% i 0) [ ret (v "idx") ];
          when_ (call "strchr" [ v "accept"; v "c" ] ==% i 0)
            [ ret (v "idx") ];
          incr_ "idx";
        ];
      ret (v "idx");
    ]

(* First occurrence of needle in haystack, or 0. *)
let strstr =
  func "strstr" [ "hay"; "needle" ]
    [
      when_ (ld8 (v "needle") ==% i 0) [ ret (v "hay") ];
      decl "nlen" (call "strlen" [ v "needle" ]);
      decl "idx" (i 0);
      while_ (ld8 (v "hay" +% v "idx") <>% i 0)
        [
          when_
            (call "strncmp" [ v "hay" +% v "idx"; v "needle"; v "nlen" ]
            ==% i 0)
            [ ret (v "hay" +% v "idx") ];
          incr_ "idx";
        ];
      ret (i 0);
    ]

(* In-place quicksort of an array of 32-bit words (Lomuto partition,
   recursive). *)
let qsort_words =
  func "qsort_words" [ "base"; "lo"; "hi" ]
    [
      when_ (v "lo" >=% v "hi") [ ret0 ];
      decl "pivot" (ld32 (v "base" +% (v "hi" *% i 4)));
      decl "store" (v "lo");
      decl "k" (v "lo");
      while_ (v "k" <% v "hi")
        [
          decl "cur" (ld32 (v "base" +% (v "k" *% i 4)));
          when_ (v "cur" <% v "pivot")
            [
              decl "tmp" (ld32 (v "base" +% (v "store" *% i 4)));
              st32 (v "base" +% (v "store" *% i 4)) (v "cur");
              st32 (v "base" +% (v "k" *% i 4)) (v "tmp");
              incr_ "store";
            ];
          incr_ "k";
        ];
      decl "tmp2" (ld32 (v "base" +% (v "store" *% i 4)));
      st32 (v "base" +% (v "store" *% i 4)) (v "pivot");
      st32 (v "base" +% (v "hi" *% i 4)) (v "tmp2");
      expr (call "qsort_words" [ v "base"; v "lo"; v "store" -% i 1 ]);
      expr (call "qsort_words" [ v "base"; v "store" +% i 1; v "hi" ]);
      ret0;
    ]

(* Binary search in a sorted word array; index or -1. *)
let bsearch_words =
  func "bsearch_words" [ "base"; "n"; "key" ]
    [
      decl "lo" (i 0);
      decl "hi" (v "n" -% i 1);
      while_ (v "lo" <=% v "hi")
        [
          decl "mid" ((v "lo" +% v "hi") /% i 2);
          decl "cur" (ld32 (v "base" +% (v "mid" *% i 4)));
          when_ (v "cur" ==% v "key") [ ret (v "mid") ];
          if_ (v "cur" <% v "key")
            [ set "lo" (v "mid" +% i 1) ]
            [ set "hi" (v "mid" -% i 1) ];
        ];
      ret (i 0 -% i 1);
    ]

(* Hexadecimal output (lowercase, no prefix, at least one digit). *)
let print_hex =
  func "print_hex" [ "stream"; "n" ]
    [
      when_ (v "n" ==% i 0) [ putc (v "stream") (chr '0'); ret0 ];
      when_ (v "n" <% i 0)
        [ putc (v "stream") (chr '-'); set "n" (i 0 -% v "n") ];
      decl "buf" (alloc (i 20));
      decl "len" (i 0);
      while_ (v "n" >% i 0)
        [
          decl "d" (v "n" &% i 15);
          if_ (v "d" <% i 10)
            [ st8 (v "buf" +% v "len") (v "d" +% chr '0') ]
            [ st8 (v "buf" +% v "len") (v "d" -% i 10 +% chr 'a') ];
          set "n" (v "n" >>% i 4);
          incr_ "len";
        ];
      while_ (v "len" >% i 0)
        [ decr_ "len"; putc (v "stream") (ld8 (v "buf" +% v "len")) ];
      ret0;
    ]

let funcs =
  [
    is_space; is_digit; is_upper; is_lower; is_punct; is_alpha; is_alnum;
    is_xdigit; to_upper; to_lower; min_i; max_i; abs_i; strlen; strcmp;
    strncmp; strcpy; strncpy; strcat; strchr; strrchr; strspn; strstr;
    memcpy; memset; memcmp; atoi; hash_string; hash_bytes; qsort_words;
    bsearch_words; print_string; print_num; print_hex; read_line;
  ]

(* Assemble a complete program: workload globals/functions plus the
   library. *)
let link ?(globals = []) ~entry funcs_list : Ir.Ast.program =
  {
    Ir.Ast.globals = globals @ [ ("__ctype", Ir.Ast.Gbytes ctype_image) ];
    funcs = funcs_list @ funcs;
    entry;
  }

(* ------------------------------------------------------------------ *)
(* Generated surface extension                                         *)
(* ------------------------------------------------------------------ *)

(* Extra buffer routines for the scaled workload variants (see [Scale]):
   [count] generated functions cycling through three shapes — rolling
   digest, in-place blend, run-counting scan — with per-function
   multipliers and strides so every instance lowers to distinct code.
   They are not part of [funcs]/[link]: only scaled programs carry them,
   which is what grows the library surface beyond the paper's. *)
let surface ~count : Ir.Ast.func list =
  List.init count (fun m ->
      let name = Printf.sprintf "xlib_%d" m in
      let mult = 31 + (2 * (m mod 7)) in
      let stride = 1 + (m mod 3) in
      match m mod 3 with
      | 0 ->
        (* rolling digest over the buffer *)
        func name [ "buf"; "len" ]
          [
            decl "h" (i (40503 + (mult * 97)));
            decl "k" (i 0);
            while_ (v "k" <% v "len")
              [
                set "h"
                  (((v "h" *% i mult) ^% ld8 (v "buf" +% v "k")) &% i 0xffffff);
                set "k" (v "k" +% i stride);
              ];
            ret (v "h");
          ]
      | 1 ->
        (* blend the buffer in place *)
        func name [ "buf"; "len" ]
          [
            decl "k" (i 0);
            decl "c" (i (mult land 0xff));
            while_ (v "k" <% v "len")
              [
                set "c" ((v "c" +% ld8 (v "buf" +% v "k")) &% i 0xff);
                st8 (v "buf" +% v "k") (v "c");
                set "k" (v "k" +% i stride);
              ];
            ret (v "c");
          ]
      | _ ->
        (* scan for the maximum byte, counting value runs *)
        func name [ "buf"; "len" ]
          [
            decl "best" (i (-1));
            decl "runs" (i 0);
            decl "prev" (i (-1));
            decl "k" (i 0);
            while_ (v "k" <% v "len")
              [
                decl "b" (ld8 (v "buf" +% v "k"));
                when_ (v "b" >% v "best") [ set "best" (v "b") ];
                when_ (v "b" <>% v "prev") [ incr_ "runs" ];
                set "prev" (v "b");
                set "k" (v "k" +% i stride);
              ];
            ret ((v "best" <<% i 8) +% v "runs");
          ])
