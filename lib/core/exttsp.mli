(** Extended-TSP basic-block reordering (Newell & Pupyrev, "Improved
    Basic Block Reordering"): maximize fall-through weight plus partial
    credit for short forward/backward jumps, via greedy chain merging
    with the paper's three chain-splitting moves.  Results reuse
    {!Func_layout.t} so {!Address_map.build} applies unchanged. *)

open Ir

val layout : Prog.func -> Weight.cfg_weights -> Func_layout.t
(** Entry block first; never-executed blocks form the non-executed
    region at the bottom, as in the IMPACT and Pettis-Hansen layouts. *)
