(* Call-chain clustering (C3) function ordering, after Ottoni & Maher
   ("Optimizing Function Placement for Large-Scale Data-Center
   Applications", CGO 2017) and the merge-gain refinement of Hoag,
   Pupyrev et al. ("Optimizing Function Layout for Mobile
   Applications").

   Functions start as singleton clusters.  The optimizer repeatedly
   merges the pair of call-connected clusters with the highest merge
   gain, where the gain of placing cluster X directly before cluster Y
   scores every call arc between the two by its proximity in the
   concatenated layout:

     gain(X.Y) = sum over cross arcs (f,g)  w(f,g) * max(0, 1 - d/D)

   with d the byte distance between the two function entry points in
   X.Y and D the locality horizon [distance_horizon] (one 4KB page: a
   caller/callee pair further apart than a page shares neither a cache
   line nor a page, so merging earns nothing).  Both concatenation
   orders are scored; a merge is rejected when the combined cluster
   would exceed [max_cluster_bytes] — the capped cluster size keeps one
   cold call from chaining the whole program into a single cluster.

   Clusters are emitted with the entry function's cluster first, the
   remaining executed clusters by decreasing density (samples per byte,
   the C3 paper's final ordering), and never-executed functions last in
   definition order. *)

let max_cluster_bytes = 16384
let distance_horizon = 4096.
let epsilon = 1e-9

(* Telemetry: accepted cluster merges. *)
let clusters_merged =
  Obs.Metrics.counter "layout.clusters_merged"
    ~help:"C3 call-chain cluster merges applied"

type cluster = {
  cid : int; (* stable id, for deterministic tie-breaking *)
  mutable funcs : int list; (* placement order, head first *)
  mutable bytes : int;
  mutable samples : int; (* total entry count *)
}

let global nfuncs ~entry (w : Weight.call_weights) : Global_layout.t =
  (* Undirected cross-cluster call weight per function pair. *)
  let arc_tbl = Hashtbl.create 64 in
  for caller = 0 to nfuncs - 1 do
    List.iter
      (fun callee ->
        if caller <> callee then begin
          let weight = w.pair caller callee in
          if weight > 0 then begin
            let key = (min caller callee, max caller callee) in
            let cur =
              match Hashtbl.find_opt arc_tbl key with Some c -> c | None -> 0
            in
            Hashtbl.replace arc_tbl key (cur + weight)
          end
        end)
      (w.callees caller)
  done;
  let size fid = max 1 (w.size fid) in
  let cluster_of =
    Array.init nfuncs (fun fid ->
      { cid = fid; funcs = [ fid ]; bytes = size fid; samples = w.entries fid })
  in
  (* Entry-point byte offset of every function in a candidate
     concatenation, then the proximity-scored gain. *)
  let offsets funcs =
    let tbl = Hashtbl.create 16 in
    let cursor = ref 0 in
    List.iter
      (fun fid ->
        Hashtbl.add tbl fid !cursor;
        cursor := !cursor + size fid)
      funcs;
    tbl
  in
  let merge_gain ca cb =
    (* Cross arcs between the two clusters. *)
    let cross = ref [] in
    List.iter
      (fun f ->
        List.iter
          (fun g ->
            let key = (min f g, max f g) in
            match Hashtbl.find_opt arc_tbl key with
            | Some weight -> cross := (f, g, weight) :: !cross
            | None -> ())
          cb.funcs)
      ca.funcs;
    match !cross with
    | [] -> None
    | cross_arcs ->
      let score funcs =
        let off = offsets funcs in
        List.fold_left
          (fun acc (f, g, weight) ->
            let d =
              float_of_int (abs (Hashtbl.find off g - Hashtbl.find off f))
            in
            acc +. (float_of_int weight *. Stdlib.max 0. (1. -. (d /. distance_horizon))))
          0. cross_arcs
      in
      (* The entry function must stay at the very front of its cluster. *)
      let candidates =
        List.filter
          (fun funcs -> match funcs with
            | first :: _ ->
              (not (List.mem entry funcs)) || first = entry
            | [] -> false)
          [ ca.funcs @ cb.funcs; cb.funcs @ ca.funcs ]
      in
      List.fold_left
        (fun best funcs ->
          let gain = score funcs in
          match best with
          | Some (bg, _) when bg >= gain -> best
          | _ when gain > epsilon -> Some (gain, funcs)
          | _ -> best)
        None candidates
  in
  (* Candidate cluster pairs: those connected by a call arc. *)
  let pair_tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (f, g) _ ->
      let a = cluster_of.(f).cid and b = cluster_of.(g).cid in
      if a <> b then Hashtbl.replace pair_tbl (min a b, max a b) ())
    arc_tbl;
  let gain_cache = Hashtbl.create 64 in
  let pair_gain (a, b) =
    match Hashtbl.find_opt gain_cache (a, b) with
    | Some g -> g
    | None ->
      let ca = cluster_of.(a) and cb = cluster_of.(b) in
      let g =
        if ca.bytes + cb.bytes > max_cluster_bytes then None
        else merge_gain ca cb
      in
      Hashtbl.add gain_cache (a, b) g;
      g
  in
  let merged = ref true in
  while !merged do
    merged := false;
    let best = ref None in
    Hashtbl.iter
      (fun (a, b) () ->
        if cluster_of.(a).cid = a && cluster_of.(b).cid = b then
          match pair_gain (a, b) with
          | None -> ()
          | Some (gain, funcs) -> (
            match !best with
            | Some (bg, _, _) when bg > gain +. epsilon -> ()
            | Some (bg, bk, _)
              when bg >= gain -. epsilon && compare bk (a, b) <= 0 -> ()
            | _ -> best := Some (gain, (a, b), funcs)))
      pair_tbl;
    match !best with
    | None -> ()
    | Some (_, (a, b), funcs) ->
      Obs.Metrics.incr clusters_merged;
      let ca = cluster_of.(a) and cb = cluster_of.(b) in
      ca.funcs <- funcs;
      ca.bytes <- ca.bytes + cb.bytes;
      ca.samples <- ca.samples + cb.samples;
      List.iter (fun fid -> cluster_of.(fid) <- ca) cb.funcs;
      let stale = ref [] and rekeyed = ref [] in
      Hashtbl.iter
        (fun (x, y) () ->
          if x = a || y = a || x = b || y = b then begin
            stale := (x, y) :: !stale;
            let x' = if x = b then a else x and y' = if y = b then a else y in
            if x' <> y' then rekeyed := (min x' y', max x' y') :: !rekeyed
          end)
        pair_tbl;
      List.iter
        (fun key ->
          Hashtbl.remove pair_tbl key;
          Hashtbl.remove gain_cache key)
        !stale;
      List.iter
        (fun key ->
          if not (Hashtbl.mem pair_tbl key) then Hashtbl.add pair_tbl key ())
        !rekeyed;
      merged := true
  done;
  (* Emission order: entry cluster, executed clusters by density, cold
     functions in definition order. *)
  let executed fid = w.entries fid > 0 || fid = entry in
  let clusters = ref [] in
  Array.iteri
    (fun fid c ->
      if executed fid && not (List.memq c !clusters) then
        clusters := c :: !clusters)
    cluster_of;
  let clusters = List.rev !clusters in
  let entry_cluster = cluster_of.(entry) in
  let density c =
    float_of_int c.samples /. float_of_int (max 1 c.bytes)
  in
  let rest =
    List.sort
      (fun a b ->
        match compare (density b) (density a) with
        | 0 -> compare a.cid b.cid
        | c -> c)
      (List.filter (fun c -> c != entry_cluster) clusters)
  in
  let hot =
    List.concat_map (fun c -> List.filter executed c.funcs)
      (entry_cluster :: rest)
  in
  let cold =
    List.filter (fun fid -> not (executed fid)) (List.init nfuncs (fun i -> i))
  in
  { Global_layout.order = Array.of_list (hot @ cold) }
