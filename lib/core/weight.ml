(* Weighted-graph views consumed by the placement algorithms.

   The algorithms are written against this small interface rather than
   against [Vm.Profile] directly, so tests can drive them with hand-built
   weights and alternative profilers can be plugged in. *)

open Ir

(* Weighted control graph of one function. *)
type cfg_weights = {
  func_weight : int; (* times the function was entered *)
  block : Cfg.label -> int;
  arcs_out : Cfg.label -> (Cfg.label * int) list;
  arcs_in : Cfg.label -> (Cfg.label * int) list;
}

(* Weighted call graph of a program. *)
type call_weights = {
  pair : int -> int -> int; (* caller fid -> callee fid -> total calls *)
  callees : int -> int list; (* statically called functions, deduplicated *)
  entries : int -> int; (* times the function was entered *)
  size : int -> int; (* function byte size; layout algorithms that cap or
                        score by distance (e.g. call-chain clustering)
                        consult it *)
}

let cfg_of_profile (profile : Vm.Profile.t) fid =
  let incoming = Vm.Profile.in_arcs profile fid in
  {
    func_weight = Vm.Profile.func_weight profile fid;
    block = Vm.Profile.block_weight profile fid;
    arcs_out = Vm.Profile.out_arcs profile fid;
    arcs_in = (fun l -> incoming.(l));
  }

let call_of_profile (profile : Vm.Profile.t) =
  let prog = profile.Vm.Profile.prog in
  let graph = Callgraph.build prog in
  let pair_counts = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (caller, _block, callee) count ->
      (* weight(X, X) = 0, per the paper's GlobalLayout algorithm *)
      if caller <> callee then begin
        let key = (caller, callee) in
        let cur =
          match Hashtbl.find_opt pair_counts key with
          | Some c -> c
          | None -> 0
        in
        Hashtbl.replace pair_counts key (cur + count)
      end)
    profile.Vm.Profile.site_counts;
  {
    pair =
      (fun caller callee ->
        match Hashtbl.find_opt pair_counts (caller, callee) with
        | Some c -> c
        | None -> 0);
    callees = (fun fid -> graph.Callgraph.callees.(fid));
    entries = (fun fid -> Vm.Profile.func_weight profile fid);
    size = (fun fid -> Prog.func_byte_size prog.Prog.funcs.(fid));
  }

(* Hand-built control-graph weights, for tests and examples: a list of
   (block, count) and a list of (src, dst, count). *)
let cfg_of_lists ~func_weight ~blocks ~arcs =
  let block_tbl = Hashtbl.create 16 in
  List.iter (fun (l, c) -> Hashtbl.replace block_tbl l c) blocks;
  let outs = Hashtbl.create 16 and ins = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, c) ->
      Hashtbl.replace outs src
        ((dst, c) :: (Option.value ~default:[] (Hashtbl.find_opt outs src)));
      Hashtbl.replace ins dst
        ((src, c) :: (Option.value ~default:[] (Hashtbl.find_opt ins dst))))
    arcs;
  {
    func_weight;
    block =
      (fun l ->
        match Hashtbl.find_opt block_tbl l with Some c -> c | None -> 0);
    arcs_out =
      (fun l ->
        match Hashtbl.find_opt outs l with Some a -> a | None -> []);
    arcs_in =
      (fun l -> match Hashtbl.find_opt ins l with Some a -> a | None -> []);
  }
