(** Fixed-size domain pool with a chunked task queue and
    exception-carrying futures.

    [map] preserves input order, re-raises the lowest-index failing
    task's exception with its original payload and backtrace, and
    degrades to [List.map] on a single-lane pool — so [-j 1] is the
    serial path byte for byte, and a parallel run is bit-identical for
    any task function whose output depends only on its input.

    Nested [map] calls (a pool task submitting its own job to the same
    pool) are safe: the submitter executes its job's tasks itself until
    none are left to claim, so progress never depends on a free worker
    being available. *)

type t

val create : int -> t
(** [create lanes] runs jobs on [lanes] domains in total: [lanes - 1]
    spawned workers plus the calling domain, which participates in every
    [map] it submits.  [lanes <= 0] raises [Invalid_argument]; a 1-lane
    pool spawns nothing. *)

val lanes : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], in input order.  If tasks raise, the exception
    of the lowest-index failing task is re-raised in the caller once all
    tasks have settled. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Call once, with no job in
    flight. *)

(** {2 Process-wide default pool}

    How `-j N` reaches the parallel grains (benchmarks within a table,
    configurations within a sweep, fuzzer seeds) without threading a
    pool through every experiment signature.  Set once at startup before
    any parallel section, cleared after; [None] (the default) means
    every consumer takes its serial path. *)

val set_default : t option -> unit
val default : unit -> t option

val default_lanes : unit -> int
(** Lanes of the default pool; 1 when none is set. *)
