(* Pettis-Hansen style code positioning (PLDI 1990), implemented as a
   comparison algorithm: the best-known follow-on to the paper's
   placement scheme.

   Intra-function ("bottom-up positioning"): every basic block starts as
   a singleton chain; arcs are processed in decreasing weight, merging
   two chains when the arc runs from the tail of one to the head of the
   other.  Chains are then emitted starting with the entry chain,
   followed by the remaining executed chains in decreasing weight;
   never-executed chains sink to the bottom, mirroring the split the
   IMPACT layout produces so the two are directly comparable.

   Global ("closest is best" procedure ordering): functions start as
   singleton groups; undirected call-pair weights are processed in
   decreasing order, concatenating the two groups; the group containing
   the entry function is emitted first. *)

open Ir

(* ---------- intra-function chains ---------- *)

type chain = {
  mutable blocks : Cfg.label list; (* in order, head first *)
  mutable tail : Cfg.label; (* last element of [blocks], kept explicit so
                               arc processing stays O(1) per arc *)
  mutable weight : int;
}

(* Telemetry: tail-to-head chain concatenations (intra-function) and
   "closest is best" group concatenations (global). *)
let chains_merged =
  Obs.Metrics.counter "layout.chains_merged"
    ~help:"block-chain merges applied (Pettis-Hansen + ext-TSP)"

let groups_merged =
  Obs.Metrics.counter "layout.groups_merged"
    ~help:"Pettis-Hansen closest-is-best group concatenations"

let layout (f : Prog.func) (w : Weight.cfg_weights) : Func_layout.t =
  let n = Array.length f.blocks in
  if w.func_weight = 0 then Func_layout.layout_unexecuted f
  else begin
    let chain_of =
      Array.init n (fun l -> { blocks = [ l ]; tail = l; weight = w.block l })
    in
    let head c = List.hd c.blocks in
    let tail c = c.tail in
    (* All arcs with nonzero weight, heaviest first; ties deterministic. *)
    let arcs = ref [] in
    for src = 0 to n - 1 do
      List.iter
        (fun (dst, count) ->
          if count > 0 && src <> dst then arcs := (count, src, dst) :: !arcs)
        (w.arcs_out src)
    done;
    let arcs =
      List.sort
        (fun (c1, s1, d1) (c2, s2, d2) ->
          match compare c2 c1 with
          | 0 -> compare (s1, d1) (s2, d2)
          | c -> c)
        !arcs
    in
    List.iter
      (fun (_, src, dst) ->
        let ca = chain_of.(src) and cb = chain_of.(dst) in
        if ca != cb && tail ca = src && head cb = dst && dst <> 0 then begin
          (* merge cb onto ca's tail *)
          ca.blocks <- ca.blocks @ cb.blocks;
          ca.tail <- cb.tail;
          ca.weight <- ca.weight + cb.weight;
          List.iter (fun l -> chain_of.(l) <- ca) cb.blocks;
          Obs.Metrics.incr chains_merged
        end)
      arcs;
    (* Distinct chains, in block order of their heads. *)
    let chains = ref [] in
    Array.iter
      (fun c -> if not (List.memq c !chains) then chains := c :: !chains)
      chain_of;
    let chains = List.rev !chains in
    let entry_chain = chain_of.(0) in
    let executed, dead =
      List.partition (fun c -> c.weight > 0) chains
    in
    let executed =
      entry_chain
      :: List.sort
           (fun a b -> compare b.weight a.weight)
           (List.filter (fun c -> c != entry_chain) executed)
    in
    let order_list =
      List.concat_map (fun c -> c.blocks) executed
      @ List.concat_map (fun c -> c.blocks) dead
    in
    let order = Array.of_list order_list in
    Obs.Metrics.incr
      ~by:(List.length (List.concat_map (fun c -> c.blocks) dead))
      Func_layout.dead_blocks_sunk;
    let active_labels = List.concat_map (fun c -> c.blocks) executed in
    let bytes labels =
      List.fold_left (fun acc l -> acc + Cfg.byte_size f.blocks.(l)) 0 labels
    in
    {
      Func_layout.order;
      active_blocks = List.length active_labels;
      active_bytes = bytes active_labels;
      total_bytes = Prog.func_byte_size f;
    }
  end

(* ---------- global "closest is best" ordering ---------- *)

let global nfuncs ~entry (w : Weight.call_weights) : Global_layout.t =
  (* Undirected pair weights, deduplicated on the unordered pair. *)
  let pair_tbl = Hashtbl.create 64 in
  for a = 0 to nfuncs - 1 do
    List.iter
      (fun b ->
        if a <> b then begin
          let key = (min a b, max a b) in
          if not (Hashtbl.mem pair_tbl key) then begin
            let weight = w.pair a b + w.pair b a in
            if weight > 0 then Hashtbl.add pair_tbl key weight
          end
        end)
      (w.callees a)
  done;
  let edges =
    Hashtbl.fold (fun (a, b) weight acc -> (weight, a, b) :: acc) pair_tbl []
  in
  let edges =
    List.sort
      (fun (w1, a1, b1) (w2, a2, b2) ->
        match compare w2 w1 with
        | 0 -> compare (a1, b1) (a2, b2)
        | c -> c)
      edges
  in
  let group_of = Array.init nfuncs (fun fid -> ref [ fid ]) in
  List.iter
    (fun (_, a, b) ->
      let ga = group_of.(a) and gb = group_of.(b) in
      if ga != gb then begin
        ga := !ga @ !gb;
        List.iter (fun fid -> group_of.(fid) <- ga) !gb;
        Obs.Metrics.incr groups_merged
      end)
    edges;
  (* Emit the entry's group first, then remaining groups by total entry
     weight, heaviest first. *)
  let groups = ref [] in
  Array.iter
    (fun gr -> if not (List.memq gr !groups) then groups := gr :: !groups)
    group_of;
  let groups = List.rev !groups in
  let entry_group = group_of.(entry) in
  let rest = List.filter (fun gr -> gr != entry_group) groups in
  let group_weight gr =
    List.fold_left (fun acc fid -> acc + w.entries fid) 0 !gr
  in
  let rest =
    List.sort (fun a b -> compare (group_weight b) (group_weight a)) rest
  in
  let order =
    Array.of_list (List.concat_map (fun gr -> !gr) (entry_group :: rest))
  in
  { Global_layout.order }
