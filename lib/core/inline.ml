(* Function inline expansion (paper step 2).

   Call sites with high dynamic execution count are replaced with the
   callee body, turning the important inter-function control transfers
   into intra-function transfers.  The paper reports this both enlarges
   function bodies (feeding trace selection) and removes potential cache
   mapping conflicts between interacting functions.

   Mechanics: the callee's blocks are appended to the caller (labels and
   registers renamed by a constant offset), the call block's terminator
   becomes argument moves plus a jump to the inlined entry, and every
   callee [Ret] becomes a result move plus a jump to the original return
   continuation.  Function indices never change, so profile-derived site
   identities stay valid while a round of inlining proceeds. *)

open Ir

type config = {
  min_call_count : int; (* a site must execute at least this often *)
  min_call_fraction : float; (* ... or carry this share of all calls *)
  max_callee_insns : int; (* never inline callees larger than this *)
  max_program_growth : float; (* cap on total static code growth *)
  rounds : int; (* re-profile and repeat, for nested inlining *)
}

(* Defaults tuned so static growth lands in the paper's observed 0-34%
   range while still eliminating the bulk of dynamic calls. *)
let default_config =
  {
    min_call_count = 100;
    min_call_fraction = 0.004;
    max_callee_insns = 800;
    max_program_growth = 1.35;
    rounds = 3;
  }

type report = {
  sites_inlined : int;
  insns_before : int;
  insns_after : int;
  rounds_used : int;
}

let code_increase r =
  if r.insns_before = 0 then 0.
  else float_of_int (r.insns_after - r.insns_before) /. float_of_int r.insns_before

(* Splice [callee] into [caller] at [site], assuming the block ends in a
   call to that callee.  Returns the updated caller. *)
let splice (caller : Prog.func) site (callee : Prog.func) : Prog.func =
  let call_block = caller.blocks.(site) in
  match call_block.Cfg.term with
  | Cfg.Call { args; dst; ret_to; callee = callee_name } ->
    if callee_name <> callee.name then
      Diag.error ~stage:Diag.Structure ~func:caller.name ~block:site
        "inline splice: call targets %s, not %s" callee_name callee.name;
    let base_label = Array.length caller.blocks in
    let base_reg = caller.nregs in
    let remap_l l = base_label + l in
    let remap_r r = base_reg + r in
    let inlined =
      Array.map
        (fun (b : Cfg.block) ->
          let insns = Array.map (Insn.map_regs remap_r) b.Cfg.insns in
          match b.Cfg.term with
          | Cfg.Ret op ->
            let op = Option.map (Insn.map_operand_regs remap_r) op in
            let extra =
              match (dst, op) with
              | Some d, Some o -> [| Insn.Mov (d, o) |]
              | Some d, None -> [| Insn.Mov (d, Insn.Imm 0) |]
              | None, _ -> [||]
            in
            Cfg.mk_block (Array.append insns extra) (Cfg.Jump ret_to)
          | t ->
            Cfg.mk_block insns
              (Cfg.map_term_labels remap_l (Cfg.map_term_regs remap_r t)))
        callee.blocks
    in
    (* Move the actual arguments into the renamed parameter registers and
       fall into the inlined entry block.  Extra arguments beyond the
       parameter count are dropped, mirroring the interpreter. *)
    let arg_movs =
      List.filteri (fun idx _ -> idx < callee.nparams) args
      |> List.mapi (fun idx o -> Insn.Mov (base_reg + idx, o))
      |> Array.of_list
    in
    (* Preserve any size override on the call block (it may be the
       caller's entry block carrying prologue padding), extended by the
       argument moves just added. *)
    let call_block' =
      Cfg.mk_block
        ?size_override:
          (Option.map
             (fun n -> n + Array.length arg_movs)
             call_block.Cfg.size_override)
        (Array.append call_block.Cfg.insns arg_movs)
        (Cfg.Jump base_label)
    in
    let blocks = Array.append (Array.copy caller.blocks) inlined in
    blocks.(site) <- call_block';
    { caller with nregs = base_reg + callee.nregs; blocks }
  | Cfg.Jump _ | Cfg.Br _ | Cfg.Switch _ | Cfg.Ret _ ->
    Diag.error ~stage:Diag.Structure ~func:caller.name ~block:site
      "inline splice: block does not end in a call to %s" callee.name

(* One pass over the weighted call graph: inline the qualifying sites in
   decreasing dynamic-count order, respecting size and recursion limits.
   [budget] bounds the program's total instruction count. *)
let expand_once config ~budget (prog : Prog.program)
    (profile : Vm.Profile.t) : Prog.program * int =
  let total_calls = profile.Vm.Profile.dyn_calls in
  let threshold =
    max config.min_call_count
      (int_of_float (config.min_call_fraction *. float_of_int total_calls))
  in
  let sites =
    Hashtbl.fold
      (fun (caller, block, callee) count acc ->
        if count >= threshold then (count, caller, block, callee) :: acc
        else acc)
      profile.Vm.Profile.site_counts []
    |> List.sort (fun (c1, a1, b1, d1) (c2, a2, b2, d2) ->
           match compare c2 c1 with
           | 0 -> compare (a1, b1, d1) (a2, b2, d2)
           | c -> c)
  in
  let prog = ref prog in
  let graph = ref (Callgraph.build !prog) in
  let total_insns = ref (Prog.total_instr_count !prog) in
  let inlined = ref 0 in
  List.iter
    (fun (_count, caller_fid, block, callee_fid) ->
      let caller = !prog.Prog.funcs.(caller_fid) in
      let callee = !prog.Prog.funcs.(callee_fid) in
      let callee_size = Prog.func_instr_count callee in
      let still_a_call =
        match caller.blocks.(block).Cfg.term with
        | Cfg.Call { callee = name; _ } -> name = callee.name
        | _ -> false
      in
      if
        still_a_call && caller_fid <> callee_fid
        && callee_size <= config.max_callee_insns
        && !total_insns + callee_size <= budget
        && not (Callgraph.in_cycle_with !graph ~src:caller_fid ~dst:callee_fid)
      then begin
        let caller' = splice caller block callee in
        let funcs = Array.copy !prog.Prog.funcs in
        funcs.(caller_fid) <- caller';
        prog := Prog.with_funcs !prog funcs;
        (* Splicing may add new caller->X edges; refresh for recursion
           checks. *)
        graph := Callgraph.build !prog;
        total_insns := Prog.total_instr_count !prog;
        incr inlined
      end)
    sites;
  (!prog, !inlined)

(* Full expansion: profile, inline, and repeat so that calls inside freshly
   inlined bodies can be expanded too (paper reduces dynamic calls to ~1%
   of control transfers). *)
let expand ?(config = default_config) (prog : Prog.program)
    ~(inputs : Vm.Io.input list) : Prog.program * report =
  let insns_before = Prog.total_instr_count prog in
  let budget =
    int_of_float (config.max_program_growth *. float_of_int insns_before)
  in
  let rec go round prog sites =
    if round >= config.rounds then (prog, sites, round)
    else begin
      let profile = Vm.Profile.profile prog inputs in
      let prog', n = expand_once config ~budget prog profile in
      if n = 0 then (prog', sites, round)
      else go (round + 1) prog' (sites + n)
    end
  in
  let prog', sites_inlined, rounds_used = go 0 prog 0 in
  Obs.Metrics.incr ~by:sites_inlined
    (Obs.Metrics.counter "pipeline.sites_inlined"
       ~help:"call sites expanded by inline rounds");
  ( prog',
    {
      sites_inlined;
      insns_before;
      insns_after = Prog.total_instr_count prog';
      rounds_used;
    } )
