(** Call-chain clustering (C3) function ordering: bottom-up greedy
    merging of call-connected function clusters by proximity-scored
    merge gain, with a byte cap on cluster size; clusters are emitted by
    decreasing sample density.  Results reuse {!Global_layout.t} so
    {!Address_map.build} applies unchanged. *)

val global : int -> entry:int -> Weight.call_weights -> Global_layout.t
(** [global nfuncs ~entry w] keeps the entry function's cluster first;
    never-executed functions sink to the end in definition order. *)
