(** Function body layout — the paper's appendix
    [Algorithm FunctionBodyLayout] plus step 4's rule that never-executed
    traces move to the bottom of the function.

    The result splits the function into an {e effective} region (the
    placed nonzero-weight traces, a prefix of [order]) and a non-executed
    region; the global layout packs effective regions of different
    functions together. *)

open Ir

type t = {
  order : Cfg.label array;  (** all blocks, in layout order *)
  active_blocks : int;  (** prefix of [order] forming the effective region *)
  active_bytes : int;
  total_bytes : int;
}

val layout : Prog.func -> Weight.cfg_weights -> Trace_select.t -> t

val layout_unexecuted : Prog.func -> t
(** Original order, empty effective region. *)

val natural : Prog.func -> t
(** Unoptimized baseline: original block order, everything active. *)

val is_permutation : t -> int -> bool
(** Sanity: [order] is a permutation of the function's blocks. *)

val dead_blocks_sunk : Obs.Metrics.counter
(** Telemetry: blocks placed outside the packed effective region; shared
    by every layout algorithm that sinks dead code. *)
