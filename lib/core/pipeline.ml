(* The five-step IMPACT-I instruction placement pipeline:
   profile -> inline -> trace selection -> function layout -> global
   layout, producing an address map for the optimized placement and the
   natural (unoptimized) baseline map for comparison. *)

open Ir

type config = {
  inline : Inline.config;
  min_prob : float;
  do_inline : bool; (* disable to ablate the inlining step *)
  do_simplify : bool; (* CFG cleanups before profiling and after inlining *)
}

let default_config =
  {
    inline = Inline.default_config;
    min_prob = Trace_select.default_min_prob;
    do_inline = true;
    do_simplify = true;
  }

type t = {
  original : Prog.program;
  original_profile : Vm.Profile.t;
  program : Prog.program; (* after inline expansion *)
  profile : Vm.Profile.t; (* profile of [program] over the same inputs *)
  inline_report : Inline.report;
  selections : Trace_select.t array; (* per function of [program] *)
  layouts : Func_layout.t array;
  global : Global_layout.t;
  optimized : Address_map.t;
  natural : Address_map.t;
}

let run ?(config = default_config) (original : Prog.program)
    ~(inputs : Vm.Io.input list) : t =
  (* Step 0 (compiler hygiene): CFG cleanups before anything is profiled. *)
  let original =
    if config.do_simplify then
      Obs.Span.with_ ~stage:"simplify" (fun () -> Simplify.program original)
    else original
  in
  (* Step 1: execution profiling of the original program. *)
  let original_profile =
    Obs.Span.with_ ~stage:"profile"
      ~attrs:[ ("program", "original") ]
      (fun () -> Vm.Profile.profile original inputs)
  in
  (* Step 2: inline expansion of the important call sites, then a second
     cleanup pass over the splices. *)
  let program, inline_report =
    if config.do_inline then
      Obs.Span.with_ ~stage:"inline" (fun () ->
          Inline.expand ~config:config.inline original ~inputs)
    else
      ( original,
        {
          Inline.sites_inlined = 0;
          insns_before = Prog.total_instr_count original;
          insns_after = Prog.total_instr_count original;
          rounds_used = 0;
        } )
  in
  let program =
    if config.do_simplify && config.do_inline then
      Obs.Span.with_ ~stage:"simplify"
        ~attrs:[ ("program", "inlined") ]
        (fun () -> Simplify.program program)
    else program
  in
  (* Report code growth against what actually ships. *)
  let inline_report =
    { inline_report with Inline.insns_after = Prog.total_instr_count program }
  in
  (* Re-profile the transformed program on the same inputs so the layout
     steps see weights that match its control graphs. *)
  let profile =
    Obs.Span.with_ ~stage:"profile"
      ~attrs:[ ("program", "inlined") ]
      (fun () -> Vm.Profile.profile program inputs)
  in
  (* Step 3: trace selection per function. *)
  let selections =
    Obs.Span.with_ ~stage:"trace-selection" (fun () ->
        Array.mapi
          (fun fid f ->
            Trace_select.select ~min_prob:config.min_prob f
              (Weight.cfg_of_profile profile fid))
          program.Prog.funcs)
  in
  (* Step 4: function body layout. *)
  let layouts =
    Obs.Span.with_ ~stage:"func-layout" (fun () ->
        Array.mapi
          (fun fid f ->
            Func_layout.layout f (Weight.cfg_of_profile profile fid)
              selections.(fid))
          program.Prog.funcs)
  in
  (* Step 5: global layout over the weighted call graph. *)
  let global =
    Obs.Span.with_ ~stage:"global-layout" (fun () ->
        Global_layout.layout
          (Array.length program.Prog.funcs)
          ~entry:program.Prog.entry
          (Weight.call_of_profile profile))
  in
  let optimized, natural =
    Obs.Span.with_ ~stage:"address-map" (fun () ->
        ( Address_map.build program ~layouts ~order:global,
          Address_map.natural program ))
  in
  {
    original;
    original_profile;
    program;
    profile;
    inline_report;
    selections;
    layouts;
    global;
    optimized;
    natural;
  }

(* Address map of the (inlined, profiled) program under any registered
   layout strategy.  The IMPACT and natural maps the pipeline already
   built are returned as-is — [Strategy.impact] under a non-default
   pipeline config means "this pipeline's placement", and reusing the
   stored maps keeps them physically shared for memoization. *)
let map_for (t : t) (s : Strategy.t) : Address_map.t =
  if s.Strategy.id = Strategy.impact.Strategy.id then t.optimized
  else if s.Strategy.id = Strategy.natural.Strategy.id then t.natural
  else
    Obs.Span.with_ ~stage:"strategy-layout"
      ~attrs:[ ("strategy", s.Strategy.id) ]
      (fun () ->
        let layouts =
          Array.mapi
            (fun fid f ->
              s.Strategy.layout f (Weight.cfg_of_profile t.profile fid))
            t.program.Prog.funcs
        in
        let order =
          s.Strategy.global
            (Array.length t.program.Prog.funcs)
            ~entry:t.program.Prog.entry
            (Weight.call_of_profile t.profile)
        in
        Address_map.build t.program ~layouts ~order)
