(** Pettis-Hansen style code positioning (PLDI 1990), as a comparison
    algorithm: bottom-up chain merging within functions and
    "closest is best" greedy procedure ordering globally.  Results reuse
    {!Func_layout.t} / {!Global_layout.t} so {!Address_map.build} applies
    unchanged. *)

open Ir

val layout : Prog.func -> Weight.cfg_weights -> Func_layout.t
(** Chain formation over arcs in decreasing weight; executed chains first
    (entry chain leading), never-executed chains at the bottom. *)

val global : int -> entry:int -> Weight.call_weights -> Global_layout.t
(** Greedy merging of the undirected weighted call pairs; the entry's
    group is emitted first. *)

val chains_merged : Obs.Metrics.counter
(** Telemetry: block-chain merges applied; shared with {!Exttsp}. *)

val groups_merged : Obs.Metrics.counter
(** Telemetry: global group concatenations. *)
