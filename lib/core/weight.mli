(** Weighted-graph views consumed by the placement algorithms.

    The paper's step 1 produces a weighted call graph and per-function
    weighted control graphs; this module adapts {!Vm.Profile} data (or
    hand-built lists, in tests) to the interface the algorithms use. *)

open Ir

type cfg_weights = {
  func_weight : int;  (** times the function was entered *)
  block : Cfg.label -> int;
  arcs_out : Cfg.label -> (Cfg.label * int) list;
  arcs_in : Cfg.label -> (Cfg.label * int) list;
}

type call_weights = {
  pair : int -> int -> int;
      (** total dynamic calls caller->callee; self-calls weigh 0 *)
  callees : int -> int list;  (** statically called functions *)
  entries : int -> int;  (** times the function was entered *)
  size : int -> int;
      (** function byte size, consulted by layout algorithms that cap
          cluster sizes or score by byte distance *)
}

val cfg_of_profile : Vm.Profile.t -> int -> cfg_weights
val call_of_profile : Vm.Profile.t -> call_weights

val cfg_of_lists :
  func_weight:int ->
  blocks:(Cfg.label * int) list ->
  arcs:(Cfg.label * Cfg.label * int) list ->
  cfg_weights
(** Hand-built weights for tests and examples. *)
