(** First-class layout strategies: a registry of code-placement
    algorithms (function-body block ordering + global function
    ordering), so experiments, the pipeline and the CLI treat the choice
    of algorithm as data.  A new algorithm is one new registry entry. *)

open Ir

type t = {
  id : string;  (** stable CLI/registry name *)
  title : string;
  layout : Prog.func -> Weight.cfg_weights -> Func_layout.t;
  global : int -> entry:int -> Weight.call_weights -> Global_layout.t;
  entry_first : bool;
      (** the strategy guarantees the program's entry function leads the
          layout *)
  splits_dead_code : bool;
      (** never-executed blocks/functions are placed after the packed
          effective region *)
}

val impact : t
(** The paper's placement: trace selection + function-body layout +
    weighted call-graph DFS. *)

val natural : t
(** Unoptimized baseline: definition order everywhere. *)

val ph : t
(** Pettis-Hansen chain positioning and "closest is best" ordering. *)

val exttsp : t
(** Ext-TSP basic-block reordering ({!Exttsp}) with the paper's global
    DFS: varies the function-body axis only. *)

val c3 : t
(** Call-chain clustering ({!C3_layout}) with the paper's trace-based
    function bodies: varies the global-ordering axis only. *)

val all : t list
(** Registry, in presentation order. *)

exception Unknown_strategy of string

val find : string -> t
(** Lookup by [id]; raises {!Unknown_strategy}. *)

val ids : unit -> string list
