(** The five-step IMPACT-I instruction placement pipeline:
    profiling -> inline expansion -> trace selection -> function layout ->
    global layout, yielding optimized and natural address maps. *)

open Ir

type config = {
  inline : Inline.config;
  min_prob : float;
  do_inline : bool;  (** disable to ablate the inlining step *)
  do_simplify : bool;
      (** CFG cleanups (folding, threading, unreachable sweep) before
          profiling and after inlining *)
}

val default_config : config

type t = {
  original : Prog.program;  (** after cleanups, before inlining *)
  original_profile : Vm.Profile.t;
  program : Prog.program;  (** after inline expansion *)
  profile : Vm.Profile.t;  (** profile of [program] over the same inputs *)
  inline_report : Inline.report;
  selections : Trace_select.t array;  (** per function of [program] *)
  layouts : Func_layout.t array;
  global : Global_layout.t;
  optimized : Address_map.t;
  natural : Address_map.t;
}

val run : ?config:config -> Prog.program -> inputs:Vm.Io.input list -> t

val map_for : t -> Strategy.t -> Address_map.t
(** Address map of the inlined program under any registered layout
    strategy, reusing the pipeline's profile.  For {!Strategy.impact}
    and {!Strategy.natural} the pipeline's stored maps are returned
    (physically shared, so memoization keyed on identity still works). *)
