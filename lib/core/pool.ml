(* Fixed-size domain pool with a chunked task queue and
   exception-carrying futures.

   Design constraints, in order:

   - Determinism.  [map] returns results in input order and, when tasks
     raise, re-raises the exception of the LOWEST-INDEX failing task
     (with its original payload and backtrace).  Which domain ran which
     task never leaks into observable behavior, so a parallel run is
     bit-identical to the serial one for any task function whose outputs
     depend only on its input.
   - No work stealing.  Tasks are claimed from a shared per-job cursor
     ([Atomic.fetch_and_add] over chunks of consecutive indices), which
     keeps the queue a single integer and makes claiming wait-free; the
     only mutex guards job registration and completion counting.
   - Nested submission cannot deadlock.  The submitter of a job is also
     a worker for it: [map] claims chunks itself until the cursor is
     exhausted and only then blocks on the job's completion.  A pool
     worker that calls [map] mid-task therefore executes the inner job's
     tasks on its own domain (with idle workers helping), so a chain of
     nested maps always bottoms out in a running task and progress is
     guaranteed at every nesting depth.
   - A pool of [lanes <= 1] never spawns a domain and [map] degrades to
     [List.map]: `-j 1` is the serial path, byte for byte.

   The process-wide default pool ([set_default]/[default]) is how the
   CLI's `-j N` reaches the three parallel grains (benchmarks within a
   table, configurations within a sweep, fuzzer seeds) without threading
   a pool through every experiment signature.  It is written once at
   startup, before any parallel section, and cleared after. *)

type job = {
  run : int -> unit;  (* execute task [i]; must not raise (see [map]) *)
  total : int;
  chunk : int;  (* consecutive indices claimed per cursor bump *)
  next : int Atomic.t;  (* claim cursor; >= total = nothing left *)
  mutable completed : int;  (* tasks finished, under the pool mutex *)
}

type t = {
  lanes : int;  (* worker domains + the submitting caller *)
  mutex : Mutex.t;
  work : Condition.t;  (* a job was submitted, or shutdown *)
  finished : Condition.t;  (* some job's [completed] reached [total] *)
  mutable jobs : job list;  (* jobs that may still hold unclaimed tasks *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let lanes t = t.lanes

(* Claim and run chunks of [j] until its cursor is exhausted.  Called by
   workers and by the submitter alike. *)
let run_chunks t j =
  let rec go () =
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo < j.total then begin
      let hi = min (lo + j.chunk) j.total in
      for i = lo to hi - 1 do
        j.run i
      done;
      Mutex.lock t.mutex;
      j.completed <- j.completed + (hi - lo);
      if j.completed = j.total then begin
        t.jobs <- List.filter (fun j' -> j' != j) t.jobs;
        Condition.broadcast t.finished
      end;
      Mutex.unlock t.mutex;
      go ()
    end
  in
  go ()

let rec worker t =
  Mutex.lock t.mutex;
  let rec await () =
    if t.stopping then None
    else
      match
        List.find_opt (fun j -> Atomic.get j.next < j.total) t.jobs
      with
      | Some j -> Some j
      | None ->
        Condition.wait t.work t.mutex;
        await ()
  in
  let found = await () in
  Mutex.unlock t.mutex;
  match found with
  | None -> ()
  | Some j ->
    run_chunks t j;
    worker t

let create lanes =
  if lanes < 1 then invalid_arg "Pool.create: lanes must be >= 1";
  let t =
    {
      lanes;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      jobs = [];
      stopping = false;
      workers = [];
    }
  in
  if lanes > 1 then
    t.workers <- List.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.lanes <= 1 -> List.map f xs
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    (* Each slot is written by exactly one task and read only after the
       mutex-synchronized completion count reaches [n], which publishes
       every write to the submitter (happens-before via the mutex). *)
    let slots = Array.make n None in
    let run i =
      slots.(i) <-
        Some
          (match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    (* A few chunks per lane: large enough to keep cursor contention
       negligible, small enough to balance uneven task costs. *)
    let chunk = max 1 (n / (t.lanes * 4)) in
    let j = { run; total = n; chunk; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.mutex;
    t.jobs <- t.jobs @ [ j ];
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    run_chunks t j;
    Mutex.lock t.mutex;
    while j.completed < j.total do
      Condition.wait t.finished t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Deterministic failure: the lowest-index failing task wins, with
       its original exception payload and backtrace. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      slots;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error _) | None -> assert false)
         slots)

(* ------------------------------------------------------------------ *)
(* Process-wide default pool (`-j N`)                                  *)
(* ------------------------------------------------------------------ *)

let default_pool : t option ref = ref None

let set_default p = default_pool := p
let default () = !default_pool

let default_lanes () =
  match !default_pool with None -> 1 | Some t -> t.lanes
