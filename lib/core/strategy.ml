(* First-class layout strategies.

   A strategy packages the two halves of a code-placement algorithm —
   per-function block ordering and global function ordering — behind one
   record, so pipelines, experiments and the CLI can treat "which layout
   algorithm" as data.  Adding an algorithm means adding one entry to
   [all]; every consumer (the strategy-comparison experiment, the
   [--layout] flag, `impact list`) picks it up from the registry.

   The two new strategies deliberately vary one axis each against the
   paper's placement: [exttsp] swaps the function-body layout (ext-TSP
   block reordering) while keeping the paper's global call-graph DFS,
   and [c3] swaps the global ordering (call-chain clustering) while
   keeping the paper's trace-based function bodies. *)

open Ir

type t = {
  id : string; (* stable CLI/registry name *)
  title : string;
  layout : Prog.func -> Weight.cfg_weights -> Func_layout.t;
  global : int -> entry:int -> Weight.call_weights -> Global_layout.t;
  entry_first : bool;
      (* the strategy guarantees the program entry function leads the
         layout (the natural definition order does not) *)
  splits_dead_code : bool;
      (* never-executed blocks/functions are placed after the packed
         effective region *)
}

let impact =
  {
    id = "impact";
    title = "IMPACT trace-based placement (this paper)";
    layout =
      (fun f w -> Func_layout.layout f w (Trace_select.select f w));
    global = Global_layout.layout;
    entry_first = true;
    splits_dead_code = true;
  }

let natural =
  {
    id = "natural";
    title = "natural (definition) order";
    layout = (fun f _ -> Func_layout.natural f);
    global = (fun nfuncs ~entry:_ _ -> Global_layout.natural nfuncs);
    entry_first = false;
    splits_dead_code = false;
  }

let ph =
  {
    id = "ph";
    title = "Pettis-Hansen code positioning (PLDI 1990)";
    layout = Ph_layout.layout;
    global = Ph_layout.global;
    (* "Closest is best" emits the entry's *group* first, but group
       concatenation can place merged callers ahead of the entry
       function itself, so entry-first is not guaranteed. *)
    entry_first = false;
    splits_dead_code = true;
  }

let exttsp =
  {
    id = "exttsp";
    title = "ext-TSP block reordering (Newell-Pupyrev) + DFS global order";
    layout = Exttsp.layout;
    global = Global_layout.layout;
    entry_first = true;
    splits_dead_code = true;
  }

let c3 =
  {
    id = "c3";
    title = "call-chain clustering (C3) global order + trace-based bodies";
    layout =
      (fun f w -> Func_layout.layout f w (Trace_select.select f w));
    global = C3_layout.global;
    entry_first = true;
    splits_dead_code = true;
  }

let all = [ impact; natural; ph; exttsp; c3 ]

exception Unknown_strategy of string

let find id =
  match List.find_opt (fun s -> s.id = id) all with
  | Some s -> s
  | None -> raise (Unknown_strategy id)

let ids () = List.map (fun s -> s.id) all
