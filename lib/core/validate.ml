(* Cross-layer invariant verifier for the placement pipeline.

   Every layout the pipeline emits must be a semantics-preserving
   permutation of the program; this module checks that property — and
   the invariants of every stage leading up to it — and reports each
   violation as a structured [Ir.Diag.t] instead of trusting the stages
   blindly.  The checks, per stage:

   - profile flow conservation: a completed profile satisfies
       weight(b) = entries + sum(in-arcs)   (entries only for block 0)
       weight(b) = sum(out-arcs)            (unless b ends in Ret)
     because the interpreter records exactly one outgoing arc per block
     execution (call-block arcs are recorded when the callee returns);
   - trace selection: the traces partition the function's blocks and the
     entry block is covered;
   - function layout: each layout is a permutation of the function's
     blocks with a well-formed active prefix;
   - global layout: a permutation of the function ids;
   - address map: block sizes preserved, every range 4-byte aligned and
     inside the code segment, ranges pairwise disjoint, total size equal
     to the program's byte size (together: a bijective permutation of
     the code bytes), and the strategy's metadata claims honored —
     [entry_first] puts the entry block at [code_base], and
     [splits_dead_code] puts never-executed blocks at or beyond the
     effective-region boundary and executed blocks inside it.

   [Cheap] covers the structural and address-map invariants (linear in
   program size, run by default before table runs); [Full] adds profile
   flow conservation over both recorded profiles.  The simulation
   cross-check (dynamic instruction count is layout-invariant across
   strategies) needs the sim layer and lives in
   [Experiments.Validation]. *)

open Ir

type level = Cheap | Full

(* ------------------------------------------------------------------ *)
(* Profile flow conservation                                           *)
(* ------------------------------------------------------------------ *)

let flow (p : Vm.Profile.t) : Diag.t list =
  let acc = ref [] in
  let prog = p.Vm.Profile.prog in
  Array.iteri
    (fun fid (f : Prog.func) ->
      let report ?block fmt =
        Fmt.kstr
          (fun message ->
            acc :=
              Diag.make ~stage:Diag.Profile ~func:f.Prog.name ?block "%s"
                message
              :: !acc)
          fmt
      in
      let incoming = Vm.Profile.in_arcs p fid in
      let entries = Vm.Profile.func_weight p fid in
      Array.iteri
        (fun l (b : Cfg.block) ->
          let w = Vm.Profile.block_weight p fid l in
          let inflow =
            List.fold_left (fun s (_, c) -> s + c) 0 incoming.(l)
            + if l = 0 then entries else 0
          in
          if inflow <> w then
            report ~block:l
              "flow not conserved: weight %d but inflow %d (%d entries + \
               in-arcs)"
              w inflow
              (if l = 0 then entries else 0);
          let outflow =
            List.fold_left
              (fun s (_, c) -> s + c)
              0
              (Vm.Profile.out_arcs p fid l)
          in
          match b.Cfg.term with
          | Cfg.Ret _ ->
            if outflow <> 0 then
              report ~block:l "return block has outgoing arcs (weight %d)"
                outflow
          | _ ->
            if outflow <> w then
              report ~block:l
                "flow not conserved: weight %d but outflow %d" w outflow)
        f.Prog.blocks)
    prog.Prog.funcs;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Trace selection                                                     *)
(* ------------------------------------------------------------------ *)

let selection ~func (f : Prog.func) (sel : Trace_select.t) : Diag.t list =
  let n = Array.length f.blocks in
  let acc = ref [] in
  let report fmt =
    Fmt.kstr
      (fun message ->
        acc :=
          Diag.make ~stage:Diag.Trace_selection ~func "%s" message :: !acc)
      fmt
  in
  if not (Trace_select.is_partition sel n) then
    report "traces do not partition the %d blocks" n;
  Array.iteri
    (fun id trace ->
      if Array.length trace = 0 then report "trace %d is empty" id)
    sel.Trace_select.traces;
  if n > 0 && Array.length sel.Trace_select.trace_of > 0 then begin
    let entry_trace = sel.Trace_select.trace_of.(0) in
    if entry_trace < 0 || entry_trace >= Array.length sel.Trace_select.traces
    then report "entry block not covered by any trace"
  end;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Address map                                                         *)
(* ------------------------------------------------------------------ *)

let map ?(strategy : Strategy.t option) ~(program : Prog.program)
    ~(weights : int -> Weight.cfg_weights) (m : Address_map.t) :
    Diag.t list =
  let acc = ref [] in
  let sid = Option.map (fun s -> s.Strategy.id) strategy in
  let report ?func ?block fmt =
    Fmt.kstr
      (fun message ->
        acc :=
          Diag.make ~stage:Diag.Address_map ?func ?block ?strategy:sid "%s"
            message
          :: !acc)
      fmt
  in
  let nfuncs = Array.length program.Prog.funcs in
  if
    Array.length m.Address_map.block_addr <> nfuncs
    || Array.length m.Address_map.block_words <> nfuncs
  then begin
    report "map covers %d functions but the program has %d"
      (Array.length m.Address_map.block_addr)
      nfuncs;
    List.rev !acc
  end
  else begin
    let base = Address_map.code_base in
    let limit = base + m.Address_map.total_bytes in
    (* Collect every block range while checking the per-block invariants. *)
    let ranges = ref [] in
    Array.iteri
      (fun fid (f : Prog.func) ->
        let func = f.Prog.name in
        let addrs = m.Address_map.block_addr.(fid) in
        let words = m.Address_map.block_words.(fid) in
        if Array.length addrs <> Array.length f.blocks then
          report ~func "map has %d blocks but the function has %d"
            (Array.length addrs) (Array.length f.blocks)
        else
          Array.iteri
            (fun l b ->
              let addr = addrs.(l) in
              let w = words.(l) in
              if w <> Cfg.instr_count b then
                report ~func ~block:l
                  "size not preserved: map says %d words, block has %d" w
                  (Cfg.instr_count b);
              if addr mod Insn.bytes_per_insn <> 0 then
                report ~func ~block:l "unaligned address %d" addr;
              let bytes = w * Insn.bytes_per_insn in
              if addr < base || addr + bytes > limit then
                report ~func ~block:l
                  "range [%d,%d) outside code segment [%d,%d)" addr
                  (addr + bytes) base limit;
              ranges := (addr, addr + bytes, fid, l) :: !ranges)
            f.blocks)
      program.Prog.funcs;
    (* Size preservation: the map spans exactly the program's code bytes;
       with disjointness below this makes the layout a bijective
       permutation of the code space. *)
    let program_bytes = Prog.total_byte_size program in
    if m.Address_map.total_bytes <> program_bytes then
      report "total %d bytes but the program has %d bytes"
        m.Address_map.total_bytes program_bytes;
    if
      m.Address_map.effective_bytes < 0
      || m.Address_map.effective_bytes > m.Address_map.total_bytes
    then
      report "effective region %d outside [0,%d]"
        m.Address_map.effective_bytes m.Address_map.total_bytes;
    (* Overlaps: sort by start address and compare neighbours. *)
    let sorted =
      List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !ranges
    in
    let rec overlaps = function
      | (_s1, e1, f1, l1) :: ((s2, _, f2, l2) :: _ as rest) ->
        if e1 > s2 then
          report
            ~func:program.Prog.funcs.(f2).Prog.name
            ~block:l2 "range [%d,..) overlaps block %s.b%d ending at %d" s2
            program.Prog.funcs.(f1).Prog.name l1 e1;
        overlaps rest
      | [ _ ] | [] -> ()
    in
    overlaps sorted;
    (* Per-strategy metadata claims. *)
    (match strategy with
    | Some s when s.Strategy.entry_first ->
      let entry_addr =
        m.Address_map.block_addr.(program.Prog.entry).(0)
      in
      if entry_addr <> base then
        report
          ~func:program.Prog.funcs.(program.Prog.entry).Prog.name
          ~block:0 "strategy claims entry-first but entry block is at %d"
          entry_addr
    | _ -> ());
    (match strategy with
    | Some s when s.Strategy.splits_dead_code ->
      let boundary = base + m.Address_map.effective_bytes in
      Array.iteri
        (fun fid (f : Prog.func) ->
          let w = weights fid in
          Array.iteri
            (fun l _ ->
              let dead =
                w.Weight.func_weight = 0 || w.Weight.block l = 0
              in
              let addr = m.Address_map.block_addr.(fid).(l) in
              if dead && addr < boundary then
                report ~func:f.Prog.name ~block:l
                  "never-executed block at %d inside the effective region \
                   (< %d)"
                  addr boundary
              else if (not dead) && addr >= boundary then
                report ~func:f.Prog.name ~block:l
                  "executed block at %d outside the effective region (>= %d)"
                  addr boundary)
            f.blocks)
        program.Prog.funcs
    | _ -> ());
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* Whole pipeline                                                      *)
(* ------------------------------------------------------------------ *)

let pipeline ?(level = Cheap) (t : Pipeline.t) : Diag.t list =
  let program = t.Pipeline.program in
  let weights fid = Weight.cfg_of_profile t.Pipeline.profile fid in
  let structural =
    Check.diags program @ Check.diags t.Pipeline.original
  in
  let selections =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun fid sel ->
              selection ~func:program.Prog.funcs.(fid).Prog.name
                program.Prog.funcs.(fid) sel)
            t.Pipeline.selections))
  in
  let layouts =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun fid lay ->
              let f = program.Prog.funcs.(fid) in
              if
                Func_layout.is_permutation lay (Array.length f.Prog.blocks)
              then []
              else
                [
                  Diag.make ~stage:Diag.Layout ~func:f.Prog.name
                    "layout is not a permutation of the %d blocks"
                    (Array.length f.Prog.blocks);
                ])
            t.Pipeline.layouts))
  in
  let global =
    if
      Global_layout.is_permutation t.Pipeline.global
        (Array.length program.Prog.funcs)
    then []
    else
      [
        Diag.make ~stage:Diag.Layout
          "global order is not a permutation of the %d functions"
          (Array.length program.Prog.funcs);
      ]
  in
  let maps =
    map ~strategy:Strategy.impact ~program ~weights t.Pipeline.optimized
    @ map ~strategy:Strategy.natural ~program ~weights t.Pipeline.natural
  in
  let profiles =
    match level with
    | Cheap -> []
    | Full -> flow t.Pipeline.profile @ flow t.Pipeline.original_profile
  in
  structural @ profiles @ selections @ layouts @ global @ maps
