(** Cross-layer invariant verifier: checks that every layout the
    pipeline emits is a semantics-preserving permutation of the program,
    reporting violations as structured {!Ir.Diag.t} values.

    [Cheap] covers structural, trace-selection, layout-permutation and
    address-map invariants; [Full] adds profile flow conservation.  The
    simulation cross-check lives in [Experiments.Validation] (it needs
    the sim layer). *)

open Ir

type level = Cheap | Full

val flow : Vm.Profile.t -> Diag.t list
(** Flow conservation of a completed profile: for every block,
    [weight = entries + sum(in-arcs)] (entries only at block 0) and
    [weight = sum(out-arcs)] unless the block returns. *)

val selection : func:string -> Prog.func -> Trace_select.t -> Diag.t list
(** Traces partition the blocks; entry block covered; no empty trace. *)

val map :
  ?strategy:Strategy.t ->
  program:Prog.program ->
  weights:(int -> Weight.cfg_weights) ->
  Address_map.t ->
  Diag.t list
(** Address-map invariants: sizes preserved, aligned in-segment ranges,
    pairwise disjoint, total equal to the program byte size (a bijective
    permutation of the code bytes), plus the strategy's [entry_first]
    and [splits_dead_code] claims when a strategy is given. *)

val pipeline : ?level:level -> Pipeline.t -> Diag.t list
(** Validate every stage artifact of a completed pipeline run. *)
