(* Function body layout — the paper's appendix [Algorithm
   FunctionBodyLayout] plus step 4's rule that never-executed traces move
   to the bottom of the function.

   Starting from the trace containing the function entrance, the placement
   repeatedly follows the strongest terminal-to-terminal connection: the
   heaviest arc from the tail block of the current trace to the head block
   of a not-yet-placed nonzero trace.  When no such connection exists, it
   restarts from the most important unplaced nonzero trace.  Zero-weight
   traces are appended afterwards, forming the function's non-executed
   region. *)

open Ir

type t = {
  order : Cfg.label array; (* all blocks, layout order *)
  active_blocks : int; (* prefix length of [order] that is effective *)
  active_bytes : int; (* byte size of the effective region *)
  total_bytes : int;
}

(* Telemetry: blocks placed outside the packed effective region, across
   every layout algorithm that sinks dead code. *)
let dead_blocks_sunk =
  Obs.Metrics.counter "layout.dead_blocks_sunk"
    ~help:"never-executed blocks placed after the effective region"

(* Never-executed function: original order, empty effective region. *)
let layout_unexecuted (f : Prog.func) : t =
  let n = Array.length f.blocks in
  Obs.Metrics.incr ~by:n dead_blocks_sunk;
  {
    order = Array.init n (fun l -> l);
    active_blocks = 0;
    active_bytes = 0;
    total_bytes = Prog.func_byte_size f;
  }

let layout (f : Prog.func) (w : Weight.cfg_weights) (sel : Trace_select.t) : t
    =
  if w.func_weight = 0 then layout_unexecuted f
  else begin
  let ntraces = Array.length sel.traces in
  let weights =
    Array.map (fun trace -> Trace_select.trace_weight w trace) sel.traces
  in
  let visited = Array.make ntraces false in
  let placed = ref [] in
  (* Heaviest arc from the tail of [trace] to the head of an unvisited
     nonzero trace (terminal-to-terminal connection only). *)
  let best_connection trace =
    let tail = Trace_select.tail trace in
    List.fold_left
      (fun best (dst, c) ->
        let id = sel.trace_of.(dst) in
        if
          c > 0 && (not visited.(id))
          && weights.(id) > 0
          && Trace_select.head sel.traces.(id) = dst
        then
          match best with
          | Some (_, bc) when bc >= c -> best
          | _ -> Some (id, c)
        else best)
      None (w.arcs_out tail)
  in
  let most_important () =
    let best = ref None in
    Array.iteri
      (fun id wt ->
        if (not visited.(id)) && wt > 0 then
          match !best with
          | Some (_, bw) when bw >= wt -> ()
          | _ -> best := Some (id, wt))
      weights;
    !best
  in
  let entry_trace = sel.trace_of.(0) in
  (* The entry trace starts the placement even if the profile somehow
     recorded no entry weight. *)
  let current = ref (Some entry_trace) in
  while !current <> None do
    (match !current with
    | Some id ->
      visited.(id) <- true;
      placed := id :: !placed;
      current :=
        (match best_connection sel.traces.(id) with
        | Some (next, _) -> Some next
        | None -> (
          match most_important () with
          | Some (next, _) -> Some next
          | None -> None))
    | None -> ());
    ()
  done;
  let active_trace_order = List.rev !placed in
  (* Never-executed traces go to the bottom, in trace-id order. *)
  let inactive =
    List.filter
      (fun id -> not visited.(id))
      (List.init ntraces (fun id -> id))
  in
  let order_of ids =
    List.concat_map (fun id -> Array.to_list sel.traces.(id)) ids
  in
  let active_labels = order_of active_trace_order in
  let inactive_labels = order_of inactive in
  Obs.Metrics.incr ~by:(List.length inactive_labels) dead_blocks_sunk;
  let order = Array.of_list (active_labels @ inactive_labels) in
  let bytes labels =
    List.fold_left (fun acc l -> acc + Cfg.byte_size f.blocks.(l)) 0 labels
  in
  {
    order;
    active_blocks = List.length active_labels;
    active_bytes = bytes active_labels;
    total_bytes = bytes active_labels + bytes inactive_labels;
  }
  end

(* Identity layout: original block order, everything treated as active.
   This is the unoptimized baseline. *)
let natural (f : Prog.func) : t =
  let n = Array.length f.blocks in
  let total = Prog.func_byte_size f in
  {
    order = Array.init n (fun l -> l);
    active_blocks = n;
    active_bytes = total;
    total_bytes = total;
  }

let is_permutation t nblocks =
  Array.length t.order = nblocks
  && begin
       let seen = Array.make nblocks false in
       Array.iter (fun l -> seen.(l) <- true) t.order;
       Array.for_all (fun b -> b) seen
     end
