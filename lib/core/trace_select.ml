(* Trace selection — the appendix "Algorithm TraceSelection" of the paper,
   with MIN_PROB = 0.7.

   Basic blocks that tend to execute in sequence are grouped into traces;
   traces are the units of instruction placement.  A trace grows from a
   seed (the heaviest unselected block) forward through best successors
   and backward through best predecessors; an arc qualifies only when it
   is the dominant arc of both endpoints (its weight is at least MIN_PROB
   of the weight of both the source and the destination block). *)

open Ir

let default_min_prob = 0.7

type t = {
  trace_of : int array; (* block label -> trace id *)
  traces : Cfg.label array array; (* trace id -> blocks in control order *)
}

let entry_label : Cfg.label = 0

(* Telemetry: total traces formed, across every function and caller
   (the pipeline, the impact/c3 strategies, experiments). *)
let traces_selected =
  Obs.Metrics.counter "layout.traces_selected"
    ~help:"traces formed by Algorithm TraceSelection"

let select ?(min_prob = default_min_prob) (f : Prog.func)
    (w : Weight.cfg_weights) : t =
  let n = Array.length f.blocks in
  let trace_of = Array.make n (-1) in
  if w.func_weight = 0 then begin
    (* Non-executed function: every basic block forms its own trace. *)
    let traces = Array.init n (fun l -> [| l |]) in
    Array.iteri (fun l _ -> trace_of.(l) <- l) trace_of;
    Obs.Metrics.incr ~by:n traces_selected;
    { trace_of; traces }
  end
  else begin
    let selected l = trace_of.(l) >= 0 in
    (* Deterministic "arc with the highest execution count": ties broken
       toward the lower label. *)
    let heaviest arcs =
      List.fold_left
        (fun best (l, c) ->
          match best with
          | None -> Some (l, c)
          | Some (bl, bc) ->
            if c > bc || (c = bc && l < bl) then Some (l, c) else best)
        None arcs
    in
    let ratio_ok num den =
      den > 0 && float_of_int num >= min_prob *. float_of_int den
    in
    let best_successor bb =
      match heaviest (w.arcs_out bb) with
      | None -> None
      | Some (dst, c) ->
        if c = 0 then None
        else if not (ratio_ok c (w.block bb)) then None
        else if not (ratio_ok c (w.block dst)) then None
        else if selected dst then None
        else Some dst
    in
    let best_predecessor bb =
      match heaviest (w.arcs_in bb) with
      | None -> None
      | Some (src, c) ->
        if c = 0 then None
        else if not (ratio_ok c (w.block bb)) then None
        else if not (ratio_ok c (w.block src)) then None
        else if selected src then None
        else Some src
    in
    (* Seeds in decreasing weight order (ties toward the lower label). *)
    let seeds = Array.init n (fun l -> l) in
    Array.sort
      (fun a b ->
        match compare (w.block b) (w.block a) with
        | 0 -> compare a b
        | c -> c)
      seeds;
    let traces = ref [] in
    let ntraces = ref 0 in
    Array.iter
      (fun seed ->
        if not (selected seed) then begin
          let id = !ntraces in
          incr ntraces;
          trace_of.(seed) <- id;
          (* Grow the trace forward. *)
          let forward = ref [] in
          let current = ref seed in
          let continue = ref true in
          while !continue do
            match best_successor !current with
            | Some dst when dst <> entry_label ->
              trace_of.(dst) <- id;
              forward := dst :: !forward;
              current := dst
            | Some _ | None -> continue := false
          done;
          (* Grow the trace backward. *)
          let backward = ref [] in
          let current = ref seed in
          let continue = ref true in
          while !continue do
            if !current = entry_label then continue := false
            else
              match best_predecessor !current with
              | Some src ->
                trace_of.(src) <- id;
                backward := src :: !backward;
                current := src
              | None -> continue := false
          done;
          let blocks =
            !backward @ (seed :: List.rev !forward)
          in
          traces := Array.of_list blocks :: !traces
        end)
      seeds;
    Obs.Metrics.incr ~by:!ntraces traces_selected;
    { trace_of; traces = Array.of_list (List.rev !traces) }
  end

let head trace = trace.(0)
let tail trace = trace.(Array.length trace - 1)

let trace_weight (w : Weight.cfg_weights) trace =
  Array.fold_left (fun acc l -> acc + w.block l) 0 trace

(* Every block belongs to exactly one trace. *)
let is_partition t nblocks =
  Array.length t.trace_of = nblocks
  && Array.for_all (fun id -> id >= 0) t.trace_of
  && begin
       let seen = Array.make nblocks 0 in
       Array.iter (Array.iter (fun l -> seen.(l) <- seen.(l) + 1)) t.traces;
       Array.for_all (fun c -> c = 1) seen
     end

(* Mean number of basic blocks per trace — the Table 4 [trace length]
   column.  Computed over traces with nonzero weight, matching the paper's
   focus on executed code. *)
let mean_length ?(w : Weight.cfg_weights option) t =
  let counted =
    match w with
    | None -> Array.to_list t.traces
    | Some w ->
      List.filter
        (fun trace -> trace_weight w trace > 0)
        (Array.to_list t.traces)
  in
  match counted with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left (fun acc trace -> acc + Array.length trace) 0 counted
    in
    float_of_int total /. float_of_int (List.length counted)
