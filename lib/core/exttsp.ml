(* Extended-TSP basic-block reordering (Newell & Pupyrev, "Improved
   Basic Block Reordering", 2020) as a drop-in function-body layout
   strategy.

   The classic TSP formulation of block placement maximizes the total
   weight of fall-through branches.  Ext-TSP extends the objective with
   partial credit for short jumps, reflecting that near branches still
   hit the same or an adjacent cache line:

     score(arc s->t, weight w) =
       w                              if t starts where s ends (fall-through)
       0.1 * w * (1 - d / 1024)      if t is a forward jump d < 1024 bytes away
       0.1 * w * (1 - d / 640)       if t is a backward jump d < 640 bytes away
       0                              otherwise

   with d the byte gap between the end of s and the start of t.

   The optimizer is the paper's greedy chain merger: every block starts
   as a singleton chain; repeatedly apply the merge with the highest
   score gain until no merge improves the objective.  Besides plain
   concatenation X.Y, a merge may split the first chain at any point
   into X1,X2 and interleave the second — the paper's three splitting
   moves X1.Y.X2, Y.X2.X1 and X2.X1.Y — which lets a previously merged
   chain be broken when a better neighbour appears.  Chains longer than
   [split_threshold] are only concatenated, bounding the search.

   The function entry block must stay first, so any merge that would
   displace it from the head of its chain is rejected.  Never-executed
   blocks keep singleton zero-weight chains and sink to the bottom,
   forming the non-executed region exactly like the IMPACT and
   Pettis-Hansen layouts, so the three are directly comparable. *)

open Ir

let fallthrough_gain = 1.0
let jump_gain = 0.1
let forward_distance = 1024.
let backward_distance = 640.
let split_threshold = 64
let epsilon = 1e-9

type chain = {
  cid : int; (* stable id for deterministic tie-breaking *)
  mutable blocks : Cfg.label array; (* layout order, head first *)
  mutable weight : int; (* total block weight *)
  mutable bytes : int;
}

let layout (f : Prog.func) (w : Weight.cfg_weights) : Func_layout.t =
  let n = Array.length f.blocks in
  if w.func_weight = 0 then Func_layout.layout_unexecuted f
  else begin
    let size = Array.init n (fun l -> Cfg.byte_size f.blocks.(l)) in
    (* Outgoing weighted arcs per block (self-arcs score 0 — a block
       cannot fall through to itself). *)
    let arcs_out =
      Array.init n (fun src ->
        List.filter (fun (dst, c) -> c > 0 && dst <> src) (w.arcs_out src))
    in
    let executed l = w.block l > 0 || l = 0 in
    let chain_of =
      Array.init n (fun l ->
        { cid = l; blocks = [| l |]; weight = w.block l; bytes = size.(l) })
    in
    (* Ext-TSP score of one candidate block sequence, counting only arcs
       internal to the sequence.  [addr_of] is scratch (-1 = absent). *)
    let addr_of = Array.make n (-1) in
    let score_seq (seq : Cfg.label array) =
      let cursor = ref 0 in
      Array.iter
        (fun l ->
          addr_of.(l) <- !cursor;
          cursor := !cursor + size.(l))
        seq;
      let total = ref 0.0 in
      Array.iter
        (fun src ->
          let src_end = addr_of.(src) + size.(src) in
          List.iter
            (fun (dst, c) ->
              let d_addr = addr_of.(dst) in
              if d_addr >= 0 then
                let wf = float_of_int c in
                if d_addr = src_end then total := !total +. (fallthrough_gain *. wf)
                else if d_addr > src_end then begin
                  let d = float_of_int (d_addr - src_end) in
                  if d < forward_distance then
                    total := !total +. (jump_gain *. wf *. (1. -. (d /. forward_distance)))
                end
                else begin
                  let d = float_of_int (src_end - d_addr) in
                  if d < backward_distance then
                    total := !total +. (jump_gain *. wf *. (1. -. (d /. backward_distance)))
                end)
            arcs_out.(src))
        seq;
      Array.iter (fun l -> addr_of.(l) <- -1) seq;
      !total
    in
    let chain_score = Hashtbl.create 16 in
    let score_of c =
      match Hashtbl.find_opt chain_score c.cid with
      | Some s -> s
      | None ->
        let s = score_seq c.blocks in
        Hashtbl.add chain_score c.cid s;
        s
    in
    (* Candidate merged sequences for chains [x] and [y]: plain
       concatenation always; the three splitting moves when [x] is short
       enough.  Any arrangement that buries the entry block is dropped. *)
    let keeps_entry_first (seq : Cfg.label array) =
      let has_entry = Array.exists (fun l -> l = 0) seq in
      (not has_entry) || seq.(0) = 0
    in
    let arrangements x y =
      let xb = x.blocks and yb = y.blocks in
      let cat parts = Array.concat parts in
      let base = [ cat [ xb; yb ] ] in
      let split =
        if Array.length xb > split_threshold then []
        else begin
          let acc = ref [] in
          for i = Array.length xb - 1 downto 1 do
            let x1 = Array.sub xb 0 i in
            let x2 = Array.sub xb i (Array.length xb - i) in
            acc :=
              cat [ x1; yb; x2 ] :: cat [ yb; x2; x1 ] :: cat [ x2; x1; yb ]
              :: !acc
          done;
          !acc
        end
      in
      List.filter keeps_entry_first (base @ split)
    in
    (* Chain pairs connected by at least one arc, keyed on cids. *)
    let pair_tbl = Hashtbl.create 64 in
    let connect a b =
      if a.cid <> b.cid then begin
        let key = (min a.cid b.cid, max a.cid b.cid) in
        if not (Hashtbl.mem pair_tbl key) then Hashtbl.add pair_tbl key ()
      end
    in
    Array.iteri
      (fun src arcs ->
        List.iter
          (fun (dst, _) ->
            if executed src && executed dst then
              connect chain_of.(src) chain_of.(dst))
          arcs)
      arcs_out;
    (* Gain of the best arrangement for a connected pair, cached until
       one of the chains changes. *)
    let gain_cache = Hashtbl.create 64 in
    let best_merge (a, b) =
      match Hashtbl.find_opt gain_cache (a, b) with
      | Some best -> best
      | None ->
        let ca = chain_of.(a) and cb = chain_of.(b) in
        let self = score_of ca +. score_of cb in
        let best =
          List.fold_left
            (fun best seq ->
              let gain = score_seq seq -. self in
              match best with
              | Some (bg, _) when bg >= gain -> best
              | _ when gain > epsilon -> Some (gain, seq)
              | _ -> best)
            None
            (arrangements ca cb @ arrangements cb ca)
        in
        Hashtbl.add gain_cache (a, b) best;
        best
    in
    let merged = ref true in
    while !merged do
      merged := false;
      let best = ref None in
      Hashtbl.iter
        (fun (a, b) () ->
          if chain_of.(a).cid = a && chain_of.(b).cid = b then
            match best_merge (a, b) with
            | None -> ()
            | Some (gain, seq) -> (
              match !best with
              | Some (bg, _, _) when bg > gain +. epsilon -> ()
              | Some (bg, bk, _)
                when bg >= gain -. epsilon && compare bk (a, b) <= 0 -> ()
              | _ -> best := Some (gain, (a, b), seq)))
        pair_tbl;
      match !best with
      | None -> ()
      | Some (_, (a, b), seq) ->
        Obs.Metrics.incr Ph_layout.chains_merged;
        let ca = chain_of.(a) and cb = chain_of.(b) in
        (* Keep [ca] as the surviving chain; retire [cb]. *)
        ca.blocks <- seq;
        ca.weight <- ca.weight + cb.weight;
        ca.bytes <- ca.bytes + cb.bytes;
        Array.iter (fun l -> chain_of.(l) <- ca) cb.blocks;
        Hashtbl.remove chain_score a;
        Hashtbl.remove chain_score b;
        (* Re-key pairs that referenced [b] onto [a]; drop stale gains of
           every pair touching either merged chain. *)
        let stale = ref [] and rekeyed = ref [] in
        Hashtbl.iter
          (fun (x, y) () ->
            if x = a || y = a || x = b || y = b then begin
              stale := (x, y) :: !stale;
              let x' = if x = b then a else x and y' = if y = b then a else y in
              if x' <> y' then rekeyed := (min x' y', max x' y') :: !rekeyed
            end)
          pair_tbl;
        List.iter
          (fun key ->
            Hashtbl.remove pair_tbl key;
            Hashtbl.remove gain_cache key)
          !stale;
        List.iter
          (fun key ->
            if not (Hashtbl.mem pair_tbl key) then Hashtbl.add pair_tbl key ())
          !rekeyed;
        merged := true
    done;
    (* Emit: entry chain first, remaining executed chains by decreasing
       density (score credit per byte is what the objective rewards),
       never-executed blocks last in label order. *)
    let chains = ref [] in
    Array.iteri
      (fun l c ->
        if executed l && not (List.memq c !chains) then chains := c :: !chains)
      chain_of;
    let chains = List.rev !chains in
    let entry_chain = chain_of.(0) in
    let density c = float_of_int c.weight /. float_of_int (max 1 c.bytes) in
    let rest =
      List.sort
        (fun a b ->
          match compare (density b) (density a) with
          | 0 -> compare a.cid b.cid
          | c -> c)
        (List.filter (fun c -> c != entry_chain) chains)
    in
    let active_labels =
      List.concat_map (fun c -> Array.to_list c.blocks) (entry_chain :: rest)
    in
    let dead_labels =
      List.filter (fun l -> not (executed l)) (List.init n (fun l -> l))
    in
    Obs.Metrics.incr ~by:(List.length dead_labels)
      Func_layout.dead_blocks_sunk;
    let order = Array.of_list (active_labels @ dead_labels) in
    let bytes labels =
      List.fold_left (fun acc l -> acc + size.(l)) 0 labels
    in
    {
      Func_layout.order;
      active_blocks = List.length active_labels;
      active_bytes = bytes active_labels;
      total_bytes = Prog.func_byte_size f;
    }
  end
