(* E13: instruction paging (the paper's §5 first research direction).

   Replays each benchmark's trace through the page simulator under the
   natural and optimized layouts: pages touched (compulsory faults),
   bounded-memory LRU fault rate, and the mean Denning working set.
   Placement packs the effective regions of all functions together, so
   the optimized layout should touch fewer pages and keep a smaller
   working set. *)

type row = {
  name : string;
  nat_pages : int;
  opt_pages : int;
  nat_ws : float;
  opt_ws : float;
  nat_fault_rate : float;
  opt_fault_rate : float;
}

let config = Paging.Page_sim.default_config (* 512B pages, 16 frames *)

(* The page simulator as a block-source consumer: each executed block is
   one (addr, words) run pushed into [Page_sim.access_run] — the same
   sink contract the cache driver uses. *)
let run_one map (source : Sim.Driver.source) =
  let sim = Paging.Page_sim.create config in
  let addr_of = map.Placement.Address_map.block_addr
  and words_of = map.Placement.Address_map.block_words in
  source (fun fid label ->
      Paging.Page_sim.access_run sim ~addr:addr_of.(fid).(label)
        ~words:words_of.(fid).(label));
  sim

let compute ctx =
  Context.map_entries
    (fun e ->
      let source = Sim.Trace.source (Context.trace e) in
      let nat = run_one (Context.natural_map e) source in
      let opt = run_one (Context.optimized_map e) source in
      {
        name = Context.name e;
        nat_pages = Paging.Page_sim.distinct_pages nat;
        opt_pages = Paging.Page_sim.distinct_pages opt;
        nat_ws = Paging.Page_sim.mean_working_set nat;
        opt_ws = Paging.Page_sim.mean_working_set opt;
        nat_fault_rate = Paging.Page_sim.fault_rate nat;
        opt_fault_rate = Paging.Page_sim.fault_rate opt;
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.nat_pages;
          string_of_int r.opt_pages;
          Report.Fmtutil.f1 r.nat_ws;
          Report.Fmtutil.f1 r.opt_ws;
          Report.Fmtutil.pct ~digits:4 r.nat_fault_rate;
          Report.Fmtutil.pct ~digits:4 r.opt_fault_rate;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      (Printf.sprintf
         "Paging (sec 5 outlook): %dB pages, %d frames, working-set \
          window %d — natural vs optimized layout"
         config.Paging.Page_sim.page_bytes config.Paging.Page_sim.frames
         config.Paging.Page_sim.theta)
    ~header:
      [ "name"; "pages nat"; "pages opt"; "ws nat"; "ws opt";
        "fault nat"; "fault opt" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R ]
    rows
