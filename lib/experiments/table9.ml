(* E9 / Table 9: effect of code scaling — the 2KB/64B partial-loading
   experiment repeated with every basic block scaled to 0.5x, 0.7x, 1.0x
   and 1.1x of its size, simulating denser or sparser instruction
   encodings.  The placement is recomputed for each scaled program; the
   recorded block trace replays against the scaled address map. *)

let factors = Paper.table9_factors

let config =
  Icache.Config.make ~size:2048 ~block:64 ~fill:Icache.Config.Partial ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let trace = Context.trace e in
      {
        Sweep.name = Context.name e;
        cells =
          List.map
            (fun factor ->
              let map = Context.scaled_map e factor in
              let r = Context.simulate e config map trace in
              {
                Sweep.miss = r.Sim.Driver.miss_ratio;
                traffic = r.Sim.Driver.traffic_ratio;
              })
            factors;
      })
    ctx

let table ctx =
  Sweep.render
    ~title:
      "Table 9: effect of code scaling (2KB/64B, partial loading); cells \
       are measured (paper)"
    ~point_names:(List.map (fun f -> Printf.sprintf "x%.1f" f) factors)
    ~paper:Paper.table9 (compute ctx)
