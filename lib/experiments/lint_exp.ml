(* impact lint backend.

   Everything here rides on [Context]'s memoized artifacts: the
   pipeline (profile + inlined program) and the per-strategy address
   maps.  Nothing on this path records a trace or simulates a cache —
   that is the point of the linter, and the tests pin it by asserting
   no "simulate"/"trace-record" span appears during a lint run. *)

type result = {
  bench : string;
  strategy : Placement.Strategy.t;
  fell_back : bool;
  report : Analysis.Lint.report;
  estimate : Sim.Estimate.result;
      (** the paper-§5 heuristic for the same map, so one artifact holds
          all three predictors: heuristic estimate, certified bound, and
          (in E19) the simulated truth.  Profile arithmetic only — the
          no-simulation invariant of the lint path still holds. *)
}

(* Same geometry as the strategy-comparison experiment (E17), so the
   static conflict ranking can be read against its simulated miss
   ratios. *)
let default_config = Icache.Config.make ~size:2048 ~block:64 ()

let lint_entry ?(config = default_config) ?min_prob ?page_bytes e
    (s : Placement.Strategy.t) =
  let id = s.Placement.Strategy.id in
  let p = Context.pipeline e in
  let map = Context.strategy_map e s in
  let input =
    Analysis.Lint.of_pipeline ?min_prob ?page_bytes ~strategy:id p ~map
      ~config
  in
  let profile = p.Placement.Pipeline.profile in
  let estimate =
    Sim.Estimate.estimate config map
      ~block_weight:(Vm.Profile.block_weight profile)
      ~func_entries:(Vm.Profile.func_weight profile)
  in
  {
    bench = Context.name e;
    strategy = s;
    fell_back = Context.fell_back e id;
    report = Analysis.Lint.run input;
    estimate;
  }

(* The per-strategy lints are independent (each takes the entry lock
   only around its memoized lookups), so a multi-lane default pool lints
   strategies concurrently; order is the registry's either way. *)
let sweep ?config ?min_prob ?page_bytes e =
  let lint s = lint_entry ?config ?min_prob ?page_bytes e s in
  match Placement.Pool.default () with
  | Some pool when Placement.Pool.lanes pool > 1 ->
    Placement.Pool.map pool lint Placement.Strategy.all
  | _ -> List.map lint Placement.Strategy.all

(* Best first: smallest certified miss upper bound (the guarantee),
   then the heuristic tie-breakers — fewer static conflicts, fewer
   broken hot arcs.  A gated analysis certifies nothing, so its bound
   (every access a potential miss) naturally ranks last. *)
let rank results =
  List.stable_sort
    (fun a b ->
      match
        compare a.report.Analysis.Lint.certified.Analysis.Absint.hi
          b.report.Analysis.Lint.certified.Analysis.Absint.hi
      with
      | 0 -> (
        match
          compare a.report.Analysis.Lint.conflict_score
            b.report.Analysis.Lint.conflict_score
        with
        | 0 ->
          compare a.report.Analysis.Lint.hot_arc_broken
            b.report.Analysis.Lint.hot_arc_broken
        | c -> c)
      | c -> c)
    results

let broken_pct (r : Analysis.Lint.report) =
  if r.Analysis.Lint.hot_arc_total = 0 then 0.
  else
    float_of_int r.Analysis.Lint.hot_arc_broken
    /. float_of_int r.Analysis.Lint.hot_arc_total

let strategy_cell r =
  let id = r.strategy.Placement.Strategy.id in
  if r.fell_back then id ^ " (fallback: natural)" else id

let ranking_table bench results =
  let rows =
    List.mapi
      (fun i r ->
        let c = r.report.Analysis.Lint.certified in
        [
          string_of_int (i + 1);
          strategy_cell r;
          Printf.sprintf "[%d, %d]" c.Analysis.Absint.lo
            c.Analysis.Absint.hi;
          string_of_int r.estimate.Sim.Estimate.est_misses;
          Printf.sprintf "%.3f" r.report.Analysis.Lint.conflict_score;
          Report.Fmtutil.pct (broken_pct r.report);
          string_of_int
            (List.length (Analysis.Lint.errors r.report));
          string_of_int
            (List.length (Analysis.Lint.warnings r.report));
        ])
      (rank results)
  in
  Report.Table.make
    ~title:
      (Printf.sprintf
         "Static lint ranking for %s at %s: smallest certified miss \
          bound first, heuristic conflict score as tie-break (no \
          simulation)"
         bench
         (Icache.Config.describe default_config))
    ~header:
      [ "rank"; "strategy"; "certified misses"; "est misses"; "conflict";
        "hot arcs broken"; "errors"; "warnings" ]
    ~align:Report.Table.[ R; L; R; R; R; R; R; R ]
    rows

let summary r =
  let rep = r.report in
  let by_pass =
    String.concat "  "
      (List.map
         (fun (p, n) -> Printf.sprintf "%s=%d" p n)
         rep.Analysis.Lint.by_pass)
  in
  Printf.sprintf
    "%s/%s: %d finding(s) [%s]  certified misses [%d, %d]  conflict \
     score %.3f  hot arcs broken %d/%d (%s)"
    r.bench (strategy_cell r)
    (List.length rep.Analysis.Lint.findings)
    by_pass rep.Analysis.Lint.certified.Analysis.Absint.lo
    rep.Analysis.Lint.certified.Analysis.Absint.hi
    rep.Analysis.Lint.conflict_score rep.Analysis.Lint.hot_arc_broken
    rep.Analysis.Lint.hot_arc_total
    (Report.Fmtutil.pct (broken_pct rep))

(* ------------------------------------------------------------------ *)
(* JSON (schema impact.lint/v1)                                        *)
(* ------------------------------------------------------------------ *)

let finding_json (f : Analysis.Lint.finding) =
  let opt conv = function None -> Obs.Json.Null | Some v -> conv v in
  Obs.Json.Obj
    [
      ("pass", Obs.Json.String f.Analysis.Lint.pass);
      ( "severity",
        Obs.Json.String
          (Ir.Diag.severity_name f.Analysis.Lint.diag.Ir.Diag.severity) );
      ( "func",
        opt (fun s -> Obs.Json.String s) f.Analysis.Lint.diag.Ir.Diag.func );
      ( "block",
        opt (fun b -> Obs.Json.Int b) f.Analysis.Lint.diag.Ir.Diag.block );
      ("message", Obs.Json.String f.Analysis.Lint.diag.Ir.Diag.message);
      ("score", Obs.Json.Float f.Analysis.Lint.score);
    ]

let result_json r =
  let rep = r.report in
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("strategy", Obs.Json.String r.strategy.Placement.Strategy.id);
      ("fell_back", Obs.Json.Bool r.fell_back);
      ("conflict_score", Obs.Json.Float rep.Analysis.Lint.conflict_score);
      ( "hot_arcs",
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int rep.Analysis.Lint.hot_arc_total);
            ("broken", Obs.Json.Int rep.Analysis.Lint.hot_arc_broken);
          ] );
      ( "by_pass",
        Obs.Json.Obj
          (List.map
             (fun (p, n) -> (p, Obs.Json.Int n))
             rep.Analysis.Lint.by_pass) );
      ("certified", Absint_exp.interval_json rep.Analysis.Lint.certified);
      ( "absint",
        Obs.Json.Obj
          [
            ( "classes",
              Absint_exp.totals_json rep.Analysis.Lint.absint_totals );
            ( "gated",
              match rep.Analysis.Lint.absint_gated with
              | Some reason -> Obs.Json.String reason
              | None -> Obs.Json.Null );
          ] );
      ( "estimate",
        Obs.Json.Obj
          [
            ("compulsory", Obs.Json.Int r.estimate.Sim.Estimate.compulsory);
            ("conflict", Obs.Json.Int r.estimate.Sim.Estimate.conflict);
            ("est_misses", Obs.Json.Int r.estimate.Sim.Estimate.est_misses);
            ( "profile_fetches",
              Obs.Json.Int r.estimate.Sim.Estimate.profile_fetches );
            ( "est_miss_ratio",
              Obs.Json.Float r.estimate.Sim.Estimate.est_miss_ratio );
          ] );
      ( "findings",
        Obs.Json.List (List.map finding_json rep.Analysis.Lint.findings) );
    ]

let report_json ~results =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "impact.lint/v1");
      ("results", Obs.Json.List (List.map result_json results));
    ]
