(* impact lint backend.

   Everything here rides on [Context]'s memoized artifacts: the
   pipeline (profile + inlined program) and the per-strategy address
   maps.  Nothing on this path records a trace or simulates a cache —
   that is the point of the linter, and the tests pin it by asserting
   no "simulate"/"trace-record" span appears during a lint run. *)

type result = {
  bench : string;
  strategy : Placement.Strategy.t;
  fell_back : bool;
  report : Analysis.Lint.report;
}

(* Same geometry as the strategy-comparison experiment (E17), so the
   static conflict ranking can be read against its simulated miss
   ratios. *)
let default_config = Icache.Config.make ~size:2048 ~block:64 ()

let lint_entry ?(config = default_config) ?min_prob ?page_bytes e
    (s : Placement.Strategy.t) =
  let id = s.Placement.Strategy.id in
  let p = Context.pipeline e in
  let map = Context.strategy_map e s in
  let input =
    Analysis.Lint.of_pipeline ?min_prob ?page_bytes ~strategy:id p ~map
      ~config
  in
  {
    bench = Context.name e;
    strategy = s;
    fell_back = Context.fell_back e id;
    report = Analysis.Lint.run input;
  }

(* The per-strategy lints are independent (each takes the entry lock
   only around its memoized lookups), so a multi-lane default pool lints
   strategies concurrently; order is the registry's either way. *)
let sweep ?config ?min_prob ?page_bytes e =
  let lint s = lint_entry ?config ?min_prob ?page_bytes e s in
  match Placement.Pool.default () with
  | Some pool when Placement.Pool.lanes pool > 1 ->
    Placement.Pool.map pool lint Placement.Strategy.all
  | _ -> List.map lint Placement.Strategy.all

(* Best first: fewer static conflicts, then fewer broken hot arcs. *)
let rank results =
  List.stable_sort
    (fun a b ->
      match
        compare a.report.Analysis.Lint.conflict_score
          b.report.Analysis.Lint.conflict_score
      with
      | 0 ->
        compare a.report.Analysis.Lint.hot_arc_broken
          b.report.Analysis.Lint.hot_arc_broken
      | c -> c)
    results

let broken_pct (r : Analysis.Lint.report) =
  if r.Analysis.Lint.hot_arc_total = 0 then 0.
  else
    float_of_int r.Analysis.Lint.hot_arc_broken
    /. float_of_int r.Analysis.Lint.hot_arc_total

let strategy_cell r =
  let id = r.strategy.Placement.Strategy.id in
  if r.fell_back then id ^ " (fallback: natural)" else id

let ranking_table bench results =
  let rows =
    List.mapi
      (fun i r ->
        [
          string_of_int (i + 1);
          strategy_cell r;
          Printf.sprintf "%.3f" r.report.Analysis.Lint.conflict_score;
          Report.Fmtutil.pct (broken_pct r.report);
          string_of_int
            (List.length (Analysis.Lint.errors r.report));
          string_of_int
            (List.length (Analysis.Lint.warnings r.report));
        ])
      (rank results)
  in
  Report.Table.make
    ~title:
      (Printf.sprintf
         "Static lint ranking for %s at %s: lower conflict score and \
          fewer broken hot arcs predict a better layout (no simulation)"
         bench
         (Icache.Config.describe default_config))
    ~header:
      [ "rank"; "strategy"; "conflict"; "hot arcs broken"; "errors";
        "warnings" ]
    ~align:Report.Table.[ R; L; R; R; R; R ]
    rows

let summary r =
  let rep = r.report in
  let by_pass =
    String.concat "  "
      (List.map
         (fun (p, n) -> Printf.sprintf "%s=%d" p n)
         rep.Analysis.Lint.by_pass)
  in
  Printf.sprintf
    "%s/%s: %d finding(s) [%s]  conflict score %.3f  hot arcs broken \
     %d/%d (%s)"
    r.bench (strategy_cell r)
    (List.length rep.Analysis.Lint.findings)
    by_pass rep.Analysis.Lint.conflict_score
    rep.Analysis.Lint.hot_arc_broken rep.Analysis.Lint.hot_arc_total
    (Report.Fmtutil.pct (broken_pct rep))

(* ------------------------------------------------------------------ *)
(* JSON (schema impact.lint/v1)                                        *)
(* ------------------------------------------------------------------ *)

let finding_json (f : Analysis.Lint.finding) =
  let opt conv = function None -> Obs.Json.Null | Some v -> conv v in
  Obs.Json.Obj
    [
      ("pass", Obs.Json.String f.Analysis.Lint.pass);
      ( "severity",
        Obs.Json.String
          (Ir.Diag.severity_name f.Analysis.Lint.diag.Ir.Diag.severity) );
      ( "func",
        opt (fun s -> Obs.Json.String s) f.Analysis.Lint.diag.Ir.Diag.func );
      ( "block",
        opt (fun b -> Obs.Json.Int b) f.Analysis.Lint.diag.Ir.Diag.block );
      ("message", Obs.Json.String f.Analysis.Lint.diag.Ir.Diag.message);
      ("score", Obs.Json.Float f.Analysis.Lint.score);
    ]

let result_json r =
  let rep = r.report in
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("strategy", Obs.Json.String r.strategy.Placement.Strategy.id);
      ("fell_back", Obs.Json.Bool r.fell_back);
      ("conflict_score", Obs.Json.Float rep.Analysis.Lint.conflict_score);
      ( "hot_arcs",
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int rep.Analysis.Lint.hot_arc_total);
            ("broken", Obs.Json.Int rep.Analysis.Lint.hot_arc_broken);
          ] );
      ( "by_pass",
        Obs.Json.Obj
          (List.map
             (fun (p, n) -> (p, Obs.Json.Int n))
             rep.Analysis.Lint.by_pass) );
      ( "findings",
        Obs.Json.List (List.map finding_json rep.Analysis.Lint.findings) );
    ]

let report_json ~results =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "impact.lint/v1");
      ("results", Obs.Json.List (List.map result_json results));
    ]
