(** Backend of [impact lint]: run the static layout linter
    ({!Analysis.Lint}) over a context entry's pipeline under one or all
    registered layout strategies — sharing the memoized pipeline and
    strategy maps, and touching nothing on the simulation side — and
    render the outcome as text, a ranking table, or JSON. *)

type result = {
  bench : string;
  strategy : Placement.Strategy.t;
  fell_back : bool;  (** the strategy degraded to the natural layout *)
  report : Analysis.Lint.report;
  estimate : Sim.Estimate.result;
      (** the paper-§5 heuristic for the same map (profile arithmetic,
          still no simulation), so the JSON artifact carries all three
          predictors side by side *)
}

val default_config : Icache.Config.t
(** The paper's 2KB/64B direct-mapped design point — the same geometry
    the strategy-comparison experiment (E17) simulates, so static
    conflict scores are comparable with its miss ratios. *)

val lint_entry :
  ?config:Icache.Config.t ->
  ?min_prob:float ->
  ?page_bytes:int ->
  Context.entry ->
  Placement.Strategy.t ->
  result

val sweep :
  ?config:Icache.Config.t ->
  ?min_prob:float ->
  ?page_bytes:int ->
  Context.entry ->
  result list
(** One {!result} per registered strategy, registry order. *)

val rank : result list -> result list
(** Best layout first: ascending certified miss upper bound, ties broken
    by static conflict score, then broken-hot-arc weight, then registry
    order (stable). *)

val ranking_table : string -> result list -> Report.Table.t
(** Sweep results of one benchmark as a ranking table. *)

val summary : result -> string
(** One-line per-pass counts + aggregate scores. *)

val result_json : result -> Obs.Json.t

val report_json : results:result list -> Obs.Json.t
(** Top-level [impact.lint/v1] document. *)
