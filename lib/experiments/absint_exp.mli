(** E19 and the [impact absint] backend: sound static cache bounds
    ({!Analysis.Absint}) next to the paper-§5 heuristic estimate and
    the simulated truth, plus the differential soundness oracle the
    fuzzer replays on every generated program. *)

open Analysis

val default_configs : Icache.Config.t list
(** The three E19 design points: 2KB/64B direct (E17's geometry),
    8KB/64B direct, 4KB/64B 2-way — all whole-block fill, the shapes
    the analysis can certify. *)

val default_config : Icache.Config.t
(** First of {!default_configs}; the [impact absint] default. *)

val interval_json : Absint.interval -> Obs.Json.t
val totals_json : Absint.totals -> Obs.Json.t

(** {2 impact absint (simulation-free, profile-weighted)} *)

type result = {
  bench : string;
  strategy : Placement.Strategy.t;
  fell_back : bool;
  config : Icache.Config.t;
  totals : Absint.totals;
  certified : Absint.interval;  (** under the profile weights *)
  gated : string option;
  consistent : bool;
  scopes : int;
  must_iterations : int;
  may_iterations : int;
}

val analyze_entry :
  ?max_iters:int ->
  config:Icache.Config.t ->
  Context.entry ->
  Placement.Strategy.t ->
  result

val sweep :
  ?max_iters:int ->
  ?config:Icache.Config.t ->
  ?strategies:Placement.Strategy.t list ->
  Context.t ->
  result list
(** Every (entry, strategy) at one config, pool-parallel over entries;
    results in entry-major registry order. *)

val strategy_cell : result -> string
val summary : result -> string
val result_json : result -> Obs.Json.t

val report_json : results:result list -> Obs.Json.t
(** Top-level [impact.absint/v1] document. *)

(** {2 E19 table} *)

type row = {
  r_bench : string;
  r_strategy : string;
  r_config : string;
  r_est : float;
  r_lo : float;
  r_hi : float;
  r_sim : float;
  r_within : bool;
  r_classified : string;
}

val compute :
  ?configs:Icache.Config.t list ->
  ?strategies:Placement.Strategy.t list ->
  Context.t ->
  row list
(** Certified intervals are evaluated with block counts and loop-entry
    counts taken from the SAME trace the simulator replays, so
    [r_within] failing would be a soundness bug, not noise. *)

val table : Context.t -> Report.Table.t

(** {2 Differential soundness oracle} *)

val oracle_configs : Icache.Config.t list
(** Small geometries (512B/16B direct and 2-way) that force conflicts
    on fuzz-sized programs. *)

val check_oracle :
  ?configs:Icache.Config.t list ->
  strategy:string ->
  Ir.Prog.program ->
  Placement.Address_map.t ->
  Sim.Trace.t ->
  Ir.Diag.t list
(** Replays the trace against a fresh cache per config and checks every
    claim: always-hit accesses never miss, always-miss accesses never
    hit, first-miss (scope, line) pairs miss at most once per tracked
    scope entry, the simulated miss total lands inside the certified
    interval, and the Must/May domains never contradict.  Violations
    come back as [Simulation]-stage error diags. *)
