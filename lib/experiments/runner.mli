(** Experiment registry: every table of the paper's evaluation plus the
    extra ablations, in paper order. *)

type spec = {
  id : string;  (** table/figure identifier, "1" .. "12" *)
  title : string;
  table : Context.t -> Report.Table.t;
}

exception Unknown_experiment of string

val all : spec list

val aliases : (string * string) list
(** Mnemonic aliases accepted by {!find} (e.g. ["strategy-comparison"]). *)

val find : string -> spec
(** Lookup by id or alias; raises {!Unknown_experiment}. *)

val run_one : Context.t -> spec -> string
val run_all : Context.t -> string
