(** Experiment registry: every table of the paper's evaluation plus the
    extra ablations, in paper order. *)

type spec = {
  id : string;  (** table/figure identifier, "1" .. "12" *)
  title : string;
  table : Context.t -> Report.Table.t;
}

exception Unknown_experiment of string

val all : spec list

val aliases : (string * string) list
(** Mnemonic aliases accepted by {!find} (e.g. ["strategy-comparison"]). *)

val find : string -> spec
(** Lookup by id or alias; raises {!Unknown_experiment}. *)

type outcome = {
  spec : spec;
  table : Report.Table.t;  (** structured rows, for JSON reports *)
  wall_seconds : float;
  fresh_warnings : Ir.Diag.t list;
      (** degradation warnings first recorded while this table was built
          (already surfaced immediately through [Obs.Log]) *)
}

val run_spec : Context.t -> spec -> outcome
(** Build one table inside a ["table"] span, timing it. *)

val run_one : Context.t -> spec -> string
(** [run_spec] rendered to the plain-text table. *)

val run_all : Context.t -> string
