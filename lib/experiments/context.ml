(* Shared experiment context: per benchmark, the placement pipeline, the
   recorded block traces, derived address maps, and cache simulation
   results — all computed lazily and at most once, since every table
   draws on the same artifacts.

   Simulation results are memoized per (address map, trace, cache
   configuration): design points shared between tables (e.g. the 2KB/64B
   direct-mapped point appears in Tables 6 and 8, the comparison, and
   several ablations) are simulated exactly once.  Maps are keyed by
   physical identity, which is why every map getter below is itself
   memoized. *)

type entry = {
  bench : Workloads.Bench.t;
  pipeline : Placement.Pipeline.t Lazy.t;
  pipeline_noinline : Placement.Pipeline.t Lazy.t; (* inlining ablated *)
  trace : Sim.Trace_gen.t Lazy.t; (* inlined program, trace input *)
  original_trace : Sim.Trace_gen.t Lazy.t; (* pre-inlining program *)
  lazy_original_map : Placement.Address_map.t Lazy.t;
  lazy_ph_map : Placement.Address_map.t Lazy.t;
  mutable scaled_maps : (float * Placement.Address_map.t) list;
  mutable sim_results :
    (Placement.Address_map.t
    * Sim.Trace_gen.t
    * Icache.Config.t
    * Sim.Driver.result)
    list;
}

type t = entry list

let make_entry bench =
  let pipeline =
    lazy
      (Placement.Pipeline.run
         (Workloads.Bench.program bench)
         ~inputs:(Workloads.Bench.profile_inputs bench))
  in
  let pipeline_noinline =
    lazy
      (Placement.Pipeline.run
         ~config:{ Placement.Pipeline.default_config with do_inline = false }
         (Workloads.Bench.program bench)
         ~inputs:(Workloads.Bench.profile_inputs bench))
  in
  let trace =
    lazy
      (Sim.Trace_gen.record
         (Lazy.force pipeline).Placement.Pipeline.program
         (Workloads.Bench.trace_input bench))
  in
  let original_trace =
    (* The pre-inlining program as the pipeline shipped it (i.e. after
       the cleanup pass), so it matches original_map's labels. *)
    lazy
      (Sim.Trace_gen.record
         (Lazy.force pipeline).Placement.Pipeline.original
         (Workloads.Bench.trace_input bench))
  in
  let lazy_original_map =
    (* Natural layout of the original (pre-inlining) program: the fully
       unoptimized baseline. *)
    lazy
      (Placement.Address_map.natural
         (Lazy.force pipeline).Placement.Pipeline.original)
  in
  let lazy_ph_map =
    (* Pettis-Hansen layout of the inlined program, for the
       layout-algorithm comparison experiment. *)
    lazy
      (let p = Lazy.force pipeline in
       let program = p.Placement.Pipeline.program in
       let layouts =
         Array.mapi
           (fun fid f ->
             Placement.Ph_layout.layout f
               (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile
                  fid))
           program.Ir.Prog.funcs
       in
       let order =
         Placement.Ph_layout.global
           (Array.length program.Ir.Prog.funcs)
           ~entry:program.Ir.Prog.entry
           (Placement.Weight.call_of_profile p.Placement.Pipeline.profile)
       in
       Placement.Address_map.build program ~layouts ~order)
  in
  {
    bench;
    pipeline;
    pipeline_noinline;
    trace;
    original_trace;
    lazy_original_map;
    lazy_ph_map;
    scaled_maps = [];
    sim_results = [];
  }

let create ?names () =
  let benches =
    match names with
    | None -> Workloads.Registry.all
    | Some names -> List.map Workloads.Registry.find names
  in
  List.map make_entry benches

let entries t = t

let find t name =
  match
    List.find_opt (fun e -> e.bench.Workloads.Bench.name = name) t
  with
  | Some e -> e
  | None -> raise (Workloads.Registry.Unknown_benchmark name)

let name e = e.bench.Workloads.Bench.name
let pipeline e = Lazy.force e.pipeline
let pipeline_noinline e = Lazy.force e.pipeline_noinline
let trace e = Lazy.force e.trace
let original_trace e = Lazy.force e.original_trace
let optimized_map e = (pipeline e).Placement.Pipeline.optimized
let natural_map e = (pipeline e).Placement.Pipeline.natural
let original_map e = Lazy.force e.lazy_original_map
let ph_map e = Lazy.force e.lazy_ph_map

(* Address map for the code-scaling experiment (Table 9): the inlined
   program with every block size scaled, laid out with the same trace
   selection and orderings (weights are size-independent).  The recorded
   block trace replays unchanged; only addresses and fetch counts move.
   Memoized per factor so repeated callers share one map (and therefore
   one set of cached simulation results). *)
let scaled_map e factor =
  let p = pipeline e in
  if factor = 1.0 then p.Placement.Pipeline.optimized
  else
    match List.assoc_opt factor e.scaled_maps with
    | Some map -> map
    | None ->
      let scaled = Ir.Prog.scale_code factor p.Placement.Pipeline.program in
      let layouts =
        Array.mapi
          (fun fid f ->
            Placement.Func_layout.layout f
              (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile
                 fid)
              p.Placement.Pipeline.selections.(fid))
          scaled.Ir.Prog.funcs
      in
      let map =
        Placement.Address_map.build scaled ~layouts
          ~order:p.Placement.Pipeline.global
      in
      e.scaled_maps <- (factor, map) :: e.scaled_maps;
      map

(* ------------------------------------------------------------------ *)
(* Memoized simulation                                                 *)
(* ------------------------------------------------------------------ *)

let find_cached e config ~map ~trace =
  List.find_map
    (fun (m, t, c, r) ->
      if m == map && t == trace && c = config then Some r else None)
    e.sim_results

(* Simulate every configuration of [configs] on (map, trace), reusing
   cached results and running all uncached configurations through the
   single-pass multi-configuration engine in one trace walk. *)
let simulate_many e configs map trace =
  let missing =
    List.sort_uniq compare
      (List.filter
         (fun c -> find_cached e c ~map ~trace = None)
         configs)
  in
  (match missing with
  | [] -> ()
  | _ ->
    let results = Sim.Driver.simulate_many missing map trace in
    List.iter2
      (fun c r -> e.sim_results <- (map, trace, c, r) :: e.sim_results)
      missing results);
  List.map
    (fun c ->
      match find_cached e c ~map ~trace with
      | Some r -> r
      | None -> assert false)
    configs

let simulate e config map trace =
  match simulate_many e [ config ] map trace with
  | [ r ] -> r
  | _ -> assert false
