(* Shared experiment context: per benchmark, the placement pipeline, the
   recorded block traces, derived address maps, and cache simulation
   results — all computed lazily and at most once, since every table
   draws on the same artifacts.

   Traces are held as [Sim.Trace.t]: under the default [Streaming]
   engine the VM streams blocks straight into the run-length/delta
   compressing builder, so what the context memoizes is the compressed
   store (typically ~10x smaller than the raw Bigarray vector the
   [Buffered] engine keeps); replay is bit-identical either way.

   Address maps are produced per layout strategy through one memoized
   table ([strategy_map]); adding a strategy to [Placement.Strategy.all]
   makes it available to every experiment with no new plumbing here.

   Simulation results are memoized per (address map, trace, cache
   configuration) in a hashtable: maps and traces are interned to small
   integer ids on first sight (identity-keyed, which is why every map
   getter below is itself memoized), so a lookup costs one hash probe
   rather than a scan of everything simulated so far.

   Domain safety: each entry carries one mutex guarding all of its
   mutable state — the lazies (concurrently forcing a [Lazy.t] is
   unsafe in OCaml 5), the memo tables, the interning lists and the
   warning list.  The lock is held for memoized construction (so a
   strategy that raises records its fallback warning exactly once), but
   never across [Sim.Driver.simulate_many]: the sweep may itself fan
   out across the domain pool, and the submitting domain helps run
   other tasks while it waits — tasks that may need this very lock.
   Two domains can therefore race to simulate the same uncached
   configuration; both compute the identical deterministic result and
   [Hashtbl.replace] makes the double-fill harmless, so results are
   bit-identical to the serial run and only the memo-miss count can
   drift (bounded by the rare same-entry overlap). *)

type cached = { result : Sim.Driver.result; mutable last_used : int }

type entry = {
  bench : Workloads.Bench.t;
  lock : Mutex.t; (* guards every mutable/lazy field below *)
  memo_cap : int option;
      (* LRU bound on [sim_cache] entries; [None] = unbounded (the CLI
         default — a table run's working set is the whole table) *)
  strategy_cap : int option; (* LRU bound on [strategy_maps] *)
  mutable memo_tick : int; (* LRU clock, monotone under the lock *)
  mutable memo_evicted : int;
      (* per-context eviction count — live even with metrics off, so a
         resident service can report it deterministically *)
  pipeline : Placement.Pipeline.t Lazy.t;
  pipeline_noinline : Placement.Pipeline.t Lazy.t; (* inlining ablated *)
  trace : Sim.Trace.t Lazy.t; (* inlined program, trace input *)
  original_trace : Sim.Trace.t Lazy.t; (* pre-inlining program *)
  lazy_original_map : Placement.Address_map.t Lazy.t;
  mutable strategy_maps : (string * Placement.Address_map.t) list;
      (* strategy id -> map of the inlined program under that strategy,
         most recently used first (so the cap drops the coldest) *)
  mutable warnings : Ir.Diag.t list;
      (* degradation warnings recorded during this entry's lifetime,
         newest first (e.g. a strategy that raised and fell back) *)
  mutable scaled_maps : (float * Placement.Address_map.t) list;
  mutable map_ids : (Placement.Address_map.t * int) list;
  mutable trace_ids : (Sim.Trace.t * int) list;
  sim_cache : (int * int * Icache.Config.t, cached) Hashtbl.t;
}

type t = entry list

(* Telemetry: the memoized-simulation hit rate and the degradation
   count are the context's own health metrics. *)
let memo_hits =
  Obs.Metrics.counter "context.memo_hits"
    ~help:"simulation results served from the (map, trace, config) cache"

let memo_misses =
  Obs.Metrics.counter "context.memo_misses"
    ~help:"simulation cache misses (filled by the single-pass engine)"

let strategy_fallbacks =
  Obs.Metrics.counter "context.strategy_fallbacks"
    ~help:"strategies that raised and fell back to the natural layout"

let memo_evictions =
  Obs.Metrics.counter "context.memo_evictions"
    ~help:
      "memoized simulation results and strategy maps dropped by the LRU \
       caps (long-running services bound their residency; CLI runs \
       default to unbounded)"

let make_entry ~engine ?memo_cap ?strategy_cap bench =
  let bench_attr = [ ("bench", bench.Workloads.Bench.name) ] in
  let engine_attr = ("engine", Sim.Trace.engine_name engine) in
  let pipeline =
    lazy
      (Obs.Span.with_ ~stage:"pipeline" ~attrs:bench_attr (fun () ->
           Placement.Pipeline.run
             (Workloads.Bench.program bench)
             ~inputs:(Workloads.Bench.profile_inputs bench)))
  in
  let pipeline_noinline =
    lazy
      (Obs.Span.with_ ~stage:"pipeline"
         ~attrs:(("inline", "off") :: bench_attr)
         (fun () ->
           Placement.Pipeline.run
             ~config:
               { Placement.Pipeline.default_config with do_inline = false }
             (Workloads.Bench.program bench)
             ~inputs:(Workloads.Bench.profile_inputs bench)))
  in
  let trace =
    lazy
      (Obs.Span.with_ ~stage:"trace-record"
         ~attrs:(engine_attr :: bench_attr)
         (fun () ->
           Sim.Trace.record ~engine
             (Lazy.force pipeline).Placement.Pipeline.program
             (Workloads.Bench.trace_input bench)))
  in
  let original_trace =
    (* The pre-inlining program as the pipeline shipped it (i.e. after
       the cleanup pass), so it matches original_map's labels. *)
    lazy
      (Obs.Span.with_ ~stage:"trace-record"
         ~attrs:(engine_attr :: ("program", "original") :: bench_attr)
         (fun () ->
           Sim.Trace.record ~engine
             (Lazy.force pipeline).Placement.Pipeline.original
             (Workloads.Bench.trace_input bench)))
  in
  let lazy_original_map =
    (* Natural layout of the original (pre-inlining) program: the fully
       unoptimized baseline. *)
    lazy
      (Placement.Address_map.natural
         (Lazy.force pipeline).Placement.Pipeline.original)
  in
  {
    bench;
    lock = Mutex.create ();
    memo_cap;
    strategy_cap;
    memo_tick = 0;
    memo_evicted = 0;
    pipeline;
    pipeline_noinline;
    trace;
    original_trace;
    lazy_original_map;
    strategy_maps = [];
    warnings = [];
    scaled_maps = [];
    map_ids = [];
    trace_ids = [];
    sim_cache = Hashtbl.create 64;
  }

let create ?(engine = Sim.Trace.Streaming) ?(scale = 1) ?memo_cap
    ?strategy_cap ?names () =
  let check_cap what = function
    | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Context.create: %s must be >= 1" what)
    | _ -> ()
  in
  check_cap "memo_cap" memo_cap;
  check_cap "strategy_cap" strategy_cap;
  let benches =
    match names with
    | None -> Workloads.Registry.suite ~scale
    | Some names -> List.map (Workloads.Registry.find ~scale) names
  in
  List.map (make_entry ~engine ?memo_cap ?strategy_cap) benches

let entries t = t

let map_entries f t =
  match Placement.Pool.default () with
  | Some pool
    when Placement.Pool.lanes pool > 1 && List.compare_length_with t 1 > 0 ->
    Placement.Pool.map pool f t
  | _ -> List.map f t

let find t name =
  match
    List.find_opt (fun e -> e.bench.Workloads.Bench.name = name) t
  with
  | Some e -> e
  | None -> raise (Workloads.Registry.Unknown_benchmark name)

let name e = e.bench.Workloads.Bench.name

let locked e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

(* All lazies are forced under the entry lock.  Their bodies force
   sibling lazies through the closure variables directly (never through
   these accessors), so forcing never re-enters the lock. *)
let pipeline e = locked e (fun () -> Lazy.force e.pipeline)
let pipeline_noinline e = locked e (fun () -> Lazy.force e.pipeline_noinline)
let trace e = locked e (fun () -> Lazy.force e.trace)
let original_trace e = locked e (fun () -> Lazy.force e.original_trace)
let optimized_map e = (pipeline e).Placement.Pipeline.optimized
let natural_map e = (pipeline e).Placement.Pipeline.natural
let original_map e = locked e (fun () -> Lazy.force e.lazy_original_map)

(* Address map of the inlined program under a registered layout
   strategy, built at most once per (entry, strategy).

   Graceful degradation: a strategy that raises mid-construction must
   not abort a whole experiment sweep, so the failure is recorded as a
   [Strategy]-stage warning and the entry falls back to the natural
   layout for that strategy id.  Callers can inspect {!warnings} /
   {!fell_back} and render the substitution visibly.  Construction,
   memo insertion and warning recording all happen under the entry
   lock, so concurrent callers agree on one map and a failing strategy
   warns (and bumps the fallback counter) exactly once. *)
let strategy_map e (s : Placement.Strategy.t) =
  let id = s.Placement.Strategy.id in
  let p = pipeline e (* outside the critical section below *) in
  locked e @@ fun () ->
  match List.assoc_opt id e.strategy_maps with
  | Some map ->
    (* Refresh LRU position: the cap below drops the coldest entry. *)
    if e.strategy_cap <> None then
      e.strategy_maps <-
        (id, map) :: List.filter (fun (i, _) -> i <> id) e.strategy_maps;
    map
  | None ->
    let map =
      try
        Obs.Span.with_ ~stage:"strategy-map"
          ~attrs:[ ("bench", name e); ("strategy", id) ]
          (fun () -> Placement.Pipeline.map_for p s)
      with exn ->
        let detail =
          match exn with
          | Ir.Diag.Fail d -> Ir.Diag.to_string d
          | _ -> Printexc.to_string exn
        in
        (* Warn and count once per strategy id, even when the memoized
           fallback map was LRU-evicted and is being rebuilt. *)
        if
          not
            (List.exists (fun d -> d.Ir.Diag.strategy = Some id) e.warnings)
        then begin
          let d =
            Ir.Diag.make ~severity:Ir.Diag.Warning ~stage:Ir.Diag.Strategy
              ~strategy:id "%s: strategy failed (%s); fell back to the \
                            natural layout"
              (name e) detail
          in
          e.warnings <- d :: e.warnings;
          (* Surface the degradation the moment it happens — table
             rendering may flush much later (or never, on a crash). *)
          Obs.Log.warn_raw (Ir.Diag.to_string d);
          Obs.Metrics.incr strategy_fallbacks
        end;
        p.Placement.Pipeline.natural
    in
    e.strategy_maps <- (id, map) :: e.strategy_maps;
    (match e.strategy_cap with
    | Some cap when List.length e.strategy_maps > cap ->
      e.strategy_maps <- List.filteri (fun i _ -> i < cap) e.strategy_maps;
      e.memo_evicted <- e.memo_evicted + 1;
      Obs.Metrics.incr memo_evictions
    | _ -> ());
    map

let warnings e = locked e (fun () -> List.rev e.warnings)

(* Did [strategy_map] substitute the natural layout for this strategy? *)
let fell_back e id =
  locked e (fun () ->
      List.exists (fun d -> d.Ir.Diag.strategy = Some id) e.warnings)

(* Address map for the code-scaling experiment (Table 9): the inlined
   program with every block size scaled, laid out with the same trace
   selection and orderings (weights are size-independent).  The recorded
   block trace replays unchanged; only addresses and fetch counts move.
   Memoized per factor so repeated callers share one map (and therefore
   one set of cached simulation results). *)
let scaled_map e factor =
  let p = pipeline e in
  if factor = 1.0 then p.Placement.Pipeline.optimized
  else
    locked e @@ fun () ->
    match List.assoc_opt factor e.scaled_maps with
    | Some map -> map
    | None ->
      let scaled = Ir.Prog.scale_code factor p.Placement.Pipeline.program in
      let layouts =
        Array.mapi
          (fun fid f ->
            Placement.Func_layout.layout f
              (Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile
                 fid)
              p.Placement.Pipeline.selections.(fid))
          scaled.Ir.Prog.funcs
      in
      let map =
        Placement.Address_map.build scaled ~layouts
          ~order:p.Placement.Pipeline.global
      in
      e.scaled_maps <- (factor, map) :: e.scaled_maps;
      map

(* ------------------------------------------------------------------ *)
(* Memoized simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Intern maps and traces to small ids on physical identity, so cached
   results key on a hashable (map id, trace id, config) triple.  The
   interning lists stay tiny — a handful of maps and two traces per
   entry — while the result cache can hold hundreds of design points.
   Interning mutates the entry, so callers hold its lock (the
   [_unlocked] suffix marks the requirement). *)
let map_id_unlocked e map =
  match
    List.find_map (fun (m, i) -> if m == map then Some i else None) e.map_ids
  with
  | Some i -> i
  | None ->
    let i = List.length e.map_ids in
    e.map_ids <- (map, i) :: e.map_ids;
    i

let trace_id_unlocked e trace =
  match
    List.find_map
      (fun (t, i) -> if t == trace then Some i else None)
      e.trace_ids
  with
  | Some i -> i
  | None ->
    let i = List.length e.trace_ids in
    e.trace_ids <- (trace, i) :: e.trace_ids;
    i

(* LRU bookkeeping for the simulation memo.  [tick_unlocked] advances
   the entry's clock; eviction scans for the stalest entry — O(n) per
   eviction, fine at the cap sizes a resident service uses (hundreds).
   Under a multi-lane pool the eviction order can drift exactly like the
   memo-miss count already does; results never depend on it. *)
let tick_unlocked e =
  e.memo_tick <- e.memo_tick + 1;
  e.memo_tick

let evict_sim_unlocked e =
  match e.memo_cap with
  | None -> ()
  | Some cap ->
    while Hashtbl.length e.sim_cache > cap do
      let victim =
        Hashtbl.fold
          (fun k v acc ->
            match acc with
            | Some (_, stamp) when stamp <= v.last_used -> acc
            | _ -> Some (k, v.last_used))
          e.sim_cache None
      in
      match victim with
      | None -> assert false (* length > cap >= 1 *)
      | Some (k, _) ->
        Hashtbl.remove e.sim_cache k;
        e.memo_evicted <- e.memo_evicted + 1;
        Obs.Metrics.incr memo_evictions
    done

(* Simulate every configuration of [configs] on (map, trace), reusing
   cached results and running all uncached configurations through the
   single-pass multi-configuration engine in one trace walk.  The sweep
   itself runs outside the entry lock — it may fan out across the
   domain pool, and the submitting domain helps run other pool tasks
   while it waits, tasks that may need this very lock. *)
let simulate_many e configs map trace =
  let mid, tid, missing =
    locked e (fun () ->
        let mid = map_id_unlocked e map in
        let tid = trace_id_unlocked e trace in
        let missing =
          List.sort_uniq compare
            (List.filter
               (fun c -> not (Hashtbl.mem e.sim_cache (mid, tid, c)))
               configs)
        in
        (mid, tid, missing))
  in
  if Obs.Metrics.enabled () then begin
    let miss = List.length missing in
    Obs.Metrics.incr ~by:miss memo_misses;
    Obs.Metrics.incr ~by:(List.length configs - miss) memo_hits
  end;
  (match missing with
  | [] -> ()
  | _ ->
    let results = Sim.Driver.simulate_many missing map trace in
    locked e (fun () ->
        List.iter2
          (fun c r ->
            Hashtbl.replace e.sim_cache (mid, tid, c)
              { result = r; last_used = tick_unlocked e })
          missing results));
  locked e (fun () ->
      let out =
        List.map
          (fun c ->
            match Hashtbl.find_opt e.sim_cache (mid, tid, c) with
            | Some cached ->
              cached.last_used <- tick_unlocked e;
              cached.result
            | None ->
              Ir.Diag.error ~stage:Ir.Diag.Simulation
                "%s: configuration missing from the simulation cache after \
                 a fill pass"
                (name e))
          configs
      in
      (* Evict only after this call's own results are read back, so a
         cap smaller than one sweep still returns correct results. *)
      evict_sim_unlocked e;
      out)

let simulate e config map trace =
  match simulate_many e [ config ] map trace with
  | [ r ] -> r
  | rs ->
    Ir.Diag.error ~stage:Ir.Diag.Simulation
      "%s: expected 1 simulation result, got %d" (name e) (List.length rs)
