(** Differential layout fuzzer: seeded random programs are pushed
    through lowering, the full placement pipeline, every registered
    layout strategy, the static linter and a cache simulation, checking
    all pipeline invariants plus cross-strategy layout invariance (and
    that {!Analysis.Lint} neither crashes nor finds error-severity
    contradictions on any strategy's map).  Failures are
    shrunk to a minimal reproducer (the shrink predicate keeps the
    first violation in its original stage) and carry the generating
    seed. *)

type failure = {
  seed : int;
  size : int;
  diags : Ir.Diag.t list;  (** violations of the generated program *)
  shrunk : Ir.Ast.program;  (** minimal reproducer *)
  shrunk_diags : Ir.Diag.t list;  (** violations it still exhibits *)
  shrink_steps : int;
}

val check_program :
  ?strategies:Placement.Strategy.t list -> Ir.Ast.program -> Ir.Diag.t list
(** All violations exhibited by one program ([] = everything holds).
    [strategies] defaults to the full registry; tests inject broken
    strategies here. *)

val run_seed :
  ?size:int -> ?strategies:Placement.Strategy.t list -> int ->
  failure option
(** Generate, check, and on failure shrink one seeded program. *)

val shrink_failure :
  size:int ->
  ?strategies:Placement.Strategy.t list ->
  int ->
  Ir.Diag.t list ->
  failure
(** Shrink a seed already known to fail with the given diagnostics (the
    seed regenerates the program deterministically).  Raises
    [Invalid_argument] if none of them is error-severity. *)

val report_failure : failure Fmt.t
(** Violations, shrunk reproducer (lowered IR when it lowers), and the
    command line that replays the seed. *)

val run :
  ?size:int ->
  ?strategies:Placement.Strategy.t list ->
  ?log:(string -> unit) ->
  ?pool:Placement.Pool.t ->
  first_seed:int ->
  count:int ->
  unit ->
  failure list
(** Fuzz [count] consecutive seeds, logging progress and failures.  With
    a multi-lane [pool], seeds are checked in parallel and the failing
    ones shrunk serially in seed order — the returned failures and their
    reports are identical to the serial campaign's; only the progress
    cadence differs. *)
