(* E16: next-line prefetch ablation.

   Sequential prefetch was the classic 1980s hardware answer to
   instruction-fetch misses.  Placement *increases* code sequentiality,
   so prefetch and placement should compose: this table measures miss and
   traffic at 2KB/64B direct-mapped with and without next-line tagged
   prefetch, under the optimized layout. *)

type row = {
  name : string;
  base : Sim.Driver.result;
  pref : Sim.Driver.result;
}

let base_config = Icache.Config.make ~size:2048 ~block:64 ()
let pref_config = Icache.Config.make ~prefetch:true ~size:2048 ~block:64 ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let trace = Context.trace e in
      let map = Context.optimized_map e in
      match
        Context.simulate_many e [ base_config; pref_config ] map trace
      with
      | [ base; pref ] -> { name = Context.name e; base; pref }
      | _ -> assert false)
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct r.base.Sim.Driver.miss_ratio;
          Report.Fmtutil.pct r.pref.Sim.Driver.miss_ratio;
          Report.Fmtutil.pct r.base.Sim.Driver.traffic_ratio;
          Report.Fmtutil.pct r.pref.Sim.Driver.traffic_ratio;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Next-line prefetch ablation at 2KB/64B (optimized layout): misses \
       traded for traffic"
    ~header:
      [ "name"; "miss"; "miss+pf"; "traffic"; "traffic+pf" ]
    ~align:Report.Table.[ L; R; R; R; R ]
    rows
