(* E11 / section 4.2.1 (text): miss-penalty timing ablation.

   The paper argues that streaming + early continuation + load forwarding
   halve the effective miss penalty of large blocks, and that partial
   loading reduces it further because the fill starts at the missed word.
   This experiment quantifies effective access time (cycles per
   instruction fetch) at 2KB/64B under the three refill disciplines. *)

type row = {
  name : string;
  whole_blocking : float;
  whole_streaming : float;
  partial_streaming : float;
}

let whole = Icache.Config.make ~size:2048 ~block:64 ()

let partial =
  Icache.Config.make ~size:2048 ~block:64 ~fill:Icache.Config.Partial ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let map = Context.optimized_map e in
      let trace = Context.trace e in
      let w, p =
        match Context.simulate_many e [ whole; partial ] map trace with
        | [ w; p ] -> (w, p)
        | _ -> assert false
      in
      {
        name = Context.name e;
        whole_blocking = w.Sim.Driver.eat_blocking;
        whole_streaming = w.Sim.Driver.eat_streaming;
        partial_streaming = p.Sim.Driver.eat_streaming_partial;
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.f2 r.whole_blocking;
          Report.Fmtutil.f2 r.whole_streaming;
          Report.Fmtutil.f2 r.partial_streaming;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Timing ablation (sec 4.2.1) at 2KB/64B: effective access time in \
       cycles/fetch (10-cycle memory latency, 4B/cycle bus)"
    ~header:
      [ "name"; "whole+blocking"; "whole+streaming"; "partial+streaming" ]
    ~align:Report.Table.[ L; R; R; R ]
    rows
