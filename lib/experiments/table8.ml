(* E8 / Table 8: schemes to reduce the memory traffic ratio at 2KB/64B —
   block sectoring (8-byte sectors) versus partial loading, including the
   partial scheme's average transfer size (avg.fetch, 4-byte entities) and
   average sequential run from a miss (avg.exec, instructions). *)

type row = {
  name : string;
  sector : Sim.Driver.result;
  partial : Sim.Driver.result;
}

let sector_config =
  Icache.Config.make ~size:2048 ~block:64 ~fill:(Icache.Config.Sectored 8) ()

let partial_config =
  Icache.Config.make ~size:2048 ~block:64 ~fill:Icache.Config.Partial ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let map = Context.optimized_map e in
      let trace = Context.trace e in
      match
        Context.simulate_many e [ sector_config; partial_config ] map trace
      with
      | [ sector; partial ] -> { name = Context.name e; sector; partial }
      | _ -> assert false)
    ctx

let table ctx =
  let paper_of name =
    List.find_opt (fun r -> r.Paper.t8_name = name) Paper.table8
  in
  let rows =
    List.map
      (fun r ->
        let p = paper_of r.name in
        let pmiss =
          match p with
          | Some p -> Printf.sprintf "%.2f%%" (fst p.Paper.t8_partial)
          | None -> "-"
        in
        let pexec =
          match p with
          | Some { Paper.t8_avg_exec = Some x; _ } -> Printf.sprintf "%.1f" x
          | Some _ | None -> "-"
        in
        [
          r.name;
          Report.Fmtutil.pct r.sector.Sim.Driver.miss_ratio;
          Report.Fmtutil.pct r.sector.Sim.Driver.traffic_ratio;
          Report.Fmtutil.pct r.partial.Sim.Driver.miss_ratio;
          Report.Fmtutil.pct r.partial.Sim.Driver.traffic_ratio;
          Report.Fmtutil.f1 r.partial.Sim.Driver.avg_fetch_words;
          Report.Fmtutil.f1 r.partial.Sim.Driver.avg_exec_insns;
          pmiss;
          pexec;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Table 8: reducing memory traffic at 2KB/64B — sectored (8B) vs \
       partial loading (measured | paper partial)"
    ~header:
      [ "name"; "sect miss"; "sect traffic"; "part miss"; "part traffic";
        "avg.fetch"; "avg.exec"; "paper:miss"; "paper:exec" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R; R; R ]
    rows
