(* E2 / Table 2: benchmark characteristics under profiling — source size,
   number of profiling runs, accumulated dynamic instructions and control
   transfers, and the nature of the inputs. *)

type row = {
  name : string;
  source_lines : int;
  runs : int;
  instructions : int; (* accumulated over all profiling runs *)
  control : int; (* control transfers other than call/return *)
  inputs : string;
}

let compute ctx =
  Context.map_entries
    (fun e ->
      let p = Context.pipeline e in
      let prof = p.Placement.Pipeline.original_profile in
      {
        name = Context.name e;
        source_lines = Workloads.Bench.source_lines e.Context.bench;
        runs = prof.Vm.Profile.runs;
        instructions = prof.Vm.Profile.dyn_insns;
        control = prof.Vm.Profile.dyn_branches;
        inputs = e.Context.bench.Workloads.Bench.description;
      })
    ctx

let table ctx =
  let paper_of name =
    List.find_opt (fun r -> r.Paper.t2_name = name) Paper.table2
  in
  let rows =
    List.map
      (fun r ->
        let paper =
          match paper_of r.name with
          | Some p ->
            [ Printf.sprintf "%.1fM" p.Paper.t2_instructions;
              Printf.sprintf "%.2fM" p.Paper.t2_control ]
          | None -> [ "-"; "-" ]
        in
        [
          r.name;
          string_of_int r.source_lines;
          string_of_int r.runs;
          Report.Fmtutil.human r.instructions;
          Report.Fmtutil.human r.control;
        ]
        @ paper
        @ [ r.inputs ])
      (compute ctx)
  in
  Report.Table.make
    ~title:"Table 2: profile results (measured | paper)"
    ~header:
      [ "name"; "lines"; "runs"; "instructions"; "control"; "paper:instr";
        "paper:ctrl"; "input description" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R; L ]
    rows
