(* Experiment-level invariant verifier: ties the placement-layer checks
   ([Placement.Validate]) to the sim layer.

   Beyond the per-stage invariants, the load-bearing cross-check here is
   layout invariance: a placement strategy may only move code, never
   change what executes.  Concretely, the recorded block trace expanded
   through every registered strategy's address map must yield the same
   dynamic instruction count, and a cache simulation over any of those
   maps must access exactly that many instructions.  A strategy that
   drops, duplicates or resizes blocks fails this check even when its
   map is internally consistent. *)

type level = Placement.Validate.level = Cheap | Full

(* One small, cheap cache configuration for the Full-level simulation
   cross-check; the geometry is irrelevant to the accessed-instruction
   count, so the smallest realistic one keeps the check fast. *)
let xcheck_config = Icache.Config.make ~size:512 ~block:16 ()

let strategy_maps e =
  List.map
    (fun (s : Placement.Strategy.t) -> (s, Context.strategy_map e s))
    Placement.Strategy.all

(* Dynamic-instruction-count invariance of the block trace across every
   registered strategy's map (plus the pipeline's own two). *)
let layout_invariance e : Ir.Diag.t list =
  let trace = Context.trace e in
  let reference = Sim.Trace.dyn_insns (Context.natural_map e) trace in
  List.concat_map
    (fun ((s : Placement.Strategy.t), map) ->
      let n = Sim.Trace.dyn_insns map trace in
      if n = reference then []
      else
        [
          Ir.Diag.make ~stage:Ir.Diag.Simulation
            ~strategy:s.Placement.Strategy.id
            "%s: layout changed the dynamic instruction count: %d under \
             this strategy vs %d under the natural layout"
            (Context.name e) n reference;
        ])
    (strategy_maps e)

(* Simulated accesses must equal the trace's dynamic instruction count:
   the simulator walks every fetch exactly once, whatever the map. *)
let simulation_cross_check e : Ir.Diag.t list =
  let trace = Context.trace e in
  List.concat_map
    (fun ((s : Placement.Strategy.t), map) ->
      let expected = Sim.Trace.dyn_insns map trace in
      let r = Context.simulate e xcheck_config map trace in
      if r.Sim.Driver.accesses = expected then []
      else
        [
          Ir.Diag.make ~stage:Ir.Diag.Simulation
            ~strategy:s.Placement.Strategy.id
            "%s: simulation accessed %d instructions but the trace holds %d"
            (Context.name e) r.Sim.Driver.accesses expected;
        ])
    (strategy_maps e)

let check_entry ?(level = Cheap) (e : Context.entry) : Ir.Diag.t list =
  let pipeline_diags =
    Placement.Validate.pipeline ~level (Context.pipeline e)
  in
  (* Per-strategy address maps.  [Context.strategy_map] substitutes the
     natural layout when a strategy raises (recording a warning); in
     that case the map no longer carries the strategy's metadata claims,
     so validate it as a plain map. *)
  let per_strategy =
    List.concat_map
      (fun ((s : Placement.Strategy.t), map) ->
        let p = Context.pipeline e in
        let claims =
          if Context.fell_back e s.Placement.Strategy.id then None
          else Some s
        in
        Placement.Validate.map ?strategy:claims
          ~program:p.Placement.Pipeline.program
          ~weights:(fun fid ->
            Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid)
          map)
      (strategy_maps e)
  in
  let invariance = layout_invariance e in
  let sim = match level with Cheap -> [] | Full -> simulation_cross_check e in
  let fallbacks = Context.warnings e in
  pipeline_diags @ per_strategy @ invariance @ sim @ fallbacks

let check ?level (t : Context.t) : Ir.Diag.t list =
  let level_name =
    match level with
    | Some Full -> "full"
    | Some Cheap | None -> "cheap"
  in
  Obs.Span.with_ ~stage:"validate"
    ~attrs:[ ("level", level_name) ]
    (fun () -> List.concat (Context.map_entries (check_entry ?level) t))
