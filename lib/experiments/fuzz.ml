(* Differential layout fuzzer engine.

   One fuzz case: generate a seeded random mini-C program, lower it,
   run the whole placement pipeline on it, build the address map of
   every registered layout strategy, and check

   - every structural / flow / selection / layout / map invariant
     ([Placement.Validate], at [Full] level);
   - inline expansion preserved semantics (the original and inlined
     programs produce the same return value and output);
   - the static linter ([Analysis.Lint]) runs without crashing on every
     strategy's map and reports no error-severity finding (a statically
     unreachable block carrying profile weight, a flow violation);
   - the dynamic instruction count of the recorded block trace is the
     same under every strategy's map (layout invariance);
   - a cache simulation over each map accesses exactly that many
     instructions;
   - the three simulation engines agree bit-for-bit: the word-granular
     buffered reference, the run-length-compressed replay (per map) and
     the fused VM->cache stream (once per seed, natural map);

   - the abstract-interpretation cache bounds ([Analysis.Absint]) are
     sound against the simulated truth on small conflict-heavy
     geometries: no always-hit access ever misses, no always-miss
     access ever hits, a first-miss line misses at most once per
     tracked loop entry, and the simulated miss total lands inside the
     certified interval ([Absint_exp.check_oracle]).

   On failure the case is shrunk greedily ([Ir.Gen.shrink]) while the
   first violation stays in the same stage — so the reproducer exhibits
   the original failure class, not some unrelated breakage introduced by
   the reduction — and reported with its seed, which regenerates the
   unshrunk program deterministically. *)

type failure = {
  seed : int;
  size : int;
  diags : Ir.Diag.t list;  (** violations of the generated program *)
  shrunk : Ir.Ast.program;  (** minimal reproducer *)
  shrunk_diags : Ir.Diag.t list;  (** violations it still exhibits *)
  shrink_steps : int;
}

let fuel = 50_000_000
let case_input = Vm.Io.input []

(* Telemetry: volume and outcome of fuzzing campaigns. *)
let seeds_checked =
  Obs.Metrics.counter "fuzz.seeds" ~help:"generated programs checked"

let failures_found =
  Obs.Metrics.counter "fuzz.failures" ~help:"seeds that broke an invariant"

let shrink_steps_taken =
  Obs.Metrics.counter "fuzz.shrink_steps"
    ~help:"successful shrink steps over all failures"

(* Geometry is irrelevant to the access-count cross-check; a small cache
   keeps a 200-case smoke run fast. *)
let sim_config = Icache.Config.make ~size:512 ~block:16 ()

let catching stage f =
  try Ok (f ()) with
  | Ir.Diag.Fail d -> Error [ d ]
  | Vm.Interp.Fault m -> Error [ Ir.Diag.make ~stage "VM fault: %s" m ]
  | exn -> Error [ Ir.Diag.make ~stage "%s" (Printexc.to_string exn) ]

(* All violations exhibited by one generated program, or [] if the whole
   pipeline holds up.  Stages are checked in order and a failing stage
   short-circuits the rest (its artifacts would be garbage anyway). *)
let check_program ?(strategies = Placement.Strategy.all)
    (ast : Ir.Ast.program) : Ir.Diag.t list =
  match catching Ir.Diag.Lower (fun () -> Ir.Lower.program ast) with
  | Error ds -> ds
  | Ok prog -> (
    match Ir.Check.diags prog with
    | _ :: _ as structural -> structural
    | [] -> (
      match
        catching Ir.Diag.Profile (fun () ->
            Placement.Pipeline.run prog ~inputs:[ case_input ])
      with
      | Error ds -> ds
      | Ok p -> (
        let pipe =
          Placement.Validate.pipeline ~level:Placement.Validate.Full p
        in
        match Ir.Diag.errors pipe with
        | _ :: _ -> pipe
        | [] -> (
          (* Inline expansion must not change observable behavior. *)
          let semantics =
            match
              catching Ir.Diag.Structure (fun () ->
                  let obs prog =
                    let r = Vm.Interp.run ~fuel prog case_input in
                    (r.Vm.Interp.return_value, Vm.Io.output r.Vm.Interp.io 0)
                  in
                  (obs p.Placement.Pipeline.original,
                   obs p.Placement.Pipeline.program))
            with
            | Error ds -> ds
            | Ok ((r0, o0), (r1, o1)) ->
              if r0 = r1 && o0 = o1 then []
              else
                [
                  Ir.Diag.make ~stage:Ir.Diag.Structure
                    "inline expansion changed semantics: return %d, %d \
                     output bytes vs return %d, %d output bytes"
                    r0 (String.length o0) r1 (String.length o1);
                ]
          in
          match semantics with
          | _ :: _ -> semantics
          | [] -> (
            (* Per-strategy maps; in the fuzzer a raising strategy is a
               hard failure, not a degradation. *)
            let maps, strategy_diags =
              List.fold_left
                (fun (maps, diags) (s : Placement.Strategy.t) ->
                  match
                    catching Ir.Diag.Strategy (fun () ->
                        Placement.Pipeline.map_for p s)
                  with
                  | Ok m -> ((s, m) :: maps, diags)
                  | Error ds ->
                    ( maps,
                      diags
                      @ List.map
                          (fun d ->
                            { d with
                              Ir.Diag.strategy =
                                Some s.Placement.Strategy.id })
                          ds ))
                ([], []) strategies
            in
            let maps = List.rev maps in
            let weights fid =
              Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile
                fid
            in
            let map_diags =
              List.concat_map
                (fun (s, m) ->
                  Placement.Validate.map ~strategy:s
                    ~program:p.Placement.Pipeline.program ~weights m)
                maps
            in
            match strategy_diags @ map_diags with
            | _ :: _ as ds -> ds
            | [] -> (
              (* The static linter must survive every generated program
                 under every strategy map, and its error-severity
                 findings (profile weight on a statically dead block,
                 flow-conservation violations) are pipeline bugs: the
                 simplifier sweeps unreachable blocks, so a weighted one
                 means the CFG and the profile disagree. *)
              let lint_diags =
                List.concat_map
                  (fun ((s : Placement.Strategy.t), m) ->
                    match
                      catching Ir.Diag.Lint (fun () ->
                          Analysis.Lint.run
                            (Analysis.Lint.of_pipeline
                               ~strategy:s.Placement.Strategy.id p ~map:m
                               ~config:sim_config))
                    with
                    | Error ds -> ds
                    | Ok report -> Analysis.Lint.errors report)
                  maps
              in
              match lint_diags with
              | _ :: _ as ds -> ds
              | [] -> (
              match
                catching Ir.Diag.Simulation (fun () ->
                    Sim.Trace_gen.record ~fuel p.Placement.Pipeline.program
                      case_input)
              with
              | Error ds -> ds
              | Ok tg -> (
                let raw = Sim.Trace.of_gen tg in
                let compressed =
                  Sim.Trace.of_ctrace (Sim.Ctrace.of_trace_gen tg)
                in
                (* Engine differential, once per seed: the word-granular
                   reference, the compressed-replay fast path and the
                   fused VM->cache stream must agree on every result
                   field for the natural map.  A mismatch is a
                   shrinkable Simulation-stage failure like any
                   other. *)
                let engine_diags =
                  let one what = function
                    | [ (r : Sim.Driver.result) ] -> r
                    | rs ->
                      Ir.Diag.error ~stage:Ir.Diag.Simulation
                        "%s: expected 1 result, got %d" what
                        (List.length rs)
                  in
                  match
                    catching Ir.Diag.Simulation (fun () ->
                        let m = p.Placement.Pipeline.natural in
                        let buffered = Sim.Driver.simulate sim_config m raw in
                        let replayed =
                          one "compressed replay"
                            (Sim.Driver.simulate_many_serial [ sim_config ]
                               m compressed)
                        in
                        let streamed =
                          one "fused stream"
                            (fst
                               (Sim.Driver.simulate_stream ~fuel
                                  [ sim_config ] m
                                  p.Placement.Pipeline.program case_input))
                        in
                        (buffered, replayed, streamed))
                  with
                  | Error ds -> ds
                  | Ok (buffered, replayed, streamed) ->
                    (if replayed = buffered then []
                     else
                       [
                         Ir.Diag.make ~stage:Ir.Diag.Simulation
                           "compressed-trace replay diverged from the \
                            buffered reference simulation";
                       ])
                    @
                    if streamed = buffered then []
                    else
                      [
                        Ir.Diag.make ~stage:Ir.Diag.Simulation
                          "fused streaming simulation diverged from the \
                           buffered reference simulation";
                      ]
                in
                match engine_diags with
                | _ :: _ -> engine_diags
                | [] ->
                  let reference =
                    Sim.Trace.dyn_insns p.Placement.Pipeline.natural raw
                  in
                  List.concat_map
                    (fun ((s : Placement.Strategy.t), m) ->
                      let id = s.Placement.Strategy.id in
                      let n = Sim.Trace.dyn_insns m raw in
                      if n <> reference then
                        [
                          Ir.Diag.make ~stage:Ir.Diag.Simulation
                            ~strategy:id
                            "layout changed the dynamic instruction \
                             count: %d vs %d under the natural layout"
                            n reference;
                        ]
                      else
                        match
                          catching Ir.Diag.Simulation (fun () ->
                              Sim.Driver.simulate sim_config m raw)
                        with
                        | Error ds ->
                          List.map
                            (fun d -> { d with Ir.Diag.strategy = Some id })
                            ds
                        | Ok r -> (
                          if r.Sim.Driver.accesses <> n then
                            [
                              Ir.Diag.make ~stage:Ir.Diag.Simulation
                                ~strategy:id
                                "simulation accessed %d instructions but \
                                 the trace holds %d"
                                r.Sim.Driver.accesses n;
                            ]
                          else
                            (* Per-map: the compressed store must replay
                               to the reference result under this
                               strategy's addresses too. *)
                            match
                              catching Ir.Diag.Simulation (fun () ->
                                  Sim.Driver.simulate_many_serial
                                    [ sim_config ] m compressed)
                            with
                            | Error ds ->
                              List.map
                                (fun d ->
                                  { d with Ir.Diag.strategy = Some id })
                                ds
                            | Ok [ rc ] ->
                              if rc <> r then
                                [
                                  Ir.Diag.make ~stage:Ir.Diag.Simulation
                                    ~strategy:id
                                    "compressed-trace replay diverged \
                                     from the reference under this map";
                                ]
                              else (
                                (* Soundness oracle: replay the trace
                                   against the abstract-interpretation
                                   claims on conflict-forcing
                                   geometries. *)
                                match
                                  catching Ir.Diag.Simulation (fun () ->
                                      Absint_exp.check_oracle ~strategy:id
                                        p.Placement.Pipeline.program m raw)
                                with
                                | Error ds ->
                                  List.map
                                    (fun d ->
                                      { d with Ir.Diag.strategy = Some id })
                                    ds
                                | Ok ds -> ds)
                            | Ok rs ->
                              [
                                Ir.Diag.make ~stage:Ir.Diag.Simulation
                                  ~strategy:id
                                  "expected 1 replay result, got %d"
                                  (List.length rs);
                              ]))
                    maps))))))))

let first_error ds = match Ir.Diag.errors ds with d :: _ -> Some d | [] -> None

(* Shrink a seed already known to fail with [diags].  The seed
   regenerates the program deterministically, so detection and shrinking
   can run in different places (the parallel campaign detects on worker
   domains and shrinks serially, in seed order). *)
let shrink_failure ~size ?strategies seed diags : failure =
  let ast = Ir.Gen.generate ~size seed in
  let d0 =
    match first_error diags with
    | Some d -> d
    | None -> invalid_arg "Fuzz.shrink_failure: no error-severity diagnostic"
  in
  (* Shrink while the first violation stays in the original stage, so
     the reduction cannot wander into an unrelated failure class. *)
  let still_fails p =
    match first_error (check_program ?strategies p) with
    | Some d -> d.Ir.Diag.stage = d0.Ir.Diag.stage
    | None -> false
  in
  let shrunk, shrink_steps = Ir.Gen.shrink ast ~still_fails in
  {
    seed;
    size;
    diags;
    shrunk;
    shrunk_diags = check_program ?strategies shrunk;
    shrink_steps;
  }

(* Fuzz one seed; [Some failure] if any invariant broke. *)
let run_seed ?(size = 120) ?strategies seed : failure option =
  let ast = Ir.Gen.generate ~size seed in
  let diags = check_program ?strategies ast in
  match first_error diags with
  | None -> None
  | Some _ -> Some (shrink_failure ~size ?strategies seed diags)

(* Human-readable reproducer: the seed regenerates the program
   deterministically; the lowered IR of the shrunk case is printed when
   it still lowers (a Lower-stage failure has only the AST shape). *)
let report_failure ppf (f : failure) =
  Fmt.pf ppf "FAIL seed %d (size %d): %d violation(s)@." f.seed f.size
    (List.length (Ir.Diag.errors f.diags));
  List.iter (fun d -> Fmt.pf ppf "  %a@." Ir.Diag.pp d) f.diags;
  Fmt.pf ppf "minimal reproducer (%d shrink steps, %d function(s)):@."
    f.shrink_steps
    (List.length f.shrunk.Ir.Ast.funcs);
  List.iter (fun d -> Fmt.pf ppf "  %a@." Ir.Diag.pp d) f.shrunk_diags;
  (match catching Ir.Diag.Lower (fun () -> Ir.Lower.program f.shrunk) with
  | Ok prog -> Fmt.pf ppf "%a@." Ir.Pp.program prog
  | Error _ ->
    Fmt.pf ppf "  (does not lower; regenerate the AST with seed %d)@."
      f.seed);
  Fmt.pf ppf "reproduce with: fuzz --seed %d --count 1 --size %d@." f.seed
    f.size

let run_serial ~size ?strategies ~log ~first_seed ~count () : failure list =
  let failures = ref [] in
  for k = 0 to count - 1 do
    let seed = first_seed + k in
    Obs.Metrics.incr seeds_checked;
    (match run_seed ~size ?strategies seed with
    | None -> ()
    | Some f ->
      Obs.Metrics.incr failures_found;
      Obs.Metrics.incr ~by:f.shrink_steps shrink_steps_taken;
      log (Fmt.str "%a" report_failure f);
      failures := f :: !failures);
    if (k + 1) mod 50 = 0 || k = count - 1 then
      log
        (Fmt.str "checked %d/%d programs (seeds %d..%d), %d failure(s)"
           (k + 1) count first_seed (first_seed + k)
           (List.length !failures))
  done;
  List.rev !failures

(* Parallel campaign: detection fans out over the pool (each seed's
   program is regenerated from the seed, so a task depends only on its
   seed), then the failing seeds are shrunk and reported serially in
   seed order — the failure list and every report are identical to the
   serial campaign's; only the progress cadence differs. *)
let run_parallel pool ~size ?strategies ~log ~first_seed ~count () :
    failure list =
  let seeds = List.init count (fun k -> first_seed + k) in
  let failing =
    Placement.Pool.map pool
      (fun seed ->
        Obs.Metrics.incr seeds_checked;
        let ast = Ir.Gen.generate ~size seed in
        let diags = check_program ?strategies ast in
        match first_error diags with
        | None -> None
        | Some _ -> Some (seed, diags))
      seeds
  in
  let failures =
    List.filter_map
      (Option.map (fun (seed, diags) ->
           let f = shrink_failure ~size ?strategies seed diags in
           Obs.Metrics.incr failures_found;
           Obs.Metrics.incr ~by:f.shrink_steps shrink_steps_taken;
           log (Fmt.str "%a" report_failure f);
           f))
      failing
  in
  log
    (Fmt.str "checked %d/%d programs (seeds %d..%d), %d failure(s)" count
       count first_seed
       (first_seed + count - 1)
       (List.length failures));
  failures

(* Fuzz [count] consecutive seeds starting at [first_seed], reporting
   progress through [log]; a multi-lane [pool] parallelizes detection. *)
let run ?(size = 120) ?strategies ?(log = ignore) ?pool ~first_seed ~count
    () : failure list =
  let lanes = match pool with None -> 1 | Some p -> Placement.Pool.lanes p in
  Obs.Span.with_ ~stage:"fuzz"
    ~attrs:
      ([
         ("first_seed", string_of_int first_seed);
         ("count", string_of_int count);
       ]
      @ if lanes > 1 then [ ("lanes", string_of_int lanes) ] else [])
  @@ fun () ->
  match pool with
  | Some pool when lanes > 1 && count > 1 ->
    run_parallel pool ~size ?strategies ~log ~first_seed ~count ()
  | _ -> run_serial ~size ?strategies ~log ~first_seed ~count ()
