(* E5 / Table 5: static and dynamic code sizes — total static bytes,
   effective (executed) static bytes, and the number of dynamic
   instruction accesses in each benchmark's trace. *)

type row = {
  name : string;
  total_static_bytes : int;
  effective_static_bytes : int;
  dynamic_accesses : int;
}

let compute ctx =
  Context.map_entries
    (fun e ->
      let map = Context.optimized_map e in
      {
        name = Context.name e;
        total_static_bytes = map.Placement.Address_map.total_bytes;
        effective_static_bytes = map.Placement.Address_map.effective_bytes;
        dynamic_accesses = Sim.Trace.dyn_insns map (Context.trace e);
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.human r.total_static_bytes;
          Report.Fmtutil.human r.effective_static_bytes;
          Report.Fmtutil.human r.dynamic_accesses;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Table 5: static and dynamic code sizes (paper ranges: total \
       2.8K-55K, effective 2K-34K)"
    ~header:[ "name"; "total static"; "effective static"; "dyn accesses" ]
    ~align:Report.Table.[ L; R; R; R ]
    rows
