(* E10 / section 4.2.4: comparison with previous results.

   The paper compares its direct-mapped-with-placement miss ratios against
   Smith's fully-associative design targets (Table 1) and finds them
   consistently better, averaging about 1/5 of the target.  We reproduce
   that comparison at the 2KB/64B design point, and additionally measure
   what the paper could not: the same programs under a fully associative
   LRU cache with NO placement optimization (original code, natural
   layout) on our own substrate, plus the natural-layout direct-mapped
   baseline that isolates the layout contribution. *)

type row = {
  name : string;
  optimized_direct : float; (* placement + direct-mapped *)
  natural_direct : float; (* inlined program, natural layout *)
  unopt_full : float; (* original program, fully associative LRU *)
  unopt_direct : float; (* original program, natural layout, direct *)
  smith_target : float option;
}

let cache_size = 2048
let block_size = 64

let direct = Icache.Config.make ~size:cache_size ~block:block_size ()

let full =
  Icache.Config.make ~size:cache_size ~block:block_size
    ~assoc:Icache.Config.Full ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let trace = Context.trace e in
      let original_trace = Context.original_trace e in
      let miss config map t =
        (Context.simulate e config map t).Sim.Driver.miss_ratio
      in
      {
        name = Context.name e;
        optimized_direct = miss direct (Context.optimized_map e) trace;
        natural_direct = miss direct (Context.natural_map e) trace;
        unopt_full = miss full (Context.original_map e) original_trace;
        unopt_direct = miss direct (Context.original_map e) original_trace;
        smith_target =
          Paper.smith_miss_ratio ~cache_size ~block_size;
      })
    ctx

let mean f rows =
  match rows with
  | [] -> 0.
  | _ ->
    List.fold_left (fun acc r -> acc +. f r) 0. rows
    /. float_of_int (List.length rows)

let table ctx =
  let rows = compute ctx in
  let body =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct r.optimized_direct;
          Report.Fmtutil.pct r.natural_direct;
          Report.Fmtutil.pct r.unopt_direct;
          Report.Fmtutil.pct r.unopt_full;
          (match r.smith_target with
          | Some t -> Report.Fmtutil.pct t
          | None -> "-");
        ])
      rows
  in
  let avg =
    [
      "AVERAGE";
      Report.Fmtutil.pct (mean (fun r -> r.optimized_direct) rows);
      Report.Fmtutil.pct (mean (fun r -> r.natural_direct) rows);
      Report.Fmtutil.pct (mean (fun r -> r.unopt_direct) rows);
      Report.Fmtutil.pct (mean (fun r -> r.unopt_full) rows);
      (match Paper.smith_miss_ratio ~cache_size ~block_size with
      | Some t -> Report.Fmtutil.pct t
      | None -> "-");
    ]
  in
  Report.Table.make
    ~title:
      "Comparison (sec 4.2.4) at 2KB/64B: miss ratios of placement + \
       direct-mapped vs unoptimized baselines and Smith's fully \
       associative design target"
    ~header:
      [ "name"; "opt direct"; "natural direct"; "unopt direct";
        "unopt full-LRU"; "Smith target" ]
    ~align:Report.Table.[ L; R; R; R; R; R ]
    (body @ [ avg ])
