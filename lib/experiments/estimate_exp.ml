(* E14: analytical estimation vs trace-driven simulation (the paper's §5
   third research direction).

   The estimator predicts the miss ratio from the profile weights and the
   address map alone; the simulator measures it on the held-out trace
   input.  The paper's conjecture: with few mapping conflicts the
   approximation is close — which would let a compiler search the design
   space over "billions of dynamic accesses" without tracing. *)

type row = {
  name : string;
  estimated : float;
  simulated : float;
  compulsory : int;
  conflict : int;
}

let config = Icache.Config.make ~size:2048 ~block:64 ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let pl = Context.pipeline e in
      let est = Sim.Estimate.of_pipeline config pl in
      let sim =
        Context.simulate e config (Context.optimized_map e) (Context.trace e)
      in
      {
        name = Context.name e;
        estimated = est.Sim.Estimate.est_miss_ratio;
        simulated = sim.Sim.Driver.miss_ratio;
        compulsory = est.Sim.Estimate.compulsory;
        conflict = est.Sim.Estimate.conflict;
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct ~digits:3 r.estimated;
          Report.Fmtutil.pct ~digits:3 r.simulated;
          string_of_int r.compulsory;
          string_of_int r.conflict;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Estimation vs simulation (sec 5 outlook) at 2KB/64B: profile-only \
       analytical miss ratio vs trace-driven measurement"
    ~header:[ "name"; "estimated"; "simulated"; "compulsory"; "conflict" ]
    ~align:Report.Table.[ L; R; R; R; R ]
    rows
