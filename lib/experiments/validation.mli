(** Experiment-level invariant verifier: runs the placement-layer checks
    ({!Placement.Validate}) over a context entry and adds the sim-layer
    cross-checks — the dynamic instruction count of the recorded trace
    is invariant across every registered layout strategy, and a cache
    simulation accesses exactly that many instructions.

    Degradation warnings recorded on the entry (strategies that raised
    and fell back to the natural layout) are included in the returned
    list, so callers see them alongside hard violations. *)

type level = Placement.Validate.level = Cheap | Full

val check_entry : ?level:level -> Context.entry -> Ir.Diag.t list
(** Validate one benchmark entry.  [Cheap] (default) covers structure,
    trace selection, layouts, every strategy's address map, and trace
    layout-invariance; [Full] adds profile flow conservation and the
    simulation access-count cross-check. *)

val check : ?level:level -> Context.t -> Ir.Diag.t list
(** {!check_entry} over every entry of the context. *)
