(* Run every experiment in paper order. *)

type spec = {
  id : string;
  title : string;
  table : Context.t -> Report.Table.t;
}

let all : spec list =
  [
    { id = "1"; title = "Smith design targets"; table = (fun _ -> Table1.table ()) };
    { id = "2"; title = "Profile results"; table = Table2.table };
    { id = "3"; title = "Inline expansion"; table = Table3.table };
    { id = "4"; title = "Trace selection"; table = Table4.table };
    { id = "5"; title = "Static/dynamic code sizes"; table = Table5.table };
    { id = "6"; title = "Cache size sweep"; table = Table6.table };
    { id = "7"; title = "Block size sweep"; table = Table7.table };
    { id = "8"; title = "Sectoring and partial loading"; table = Table8.table };
    { id = "9"; title = "Code scaling"; table = Table9.table };
    { id = "10"; title = "Comparison with previous results"; table = Comparison.table };
    { id = "11"; title = "Miss-penalty timing ablation"; table = Timing_exp.table };
    { id = "12"; title = "Inline-vs-layout ablation"; table = Ablation.table };
    { id = "13"; title = "Instruction paging"; table = Paging_exp.table };
    { id = "14"; title = "Analytical estimation vs simulation"; table = Estimate_exp.table };
    { id = "15"; title = "Associativity sweep"; table = Assoc_exp.table };
    { id = "16"; title = "Next-line prefetch ablation"; table = Prefetch_exp.table };
    { id = "17"; title = "Layout strategy comparison"; table = Strategy_exp.table };
    (* E18 is the streaming/compressed-trace infrastructure study in
       EXPERIMENTS.md; it has no table of its own. *)
    { id = "19"; title = "Static cache bounds vs simulation"; table = Absint_exp.table };
  ]

exception Unknown_experiment of string

(* Mnemonic aliases accepted anywhere an experiment id is. *)
let aliases =
  [
    ("strategy-comparison", "17");
    ("strategies", "17");
    ("comparison", "10");
    ("absint", "19");
    ("bounds", "19");
  ]

let find id =
  let id =
    match List.assoc_opt id aliases with Some id -> id | None -> id
  in
  match List.find_opt (fun s -> s.id = id) all with
  | Some s -> s
  | None -> raise (Unknown_experiment id)

(* One regenerated table with its provenance: the structured rows (for
   machine-readable reports), the wall time, and the degradation
   warnings first recorded while it was built.  Warnings themselves are
   surfaced the moment they occur through [Obs.Log] (see
   [Context.strategy_map]) — they used to be appended to the rendered
   table body, which delayed them until the table flushed. *)
type outcome = {
  spec : spec;
  table : Report.Table.t;
  wall_seconds : float;
  fresh_warnings : Ir.Diag.t list;
      (* warnings newly recorded while this table was built *)
}

let run_spec ctx spec =
  let counts () =
    List.map
      (fun e -> List.length (Context.warnings e))
      (Context.entries ctx)
  in
  let before = counts () in
  let t0 = Obs.Clock.now () in
  let table =
    Obs.Span.with_ ~stage:"table"
      ~attrs:[ ("id", spec.id); ("title", spec.title) ]
      (fun () -> spec.table ctx)
  in
  let wall_seconds = Obs.Clock.now () -. t0 in
  let fresh_warnings =
    List.concat
      (List.map2
         (fun e n -> List.filteri (fun i _ -> i >= n) (Context.warnings e))
         (Context.entries ctx) before)
  in
  { spec; table; wall_seconds; fresh_warnings }

let run_one ctx spec = Report.Table.render (run_spec ctx spec).table

let run_all ctx =
  String.concat "\n" (List.map (fun spec -> run_one ctx spec) all)
