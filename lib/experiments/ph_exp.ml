(* E17: layout-algorithm comparison — IMPACT placement (this paper) vs
   Pettis-Hansen chain positioning (its PLDI 1990 follow-on) vs the
   natural layout, all over the same inlined program, at 2KB/64B
   direct-mapped. *)

type row = {
  name : string;
  natural : float;
  impact : float;
  ph : float;
  natural_traffic : float;
  impact_traffic : float;
  ph_traffic : float;
}

let config = Icache.Config.make ~size:2048 ~block:64 ()

let compute ctx =
  List.map
    (fun e ->
      let trace = Context.trace e in
      let run map = Context.simulate e config map trace in
      let natural = run (Context.natural_map e) in
      let impact = run (Context.optimized_map e) in
      let ph = run (Context.ph_map e) in
      {
        name = Context.name e;
        natural = natural.Sim.Driver.miss_ratio;
        impact = impact.Sim.Driver.miss_ratio;
        ph = ph.Sim.Driver.miss_ratio;
        natural_traffic = natural.Sim.Driver.traffic_ratio;
        impact_traffic = impact.Sim.Driver.traffic_ratio;
        ph_traffic = ph.Sim.Driver.traffic_ratio;
      })
    (Context.entries ctx)

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct r.natural;
          Report.Fmtutil.pct r.impact;
          Report.Fmtutil.pct r.ph;
          Report.Fmtutil.pct r.natural_traffic;
          Report.Fmtutil.pct r.impact_traffic;
          Report.Fmtutil.pct r.ph_traffic;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Layout algorithms at 2KB/64B (same inlined program): natural vs \
       IMPACT placement vs Pettis-Hansen"
    ~header:
      [ "name"; "nat miss"; "impact miss"; "p-h miss"; "nat traffic";
        "impact traffic"; "p-h traffic" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R ]
    rows
