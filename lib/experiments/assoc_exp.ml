(* E15: set-associativity sweep.

   Przybylski (cited in the paper's §2.1) showed associativity is not
   free: it pays for itself only when it saves more misses than its cycle
   -time cost.  The paper's position is that placement makes a
   direct-mapped cache good enough.  This sweep quantifies how little is
   left on the table: miss ratios at 2KB/64B for 1/2/4-way and fully
   associative caches under the optimized layout, and direct-mapped under
   the natural layout for contrast. *)

type row = {
  name : string;
  nat_direct : float;
  direct : float;
  way2 : float;
  way4 : float;
  full : float;
}

let at assoc = Icache.Config.make ~assoc ~size:2048 ~block:64 ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let trace = Context.trace e in
      let opt = Context.optimized_map e in
      (* All four associativities of the optimized map share one pass. *)
      ignore
        (Context.simulate_many e
           (List.map at
              [
                Icache.Config.Direct; Icache.Config.Ways 2;
                Icache.Config.Ways 4; Icache.Config.Full;
              ])
           opt trace);
      let miss assoc map =
        (Context.simulate e (at assoc) map trace).Sim.Driver.miss_ratio
      in
      {
        name = Context.name e;
        nat_direct = miss Icache.Config.Direct (Context.natural_map e);
        direct = miss Icache.Config.Direct opt;
        way2 = miss (Icache.Config.Ways 2) opt;
        way4 = miss (Icache.Config.Ways 4) opt;
        full = miss Icache.Config.Full opt;
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct r.nat_direct;
          Report.Fmtutil.pct r.direct;
          Report.Fmtutil.pct r.way2;
          Report.Fmtutil.pct r.way4;
          Report.Fmtutil.pct r.full;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Associativity sweep at 2KB/64B: what set-associativity adds once \
       placement has done its work"
    ~header:
      [ "name"; "direct (natural)"; "direct"; "2-way"; "4-way"; "full" ]
    ~align:Report.Table.[ L; R; R; R; R; R ]
    rows
