(* E4 / Table 4: trace selection results — classification of dynamic
   control transfers against the selected traces, and the mean number of
   basic blocks per (executed) trace. *)

type row = {
  name : string;
  neutral : float;
  undesirable : float;
  desirable : float;
  trace_length : float;
}

(* Mean basic blocks per nonzero-weight trace, across all functions. *)
let mean_trace_length (p : Placement.Pipeline.t) =
  let total_blocks = ref 0 in
  let total_traces = ref 0 in
  Array.iteri
    (fun fid sel ->
      let w = Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid in
      Array.iter
        (fun trace ->
          if Placement.Trace_select.trace_weight w trace > 0 then begin
            total_blocks := !total_blocks + Array.length trace;
            incr total_traces
          end)
        sel.Placement.Trace_select.traces)
    p.Placement.Pipeline.selections;
  if !total_traces = 0 then 0.
  else float_of_int !total_blocks /. float_of_int !total_traces

let compute ctx =
  Context.map_entries
    (fun e ->
      let p = Context.pipeline e in
      let counts =
        Sim.Classify.run p.Placement.Pipeline.program
          p.Placement.Pipeline.selections
          (Workloads.Bench.trace_input e.Context.bench)
      in
      {
        name = Context.name e;
        neutral = Sim.Classify.fraction counts.Sim.Classify.neutral counts;
        undesirable =
          Sim.Classify.fraction counts.Sim.Classify.undesirable counts;
        desirable =
          Sim.Classify.fraction counts.Sim.Classify.desirable counts;
        trace_length = mean_trace_length p;
      })
    ctx

let table ctx =
  let paper_of name =
    List.find_opt (fun r -> r.Paper.t4_name = name) Paper.table4
  in
  let rows =
    List.map
      (fun r ->
        let paper =
          match paper_of r.name with
          | Some p ->
            [
              Printf.sprintf "%.1f%%" p.Paper.t4_desirable;
              Printf.sprintf "%.1f" p.Paper.t4_trace_length;
            ]
          | None -> [ "-"; "-" ]
        in
        [
          r.name;
          Report.Fmtutil.pct r.neutral;
          Report.Fmtutil.pct r.undesirable;
          Report.Fmtutil.pct r.desirable;
          Report.Fmtutil.f1 r.trace_length;
        ]
        @ paper)
      (compute ctx)
  in
  Report.Table.make
    ~title:"Table 4: trace selection results (measured | paper)"
    ~header:
      [ "name"; "neutral"; "undesirable"; "desirable"; "trace len";
        "paper:des"; "paper:len" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R ]
    rows
