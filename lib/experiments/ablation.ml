(* E12: design-choice ablation (beyond the paper).

   The paper argues inlining and layout cooperate: inlining enlarges
   function bodies so trace selection and intra-function layout can do the
   heavy lifting, and removes inter-function conflicts.  This experiment
   separates the contributions at the 2KB/64B design point:

   - baseline:      original program, natural layout;
   - layout only:   trace selection + layout without inline expansion;
   - inline only:   inlined program, natural layout;
   - full pipeline: inlining + placement. *)

type row = {
  name : string;
  baseline : float;
  layout_only : float;
  inline_only : float;
  full : float;
}

let config = Icache.Config.make ~size:2048 ~block:64 ()

let compute ctx =
  Context.map_entries
    (fun e ->
      let miss map trace =
        (Context.simulate e config map trace).Sim.Driver.miss_ratio
      in
      let trace = Context.trace e in
      let original_trace = Context.original_trace e in
      let no_inline = Context.pipeline_noinline e in
      {
        name = Context.name e;
        baseline = miss (Context.original_map e) original_trace;
        layout_only =
          miss no_inline.Placement.Pipeline.optimized original_trace;
        inline_only = miss (Context.natural_map e) trace;
        full = miss (Context.optimized_map e) trace;
      })
    ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.name;
          Report.Fmtutil.pct r.baseline;
          Report.Fmtutil.pct r.layout_only;
          Report.Fmtutil.pct r.inline_only;
          Report.Fmtutil.pct r.full;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Ablation at 2KB/64B: miss ratio contribution of inline expansion \
       vs layout"
    ~header:[ "name"; "baseline"; "layout only"; "inline only"; "full" ]
    ~align:Report.Table.[ L; R; R; R; R ]
    rows
