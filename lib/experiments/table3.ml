(* E3 / Table 3: inline expansion results — static code increase, dynamic
   calls eliminated, and dynamic instructions / control transfers executed
   per remaining function call.

   Note: the paper's tee row counts read/write system calls as function
   calls; our system calls are VM intrinsics outside the call graph, so a
   benchmark with no real calls reports "-". *)

type row = {
  name : string;
  code_inc : float; (* fraction, e.g. 0.17 *)
  call_dec : float; (* fraction of dynamic calls eliminated *)
  di_per_call : float option;
  ct_per_call : float option;
  sites : int;
}

let compute ctx =
  Context.map_entries
    (fun e ->
      let p = Context.pipeline e in
      let before = p.Placement.Pipeline.original_profile in
      let after = p.Placement.Pipeline.profile in
      let calls_before = before.Vm.Profile.dyn_calls in
      let calls_after = after.Vm.Profile.dyn_calls in
      let per denom n =
        if denom = 0 then None
        else Some (float_of_int n /. float_of_int denom)
      in
      {
        name = Context.name e;
        code_inc = Placement.Inline.code_increase p.Placement.Pipeline.inline_report;
        call_dec =
          (if calls_before = 0 then 0.
           else
             float_of_int (calls_before - calls_after)
             /. float_of_int calls_before);
        di_per_call = per calls_after after.Vm.Profile.dyn_insns;
        ct_per_call = per calls_after after.Vm.Profile.dyn_branches;
        sites = p.Placement.Pipeline.inline_report.Placement.Inline.sites_inlined;
      })
    ctx

let table ctx =
  let paper_of name =
    List.find_opt (fun r -> r.Paper.t3_name = name) Paper.table3
  in
  let fopt = function
    | Some x -> Printf.sprintf "%.0f" x
    | None -> "-"
  in
  let rows =
    List.map
      (fun r ->
        let paper =
          match paper_of r.name with
          | Some p ->
            [
              (match p.Paper.t3_code_inc with
              | Some x -> Printf.sprintf "%.0f%%" x
              | None -> "?");
              (match p.Paper.t3_call_dec with
              | Some x -> Printf.sprintf "%.0f%%" x
              | None -> "?");
            ]
          | None -> [ "-"; "-" ]
        in
        [
          r.name;
          string_of_int r.sites;
          Report.Fmtutil.pct0 r.code_inc;
          Report.Fmtutil.pct0 r.call_dec;
          fopt r.di_per_call;
          fopt r.ct_per_call;
        ]
        @ paper)
      (compute ctx)
  in
  Report.Table.make
    ~title:"Table 3: inline expansion results (measured | paper)"
    ~header:
      [ "name"; "sites"; "code inc"; "call dec"; "DI/call"; "CT/call";
        "paper:inc"; "paper:dec" ]
    ~align:Report.Table.[ L; R; R; R; R; R; R; R ]
    rows
