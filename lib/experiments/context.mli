(** Shared experiment context: per benchmark, the placement pipeline, the
    recorded traces, derived address maps (one memoized table covering
    every registered layout strategy), and memoized cache simulation
    results — computed lazily and at most once, since every table draws
    on the same artifacts. *)

type cached = { result : Sim.Driver.result; mutable last_used : int }
(** A memoized simulation result with its LRU stamp. *)

type entry = {
  bench : Workloads.Bench.t;
  lock : Mutex.t;  (** guards every mutable/lazy field of the entry *)
  memo_cap : int option;
      (** LRU bound on memoized simulation results; [None] = unbounded *)
  strategy_cap : int option;  (** LRU bound on memoized strategy maps *)
  mutable memo_tick : int;
  mutable memo_evicted : int;
      (** memo + strategy-map evictions in this entry; unlike the global
          {!memo_evictions} counter this is per-context state, live even
          with the metrics registry off — what a resident service
          reports in its own stats *)
  pipeline : Placement.Pipeline.t Lazy.t;
  pipeline_noinline : Placement.Pipeline.t Lazy.t;
  trace : Sim.Trace.t Lazy.t;
  original_trace : Sim.Trace.t Lazy.t;
  lazy_original_map : Placement.Address_map.t Lazy.t;
  mutable strategy_maps : (string * Placement.Address_map.t) list;
  mutable warnings : Ir.Diag.t list;
  mutable scaled_maps : (float * Placement.Address_map.t) list;
  mutable map_ids : (Placement.Address_map.t * int) list;
  mutable trace_ids : (Sim.Trace.t * int) list;
  sim_cache : (int * int * Icache.Config.t, cached) Hashtbl.t;
}

type t = entry list

val create :
  ?engine:Sim.Trace.engine ->
  ?scale:int ->
  ?memo_cap:int ->
  ?strategy_cap:int ->
  ?names:string list ->
  unit ->
  t
(** Default: the full ten-benchmark suite at scale 1, recording traces
    with the [Streaming] engine (born-compressed store; [Buffered] is
    the raw reference representation — results are bit-identical either
    way).  [scale] > 1 substitutes the scaled-up workload variants of
    {!Workloads.Registry.suite}.

    [memo_cap] / [strategy_cap] (default unbounded, right for one-shot
    CLI runs) bound the per-entry simulation memo and strategy-map
    tables with LRU eviction — what a long-running service sets so its
    resident contexts cannot grow without bound.  Evictions are counted
    in {!memo_evictions}.  Both must be [>= 1] ([Invalid_argument]
    otherwise). *)

val entries : t -> entry list

val map_entries : (entry -> 'a) -> t -> 'a list
(** [List.map f (entries t)], fanned out across the default
    {!Placement.Pool} when one with more than one lane is set.  Results
    come back in entry order, and every memoized getter is safe to call
    from [f] on any domain (each entry serializes its own construction
    behind a mutex), so experiments built on this are bit-identical to
    their serial runs. *)

val find : t -> string -> entry
(** Raises [Workloads.Registry.Unknown_benchmark]. *)

val name : entry -> string
val pipeline : entry -> Placement.Pipeline.t
val pipeline_noinline : entry -> Placement.Pipeline.t
val trace : entry -> Sim.Trace.t
val original_trace : entry -> Sim.Trace.t
val optimized_map : entry -> Placement.Address_map.t
val natural_map : entry -> Placement.Address_map.t

val original_map : entry -> Placement.Address_map.t
(** Natural layout of the pre-inlining program: the fully unoptimized
    baseline.  Memoized. *)

val strategy_map : entry -> Placement.Strategy.t -> Placement.Address_map.t
(** Address map of the inlined program under a registered layout
    strategy, via {!Placement.Pipeline.map_for}.  Memoized per strategy
    id; for {!Placement.Strategy.impact} / {!Placement.Strategy.natural}
    the returned map is physically the pipeline's own.

    A strategy that raises never aborts the caller: the failure is
    recorded as a [Strategy]-stage warning on the entry and the natural
    layout is substituted — check {!fell_back} / {!warnings}. *)

val warnings : entry -> Ir.Diag.t list
(** Degradation warnings recorded so far, oldest first. *)

val fell_back : entry -> string -> bool
(** [fell_back e id]: did {!strategy_map} substitute the natural layout
    for strategy [id] because it raised? *)

val scaled_map : entry -> float -> Placement.Address_map.t
(** Address map for the code-scaling experiment (Table 9): the inlined
    program scaled by the factor and re-laid-out with the same trace
    selection and orderings.  Memoized per factor. *)

val simulate :
  entry ->
  Icache.Config.t ->
  Placement.Address_map.t ->
  Sim.Trace.t ->
  Sim.Driver.result
(** Trace-driven simulation, memoized per (map, trace, config) in a
    hashtable keyed on interned map/trace ids: design points shared
    between tables are simulated exactly once and lookups stay O(1) no
    matter how many results accumulate.  Maps and traces are keyed by
    physical identity — use the memoized getters above so repeated calls
    share one map. *)

val simulate_many :
  entry ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Sim.Trace.t ->
  Sim.Driver.result list
(** Like {!simulate} for several configurations at once: every uncached
    configuration is simulated in a single pass over the trace via
    {!Sim.Driver.simulate_many}. *)

(** {2 Telemetry} *)

val memo_hits : Obs.Metrics.counter
(** Simulation results served from the memo table. *)

val memo_misses : Obs.Metrics.counter
(** Simulation cache misses (filled by the single-pass engine). *)

val strategy_fallbacks : Obs.Metrics.counter
(** Strategies that raised and degraded to the natural layout. *)

val memo_evictions : Obs.Metrics.counter
(** Memoized simulation results and strategy maps dropped by the LRU
    caps. *)
