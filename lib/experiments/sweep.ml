(* Shared machinery for the cache-sweep tables (6, 7, 9): simulate each
   benchmark's trace under a list of configurations and render miss and
   traffic ratios side by side with the paper's numbers. *)

type cell = { miss : float; traffic : float }

type row = { name : string; cells : cell list }

let simulate_entry configs map_of e =
  let trace = Context.trace e in
  let pairs = List.map (fun config -> (config, map_of e config)) configs in
  (* Warm the context's result cache one map at a time, so that all
     configurations sharing a map run in a single pass over the trace. *)
  let distinct_maps =
    List.fold_left
      (fun acc (_, map) -> if List.memq map acc then acc else map :: acc)
      [] pairs
  in
  List.iter
    (fun map ->
      let cs =
        List.filter_map
          (fun (c, m) -> if m == map then Some c else None)
          pairs
      in
      ignore (Context.simulate_many e cs map trace))
    distinct_maps;
  {
    name = Context.name e;
    cells =
      List.map
        (fun (config, map) ->
          let r = Context.simulate e config map trace in
          { miss = r.Sim.Driver.miss_ratio; traffic = r.Sim.Driver.traffic_ratio })
        pairs;
  }

let compute ctx configs ~map_of =
  Context.map_entries (simulate_entry configs map_of) ctx

(* Render measured next to paper values: each sweep point becomes two
   columns "miss" and "traffic", each cell "measured (paper)". *)
let render ~title ~point_names ~paper rows =
  let header =
    "name"
    :: List.concat_map (fun p -> [ p ^ " miss"; p ^ " traffic" ]) point_names
  in
  let body =
    List.map
      (fun r ->
        let paper_cells = Paper.lookup_mt paper r.name in
        let cells =
          List.mapi
            (fun idx c ->
              let p =
                match paper_cells with
                | Some l when idx < List.length l -> Some (List.nth l idx)
                | Some _ | None -> None
              in
              let fmt measured paper_value =
                match paper_value with
                | Some p -> Printf.sprintf "%s (%.2f%%)" (Report.Fmtutil.pct measured) p
                | None -> Report.Fmtutil.pct measured
              in
              [
                fmt c.miss (Option.map fst p);
                fmt c.traffic (Option.map snd p);
              ])
            r.cells
        in
        r.name :: List.concat cells)
      rows
  in
  let align =
    Report.Table.L :: List.concat_map (fun _ -> Report.Table.[ R; R ]) point_names
  in
  Report.Table.make ~title ~header ~align body
