(* E19: static cache-state bounds vs the heuristic estimate vs the
   simulated truth, plus the [impact absint] CLI backend and the
   fuzzer's soundness oracle.

   Three predictors for every (benchmark, strategy, config):

   - the paper-§5 heuristic ([Sim.Estimate], profile arithmetic);
   - the certified interval [lo, hi] from [Analysis.Absint], evaluated
     with exact block counts and loop-entry counts taken from the same
     trace the simulator replays, so "simulated inside [lo, hi]" is a
     soundness theorem and not a sampling accident;
   - the trace-driven simulation itself.

   The oracle replays a trace against a fresh cache and checks every
   per-access claim (always-hit never misses, always-miss never hits,
   first-miss at most once per scope entry) plus interval membership —
   the fuzzer runs it on every generated program. *)

open Analysis

let default_configs =
  [
    Icache.Config.make ~size:2048 ~block:64 ();
    Icache.Config.make ~size:8192 ~block:64 ();
    Icache.Config.make ~size:4096 ~block:64 ~assoc:(Ways 2) ();
  ]

let default_config = List.hd default_configs

(* ------------------------------------------------------------------ *)
(* Shared JSON pieces (schema impact.absint/v1)                        *)
(* ------------------------------------------------------------------ *)

let interval_json (iv : Absint.interval) =
  let ratio n =
    if iv.Absint.fetches = 0 then 0.
    else float_of_int n /. float_of_int iv.Absint.fetches
  in
  Obs.Json.Obj
    [
      ("lo", Obs.Json.Int iv.Absint.lo);
      ("hi", Obs.Json.Int iv.Absint.hi);
      ("accesses", Obs.Json.Int iv.Absint.accesses);
      ("fetches", Obs.Json.Int iv.Absint.fetches);
      ("miss_ratio_lo", Obs.Json.Float (ratio iv.Absint.lo));
      ("miss_ratio_hi", Obs.Json.Float (ratio iv.Absint.hi));
      ( "weighted",
        Obs.Json.Obj
          [
            ("always_hit", Obs.Json.Int iv.Absint.w_hit);
            ("always_miss", Obs.Json.Int iv.Absint.w_miss);
            ("first_miss", Obs.Json.Int iv.Absint.w_first);
            ("unclassified", Obs.Json.Int iv.Absint.w_unknown);
          ] );
    ]

let totals_json (tot : Absint.totals) =
  Obs.Json.Obj
    [
      ("always_hit", Obs.Json.Int tot.Absint.t_hit);
      ("always_miss", Obs.Json.Int tot.Absint.t_miss);
      ("first_miss", Obs.Json.Int tot.Absint.t_first);
      ("unclassified", Obs.Json.Int tot.Absint.t_unknown);
      ("accesses", Obs.Json.Int tot.Absint.t_accesses);
      ("blocks", Obs.Json.Int tot.Absint.t_blocks);
      ("blocks_classified", Obs.Json.Int tot.Absint.t_blocks_classified);
    ]

(* ------------------------------------------------------------------ *)
(* impact absint: simulation-free, profile-weighted                    *)
(* ------------------------------------------------------------------ *)

type result = {
  bench : string;
  strategy : Placement.Strategy.t;
  fell_back : bool;
  config : Icache.Config.t;
  totals : Absint.totals;
  certified : Absint.interval;  (* under the profile weights *)
  gated : string option;
  consistent : bool;
  scopes : int;
  must_iterations : int;
  may_iterations : int;
}

let analyze_entry ?max_iters ~config e (s : Placement.Strategy.t) : result =
  let id = s.Placement.Strategy.id in
  let p = Context.pipeline e in
  let map = Context.strategy_map e s in
  let prog = p.Placement.Pipeline.program in
  let profile = p.Placement.Pipeline.profile in
  let t = Absint.analyze ?max_iters config map prog in
  let weights fid = Placement.Weight.cfg_of_profile profile fid in
  let certified =
    Absint.interval t
      ~counts:(fun fid l -> (weights fid).Placement.Weight.block l)
      ~entries:(Absint.profile_entries t ~weights)
  in
  {
    bench = Context.name e;
    strategy = s;
    fell_back = Context.fell_back e id;
    config;
    totals = Absint.totals t;
    certified;
    gated = t.Absint.gated;
    consistent = t.Absint.consistent;
    scopes = Array.length t.Absint.scopes;
    must_iterations = t.Absint.must_iterations;
    may_iterations = t.Absint.may_iterations;
  }

(* Per-entry strategy sweeps fan out across the default pool, like the
   lint sweep; results come back in registry order either way. *)
let sweep ?max_iters ?(config = default_config)
    ?(strategies = Placement.Strategy.all) ctx =
  List.concat
  @@ Context.map_entries
       (fun e ->
         Obs.Span.with_ ~stage:"absint-exp"
           ~attrs:[ ("bench", Context.name e) ]
         @@ fun () ->
         List.map (fun s -> analyze_entry ?max_iters ~config e s) strategies)
       ctx

let strategy_cell r =
  let id = r.strategy.Placement.Strategy.id in
  if r.fell_back then id ^ " (fallback: natural)" else id

let summary r =
  let tot = r.totals in
  Printf.sprintf
    "%s/%s at %s: %d/%d blocks fully classified (AH=%d AM=%d FM=%d \
     UNK=%d)  certified misses [%d, %d] of %d weighted fetches%s"
    r.bench (strategy_cell r)
    (Icache.Config.describe r.config)
    tot.Absint.t_blocks_classified tot.Absint.t_blocks tot.Absint.t_hit
    tot.Absint.t_miss tot.Absint.t_first tot.Absint.t_unknown
    r.certified.Absint.lo r.certified.Absint.hi r.certified.Absint.fetches
    (match r.gated with
    | Some reason -> Printf.sprintf "  [gated: %s]" reason
    | None -> "")

let result_json r =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("strategy", Obs.Json.String r.strategy.Placement.Strategy.id);
      ("fell_back", Obs.Json.Bool r.fell_back);
      ("config", Obs.Json.String (Icache.Config.describe r.config));
      ( "gated",
        match r.gated with
        | Some reason -> Obs.Json.String reason
        | None -> Obs.Json.Null );
      ("consistent", Obs.Json.Bool r.consistent);
      ("scopes", Obs.Json.Int r.scopes);
      ( "iterations",
        Obs.Json.Obj
          [
            ("must", Obs.Json.Int r.must_iterations);
            ("may", Obs.Json.Int r.may_iterations);
          ] );
      ("classes", totals_json r.totals);
      ("certified", interval_json r.certified);
    ]

let report_json ~results =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "impact.absint/v1");
      ("results", Obs.Json.List (List.map result_json results));
    ]

(* ------------------------------------------------------------------ *)
(* E19 table: bounds vs estimate vs simulation                         *)
(* ------------------------------------------------------------------ *)

type row = {
  r_bench : string;
  r_strategy : string;
  r_config : string;
  r_est : float;  (* heuristic miss-ratio estimate *)
  r_lo : float;  (* certified miss-ratio bounds *)
  r_hi : float;
  r_sim : float;  (* simulated miss ratio *)
  r_within : bool;  (* simulated misses inside [lo, hi] *)
  r_classified : string;  (* fully classified blocks / reachable *)
}

let compute ?(configs = default_configs)
    ?(strategies = Placement.Strategy.all) ctx =
  List.concat
  @@ Context.map_entries
       (fun e ->
         Obs.Span.with_ ~stage:"absint-exp"
           ~attrs:[ ("bench", Context.name e) ]
         @@ fun () ->
         let p = Context.pipeline e in
         let prog = p.Placement.Pipeline.program in
         let profile = p.Placement.Pipeline.profile in
         let trace = Context.trace e in
         List.concat_map
           (fun (s : Placement.Strategy.t) ->
             let id = s.Placement.Strategy.id in
             let map = Context.strategy_map e s in
             let est_of config =
               Sim.Estimate.estimate config map
                 ~block_weight:(Vm.Profile.block_weight profile)
                 ~func_entries:(Vm.Profile.func_weight profile)
             in
             List.map
               (fun config ->
                 let t = Absint.analyze config map prog in
                 let k = Absint.tracker t in
                 Sim.Trace.iter_blocks (fun fid l -> Absint.track k fid l)
                   trace;
                 let iv =
                   Absint.interval t ~counts:(Absint.tracked_counts k)
                     ~entries:(Absint.tracked_entries k)
                 in
                 let r = Context.simulate e config map trace in
                 let tot = Absint.totals t in
                 let ratio n =
                   if r.Sim.Driver.accesses = 0 then 0.
                   else float_of_int n /. float_of_int r.Sim.Driver.accesses
                 in
                 {
                   r_bench = Context.name e;
                   r_strategy =
                     (if Context.fell_back e id then
                        id ^ " (fallback: natural)"
                      else id);
                   r_config = Icache.Config.describe config;
                   r_est = (est_of config).Sim.Estimate.est_miss_ratio;
                   r_lo = ratio iv.Absint.lo;
                   r_hi = ratio iv.Absint.hi;
                   r_sim = r.Sim.Driver.miss_ratio;
                   r_within =
                     r.Sim.Driver.misses >= iv.Absint.lo
                     && r.Sim.Driver.misses <= iv.Absint.hi;
                   r_classified =
                     Printf.sprintf "%d/%d" tot.Absint.t_blocks_classified
                       tot.Absint.t_blocks;
                 })
               configs)
           strategies)
       ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.r_bench;
          r.r_strategy;
          r.r_config;
          Report.Fmtutil.pct r.r_est;
          Report.Fmtutil.pct r.r_lo;
          Report.Fmtutil.pct r.r_sim;
          Report.Fmtutil.pct r.r_hi;
          (if r.r_within then "yes" else "NO");
          r.r_classified;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Static cache bounds vs simulation: per (benchmark x strategy x \
       config), the paper-S5 heuristic estimate, the certified miss-ratio \
       interval [lo, hi] from must/may/persistence abstract \
       interpretation (trace-exact counts), and the simulated truth — \
       sound iff every simulated ratio sits inside its interval"
    ~header:
      [ "bench"; "strategy"; "config"; "est"; "cert lo"; "sim"; "cert hi";
        "within"; "classified" ]
    ~align:Report.Table.[ L; L; L; R; R; R; R; L; R ]
    rows

(* ------------------------------------------------------------------ *)
(* Differential soundness oracle                                       *)
(* ------------------------------------------------------------------ *)

(* Replays [trace] against a fresh cache under every configuration and
   turns any violated claim into a [Simulation]-stage error diag: the
   fuzzer treats these like any other differential failure, so a
   shrinker can carry the violation down to a minimal program. *)
let oracle_configs =
  [
    Icache.Config.make ~size:512 ~block:16 ();
    Icache.Config.make ~size:512 ~block:16 ~assoc:(Ways 2) ();
  ]

let check_oracle ?(configs = oracle_configs) ~strategy
    (prog : Ir.Prog.program) (map : Placement.Address_map.t)
    (trace : Sim.Trace.t) : Ir.Diag.t list =
  let diags = ref [] in
  let fail fmt =
    Fmt.kstr
      (fun message ->
        diags :=
          Ir.Diag.make ~severity:Ir.Diag.Error ~stage:Ir.Diag.Simulation
            ~strategy "%s" message
          :: !diags)
      fmt
  in
  List.iter
    (fun config ->
      let t = Absint.analyze config map prog in
      if not t.Absint.consistent then
        fail "absint oracle: inconsistent domains at %s (must-hit and \
              may-absent on one access)"
          (Icache.Config.describe config);
      match (t.Absint.gated, t.Absint.universe) with
      | Some _, _ | _, None -> ()
      | None, Some u ->
          let k = Absint.tracker t in
          let cache = Icache.Cache.create config in
          let line_bytes = config.Icache.Config.block in
          let fm_misses = Hashtbl.create 32 in
          let missed = ref [] in
          Sim.Trace.iter_blocks
            (fun fid l ->
              Absint.track k fid l;
              let addr = map.Placement.Address_map.block_addr.(fid).(l) in
              let words = map.Placement.Address_map.block_words.(fid).(l) in
              missed := [];
              if words > 0 then
                Icache.Cache.access_run cache ~addr ~words
                  ~on_miss:(fun ~at ~word_in_block:_ ~fetched_words:_ ->
                    let line =
                      (addr + (at * Icache.Config.word_bytes)) / line_bytes
                    in
                    match !missed with
                    | hd :: _ when hd = line -> ()
                    | _ -> missed := line :: !missed);
              let missed = !missed in
              let g = Absint.gid t fid l in
              Array.iteri
                (fun i id ->
                  let line = u.Cachedom.line_no.(id) in
                  let did_miss = List.mem line missed in
                  match t.Absint.cls.(g).(i) with
                  | Absint.Hit ->
                      if did_miss then
                        fail
                          "absint oracle: always-hit line %d missed at \
                           %s b%d (access %d) under %s"
                          line prog.Ir.Prog.funcs.(fid).Ir.Prog.name l i
                          (Icache.Config.describe config)
                  | Absint.Miss ->
                      if not did_miss then
                        fail
                          "absint oracle: always-miss line %d hit at %s \
                           b%d (access %d) under %s"
                          line prog.Ir.Prog.funcs.(fid).Ir.Prog.name l i
                          (Icache.Config.describe config)
                  | Absint.First_miss si ->
                      if did_miss then
                        let key = (si, id) in
                        Hashtbl.replace fm_misses key
                          (1
                          + Option.value ~default:0
                              (Hashtbl.find_opt fm_misses key))
                  | Absint.Unknown -> ())
                t.Absint.accesses.(g))
            trace;
          Hashtbl.iter
            (fun (si, id) misses ->
              let entries = Absint.tracked_entries k si in
              if misses > entries then
                fail
                  "absint oracle: first-miss line %d missed %d times but \
                   its scope (%s b%d) was entered %d times under %s"
                  u.Cachedom.line_no.(id) misses
                  prog.Ir.Prog.funcs.(t.Absint.scopes.(si).Absint.s_fid)
                    .Ir.Prog.name
                  t.Absint.scopes.(si).Absint.s_header entries
                  (Icache.Config.describe config))
            fm_misses;
          let iv =
            Absint.interval t ~counts:(Absint.tracked_counts k)
              ~entries:(Absint.tracked_entries k)
          in
          let misses = Icache.Cache.misses cache in
          if misses < iv.Absint.lo || misses > iv.Absint.hi then
            fail
              "absint oracle: simulated %d misses outside certified [%d, \
               %d] under %s"
              misses iv.Absint.lo iv.Absint.hi
              (Icache.Config.describe config))
    configs;
  List.rev !diags
