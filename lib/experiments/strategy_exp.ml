(* E17: layout-strategy comparison — every registered layout strategy
   (IMPACT placement, natural order, Pettis-Hansen, ext-TSP block
   reordering, call-chain clustering) over the same inlined program, at
   the paper's 2KB/64B direct-mapped design point.  The strategy list
   comes from [Placement.Strategy.all]: a newly registered strategy
   appears here with no further wiring. *)

type row = {
  bench : string;
  strategy : string;
  miss : float;
  traffic : float;
}

let config = Icache.Config.make ~size:2048 ~block:64 ()

(* [strategies] is injectable so tests can drive the degradation path
   with a deliberately broken strategy.  A strategy that raised inside
   [Context.strategy_map] yields its natural-layout fallback numbers,
   with the substitution marked in the strategy column. *)
let compute ?(strategies = Placement.Strategy.all) ctx =
  List.concat
  @@ Context.map_entries
       (fun e ->
      Obs.Span.with_ ~stage:"strategy-exp"
        ~attrs:[ ("bench", Context.name e) ]
      @@ fun () ->
      let trace = Context.trace e in
      List.map
        (fun (s : Placement.Strategy.t) ->
          let map = Context.strategy_map e s in
          let r = Context.simulate e config map trace in
          let id = s.Placement.Strategy.id in
          {
            bench = Context.name e;
            strategy =
              (if Context.fell_back e id then id ^ " (fallback: natural)"
               else id);
            miss = r.Sim.Driver.miss_ratio;
            traffic = r.Sim.Driver.traffic_ratio;
          })
        strategies)
       ctx

let table ctx =
  let rows =
    List.map
      (fun r ->
        [
          r.bench;
          r.strategy;
          Report.Fmtutil.pct r.miss;
          Report.Fmtutil.pct r.traffic;
        ])
      (compute ctx)
  in
  Report.Table.make
    ~title:
      "Layout strategies at 2KB/64B direct-mapped (same inlined program): \
       one row per benchmark x registered strategy"
    ~header:[ "benchmark"; "strategy"; "miss ratio"; "traffic ratio" ]
    ~align:Report.Table.[ L; L; R; R ]
    rows
