(** Dynamic trace capture and expansion.

    A run is recorded once as a compact block-level trace; replaying it
    against different address maps and cache configurations expands each
    block into instruction-fetch addresses without re-running the
    interpreter. *)

open Ir

exception Too_many_blocks of string

type t = {
  blocks : Ivec.t;  (** packed (fid, label) in execution order *)
  result : Vm.Interp.result;
}

val pack : int -> Cfg.label -> int
val unpack_fid : int -> int
val unpack_label : int -> Cfg.label

type sink = int -> Cfg.label -> unit
(** A block consumer: [sink fid label] receives every executed block in
    execution order.  Under an address map each block is one [(base,
    len)] fetch run, so a sink is exactly a push-based fetch-run
    consumer. *)

val stream :
  ?fuel:int -> Prog.program -> Vm.Io.input -> sink:sink -> Vm.Interp.result
(** Execute and push every block straight into [sink] with no
    intermediate buffer.  Raises {!Too_many_blocks} if a function exceeds
    the packing capacity (2^20 blocks). *)

val record : ?fuel:int -> Prog.program -> Vm.Io.input -> t
(** Execute and capture into a buffered trace ({!stream} with an
    appending sink).  Raises {!Too_many_blocks} if a function exceeds
    the packing capacity (2^20 blocks). *)

val dyn_blocks : t -> int

val dyn_insns : Placement.Address_map.t -> t -> int
(** Dynamic instruction fetches under the given address map (accounts for
    code scaling). *)

val iter_fetches :
  Placement.Address_map.t -> t -> fetch:(int -> unit) -> unit
(** Call [fetch] for every 4-byte instruction access of the trace. *)

val iter_blocks : (int -> Cfg.label -> unit) -> t -> unit
