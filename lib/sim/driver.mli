(** Trace-driven simulation driver: replays a block source through an
    address map into cache configurations, computing the paper's
    metrics. *)

type source = (int -> Ir.Cfg.label -> unit) -> unit
(** A re-walkable stream of executed blocks: calling a source with a
    block consumer plays every [(fid, label)] in execution order.  Any
    stored trace is a source ({!Trace.source}); so is the VM itself. *)

type result = {
  config : Icache.Config.t;
  accesses : int;
  misses : int;
  words_fetched : int;
  miss_ratio : float;
  traffic_ratio : float;
  avg_fetch_words : float;  (** Table 8 [avg.fetch] *)
  avg_exec_insns : float;  (** Table 8 [avg.exec] *)
  eat_blocking : float;  (** effective access time, cycles per fetch *)
  eat_streaming : float;
  eat_streaming_partial : float;
}

val simulate :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t ->
  Placement.Address_map.t ->
  Trace.t ->
  result
(** Word-granular reference engine: one {!Icache.Cache.access} per
    instruction fetch.  Kept as the oracle for differential tests. *)

val simulate_source :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  source ->
  result list
(** Block-granular fast path: walks the source once and advances every
    configuration's cache, timers and run bookkeeping in the same pass,
    using {!Icache.Cache.access_run} (one tag probe per cache block
    touched).  Bit-identical to running {!simulate} per configuration.

    When a default {!Placement.Pool} with more than one lane is set, the
    configuration list is partitioned into contiguous chunks (one per
    lane) simulated on separate domains; results are concatenated back
    in input order, so the output is bit-identical to the serial sweep.
    Each chunk re-walks the source, which must therefore be re-walkable
    and domain-safe. *)

val simulate_source_serial :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  source ->
  result list
(** The single-domain sweep {!simulate_source} partitions over; walks
    the source exactly once and ignores the default pool. *)

val simulate_stream :
  ?timing_model:Icache.Timing.model ->
  ?fuel:int ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Ir.Prog.program ->
  Vm.Io.input ->
  result list * Vm.Interp.result
(** Fused VM→cache engine: one interpreter execution pushes its block
    stream straight into every configuration's simulation state, with no
    materialized trace.  Always serial (the point is the single walk);
    results are bit-identical to recording a trace and replaying it. *)

val simulate_many :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace.t ->
  result list
(** {!simulate_source} over a stored trace. *)

val simulate_many_serial :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace.t ->
  result list
(** {!simulate_source_serial} over a stored trace. *)

val simulate_all :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace.t ->
  result list
(** Alias for {!simulate_many}. *)
