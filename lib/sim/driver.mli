(** Trace-driven simulation driver: replays a block trace through an
    address map into a cache configuration, computing the paper's
    metrics. *)

type result = {
  config : Icache.Config.t;
  accesses : int;
  misses : int;
  words_fetched : int;
  miss_ratio : float;
  traffic_ratio : float;
  avg_fetch_words : float;  (** Table 8 [avg.fetch] *)
  avg_exec_insns : float;  (** Table 8 [avg.exec] *)
  eat_blocking : float;  (** effective access time, cycles per fetch *)
  eat_streaming : float;
  eat_streaming_partial : float;
}

val simulate :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t ->
  Placement.Address_map.t ->
  Trace_gen.t ->
  result
(** Word-granular reference engine: one {!Icache.Cache.access} per
    instruction fetch.  Kept as the oracle for differential tests. *)

val simulate_many :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace_gen.t ->
  result list
(** Block-granular fast path: expands the block trace once and advances
    every configuration's cache, timers and run bookkeeping in the same
    pass, using {!Icache.Cache.access_run} (one tag probe per cache block
    touched).  Bit-identical to running {!simulate} per configuration.

    When a default {!Placement.Pool} with more than one lane is set, the
    configuration list is partitioned into contiguous chunks (one per
    lane) simulated on separate domains; results are concatenated back
    in input order, so the output is bit-identical to the serial
    sweep. *)

val simulate_many_serial :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace_gen.t ->
  result list
(** The single-domain sweep {!simulate_many} partitions over; ignores
    the default pool. *)

val simulate_all :
  ?timing_model:Icache.Timing.model ->
  Icache.Config.t list ->
  Placement.Address_map.t ->
  Trace_gen.t ->
  result list
(** Alias for {!simulate_many}. *)
