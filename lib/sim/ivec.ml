(* Growable int vector, used to store multi-million-entry block traces
   compactly.

   Backed by a [Bigarray] of 64-bit entries (the [Bigarray.int] kind:
   unboxed OCaml ints stored in 8 bytes each) so the payload lives
   outside the OCaml heap: growing a multi-million-entry trace no longer
   doubles through the minor/major heap or adds GC scanning pressure. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable data : buf; mutable len : int }

let alloc capacity : buf =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout capacity

let create ?(capacity = 1024) () = { data = alloc (max capacity 16); len = 0 }

let length t = t.len

let push t x =
  if t.len = Bigarray.Array1.dim t.data then begin
    let bigger = alloc (2 * t.len) in
    Bigarray.Array1.blit t.data (Bigarray.Array1.sub bigger 0 t.len);
    t.data <- bigger
  end;
  Bigarray.Array1.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let get t idx =
  if idx < 0 || idx >= t.len then
    invalid_arg
      (Printf.sprintf "Ivec.get: index %d outside [0,%d)" idx t.len);
  Bigarray.Array1.unsafe_get t.data idx

let unsafe_get t idx = Bigarray.Array1.unsafe_get t.data idx

let iter f t =
  for idx = 0 to t.len - 1 do
    f (Bigarray.Array1.unsafe_get t.data idx)
  done

let iteri f t =
  for idx = 0 to t.len - 1 do
    f idx (Bigarray.Array1.unsafe_get t.data idx)
  done

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || src_pos + len > src.len then
    invalid_arg
      (Printf.sprintf
         "Ivec.blit: source range [%d,%d) outside source length %d" src_pos
         (src_pos + len) src.len);
  if dst_pos < 0 || dst_pos > dst.len then
    invalid_arg
      (Printf.sprintf
         "Ivec.blit: destination position %d outside [0,%d] (may append at \
          the end only)"
         dst_pos dst.len);
  (* Extend [dst] as needed (blitting at or past the end appends). *)
  let needed = dst_pos + len in
  if needed > Bigarray.Array1.dim dst.data then begin
    let cap = ref (max 16 (Bigarray.Array1.dim dst.data)) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    let bigger = alloc !cap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub dst.data 0 dst.len)
      (Bigarray.Array1.sub bigger 0 dst.len);
    dst.data <- bigger
  end;
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src.data src_pos len)
    (Bigarray.Array1.sub dst.data dst_pos len);
  dst.len <- max dst.len needed

let to_array t = Array.init t.len (fun idx -> Bigarray.Array1.unsafe_get t.data idx)
