(* Run-length/delta-compressed block trace.

   Instruction fetch is overwhelmingly sequential: consecutive executed
   blocks very often have consecutive packed codes (same function,
   adjacent labels), so the block trace compresses first into maximal
   runs of consecutive codes.  Loops then make the *run sequence itself*
   repetitive — every iteration of a steady loop body emits a run with
   the same length and the same delta back to the loop head — so
   consecutive equal-shaped runs collapse into one record:

     varint(zigzag(delta) lsl 2 | L lsl 1 | R)
     varint(len - 2)      (only when flag bit L is set; len = 1 otherwise)
     varint(repeat - 2)   (only when flag bit R is set; repeat = 1 otherwise)

   meaning: [repeat] times over, a run of [len] consecutive codes
   starting [delta] after the last code of the previous run (prev = 0
   before the first).  The optional fields cost nothing when they would
   not help: a single-block run break — by far the most common record
   in branchy code — is one ~1-byte varint, a longer run ~2 bytes, and
   a steady loop one ~3-byte record for its whole execution, against
   8 bytes per block in the buffered [Trace_gen] representation.

   Decoding reproduces the exact code sequence, so fid/label unpacking
   is exact even if a run were ever to cross a packing boundary; the
   encoder only groups numerically consecutive codes and never invents
   any. *)

type t = {
  data : Bytes.t; (* varint run tokens, exactly [Bytes.length data] used *)
  runs : int;
  nblocks : int;
  result : Vm.Interp.result;
}

(* ------------------------------------------------------------------ *)
(* Varint / zigzag                                                     *)
(* ------------------------------------------------------------------ *)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (-(n land 1))

(* ------------------------------------------------------------------ *)
(* Builder: a sink that compresses as it goes                          *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable buf : Bytes.t;
  mutable pos : int;
  mutable prev : int; (* last code of the previous completed run *)
  mutable base : int; (* pending run base; -1 = none *)
  mutable len : int; (* pending run length *)
  (* Completed-but-unwritten record: [held_repeat] runs of shape
     (held_delta, held_len); 0 = none held. *)
  mutable held_delta : int;
  mutable held_len : int;
  mutable held_repeat : int;
  mutable b_runs : int;
  mutable b_nblocks : int;
}

let builder () =
  {
    buf = Bytes.create 4096;
    pos = 0;
    prev = 0;
    base = -1;
    len = 0;
    held_delta = 0;
    held_len = 0;
    held_repeat = 0;
    b_runs = 0;
    b_nblocks = 0;
  }

let ensure b n =
  if b.pos + n > Bytes.length b.buf then begin
    let cap = ref (Bytes.length b.buf) in
    while b.pos + n > !cap do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit b.buf 0 grown 0 b.pos;
    b.buf <- grown
  end

let put_varint b n =
  (* n >= 0; at most 9 continuation bytes for a 63-bit int *)
  ensure b 10;
  let n = ref n in
  while !n >= 0x80 do
    Bytes.unsafe_set b.buf b.pos (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    b.pos <- b.pos + 1;
    n := !n lsr 7
  done;
  Bytes.unsafe_set b.buf b.pos (Char.unsafe_chr !n);
  b.pos <- b.pos + 1

let write_held b =
  if b.held_repeat > 0 then begin
    let long = b.held_len > 1 and repeated = b.held_repeat > 1 in
    put_varint b
      ((zigzag b.held_delta lsl 2)
      lor (Bool.to_int long lsl 1)
      lor Bool.to_int repeated);
    if long then put_varint b (b.held_len - 2);
    if repeated then put_varint b (b.held_repeat - 2);
    b.held_repeat <- 0
  end

(* Complete the pending run: absorb it into the held record when it has
   the same shape (the steady-loop case), otherwise emit the held record
   and hold this run as the new candidate. *)
let flush b =
  if b.base >= 0 then begin
    let delta = b.base - b.prev in
    if b.held_repeat > 0 && delta = b.held_delta && b.len = b.held_len then
      b.held_repeat <- b.held_repeat + 1
    else begin
      write_held b;
      b.held_delta <- delta;
      b.held_len <- b.len;
      b.held_repeat <- 1
    end;
    b.prev <- b.base + b.len - 1;
    b.b_runs <- b.b_runs + 1;
    b.base <- -1
  end

(* Push one packed block code (codes are always >= 0, so -1 is a safe
   "no pending run" sentinel). *)
let push b code =
  if b.base >= 0 && code = b.base + b.len then b.len <- b.len + 1
  else begin
    flush b;
    b.base <- code;
    b.len <- 1
  end;
  b.b_nblocks <- b.b_nblocks + 1

let finish b (result : Vm.Interp.result) : t =
  flush b;
  write_held b;
  {
    data = Bytes.sub b.buf 0 b.pos;
    runs = b.b_runs;
    nblocks = b.b_nblocks;
    result;
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let push_block b fid label = push b (Trace_gen.pack fid label)

(* Fused recording: the VM streams blocks straight into the compressing
   builder, so peak trace residency is the compressed size — no raw
   vector ever exists. *)
let record ?fuel prog input : t =
  let b = builder () in
  let result = Trace_gen.stream ?fuel prog input ~sink:(push_block b) in
  finish b result

let of_trace_gen (tg : Trace_gen.t) : t =
  let b = builder () in
  Trace_gen.iter_blocks (push_block b) tg;
  finish b tg.Trace_gen.result

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let iter_runs f t =
  let len = Bytes.length t.data in
  let pos = ref 0 in
  let prev = ref 0 in
  let varint () =
    let n = ref 0 and shift = ref 0 and more = ref true in
    while !more do
      let byte = Char.code (Bytes.unsafe_get t.data !pos) in
      incr pos;
      n := !n lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      more := byte >= 0x80
    done;
    !n
  in
  while !pos < len do
    let token = varint () in
    let delta = unzigzag (token lsr 2) in
    let rlen = if token land 2 = 2 then varint () + 2 else 1 in
    let repeat = if token land 1 = 1 then varint () + 2 else 1 in
    for _ = 1 to repeat do
      let base = !prev + delta in
      f ~code:base ~len:rlen;
      prev := base + rlen - 1
    done
  done

let iter_blocks f t =
  iter_runs
    (fun ~code ~len ->
      for k = 0 to len - 1 do
        let c = code + k in
        f (Trace_gen.unpack_fid c) (Trace_gen.unpack_label c)
      done)
    t

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let dyn_blocks t = t.nblocks
let runs t = t.runs
let compressed_bytes t = Bytes.length t.data

(* What the buffered representation of the same trace occupies: one
   64-bit entry per executed block. *)
let raw_bytes t = 8 * t.nblocks

let dyn_insns (map : Placement.Address_map.t) t =
  let words_of = map.Placement.Address_map.block_words in
  let total = ref 0 in
  iter_blocks (fun fid label -> total := !total + words_of.(fid).(label)) t;
  !total
