(** Growable int vector for multi-million-entry block traces, backed by
    an off-heap [Bigarray] of 64-bit entries. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val unsafe_get : t -> int -> int
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] entries from [src] at [src_pos] into [dst] at [dst_pos],
    growing [dst] when the copy lands at or past its end ([dst_pos] may
    be at most [length dst]). *)

val to_array : t -> int array
