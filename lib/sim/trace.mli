(** Unified trace store: one handle over the buffered ({!Trace_gen}) and
    run-length/delta-compressed ({!Ctrace}) trace representations.
    Replay is bit-identical across representations; the engine knob only
    moves the memory/bandwidth trade-off. *)

open Ir

type engine =
  | Buffered  (** record into an 8-byte-per-block vector (reference) *)
  | Streaming
      (** stream the VM's blocks straight into the compressing builder:
          the trace is born compressed and peak residency is the
          compressed size *)

val engine_name : engine -> string
val engine_of_string : string -> engine option

type t = Raw of Trace_gen.t | Packed of Ctrace.t

val record : ?engine:engine -> ?fuel:int -> Prog.program -> Vm.Io.input -> t
(** Execute and capture under the given engine (default [Streaming]).
    Updates the [trace.*] gauges when metrics are enabled. *)

val of_gen : Trace_gen.t -> t
val of_ctrace : Ctrace.t -> t
val engine_of : t -> engine

val result : t -> Vm.Interp.result
val dyn_blocks : t -> int
val dyn_insns : Placement.Address_map.t -> t -> int
val iter_blocks : (int -> Cfg.label -> unit) -> t -> unit

val source : t -> (int -> Cfg.label -> unit) -> unit
(** The trace as a re-walkable block source — the shape
    {!Driver.simulate_source} consumes. *)

type stats = {
  st_runs : int;  (** maximal sequential-code runs *)
  st_blocks : int;
  st_raw_bytes : int;  (** buffered footprint (8 bytes/block) *)
  st_stored_bytes : int;  (** what this representation actually holds *)
}

val stats : t -> stats
