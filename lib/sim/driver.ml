(* Trace-driven simulation driver.

   Replays a recorded block trace, expanded through an address map, into
   cache configurations, tracking the paper's metrics:

   - miss ratio and memory-traffic ratio (from the cache simulator);
   - avg.exec: mean consecutive instructions used from a cache miss to a
     taken branch or the next miss (Table 8);
   - avg.fetch: mean 4-byte entities transferred per miss (Table 8);
   - effective access time under the three refill timing policies.

   Two engines share these definitions:
   - [simulate] is the word-granular reference: every instruction fetch
     goes through [Icache.Cache.access] one at a time;
   - [simulate_source] is the block-granular fast path: the block source
     is walked ONCE, each executed block becomes a single
     [Icache.Cache.access_run] call per configuration, and all
     configurations' caches, timers and run bookkeeping advance in the
     same pass.  Its results are bit-identical to the reference
     (property-tested in test/test_fast_sim.ml).

   The fast path consumes any re-walkable block [source] — a stored
   trace (buffered or compressed, see [Trace]) or the VM itself
   ([simulate_stream]), in which case a single execution feeds every
   configuration with no materialized trace at all. *)

type source = (int -> Ir.Cfg.label -> unit) -> unit

type result = {
  config : Icache.Config.t;
  accesses : int;
  misses : int;
  words_fetched : int;
  miss_ratio : float;
  traffic_ratio : float;
  avg_fetch_words : float;
  avg_exec_insns : float;
  eat_blocking : float; (* effective access time, cycles per fetch *)
  eat_streaming : float;
  eat_streaming_partial : float;
}

(* Telemetry: per-configuration cache counters, labelled with the
   configuration's human description, accumulated across every
   simulation (reference and fast engines alike). *)
let record_metrics (results : result list) =
  if Obs.Metrics.enabled () then
    List.iter
      (fun r ->
        let d = Icache.Config.describe r.config in
        Obs.Metrics.incr ~by:r.accesses
          (Obs.Metrics.counter ("sim.accesses{" ^ d ^ "}"));
        Obs.Metrics.incr ~by:r.misses
          (Obs.Metrics.counter ("sim.misses{" ^ d ^ "}"));
        Obs.Metrics.incr ~by:r.words_fetched
          (Obs.Metrics.counter ("sim.words_fetched{" ^ d ^ "}")))
      results

let simulate ?(timing_model = Icache.Timing.default_model)
    (config : Icache.Config.t) (map : Placement.Address_map.t)
    (trace : Trace.t) : result =
  Obs.Span.with_ ~stage:"simulate"
    ~attrs:[ ("engine", "reference"); ("config", Icache.Config.describe config) ]
  @@ fun () ->
  let cache = Icache.Cache.create config in
  let words_per_block = Icache.Config.words_per_block config in
  let timers =
    List.map
      (fun policy -> Icache.Timing.create ~model:timing_model policy)
      [
        Icache.Timing.Blocking;
        Icache.Timing.Streaming;
        Icache.Timing.Streaming_partial;
      ]
  in
  (* Run bookkeeping: a "run" starts at a miss and extends over the
     consecutive sequential fetches that follow it. *)
  let prev_addr = ref min_int in
  let run_open = ref false in
  let run_len = ref 0 in
  let run_word = ref 0 in
  let run_fetched = ref 0 in
  let runs_sum = ref 0 in
  let runs_count = ref 0 in
  let close_run () =
    if !run_open then begin
      runs_sum := !runs_sum + !run_len;
      incr runs_count;
      List.iter
        (fun t ->
          Icache.Timing.on_miss t ~words_per_block ~word_in_block:!run_word
            ~run_words:(!run_len - 1) ~fetched_words:!run_fetched)
        timers;
      run_open := false
    end
  in
  let fetch addr =
    let outcome = Icache.Cache.access cache addr in
    let sequential = addr = !prev_addr + Icache.Config.word_bytes in
    prev_addr := addr;
    if outcome.Icache.Cache.miss then begin
      close_run ();
      run_open := true;
      run_len := 1;
      run_word := outcome.Icache.Cache.word_in_block;
      run_fetched := outcome.Icache.Cache.fetched_words
    end
    else begin
      List.iter Icache.Timing.on_hit timers;
      if !run_open then begin
        if sequential then incr run_len else close_run ()
      end
    end
  in
  let addr_of = map.Placement.Address_map.block_addr in
  let words_of = map.Placement.Address_map.block_words in
  Trace.iter_blocks
    (fun fid label ->
      let base = addr_of.(fid).(label) in
      let words = words_of.(fid).(label) in
      for k = 0 to words - 1 do
        fetch (base + (k * Ir.Insn.bytes_per_insn))
      done)
    trace;
  close_run ();
  let eat = function
    | [ b; s; p ] ->
      ( Icache.Timing.effective_access_time b,
        Icache.Timing.effective_access_time s,
        Icache.Timing.effective_access_time p )
    | ts ->
      Ir.Diag.error ~stage:Ir.Diag.Simulation
        "expected the 3 refill-policy timers (blocking, streaming, \
         partial), found %d"
        (List.length ts)
  in
  let eat_blocking, eat_streaming, eat_streaming_partial = eat timers in
  let r =
    {
      config;
      accesses = Icache.Cache.accesses cache;
      misses = Icache.Cache.misses cache;
      words_fetched = Icache.Cache.words_fetched cache;
      miss_ratio = Icache.Cache.miss_ratio cache;
      traffic_ratio = Icache.Cache.traffic_ratio cache;
      avg_fetch_words = Icache.Cache.avg_fetch_words cache;
      avg_exec_insns =
        (if !runs_count = 0 then 0.
         else float_of_int !runs_sum /. float_of_int !runs_count);
      eat_blocking;
      eat_streaming;
      eat_streaming_partial;
    }
  in
  record_metrics [ r ];
  r

(* ------------------------------------------------------------------ *)
(* Block-granular, single-pass, multi-configuration engine             *)
(* ------------------------------------------------------------------ *)

(* Per-configuration state carried across the single trace walk.  The run
   bookkeeping mirrors the reference engine exactly: a run starts at a
   miss and extends over the consecutive sequential fetches that follow
   it; it closes at the next miss, at a non-sequential hit, or at the end
   of the trace. *)
type state = {
  s_config : Icache.Config.t;
  cache : Icache.Cache.t;
  words_per_block : int;
  timers : Icache.Timing.t list; (* blocking, streaming, streaming_partial *)
  mutable prev_addr : int; (* address of the last fetched word *)
  mutable run_open : bool;
  mutable run_len : int;
  mutable run_word : int;
  mutable run_fetched : int;
  mutable runs_sum : int;
  mutable runs_count : int;
  mutable next_at : int; (* words of the current block already accounted *)
  mutable block_seq : bool; (* current block fall-through-entered? *)
}

let close_run st =
  if st.run_open then begin
    st.runs_sum <- st.runs_sum + st.run_len;
    st.runs_count <- st.runs_count + 1;
    List.iter
      (fun t ->
        Icache.Timing.on_miss t ~words_per_block:st.words_per_block
          ~word_in_block:st.run_word ~run_words:(st.run_len - 1)
          ~fetched_words:st.run_fetched)
      st.timers;
    st.run_open <- false
  end

(* Account [n] consecutive hit fetches.  Within a block every fetch after
   the first is sequential by construction, so only the first of the [n]
   can be non-sequential — and a non-sequential hit closes the run
   without extending it, after which the remaining hits are no-ops. *)
let apply_hits st n ~first_seq =
  if st.run_open then
    if first_seq then st.run_len <- st.run_len + n else close_run st

let result_of st =
  close_run st;
  let cache = st.cache in
  let hits = Icache.Cache.accesses cache - Icache.Cache.misses cache in
  List.iter (fun t -> Icache.Timing.on_hits t hits) st.timers;
  let eat = function
    | [ b; s; p ] ->
      ( Icache.Timing.effective_access_time b,
        Icache.Timing.effective_access_time s,
        Icache.Timing.effective_access_time p )
    | ts ->
      Ir.Diag.error ~stage:Ir.Diag.Simulation
        "expected the 3 refill-policy timers (blocking, streaming, \
         partial), found %d"
        (List.length ts)
  in
  let eat_blocking, eat_streaming, eat_streaming_partial = eat st.timers in
  {
    config = st.s_config;
    accesses = Icache.Cache.accesses cache;
    misses = Icache.Cache.misses cache;
    words_fetched = Icache.Cache.words_fetched cache;
    miss_ratio = Icache.Cache.miss_ratio cache;
    traffic_ratio = Icache.Cache.traffic_ratio cache;
    avg_fetch_words = Icache.Cache.avg_fetch_words cache;
    avg_exec_insns =
      (if st.runs_count = 0 then 0.
       else float_of_int st.runs_sum /. float_of_int st.runs_count);
    eat_blocking;
    eat_streaming;
    eat_streaming_partial;
  }

let simulate_source_serial ?(timing_model = Icache.Timing.default_model)
    configs (map : Placement.Address_map.t) (source : source) : result list =
  Obs.Span.with_ ~stage:"simulate"
    ~attrs:
      [
        ("engine", "single-pass");
        ("configs", string_of_int (List.length configs));
      ]
  @@ fun () ->
  let states =
    List.map
      (fun config ->
        {
          s_config = config;
          cache = Icache.Cache.create config;
          words_per_block = Icache.Config.words_per_block config;
          timers =
            List.map
              (fun policy -> Icache.Timing.create ~model:timing_model policy)
              [
                Icache.Timing.Blocking;
                Icache.Timing.Streaming;
                Icache.Timing.Streaming_partial;
              ];
          prev_addr = min_int;
          run_open = false;
          run_len = 0;
          run_word = 0;
          run_fetched = 0;
          runs_sum = 0;
          runs_count = 0;
          next_at = 0;
          block_seq = false;
        })
      configs
  in
  let states_arr = Array.of_list states in
  let nstates = Array.length states_arr in
  let addr_of = map.Placement.Address_map.block_addr in
  let words_of = map.Placement.Address_map.block_words in
  source
    (fun fid label ->
      let base = addr_of.(fid).(label) in
      let words = words_of.(fid).(label) in
      if words > 0 then
        for i = 0 to nstates - 1 do
          let st = states_arr.(i) in
          st.block_seq <- base = st.prev_addr + Icache.Config.word_bytes;
          st.next_at <- 0;
          Icache.Cache.access_run st.cache ~addr:base ~words
            ~on_miss:(fun ~at ~word_in_block ~fetched_words ->
              let gap = at - st.next_at in
              if gap > 0 then
                apply_hits st gap ~first_seq:(st.next_at > 0 || st.block_seq);
              close_run st;
              st.run_open <- true;
              st.run_len <- 1;
              st.run_word <- word_in_block;
              st.run_fetched <- fetched_words;
              st.next_at <- at + 1);
          let tail = words - st.next_at in
          if tail > 0 then
            apply_hits st tail ~first_seq:(st.next_at > 0 || st.block_seq);
          st.prev_addr <- base + ((words - 1) * Icache.Config.word_bytes)
        done);
  let results = List.map result_of states in
  record_metrics results;
  results

let simulate_many_serial ?timing_model configs map trace =
  simulate_source_serial ?timing_model configs map (Trace.source trace)

(* Split [xs] into [k] contiguous runs whose lengths differ by at most
   one, longer runs first — concatenating the runs rebuilds [xs]. *)
let partition k xs =
  let n = List.length xs in
  let rec go i rest =
    if i = k then []
    else begin
      let len = (n / k) + if i < n mod k then 1 else 0 in
      let rec take len acc rest =
        if len = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: rest -> take (len - 1) (x :: acc) rest
      in
      let run, rest = take len [] rest in
      run :: go (i + 1) rest
    end
  in
  go 0 xs

let simulate_source ?timing_model configs map (source : source) =
  match Placement.Pool.default () with
  | Some pool
    when Placement.Pool.lanes pool > 1
         && List.compare_length_with configs 2 >= 0 ->
    (* Each configuration's cache state is independent, so a contiguous
       partition of the config list simulated per-chunk and concatenated
       in order is bit-identical to the serial sweep; only the source
       walk cost is shared.  The chunk count matches the lane count:
       re-walking the source is the dominant cost, so finer chunks would
       walk it more times for no balance win.  The source must therefore
       be re-walkable and domain-safe (stored traces are; a raw VM feed
       is re-executed per chunk — prefer {!simulate_stream} for that). *)
    Obs.Span.with_ ~stage:"simulate"
      ~attrs:
        [
          ("engine", "parallel");
          ("configs", string_of_int (List.length configs));
          ("lanes", string_of_int (Placement.Pool.lanes pool));
        ]
    @@ fun () ->
    let k = min (Placement.Pool.lanes pool) (List.length configs) in
    List.concat
      (Placement.Pool.map pool
         (fun chunk -> simulate_source_serial ?timing_model chunk map source)
         (partition k configs))
  | _ -> simulate_source_serial ?timing_model configs map source

let simulate_many ?timing_model configs map trace =
  simulate_source ?timing_model configs map (Trace.source trace)

let simulate_all ?timing_model configs map trace =
  simulate_many ?timing_model configs map trace

(* Fused VM->cache engine: one interpreter execution pushes its block
   stream straight into every configuration's cache state, with no
   stored trace of any kind.  Always serial — the whole point is the
   single walk. *)
let simulate_stream ?timing_model ?fuel configs
    (map : Placement.Address_map.t) (prog : Ir.Prog.program)
    (input : Vm.Io.input) : result list * Vm.Interp.result =
  let vm_result = ref None in
  let results =
    simulate_source_serial ?timing_model configs map (fun f ->
        vm_result := Some (Trace_gen.stream ?fuel prog input ~sink:f))
  in
  match !vm_result with
  | Some r -> (results, r)
  | None ->
    Ir.Diag.error ~stage:Ir.Diag.Simulation
      "fused simulation finished without executing the program"
