(** Run-length/delta-compressed block trace.

    Consecutive executed blocks very often have consecutive packed
    codes, so the trace is stored as runs; and loops make the run
    sequence itself repetitive, so equal-shaped consecutive runs
    collapse into one record — the zigzag delta of each run's base from
    the previous run's last code, with two flag bits marking an
    optional length field (single-block runs pay nothing) and an
    optional repeat count (non-repeating runs pay nothing).  Decoding
    reproduces the
    exact packed-code sequence, so replay is bit-identical to the
    buffered {!Trace_gen} representation at a small fraction of the
    resident bytes. *)

open Ir

type t = {
  data : Bytes.t;  (** varint run tokens *)
  runs : int;
  nblocks : int;
  result : Vm.Interp.result;
}

(** {2 Construction} *)

type builder

val builder : unit -> builder

val push : builder -> int -> unit
(** Append one packed block code (see {!Trace_gen.pack}). *)

val push_block : builder -> int -> Cfg.label -> unit
(** [push_block b fid label]: a {!Trace_gen.sink} over {!push}. *)

val finish : builder -> Vm.Interp.result -> t

val record : ?fuel:int -> Prog.program -> Vm.Io.input -> t
(** Fused recording: the VM streams blocks straight into the compressing
    builder ({!Trace_gen.stream}), so peak trace residency is the
    compressed size — no raw vector ever exists.  Raises
    {!Trace_gen.Too_many_blocks} like {!Trace_gen.record}. *)

val of_trace_gen : Trace_gen.t -> t
(** Compress an already-buffered trace (same codes, same order). *)

(** {2 Replay} *)

val iter_runs : (code:int -> len:int -> unit) -> t -> unit
(** Decoded runs in order: [len] consecutive packed codes starting at
    [code]. *)

val iter_blocks : (int -> Cfg.label -> unit) -> t -> unit
(** Every executed block as [(fid, label)], identical to the sequence
    that was pushed. *)

(** {2 Stats} *)

val dyn_blocks : t -> int
val runs : t -> int
val compressed_bytes : t -> int

val raw_bytes : t -> int
(** Size of the equivalent buffered representation (8 bytes/block). *)

val dyn_insns : Placement.Address_map.t -> t -> int
