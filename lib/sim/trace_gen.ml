(* Dynamic trace capture and expansion.

   A program run is recorded once as a compact sequence of executed basic
   blocks (function id and label packed into one int).  The block trace is
   layout-independent: replaying it against different address maps and
   cache configurations expands each block into its instruction-fetch
   addresses without re-running the interpreter. *)

open Ir

(* Packing: label in the low bits, function id above.  20 bits allow a
   million blocks per function, far beyond any workload here. *)
let label_bits = 20
let label_mask = (1 lsl label_bits) - 1
let pack fid label = (fid lsl label_bits) lor label
let unpack_fid code = code lsr label_bits
let unpack_label code = code land label_mask

type t = {
  blocks : Ivec.t; (* packed (fid, label) in execution order *)
  result : Vm.Interp.result;
}

exception Too_many_blocks of string

type sink = int -> Cfg.label -> unit

(* Stream the execution's block sequence into [sink] with no buffering:
   the push-based VM->consumer path.  Every trace consumer (buffered
   recording below, the compressed store, the fused simulation engine)
   is a sink over this one entry point. *)
let stream ?fuel (prog : Prog.program) (input : Vm.Io.input) ~(sink : sink) :
    Vm.Interp.result =
  Array.iter
    (fun (f : Prog.func) ->
      if Array.length f.blocks > label_mask then
        raise (Too_many_blocks f.name))
    prog.funcs;
  Vm.Interp.run ~block_sink:sink ?fuel prog input

(* The buffered path: one sink implementation that appends packed codes
   to a growable vector. *)
let record ?fuel (prog : Prog.program) (input : Vm.Io.input) : t =
  let blocks = Ivec.create ~capacity:65536 () in
  let result =
    stream ?fuel prog input ~sink:(fun fid label ->
        Ivec.push blocks (pack fid label))
  in
  { blocks; result }

let dyn_blocks t = Ivec.length t.blocks

(* Dynamic instruction fetches under a given address map (block sizes may
   differ from the recorded run when the map comes from a scaled program). *)
let dyn_insns (map : Placement.Address_map.t) t =
  let total = ref 0 in
  Ivec.iter
    (fun code ->
      let fid = unpack_fid code and label = unpack_label code in
      total := !total + map.block_words.(fid).(label))
    t.blocks;
  !total

(* Expand the block trace into instruction-fetch addresses under [map],
   calling [fetch] for every 4-byte instruction access. *)
let iter_fetches (map : Placement.Address_map.t) t ~(fetch : int -> unit) =
  let addr_of = map.block_addr and words_of = map.block_words in
  Ivec.iter
    (fun code ->
      let fid = unpack_fid code and label = unpack_label code in
      let base = addr_of.(fid).(label) in
      let words = words_of.(fid).(label) in
      for k = 0 to words - 1 do
        fetch (base + (k * Insn.bytes_per_insn))
      done)
    t.blocks

(* Iterate over executed blocks as (fid, label). *)
let iter_blocks f t =
  Ivec.iter (fun code -> f (unpack_fid code) (unpack_label code)) t.blocks
