(* Unified trace store: every consumer of a recorded execution (driver,
   experiments, memo layer) traffics in this type and never cares whether
   the blocks live in a raw Bigarray vector or in the run-length/delta
   compressed form.

   The engine knob picks the representation at recording time:
   - [Buffered]: the PR 1 path — [Trace_gen.record] into an 8-byte-per-
     block vector; the reference representation.
   - [Streaming]: the VM streams blocks straight into the [Ctrace]
     compressing builder, so the trace is born compressed and peak
     residency is the compressed size.

   Telemetry: every recording (either engine) bumps four gauges —
   trace.runs, trace.raw_bytes, trace.compressed_bytes and
   trace.peak_resident_bytes.  raw/compressed accumulate what the
   recording would occupy buffered vs what it actually stores, so their
   ratio is the live compression ratio; peak_resident accumulates the
   stored bytes of every trace recorded (traces are memoized for a whole
   run and never freed, so the running total is the peak).  A module
   mutex serializes the read-modify-write: recordings can race across
   domains. *)

type engine = Buffered | Streaming

let engine_name = function Buffered -> "buffered" | Streaming -> "streaming"

let engine_of_string = function
  | "buffered" -> Some Buffered
  | "streaming" -> Some Streaming
  | _ -> None

type t = Raw of Trace_gen.t | Packed of Ctrace.t

type stats = {
  st_runs : int;
  st_blocks : int;
  st_raw_bytes : int; (* buffered footprint of this trace *)
  st_stored_bytes : int; (* what this representation actually holds *)
}

(* Count maximal runs of consecutive packed codes in a buffered trace —
   the same grouping the compressor performs. *)
let raw_runs (tg : Trace_gen.t) =
  let runs = ref 0 in
  let next = ref min_int in
  Ivec.iter
    (fun code ->
      if code <> !next then incr runs;
      next := code + 1)
    tg.Trace_gen.blocks;
  !runs

let stats = function
  | Raw tg ->
    let blocks = Trace_gen.dyn_blocks tg in
    {
      st_runs = raw_runs tg;
      st_blocks = blocks;
      st_raw_bytes = 8 * blocks;
      st_stored_bytes = 8 * blocks;
    }
  | Packed ct ->
    {
      st_runs = Ctrace.runs ct;
      st_blocks = Ctrace.dyn_blocks ct;
      st_raw_bytes = Ctrace.raw_bytes ct;
      st_stored_bytes = Ctrace.compressed_bytes ct;
    }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let g_runs =
  Obs.Metrics.gauge "trace.runs"
    ~help:"sequential fetch runs across all recorded traces"

let g_raw =
  Obs.Metrics.gauge "trace.raw_bytes"
    ~help:"buffered (8 bytes/block) footprint of all recorded traces"

let g_compressed =
  Obs.Metrics.gauge "trace.compressed_bytes"
    ~help:"bytes actually stored for all recorded traces"

let g_peak =
  Obs.Metrics.gauge "trace.peak_resident_bytes"
    ~help:
      "peak bytes of live trace store (traces are memoized per run, so \
       this is the running total of stored bytes)"

let metrics_lock = Mutex.create ()

let note t =
  if Obs.Metrics.enabled () then begin
    let s = stats t in
    Mutex.lock metrics_lock;
    let bump g by =
      Obs.Metrics.set g (Obs.Metrics.gauge_value g +. float_of_int by)
    in
    bump g_runs s.st_runs;
    bump g_raw s.st_raw_bytes;
    bump g_compressed s.st_stored_bytes;
    bump g_peak s.st_stored_bytes;
    Mutex.unlock metrics_lock
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let of_gen tg = Raw tg
let of_ctrace ct = Packed ct

let record ?(engine = Streaming) ?fuel prog input =
  let t =
    match engine with
    | Buffered -> Raw (Trace_gen.record ?fuel prog input)
    | Streaming -> Packed (Ctrace.record ?fuel prog input)
  in
  note t;
  t

let engine_of = function Raw _ -> Buffered | Packed _ -> Streaming

(* ------------------------------------------------------------------ *)
(* Uniform accessors                                                   *)
(* ------------------------------------------------------------------ *)

let result = function
  | Raw tg -> tg.Trace_gen.result
  | Packed ct -> ct.Ctrace.result

let dyn_blocks = function
  | Raw tg -> Trace_gen.dyn_blocks tg
  | Packed ct -> Ctrace.dyn_blocks ct

let dyn_insns map = function
  | Raw tg -> Trace_gen.dyn_insns map tg
  | Packed ct -> Ctrace.dyn_insns map ct

let iter_blocks f = function
  | Raw tg -> Trace_gen.iter_blocks f tg
  | Packed ct -> Ctrace.iter_blocks f ct

(* A trace as a re-walkable block source (the driver's input shape). *)
let source t f = iter_blocks f t
