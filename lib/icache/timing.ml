(* Miss-penalty timing model (paper section 4.2.1).

   The memory is interleaved and delivers one 4-byte word per cycle after
   an initial access delay.  Three refill disciplines are modeled:

   - [Blocking]: the CPU stalls until the whole block has been
     transferred.
   - [Streaming]: load forwarding + early continuation + streaming over a
     whole-block fill that starts at the beginning of the block.  The CPU
     waits for the words in front of the missed word, resumes, and streams
     sequential fetches off the bus; a taken branch before the fill
     completes stalls until the transfer finishes.
   - [Streaming_partial]: same, but the fill starts at the missed word
     (partial loading), so the initial wait is just the memory latency.

   The per-miss inputs are the word offset of the miss within its block
   and the number of consecutive sequential words the CPU consumed after
   the miss before a taken branch or the next miss — exactly what the
   simulation driver already tracks for the avg.exec statistic. *)

type policy =
  | Blocking
  | Streaming
  | Streaming_partial

type model = { hit_cycles : int; mem_latency : int }

let default_model = { hit_cycles = 1; mem_latency = 10 }

(* Stall cycles (beyond the normal hit time) for one miss. *)
let miss_stall model policy ~words_per_block ~word_in_block ~run_words
    ~fetched_words =
  let lat = model.mem_latency in
  match policy with
  | Blocking -> lat + words_per_block
  | Streaming ->
    (* Fill transfers the whole block from word 0; the missed word arrives
       after [lat + word_in_block + 1] cycles.  If control leaves the
       block before the fill completes, the CPU waits out the rest. *)
    let initial = lat + word_in_block in
    let consumed = min run_words (words_per_block - word_in_block) in
    let fill_done = lat + words_per_block in
    let leave_time = lat + word_in_block + consumed in
    let tail = if consumed < words_per_block - word_in_block then
        max 0 (fill_done - leave_time)
      else 0
    in
    initial + tail
  | Streaming_partial ->
    (* Fill starts at the missed word; [fetched_words] were transferred. *)
    let initial = lat in
    let consumed = min run_words fetched_words in
    let fill_done = lat + fetched_words in
    let leave_time = lat + consumed in
    let tail =
      if consumed < fetched_words then max 0 (fill_done - leave_time) else 0
    in
    initial + tail

type t = {
  model : model;
  policy : policy;
  mutable accesses : int;
  mutable stall_cycles : int;
  mutable misses : int;
}

let create ?(model = default_model) policy =
  { model; policy; accesses = 0; stall_cycles = 0; misses = 0 }

let on_hit t = t.accesses <- t.accesses + 1

(* Bulk accounting for the block-granular engine: [n] hits at once. *)
let on_hits t n = t.accesses <- t.accesses + n

let on_miss t ~words_per_block ~word_in_block ~run_words ~fetched_words =
  t.accesses <- t.accesses + 1;
  t.misses <- t.misses + 1;
  t.stall_cycles <-
    t.stall_cycles
    + miss_stall t.model t.policy ~words_per_block ~word_in_block ~run_words
        ~fetched_words

(* Mean cycles per instruction fetch. *)
let effective_access_time t =
  if t.accesses = 0 then float_of_int t.model.hit_cycles
  else
    float_of_int ((t.accesses * t.model.hit_cycles) + t.stall_cycles)
    /. float_of_int t.accesses

let avg_stall_per_miss t =
  if t.misses = 0 then 0.
  else float_of_int t.stall_cycles /. float_of_int t.misses

let policy_name = function
  | Blocking -> "blocking"
  | Streaming -> "streaming"
  | Streaming_partial -> "streaming+partial"
