(** Unified instruction-cache simulator: direct-mapped, N-way and fully
    associative (LRU), with whole-block fill, block sectoring, or partial
    loading.

    Metric definitions follow the paper: miss ratio = misses / fetches;
    traffic ratio = 4-byte bus words transferred / fetches. *)

type outcome = {
  miss : bool;
  fetched_words : int;  (** bus words transferred by this access *)
  word_in_block : int;  (** word offset of the access within its block *)
}

type t

val create : Config.t -> t
(** Raises {!Config.Invalid} on a bad configuration. *)

val reset : t -> unit

val access : t -> int -> outcome
(** Simulate one instruction fetch at a byte address. *)

val access_run :
  t ->
  addr:int ->
  words:int ->
  on_miss:(at:int -> word_in_block:int -> fetched_words:int -> unit) ->
  unit
(** Bulk fast path: simulate [words] consecutive 4-byte fetches starting
    at [addr] (one basic block's sequential run) with one tag probe per
    cache block touched; guaranteed-hit tail words are counted
    arithmetically.  Exactly equivalent to calling {!access} on each word
    in turn — counters, validity, LRU and prefetch state all match.
    [on_miss] fires in order for every fetch that would have missed,
    with [at] the word index within the run. *)

val miss_ratio : t -> float
val traffic_ratio : t -> float
val avg_fetch_words : t -> float
(** Mean bus words per miss — Table 8's [avg.fetch] column. *)

val tag_bytes : t -> int
(** Tag storage, at 4 bytes per block frame (paper's overhead estimate). *)

val invariant : t -> bool
(** Internal consistency, for property tests. *)

val accesses : t -> int
val misses : t -> int
val words_fetched : t -> int

val prefetches : t -> int
(** Next-line prefetch fills issued (when the config enables prefetch). *)
