(* Unified instruction-cache simulator.

   One engine covers the paper's whole design space: direct-mapped, N-way
   and fully associative (LRU replacement), with whole-block fill, block
   sectoring, or partial loading.  Validity is tracked per granule: the
   whole block (Whole), a sector (Sectored), or a word (Partial).

   Metrics follow the paper's definitions:
   - miss ratio    = misses / instruction fetches;
   - traffic ratio = 4-byte bus words transferred / instruction fetches
     (each instruction fetch is itself one 4-byte access, so a full 64-byte
     fill is 16 bus accesses — reproducing e.g. cccp's 2.70% miss / 43.13%
     traffic arithmetic). *)

type outcome = {
  miss : bool;
  fetched_words : int; (* bus words transferred for this access *)
  word_in_block : int; (* word offset of the access within its block *)
}

type t = {
  cfg : Config.t;
  nsets : int;
  ways : int;
  granules : int; (* granules per block *)
  words_per_granule : int;
  tags : int array; (* frame -> tag, -1 when empty *)
  valid : Bytes.t; (* frame * granules + granule -> 0/1 *)
  lru : int array; (* frame -> last-touch clock *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable words_fetched : int;
  mutable prefetches : int; (* next-line prefetch fills issued *)
}

let create cfg =
  Config.validate cfg;
  let nsets = Config.nsets cfg in
  let ways = Config.ways_of cfg in
  let granules = Config.granules_per_block cfg in
  let frames = nsets * ways in
  {
    cfg;
    nsets;
    ways;
    granules;
    words_per_granule = Config.granule_bytes cfg / Config.word_bytes;
    tags = Array.make frames (-1);
    valid = Bytes.make (frames * granules) '\000';
    lru = Array.make frames 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    words_fetched = 0;
    prefetches = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Bytes.fill t.valid 0 (Bytes.length t.valid) '\000';
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.words_fetched <- 0;
  t.prefetches <- 0

let granule_valid t frame granule =
  Bytes.unsafe_get t.valid ((frame * t.granules) + granule) <> '\000'

let set_granule t frame granule =
  Bytes.unsafe_set t.valid ((frame * t.granules) + granule) '\001'

let clear_granules t frame =
  Bytes.fill t.valid (frame * t.granules) t.granules '\000'

(* Fetch policy on a miss in [frame] at [granule]: how many granules to
   bring in, starting where. *)
let fill t frame granule =
  match t.cfg.Config.fill with
  | Config.Whole ->
    (* granules = 1 for whole-block fill *)
    set_granule t frame 0;
    Config.words_per_block t.cfg
  | Config.Sectored _ ->
    set_granule t frame granule;
    t.words_per_granule
  | Config.Partial ->
    (* Load from the accessed word to the end of the block or up to a
       valid entry previously loaded in (paper §4.2.2). *)
    let g = ref granule in
    let fetched = ref 0 in
    let stop = ref false in
    while (not !stop) && !g < t.granules do
      if granule_valid t frame !g then stop := true
      else begin
        set_granule t frame !g;
        incr fetched;
        incr g
      end
    done;
    !fetched * t.words_per_granule

(* Set search: way index of [tag] in the set starting at frame [base], or
   -1 when absent. *)
let find_way t ~base ~tag =
  let way = ref (-1) in
  (try
     for i = 0 to t.ways - 1 do
       if t.tags.(base + i) = tag then begin
         way := i;
         raise Exit
       end
     done
   with Exit -> ());
  !way

(* Victim selection: an empty frame of the set if any, else the LRU one
   (first-scanned frame wins ties). *)
let find_victim t ~base =
  let victim = ref base in
  (try
     for i = 0 to t.ways - 1 do
       if t.tags.(base + i) = -1 then begin
         victim := base + i;
         raise Exit
       end;
       if t.lru.(base + i) < t.lru.(!victim) then victim := base + i
     done
   with Exit -> ());
  !victim

(* Next-line tagged prefetch: on a miss to block n, also fill block n+1
   if it is absent.  The fill transfers a whole block (counted as traffic
   but not as a miss) and inserts at MRU. *)
let prefetch_next t block_no =
  let nb = block_no + 1 in
  let set = nb mod t.nsets in
  let tag = nb / t.nsets in
  let base = set * t.ways in
  if find_way t ~base ~tag < 0 then begin
    let frame = find_victim t ~base in
    t.tags.(frame) <- tag;
    clear_granules t frame;
    set_granule t frame 0;
    t.lru.(frame) <- t.clock;
    t.words_fetched <- t.words_fetched + Config.words_per_block t.cfg;
    t.prefetches <- t.prefetches + 1
  end

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let block_no = addr / t.cfg.Config.block in
  let set = block_no mod t.nsets in
  let tag = block_no / t.nsets in
  let offset = addr mod t.cfg.Config.block in
  let granule = offset / Config.granule_bytes t.cfg in
  let word_in_block = offset / Config.word_bytes in
  let base = set * t.ways in
  let way = find_way t ~base ~tag in
  if way >= 0 then begin
    let frame = base + way in
    t.lru.(frame) <- t.clock;
    if granule_valid t frame granule then
      { miss = false; fetched_words = 0; word_in_block }
    else begin
      (* Tag present but granule absent: sector/partial miss. *)
      t.misses <- t.misses + 1;
      let w = fill t frame granule in
      t.words_fetched <- t.words_fetched + w;
      { miss = true; fetched_words = w; word_in_block }
    end
  end
  else begin
    (* Full miss: victimize an empty frame or the LRU one. *)
    t.misses <- t.misses + 1;
    let frame = find_victim t ~base in
    t.tags.(frame) <- tag;
    clear_granules t frame;
    t.lru.(frame) <- t.clock;
    let w = fill t frame granule in
    t.words_fetched <- t.words_fetched + w;
    if t.cfg.Config.prefetch then prefetch_next t block_no;
    { miss = true; fetched_words = w; word_in_block }
  end

(* Bulk access: simulate [words] consecutive 4-byte fetches starting at
   [addr] — one basic block's sequential run — with one tag probe per
   *cache block* touched instead of one per word.  Exactly equivalent to
   calling [access] on each word in turn: counters, validity, LRU state
   and prefetch behavior all match bit for bit.

   [on_miss] is invoked, in address order, for every fetch that [access]
   would have reported as a miss; [at] is the word index within the run.
   Words not reported are hits.

   Why the tail arithmetic is exact, per fill policy:
   - Whole: a tag hit means the whole block is resident (a frame's tag is
     only ever installed together with a full fill or prefetch), so every
     remaining word of the segment hits; on a tag miss only the first
     word misses and the rest stream out of the freshly filled block.
   - Sectored: validity is per sector, so within a segment exactly the
     first word touched in each invalid sector misses (fetching one
     sector), and every other word hits.
   - Partial: a fill loads from the missed word up to the next valid word
     or the block end, so the words a fill covers are hits until the scan
     reaches the next invalid word; on a tag miss the whole tail of the
     block is loaded and the rest of the segment hits.

   LRU exactness: word-granular [access] stamps the frame's LRU with the
   clock of every word; only the *last* stamp can be observed by later
   victim selections, so stamping once with the clock of the segment's
   last word preserves every replacement decision.  Victim selection and
   prefetch happen at the clock of the segment's first word, as in the
   word-granular engine. *)
let access_run t ~addr ~words ~on_miss =
  let wpb = Config.words_per_block t.cfg in
  let wpg = t.words_per_granule in
  let first_word = addr / Config.word_bytes in
  let done_ = ref 0 in
  while !done_ < words do
    let w = first_word + !done_ in
    let block_no = w / wpb in
    let word_in_block = w - (block_no * wpb) in
    (* The segment: the part of the run inside this cache block. *)
    let seg_len = min (words - !done_) (wpb - word_in_block) in
    let c0 = t.clock + 1 in
    let set = block_no mod t.nsets in
    let tag = block_no / t.nsets in
    let base = set * t.ways in
    let way = find_way t ~base ~tag in
    let frame =
      if way >= 0 then begin
        (* Tag present: misses can only come from invalid granules. *)
        let frame = base + way in
        (match t.cfg.Config.fill with
        | Config.Whole ->
          if not (granule_valid t frame 0) then begin
            t.misses <- t.misses + 1;
            let fetched = fill t frame 0 in
            t.words_fetched <- t.words_fetched + fetched;
            on_miss ~at:!done_ ~word_in_block ~fetched_words:fetched
          end
        | Config.Sectored _ ->
          let g_last = (word_in_block + seg_len - 1) / wpg in
          for g = word_in_block / wpg to g_last do
            if not (granule_valid t frame g) then begin
              t.misses <- t.misses + 1;
              set_granule t frame g;
              t.words_fetched <- t.words_fetched + wpg;
              let miss_word = max word_in_block (g * wpg) in
              on_miss
                ~at:(!done_ + miss_word - word_in_block)
                ~word_in_block:miss_word ~fetched_words:wpg
            end
          done
        | Config.Partial ->
          let last = word_in_block + seg_len - 1 in
          let p = ref word_in_block in
          while !p <= last do
            if granule_valid t frame !p then incr p
            else begin
              t.misses <- t.misses + 1;
              let fetched = fill t frame !p in
              t.words_fetched <- t.words_fetched + fetched;
              on_miss
                ~at:(!done_ + !p - word_in_block)
                ~word_in_block:!p ~fetched_words:fetched;
              (* The fill covered [!p .. !p + fetched - 1]: all hits. *)
              p := !p + fetched
            end
          done);
        frame
      end
      else begin
        (* Full miss at the segment's first word. *)
        t.misses <- t.misses + 1;
        let frame = find_victim t ~base in
        t.tags.(frame) <- tag;
        clear_granules t frame;
        t.lru.(frame) <- c0;
        let fetched = fill t frame (word_in_block / wpg) in
        t.words_fetched <- t.words_fetched + fetched;
        on_miss ~at:!done_ ~word_in_block ~fetched_words:fetched;
        if t.cfg.Config.prefetch then begin
          (* The prefetched line is stamped at the missing access' clock. *)
          t.clock <- c0;
          prefetch_next t block_no
        end;
        (* The rest of the segment: Whole filled the block and Partial
           filled through to the block end, so every further word hits;
           Sectored misses once on each further sector touched. *)
        (match t.cfg.Config.fill with
        | Config.Whole | Config.Partial -> ()
        | Config.Sectored _ ->
          let g_last = (word_in_block + seg_len - 1) / wpg in
          for g = (word_in_block / wpg) + 1 to g_last do
            t.misses <- t.misses + 1;
            set_granule t frame g;
            t.words_fetched <- t.words_fetched + wpg;
            on_miss
              ~at:(!done_ + (g * wpg) - word_in_block)
              ~word_in_block:(g * wpg) ~fetched_words:wpg
          done);
        frame
      end
    in
    t.accesses <- t.accesses + seg_len;
    t.clock <- c0 + seg_len - 1;
    t.lru.(frame) <- t.clock;
    done_ := !done_ + seg_len
  done

let miss_ratio t =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

let traffic_ratio t =
  if t.accesses = 0 then 0.
  else float_of_int t.words_fetched /. float_of_int t.accesses

let avg_fetch_words t =
  if t.misses = 0 then 0.
  else float_of_int t.words_fetched /. float_of_int t.misses

(* Tag storage overhead in bytes, assuming 4 bytes of tag space per block
   as in the paper's 3%-of-data-store estimate. *)
let tag_bytes t = t.nsets * t.ways * 4

let accesses t = t.accesses
let misses t = t.misses
let words_fetched t = t.words_fetched
let prefetches t = t.prefetches

(* Internal consistency (used by property tests): a frame with an invalid
   tag has no valid granules. *)
let invariant t =
  let ok = ref true in
  Array.iteri
    (fun frame tag ->
      if tag = -1 then
        for granule = 0 to t.granules - 1 do
          if granule_valid t frame granule then ok := false
        done)
    t.tags;
  !ok
