(** Miss-penalty timing model (paper §4.2.1): interleaved memory
    delivering one 4-byte word per cycle after an initial latency, with
    blocking, streaming (load forwarding + early continuation), or
    streaming-over-partial-load refill disciplines. *)

type policy =
  | Blocking
  | Streaming
  | Streaming_partial

type model = { hit_cycles : int; mem_latency : int }

val default_model : model
(** 1-cycle hits, 10-cycle initial memory latency. *)

val miss_stall :
  model ->
  policy ->
  words_per_block:int ->
  word_in_block:int ->
  run_words:int ->
  fetched_words:int ->
  int
(** Stall cycles beyond the hit time for one miss.  [run_words] is the
    number of consecutive sequential words consumed after the miss before
    a taken branch or the next miss. *)

type t

val create : ?model:model -> policy -> t
val on_hit : t -> unit

val on_hits : t -> int -> unit
(** Account [n] hits at once (bulk path of the block-granular engine). *)

val on_miss :
  t ->
  words_per_block:int ->
  word_in_block:int ->
  run_words:int ->
  fetched_words:int ->
  unit

val effective_access_time : t -> float
(** Mean cycles per instruction fetch. *)

val avg_stall_per_miss : t -> float
val policy_name : policy -> string
