(* Abstract interpretation of instruction-cache states over the whole
   program: Ferdinand/Wilhelm-style Must and May age analyses plus a
   persistence (first-miss) classification scoped by the natural-loop
   forest, all run as {!Dataflow.solve_values} instances over the
   {!Cachedom} age-vector lattice.

   The flow graph is the context-insensitive supergraph: one node per
   (function, block), intra-function edges from the terminators, a call
   edge from every [Call] block to its callee's entry, and return edges
   from every [Ret] block of the callee to the call site's return
   label.  Its path set is a superset of the real (call-stack-matched)
   executions, so joins only weaken facts: any "guaranteed hit" or
   "guaranteed miss" it proves holds on every real run that starts, as
   the boundary value says, from an empty cache.

   Persistence does not need the solver at all: a line is persistent in
   a scope when the distinct lines the scope can fetch into its cache
   set number at most [ways] — then one stay in the scope evicts
   nothing it loaded, so the line misses at most once per entry.  A
   scope is a natural-loop body plus every function transitively
   callable from it (execution inside the loop never leaves that block
   set).  Only syntactic body blocks are classified first-miss, against
   the outermost enclosing scope that protects the line's set.

   Classifications are claims, so anything unverifiable is gated to
   Unclassified with a recorded reason instead of guessed at: sectored
   or partial fills (tag presence no longer implies whole-line
   residence), prefetch (extra fills the transfer does not model),
   associativity beyond the byte-age encoding, a capped (pre-fixpoint)
   solve, and irreducible functions (the `Loops` witnesses), which
   degrade per function. *)

open Ir

type cls = Hit | Miss | First_miss of int | Unknown

type scope = {
  s_fid : int;
  s_header : Cfg.label;
  s_depth : int;
  s_body : int array;  (* gids of the syntactic loop body, sorted *)
  s_header_gid : int;
  s_persistent : Bytes.t;  (* per cache set: '\001' = scope fits *)
}

type t = {
  prog : Prog.program;
  map : Placement.Address_map.t;
  config : Icache.Config.t;
  universe : Cachedom.universe option;  (* [None] iff gated before solving *)
  nnodes : int;
  offsets : int array;
  node_fid : int array;
  node_label : int array;
  naccesses : int array;  (* line fetches per node, valid even when gated *)
  accesses : int array array;  (* dense line ids per node; [||] when gated *)
  cls : cls array array;
  reachable : bool array;
  scopes : scope array;
  gated : string option;
  capped : bool;
  consistent : bool;  (* no access both must-hit and may-absent *)
  must_iterations : int;
  may_iterations : int;
  warnings : Diag.t list;
}

let blocks_classified_total =
  Obs.Metrics.counter "absint.blocks_classified"
    ~help:"blocks whose every line access got a definite classification"

let must_iterations_total =
  Obs.Metrics.counter "absint.must_iterations"
    ~help:"worklist pops of the Must age analysis"

let may_iterations_total =
  Obs.Metrics.counter "absint.may_iterations"
    ~help:"worklist pops of the May age analysis"

let gid t fid label = t.offsets.(fid) + label

(* Absolute line numbers fetched by a block, consecutive duplicates
   collapsed (a 4-byte word sequence crosses a line at most once per
   line). *)
let block_lines (config : Icache.Config.t) ~addr ~words =
  let lines = ref [] in
  for w = words - 1 downto 0 do
    let l = (addr + (w * Icache.Config.word_bytes)) / config.block in
    match !lines with
    | hd :: _ when hd = l -> ()
    | _ -> lines := l :: !lines
  done;
  !lines

let default_max_iters nnodes = 1_000 + (100 * nnodes)

let analyze ?max_iters (config : Icache.Config.t)
    (map : Placement.Address_map.t) (prog : Prog.program) : t =
  Obs.Span.with_ ~stage:"absint.analyze" @@ fun () ->
  let funcs = prog.Prog.funcs in
  let nfuncs = Array.length funcs in
  let offsets = Array.make nfuncs 0 in
  let nnodes = ref 0 in
  for fid = 0 to nfuncs - 1 do
    offsets.(fid) <- !nnodes;
    nnodes := !nnodes + Array.length funcs.(fid).Prog.blocks
  done;
  let nnodes = !nnodes in
  let node_fid = Array.make nnodes 0 and node_label = Array.make nnodes 0 in
  for fid = 0 to nfuncs - 1 do
    for l = 0 to Array.length funcs.(fid).Prog.blocks - 1 do
      node_fid.(offsets.(fid) + l) <- fid;
      node_label.(offsets.(fid) + l) <- l
    done
  done;
  let lines_of_node =
    Array.init nnodes (fun v ->
        let fid = node_fid.(v) and l = node_label.(v) in
        block_lines config
          ~addr:map.Placement.Address_map.block_addr.(fid).(l)
          ~words:map.Placement.Address_map.block_words.(fid).(l))
  in
  let naccesses = Array.map List.length lines_of_node in
  (* Supergraph edges. *)
  let succs = Array.make nnodes [] and preds = Array.make nnodes [] in
  let add_edge u v =
    succs.(u) <- v :: succs.(u);
    preds.(v) <- u :: preds.(v)
  in
  let ret_gids fid =
    let acc = ref [] in
    Array.iteri
      (fun l (b : Cfg.block) ->
        match b.Cfg.term with
        | Cfg.Ret _ -> acc := (offsets.(fid) + l) :: !acc
        | _ -> ())
      funcs.(fid).Prog.blocks;
    !acc
  in
  for v = nnodes - 1 downto 0 do
    let fid = node_fid.(v) and l = node_label.(v) in
    let b = funcs.(fid).Prog.blocks.(l) in
    match b.Cfg.term with
    | Cfg.Call { callee; ret_to; _ } -> (
        match Prog.func_index prog callee with
        | callee_fid ->
            add_edge v offsets.(callee_fid);
            List.iter (fun r -> add_edge r (offsets.(fid) + ret_to))
              (ret_gids callee_fid)
        | exception _ ->
            (* unresolved callee: keep the graph connected through the
               return label, as the fall-through approximation *)
            add_edge v (offsets.(fid) + ret_to))
    | _ ->
        List.iter (fun s -> add_edge v (offsets.(fid) + s)) (Cfg.successors b)
  done;
  let entry_gid = offsets.(prog.Prog.entry) in
  let reachable = Array.make nnodes false in
  let stack = ref [ entry_gid ] in
  reachable.(entry_gid) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        List.iter
          (fun s ->
            if not reachable.(s) then begin
              reachable.(s) <- true;
              stack := s :: !stack
            end)
          succs.(v)
  done;
  let cls = Array.map (fun n -> Array.make n Unknown) naccesses in
  let ways = Icache.Config.ways_of config in
  let gate reason =
    {
      prog;
      map;
      config;
      universe = None;
      nnodes;
      offsets;
      node_fid;
      node_label;
      naccesses;
      accesses = Array.make nnodes [||];
      cls;
      reachable;
      scopes = [||];
      gated = Some reason;
      capped = false;
      consistent = true;
      must_iterations = 0;
      may_iterations = 0;
      warnings =
        [
          Diag.make ~severity:Warning ~stage:Lint
            "absint: analysis gated to unclassified (%s)" reason;
        ];
    }
  in
  Obs.Span.add_attr "nodes" (string_of_int nnodes);
  match config.Icache.Config.fill with
  | Sectored _ | Partial ->
      gate
        (Printf.sprintf "fill=%s: only whole-block fill is modeled"
           (match config.Icache.Config.fill with
           | Sectored n -> Printf.sprintf "sectored(%d)" n
           | Partial -> "partial"
           | Whole -> "whole"))
  | Whole when config.Icache.Config.prefetch ->
      gate "prefetch: extra fills are not modeled"
  | Whole when ways > Cachedom.max_ways ->
      gate
        (Printf.sprintf "associativity %d exceeds the %d-way age encoding"
           ways Cachedom.max_ways)
  | Whole ->
      let u =
        Cachedom.universe config (List.concat (Array.to_list lines_of_node))
      in
      let ids = Cachedom.id_table u in
      let accesses =
        Array.map
          (fun ls ->
            Array.of_list (List.map (fun l -> Hashtbl.find ids l) ls))
          lines_of_node
      in
      let max_iters =
        match max_iters with Some m -> m | None -> default_max_iters nnodes
      in
      let solve lattice access =
        Dataflow.solve_values ~max_iters
          {
            Dataflow.v_nnodes = nnodes;
            v_succs = (fun v -> succs.(v));
            v_preds = (fun v -> preds.(v));
            v_direction = Dataflow.Forward;
            v_boundary = [ entry_gid ];
            v_boundary_value = Cachedom.top u;
            v_lattice = lattice;
            v_transfer =
              (fun v ~src ~dst ->
                Cachedom.assign ~dst src;
                Array.iter (fun l -> access u dst l) accesses.(v));
          }
      in
      let must =
        Obs.Span.with_ ~stage:"absint.must" @@ fun _ ->
        solve (Cachedom.must_lattice u) Cachedom.access_must
      in
      let may =
        Obs.Span.with_ ~stage:"absint.may" @@ fun _ ->
        solve (Cachedom.may_lattice u) Cachedom.access_may
      in
      Obs.Metrics.incr ~by:must.Dataflow.v_iterations must_iterations_total;
      Obs.Metrics.incr ~by:may.Dataflow.v_iterations may_iterations_total;
      let capped = must.Dataflow.v_capped || may.Dataflow.v_capped in
      if capped then
        let t =
          gate
            (Printf.sprintf
               "iteration cap %d hit before the fixpoint (must %d, may %d \
                pops)"
               max_iters must.Dataflow.v_iterations may.Dataflow.v_iterations)
        in
        {
          t with
          universe = Some u;
          accesses;
          capped = true;
          must_iterations = must.Dataflow.v_iterations;
          may_iterations = may.Dataflow.v_iterations;
          warnings =
            t.warnings @ must.Dataflow.v_warnings @ may.Dataflow.v_warnings;
        }
      else begin
        (* Natural-loop scopes, per reducible function.  A scope's
           conflict closure is its body plus every function transitively
           callable from it (the blocks one stay can execute).  Its
           first-miss MEMBERS are the body plus the PRIVATE part of that
           closure: functions all of whose call sites lie in the body or
           in other private members, so their blocks never execute
           outside a stay and the once-per-entry guarantee extends to
           them. *)
        let warnings = ref [] in
        let irreducible = Array.make nfuncs false in
        let call_sites = Array.make nfuncs [] in
        for v = 0 to nnodes - 1 do
          match
            Cfg.callee funcs.(node_fid.(v)).Prog.blocks.(node_label.(v))
          with
          | Some callee -> (
              match Prog.func_index prog callee with
              | cf -> call_sites.(cf) <- v :: call_sites.(cf)
              | exception _ -> ())
          | None -> ()
        done;
        let scopes = ref [] and nscopes = ref 0 in
        for fid = 0 to nfuncs - 1 do
          let loops = Loops.of_func funcs.(fid) in
          if not loops.Loops.reducible then begin
            irreducible.(fid) <- true;
            warnings :=
              Diag.make ~severity:Warning ~stage:Lint
                ~func:funcs.(fid).Prog.name
                "absint: irreducible control flow; blocks degrade to \
                 unclassified"
              :: !warnings
          end
          else
            Array.iteri
              (fun _li (loop : Loops.loop) ->
                let body_gids =
                  List.map (fun l -> offsets.(fid) + l) loop.Loops.body
                in
                let in_body = Hashtbl.create 16 in
                List.iter (fun g -> Hashtbl.replace in_body g ()) body_gids;
                (* Transitive callee closure of the body's call sites. *)
                let fids = Hashtbl.create 8 in
                let pending = ref [] in
                let visit_calls f gids =
                  List.iter
                    (fun g ->
                      match
                        Cfg.callee funcs.(f).Prog.blocks.(node_label.(g))
                      with
                      | Some callee -> (
                          match Prog.func_index prog callee with
                          | cf ->
                              if not (Hashtbl.mem fids cf) then begin
                                Hashtbl.replace fids cf ();
                                pending := cf :: !pending
                              end
                          | exception _ -> ())
                      | None -> ())
                    gids
                in
                visit_calls fid body_gids;
                while !pending <> [] do
                  match !pending with
                  | [] -> ()
                  | cf :: rest ->
                      pending := rest;
                      let n = Array.length funcs.(cf).Prog.blocks in
                      visit_calls cf (List.init n (fun l -> offsets.(cf) + l))
                done;
                let closure_fids =
                  Hashtbl.fold (fun cf () acc -> cf :: acc) fids []
                in
                let closure_gids =
                  List.fold_left
                    (fun acc cf ->
                      let n = Array.length funcs.(cf).Prog.blocks in
                      List.init n (fun l -> offsets.(cf) + l) @ acc)
                    body_gids closure_fids
                in
                (* Greatest fixpoint of "private": drop any closure
                   function with a call site outside the body and
                   outside every still-private function. *)
                let private_ = Hashtbl.copy fids in
                Hashtbl.remove private_ prog.Prog.entry;
                let changed = ref true in
                while !changed do
                  changed := false;
                  Hashtbl.iter
                    (fun cf () ->
                      let exposed =
                        List.exists
                          (fun site ->
                            (not (Hashtbl.mem in_body site))
                            && not (Hashtbl.mem private_ node_fid.(site)))
                          call_sites.(cf)
                      in
                      if exposed then begin
                        Hashtbl.remove private_ cf;
                        changed := true
                      end)
                    (Hashtbl.copy private_)
                done;
                let member_gids =
                  Hashtbl.fold
                    (fun cf () acc ->
                      let n = Array.length funcs.(cf).Prog.blocks in
                      List.init n (fun l -> offsets.(cf) + l) @ acc)
                    private_ body_gids
                in
                (* Distinct lines per cache set across the closure. *)
                let seen = Bytes.make u.Cachedom.nlines '\000' in
                let per_set = Array.make u.Cachedom.nsets 0 in
                List.iter
                  (fun g ->
                    Array.iter
                      (fun id ->
                        if Bytes.get seen id = '\000' then begin
                          Bytes.set seen id '\001';
                          per_set.(u.Cachedom.set_of.(id)) <-
                            per_set.(u.Cachedom.set_of.(id)) + 1
                        end)
                      accesses.(g))
                  closure_gids;
                let persistent = Bytes.make u.Cachedom.nsets '\000' in
                for s = 0 to u.Cachedom.nsets - 1 do
                  if per_set.(s) <= ways then Bytes.set persistent s '\001'
                done;
                incr nscopes;
                scopes :=
                  {
                    s_fid = fid;
                    s_header = loop.Loops.header;
                    s_depth = loop.Loops.depth;
                    s_body =
                      Array.of_list (List.sort_uniq compare member_gids);
                    s_header_gid = offsets.(fid) + loop.Loops.header;
                    s_persistent = persistent;
                  }
                  :: !scopes)
              loops.Loops.loops
        done;
        let scopes = Array.of_list (List.rev !scopes) in
        (* Per-node candidate scopes: creation order puts a function's
           outer loops first; prefer scopes of OTHER functions (the
           dynamically enclosing caller loops) over a block's own. *)
        let candidates = Array.make nnodes [] in
        Array.iteri
          (fun si s ->
            Array.iter
              (fun g -> candidates.(g) <- si :: candidates.(g))
              s.s_body)
          scopes;
        Array.iteri
          (fun v c ->
            candidates.(v) <-
              List.stable_sort
                (fun a b ->
                  let own si = if scopes.(si).s_fid = node_fid.(v) then 1 else 0 in
                  match compare (own a) (own b) with
                  | 0 -> compare (scopes.(a).s_depth, a) (scopes.(b).s_depth, b)
                  | c -> c)
                (List.rev c))
          candidates;
        let persistent_scope v line_id =
          let set = u.Cachedom.set_of.(line_id) in
          List.find_opt
            (fun si -> Bytes.get scopes.(si).s_persistent set = '\001')
            candidates.(v)
        in
        let consistent = ref true in
        let blocks_classified = ref 0 in
        ( Obs.Span.with_ ~stage:"absint.classify" @@ fun () ->
          for v = 0 to nnodes - 1 do
            if reachable.(v) && not irreducible.(node_fid.(v)) then begin
              let m = Cachedom.copy must.Dataflow.v_in.(v) in
              let y = Cachedom.copy may.Dataflow.v_in.(v) in
              let all = ref (naccesses.(v) > 0) in
              Array.iteri
                (fun i l ->
                  let must_hit = Cachedom.age m l < ways in
                  let may_absent = Cachedom.age y l = ways in
                  if must_hit && may_absent then begin
                    consistent := false;
                    all := false
                  end
                  else if must_hit then cls.(v).(i) <- Hit
                  else if may_absent then cls.(v).(i) <- Miss
                  else begin
                    match persistent_scope v l with
                    | Some si -> cls.(v).(i) <- First_miss si
                    | None -> all := false
                  end;
                  Cachedom.access_must u m l;
                  Cachedom.access_may u y l)
                accesses.(v);
              if !all then incr blocks_classified
            end
          done );
        Obs.Metrics.incr ~by:!blocks_classified blocks_classified_total;
        Obs.Span.add_attr "classified_blocks"
          (string_of_int !blocks_classified);
        {
          prog;
          map;
          config;
          universe = Some u;
          nnodes;
          offsets;
          node_fid;
          node_label;
          naccesses;
          accesses;
          cls;
          reachable;
          scopes;
          gated = None;
          capped = false;
          consistent = !consistent;
          must_iterations = must.Dataflow.v_iterations;
          may_iterations = may.Dataflow.v_iterations;
          warnings = List.rev !warnings;
        }
      end

(* Static (unweighted) classification census. *)

type totals = {
  t_hit : int;
  t_miss : int;
  t_first : int;
  t_unknown : int;
  t_accesses : int;
  t_blocks : int;
  t_blocks_classified : int;
}

let totals (t : t) : totals =
  let hit = ref 0 and miss = ref 0 and first = ref 0 and unknown = ref 0 in
  let blocks = ref 0 and classified = ref 0 in
  Array.iteri
    (fun v c ->
      if t.reachable.(v) then begin
        incr blocks;
        let all = ref (Array.length c > 0) in
        Array.iter
          (fun k ->
            match k with
            | Hit -> incr hit
            | Miss -> incr miss
            | First_miss _ -> incr first
            | Unknown ->
                incr unknown;
                all := false)
          c;
        if !all then incr classified
      end)
    t.cls;
  {
    t_hit = !hit;
    t_miss = !miss;
    t_first = !first;
    t_unknown = !unknown;
    t_accesses = !hit + !miss + !first + !unknown;
    t_blocks = !blocks;
    t_blocks_classified = !classified;
  }

(* Sound miss-count interval under a block-execution count function.

   lo counts guaranteed misses only.  hi charges every guaranteed miss
   and every unclassified access in full, and each (scope, line)
   first-miss group at most min(its total weight, the scope header's
   count) — stays in a scope number at most the header's executions.
   Both bounds hold for any execution whose per-block counts match
   [counts]. *)

type interval = {
  lo : int;
  hi : int;
  accesses : int;  (* weighted line fetches *)
  fetches : int;  (* weighted instruction words, for miss-ratio bounds *)
  w_hit : int;
  w_miss : int;
  w_first : int;
  w_unknown : int;
}

let interval ?entries (t : t) ~(counts : int -> Cfg.label -> int) : interval =
  let entries =
    match entries with
    | Some f -> f
    | None -> fun si -> counts t.scopes.(si).s_fid t.scopes.(si).s_header
  in
  let lo = ref 0 and hi = ref 0 in
  let accesses = ref 0 and fetches = ref 0 in
  let w_hit = ref 0 and w_miss = ref 0 and w_first = ref 0 in
  let w_unknown = ref 0 in
  let groups = Hashtbl.create 64 in
  for v = 0 to t.nnodes - 1 do
    let fid = t.node_fid.(v) and label = t.node_label.(v) in
    let c = counts fid label in
    if c > 0 then begin
      accesses := !accesses + (c * t.naccesses.(v));
      fetches :=
        !fetches + (c * t.map.Placement.Address_map.block_words.(fid).(label));
      Array.iteri
        (fun i k ->
          match k with
          | Hit -> w_hit := !w_hit + c
          | Miss ->
              w_miss := !w_miss + c;
              lo := !lo + c;
              hi := !hi + c
          | Unknown ->
              w_unknown := !w_unknown + c;
              hi := !hi + c
          | First_miss si ->
              w_first := !w_first + c;
              let key =
                ( si,
                  if Array.length t.accesses.(v) = 0 then i
                  else t.accesses.(v).(i) )
              in
              Hashtbl.replace groups key
                (c + Option.value ~default:0 (Hashtbl.find_opt groups key)))
        t.cls.(v)
    end
  done;
  Hashtbl.iter (fun (si, _line) w -> hi := !hi + min w (entries si)) groups;
  {
    lo = !lo;
    hi = !hi;
    accesses = !accesses;
    fetches = !fetches;
    w_hit = !w_hit;
    w_miss = !w_miss;
    w_first = !w_first;
    w_unknown = !w_unknown;
  }

(* Stay bound per scope from profile arc weights: a stay's first header
   execution arrives over an arc whose source is outside the loop body
   (or, for a header at block 0, at function invocation), so summing
   those arcs over-approximates the number of stays. *)
let profile_entries (t : t) ~(weights : int -> Placement.Weight.cfg_weights)
    (si : int) : int =
  let s = t.scopes.(si) in
  let w = weights s.s_fid in
  let in_own_body u =
    let g = t.offsets.(s.s_fid) + u in
    let body = s.s_body in
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if body.(mid) = g then true
        else if body.(mid) < g then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    bsearch 0 (Array.length body)
  in
  let from_outside =
    List.fold_left
      (fun acc (u, c) -> if in_own_body u then acc else acc + c)
      0
      (w.Placement.Weight.arcs_in s.s_header)
  in
  from_outside
  + (if s.s_header = 0 then w.Placement.Weight.func_weight else 0)

(* Exact stay counting over an executed block stream: feed the blocks in
   order; a scope is entered when its header runs and the previous block
   was not one of its members. *)

type tracker = {
  tr : t;
  headers : (int, int list) Hashtbl.t;  (* header gid -> scope indices *)
  member : Bytes.t array;  (* scope -> per-gid membership *)
  counts : int array;  (* per-gid execution counts, a byproduct *)
  entered : int array;  (* per-scope stay count *)
  mutable prev : int;
}

let tracker (t : t) : tracker =
  let headers = Hashtbl.create 16 in
  Array.iteri
    (fun si s ->
      Hashtbl.replace headers s.s_header_gid
        (si
        :: Option.value ~default:[] (Hashtbl.find_opt headers s.s_header_gid)))
    t.scopes;
  let member =
    Array.map
      (fun s ->
        let m = Bytes.make t.nnodes '\000' in
        Array.iter (fun g -> Bytes.set m g '\001') s.s_body;
        m)
      t.scopes
  in
  {
    tr = t;
    headers;
    member;
    counts = Array.make t.nnodes 0;
    entered = Array.make (Array.length t.scopes) 0;
    prev = -1;
  }

let track (k : tracker) (fid : int) (label : Cfg.label) : unit =
  let g = k.tr.offsets.(fid) + label in
  k.counts.(g) <- k.counts.(g) + 1;
  (match Hashtbl.find_opt k.headers g with
  | None -> ()
  | Some sis ->
      List.iter
        (fun si ->
          if k.prev < 0 || Bytes.get k.member.(si) k.prev = '\000' then
            k.entered.(si) <- k.entered.(si) + 1)
        sis);
  k.prev <- g

let tracked_counts (k : tracker) (fid : int) (label : Cfg.label) : int =
  k.counts.(k.tr.offsets.(fid) + label)

let tracked_entries (k : tracker) (si : int) : int = k.entered.(si)
