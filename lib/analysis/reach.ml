open Ir

let blocks = Cfg.reachable

let func (f : Prog.func) = blocks f.Prog.blocks

let unreachable (f : Prog.func) =
  let reach = func f in
  List.filter
    (fun l -> not reach.(l))
    (List.init (Array.length f.Prog.blocks) Fun.id)

(* The same fact as a dataflow instance: one bit meaning "reachable",
   generated at the entry boundary and propagated forward with an empty
   transfer.  [out.(l)] nonempty <=> reachable. *)
let as_dataflow (f : Prog.func) : Dataflow.solution =
  let blocks = f.Prog.blocks in
  let n = Array.length blocks in
  let preds = Dataflow.cfg_preds blocks in
  let empty = Bitset.create 1 in
  let one =
    let s = Bitset.create 1 in
    Bitset.add s 0;
    s
  in
  Dataflow.solve
    {
      Dataflow.nnodes = n;
      nbits = 1;
      succs = (fun l -> Cfg.successors blocks.(l));
      preds = (fun l -> preds.(l));
      gen = (fun _ -> empty);
      kill = (fun _ -> empty);
      direction = Dataflow.Forward;
      confluence = Dataflow.Union;
      boundary = (if n = 0 then [] else [ 0 ]);
      boundary_value = one;
    }
