(* Static layout linter.

   Everything here is computable from (program, weights, address map,
   cache geometry): no trace replay, no cache simulation.  The passes
   mirror the properties the dynamic stack can only observe indirectly:

   - flow conservation catches corrupted profiles before they mislead
     the placement;
   - the reachability pass cross-checks the profile against the CFG
     (weight on a dead block is contradictory) and flags dead bytes
     inside the packed effective region;
   - the hot-arc pass checks the property trace selection exists to
     produce — arcs above MIN_PROB should be fall-throughs;
   - the loop pass charges layouts for spreading a loop body over more
     cache lines/pages than its size requires;
   - the set-conflict pass is the paper's "mapping conflict" discussion
     made static: call-graph-adjacent functions whose hot lines co-map
     to the same cache sets will evict each other, in proportion to how
     often control crosses between them. *)

open Ir

type input = {
  program : Prog.program;
  weights : int -> Placement.Weight.cfg_weights;
  calls : Placement.Weight.call_weights;
  profile : Vm.Profile.t option;
  map : Placement.Address_map.t;
  config : Icache.Config.t;
  strategy : string option;
  min_prob : float;
  page_bytes : int;
}

let make_input ?(min_prob = Placement.Trace_select.default_min_prob)
    ?(page_bytes = 4096) ?strategy ?profile ~program ~weights ~calls ~map
    ~config () =
  {
    program;
    weights;
    calls;
    profile;
    map;
    config;
    strategy;
    min_prob;
    page_bytes;
  }

let of_pipeline ?min_prob ?page_bytes ?strategy (p : Placement.Pipeline.t)
    ~map ~config =
  make_input ?min_prob ?page_bytes ?strategy
    ~profile:p.Placement.Pipeline.profile
    ~program:p.Placement.Pipeline.program
    ~weights:(fun fid ->
      Placement.Weight.cfg_of_profile p.Placement.Pipeline.profile fid)
    ~calls:(Placement.Weight.call_of_profile p.Placement.Pipeline.profile)
    ~map ~config ()

type finding = { pass : string; diag : Diag.t; score : float }

type report = {
  findings : finding list;
  by_pass : (string * int) list;
  conflict_score : float;
  hot_arc_total : int;
  hot_arc_broken : int;
  certified : Absint.interval;
  absint_totals : Absint.totals;
  absint_gated : string option;
}

let pass_names =
  [ "flow"; "unreachable"; "hot-arc"; "loop-split"; "set-conflict"; "absint" ]

(* Telemetry: per-pass finding counters plus the grand total. *)
let findings_total =
  Obs.Metrics.counter "lint.findings" ~help:"lint findings across all passes"

let flow_violations =
  Obs.Metrics.counter "lint.flow_violations"
    ~help:"profile flow-conservation violations found by the linter"

let unreachable_found =
  Obs.Metrics.counter "lint.unreachable"
    ~help:"statically dead blocks flagged (weighted or hot-placed)"

let hot_arc_breaks =
  Obs.Metrics.counter "lint.hot_arc_breaks"
    ~help:"hot arcs not placed as fall-throughs"

let loop_straddles =
  Obs.Metrics.counter "lint.loop_straddles"
    ~help:"loops straddling avoidable cache-line/page boundaries"

let conflict_pairs =
  Obs.Metrics.counter "lint.conflict_pairs"
    ~help:"call-graph-adjacent function pairs with overlapping hot sets"

let guaranteed_miss_blocks =
  Obs.Metrics.counter "lint.guaranteed_miss_blocks"
    ~help:"weighted blocks with at least one certified always-miss line"

let span pass f = Obs.Span.with_ ~stage:("lint." ^ pass) f

(* ------------------------------------------------------------------ *)
(* Shared address helpers                                              *)
(* ------------------------------------------------------------------ *)

let addr t fid l = t.map.Placement.Address_map.block_addr.(fid).(l)

let bytes t fid l =
  t.map.Placement.Address_map.block_words.(fid).(l) * Insn.bytes_per_insn

let fname t fid = t.program.Prog.funcs.(fid).Prog.name

let mk t ?(severity = Diag.Warning) ~pass ~score ?func ?block fmt =
  Fmt.kstr
    (fun message ->
      {
        pass;
        score;
        diag =
          Diag.make ~severity ~stage:Diag.Lint ?func ?block
            ?strategy:t.strategy "%s" message;
      })
    fmt

(* Distinct cache-line (or page) indices covered by [addr, addr+bytes). *)
let granules_of ~granule ranges =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      if b > 0 then
        for g = a / granule to (a + b - 1) / granule do
          Hashtbl.replace t g ()
        done)
    ranges;
  t

(* ------------------------------------------------------------------ *)
(* Pass: profile flow conservation                                     *)
(* ------------------------------------------------------------------ *)

let flow_pass t =
  match t.profile with
  | None -> []
  | Some profile ->
    List.map
      (fun (d : Diag.t) ->
        Obs.Metrics.incr flow_violations;
        {
          pass = "flow";
          score = 1.;
          (* Re-staged under Lint: the finding is the linter's, carrying
             its exit code, not Validate's Profile stage. *)
          diag = { d with Diag.stage = Diag.Lint; strategy = t.strategy };
        })
      (Placement.Validate.flow profile)

(* ------------------------------------------------------------------ *)
(* Pass: statically dead blocks                                        *)
(* ------------------------------------------------------------------ *)

let unreachable_pass t =
  let boundary =
    Placement.Address_map.code_base
    + t.map.Placement.Address_map.effective_bytes
  in
  let acc = ref [] in
  Array.iteri
    (fun fid (f : Prog.func) ->
      let w = t.weights fid in
      let reach = Reach.func f in
      Array.iteri
        (fun l _ ->
          if not reach.(l) then begin
            let bw = w.Placement.Weight.block l in
            if bw > 0 then begin
              Obs.Metrics.incr unreachable_found;
              acc :=
                mk t ~severity:Diag.Error ~pass:"unreachable"
                  ~score:(float_of_int bw) ~func:f.Prog.name ~block:l
                  "statically unreachable block carries profile weight %d"
                  bw
                :: !acc
            end
            else if addr t fid l < boundary then begin
              Obs.Metrics.incr unreachable_found;
              acc :=
                mk t ~pass:"unreachable"
                  ~score:(float_of_int (bytes t fid l))
                  ~func:f.Prog.name ~block:l
                  "statically unreachable block occupies %d bytes inside \
                   the effective region"
                  (bytes t fid l)
                :: !acc
            end
          end)
        f.Prog.blocks)
    t.program.Prog.funcs;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pass: hot arcs broken across non-fall-through placements            *)
(* ------------------------------------------------------------------ *)

let hot_arc_pass t =
  let acc = ref [] in
  let total = ref 0 and broken = ref 0 in
  Array.iteri
    (fun fid (f : Prog.func) ->
      let w = t.weights fid in
      if w.Placement.Weight.func_weight > 0 then begin
        let dom = Dom.dominators f in
        Array.iteri
          (fun l _ ->
            let wl = w.Placement.Weight.block l in
            if wl > 0 then
              List.iter
                (fun (dst, c) ->
                  (* The trace-selection qualification: the arc carries
                     at least MIN_PROB of both endpoints.  A self-loop
                     cannot fall through to itself, and a back edge
                     (target dominates source) can never fall through
                     under any layout placing the header first — trace
                     growth stops there too — so neither counts. *)
                  let wd = w.Placement.Weight.block dst in
                  if
                    dst <> l && c > 0
                    && (not (Dom.dominates dom dst l))
                    && float_of_int c >= t.min_prob *. float_of_int wl
                    && float_of_int c >= t.min_prob *. float_of_int wd
                  then begin
                    total := !total + c;
                    let fall = addr t fid l + bytes t fid l in
                    if addr t fid dst <> fall then begin
                      broken := !broken + c;
                      Obs.Metrics.incr hot_arc_breaks;
                      acc :=
                        mk t ~pass:"hot-arc" ~score:(float_of_int c)
                          ~func:f.Prog.name ~block:l
                          "hot arc b%d->b%d (weight %d, p=%.2f) is not a \
                           fall-through: target placed %+d bytes away"
                          l dst c
                          (float_of_int c /. float_of_int wl)
                          (addr t fid dst - fall)
                        :: !acc
                    end
                  end)
                (w.Placement.Weight.arcs_out l))
          f.Prog.blocks
      end)
    t.program.Prog.funcs;
  (List.rev !acc, !total, !broken)

(* ------------------------------------------------------------------ *)
(* Pass: loop bodies straddling avoidable line/page boundaries         *)
(* ------------------------------------------------------------------ *)

let loop_pass t =
  let line = t.config.Icache.Config.block in
  let acc = ref [] in
  Array.iteri
    (fun fid (f : Prog.func) ->
      let w = t.weights fid in
      if w.Placement.Weight.func_weight > 0 then begin
        let loops = Loops.of_func f in
        Array.iter
          (fun (loop : Loops.loop) ->
            let hw = w.Placement.Weight.block loop.Loops.header in
            if hw > 0 then begin
              let ranges =
                List.map (fun l -> (addr t fid l, bytes t fid l)) loop.Loops.body
              in
              let body_bytes =
                List.fold_left (fun s (_, b) -> s + b) 0 ranges
              in
              let start =
                List.fold_left (fun m (a, _) -> min m a) max_int ranges
              in
              let check ~granule ~what =
                let used = Hashtbl.length (granules_of ~granule ranges) in
                (* The avoidability baseline is a contiguous placement
                   at the loop's own start address: fragmentation is the
                   layout's fault, crossing a boundary because the start
                   is unaligned is not (nothing in the pipeline aligns). *)
                let needed =
                  ((start + body_bytes - 1) / granule) - (start / granule) + 1
                in
                if body_bytes > 0 && used > needed then begin
                  Obs.Metrics.incr loop_straddles;
                  acc :=
                    mk t ~pass:"loop-split"
                      ~score:(float_of_int (hw * (used - needed)))
                      ~func:f.Prog.name ~block:loop.Loops.header
                      "loop at b%d (depth %d, weight %d): body of %d bytes \
                       straddles %d %s where %d suffice"
                      loop.Loops.header loop.Loops.depth hw body_bytes used
                      what needed
                    :: !acc
                end
              in
              check ~granule:line ~what:"cache lines";
              (* Page straddles only matter for bodies a page could hold;
                 bigger bodies cross pages no matter the layout. *)
              if body_bytes <= t.page_bytes then
                check ~granule:t.page_bytes ~what:"pages"
            end)
          loops.Loops.loops
      end)
    t.program.Prog.funcs;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pass: static cache-set conflict estimation                          *)
(* ------------------------------------------------------------------ *)

(* Per function: how many distinct hot cache lines map to each set,
   where hot = the block has nonzero profile weight. *)
let set_footprint t fid (f : Prog.func) =
  let nsets = Icache.Config.nsets t.config in
  let line = t.config.Icache.Config.block in
  let w = t.weights fid in
  let ranges = ref [] in
  Array.iteri
    (fun l _ ->
      if w.Placement.Weight.block l > 0 then
        ranges := (addr t fid l, bytes t fid l) :: !ranges)
    f.Prog.blocks;
  let per_set = Array.make nsets 0 in
  Hashtbl.iter
    (fun g () -> per_set.(g mod nsets) <- per_set.(g mod nsets) + 1)
    (granules_of ~granule:line !ranges);
  per_set

let conflict_pass t =
  let nsets = Icache.Config.nsets t.config in
  let ways = Icache.Config.ways_of t.config in
  let nfuncs = Array.length t.program.Prog.funcs in
  let hot fid =
    (t.weights fid).Placement.Weight.func_weight > 0
  in
  (* Footprints built lazily: cold functions never pay. *)
  let footprints = Array.make nfuncs None in
  let footprint fid =
    match footprints.(fid) with
    | Some fp -> fp
    | None ->
      let fp = set_footprint t fid t.program.Prog.funcs.(fid) in
      footprints.(fid) <- Some fp;
      fp
  in
  (* Unordered call-graph-adjacent pairs of hot functions. *)
  let pairs = Hashtbl.create 64 in
  for fid = 0 to nfuncs - 1 do
    List.iter
      (fun g ->
        if g <> fid then begin
          let key = (min fid g, max fid g) in
          if not (Hashtbl.mem pairs key) then Hashtbl.add pairs key ()
        end)
      (t.calls.Placement.Weight.callees fid)
  done;
  let acc = ref [] in
  let score = ref 0. in
  Hashtbl.iter
    (fun (f, g) () ->
      let w =
        t.calls.Placement.Weight.pair f g + t.calls.Placement.Weight.pair g f
      in
      if w > 0 && hot f && hot g then begin
        let a = footprint f and b = footprint g in
        let overlap = ref 0 in
        for s = 0 to nsets - 1 do
          (* Lines that cannot co-reside in set [s]: beyond [ways], every
             extra line evicts one, bounded by the smaller footprint. *)
          overlap :=
            !overlap + min (min a.(s) b.(s)) (max 0 (a.(s) + b.(s) - ways))
        done;
        if !overlap > 0 then begin
          Obs.Metrics.incr conflict_pairs;
          let pair_score =
            float_of_int w *. float_of_int !overlap /. float_of_int nsets
          in
          score := !score +. pair_score;
          acc :=
            mk t ~pass:"set-conflict" ~score:pair_score ~func:(fname t f)
              "hot lines of %s and %s co-map to %d of %d cache sets \
               (%d dynamic calls between them)"
              (fname t f) (fname t g) !overlap nsets w
            :: !acc
        end
      end)
    pairs;
  (List.rev !acc, !score)

(* ------------------------------------------------------------------ *)
(* Pass: sound static cache-state classification                       *)
(* ------------------------------------------------------------------ *)

(* Unlike set-conflict's heuristic score this pass makes guarantees:
   the abstract interpretation's always-miss lines WILL conflict on
   every run, and the certified interval [lo, hi] bounds the misses of
   any execution matching the profile counts.  Still simulation-free:
   {!Absint} is a pair of dataflow solves. *)

let absint_pass t =
  let a = Absint.analyze t.config t.map t.program in
  let counts fid l = (t.weights fid).Placement.Weight.block l in
  let certified =
    Absint.interval a ~counts
      ~entries:(Absint.profile_entries a ~weights:t.weights)
  in
  let acc = ref [] in
  (* Degradations (gated configs, irreducible functions, capped solves)
     surface as zero-score findings so the report says WHY bounds are
     loose. *)
  List.iter
    (fun (d : Diag.t) ->
      acc :=
        {
          pass = "absint";
          score = 0.;
          diag = { d with Diag.strategy = t.strategy };
        }
        :: !acc)
    a.Absint.warnings;
  for v = 0 to a.Absint.nnodes - 1 do
    let fid = a.Absint.node_fid.(v) and l = a.Absint.node_label.(v) in
    let w = counts fid l in
    if w > 0 then begin
      let nmiss =
        Array.fold_left
          (fun n k -> match k with Absint.Miss -> n + 1 | _ -> n)
          0
          a.Absint.cls.(v)
      in
      if nmiss > 0 then begin
        Obs.Metrics.incr guaranteed_miss_blocks;
        acc :=
          mk t ~pass:"absint"
            ~score:(float_of_int (w * nmiss))
            ~func:(fname t fid) ~block:l
            "certified conflict: %d of %d line fetches always miss \
             (weight %d)"
            nmiss a.Absint.naccesses.(v) w
          :: !acc
      end
    end
  done;
  (List.rev !acc, certified, Absint.totals a, a.Absint.gated)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run (t : input) : report =
  let flow = span "flow" (fun () -> flow_pass t) in
  let unreachable = span "unreachable" (fun () -> unreachable_pass t) in
  let hot_arcs, hot_arc_total, hot_arc_broken =
    span "hot-arc" (fun () -> hot_arc_pass t)
  in
  let loops = span "loop-split" (fun () -> loop_pass t) in
  let conflicts, conflict_score =
    span "set-conflict" (fun () -> conflict_pass t)
  in
  let absints, certified, absint_totals, absint_gated =
    span "absint" (fun () -> absint_pass t)
  in
  let all = flow @ unreachable @ hot_arcs @ loops @ conflicts @ absints in
  Obs.Metrics.incr ~by:(List.length all) findings_total;
  (* Errors lead; inside a severity class the biggest scores first, and
     ties keep pass order for determinism. *)
  let indexed = List.mapi (fun i f -> (i, f)) all in
  let sorted =
    List.stable_sort
      (fun (i, a) (j, b) ->
        let sev d = if Diag.is_error d.diag then 0 else 1 in
        match compare (sev a) (sev b) with
        | 0 -> (
          match compare b.score a.score with 0 -> compare i j | c -> c)
        | c -> c)
      indexed
  in
  {
    findings = List.map snd sorted;
    by_pass =
      List.map
        (fun p ->
          (p, List.length (List.filter (fun f -> f.pass = p) all)))
        pass_names;
    conflict_score;
    hot_arc_total;
    hot_arc_broken;
    certified;
    absint_totals;
    absint_gated;
  }

let errors r =
  List.filter_map
    (fun f -> if Diag.is_error f.diag then Some f.diag else None)
    r.findings

let warnings r =
  List.filter_map
    (fun f -> if Diag.is_error f.diag then None else Some f.diag)
    r.findings
