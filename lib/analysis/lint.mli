(** Static layout/cache-conflict linter: instant, simulation-free
    diagnosis of a placement from the CFG, the profile weights, the
    address map and the cache geometry alone.  Every finding is an
    {!Ir.Diag.t} with stage [Lint] (exit code 18).

    Passes, in {!pass_names} order:

    - [flow] — profile flow conservation as a static lint (subsumes the
      corresponding part of [Placement.Validate]); errors.
    - [unreachable] — statically dead blocks ({!Reach}) that either
      carry profile weight (an error: the profile disagrees with the
      CFG) or are placed inside the packed effective region (a warning:
      dead bytes pollute the hot footprint).
    - [hot-arc] — arcs at or above [min_prob] of both endpoint weights
      that the layout does not place as fall-throughs; warnings.
    - [loop-split] — natural loops ({!Loops}) whose body occupies more
      cache lines (or pages) than its byte size requires; warnings.
    - [set-conflict] — static cache-set conflict estimation: call-graph
      adjacent functions whose hot lines co-map to the same sets, the
      paper's "mapping conflict" made static; warnings, plus the
      aggregate {!report.conflict_score} used to rank strategies.
    - [absint] — sound cache-state classification ({!Absint}): weighted
      blocks with certified always-miss lines, analysis degradations,
      and the certified miss-count interval {!report.certified} that
      ranks strategies next to the heuristic conflict score. *)

open Ir

type input = {
  program : Prog.program;
  weights : int -> Placement.Weight.cfg_weights;
  calls : Placement.Weight.call_weights;
  profile : Vm.Profile.t option;  (** enables the [flow] pass *)
  map : Placement.Address_map.t;
  config : Icache.Config.t;
  strategy : string option;  (** tags every finding's diag context *)
  min_prob : float;
  page_bytes : int;
}

val make_input :
  ?min_prob:float ->
  (* default {!Placement.Trace_select.default_min_prob} *)
  ?page_bytes:int ->
  (* default 4096 *)
  ?strategy:string ->
  ?profile:Vm.Profile.t ->
  program:Prog.program ->
  weights:(int -> Placement.Weight.cfg_weights) ->
  calls:Placement.Weight.call_weights ->
  map:Placement.Address_map.t ->
  config:Icache.Config.t ->
  unit ->
  input

val of_pipeline :
  ?min_prob:float ->
  ?page_bytes:int ->
  ?strategy:string ->
  Placement.Pipeline.t ->
  map:Placement.Address_map.t ->
  config:Icache.Config.t ->
  input
(** Lint input for a completed pipeline's program/profile under any of
    its strategy maps. *)

type finding = {
  pass : string;
  diag : Diag.t;
  score : float;
      (** pass-specific magnitude (broken arc weight, wasted lines x
          loop weight, calls x overlapping sets ...), for ranking *)
}

type report = {
  findings : finding list;
      (** errors first, then warnings by descending score *)
  by_pass : (string * int) list;  (** findings per pass, registry order *)
  conflict_score : float;
      (** sum over call-graph-adjacent function pairs of
          [calls(f,g) * overlapping-hot-sets(f,g) / nsets]; the static
          stand-in for the simulated conflict-miss ratio *)
  hot_arc_total : int;  (** total weight of hot arcs *)
  hot_arc_broken : int;  (** weight of hot arcs not placed fall-through *)
  certified : Absint.interval;
      (** sound miss-count interval under the profile weights, with
          per-scope entry caps from {!Absint.profile_entries} *)
  absint_totals : Absint.totals;
  absint_gated : string option;  (** why everything is unclassified *)
}

val pass_names : string list

val run : input -> report
(** Runs every pass inside a ["lint.<pass>"] span; no simulation
    anywhere on this path. *)

val errors : report -> Diag.t list
val warnings : report -> Diag.t list

val findings_total : Obs.Metrics.counter
(** Telemetry: findings across all passes and runs. *)

val guaranteed_miss_blocks : Obs.Metrics.counter
(** Weighted blocks with at least one certified always-miss line. *)
